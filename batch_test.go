package switchpointer

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
)

// redLightsTestbed builds the §5.2 scenario: a TCP victim crossing three
// switches with a high-priority UDP burst crossing it mid-path, yielding an
// alert whose tuple list spans the whole path.
func redLightsTestbed(t *testing.T) (*Testbed, Alert) {
	t.Helper()
	tb, err := NewTestbed(Chain(2, 2, 2), Options{Queue: QueuePriority})
	if err != nil {
		t.Fatal(err)
	}
	a := tb.Host("h1-1")
	f := tb.Host("h3-2")
	victim := FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 1, DstPort: 2, Proto: 6}
	StartTCP(tb.Net, a, f, TCPConfig{Flow: victim, Priority: 1, Duration: 10 * Millisecond})
	bHost := tb.Host("h1-2")
	dHost := tb.Host("h2-2")
	StartUDP(tb.Net, bHost, UDPConfig{
		Flow:     FlowKey{Src: bHost.IP(), Dst: dHost.IP(), SrcPort: 3, DstPort: 4, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 5 * Millisecond, Duration: 400 * Microsecond})
	tb.Run(30 * Millisecond)
	alert, ok := tb.AlertFor(victim)
	if !ok {
		t.Fatal("no alert raised")
	}
	return tb, alert
}

// TestBatchedPointerPullRounds is the acceptance gate for the batched
// pointer path: a diagnosis issues exactly ONE pointer round trip per
// alert (Directory.HostsBatch), covering every tuple of the alert, with
// the virtual-time charge unchanged from the sequential implementation.
func TestBatchedPointerPullRounds(t *testing.T) {
	tb, alert := redLightsTestbed(t)
	if len(alert.Tuples) < 2 {
		t.Fatalf("alert carries %d tuples, want a multi-switch path", len(alert.Tuples))
	}
	rep, err := tb.Analyzer.Run(context.Background(), analyzer.RedLightsQuery{Alert: alert})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Clock.PointerRounds(); got != 1 {
		t.Fatalf("diagnosis used %d pointer rounds, want 1 batched round", got)
	}
	if got := rep.Clock.PointersCharged(); got != len(alert.Tuples) {
		t.Fatalf("batched round charged %d pulls, want %d (one per tuple)", got, len(alert.Tuples))
	}
	// The batched round must charge exactly what the sequential loop did:
	// PointerPull + (n-1)·PointerPullExtra.
	cost := rpc.DefaultCostModel()
	want := cost.PointerPull + simtime.Time(len(alert.Tuples)-1)*cost.PointerPullExtra
	if got := rep.Clock.PhaseTotal("pointer-retrieval"); got != want {
		t.Fatalf("pointer-retrieval phase = %v, want %v", got, want)
	}
}

// TestHostsBatchMatchesSequentialHosts pins batch/sequential equivalence on
// the in-memory backend: HostsBatch answers slot-for-slot what per-tuple
// Hosts calls answer, including the unknown-switch slots.
func TestHostsBatchMatchesSequentialHosts(t *testing.T) {
	tb, alert := redLightsTestbed(t)
	dir := tb.Analyzer.Dir
	reqs := make([]analyzer.SwitchEpochs, 0, len(alert.Tuples)+1)
	for _, tup := range alert.Tuples {
		reqs = append(reqs, analyzer.SwitchEpochs{Switch: tup.Switch, Epochs: tup.Epochs})
	}
	reqs = append(reqs, analyzer.SwitchEpochs{Switch: 9999, Epochs: simtime.EpochRange{Lo: 0, Hi: 1}})

	hosts, errs := dir.HostsBatch(context.Background(), reqs)
	if len(hosts) != len(reqs) || len(errs) != len(reqs) {
		t.Fatalf("batch shape: %d hosts, %d errs, want %d", len(hosts), len(errs), len(reqs))
	}
	for i, req := range reqs {
		seq, seqErr := dir.Hosts(context.Background(), req.Switch, req.Epochs)
		if (seqErr == nil) != (errs[i] == nil) {
			t.Fatalf("slot %d: batch err %v, sequential err %v", i, errs[i], seqErr)
		}
		if !reflect.DeepEqual(hosts[i], seq) {
			t.Fatalf("slot %d: batch %v != sequential %v", i, hosts[i], seq)
		}
	}
}

// TestRemoteDirectory exercises the remote Directory backend end to end
// over real HTTP: pointer pulls (single and batched) against switch-agent
// handlers must answer byte-identically to the in-memory backend, a full
// diagnosis run through the remote backend must produce the identical
// report, and Distribute must install a working MPH over the wire.
func TestRemoteDirectory(t *testing.T) {
	tb, alert := redLightsTestbed(t)

	urls := make(map[netsim.NodeID]string, len(tb.SwitchAgents))
	for id, ag := range tb.SwitchAgents {
		srv := httptest.NewServer(rpc.NewSwitchHandler(ag))
		defer srv.Close()
		urls[id] = srv.URL
	}
	var ips []netsim.IPv4
	for _, h := range tb.Topo.Hosts() {
		ips = append(ips, h.IP())
	}
	remote, err := analyzer.NewRemoteDirectory(ips, urls, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Single and batched pulls agree with the in-memory backend.
	mem := tb.Analyzer.Dir
	reqs := make([]analyzer.SwitchEpochs, 0, len(alert.Tuples))
	for _, tup := range alert.Tuples {
		reqs = append(reqs, analyzer.SwitchEpochs{Switch: tup.Switch, Epochs: tup.Epochs})
	}
	remoteHosts, remoteErrs := remote.HostsBatch(context.Background(), reqs)
	memHosts, memErrs := mem.HostsBatch(context.Background(), reqs)
	for i := range reqs {
		if remoteErrs[i] != nil || memErrs[i] != nil {
			t.Fatalf("slot %d errs: remote=%v mem=%v", i, remoteErrs[i], memErrs[i])
		}
		if !reflect.DeepEqual(remoteHosts[i], memHosts[i]) {
			t.Fatalf("slot %d: remote %v != memory %v", i, remoteHosts[i], memHosts[i])
		}
	}
	if _, err := remote.Hosts(context.Background(), 9999, simtime.EpochRange{}); err == nil {
		t.Fatal("unknown switch should error")
	}

	// A diagnosis through the remote backend is byte-identical.
	memRep, err := tb.Analyzer.Run(context.Background(), analyzer.RedLightsQuery{Alert: alert})
	if err != nil {
		t.Fatal(err)
	}
	tb.Analyzer.Dir = remote
	remoteRep, err := tb.Analyzer.Run(context.Background(), analyzer.RedLightsQuery{Alert: alert})
	tb.Analyzer.Dir = mem
	if err != nil {
		t.Fatal(err)
	}
	if remoteRep.Kind != memRep.Kind || remoteRep.Total() != memRep.Total() ||
		!reflect.DeepEqual(remoteRep.Culprits, memRep.Culprits) ||
		!reflect.DeepEqual(remoteRep.Consulted, memRep.Consulted) {
		t.Fatalf("remote diagnosis diverged: kind=%v/%v total=%v/%v",
			remoteRep.Kind, memRep.Kind, remoteRep.Total(), memRep.Total())
	}
	if got := remoteRep.Clock.PointerRounds(); got != 1 {
		t.Fatalf("remote diagnosis used %d pointer rounds, want 1", got)
	}

	// Distribute over the wire: switches keep resolving pointers afterwards.
	if err := remote.Distribute(context.Background()); err != nil {
		t.Fatal(err)
	}
	again, errs := remote.HostsBatch(context.Background(), reqs)
	for i := range reqs {
		if errs[i] != nil || !reflect.DeepEqual(again[i], remoteHosts[i]) {
			t.Fatalf("post-distribute slot %d diverged (err=%v)", i, errs[i])
		}
	}
}
