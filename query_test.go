package switchpointer

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/scenario"
)

// TestAnalyzerRunAllQueryKinds drives every query kind through the unified
// Analyzer.Run dispatch and checks the Report envelope each returns.
func TestAnalyzerRunAllQueryKinds(t *testing.T) {
	cases := []struct {
		name     string
		setup    func(t *testing.T) (*Testbed, Query)
		wantKind analyzer.Kind
	}{
		{
			name: "contention",
			setup: func(t *testing.T) (*Testbed, Query) {
				s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 4})
				if err != nil {
					t.Fatal(err)
				}
				s.Testbed.Run(110 * Millisecond)
				alert, ok := s.Testbed.AlertFor(s.Victim)
				if !ok {
					t.Fatal("no alert")
				}
				return s.Testbed, ContentionQuery{Alert: alert}
			},
			wantKind: KindPriorityContention,
		},
		{
			name: "red-lights",
			setup: func(t *testing.T) (*Testbed, Query) {
				s, err := scenario.NewRedLights(scenario.Options{})
				if err != nil {
					t.Fatal(err)
				}
				s.Testbed.Run(30 * Millisecond)
				alert, ok := s.Testbed.AlertFor(s.Victim)
				if !ok {
					t.Fatal("no alert")
				}
				return s.Testbed, RedLightsQuery{Alert: alert}
			},
			wantKind: KindRedLights,
		},
		{
			name: "cascade",
			setup: func(t *testing.T) (*Testbed, Query) {
				s, err := scenario.NewCascades(true, scenario.Options{})
				if err != nil {
					t.Fatal(err)
				}
				s.Testbed.Run(60 * Millisecond)
				alert, ok := s.Testbed.AlertFor(s.FlowCE)
				if !ok {
					t.Fatal("no alert")
				}
				return s.Testbed, CascadeQuery{Alert: alert}
			},
			wantKind: KindCascade,
		},
		{
			name: "load-imbalance",
			setup: func(t *testing.T) (*Testbed, Query) {
				s, err := scenario.NewLoadImbalance(8, scenario.Options{})
				if err != nil {
					t.Fatal(err)
				}
				end := s.Testbed.Run(200 * Millisecond)
				nowEpoch := s.Testbed.SwitchAgents[s.Suspect.NodeID()].LocalEpochAt(end)
				return s.Testbed, ImbalanceQuery{
					Switch: s.Suspect.NodeID(),
					Window: EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch},
					At:     end,
				}
			},
			wantKind: KindLoadImbalance,
		},
		{
			name: "top-k",
			setup: func(t *testing.T) (*Testbed, Query) {
				s, err := scenario.NewTopKWorkload(4, 12, scenario.Options{})
				if err != nil {
					t.Fatal(err)
				}
				end := s.Testbed.Run(50 * Millisecond)
				return s.Testbed, TopKQuery{
					Switch: s.Queried.NodeID(), K: 100,
					Window: EpochRange{Lo: 0, Hi: 10},
					Mode:   ModeSwitchPointer, At: end,
				}
			},
			wantKind: KindTopK,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb, q := tc.setup(t)
			defer tb.Close()
			rep, err := tb.Analyzer.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Kind != tc.wantKind {
				t.Fatalf("kind = %v, want %v (%s)", rep.Kind, tc.wantKind, rep.Conclusion)
			}
			if rep.Query == nil || rep.Query.Name() != q.Name() {
				t.Fatalf("report does not echo its query: %v", rep.Query)
			}
			if rep.Clock == nil || rep.Total() <= 0 {
				t.Fatalf("missing cost accounting: clock=%v", rep.Clock)
			}
			if len(rep.Consulted) == 0 {
				t.Fatalf("empty consulted-host set")
			}
			if rep.Conclusion == "" {
				t.Fatalf("empty conclusion")
			}
		})
	}
}

// countdownCtx is a deterministic cancellation source: Err returns nil for
// the first `remaining` checks, then context.Canceled forever. It lets the
// test cancel exactly at the N-th checkpoint of a diagnosis without any
// goroutine races.
type countdownCtx struct {
	context.Context
	remaining int
	tripped   bool
}

func (c *countdownCtx) Err() error {
	if c.tripped {
		return context.Canceled
	}
	if c.remaining <= 0 {
		c.tripped = true
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestRunCancellation asserts the context contract: a cancelled query
// returns the partial Report — with the cost actually incurred on its clock
// — together with ctx.Err().
func TestRunCancellation(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(110 * Millisecond)
	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Fatal("no alert")
	}
	q := ContentionQuery{Alert: alert}

	full, err := tb.Analyzer.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("uncancelled run: %v", err)
	}

	t.Run("cancelled-before-pointer-retrieval", func(t *testing.T) {
		ctx := &countdownCtx{Context: context.Background(), remaining: 0}
		rep, err := tb.Analyzer.Run(ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if rep == nil {
			t.Fatal("no partial report")
		}
		// Detection + alert delivery were already paid; nothing else was.
		if rep.Total() <= 0 || rep.Total() >= full.Total() {
			t.Fatalf("partial cost %v, want in (0, %v)", rep.Total(), full.Total())
		}
		if rep.HostsContacted != 0 || len(rep.Consulted) != 0 {
			t.Fatalf("cancelled run still contacted %d hosts", rep.HostsContacted)
		}
		if !strings.Contains(rep.Conclusion, "cancelled") {
			t.Fatalf("conclusion %q does not mention cancellation", rep.Conclusion)
		}
	})

	t.Run("cancelled-mid-host-queries", func(t *testing.T) {
		ctx := &countdownCtx{Context: context.Background(), remaining: 3}
		rep, err := tb.Analyzer.Run(ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if rep.Total() <= 0 || rep.Total() >= full.Total() {
			t.Fatalf("partial cost %v, want in (0, %v)", rep.Total(), full.Total())
		}
		if rep.HostsContacted >= full.HostsContacted {
			t.Fatalf("partial run contacted %d hosts, full run %d", rep.HostsContacted, full.HostsContacted)
		}
	})

	t.Run("pointer-query-dispatch", func(t *testing.T) {
		rep, err := tb.Analyzer.Run(context.Background(), &q)
		if err != nil {
			t.Fatalf("pointer query: %v", err)
		}
		if rep.Kind != full.Kind {
			t.Fatalf("pointer query kind %v != %v", rep.Kind, full.Kind)
		}
	})

	t.Run("expired-deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		rep, err := tb.Analyzer.Run(ctx, q)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
		if rep == nil || rep.Clock == nil {
			t.Fatal("no partial report for expired deadline")
		}
	})
}

// TestSubscribeMultiSubscriber asserts the streaming-alert contract at the
// facade: every subscriber sees every matching alert, the stream agrees with
// the poll-style AlertFor shim, and Close tears the streams down.
func TestSubscribeMultiSubscriber(t *testing.T) {
	tb, err := New(Dumbbell(3, 3), WithQueueDiscipline(QueuePriority))
	if err != nil {
		t.Fatal(err)
	}
	src, dst := tb.Host("L1"), tb.Host("R1")
	victim := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	StartTCP(tb.Net, src, dst, TCPConfig{Flow: victim, Priority: 1, Duration: 100 * Millisecond})
	aggSrc, aggDst := tb.Host("L2"), tb.Host("R2")
	StartUDP(tb.Net, aggSrc, UDPConfig{
		Flow:     FlowKey{Src: aggSrc.IP(), Dst: aggDst.IP(), SrcPort: 7, DstPort: 7, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * Millisecond, Duration: 5 * Millisecond,
	})

	sub1 := tb.Subscribe(AlertFilter{})
	sub2 := tb.Subscribe(AlertFilter{})
	noMatch := tb.Subscribe(AlertFilter{Kind: AlertTimeout})
	tb.Run(120 * Millisecond)
	tb.Close()

	drain := func(ch <-chan Alert) []Alert {
		var out []Alert
		for a := range ch {
			out = append(out, a)
		}
		return out
	}
	got1, got2, got3 := drain(sub1), drain(sub2), drain(noMatch)

	if len(tb.Alerts) == 0 {
		t.Fatal("scenario raised no alerts")
	}
	if len(got1) != len(tb.Alerts) || len(got2) != len(tb.Alerts) {
		t.Fatalf("subscribers got %d/%d alerts, log has %d", len(got1), len(got2), len(tb.Alerts))
	}
	for i := range tb.Alerts {
		if got1[i].Flow != tb.Alerts[i].Flow || got1[i].DetectedAt != tb.Alerts[i].DetectedAt {
			t.Fatalf("subscriber 1 alert %d differs from log", i)
		}
		if got2[i].Flow != tb.Alerts[i].Flow || got2[i].DetectedAt != tb.Alerts[i].DetectedAt {
			t.Fatalf("subscriber 2 alert %d differs from log", i)
		}
	}
	if len(got3) != 0 {
		t.Fatalf("kind filter leaked %d alerts", len(got3))
	}
	// Subscribe must deliver the same first-alert AlertFor reports.
	polled, ok := tb.AlertFor(victim)
	if !ok {
		t.Fatal("AlertFor lost the alert")
	}
	found := false
	for _, a := range got1 {
		if a.Flow == victim && a.DetectedAt == polled.DetectedAt {
			found = true
		}
	}
	if !found {
		t.Fatalf("stream missing the alert AlertFor reports")
	}
	if tb.AlertsDropped() != 0 {
		t.Fatalf("unexpected drops: %d", tb.AlertsDropped())
	}
}
