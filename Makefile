GO ?= go

.PHONY: all build vet test race bench bench-quick binaries verify clean

all: verify

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis (part of the tier-1 flow)
vet:
	$(GO) vet ./...

## test: full test suite
test:
	$(GO) test ./...

## race: race detector over the concurrent surface (analyzer fan-out, RPC,
## host-agent query executors) — scoped so the gate stays fast
race:
	$(GO) test -race ./internal/analyzer ./internal/rpc ./internal/hostagent

## bench: run the paper-figure benchmark suite with -benchmem and refresh
## the machine-readable perf-trajectory artifact (BENCH_PR2.json)
bench:
	scripts/bench.sh

## bench-quick: one pass over every benchmark in every package
bench-quick:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## binaries: every cmd/ tool and examples/ program must compile
binaries:
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/...
	@set -e; for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d"; \
	done

## verify: the tier-1 gate — build, vet, test, race, and binary compile checks
verify: build vet test race binaries

clean:
	rm -rf bin
	$(GO) clean -testcache
