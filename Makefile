GO ?= go

.PHONY: all build vet lint test race bench bench-quick binaries verify clean

all: verify

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis (part of the tier-1 flow)
vet:
	$(GO) vet ./...

## lint: gofmt + go vet + the splint invariant suite (detlint, sortlint,
## locklint, ctxlint — see README "Invariants & static analysis"); exits
## non-zero on any unformatted file or splint finding
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/splint ./...

## test: full test suite
test:
	$(GO) test ./...

## race: race detector over the concurrent surface (analyzer fan-out, RPC,
## host-agent query executors, sharded record store, event engine, cluster
## service plane, switch agents, the packet simulator, and the root-package
## integration tests) — scoped so the gate stays fast
race:
	$(GO) test -race ./internal/analyzer ./internal/rpc ./internal/hostagent ./internal/store ./internal/eventq ./internal/cluster ./internal/statesync ./internal/switchagent ./internal/netsim ./internal/trace .

## bench: run the paper-figure benchmark suite with -benchmem, refresh the
## machine-readable perf-trajectory artifact (BENCH_PR5.json; its baseline
## froze the PR 4 numbers) — including the diagnosis-throughput, bursty
## calendar, and snapshot-bootstrap sweeps — and print the before/after
## delta
bench:
	scripts/bench.sh

## bench-quick: the inner perf loop — Fig 8 + simulator event rate (incl.
## the scheduler ablation) + the bursty calendar sweep + the state-sync
## snapshot bootstrap + the indexed cold query + the pointer-backend
## ablation + the metrics scrape and deterministic alert storm, one
## iteration, no artifact refresh
bench-quick:
	$(GO) test -run '^$$' -bench 'Fig8LoadImbalance|SimulatorEventRate|AblationEventQueue|CalendarBursty|SnapshotBootstrap|ColdQueryIndexed|PointerBackends|MetricsScrape|AlertStorm|TraceOverhead' -benchmem -benchtime 1x .

## binaries: every cmd/ tool and examples/ program must compile
binaries:
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/...
	@set -e; for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d"; \
	done

## verify: the tier-1 gate — build, lint (gofmt + vet + splint), test,
## race, and binary compile checks
verify: build lint test race binaries

clean:
	rm -rf bin
	$(GO) clean -testcache
