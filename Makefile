GO ?= go

.PHONY: all build vet test bench binaries verify clean

all: verify

## build: compile every package
build:
	$(GO) build ./...

## vet: static analysis (part of the tier-1 flow)
vet:
	$(GO) vet ./...

## test: full test suite
test:
	$(GO) test ./...

## bench: run every benchmark once (the paper's figures as metrics)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## binaries: every cmd/ tool and examples/ program must compile
binaries:
	@mkdir -p bin
	$(GO) build -o bin/ ./cmd/...
	@set -e; for d in examples/*/; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null "./$$d"; \
	done

## verify: the tier-1 gate — build, vet, test, and binary compile checks
verify: build vet test binaries

clean:
	rm -rf bin
	$(GO) clean -testcache
