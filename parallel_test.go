package switchpointer

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/scenario"
)

// reportFingerprint flattens the determinism-relevant surface of a Report:
// outcome, culprits, consulted hosts, payloads, and the full virtual-time
// phase ledger. Two runs are "the same diagnosis" iff these match exactly.
func reportFingerprint(rep *analyzer.Report) string {
	return fmt.Sprintf("kind=%s conclusion=%q culprits=%+v cascade=%v links=%+v flows=%+v consulted=%v pointer=%d pruned=%d contacted=%d phases=%+v",
		rep.Kind, rep.Conclusion, rep.Culprits, rep.Cascade, rep.Links, rep.Flows,
		rep.Consulted, rep.PointerHosts, rep.PrunedHosts, rep.HostsContacted, rep.Clock.Phases())
}

// TestReportDeterminismAcrossWorkerCounts runs every alert-driven diagnosis
// procedure with fan-out widths 1, 4 and 16 (and twice per width) and
// requires identical Reports: the parallel merge must be a pure function of
// the inputs, never of worker scheduling.
func TestReportDeterminismAcrossWorkerCounts(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(110 * Millisecond)
	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Fatal("no alert")
	}

	queries := map[string]Query{
		"contention": ContentionQuery{Alert: alert},
		"red-lights": RedLightsQuery{Alert: alert},
		"cascade":    CascadeQuery{Alert: alert},
	}
	golden := make(map[string]string)
	goldenRep := make(map[string]*analyzer.Report)
	for _, workers := range []int{1, 4, 16} {
		tb.Analyzer.Workers = workers
		for rep := 0; rep < 2; rep++ {
			for name, q := range queries {
				r, err := tb.Analyzer.Run(context.Background(), q)
				if err != nil {
					t.Fatalf("workers=%d %s: %v", workers, name, err)
				}
				fp := reportFingerprint(r)
				if prev, seen := golden[name]; !seen {
					golden[name] = fp
					goldenRep[name] = r
				} else if fp != prev {
					t.Fatalf("workers=%d rep=%d: %s diverged\n--- golden ---\n%s\n--- got ---\n%s",
						workers, rep, name, prev, fp)
				} else if !reflect.DeepEqual(r.Culprits, goldenRep[name].Culprits) {
					t.Fatalf("workers=%d: %s culprits differ structurally", workers, name)
				}
			}
		}
	}
	if golden["contention"] == "" || len(goldenRep["contention"].Culprits) == 0 {
		t.Fatal("contention diagnosis found no culprits; determinism test is vacuous")
	}
}
