// Fat-tree + INT: SwitchPointer's clean-slate mode (§4.1.3) on a k=4
// fat-tree. With In-band Network Telemetry every switch appends its exact
// (switchID, epochID) — no CherryPick key links, no epoch extrapolation —
// which works on arbitrary topologies and lets α shrink below the commodity
// rule-update floor. This example traces an inter-pod flow, shows the exact
// 5-hop trajectory recorded at the destination, and verifies the pointer
// directory at every layer of the tree.
package main

import (
	"fmt"
	"log"

	sp "switchpointer"
)

func main() {
	tb, err := sp.New(sp.FatTree(4),
		sp.WithHeaderMode(sp.ModeINT),
		sp.WithEpoch(5*sp.Millisecond), // below the 15 ms commodity floor: INT allows it
		sp.WithDriftBound(sp.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	hosts := tb.Topo.Hosts()
	src, dst := hosts[0], hosts[15] // pod 0 → pod 3: a 5-switch path

	flow := sp.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 4242, DstPort: 80, Proto: 17}
	sp.StartUDP(tb.Net, src, sp.UDPConfig{
		Flow: flow, RateBps: 200_000_000, Start: 0, Duration: 20 * sp.Millisecond,
	})
	tb.Run(40 * sp.Millisecond)

	// The destination's flow record carries the exact trajectory.
	rec, ok := tb.HostAgents[dst.IP()].Store.Lookup(flow)
	if !ok {
		log.Fatal("no record at destination")
	}
	fmt.Printf("flow %v\n", flow)
	fmt.Printf("trajectory (%d switches, exact INT epochs):\n", len(rec.Path))
	for i, swID := range rec.Path {
		node, _ := tb.Net.NodeByID(swID)
		fmt.Printf("  %d. %-9s epochs %v\n", i+1, node.NodeName(), rec.Epochs[i])
	}

	// Every switch on the path holds a pointer naming the destination.
	dir := tb.Analyzer.Dir
	for _, swID := range rec.Path {
		ag := tb.SwitchAgents[swID]
		er, _ := rec.EpochsAt(swID)
		res := ag.PullPointers(er)
		node, _ := tb.Net.NodeByID(swID)
		fmt.Printf("pointer at %-9s: names destination=%v (source=%s, level %d)\n",
			node.NodeName(), res.Hosts.Get(dir.IndexOf(dst.IP())), res.Source, res.Info.Level)
	}
	fmt.Printf("per-packet INT overhead on this path: %d bytes (vs 8 B commodity tags)\n",
		5*8)
}
