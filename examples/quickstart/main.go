// Quickstart: build a SwitchPointer testbed, create a contention problem,
// let the host trigger fire, and diagnose it — the §3 worked example in ~60
// lines of public API.
package main

import (
	"fmt"
	"log"

	sp "switchpointer"
)

func main() {
	// A dumbbell: 3 hosts on each side of a shared 1G link, strict-priority
	// queues, α=10ms epochs, k=3 pointer levels (all defaults).
	tb, err := sp.NewTestbed(sp.Dumbbell(3, 3), sp.Options{Queue: sp.QueuePriority})
	if err != nil {
		log.Fatal(err)
	}

	// A long-lived low-priority TCP flow (the victim)...
	src, dst := tb.Host("L1"), tb.Host("R1")
	victim := sp.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	sp.StartTCP(tb.Net, src, dst, sp.TCPConfig{
		Flow: victim, Priority: 1, Duration: 100 * sp.Millisecond,
	})

	// ...and a high-priority UDP blast that starves it at t=50ms.
	aggSrc, aggDst := tb.Host("L2"), tb.Host("R2")
	sp.StartUDP(tb.Net, aggSrc, sp.UDPConfig{
		Flow:     sp.FlowKey{Src: aggSrc.IP(), Dst: aggDst.IP(), SrcPort: 7, DstPort: 7, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * sp.Millisecond, Duration: 5 * sp.Millisecond,
	})

	// Run the virtual testbed for 120 ms.
	tb.Run(120 * sp.Millisecond)

	// The victim's destination host detected the throughput collapse and
	// raised an alert carrying <switchID, epochIDs, byte counts> tuples.
	alert, ok := tb.AlertFor(victim)
	if !ok {
		log.Fatal("no alert was raised")
	}
	fmt.Printf("trigger: %s on %v at %v (%.2f → %.2f Gbps)\n",
		alert.Kind, alert.Flow, alert.DetectedAt, alert.PrevGbps, alert.CurGbps)

	// The analyzer pulls pointers from the switches on the victim's path,
	// prunes the search radius, queries the named hosts, and correlates.
	diag := tb.Analyzer.DiagnoseContention(alert)
	fmt.Printf("diagnosis:  %s\n", diag.Kind)
	fmt.Printf("conclusion: %s\n", diag.Conclusion)
	for _, c := range diag.Culprits {
		fmt.Printf("culprit:    %v (priority %d, %d bytes in the victim's epochs)\n",
			c.Flow, c.Priority, c.Bytes)
	}
	fmt.Printf("contacted %d host(s) out of %d named by pointers (%d pruned)\n",
		diag.HostsContacted, diag.PointerHosts, diag.PrunedHosts)
	fmt.Printf("end-to-end debugging time: %v\n", diag.Total())
}
