// Quickstart: build a SwitchPointer testbed, subscribe to the alert stream,
// create a contention problem, and diagnose it through the unified query API
// — the §3 worked example in ~60 lines of public API.
package main

import (
	"context"
	"fmt"
	"log"

	sp "switchpointer"
)

func main() {
	// A dumbbell: 3 hosts on each side of a shared 1G link, strict-priority
	// queues, α=10ms epochs, k=3 pointer levels (all defaults).
	tb, err := sp.New(sp.Dumbbell(3, 3), sp.WithQueueDiscipline(sp.QueuePriority))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// A long-lived low-priority TCP flow (the victim)...
	src, dst := tb.Host("L1"), tb.Host("R1")
	victim := sp.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	sp.StartTCP(tb.Net, src, dst, sp.TCPConfig{
		Flow: victim, Priority: 1, Duration: 100 * sp.Millisecond,
	})

	// ...and a high-priority UDP blast that starves it at t=50ms.
	aggSrc, aggDst := tb.Host("L2"), tb.Host("R2")
	sp.StartUDP(tb.Net, aggSrc, sp.UDPConfig{
		Flow:     sp.FlowKey{Src: aggSrc.IP(), Dst: aggDst.IP(), SrcPort: 7, DstPort: 7, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 50 * sp.Millisecond, Duration: 5 * sp.Millisecond,
	})

	// Subscribe to the victim's alert stream, then run the virtual testbed
	// for 120 ms.
	alerts := tb.Subscribe(sp.AlertFilter{Flow: victim})
	end := tb.Run(120 * sp.Millisecond)

	// The victim's destination host detected the throughput collapse and
	// raised an alert carrying <switchID, epochIDs, byte counts> tuples.
	var alert sp.Alert
	select {
	case alert = <-alerts:
	default:
		log.Fatal("no alert was raised")
	}
	fmt.Printf("trigger: %s on %v at %v (%.2f → %.2f Gbps); testbed at %v\n",
		alert.Kind, alert.Flow, alert.DetectedAt, alert.PrevGbps, alert.CurGbps, end)

	// The analyzer pulls pointers from the switches on the victim's path,
	// prunes the search radius, queries the named hosts, and correlates —
	// one cancellable query through the unified dispatch.
	rep, err := tb.Analyzer.Run(context.Background(), sp.ContentionQuery{Alert: alert})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosis:  %s\n", rep.Kind)
	fmt.Printf("conclusion: %s\n", rep.Conclusion)
	for _, c := range rep.Culprits {
		fmt.Printf("culprit:    %v (priority %d, %d bytes in the victim's epochs)\n",
			c.Flow, c.Priority, c.Bytes)
	}
	fmt.Printf("contacted %d host(s) out of %d named by pointers (%d pruned)\n",
		rep.HostsContacted, rep.PointerHosts, rep.PrunedHosts)
	fmt.Printf("end-to-end debugging time: %v\n", rep.Total())
}
