// Red lights: the §2.2 / §5.2 scenario built directly on the public API —
// a TCP flow crosses three switches and hits two sequential sub-millisecond
// high-priority bursts at different switches. No single switch sees anything
// anomalous; the accumulated damage is only visible end to end, and
// diagnosing it needs telemetry correlated ACROSS switches — exactly what
// the pointer directory enables.
package main

import (
	"context"
	"fmt"
	"log"

	sp "switchpointer"
)

func main() {
	// Chain S1–S2–S3, two hosts per switch: A,B | C,D | E,F.
	tb, err := sp.New(sp.Chain(2, 2, 2), sp.WithQueueDiscipline(sp.QueuePriority))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	a, b := tb.Host("h1-1"), tb.Host("h1-2")
	c, d := tb.Host("h2-1"), tb.Host("h2-2")
	e, f := tb.Host("h3-1"), tb.Host("h3-2")

	// Victim: low-priority TCP A→F across all three switches.
	victim := sp.FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	sp.StartTCP(tb.Net, a, f, sp.TCPConfig{Flow: victim, Priority: 1, Duration: 10 * sp.Millisecond})

	// Red light #1: B→D, 400µs at S1's egress, starting t=5ms.
	sp.StartUDP(tb.Net, b, sp.UDPConfig{
		Flow:     sp.FlowKey{Src: b.IP(), Dst: d.IP(), SrcPort: 20001, DstPort: 7001, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 5 * sp.Millisecond, Duration: 400 * sp.Microsecond,
	})
	// Red light #2: C→E, the next 400µs at S2's egress.
	sp.StartUDP(tb.Net, c, sp.UDPConfig{
		Flow:     sp.FlowKey{Src: c.IP(), Dst: e.IP(), SrcPort: 20002, DstPort: 7002, Proto: 17},
		Priority: 7, RateBps: 1_000_000_000,
		Start: 5*sp.Millisecond + 400*sp.Microsecond, Duration: 400 * sp.Microsecond,
	})

	alerts := tb.Subscribe(sp.AlertFilter{Flow: victim})
	tb.Run(30 * sp.Millisecond)

	var alert sp.Alert
	select {
	case alert = <-alerts:
	default:
		log.Fatal("destination F never triggered")
	}
	fmt.Printf("trigger at F: %v (%.2f → %.2f Gbps)\n", alert.DetectedAt, alert.PrevGbps, alert.CurGbps)

	rep, err := tb.Analyzer.Run(context.Background(), sp.RedLightsQuery{Alert: alert})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosis:  %s\n", rep.Kind)
	fmt.Printf("conclusion: %s\n", rep.Conclusion)
	fmt.Println("per-switch culprits (the spatial correlation):")
	for swID, culprits := range rep.PerSwitch {
		for _, c := range culprits {
			fmt.Printf("  switch %d: %v (priority %d)\n", swID, c.Flow, c.Priority)
		}
	}
	fmt.Printf("debugging time: %v (paper budget: ≈30 ms)\n", rep.Total())
}
