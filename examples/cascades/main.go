// Cascades: the §2.3 / §5.3 scenario — a high-priority flow delays a
// mid-priority flow, which in turn collides with and delays a low-priority
// TCP flow one switch downstream. Root-causing the TCP slowdown requires
// temporal correlation (epochs) and telemetry of a flow (B→D) that never
// experienced a problem itself. The analyzer chases causality backwards
// through the pointer directory.
package main

import (
	"context"
	"fmt"
	"log"

	sp "switchpointer"
)

func main() {
	// Chain with a third host under S1 (the no-cascade alternate sink).
	tb, err := sp.New(sp.Chain(3, 2, 2), sp.WithQueueDiscipline(sp.QueuePriority))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	a, b := tb.Host("h1-1"), tb.Host("h1-2")
	c, d := tb.Host("h2-1"), tb.Host("h2-2")
	e, f := tb.Host("h3-1"), tb.Host("h3-2")

	// Green (highest): UDP B→D for 10 ms — crosses S1→S2.
	bd := sp.FlowKey{Src: b.IP(), Dst: d.IP(), SrcPort: 20001, DstPort: 7001, Proto: 17}
	sp.StartUDP(tb.Net, b, sp.UDPConfig{
		Flow: bd, Priority: 7, RateBps: 1_000_000_000, Start: 0, Duration: 10 * sp.Millisecond})

	// Blue (middle): UDP A→F for 10 ms — queued behind B→D at S1.
	af := sp.FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 20002, DstPort: 7002, Proto: 17}
	sp.StartUDP(tb.Net, a, sp.UDPConfig{
		Flow: af, Priority: 4, RateBps: 1_000_000_000, Start: 0, Duration: 10 * sp.Millisecond})

	// Red (lowest): TCP C→E transferring 2 MB from t=12 ms — would have had
	// the fabric to itself if A→F had not been delayed.
	ce := sp.FlowKey{Src: c.IP(), Dst: e.IP(), SrcPort: 10000, DstPort: 80, Proto: 6}
	sender, _ := sp.StartTCP(tb.Net, c, e, sp.TCPConfig{
		Flow: ce, Priority: 1, Start: 12 * sp.Millisecond, TotalBytes: 2 << 20})

	alerts := tb.Subscribe(sp.AlertFilter{Flow: ce})
	tb.Run(100 * sp.Millisecond)
	fmt.Printf("C→E (2 MB) completed at %v (uncontended: ≈29 ms)\n", sender.CompletedAt)

	var alert sp.Alert
	select {
	case alert = <-alerts:
	default:
		log.Fatal("C→E never triggered")
	}
	rep, err := tb.Analyzer.Run(context.Background(), sp.CascadeQuery{Alert: alert})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosis:  %s\n", rep.Kind)
	fmt.Printf("conclusion: %s\n", rep.Conclusion)
	fmt.Println("causality chain:")
	for i, flow := range rep.Cascade {
		arrow := ""
		if i > 0 {
			arrow = "delayed by "
		}
		fmt.Printf("  %d. %s%v\n", i, arrow, flow)
	}
	fmt.Printf("debugging time: %v (paper budget: ≈50 ms, two rounds)\n", rep.Total())
}
