// Load imbalance: the §5.4 scenario — a switch with two parallel egress
// links misroutes by flow size instead of hashing. The per-interface flow
// size distributions, assembled from exactly the hosts the pointer directory
// names, expose the clean separation at the 1 MB boundary.
package main

import (
	"context"
	"fmt"
	"log"

	sp "switchpointer"
)

func main() {
	// Dumbbell with two parallel fabric links and 8 host pairs.
	const n = 8
	tb, err := sp.New(sp.ParallelLinks(n, n, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	suspect := tb.Switch("SL")

	// The malfunction: flows with a known size under 1 MB leave on port 0,
	// larger ones on port 1 (ports 0 and 1 are the parallel links).
	sizes := map[sp.FlowKey]int64{}
	suspect.RouteOverride = func(sw *sp.Switch, p *sp.Packet) (int, bool) {
		size, ok := sizes[p.Flow]
		if !ok {
			return 0, false
		}
		if size < 1<<20 {
			return 0, true
		}
		return 1, true
	}

	// n flows, alternating small (≈256 KB) and large (≈2–3 MB).
	const rate = 150_000_000
	var maxDur sp.Time
	for i := 0; i < n; i++ {
		src := tb.Host(fmt.Sprintf("L%d", i+1))
		dst := tb.Host(fmt.Sprintf("R%d", i+1))
		size := int64(256 << 10)
		if i%2 == 1 {
			size = int64(2<<20) + int64(i)*(128<<10)
		}
		flow := sp.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: uint16(30000 + i), DstPort: 5001, Proto: 17}
		sizes[flow] = size
		dur := sp.Time(size * 8 * int64(sp.Second) / rate)
		if dur > maxDur {
			maxDur = dur
		}
		sp.StartUDP(tb.Net, src, sp.UDPConfig{Flow: flow, RateBps: rate, Start: 0, Duration: dur})
	}
	end := tb.Run(maxDur + 100*sp.Millisecond)

	// Operator notices diverging interface counters and investigates the
	// most recent second of epochs.
	ag := tb.SwitchAgents[suspect.NodeID()]
	nowEpoch := ag.LocalEpochAt(end)
	rep, err := tb.Analyzer.Run(context.Background(), sp.ImbalanceQuery{
		Switch: suspect.NodeID(),
		Window: sp.EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch},
		At:     end,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("suspect: %s\n", suspect.NodeName())
	for _, l := range rep.Links {
		fmt.Printf("  interface (link %d): %d flows, sizes %d..%d bytes\n",
			l.Link, l.Flows, l.Min(), l.Max())
	}
	fmt.Printf("separated: %v (boundary ≈ %d KB)\n", rep.Separated, rep.Boundary>>10)
	fmt.Printf("conclusion: %s\n", rep.Conclusion)
	fmt.Printf("hosts contacted: %d, diagnosis time: %v\n", rep.HostsContacted, rep.Total())
}
