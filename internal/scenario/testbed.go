// Package scenario assembles complete SwitchPointer testbeds — network,
// topology, switch datapaths, host agents, analyzer — and provides the
// paper's §2/§5 workloads as reusable, parameterized scenarios.
package scenario

import (
	"context"
	"fmt"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/eventq"
	"switchpointer/internal/header"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/pointer"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
	"switchpointer/internal/topo"
)

// Options configures a testbed. Zero values select the paper's defaults.
type Options struct {
	Alpha simtime.Time // epoch size (default 10 ms)
	K     int          // pointer hierarchy levels (default 3)
	Eps   simtime.Time // clock-drift bound (default α)
	Delta simtime.Time // max one-hop delay (default 2α)

	Mode  header.Mode // telemetry embedding mode
	Queue netsim.QueueKind
	// SwitchBufBytes sizes each output queue (default 4 MB: the scenarios
	// need room for both a TCP standing queue and multi-MB bursts).
	SwitchBufBytes int

	Cost    rpc.CostModel    // analyzer communication costs
	HostCfg hostagent.Config // trigger engine tuning

	// RuleUpdateInterval models the commodity epoch-rule floor (§4.1.3).
	RuleUpdateInterval simtime.Time

	// ClockSeed drives deterministic switch clock-offset assignment.
	ClockSeed int64

	// PointerBackend selects the per-slot pointer-set implementation on
	// every switch (zero value: exact-adaptive). PointerBloomBits and
	// PointerBloomHashes tune the bloom backend (zero: 16384 bits / 4
	// hashes); pointer.Config.Validate rejects them for other backends.
	PointerBackend     pointer.Backend
	PointerBloomBits   int
	PointerBloomHashes int

	// HeapEventQueue schedules the simulation on the engine's 4-ary heap
	// instead of the default calendar queue — the `make bench` scheduler
	// ablation. Simulation results are byte-identical either way; only
	// wall-clock speed differs.
	HeapEventQueue bool
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 10 * simtime.Millisecond
	}
	if o.K == 0 {
		o.K = 3
	}
	if o.Eps == 0 {
		o.Eps = o.Alpha
	}
	if o.Delta == 0 {
		o.Delta = 2 * o.Alpha
	}
	if o.SwitchBufBytes == 0 {
		o.SwitchBufBytes = 4 << 20
	}
	if o.Cost == (rpc.CostModel{}) {
		o.Cost = rpc.DefaultCostModel()
	}
	return o
}

// Params returns the header parameters implied by the options.
func (o Options) Params() header.Params {
	return header.Params{Alpha: o.Alpha, Eps: o.Eps, Delta: o.Delta}
}

// Testbed is a fully assembled SwitchPointer deployment on the simulator.
type Testbed struct {
	Opt  Options
	Net  *netsim.Network
	Topo *topo.Topology

	Decoder      *header.Decoder
	SwitchAgents map[netsim.NodeID]*switchagent.Agent
	HostAgents   map[netsim.IPv4]*hostagent.Agent
	Analyzer     *analyzer.Analyzer

	// Alerts collects every trigger raised by any host, in order.
	Alerts []hostagent.Alert

	bus *hostagent.Bus
}

// BuildFunc constructs a topology on a fresh network.
type BuildFunc func(net *netsim.Network, cfg topo.Config) *topo.Topology

// NewTestbed wires a full deployment: topology, per-switch SwitchPointer
// datapaths + agents, per-host PathDump-extended agents with triggers armed,
// the cluster MPH directory, and the analyzer.
func NewTestbed(build BuildFunc, opt Options) (*Testbed, error) {
	opt = opt.withDefaults()
	var engineOpts []eventq.Option
	if opt.HeapEventQueue {
		engineOpts = append(engineOpts, eventq.WithHeapQueue())
	}
	net := netsim.New(engineOpts...)
	net.NewSwitchQueue = func() netsim.Queue { return netsim.NewQueue(opt.Queue, opt.SwitchBufBytes) }
	tp := build(net, topo.Config{Eps: opt.Eps, Seed: opt.ClockSeed})

	tb := &Testbed{
		Opt:          opt,
		Net:          net,
		Topo:         tp,
		SwitchAgents: make(map[netsim.NodeID]*switchagent.Agent),
		HostAgents:   make(map[netsim.IPv4]*hostagent.Agent),
		bus:          hostagent.NewBus(),
	}
	params := opt.Params()
	tb.Decoder = &header.Decoder{Topo: tp, Mode: opt.Mode, Params: params}

	ips := make([]netsim.IPv4, 0, len(tp.Hosts()))
	for _, h := range tp.Hosts() {
		ips = append(ips, h.IP())
	}
	for _, sw := range tp.Switches() {
		ag, err := switchagent.New(net, tp, sw, switchagent.Config{
			Pointer: pointer.Config{
				Alpha: opt.Alpha, K: opt.K, NumHosts: len(ips),
				Backend:     opt.PointerBackend,
				BloomBits:   opt.PointerBloomBits,
				BloomHashes: opt.PointerBloomHashes,
			},
			Mode:               opt.Mode,
			Params:             params,
			RuleUpdateInterval: opt.RuleUpdateInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: switch %s: %w", sw.NodeName(), err)
		}
		tb.SwitchAgents[sw.NodeID()] = ag
	}
	for _, h := range tp.Hosts() {
		ag := hostagent.New(net, h, tb.Decoder, opt.HostCfg)
		ag.OnAlert = func(a hostagent.Alert) {
			tb.Alerts = append(tb.Alerts, a)
			tb.bus.Publish(a)
		}
		ag.StartTriggers()
		tb.HostAgents[h.IP()] = ag
	}
	dir, err := analyzer.NewMemoryDirectory(ips, tb.SwitchAgents)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	tb.Analyzer = analyzer.New(tp, dir, tb.HostAgents, opt.Cost)
	if err := dir.Distribute(context.Background()); err != nil {
		return nil, fmt.Errorf("scenario: distributing MPH: %w", err)
	}
	return tb, nil
}

// Host returns a topology host by name, panicking when absent (scenario
// wiring errors are programming errors).
func (tb *Testbed) Host(name string) *netsim.Host {
	h, ok := tb.Topo.HostByName(name)
	if !ok {
		panic(fmt.Sprintf("scenario: no host %q", name))
	}
	return h
}

// Switch returns a topology switch by name, panicking when absent.
func (tb *Testbed) Switch(name string) *netsim.Switch {
	s, ok := tb.Topo.SwitchByName(name)
	if !ok {
		panic(fmt.Sprintf("scenario: no switch %q", name))
	}
	return s
}

// AlertFor returns the first collected alert for a flow. It is the
// poll-style compatibility shim over the alert log; prefer Subscribe for
// event-driven consumption.
func (tb *Testbed) AlertFor(flow netsim.FlowKey) (hostagent.Alert, bool) {
	for _, a := range tb.Alerts {
		if a.Flow == flow {
			return a, true
		}
	}
	return hostagent.Alert{}, false
}

// Subscribe registers an alert subscriber: every alert any host raises from
// now on that matches the filter is delivered on the returned buffered
// channel. Multiple subscribers each receive their own copy; a subscriber
// that stops draining loses alerts rather than blocking the simulation. The
// channel is closed when the testbed is Closed.
func (tb *Testbed) Subscribe(f hostagent.AlertFilter) <-chan hostagent.Alert {
	return tb.bus.Subscribe(f)
}

// SubscribeBuffered is Subscribe with an explicit channel capacity.
func (tb *Testbed) SubscribeBuffered(f hostagent.AlertFilter, buf int) <-chan hostagent.Alert {
	return tb.bus.SubscribeBuffered(f, buf)
}

// AlertsDropped reports alert deliveries lost to full subscriber buffers.
func (tb *Testbed) AlertsDropped() uint64 { return tb.bus.Dropped() }

// Close tears the testbed down: every subscription channel is closed (after
// draining) and further alerts go only to the Alerts log. Close is
// idempotent.
func (tb *Testbed) Close() { tb.bus.Close() }

// Run advances the testbed to absolute virtual time t and returns the final
// virtual time. Calling Run with a time at or before the current one is a
// no-op (the clock never moves backwards), so repeated Run calls past the
// end of a scenario are idempotent.
func (tb *Testbed) Run(t simtime.Time) simtime.Time {
	// >= so events scheduled at exactly the current time still fire.
	if t >= tb.Net.Now() {
		tb.Net.RunUntil(t)
	}
	return tb.Net.Now()
}
