package scenario

import (
	"fmt"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

// Flow priorities used across the scenarios (higher DSCP = served first).
const (
	PrioLow  uint8 = 1
	PrioMid  uint8 = 4
	PrioHigh uint8 = 7
)

// TooMuchTraffic is the §2.1 workload (Figs 1(a), 2, 7): a long-lived TCP
// flow across a shared bottleneck, hit by five batches of m high-priority
// 1 ms UDP bursts spaced 15 ms apart.
type TooMuchTraffic struct {
	Testbed *Testbed
	// Victim is the TCP flow under test.
	Victim netsim.FlowKey
	// VictimMeter tracks arrival throughput and inter-packet gaps at the
	// destination (the Fig 2 series).
	VictimMeter *transport.Meter
	// Sender/Receiver expose TCP internals (timeouts etc.).
	Sender   *transport.TCPSender
	Receiver *transport.TCPReceiver
	// BurstStarts are the batch start times.
	BurstStarts []simtime.Time
}

// TooMuchTrafficConfig parameterizes the workload.
type TooMuchTrafficConfig struct {
	M int // UDP flows per batch (the paper sweeps 1,2,4,8,16)
	// Microburst selects the §2.1 FIFO variant (Fig 2(b)): every flow gets
	// equal treatment. Default (false) is the priority variant (Fig 2(a)).
	Microburst bool
	Opt        Options
}

// NewTooMuchTraffic assembles the workload on a dumbbell.
func NewTooMuchTraffic(cfg TooMuchTrafficConfig) (*TooMuchTraffic, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("scenario: M must be ≥ 1")
	}
	opt := cfg.Opt
	if cfg.Microburst {
		opt.Queue = netsim.QueueFIFO
	} else {
		opt.Queue = netsim.QueuePriority
	}
	nSide := cfg.M + 1
	tb, err := NewTestbed(func(net *netsim.Network, tc topo.Config) *topo.Topology {
		return topo.Dumbbell(net, nSide, nSide, tc)
	}, opt)
	if err != nil {
		return nil, err
	}

	s := &TooMuchTraffic{Testbed: tb}
	src := tb.Host("L1")
	dst := tb.Host("R1")
	tcpPrio := PrioLow
	burstPrio := PrioHigh
	if cfg.Microburst {
		// FIFO: priorities are ignored by the queue; keep them equal so the
		// diagnosis sees a same-priority burst.
		tcpPrio, burstPrio = PrioLow, PrioLow
	}
	s.Victim = netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 10000, DstPort: 5001, Proto: netsim.ProtoTCP}
	s.VictimMeter = transport.NewMeter(simtime.Millisecond)
	victim := s.Victim
	meter := s.VictimMeter
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == victim {
			meter.Record(p.Size, now)
		}
	})
	s.Sender, s.Receiver = transport.StartTCP(tb.Net, src, dst, transport.TCPConfig{
		Flow:     s.Victim,
		Priority: tcpPrio,
		Start:    0,
		Duration: 100 * simtime.Millisecond,
	})

	// Five batches of m UDP bursts, 1 ms each, 15 ms apart, starting at
	// 20 ms; every burst flow has a distinct source-destination pair. Each
	// flow sends at 600 Mb/s: one flow contends without fully starving the
	// victim (the paper's m=1 curve dips, m=16 starves for ≈10 ms).
	for batch := 0; batch < 5; batch++ {
		start := (20 + simtime.Time(batch)*15) * simtime.Millisecond
		s.BurstStarts = append(s.BurstStarts, start)
		for i := 0; i < cfg.M; i++ {
			bSrc := tb.Host(fmt.Sprintf("L%d", i+2))
			bDst := tb.Host(fmt.Sprintf("R%d", i+2))
			transport.StartUDP(tb.Net, bSrc, transport.UDPConfig{
				Flow: netsim.FlowKey{Src: bSrc.IP(), Dst: bDst.IP(),
					SrcPort: uint16(20000 + batch), DstPort: uint16(7000 + i), Proto: netsim.ProtoUDP},
				Priority: burstPrio,
				RateBps:  600_000_000,
				Start:    start,
				Duration: simtime.Millisecond,
			})
		}
	}
	return s, nil
}

// RedLights is the §2.2 workload (Figs 1(b), 3): TCP A→F across S1–S2–S3
// hits two sequential 400 µs high-priority UDP bursts, B→D at S1 then C→E
// at S2.
type RedLights struct {
	Testbed *Testbed
	Victim  netsim.FlowKey // A→F
	FlowBD  netsim.FlowKey
	FlowCE  netsim.FlowKey
	// MeterAtS1/S2 measure the victim's throughput on the egress links of
	// S1 and S2 (the Fig 3 vantage points). MeterAtF measures at the
	// destination host.
	MeterAtS1, MeterAtS2 *transport.FlowMeters
	MeterAtF             *transport.Meter
	Sender               *transport.TCPSender
}

// NewRedLights assembles the workload on a 3-switch chain.
func NewRedLights(opt Options) (*RedLights, error) {
	opt.Queue = netsim.QueuePriority
	tb, err := NewTestbed(func(net *netsim.Network, tc topo.Config) *topo.Topology {
		return topo.Chain(net, []int{2, 2, 2}, tc)
	}, opt)
	if err != nil {
		return nil, err
	}
	s := &RedLights{Testbed: tb}
	a, b := tb.Host("h1-1"), tb.Host("h1-2")
	c, d := tb.Host("h2-1"), tb.Host("h2-2")
	e, f := tb.Host("h3-1"), tb.Host("h3-2")

	s.Victim = netsim.FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 10000, DstPort: 5001, Proto: netsim.ProtoTCP}
	s.FlowBD = netsim.FlowKey{Src: b.IP(), Dst: d.IP(), SrcPort: 20001, DstPort: 7001, Proto: netsim.ProtoUDP}
	s.FlowCE = netsim.FlowKey{Src: c.IP(), Dst: e.IP(), SrcPort: 20002, DstPort: 7002, Proto: netsim.ProtoUDP}

	// Fig 3 vantage points: victim throughput at S1's and S2's downstream
	// egress ports.
	s1, s2 := tb.Switch("S1"), tb.Switch("S2")
	s.MeterAtS1 = transport.NewFlowMeters(simtime.Millisecond / 2)
	s.MeterAtS2 = transport.NewFlowMeters(simtime.Millisecond / 2)
	s.MeterAtS1.AttachToPort(egressToward(tb, s1, "S2"))
	s.MeterAtS2.AttachToPort(egressToward(tb, s2, "S3"))
	s.MeterAtF = transport.NewMeter(simtime.Millisecond)
	victim := s.Victim
	meterF := s.MeterAtF
	f.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == victim {
			meterF.Record(p.Size, now)
		}
	})

	s.Sender, _ = transport.StartTCP(tb.Net, a, f, transport.TCPConfig{
		Flow:     s.Victim,
		Priority: PrioLow,
		Start:    0,
		Duration: 10 * simtime.Millisecond,
	})
	// Two sequential 400 µs red lights at 5.0 ms and 5.4 ms.
	transport.StartUDP(tb.Net, b, transport.UDPConfig{
		Flow: s.FlowBD, Priority: PrioHigh, RateBps: netsim.Rate1G,
		Start: 5 * simtime.Millisecond, Duration: 400 * simtime.Microsecond})
	transport.StartUDP(tb.Net, c, transport.UDPConfig{
		Flow: s.FlowCE, Priority: PrioHigh, RateBps: netsim.Rate1G,
		Start: 5*simtime.Millisecond + 400*simtime.Microsecond, Duration: 400 * simtime.Microsecond})
	return s, nil
}

// egressToward returns sw's egress port facing the named next switch.
func egressToward(tb *Testbed, sw *netsim.Switch, next string) *netsim.Port {
	nx := tb.Switch(next)
	link, ok := tb.Topo.LinkBetween(sw.NodeID(), nx.NodeID())
	if !ok {
		panic(fmt.Sprintf("scenario: no link %s→%s", sw.NodeName(), next))
	}
	from, _, _ := tb.Topo.LinkEndpoints(link)
	_ = from
	for _, pt := range sw.Ports() {
		if peer, ok := pt.Peer().Owner().(*netsim.Switch); ok && peer == nx {
			return pt
		}
	}
	panic("scenario: egress port not found")
}

// Cascades is the §2.3 workload (Figs 1(c), 4): high-priority B→D delays
// mid-priority A→F at S1, which in turn delays low-priority TCP C→E at S2.
type Cascades struct {
	Testbed *Testbed
	FlowBD  netsim.FlowKey // high priority, UDP, 10 ms
	FlowAF  netsim.FlowKey // mid priority, UDP, 10 ms
	FlowCE  netsim.FlowKey // low priority, TCP, 2 MB

	MeterBD, MeterAF, MeterCE *transport.Meter
	SenderCE                  *transport.TCPSender
}

// NewCascades assembles the workload. With induce=false flow B-D takes a
// disjoint path (its traffic stays under S1), reproducing the
// no-cascade baseline of Fig 4(a); with true it crosses S1→S2 and sets off
// the cascade of Fig 4(b).
func NewCascades(induce bool, opt Options) (*Cascades, error) {
	opt.Queue = netsim.QueuePriority
	tb, err := NewTestbed(func(net *netsim.Network, tc topo.Config) *topo.Topology {
		return topo.Chain(net, []int{3, 2, 2}, tc)
	}, opt)
	if err != nil {
		return nil, err
	}
	s := &Cascades{Testbed: tb}
	a, b, x := tb.Host("h1-1"), tb.Host("h1-2"), tb.Host("h1-3")
	c, d := tb.Host("h2-1"), tb.Host("h2-2")
	e, f := tb.Host("h3-1"), tb.Host("h3-2")

	bdDst := d
	if !induce {
		// The paper's baseline: B-D does not contend at S1 (e.g. routed on
		// another path). Here its stand-in destination X hangs off S1, so
		// the S1→S2 egress never sees it.
		bdDst = x
	}
	s.FlowBD = netsim.FlowKey{Src: b.IP(), Dst: bdDst.IP(), SrcPort: 20001, DstPort: 7001, Proto: netsim.ProtoUDP}
	s.FlowAF = netsim.FlowKey{Src: a.IP(), Dst: f.IP(), SrcPort: 20002, DstPort: 7002, Proto: netsim.ProtoUDP}
	s.FlowCE = netsim.FlowKey{Src: c.IP(), Dst: e.IP(), SrcPort: 10000, DstPort: 5001, Proto: netsim.ProtoTCP}

	s.MeterBD = meterAtHost(tb, bdDst, s.FlowBD)
	s.MeterAF = meterAtHost(tb, f, s.FlowAF)
	s.MeterCE = meterAtHost(tb, e, s.FlowCE)

	transport.StartUDP(tb.Net, b, transport.UDPConfig{
		Flow: s.FlowBD, Priority: PrioHigh, RateBps: netsim.Rate1G,
		Start: 0, Duration: 10 * simtime.Millisecond})
	transport.StartUDP(tb.Net, a, transport.UDPConfig{
		Flow: s.FlowAF, Priority: PrioMid, RateBps: netsim.Rate1G,
		Start: 0, Duration: 10 * simtime.Millisecond})
	s.SenderCE, _ = transport.StartTCP(tb.Net, c, e, transport.TCPConfig{
		Flow:       s.FlowCE,
		Priority:   PrioLow,
		Start:      12 * simtime.Millisecond,
		TotalBytes: 2 << 20,
	})
	return s, nil
}

func meterAtHost(tb *Testbed, h *netsim.Host, flow netsim.FlowKey) *transport.Meter {
	m := transport.NewMeter(simtime.Millisecond)
	h.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == flow {
			m.Record(p.Size, now)
		}
	})
	return m
}

// LoadImbalance is the §5.4 workload (Fig 8): a malfunctioning switch
// spreads flows across two parallel egress interfaces by *flow size* (<1 MB
// on one, ≥1 MB on the other) instead of by hash.
type LoadImbalance struct {
	Testbed *Testbed
	// Flows maps each flow to its intended total size in bytes.
	Flows map[netsim.FlowKey]int64
	// Suspect is the malfunctioning switch.
	Suspect *netsim.Switch
}

// SizeBoundary is the malfunction's split point (1 MB).
const SizeBoundary int64 = 1 << 20

// NewLoadImbalance assembles the workload with n flows, each from and to a
// distinct host pair, alternating sizes below/above the 1 MB boundary. The
// two parallel fabric links run at 10G so flow sizes arrive intact even with
// ~100 concurrent flows (the paper's testbed spreads flows over 96 servers).
func NewLoadImbalance(n int, opt Options) (*LoadImbalance, error) {
	if n < 2 {
		return nil, fmt.Errorf("scenario: need ≥ 2 flows")
	}
	opt.Queue = netsim.QueueFIFO
	tb, err := NewTestbed(func(net *netsim.Network, tc topo.Config) *topo.Topology {
		tc.FabricRateBps = netsim.Rate10G
		return topo.ParallelLinks(net, n, n, 2, tc)
	}, opt)
	if err != nil {
		return nil, err
	}
	s := &LoadImbalance{Testbed: tb, Flows: make(map[netsim.FlowKey]int64)}
	s.Suspect = tb.Switch("SL")

	// The malfunction: route by known flow size instead of hash. Ports 0
	// and 1 of SL are the two parallel fabric links.
	sizeOf := make(map[netsim.FlowKey]int64)
	s.Suspect.RouteOverride = func(sw *netsim.Switch, p *netsim.Packet) (int, bool) {
		sz, ok := sizeOf[p.Flow]
		if !ok {
			return 0, false
		}
		if sz < SizeBoundary {
			return 0, true
		}
		return 1, true
	}

	rate := int64(150_000_000)
	for i := 0; i < n; i++ {
		src := tb.Host(fmt.Sprintf("L%d", i+1))
		dst := tb.Host(fmt.Sprintf("R%d", i+1))
		var size int64
		if i%2 == 0 {
			size = 128<<10 + int64(i)*(4<<10) // small flows, well under 1 MB
		} else {
			size = 2<<20 + int64(i)*(16<<10) // large flows, above 1 MB
		}
		flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(),
			SrcPort: uint16(30000 + i), DstPort: 5001, Proto: netsim.ProtoUDP}
		s.Flows[flow] = size
		sizeOf[flow] = size
		duration := simtime.Time(size * 8 * int64(simtime.Second) / rate)
		transport.StartUDP(tb.Net, src, transport.UDPConfig{
			Flow: flow, RateBps: rate, Start: 0, Duration: duration})
	}
	return s, nil
}

// MaxFlowDuration returns how long the longest flow transmits — run the
// testbed at least this long before diagnosing.
func (s *LoadImbalance) MaxFlowDuration() simtime.Time {
	var max simtime.Time
	for _, size := range s.Flows {
		d := simtime.Time(size * 8 * int64(simtime.Second) / 150_000_000)
		if d > max {
			max = d
		}
	}
	return max
}

// TopKWorkload drives Fig 12: flows from one side of a dumbbell to
// nRelevant of the nTotal servers on the other side, so only nRelevant
// servers hold telemetry for the queried switch.
type TopKWorkload struct {
	Testbed  *Testbed
	Queried  *netsim.Switch
	Relevant int
	Total    int
}

// NewTopKWorkload assembles the workload: nTotal servers exist; flows are
// sent to the first nRelevant of them.
func NewTopKWorkload(nRelevant, nTotal int, opt Options) (*TopKWorkload, error) {
	if nRelevant < 1 || nRelevant > nTotal {
		return nil, fmt.Errorf("scenario: bad relevant/total %d/%d", nRelevant, nTotal)
	}
	opt.Queue = netsim.QueueFIFO
	tb, err := NewTestbed(func(net *netsim.Network, tc topo.Config) *topo.Topology {
		return topo.Dumbbell(net, 2, nTotal, tc)
	}, opt)
	if err != nil {
		return nil, err
	}
	s := &TopKWorkload{Testbed: tb, Queried: tb.Switch("SL"), Relevant: nRelevant, Total: nTotal}
	src := tb.Host("L1")
	for i := 0; i < nRelevant; i++ {
		dst := tb.Host(fmt.Sprintf("R%d", i+1))
		flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(),
			SrcPort: uint16(40000 + i), DstPort: 5001, Proto: netsim.ProtoUDP}
		transport.StartUDP(tb.Net, src, transport.UDPConfig{
			Flow: flow, RateBps: 20_000_000 + int64(i)*1_000_000,
			Start: 0, Duration: 10 * simtime.Millisecond})
	}
	return s, nil
}
