package scenario

import (
	"testing"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

func TestTestbedAssembly(t *testing.T) {
	s, err := NewTooMuchTraffic(TooMuchTrafficConfig{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	if len(tb.SwitchAgents) != 2 || len(tb.HostAgents) != 6 {
		t.Fatalf("agents: %d switches, %d hosts", len(tb.SwitchAgents), len(tb.HostAgents))
	}
	for _, ag := range tb.SwitchAgents {
		if ag.MPH() == nil {
			t.Fatalf("MPH not distributed to %v", ag)
		}
	}
	if tb.Analyzer == nil || tb.Decoder == nil {
		t.Fatalf("missing analyzer/decoder")
	}
}

func TestTestbedPanicsOnBadNames(t *testing.T) {
	s, _ := NewTooMuchTraffic(TooMuchTrafficConfig{M: 1})
	defer func() {
		if recover() == nil {
			t.Fatalf("bad host name should panic")
		}
	}()
	s.Testbed.Host("nope")
}

func TestBadConfigs(t *testing.T) {
	if _, err := NewTooMuchTraffic(TooMuchTrafficConfig{M: 0}); err == nil {
		t.Fatalf("M=0 accepted")
	}
	if _, err := NewLoadImbalance(1, Options{}); err == nil {
		t.Fatalf("1 flow accepted")
	}
	if _, err := NewTopKWorkload(5, 4, Options{}); err == nil {
		t.Fatalf("relevant > total accepted")
	}
}

// TestFig2aShape verifies the priority-contention curve: pre-burst line
// rate, near-zero during bursts (scaling with m), recovery between batches,
// and growing inter-packet gaps with m.
func TestFig2aShape(t *testing.T) {
	gapByM := map[int]float64{}
	for _, m := range []int{1, 8} {
		s, err := NewTooMuchTraffic(TooMuchTrafficConfig{M: m})
		if err != nil {
			t.Fatal(err)
		}
		s.Testbed.Run(110 * simtime.Millisecond)
		meter := s.VictimMeter

		// Pre-burst steady state near 1G.
		pre := avg(meter.GbpsSeries(100)[12:19])
		if pre < 0.80 {
			t.Fatalf("m=%d: pre-burst throughput %.3f", m, pre)
		}
		// During the third burst (t=50ms) the victim collapses; with m=8
		// the backlog keeps it down for several ms.
		during := meter.GbpsAt(51)
		if m == 8 && during > pre/2 {
			t.Fatalf("m=8: no collapse during burst: %.3f vs %.3f", during, pre)
		}
		// Max inter-packet gap grows with m.
		gapByM[m] = meter.MaxGap().Milliseconds()
	}
	if gapByM[8] <= gapByM[1] {
		t.Fatalf("gaps not increasing with m: %v", gapByM)
	}
	// m=8 starves ≈ 8 ms (8×1ms backlog at 1G): gap in the several-ms range.
	if gapByM[8] < 3 {
		t.Fatalf("m=8 max gap = %.2f ms, want multiple ms", gapByM[8])
	}
}

// TestFig2bShape verifies the microburst variant: throughput dips occur but
// inter-packet gaps stay much smaller than under priority queueing (packets
// interleave in the FIFO instead of waiting out the whole burst).
func TestFig2bShape(t *testing.T) {
	mkGap := func(micro bool) float64 {
		s, err := NewTooMuchTraffic(TooMuchTrafficConfig{M: 8, Microburst: micro})
		if err != nil {
			t.Fatal(err)
		}
		s.Testbed.Run(110 * simtime.Millisecond)
		return s.VictimMeter.MaxGap().Milliseconds()
	}
	prioGap := mkGap(false)
	fifoGap := mkGap(true)
	if fifoGap >= prioGap {
		t.Fatalf("FIFO gap (%.2fms) should be well under priority gap (%.2fms)", fifoGap, prioGap)
	}
}

// TestFig3Shape verifies the red-lights accumulation: the victim's
// throughput as seen at S2's egress dips when the red lights hit, and the
// destination sees a clear drop around t=5–6 ms.
func TestFig3Shape(t *testing.T) {
	s, err := NewRedLights(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Testbed.Run(30 * simtime.Millisecond)

	// Destination-side drop around the red lights (buckets 5–6).
	f := s.MeterAtF
	pre := avg(f.GbpsSeries(10)[2:5])
	dip := f.GbpsAt(5)
	if pre < 0.5 {
		t.Fatalf("victim did not ramp up: pre=%.3f", pre)
	}
	if dip > pre*0.7 {
		t.Fatalf("no dip at the red lights: pre=%.3f dip=%.3f", pre, dip)
	}
	// The per-switch meters saw the victim's packets.
	if s.MeterAtS1.Meter(s.Victim) == nil || s.MeterAtS2.Meter(s.Victim) == nil {
		t.Fatalf("switch vantage meters empty")
	}
	// An alert fired at F.
	if _, ok := s.Testbed.AlertFor(s.Victim); !ok {
		t.Fatalf("no alert at destination")
	}
}

// TestFig4Shape verifies the cascade effect on completion time: C-E finishes
// much later when the cascade is induced.
func TestFig4Shape(t *testing.T) {
	run := func(induce bool) simtime.Time {
		s, err := NewCascades(induce, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Testbed.Run(200 * simtime.Millisecond)
		if !s.SenderCE.Done() {
			t.Fatalf("induce=%v: C-E did not finish", induce)
		}
		return s.SenderCE.CompletedAt
	}
	base := run(false)
	cascaded := run(true)
	if cascaded <= base+5*simtime.Millisecond {
		t.Fatalf("cascade did not delay C-E: base=%v cascaded=%v", base, cascaded)
	}
}

// TestFig4MidFlowDelayed verifies the middle of the chain: A-F's arrivals
// are pushed back by B-D when the cascade is induced.
func TestFig4MidFlowDelayed(t *testing.T) {
	s, err := NewCascades(true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Testbed.Run(100 * simtime.Millisecond)
	// With the cascade, A-F's delivery extends past 10 ms (its send window)
	// because it sat queued behind B-D at S1.
	af := s.MeterAF
	var lastBusy int
	for i := 0; i < af.Buckets(); i++ {
		if af.BytesAt(i) > 0 {
			lastBusy = i
		}
	}
	if lastBusy < 12 {
		t.Fatalf("A-F not delayed: last activity in bucket %d", lastBusy)
	}
}

func TestLoadImbalanceFlowsRouted(t *testing.T) {
	s, err := NewLoadImbalance(6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(300 * simtime.Millisecond)
	// Every destination host received its flow.
	for flow := range s.Flows {
		ag := tb.HostAgents[flow.Dst]
		if ag == nil {
			t.Fatalf("no agent for %v", flow.Dst)
		}
		rec, ok := ag.Store.Lookup(flow)
		if !ok {
			t.Fatalf("flow %v not recorded", flow)
		}
		if rec.TagLink == 0 {
			t.Fatalf("flow %v has no link tag", flow)
		}
	}
	// Small and large flows used different links.
	links := map[int64]map[uint32]bool{} // small/large → set of links
	for flow, size := range s.Flows {
		rec, _ := tb.HostAgents[flow.Dst].Store.Lookup(flow)
		cls := int64(0)
		if size >= SizeBoundary {
			cls = 1
		}
		if links[cls] == nil {
			links[cls] = map[uint32]bool{}
		}
		links[cls][uint32(rec.TagLink)] = true
	}
	for l := range links[0] {
		if links[1][l] {
			t.Fatalf("small and large flows share link %d", l)
		}
	}
}

func TestTopKWorkloadOnlyRelevantHostsHaveRecords(t *testing.T) {
	s, err := NewTopKWorkload(3, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(30 * simtime.Millisecond)
	withRecords := 0
	for i := 1; i <= 8; i++ {
		h := tb.Host("R" + string(rune('0'+i)))
		if tb.HostAgents[h.IP()].Store.Len() > 0 {
			withRecords++
		}
	}
	if withRecords != 3 {
		t.Fatalf("hosts with records = %d, want 3", withRecords)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 10*simtime.Millisecond || o.K != 3 || o.Eps != o.Alpha || o.Delta != 2*o.Alpha {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Params().Alpha != o.Alpha {
		t.Fatalf("Params mismatch")
	}
}

func TestAlertsCollected(t *testing.T) {
	s, err := NewRedLights(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Testbed.Run(30 * simtime.Millisecond)
	if len(s.Testbed.Alerts) == 0 {
		t.Fatalf("no alerts collected")
	}
	if _, ok := s.Testbed.AlertFor(netsim.FlowKey{Src: 1}); ok {
		t.Fatalf("bogus flow matched")
	}
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
