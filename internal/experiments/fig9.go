package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"switchpointer/internal/mph"
	"switchpointer/internal/pointer"
	"switchpointer/internal/simtime"
)

// DatapathBench measures the real per-packet cost of the SwitchPointer
// datapath (Fig 9). The paper benchmarks OVS-DPDK on one 3.1 GHz core with
// 100 K distinct destination IPs; here the same per-packet pipeline runs as
// plain Go:
//
//	baseline ("vanilla OVS"): parse the L2/L3 header from the frame bytes,
//	    validate the IP checksum, and look up the output port — plus a
//	    calibrated per-packet touch pass standing in for DPDK's rx/tx and
//	    memory costs (documented substitution; the paper's softswitch peaks
//	    at ≈7 Mpps and that base cost is not Go's to reproduce).
//	SwitchPointer (k): baseline + ONE minimal-perfect-hash lookup + k
//	    parallel pointer-bit writes + the tag push.
//
// Throughput at packet size p is min(measured pps × p × 8, line rate): the
// paper's claim — line rate at ≥256 B, degradation below — is a property of
// the measured per-packet cost, which is executed for real here.
type DatapathBench struct {
	table  *mph.Table
	ptrs   map[int]*pointer.Structure // k → structure
	routes map[uint32]int32
	frames [][]byte
	dsts   []uint32
	sink   uint64
}

const (
	benchHosts  = 100_000
	frameStride = 4096
	dstOffset   = 30 // IPv4 dst within a classic Ethernet+IP header
)

// NewDatapathBench builds the 100 K-destination benchmark state.
func NewDatapathBench() (*DatapathBench, error) {
	d := &DatapathBench{
		ptrs:   make(map[int]*pointer.Structure),
		routes: make(map[uint32]int32, benchHosts),
	}
	dsts := make([]uint32, benchHosts)
	base := uint32(10 << 24)
	for i := range dsts {
		dsts[i] = base + uint32(i)
	}
	table, err := mph.Build(dsts)
	if err != nil {
		return nil, err
	}
	d.table = table
	d.dsts = dsts
	for i, ip := range dsts {
		d.routes[ip] = int32(i % 48) // 48-port switch
	}
	for _, k := range []int{1, 5} {
		ptr, err := pointer.New(pointer.Config{
			Alpha: 10 * simtime.Millisecond, K: k, NumHosts: benchHosts,
			Backend: pointer.BackendDense}, nil)
		if err != nil {
			return nil, err
		}
		ptr.Advance(0)
		d.ptrs[k] = ptr
	}
	// Pre-build frames cycling through destinations.
	d.frames = make([][]byte, frameStride)
	for i := range d.frames {
		fr := make([]byte, 128)
		binary.BigEndian.PutUint32(fr[dstOffset:], dsts[(i*2654435761)%benchHosts])
		d.frames[i] = fr
	}
	return d, nil
}

// StepBaseline processes one packet through the vanilla pipeline.
func (d *DatapathBench) StepBaseline(i int) {
	fr := d.frames[i&(frameStride-1)]
	dst := binary.BigEndian.Uint32(fr[dstOffset:])
	// IP header checksum validation (10 16-bit words).
	var sum uint32
	for off := 14; off < 34; off += 2 {
		sum += uint32(binary.BigEndian.Uint16(fr[off:]))
	}
	// Calibrated softswitch base cost: touch the first 96 bytes the way a
	// DPDK rx/tx path and OVS flow-key extraction would.
	var mix uint64
	for off := 0; off < 96; off += 8 {
		mix = mix*1099511628211 ^ binary.LittleEndian.Uint64(fr[off:])
	}
	port := d.routes[dst]
	d.sink += uint64(sum) + uint64(port) + mix&1
}

// StepSwitchPointer processes one packet through baseline + SwitchPointer
// with the k-level pointer structure.
func (d *DatapathBench) StepSwitchPointer(i, k int) {
	d.StepBaseline(i)
	fr := d.frames[i&(frameStride-1)]
	dst := binary.BigEndian.Uint32(fr[dstOffset:])
	idx := d.table.Lookup(dst) // ONE hash op
	d.ptrs[k].Touch(idx)       // k parallel bit writes
	// Tag push: write the 8 bytes of linkID+epochID VLAN tags.
	binary.LittleEndian.PutUint64(fr[120:], uint64(idx))
}

// Sink defeats dead-code elimination.
func (d *DatapathBench) Sink() uint64 { return d.sink }

// measure times fn over enough iterations for a stable ns/packet estimate.
func measure(fn func(i int)) (nsPerPkt float64) {
	const warm = 200_000
	for i := 0; i < warm; i++ {
		fn(i)
	}
	iters := 2_000_000
	//splint:wallclock fig 9 measures real per-packet datapath cost (wall-clock-exempt in the drift gate)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(i)
	}
	//splint:wallclock fig 9 measures real per-packet datapath cost (wall-clock-exempt in the drift gate)
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// fig9Sizes is the packet-size sweep (the paper shows 64, 128, ≥256).
var fig9Sizes = []int{64, 128, 256, 512, 1024, 1500}

// lineRateGbps is the modelled NIC rate of the Fig 9 testbed.
const lineRateGbps = 10.0

// gbpsAt converts a per-packet cost into achievable throughput at size p,
// capped at line rate.
func gbpsAt(nsPerPkt float64, p int) float64 {
	pps := 1e9 / nsPerPkt
	gbps := pps * float64(p) * 8 / 1e9
	if gbps > lineRateGbps {
		return lineRateGbps
	}
	return gbps
}

// Fig9 regenerates Figure 9: datapath throughput vs packet size for the
// vanilla baseline and SwitchPointer with k=1 and k=5.
func Fig9() (*Result, error) {
	d, err := NewDatapathBench()
	if err != nil {
		return nil, err
	}
	base := measure(d.StepBaseline)
	k1 := measure(func(i int) { d.StepSwitchPointer(i, 1) })
	k5 := measure(func(i int) { d.StepSwitchPointer(i, 5) })

	r := &Result{ID: "fig9", Title: "datapath throughput vs packet size (Fig 9)"}
	tab := Table{
		Title: "throughput (Gbps), 10GE line rate, 100K destinations, one core",
		Cols:  []string{"pkt size (B)", "OVS baseline", "SwitchPointer k=1", "SwitchPointer k=5"},
	}
	for _, p := range fig9Sizes {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", p),
			f(gbpsAt(base, p)),
			f(gbpsAt(k1, p)),
			f(gbpsAt(k5, p)),
		})
	}
	r.AddTable(tab)
	r.AddNote("measured per-packet cost: baseline %.1f ns, k=1 %.1f ns, k=5 %.1f ns (%.2f/%.2f/%.2f Mpps)",
		base, k1, k5, 1e3/base, 1e3/k1, 1e3/k5)
	r.AddNote("paper: line rate at ≥256 B; ≈22%% below baseline at 128 B; k=1 vs k=5 nearly identical (one hash op regardless of k)")
	if s := d.Sink(); s == 42 {
		r.AddNote("sink %d", s)
	}
	return r, nil
}
