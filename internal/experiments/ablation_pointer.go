package experiments

import (
	"fmt"
	"math/rand"

	"switchpointer/internal/bitset"
	"switchpointer/internal/pointer"
	"switchpointer/internal/simtime"
)

// pointerAblationResult is one backend's measurements on the shared
// workload.
type pointerAblationResult struct {
	resident   int    // allocated slot-container bytes after the workload
	modeled    int    // provisioned memory claim (MemoryBytes)
	pushedB    uint64 // encoded bytes shipped by top-level pushes
	candidates int    // total hosts named across the probe queries
	falsePos   int    // candidates the dense oracle does not name
}

// runPointerAblation replays one deterministic sparse workload — activeHosts
// distinct hosts of an n-host universe touched over 40 epochs, the regime a
// datacenter switch's slots actually live in — against one backend, probing
// accuracy against the supplied oracle sets (nil oracle = this IS the oracle
// run, which must see zero false positives by definition).
func runPointerAblation(cfg pointer.Config, oracle []*bitset.Set) (pointerAblationResult, []*bitset.Set, error) {
	var res pointerAblationResult
	s, err := pointer.New(cfg, nil)
	if err != nil {
		return res, nil, err
	}
	// Identical schedule per backend: the generator is re-seeded, so every
	// backend sees the same touches in the same order.
	rng := rand.New(rand.NewSource(8))
	active := make([]int, 4096)
	seen := make(map[int]bool, len(active))
	for i := range active {
		h := rng.Intn(cfg.NumHosts)
		for seen[h] {
			h = rng.Intn(cfg.NumHosts)
		}
		seen[h] = true
		active[i] = h
	}
	s.Advance(0)
	for e := simtime.Epoch(0); e < 40; e++ {
		s.Advance(e)
		for t := 0; t < 512; t++ {
			s.Touch(active[rng.Intn(len(active))])
		}
	}
	res.resident = s.ResidentBytes()
	res.modeled = s.MemoryBytes()

	// Probe pulls: per-epoch resolution, one coarse window, and the whole
	// retained history.
	probes := []simtime.EpochRange{
		{Lo: 36, Hi: 39},
		{Lo: 0, Hi: 15},
		{Lo: 0, Hi: 39},
	}
	outs := make([]*bitset.Set, len(probes))
	for i, r := range probes {
		bits, _ := s.Query(r)
		outs[i] = bits
		res.candidates += bits.Count()
		want := bits
		if oracle != nil {
			want = oracle[i]
		}
		fn := 0
		want.ForEach(func(h int) bool {
			if !bits.Get(h) {
				fn++
			}
			return true
		})
		if fn > 0 {
			return res, nil, fmt.Errorf("experiments: %s backend missed %d touched hosts on pull %v (one-sided-error contract broken)", cfg.Backend, fn, r)
		}
		bits.ForEach(func(h int) bool {
			if !want.Get(h) {
				res.falsePos++
			}
			return true
		})
	}

	// Play out to two top-level seals (top slot spans α² = 256 epochs) so
	// the push accounting reflects the backend's actual encoded bytes.
	s.Advance(520)
	if pushes, _ := s.Pushes(); pushes != 2 {
		return res, nil, fmt.Errorf("experiments: expected 2 top-level pushes, got %d", pushes)
	}
	_, res.pushedB = s.Pushes()
	return res, outs, nil
}

// AblationPointerMemory regenerates the Fig 10-style memory/bandwidth
// tradeoff across the three pointer-slot backends at n = 100 K and 1 M — the
// quantified claim behind the adaptive default: exact answers at a fraction
// of the dense layout's resident memory, with the bloom sketch as the
// constant-memory/approximate corner. The run itself enforces the gates: a
// byte-exact adaptive/dense match, zero bloom false negatives, ≥10× resident
// reduction at 1 M, and n-independent bloom memory.
func AblationPointerMemory() (*Result, error) {
	r := &Result{ID: "ablation-pointer-memory", Title: "pointer slot backends: memory/bandwidth/accuracy (4096 active hosts, k=3, α=16)"}
	tab := Table{
		Title: "per-switch pointer structure after the sparse workload",
		Cols:  []string{"n", "backend", "resident B", "modeled B", "pushed B", "candidates", "false pos"},
	}
	bloomModeled := map[int]int{}
	var ratio1M float64
	for _, n := range []int{100_000, 1_000_000} {
		base := pointer.Config{Alpha: 16 * simtime.Millisecond, K: 3, NumHosts: n}
		var dense, adaptive, bloom pointerAblationResult
		var oracle []*bitset.Set
		for _, be := range []pointer.Backend{pointer.BackendDense, pointer.BackendAdaptive, pointer.BackendBloom} {
			cfg := base
			cfg.Backend = be
			res, outs, err := runPointerAblation(cfg, oracle)
			if err != nil {
				return nil, err
			}
			switch be {
			case pointer.BackendDense:
				dense, oracle = res, outs
			case pointer.BackendAdaptive:
				adaptive = res
				if res.falsePos != 0 || res.candidates != dense.candidates {
					return nil, fmt.Errorf("experiments: adaptive diverged from dense oracle at n=%d (%d false positives, %d vs %d candidates)",
						n, res.falsePos, res.candidates, dense.candidates)
				}
			case pointer.BackendBloom:
				bloom = res
			}
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%d", n), be.String(),
				fmt.Sprintf("%d", res.resident),
				fmt.Sprintf("%d", res.modeled),
				fmt.Sprintf("%d", res.pushedB),
				fmt.Sprintf("%d", res.candidates),
				fmt.Sprintf("%d", res.falsePos),
			})
		}
		if n == 1_000_000 {
			ratio1M = float64(dense.resident) / float64(adaptive.resident)
			if ratio1M < 10 {
				return nil, fmt.Errorf("experiments: adaptive resident reduction at n=1M is %.1f×, want ≥10×", ratio1M)
			}
		}
		bloomModeled[n] = bloom.modeled
	}
	if bloomModeled[100_000] != bloomModeled[1_000_000] {
		return nil, fmt.Errorf("experiments: bloom memory varies with n (%d B at 100K vs %d B at 1M), want constant",
			bloomModeled[100_000], bloomModeled[1_000_000])
	}
	r.AddTable(tab)
	r.AddTable(Table{
		Title: "gates",
		Cols:  []string{"gate", "value"},
		Rows: [][]string{
			{"adaptive/dense resident ratio at n=1M (dense÷adaptive)", f(ratio1M)},
			{"bloom modeled bytes, n-independent", fmt.Sprintf("%d", bloomModeled[1_000_000])},
		},
	})
	r.AddNote("adaptive answers every pull byte-identically to dense; bloom candidates are supersets (false positives only, zero false negatives — enforced above)")
	r.AddNote("pushed B is the encoded top-slot wire size: full width for dense, occupancy-proportional for adaptive, constant filter for bloom")
	return r, nil
}
