// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §5, §6) from the reproduction, rendering aligned-text
// artifacts whose rows/series mirror the paper's plots. EXPERIMENTS.md
// records the paper-vs-measured comparison for each.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one renderable table: a header row plus data rows.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// Result is one regenerated experiment artifact.
type Result struct {
	ID     string // e.g. "fig2a"
	Title  string
	Tables []Table
	Notes  []string
}

// AddTable appends a table.
func (r *Result) AddTable(t Table) { r.Tables = append(r.Tables, t) }

// AddNote appends a free-form note line.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned-text artifact.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	for _, t := range r.Tables {
		b.WriteString("\n")
		if t.Title != "" {
			fmt.Fprintf(&b, "-- %s --\n", t.Title)
		}
		b.WriteString(renderAligned(t.Cols, t.Rows))
	}
	if len(r.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// renderAligned lays out a table with right-aligned columns.
func renderAligned(cols []string, rows [][]string) string {
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(cols)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ms formats a float of milliseconds.
func ms(v float64) string { return fmt.Sprintf("%.2f", v) }
