package experiments

import (
	"fmt"

	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/transport"
)

// burstSweep is the paper's m values: UDP flows per burst batch.
var burstSweep = []int{1, 2, 4, 8, 16}

// fig2Run executes the §2.1 workload for one m and returns the victim's
// receiver meter.
func fig2Run(m int, microburst bool) (*transport.Meter, error) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: m, Microburst: microburst})
	if err != nil {
		return nil, err
	}
	s.Testbed.Run(110 * simtime.Millisecond)
	return s.VictimMeter, nil
}

func fig2Result(id, title string, microburst bool) (*Result, error) {
	r := &Result{ID: id, Title: title}
	meters := make(map[int]*transport.Meter, len(burstSweep))
	for _, m := range burstSweep {
		meter, err := fig2Run(m, microburst)
		if err != nil {
			return nil, err
		}
		meters[m] = meter
	}

	const buckets = 100
	cols := []string{"t(ms)"}
	for _, m := range burstSweep {
		cols = append(cols, fmt.Sprintf("m=%d", m))
	}
	thr := Table{Title: "throughput of the low-priority TCP flow (Gbps)", Cols: cols}
	gap := Table{Title: "max inter-packet arrival time (ms)", Cols: cols}
	for t := 0; t < buckets; t += 2 {
		trow := []string{fmt.Sprintf("%d", t)}
		grow := []string{fmt.Sprintf("%d", t)}
		for _, m := range burstSweep {
			trow = append(trow, f(meters[m].GbpsAt(t)))
			grow = append(grow, ms(meters[m].MaxGapAt(t).Milliseconds()))
		}
		thr.Rows = append(thr.Rows, trow)
		gap.Rows = append(gap.Rows, grow)
	}
	r.AddTable(thr)
	r.AddTable(gap)

	summary := Table{
		Title: "per-m summary",
		Cols:  []string{"m", "min Gbps in burst window", "max gap (ms)", "delivered (MB)"},
	}
	for _, m := range burstSweep {
		minDuring := 10.0
		for t := 20; t < 100; t++ {
			if g := meters[m].GbpsAt(t); g < minDuring {
				minDuring = g
			}
		}
		summary.Rows = append(summary.Rows, []string{
			fmt.Sprintf("%d", m),
			f(minDuring),
			ms(meters[m].MaxGap().Milliseconds()),
			f(float64(meters[m].TotalBytes()) / (1 << 20)),
		})
	}
	r.AddTable(summary)
	r.AddNote("five 1 ms UDP burst batches at t=20,35,50,65,80 ms; victim: 100 ms TCP flow over a 1G dumbbell")
	return r, nil
}

// Fig2a regenerates Figure 2(a): priority-based flow contention.
func Fig2a() (*Result, error) {
	return fig2Result("fig2a", "too much traffic — priority-based contention (Fig 2a)", false)
}

// Fig2b regenerates Figure 2(b): microburst-based flow contention (FIFO).
func Fig2b() (*Result, error) {
	return fig2Result("fig2b", "too much traffic — microburst contention, FIFO (Fig 2b)", true)
}
