package experiments

import (
	"fmt"

	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// Fig3 regenerates Figure 3: the victim flow A→F's throughput observed at
// switches S1 and S2 while crossing two sequential 400 µs red lights.
func Fig3() (*Result, error) {
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		return nil, err
	}
	s.Testbed.Run(30 * simtime.Millisecond)

	r := &Result{ID: "fig3", Title: "too many red lights — victim throughput at S1 and S2 (Fig 3)"}
	m1 := s.MeterAtS1.Meter(s.Victim)
	m2 := s.MeterAtS2.Meter(s.Victim)
	tab := Table{
		Title: "flow A-F throughput (Gbps), 0.5 ms buckets",
		Cols:  []string{"t(ms)", "at S1", "at S2", "at F"},
	}
	for b := 0; b < 20; b++ {
		t := float64(b) * 0.5
		atF := s.MeterAtF.GbpsAt(b / 2)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.1f", t),
			f(metGbps(m1, b)),
			f(metGbps(m2, b)),
			f(atF),
		})
	}
	r.AddTable(tab)
	r.AddNote("red lights: B→D at 5.0 ms (S1), C→E at 5.4 ms (S2), 400 µs each, high priority")
	r.AddNote("TCP timeouts on victim: %d", s.Sender.Timeouts)
	return r, nil
}

type gbpser interface{ GbpsAt(i int) float64 }

func metGbps(m gbpser, i int) float64 {
	if m == nil {
		return 0
	}
	return m.GbpsAt(i)
}

// Fig4 regenerates Figure 4: per-flow throughput timelines without (a) and
// with (b) the traffic cascade.
func Fig4() (*Result, error) {
	r := &Result{ID: "fig4", Title: "traffic cascades — flow timelines (Fig 4)"}
	for _, induce := range []bool{false, true} {
		s, err := scenario.NewCascades(induce, scenario.Options{})
		if err != nil {
			return nil, err
		}
		s.Testbed.Run(200 * simtime.Millisecond)
		label := "(a) without cascade"
		if induce {
			label = "(b) with cascade"
		}
		tab := Table{
			Title: label + " — throughput (Gbps)",
			Cols:  []string{"t(ms)", "B-D (high)", "A-F (mid)", "C-E (low)"},
		}
		for t := 0; t < 50; t += 2 {
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%d", t),
				f(s.MeterBD.GbpsAt(t)),
				f(s.MeterAF.GbpsAt(t)),
				f(s.MeterCE.GbpsAt(t)),
			})
		}
		r.AddTable(tab)
		r.AddNote("%s: C-E (2 MB TCP) completed at %v", label, s.SenderCE.CompletedAt)
	}
	return r, nil
}
