package experiments

import (
	"context"
	"fmt"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/rpc"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// parallelTotal re-runs a query on the same testbed under the
// CostModel.Parallel accounting — the concurrent fan-out the analyzer
// actually executes (one overlapped ConnInit per round instead of the
// paper's sequential per-server initiations) — and returns the total
// virtual time. Diagnoses are read-only, so the re-run is cheap and leaves
// the sequential figures untouched.
func parallelTotal(tb *scenario.Testbed, q analyzer.Query) (simtime.Time, error) {
	saved := tb.Analyzer.Cost
	cost := saved
	cost.Parallel = true
	tb.Analyzer.Cost = cost
	rep, err := tb.Analyzer.Run(context.Background(), q)
	tb.Analyzer.Cost = saved
	if err != nil {
		return 0, err
	}
	return rep.Total(), nil
}

// Fig7 regenerates Figure 7: the debugging-time breakdown for the
// priority-contention problem as the number of UDP burst flows grows.
// Phases: problem detection, alert to analyzer, pointer retrieval,
// diagnosis. The trailing "parallel total" series shows the same diagnosis
// under CostModel.Parallel (the §6.2 pooling/fan-out ablation endpoint).
func Fig7() (*Result, error) {
	r := &Result{ID: "fig7", Title: "debugging time breakdown, priority contention (Fig 7)"}
	tab := Table{
		Title: "virtual-time breakdown (ms)",
		Cols: []string{"UDP flows", "detection", "alert", "pointer retrieval", "diagnosis", "total",
			"hosts contacted", "parallel total"},
	}
	for _, m := range burstSweep {
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: m})
		if err != nil {
			return nil, err
		}
		tb := s.Testbed
		tb.Run(110 * simtime.Millisecond)
		alert, ok := tb.AlertFor(s.Victim)
		if !ok {
			return nil, fmt.Errorf("fig7: no alert for m=%d", m)
		}
		q := analyzer.ContentionQuery{Alert: alert}
		d, err := tb.Analyzer.Run(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("fig7: %w", err)
		}
		if d.Kind != analyzer.KindPriorityContention {
			r.AddNote("m=%d classified as %s", m, d.Kind)
		}
		par, err := parallelTotal(tb, q)
		if err != nil {
			return nil, fmt.Errorf("fig7: parallel: %w", err)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", m),
			ms(d.Clock.PhaseTotal("detection").Milliseconds()),
			ms(d.Clock.PhaseTotal("alert").Milliseconds()),
			ms(d.Clock.PhaseTotal("pointer-retrieval").Milliseconds()),
			ms(d.Clock.PhaseTotal("diagnosis").Milliseconds()),
			ms(d.Total().Milliseconds()),
			fmt.Sprintf("%d", d.HostsContacted),
			ms(par.Milliseconds()),
		})
	}
	r.AddTable(tab)
	r.AddNote("paper: total under 100 ms for all m; diagnosis grows with consulted hosts")
	r.AddNote("parallel total: CostModel.Parallel fan-out accounting (ConnInit overlapped once per round)")
	return r, nil
}

// fig8Sweep is the Fig 8 x-axis: number of servers holding relevant flows.
var fig8Sweep = []int{4, 8, 16, 32, 64, 96}

// Fig8 regenerates Figure 8: load-imbalance diagnosis latency as a function
// of the number of servers with relevant flows.
func Fig8() (*Result, error) {
	return fig8WithSweep(fig8Sweep)
}

// Fig8Quick is a reduced sweep for fast benchmark runs.
func Fig8Quick() (*Result, error) {
	return fig8WithSweep([]int{4, 16, 48})
}

func fig8WithSweep(sweep []int) (*Result, error) {
	r := &Result{ID: "fig8", Title: "load-imbalance diagnosis latency (Fig 8)"}
	tab := Table{
		Title: "diagnosis time vs servers with relevant flows",
		Cols:  []string{"servers", "diagnosis (ms)", "separated", "boundary (KB)", "parallel (ms)"},
	}
	for _, n := range sweep {
		s, err := scenario.NewLoadImbalance(n, scenario.Options{})
		if err != nil {
			return nil, err
		}
		tb := s.Testbed
		end := tb.Run(s.MaxFlowDuration() + 100*simtime.Millisecond)
		ag := tb.SwitchAgents[s.Suspect.NodeID()]
		nowEpoch := ag.LocalEpochAt(end)
		window := simtime.EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch} // most recent 1 s
		q := analyzer.ImbalanceQuery{Switch: s.Suspect.NodeID(), Window: window, At: end}
		rep, err := tb.Analyzer.Run(context.Background(), q)
		if err != nil {
			return nil, fmt.Errorf("fig8: %w", err)
		}
		if !rep.Separated {
			return nil, fmt.Errorf("fig8: n=%d separation not detected (%s)", n, rep.Conclusion)
		}
		par, err := parallelTotal(tb, q)
		if err != nil {
			return nil, fmt.Errorf("fig8: parallel: %w", err)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n),
			ms(rep.Clock.Total().Milliseconds()),
			fmt.Sprintf("%v", rep.Separated),
			fmt.Sprintf("%d", rep.Boundary>>10),
			ms(par.Milliseconds()),
		})
	}
	r.AddTable(tab)
	r.AddNote("paper: latency grows almost linearly with consulted servers, ≈400 ms at 96")
	r.AddNote("parallel (ms): the same diagnosis under CostModel.Parallel — flat in the server count, the §6.2 fix")
	return r, nil
}

// fig12Sweep is the Fig 12 x-axis.
var fig12Sweep = []int{1, 8, 16, 32, 64, 96}

// Fig12 regenerates Figure 12: top-100 query response time, SwitchPointer vs
// the PathDump baseline, versus the number of servers holding relevant
// telemetry (out of 96).
func Fig12() (*Result, error) {
	return fig12WithSweep(fig12Sweep, 96)
}

// Fig12Quick is a reduced sweep for fast benchmark runs.
func Fig12Quick() (*Result, error) {
	return fig12WithSweep([]int{1, 8, 24}, 24)
}

func fig12WithSweep(sweep []int, total int) (*Result, error) {
	r := &Result{ID: "fig12", Title: "top-100 query response time (Fig 12)"}
	tab := Table{
		Title: fmt.Sprintf("response time (ms), %d servers total", total),
		Cols: []string{"relevant servers", "SwitchPointer", "  PathDump",
			"SP hosts", "PD hosts", "SP conn-init share", "SP parallel"},
	}
	for _, n := range sweep {
		s, err := scenario.NewTopKWorkload(n, total, scenario.Options{})
		if err != nil {
			return nil, err
		}
		tb := s.Testbed
		now := tb.Run(50 * simtime.Millisecond)
		window := simtime.EpochRange{Lo: 0, Hi: 10}
		spQuery := analyzer.TopKQuery{
			Switch: s.Queried.NodeID(), K: 100, Window: window, Mode: analyzer.ModeSwitchPointer, At: now}
		sp, err := tb.Analyzer.Run(context.Background(), spQuery)
		if err != nil {
			return nil, fmt.Errorf("fig12: %w", err)
		}
		pd, err := tb.Analyzer.Run(context.Background(), analyzer.TopKQuery{
			Switch: s.Queried.NodeID(), K: 100, Window: window, Mode: analyzer.ModePathDump, At: now})
		if err != nil {
			return nil, fmt.Errorf("fig12: %w", err)
		}
		spPar, err := parallelTotal(tb, spQuery)
		if err != nil {
			return nil, fmt.Errorf("fig12: parallel: %w", err)
		}
		spTotal := sp.Clock.Total()
		// Connection initiation is the sequential per-server term of the
		// query phase (§6.2's bottleneck).
		initShare := 0.0
		if spTotal > 0 {
			init := simtime.Time(sp.HostsContacted) * rpc.DefaultCostModel().ConnInit
			initShare = float64(init) / float64(spTotal)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n),
			ms(spTotal.Milliseconds()),
			ms(pd.Clock.Total().Milliseconds()),
			fmt.Sprintf("%d", sp.HostsContacted),
			fmt.Sprintf("%d", pd.HostsContacted),
			fmt.Sprintf("%.0f%%", 100*initShare),
			ms(spPar.Milliseconds()),
		})
	}
	r.AddTable(tab)
	r.AddNote("paper: PathDump flat at ≈0.35 s (contacts all servers); SwitchPointer grows with relevant servers and matches PathDump only when every server is relevant")
	r.AddNote("SP parallel: SwitchPointer under CostModel.Parallel — the sequential conn-init term gone, response ≈flat")
	return r, nil
}

// AblationRPCPooling quantifies the §6.2 optimization: thread-per-connection
// vs pooled connections for the 96-server query.
func AblationRPCPooling() (*Result, error) {
	r := &Result{ID: "ablation-rpc", Title: "ablation — connection pooling (§6.2 optimization)"}
	tab := Table{
		Title: "96-server top-k query (ms)",
		Cols:  []string{"mode", "first query", "repeat query"},
	}
	for _, m := range []struct {
		name             string
		pooled, parallel bool
	}{
		{"thread-per-conn", false, false},
		{"pooled", true, false},
		{"parallel fan-out", false, true},
		{"pooled+parallel", true, true},
	} {
		cost := rpc.DefaultCostModel()
		cost.Pooled = m.pooled
		cost.Parallel = m.parallel
		servers := make([]string, 96)
		for i := range servers {
			servers[i] = fmt.Sprintf("h%d", i)
		}
		clock := rpc.NewClock(cost, 0)
		clock.HostsQueried("q", servers, nil)
		first := clock.Total()
		clock.HostsQueried("q", servers, nil)
		second := clock.Total() - first
		tab.Rows = append(tab.Rows, []string{m.name, ms(first.Milliseconds()), ms(second.Milliseconds())})
	}
	r.AddTable(tab)
	r.AddNote("pooling eliminates the sequential connection-initiation term that dominates Fig 12; the parallel fan-out overlaps the initiations instead (one ConnInit per round), and pooled+parallel drops repeat rounds to RTT+exec")
	return r, nil
}
