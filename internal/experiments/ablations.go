package experiments

import (
	"context"
	"fmt"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/header"
	"switchpointer/internal/mph"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// AblationStrawmanHash quantifies the §4.1.2 strawman: a collision-averse
// plain hash table versus the minimal perfect hash.
func AblationStrawmanHash() (*Result, error) {
	r := &Result{ID: "ablation-hash", Title: "ablation — strawman hash table vs minimal perfect hash (§4.1.2)"}
	tab := Table{
		Title: "storage for one pointer set at 0.1% expected collisions",
		Cols:  []string{"keys", "strawman buckets", "strawman (MB)", "MPH+bitmap (KB)", "ratio"},
	}
	for _, m := range []int{100_000, 1_000_000} {
		buckets := mph.BucketsForCollisionTarget(m, 0.001*float64(m))
		strawBytes := mph.StrawmanTableBytes(buckets)
		mphSz, err := measuredMPHSize(m)
		if err != nil {
			return nil, err
		}
		exact := mphSz + (m+63)/64*8
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", buckets),
			f(float64(strawBytes) / (1 << 20)),
			f(float64(exact) / 1024),
			fmt.Sprintf("%.0fx", float64(strawBytes)/float64(exact)),
		})
	}
	r.AddTable(tab)
	r.AddNote("paper: 100K keys at 0.1%% collisions need ≈50M buckets (500× the keys); or k hash ops/packet with small tables — MPH gives 1 op and exact bits")
	return r, nil
}

// AblationPruning measures the §4.3 search-radius reduction on the
// priority-contention diagnosis.
func AblationPruning() (*Result, error) {
	r := &Result{ID: "ablation-pruning", Title: "ablation — topology pruning of the search radius (§4.3)"}
	tab := Table{
		Title: "hosts contacted during diagnosis",
		Cols:  []string{"m (burst flows)", "pruning on", "pruning off", "diagnosis on (ms)", "diagnosis off (ms)"},
	}
	for _, m := range []int{4, 8, 16} {
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: m})
		if err != nil {
			return nil, err
		}
		tb := s.Testbed
		tb.Run(110 * simtime.Millisecond)
		alert, ok := tb.AlertFor(s.Victim)
		if !ok {
			return nil, fmt.Errorf("ablation-pruning: no alert for m=%d", m)
		}
		on, err := tb.Analyzer.Run(context.Background(), analyzer.ContentionQuery{Alert: alert})
		if err != nil {
			return nil, fmt.Errorf("ablation-pruning: %w", err)
		}
		tb.Analyzer.DisablePruning = true
		off, err := tb.Analyzer.Run(context.Background(), analyzer.ContentionQuery{Alert: alert})
		tb.Analyzer.DisablePruning = false
		if err != nil {
			return nil, fmt.Errorf("ablation-pruning: %w", err)
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", on.HostsContacted),
			fmt.Sprintf("%d", off.HostsContacted),
			ms(on.Clock.PhaseTotal("diagnosis").Milliseconds()),
			ms(off.Clock.PhaseTotal("diagnosis").Milliseconds()),
		})
	}
	r.AddTable(tab)
	r.AddNote("pruning drops hosts whose traffic cannot share the victim's output queues (ACK-path and reverse-direction receivers)")
	return r, nil
}

// AblationHeaderModes compares the commodity double-tag embedding with the
// clean-slate INT mode (§4.1.3).
func AblationHeaderModes() (*Result, error) {
	r := &Result{ID: "ablation-header", Title: "ablation — commodity double-tag vs INT embedding (§4.1.3)"}
	over := Table{
		Title: "per-packet wire overhead (bytes)",
		Cols:  []string{"path length", "commodity", "INT"},
	}
	for _, n := range []int{1, 2, 3, 5} {
		over.Rows = append(over.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", header.WireOverheadBytes(header.ModeCommodity, n)),
			fmt.Sprintf("%d", header.WireOverheadBytes(header.ModeINT, n)),
		})
	}
	r.AddTable(over)

	// Epoch-range width at the far end of a 5-switch path: commodity pays
	// extrapolation uncertainty, INT is exact.
	p := header.Params{Alpha: 10 * simtime.Millisecond, Eps: 10 * simtime.Millisecond, Delta: 20 * simtime.Millisecond}
	ranges := header.ExtrapolateEpochs(5, 2, 100, p)
	unc := Table{
		Title: "epochs to examine per switch on a 5-switch path (α=10ms, ε=α, Δ=2α)",
		Cols:  []string{"hop", "commodity (range width)", "INT"},
	}
	for i, er := range ranges {
		unc.Rows = append(unc.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", er.Len()),
			"1",
		})
	}
	r.AddTable(unc)
	r.AddNote("commodity mode: fixed 8 B, clos topologies, ≥15 ms rule floor; INT: 8 B/hop, arbitrary topologies, exact epochs")
	return r, nil
}

// AblationEpochRuleFloor quantifies the §4.1.3 commodity constraint: the
// epoch tag can lag its true epoch when the switch cannot update the rule
// per epoch.
func AblationEpochRuleFloor() (*Result, error) {
	r := &Result{ID: "ablation-rulefloor", Title: "ablation — commodity epoch-rule update floor (§4.1.3)"}
	tab := Table{
		Title: "epoch tag staleness vs rule-update floor (α=10ms)",
		Cols:  []string{"floor (ms)", "rule updates/s", "max stale epochs"},
	}
	for _, floorMs := range []int{0, 15, 30, 50} {
		e := header.Embedder{
			Params:             header.Params{Alpha: 10 * simtime.Millisecond},
			RuleUpdateInterval: simtime.Time(floorMs) * simtime.Millisecond,
		}
		stale := 0
		if floorMs > 10 {
			stale = (floorMs + 9) / 10
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", floorMs),
			f(e.EpochRuleUpdatesPerSecond()),
			fmt.Sprintf("%d", stale),
		})
	}
	r.AddTable(tab)
	r.AddNote("the paper's commodity OpenFlow switch updates rules every ~15 ms, lower-bounding α; software/INT switches track every epoch")
	return r, nil
}
