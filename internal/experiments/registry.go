package experiments

import "fmt"

// Runner produces one experiment artifact.
type Runner func() (*Result, error)

// Entry couples an experiment ID with its runner and description.
type Entry struct {
	ID    string
	Desc  string
	Run   Runner
	Heavy bool // noticeably long-running (multi-second sims)
}

// Registry lists every regenerable table/figure, in paper order.
func Registry() []Entry {
	return []Entry{
		{ID: "fig2a", Desc: "priority-based flow contention timelines", Run: Fig2a},
		{ID: "fig2b", Desc: "microburst-based flow contention timelines", Run: Fig2b},
		{ID: "fig3", Desc: "too many red lights: victim throughput at S1/S2", Run: Fig3},
		{ID: "fig4", Desc: "traffic cascades: flow timelines with/without cascade", Run: Fig4},
		{ID: "fig7", Desc: "debugging time breakdown for priority contention", Run: Fig7},
		{ID: "fig8", Desc: "load-imbalance diagnosis latency vs servers", Run: Fig8, Heavy: true},
		{ID: "fig9", Desc: "datapath throughput vs packet size", Run: Fig9, Heavy: true},
		{ID: "fig10a", Desc: "switch memory overhead vs k", Run: Fig10a, Heavy: true},
		{ID: "fig10b", Desc: "data→control bandwidth vs k", Run: Fig10b},
		{ID: "fig11", Desc: "pointer recycling period vs α", Run: Fig11},
		{ID: "fig12", Desc: "top-100 query response time vs servers", Run: Fig12},
		{ID: "sec6.1", Desc: "switch memory constants", Run: Sec61Memory, Heavy: true},
		{ID: "ablation-rpc", Desc: "connection pooling ablation", Run: AblationRPCPooling},
		{ID: "ablation-hash", Desc: "strawman hash table vs MPH", Run: AblationStrawmanHash, Heavy: true},
		{ID: "ablation-pruning", Desc: "search-radius pruning ablation", Run: AblationPruning},
		{ID: "ablation-header", Desc: "commodity vs INT embedding", Run: AblationHeaderModes},
		{ID: "ablation-packetmix", Desc: "throughput under realistic packet mixes", Run: AblationPacketMix, Heavy: true},
		{ID: "ablation-rulefloor", Desc: "commodity epoch-rule floor", Run: AblationEpochRuleFloor},
		{ID: "ablation-coldtier", Desc: "cold-tier read-back: index, compaction, tiering", Run: AblationColdTier},
		{ID: "ablation-pointer-memory", Desc: "pointer slot backends: adaptive/dense/bloom memory-accuracy tradeoff", Run: AblationPointerMemory, Heavy: true},
		{ID: "diagnosis-throughput", Desc: "reports/sec under overlapping alerts at admission limits 1/4/16", Run: DiagnosisThroughput},
	}
}

// Find returns the registry entry with the given ID.
func Find(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
