package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	r := &Result{ID: "x", Title: "demo"}
	r.AddTable(Table{Title: "t", Cols: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}, {"333", "4"}}})
	r.AddNote("hello %d", 7)
	out := r.Render()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "note: hello 7") {
		t.Fatalf("render:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "333") && !strings.Contains(line, "333   4") {
			t.Fatalf("alignment wrong: %q", line)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f(0) != "0" || f(123.4) != "123" || f(12.34) != "12.3" || f(1.234) != "1.234" {
		t.Fatalf("f() formats: %s %s %s %s", f(0), f(123.4), f(12.34), f(1.234))
	}
	if ms(1.5) != "1.50" {
		t.Fatalf("ms() = %s", ms(1.5))
	}
}

func TestRegistryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Run == nil || e.Desc == "" {
			t.Fatalf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := Find("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatalf("unknown ID accepted")
	}
}

// Per-figure smoke+shape tests. The heavyweight sweeps use reduced variants
// where available; the full sweeps run in the benchmark harness.

func TestFig3Runs(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) == 0 || len(r.Tables[0].Rows) != 20 {
		t.Fatalf("fig3 shape: %+v", r.Tables)
	}
}

func TestFig4Runs(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Fatalf("fig4 wants 2 tables")
	}
	// The cascade run must complete later than the baseline run; both notes
	// carry completion stamps.
	if len(r.Notes) != 2 {
		t.Fatalf("fig4 notes: %v", r.Notes)
	}
}

func TestFig7Runs(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	if len(rows) != len(burstSweep) {
		t.Fatalf("fig7 rows = %d", len(rows))
	}
	// Totals under 100 ms (the paper's headline for Fig 7).
	for _, row := range rows {
		total, err := strconv.ParseFloat(row[5], 64)
		if err != nil || total <= 0 || total > 100 {
			t.Fatalf("fig7 total out of budget: %v (%v)", row, err)
		}
	}
	// Diagnosis time grows with m (more consulted hosts).
	first, _ := strconv.ParseFloat(rows[0][4], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][4], 64)
	if last <= first {
		t.Fatalf("fig7 diagnosis not increasing: %v vs %v", first, last)
	}
}

func TestFig8QuickShape(t *testing.T) {
	r, err := Fig8Quick()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	var prev float64
	for i, row := range rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && v <= prev {
			t.Fatalf("fig8 latency not increasing: %v", rows)
		}
		prev = v
	}
}

func TestFig10bShape(t *testing.T) {
	r, err := Fig10b()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	// k=1, n=1M, α=10 ≈ 100 Mbps; k=2 ≈ 10 Mbps (column 2 is n=1M α=10).
	k1, _ := strconv.ParseFloat(rows[0][2], 64)
	k2, _ := strconv.ParseFloat(rows[1][2], 64)
	if k1 < 90 || k1 > 110 {
		t.Fatalf("k=1 bandwidth = %v, want ≈100 Mbps", k1)
	}
	ratio := k1 / k2
	if ratio < 9 || ratio > 11 {
		t.Fatalf("k=1/k=2 ratio = %v, want ≈10", ratio)
	}
}

func TestFig11Anchors(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	l1, _ := strconv.ParseFloat(rows[0][1], 64)
	l2, _ := strconv.ParseFloat(rows[0][2], 64)
	if l1 != 90 || l2 != 900 {
		t.Fatalf("α=10 anchors wrong: %v", rows[0])
	}
}

func TestFig12QuickShape(t *testing.T) {
	r, err := Fig12Quick()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	// PathDump is ≈flat; SwitchPointer grows and stays below PathDump until
	// every server is relevant.
	for i, row := range rows {
		sp, _ := strconv.ParseFloat(row[1], 64)
		pd, _ := strconv.ParseFloat(row[2], 64)
		if sp <= 0 || pd <= 0 {
			t.Fatalf("bad row %v", row)
		}
		if i < len(rows)-1 && sp >= pd {
			t.Fatalf("SwitchPointer not cheaper with few relevant servers: %v", row)
		}
	}
	last := rows[len(rows)-1]
	sp, _ := strconv.ParseFloat(last[1], 64)
	pd, _ := strconv.ParseFloat(last[2], 64)
	if sp/pd < 0.9 || sp/pd > 1.1 {
		t.Fatalf("with all servers relevant SP should match PD: %v vs %v", sp, pd)
	}
}

func TestAblationRunners(t *testing.T) {
	for _, run := range []Runner{AblationRPCPooling, AblationHeaderModes, AblationEpochRuleFloor} {
		r, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Tables) == 0 {
			t.Fatalf("%s: no tables", r.ID)
		}
	}
}

func TestAblationHeaderModesNumbers(t *testing.T) {
	r, err := AblationHeaderModes()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	// 5-switch path: commodity 8 B, INT 40 B.
	last := rows[len(rows)-1]
	if last[1] != "8" || last[2] != "40" {
		t.Fatalf("overhead row wrong: %v", last)
	}
}

// TestFullRegistryArtifacts runs every registered experiment end to end and
// sanity-checks its artifact. Heavy sweeps included; skipped under -short.
func TestFullRegistryArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweeps skipped in short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Fatalf("artifact ID %q != registry ID %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for ti, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %d: no rows", e.ID, ti)
				}
				for ri, row := range tab.Rows {
					if len(row) != len(tab.Cols) {
						t.Fatalf("%s table %d row %d: %d cells for %d cols",
							e.ID, ti, ri, len(row), len(tab.Cols))
					}
				}
			}
			if out := res.Render(); len(out) < 100 {
				t.Fatalf("%s: suspiciously small artifact", e.ID)
			}
		})
	}
}
