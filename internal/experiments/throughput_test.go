package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestDiagnosisThroughputScales asserts the experiment's reproducible
// claim: reports/sec rises with the admission limit (1 → 4 → 16) under
// overlapping alerts. The emulated per-round RTT makes the latency-hiding
// effect large (≈4x and ≈10x ideal), so the asserted margins are loose
// enough for noisy shared machines.
func TestDiagnosisThroughputScales(t *testing.T) {
	r, err := DiagnosisThroughput()
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 limits, got %d rows", len(rows))
	}
	rate := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("rate cell %q: %v", row[3], err)
		}
		return v
	}
	r1, r4, r16 := rate(rows[0]), rate(rows[1]), rate(rows[2])
	if r4 < 1.5*r1 {
		t.Fatalf("limit 4 rate %.0f not scaling over limit 1 rate %.0f", r4, r1)
	}
	if r16 < 1.5*r4 {
		t.Fatalf("limit 16 rate %.0f not scaling over limit 4 rate %.0f", r16, r4)
	}
	if !strings.Contains(r.Render(), "reports/sec") {
		t.Fatal("artifact missing rate column")
	}
}
