package experiments

import (
	"fmt"
	"sync"

	"switchpointer/internal/mph"
	"switchpointer/internal/pointer"
	"switchpointer/internal/simtime"
)

// fig10Grid is the paper's (n, α) legend for Figure 10.
var fig10Grid = []struct {
	n     int
	alpha int // ms
}{
	{1_000_000, 20},
	{1_000_000, 10},
	{100_000, 20},
	{100_000, 10},
}

// mphSizeCache memoizes the expensive MPH builds (1 M keys).
var (
	mphSizeMu    sync.Mutex
	mphSizeCache = map[int]int{}
)

// measuredMPHSize builds (once) a minimal perfect hash over n sequential
// host addresses and returns its serialized size in bytes.
func measuredMPHSize(n int) (int, error) {
	mphSizeMu.Lock()
	defer mphSizeMu.Unlock()
	if sz, ok := mphSizeCache[n]; ok {
		return sz, nil
	}
	keys := make([]uint32, n)
	base := uint32(10 << 24)
	for i := range keys {
		keys[i] = base + uint32(i)
	}
	t, err := mph.Build(keys)
	if err != nil {
		return 0, err
	}
	mphSizeCache[n] = t.SizeBytes()
	return t.SizeBytes(), nil
}

// Fig10a regenerates Figure 10(a): switch memory vs number of levels k.
func Fig10a() (*Result, error) {
	r := &Result{ID: "fig10a", Title: "switch memory overhead vs k (Fig 10a)"}
	tab := Table{
		Title: "memory (MB): measured hierarchical structure + measured MPH",
		Cols:  []string{"k", "n=1M α=20", "n=1M α=10", "n=100K α=20", "n=100K α=10"},
	}
	for k := 1; k <= 5; k++ {
		row := []string{fmt.Sprintf("%d", k)}
		for _, g := range fig10Grid {
			// The paper's Fig 10 curves are the dense layout's provisioned
			// memory; pin the oracle backend so the frozen metrics track it
			// (the adaptive/bloom tradeoff has its own ablation).
			s, err := pointer.New(pointer.Config{
				Alpha:    simtime.Time(g.alpha) * simtime.Millisecond,
				K:        k,
				NumHosts: g.n,
				Backend:  pointer.BackendDense,
			}, nil)
			if err != nil {
				return nil, err
			}
			mphSz, err := measuredMPHSize(g.n)
			if err != nil {
				return nil, err
			}
			total := float64(s.MemoryBytes()+mphSz) / (1 << 20)
			row = append(row, f(total))
		}
		tab.Rows = append(tab.Rows, row)
	}
	r.AddTable(tab)

	// Cross-check against the paper's closed form α(k−1)S+S.
	check := Table{
		Title: "closed-form pointer-set bits, α(k−1)·S+S (MB, excl. MPH)",
		Cols:  []string{"k", "n=1M α=20", "n=1M α=10", "n=100K α=20", "n=100K α=10"},
	}
	for k := 1; k <= 5; k++ {
		row := []string{fmt.Sprintf("%d", k)}
		for _, g := range fig10Grid {
			bits := pointer.TheoreticalMemoryBits(g.alpha, k, g.n)
			row = append(row, f(float64(bits)/8/(1<<20)))
		}
		check.Rows = append(check.Rows, row)
	}
	r.AddTable(check)
	r.AddNote("paper anchors: n=1M α=10 k=3 → 3.45 MB; n=100K → 345 KB; memory grows ∝ α·k")
	return r, nil
}

// Fig10b regenerates Figure 10(b): data-plane→control-plane bandwidth vs k.
func Fig10b() (*Result, error) {
	r := &Result{ID: "fig10b", Title: "data→control plane bandwidth vs k (Fig 10b)"}
	tab := Table{
		Title: "push bandwidth (Mbps), measured structure",
		Cols:  []string{"k", "n=1M α=20", "n=1M α=10", "n=100K α=20", "n=100K α=10"},
	}
	for k := 1; k <= 5; k++ {
		row := []string{fmt.Sprintf("%d", k)}
		for _, g := range fig10Grid {
			s, err := pointer.New(pointer.Config{
				Alpha:    simtime.Time(g.alpha) * simtime.Millisecond,
				K:        k,
				NumHosts: g.n,
				Backend:  pointer.BackendDense,
			}, nil)
			if err != nil {
				return nil, err
			}
			row = append(row, f(s.PushBandwidthBps()/1e6))
		}
		tab.Rows = append(tab.Rows, row)
	}
	r.AddTable(tab)
	r.AddNote("paper anchors: n=1M α=10: 100 Mbps at k=1 → 10 Mbps at k=2 (exponential drop in k)")
	return r, nil
}

// Fig11 regenerates Figure 11: pointer recycling period vs α for k=3.
func Fig11() (*Result, error) {
	r := &Result{ID: "fig11", Title: "pointer recycling period (Fig 11)"}
	tab := Table{
		Title: "recycling period (ms), k=3",
		Cols:  []string{"α (ms)", "level 1", "level 2"},
	}
	for _, alpha := range []int{10, 20, 30} {
		s, err := pointer.New(pointer.Config{
			Alpha:    simtime.Time(alpha) * simtime.Millisecond,
			K:        3,
			NumHosts: 1024,
		}, nil)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", alpha),
			f(s.RecyclingPeriod(1).Milliseconds()),
			f(s.RecyclingPeriod(2).Milliseconds()),
		})
	}
	r.AddTable(tab)
	r.AddNote("paper anchors (α=10): 90 ms at level 1, 900 ms at level 2; grows exponentially with level")
	r.AddNote("the paper prints the formula as α(α^h−1) but quotes values matching (α−1)·α^h, which the slot-ring geometry also gives; we implement the latter")
	return r, nil
}

// Sec61Memory regenerates the §6.1 memory prose: measured MPH sizes and
// minimum pointer footprints.
func Sec61Memory() (*Result, error) {
	r := &Result{ID: "sec6.1", Title: "switch memory constants (§6.1)"}
	tab := Table{
		Title: "per-switch constants",
		Cols:  []string{"n", "MPH (KB)", "one pointer set (KB)", "minimum total (KB)"},
	}
	for _, n := range []int{100_000, 1_000_000} {
		mphSz, err := measuredMPHSize(n)
		if err != nil {
			return nil, err
		}
		setKB := float64((n+63)/64*8) / 1024
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n),
			f(float64(mphSz) / 1024),
			f(setKB),
			f(float64(mphSz)/1024 + setKB),
		})
	}
	r.AddTable(tab)
	r.AddNote("paper (FCH): 70 KB / 700 KB MPH, 12.5 KB / 125 KB pointer, 82.5 KB / 825 KB total")
	r.AddNote("our BDZ construction trades ≈2× MPH size for orders-of-magnitude faster builds; see EXPERIMENTS.md")
	return r, nil
}
