package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/cluster"
	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// DiagnosisThroughput measures the multi-query analyzer: reports/sec under
// overlapping alert diagnoses at admission limits 1, 4, and 16. The PR 3
// groundwork (sharded host stores, per-switch pull locks) makes concurrent
// Analyzer.Run calls safe; the admission controller turns that into a
// service-plane knob, and this experiment shows the knob working: wall
// clock per fixed batch of overlapping contention diagnoses drops as the
// in-flight bound rises, because concurrent diagnoses overlap their
// network waits.
//
// The network is emulated at a fixed per-round RTT on the analyzer's two
// backend seams (Directory pulls and HostBackend query rounds) — the
// tc-netem of this reproduction. That makes the measured effect the real
// deployment one (admission hides wire latency across queries) and keeps
// it measurable on any machine: CPU-parallel speedup would need as many
// cores as the limit, but latency hiding needs none. Wall-clock numbers
// still vary run to run; the shape — limit 1 slowest, throughput rising
// with the limit until the CPU floor — is the reproducible claim, asserted
// in the package tests.
func DiagnosisThroughput() (*Result, error) {
	return diagnosisThroughput(emulatedRTT)
}

// emulatedRTT is the per-round network delay the throughput experiment
// injects: intra-datacenter scale (the paper's testbed measures ~250 µs
// request/response RTTs; see rpc.DefaultCostModel).
const emulatedRTT = 250 * time.Microsecond

func diagnosisThroughput(rtt time.Duration) (*Result, error) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 16})
	if err != nil {
		return nil, err
	}
	tb := s.Testbed
	defer tb.Close()
	tb.Run(110 * simtime.Millisecond)
	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		return nil, fmt.Errorf("experiments: too-much-traffic scenario raised no alert")
	}
	// Pin each diagnosis to sequential per-host rounds and put the emulated
	// RTT on both backend seams. Workers=1 is the paper's sequential
	// analyzer; overlap across queries is then the only concurrency, which
	// is exactly what the admission limit governs.
	tb.Analyzer.Workers = 1
	tb.Analyzer.HostBack = delayHosts{HostBackend: analyzer.MemoryHosts{Agents: tb.HostAgents}, rtt: rtt}
	tb.Analyzer.Dir = delayDirectory{Directory: tb.Analyzer.Dir, rtt: rtt}

	const (
		queries    = 48 // overlapping diagnoses per batch
		submitters = 24 // concurrent clients feeding the controller
	)
	r := &Result{ID: "diagnosis-throughput", Title: "diagnosis throughput vs admission limit (overlapping alerts)"}
	tab := Table{
		Title: fmt.Sprintf("%d overlapping contention diagnoses, %d submitters", queries, submitters),
		Cols:  []string{"admission limit", "queries", "wall ms", "reports/sec", "speedup vs limit 1"},
	}
	var base float64
	for _, limit := range []int{1, 4, 16} {
		ad := cluster.NewAdmission(tb.Analyzer, cluster.AdmissionConfig{
			MaxInFlight: limit,
			MaxQueued:   queries,
		})
		elapsed, err := overlapBatch(ad, alert, queries, submitters)
		if err != nil {
			return nil, err
		}
		perSec := float64(queries) / elapsed.Seconds()
		if limit == 1 {
			base = perSec
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", limit),
			fmt.Sprintf("%d", queries),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%.0f", perSec),
			fmt.Sprintf("%.2fx", perSec/base),
		})
	}
	r.AddTable(tab)
	r.AddNote("network emulated at %v per backend round (pulls + host rounds); admission overlap hides it", emulatedRTT)
	r.AddNote("wall-clock measurement — absolute rates vary with the machine; the scaling shape is the claim")
	r.AddNote("every overlapping run returns the identical report (sharded stores + per-switch pull locks)")
	return r, nil
}

// delayHosts wraps a HostBackend, charging one emulated network round trip
// per query round and per single-host probe — the tc-netem stand-in that
// makes the admission controller's latency hiding measurable on any
// machine.
type delayHosts struct {
	analyzer.HostBackend
	rtt time.Duration
}

func (d delayHosts) HeadersRound(ctx context.Context, workers int, hosts []netsim.IPv4, queries []hostagent.HeadersQuery) ([][]hostagent.HeadersAnswer, int, error) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.HostBackend.HeadersRound(ctx, workers, hosts, queries)
}

func (d delayHosts) TopKRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID, k int) ([][]hostagent.FlowBytes, int, error) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.HostBackend.TopKRound(ctx, workers, hosts, sw, k)
}

func (d delayHosts) FlowSizesRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID) ([][]hostagent.FlowSize, int, error) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.HostBackend.FlowSizesRound(ctx, workers, hosts, sw)
}

func (d delayHosts) Priority(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (uint8, bool) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.HostBackend.Priority(ctx, ip, flow)
}

func (d delayHosts) Record(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (*flowrec.Record, bool) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.HostBackend.Record(ctx, ip, flow)
}

// delayDirectory wraps a Directory the same way for pointer rounds.
type delayDirectory struct {
	analyzer.Directory
	rtt time.Duration
}

func (d delayDirectory) Hosts(ctx context.Context, sw netsim.NodeID, epochs simtime.EpochRange) ([]netsim.IPv4, error) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.Directory.Hosts(ctx, sw, epochs)
}

func (d delayDirectory) HostsBatch(ctx context.Context, reqs []analyzer.SwitchEpochs) ([][]netsim.IPv4, []error) {
	//splint:wallclock emulated backend RTT: deployment-real latency at the seam (1-CPU container)
	time.Sleep(d.rtt)
	return d.Directory.HostsBatch(ctx, reqs)
}

// overlapBatch pushes `queries` identical contention diagnoses through the
// controller from `submitters` concurrent clients and returns the wall
// time for the whole batch.
func overlapBatch(ad *cluster.Admission, alert hostagent.Alert, queries, submitters int) (time.Duration, error) {
	work := make(chan struct{}, queries)
	for i := 0; i < queries; i++ {
		work <- struct{}{}
	}
	close(work)
	errs := make(chan error, submitters)
	//splint:wallclock diagnosis-throughput reports real reports/sec (wall-clock-exempt in the drift gate)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				rep, err := ad.Run(context.Background(), analyzer.ContentionQuery{Alert: alert})
				if err != nil {
					errs <- err
					return
				}
				if rep.Kind == analyzer.KindInconclusive {
					errs <- fmt.Errorf("experiments: overlapping diagnosis inconclusive: %s", rep.Conclusion)
					return
				}
			}
		}()
	}
	wg.Wait()
	//splint:wallclock diagnosis-throughput reports real reports/sec (wall-clock-exempt in the drift gate)
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}
