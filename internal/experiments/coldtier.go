package experiments

import (
	"context"
	"fmt"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/statesync"
	"switchpointer/internal/store"
)

// AblationColdTier measures the cold-tier query engine on a diagnosis whose
// entire epoch window has aged out of every host's hot store: how the
// manifest index, segment compaction, and age tiering change what the
// read-back decodes, what the report honestly omits, and what the extra
// virtual-time round charges.
func AblationColdTier() (*Result, error) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 8})
	if err != nil {
		return nil, err
	}
	tb := s.Testbed
	defer tb.Close()
	tb.Run(110 * simtime.Millisecond)
	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		return nil, fmt.Errorf("ablation-coldtier: no alert for victim")
	}

	// Staged eviction: repeated retention sweeps at increasing virtual
	// times flush every host's records across many small epoch-overlapping
	// segments — the fragmented state a long-running daemon accumulates.
	alpha := tb.Opt.Alpha
	var logs []*statesync.SegmentLog
	for ip, ag := range tb.HostAgents {
		seglog, err := statesync.NewSegmentLog("")
		if err != nil {
			return nil, err
		}
		ag.Store.SetRetention(store.Retention{HotEpochs: 1, Alpha: alpha, Cold: seglog})
		for sweep := simtime.Time(simtime.Millisecond); sweep <= 60*simtime.Millisecond; sweep += simtime.Millisecond {
			if _, err := ag.Store.Maintain(sweep); err != nil {
				return nil, fmt.Errorf("ablation-coldtier: host %v: %w", ip, err)
			}
		}
		if _, err := ag.Store.Maintain(1 << 40); err != nil {
			return nil, fmt.Errorf("ablation-coldtier: host %v: %w", ip, err)
		}
		ag.SetColdReader(seglog)
		logs = append(logs, seglog)
	}
	segCount := func() int {
		n := 0
		for _, l := range logs {
			n += l.Len()
		}
		return n
	}
	run := func() (*analyzer.Report, error) {
		return tb.Analyzer.Run(context.Background(), analyzer.ContentionQuery{Alert: alert})
	}

	r := &Result{ID: "ablation-coldtier", Title: "ablation — cold-tier read-back: manifest index, compaction, tiering"}
	tab := Table{
		Title: "priority-contention diagnosis against an entirely evicted window (m=8)",
		Cols:  []string{"log state", "segments", "decoded", "skipped by index", "tiered", "culprits", "cold round (ms)"},
	}
	row := func(state string, rep *analyzer.Report) {
		tab.Rows = append(tab.Rows, []string{
			state,
			fmt.Sprintf("%d", segCount()),
			fmt.Sprintf("%d", rep.ColdSegments),
			fmt.Sprintf("%d", rep.ColdSkippedByIndex),
			fmt.Sprintf("%d", rep.TieredSegments),
			fmt.Sprintf("%d", len(rep.Culprits)),
			ms(float64(rep.Clock.PhaseTotal("cold-read-back").Milliseconds())),
		})
	}

	frag, err := run()
	if err != nil {
		return nil, fmt.Errorf("ablation-coldtier: fragmented run: %w", err)
	}
	row("fragmented", frag)

	for _, l := range logs {
		if _, err := l.Compact(context.Background(), statesync.CompactPolicy{MinRun: 2}); err != nil {
			return nil, fmt.Errorf("ablation-coldtier: compact: %w", err)
		}
	}
	comp, err := run()
	if err != nil {
		return nil, fmt.Errorf("ablation-coldtier: compacted run: %w", err)
	}
	row("compacted", comp)

	for _, l := range logs {
		if _, err := l.TierOut(context.Background(), 1<<40, statesync.TierPolicy{MaxAgeEpochs: 1, Alpha: alpha}); err != nil {
			return nil, fmt.Errorf("ablation-coldtier: tier: %w", err)
		}
	}
	tiered, err := run()
	if err != nil {
		return nil, fmt.Errorf("ablation-coldtier: tiered run: %w", err)
	}
	row("tiered out", tiered)

	r.AddTable(tab)
	r.AddNote("the manifest index skips segments whose switch set/flow bloom cannot match; compaction merges fragmented runs so the same answer decodes fewer segments at no extra charged cost")
	r.AddNote("tiering deletes aged payloads but keeps their manifests: the diagnosis reports TieredSegments instead of silently missing history")
	return r, nil
}
