package experiments

import (
	"testing"

	"switchpointer/internal/analyzer"
)

// TestParallelFanOutDeterminism is the PR 2 merge-determinism gate: the
// rendered experiment artifacts (tables and notes, byte for byte) must be
// identical across repeated runs and across analyzer fan-out widths 1, 4
// and 16. The per-host query rounds run on a worker pool, but answers are
// merged in sorted host order, so worker scheduling must never leak into
// results or cost accounting.
func TestParallelFanOutDeterminism(t *testing.T) {
	experiments := map[string]Runner{
		"fig8":  Fig8Quick,
		"fig12": Fig12Quick,
	}
	golden := make(map[string]string)
	for name, run := range experiments {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		golden[name] = res.Render()
	}

	defer func() { analyzer.DefaultWorkers = 0 }()
	for _, workers := range []int{1, 4, 16} {
		analyzer.DefaultWorkers = workers
		for rep := 0; rep < 2; rep++ {
			for name, run := range experiments {
				res, err := run()
				if err != nil {
					t.Fatalf("workers=%d rep=%d %s: %v", workers, rep, name, err)
				}
				if got := res.Render(); got != golden[name] {
					t.Fatalf("workers=%d rep=%d: %s diverged\n--- golden ---\n%s\n--- got ---\n%s",
						workers, rep, name, golden[name], got)
				}
			}
		}
	}
}
