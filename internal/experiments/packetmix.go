package experiments

import (
	"fmt"
	"math/rand"

	"switchpointer/internal/workload"
)

// AblationPacketMix extends Fig 9 with the paper's §6.1 acceptability
// argument, made quantitative: given the measured per-packet pipeline costs,
// what throughput does each pipeline sustain under *realistic datacenter
// packet mixes* (Benson enterprise ≈850 B mean; Roy hadoop ≈250 B median)
// rather than fixed sizes?
//
// For each sampled packet the pipeline takes max(cpu cost, wire time at
// 10GE); throughput is total bits over total time.
func AblationPacketMix() (*Result, error) {
	d, err := NewDatapathBench()
	if err != nil {
		return nil, err
	}
	base := measure(d.StepBaseline)
	k1 := measure(func(i int) { d.StepSwitchPointer(i, 1) })
	k5 := measure(func(i int) { d.StepSwitchPointer(i, 5) })

	r := &Result{ID: "ablation-packetmix", Title: "ablation — throughput under realistic packet mixes (§6.1 argument)"}
	tab := Table{
		Title: "sustained throughput (Gbps) at 10GE, measured pipeline costs",
		Cols:  []string{"packet mix", "mean size (B)", "OVS baseline", "SwitchPointer k=1", "SwitchPointer k=5", "SP k=5 vs line rate"},
	}
	for _, mix := range workload.Mixes() {
		gBase := mixGbps(mix, base)
		gK1 := mixGbps(mix, k1)
		gK5 := mixGbps(mix, k5)
		tab.Rows = append(tab.Rows, []string{
			mix.Name(),
			f(mix.Mean()),
			f(gBase),
			f(gK1),
			f(gK5),
			fmt.Sprintf("%.0f%%", 100*gK5/lineRateGbps),
		})
	}
	r.AddTable(tab)
	r.AddNote("the paper's §6.1 claim: since datacenter packet sizes average ≥256 B (850 B enterprise, 250 B hadoop median), the sub-256 B degradation is acceptable in practice")
	return r, nil
}

// mixGbps simulates a sampled packet stream through a pipeline with the
// given per-packet CPU cost, at 10GE line rate.
func mixGbps(mix *workload.SizeDist, nsPerPkt float64) float64 {
	rng := rand.New(rand.NewSource(12345))
	const samples = 200000
	var bits, ns float64
	for i := 0; i < samples; i++ {
		size := mix.Sample(rng)
		wire := float64(size*8) / lineRateGbps // ns on a 10G wire
		cost := nsPerPkt
		if wire > cost {
			cost = wire
		}
		bits += float64(size * 8)
		ns += cost
	}
	return bits / ns
}
