package trace

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// DefaultFlightCap is the default number of traces a FlightRecorder keeps.
const DefaultFlightCap = 256

// FlightRecorder is a bounded ring buffer of the last N traces seen by a
// daemon, served at GET /traces (index) and GET /traces/<id> (one trace,
// canonical span order). Spans recorded for an already-known trace merge
// into it (dedup by span ID, first recording wins); once the bound is
// exceeded the oldest trace is evicted.
type FlightRecorder struct {
	mu    sync.Mutex
	limit int
	role  string
	order []string // trace IDs, oldest first
	byID  map[string][]Span
	peers map[string]string
}

// NewFlightRecorder creates a flight recorder for the given daemon role.
// limit <= 0 selects DefaultFlightCap.
func NewFlightRecorder(role string, limit int) *FlightRecorder {
	if limit <= 0 {
		limit = DefaultFlightCap
	}
	return &FlightRecorder{limit: limit, role: role, byID: make(map[string][]Span)}
}

// SetPeers records the base URLs of the other roles' daemons; the index
// advertises them so spctl -trace can walk the whole trio from the
// analyzer's URL alone.
func (f *FlightRecorder) SetPeers(peers map[string]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peers = peers
}

// Record merges spans into the trace with the given ID, creating it (and
// evicting the oldest beyond the bound) if new. Spans whose ID already
// exists in the trace are dropped — first recording wins, which keeps
// repeated identical queries from growing the trace and makes /traces
// byte-stable on an idle daemon.
func (f *FlightRecorder) Record(traceID string, spans ...Span) {
	if traceID == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	existing, known := f.byID[traceID]
	if !known {
		f.order = append(f.order, traceID)
		for len(f.order) > f.limit {
			delete(f.byID, f.order[0])
			f.order = f.order[1:]
		}
	}
	seen := make(map[string]bool, len(existing))
	for _, s := range existing {
		seen[s.ID] = true
	}
	for _, s := range spans {
		if seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		existing = append(existing, s)
	}
	f.byID[traceID] = existing
}

// Add records a whole trace.
func (f *FlightRecorder) Add(t Trace) { f.Record(t.ID, t.Spans...) }

// Get returns the trace with the given ID in canonical span order.
func (f *FlightRecorder) Get(id string) (Trace, bool) {
	f.mu.Lock()
	spans, ok := f.byID[id]
	cp := make([]Span, len(spans))
	copy(cp, spans)
	f.mu.Unlock()
	if !ok {
		return Trace{}, false
	}
	return Trace{ID: id, Spans: canonical(cp)}, true
}

// List returns the recorded trace IDs, oldest first.
func (f *FlightRecorder) List() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Index is the GET /traces response body.
type Index struct {
	Role   string            `json:"role"`
	Traces []string          `json:"traces"`
	Peers  map[string]string `json:"peers,omitempty"`
}

// Handler serves the flight recorder: GET "" or "/" returns the Index, GET
// "/<id>" one trace as canonically-sorted JSON (404 when unknown). State is
// copied under the lock and encoded outside it.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.Trim(r.URL.Path, "/")
		if id == "" {
			f.mu.Lock()
			idx := Index{Role: f.role, Traces: make([]string, len(f.order)), Peers: f.peers}
			copy(idx.Traces, f.order)
			f.mu.Unlock()
			writeTraceJSON(w, idx)
			return
		}
		t, ok := f.Get(id)
		if !ok {
			http.Error(w, "unknown trace", http.StatusNotFound)
			return
		}
		writeTraceJSON(w, t)
	})
}

func writeTraceJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}
