package trace

import (
	"strconv"
	"sync"

	"switchpointer/internal/simtime"
)

// Recorder accumulates one trace on the analyzer side. The root span (ID
// "0") covers the whole diagnosis; each charged rpc.Clock phase becomes an
// ordinal child span ("1", "2", …) in charge order, which is deterministic
// because the analyzer charges its clock sequentially within a procedure.
//
// A Recorder is safe for concurrent use: daemon-side handlers in loopback
// mode may record into the same recorder the analyzer is writing.
type Recorder struct {
	mu       sync.Mutex
	id       string
	root     Span
	spans    []Span
	phaseN   int
	lastIdx  int // index into spans of the last recorded span, -1 if none
	anchored bool
	finished bool
}

// NewRecorder starts a trace with the given deterministic ID. role labels
// the root span's emitting daemon role and rootName is typically the query
// kind.
func NewRecorder(id, role, rootName string) *Recorder {
	return &Recorder{
		id:      id,
		root:    Span{ID: "0", Name: rootName, Role: role},
		lastIdx: -1,
	}
}

// ID returns the trace ID.
func (r *Recorder) ID() string { return r.id }

// Anchor sets the root span's start to the given virtual time. Only the
// first call takes effect (the clock anchors the recorder when tracing is
// armed; admission may have anchored it earlier at the query's own time).
func (r *Recorder) Anchor(t simtime.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.anchored {
		return
	}
	r.anchored = true
	r.root.Start = t
}

// Phase records one charged clock phase as the next ordinal child span of
// the root.
func (r *Recorder) Phase(name string, start, end simtime.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.phaseN++
	r.spans = append(r.spans, Span{
		ID:     strconv.Itoa(r.phaseN),
		Parent: r.root.ID,
		Name:   name,
		Role:   r.root.Role,
		Start:  start,
		End:    end,
	})
	r.lastIdx = len(r.spans) - 1
}

// NextPhaseID returns the ordinal ID the next Phase call will mint — the
// parent ID for requests issued *before* their round is charged (the
// analyzer fans out first, then charges the clock once per round).
func (r *Recorder) NextPhaseID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return strconv.Itoa(r.phaseN + 1)
}

// AnnotateLast appends attributes to the most recently recorded span.
func (r *Recorder) AnnotateLast(attrs ...Attr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastIdx < 0 {
		return
	}
	r.spans[r.lastIdx].Attrs = append(r.spans[r.lastIdx].Attrs, attrs...)
}

// Record adds an arbitrary span (e.g. the admission controller's queue-wait
// span) to the trace.
func (r *Recorder) Record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, s)
	r.lastIdx = len(r.spans) - 1
}

// Finish closes the root span at the given virtual time. Only the first
// call takes effect, so a trace is closed exactly once even on error paths.
func (r *Recorder) Finish(t simtime.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	r.finished = true
	r.root.End = t
}

// Trace returns a canonical-order snapshot of the accumulated trace
// (root span included), with Wall annotations preserved.
func (r *Recorder) Trace() Trace {
	r.mu.Lock()
	spans := make([]Span, 0, len(r.spans)+1)
	spans = append(spans, r.root)
	spans = append(spans, r.spans...)
	id := r.id
	r.mu.Unlock()
	return Trace{ID: id, Spans: canonical(spans)}
}
