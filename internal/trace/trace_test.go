package trace

import (
	"io"
	"net/http/httptest"
	"testing"

	"switchpointer/internal/simtime"
)

func TestNewIDDeterministic(t *testing.T) {
	a := NewID("contention", "flow", "42")
	b := NewID("contention", "flow", "42")
	if a != b {
		t.Fatalf("same parts, different IDs: %s vs %s", a, b)
	}
	if c := NewID("contention", "flow42"); c == a {
		t.Fatalf("part boundaries not separated: %s", c)
	}
	if len(a) != len("sp-")+16 {
		t.Fatalf("unexpected ID shape: %q", a)
	}
}

func TestCanonicalOrderAndDedup(t *testing.T) {
	tr := Trace{ID: "x", Spans: []Span{
		{ID: "10", Start: 5},
		{ID: "2", Start: 5},
		{ID: "0", Start: 0, Wall: 99},
		{ID: "2", Start: 7, Name: "dup-loses"},
	}}
	c := tr.Canonical()
	if len(c.Spans) != 3 {
		t.Fatalf("dedup failed: %d spans", len(c.Spans))
	}
	// (Start, ID) order with ordinal IDs comparing numerically: 0, 2, 10.
	want := []string{"0", "2", "10"}
	for i, s := range c.Spans {
		if s.ID != want[i] {
			t.Fatalf("span %d: got ID %s, want %s", i, s.ID, want[i])
		}
	}
	if c.Spans[1].Name == "dup-loses" {
		t.Fatal("dedup kept the later span")
	}
	if c.Spans[0].Wall != 0 {
		t.Fatal("Canonical did not strip Wall")
	}
	if tr.Spans[2].Wall != 99 {
		t.Fatal("Canonical mutated the source trace")
	}
}

func TestRecorderPhasesAndFinish(t *testing.T) {
	rec := NewRecorder("sp-1", "analyzer", "contention")
	rec.Anchor(100)
	rec.Anchor(999) // ignored: only the first anchor takes effect
	if got := rec.NextPhaseID(); got != "1" {
		t.Fatalf("NextPhaseID before phases: %s", got)
	}
	rec.Phase("detection", 100, 150)
	rec.AnnotateLast(Attr{Key: "k", Value: "v"})
	rec.Phase("alert", 150, 200)
	if got := rec.NextPhaseID(); got != "3" {
		t.Fatalf("NextPhaseID after two phases: %s", got)
	}
	rec.Record(Span{ID: "adm", Parent: "0", Name: "queue-wait", Start: 100, End: 100, Wall: 55})
	rec.Finish(200)
	rec.Finish(300) // ignored

	tr := rec.Trace()
	if tr.ID != "sp-1" {
		t.Fatalf("trace ID: %s", tr.ID)
	}
	byID := map[string]Span{}
	for _, s := range tr.Spans {
		byID[s.ID] = s
	}
	root := byID["0"]
	if root.Start != 100 || root.End != 200 {
		t.Fatalf("root span [%d,%d], want [100,200]", root.Start, root.End)
	}
	if byID["1"].Name != "detection" || byID["2"].Name != "alert" {
		t.Fatalf("phase ordinals wrong: %+v", tr.Spans)
	}
	if len(byID["1"].Attrs) != 1 || byID["1"].Attrs[0].Key != "k" {
		t.Fatalf("AnnotateLast missed: %+v", byID["1"])
	}
	if byID["adm"].Wall != 55 {
		t.Fatal("Record dropped the adm span")
	}
	for _, s := range tr.Spans {
		if s.End < s.Start {
			t.Fatalf("span %s ends before it starts", s.ID)
		}
	}
}

func TestRemoteContextHeaderRoundTrip(t *testing.T) {
	rc := RemoteContext{TraceID: "sp-abc", Parent: "4", At: simtime.Time(123456789)}
	got, ok := ParseRemote(rc.Encode())
	if !ok || got != rc {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
	if _, ok := ParseRemote(""); ok {
		t.Fatal("empty header parsed")
	}
	if _, ok := ParseRemote(";;12"); ok {
		t.Fatal("empty trace ID parsed")
	}
	if _, ok := ParseRemote("sp-x;1;notanumber"); ok {
		t.Fatal("bad timestamp parsed")
	}
}

func TestFlightRecorderMergeAndEvict(t *testing.T) {
	fr := NewFlightRecorder("host", 2)
	fr.Record("t1", Span{ID: "0", Name: "first"})
	fr.Record("t1", Span{ID: "0", Name: "dup"}, Span{ID: "1"})
	fr.Record("t2", Span{ID: "0"})
	fr.Record("t3", Span{ID: "0"}) // evicts t1

	if _, ok := fr.Get("t1"); ok {
		t.Fatal("t1 not evicted")
	}
	if got := fr.List(); len(got) != 2 || got[0] != "t2" || got[1] != "t3" {
		t.Fatalf("List: %v", got)
	}
	fr.Record("t1", Span{ID: "0", Name: "again"}) // re-admitted, evicts t2
	tr, ok := fr.Get("t1")
	if !ok || len(tr.Spans) != 1 || tr.Spans[0].Name != "again" {
		t.Fatalf("re-admitted t1: %+v ok=%v", tr, ok)
	}
}

func TestFlightHandlerDoubleFetchByteIdentical(t *testing.T) {
	fr := NewFlightRecorder("analyzer", 0)
	fr.SetPeers(map[string]string{"hosts": "http://h", "switches": "http://s"})
	fr.Record("t1", Span{ID: "0", Name: "root", Start: 1, End: 9}, Span{ID: "1", Parent: "0", Start: 2, End: 3})
	srv := httptest.NewServer(fr.Handler())
	defer srv.Close()

	fetch := func(path string, wantCode int) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	idx1 := fetch("/", 200)
	idx2 := fetch("/", 200)
	if idx1 != idx2 {
		t.Fatalf("index double fetch differs:\n%s\n%s", idx1, idx2)
	}
	tr1 := fetch("/t1", 200)
	tr2 := fetch("/t1", 200)
	if tr1 != tr2 {
		t.Fatalf("trace double fetch differs:\n%s\n%s", tr1, tr2)
	}
	fetch("/nope", 404)
}
