// Package trace is a stdlib-only, deterministic tracing layer for the
// SwitchPointer daemons. Spans are timed on the analyzer's *virtual*
// rpc.Clock — span start/end are simtime instants, never the wall clock —
// so the trace of a given scenario+query is byte-identical across runs and
// drift-gateable like every other virtual-time metric. Wall-clock readings
// may ride along only as an exempt annotation (Span.Wall), which the
// Canonical form strips.
//
// A trace is assembled from three places: the analyzer's Recorder (root
// span + one child span per charged Clock phase), instant child spans
// emitted by host/switch daemons when a request carries the X-SP-Trace
// header, and instant spans from the admission controller and alert
// pipeline. Each daemon keeps the last N traces in a FlightRecorder served
// at GET /traces and GET /traces/<id>; cluster merges the per-role trees by
// trace ID.
package trace

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"switchpointer/internal/simtime"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one node of a trace tree. IDs are deterministic: the analyzer's
// root span is "0", its phase children are ordinals "1", "2", …, and
// daemon-side children derive their ID from the parent ordinal plus the
// daemon's role, label, and endpoint (e.g. "4.host:10.0.0.5:headers-batch"),
// so the same diagnosis produces the same tree whether it runs in-memory,
// over loopback HTTP, or against a real spd trio.
type Span struct {
	ID     string       `json:"id"`
	Parent string       `json:"parent,omitempty"`
	Name   string       `json:"name"`
	Role   string       `json:"role"`
	Start  simtime.Time `json:"start"`
	End    simtime.Time `json:"end"`
	Attrs  []Attr       `json:"attrs,omitempty"`
	// Wall is an optional wall-clock annotation in nanoseconds (e.g. real
	// queue wait). It is the only nondeterministic field and is stripped by
	// Canonical.
	Wall int64 `json:"wall_ns,omitempty"`
}

// Duration returns the span's virtual duration.
func (s Span) Duration() simtime.Time { return s.End - s.Start }

// Trace is a set of spans sharing one trace ID.
type Trace struct {
	ID    string `json:"id"`
	Spans []Span `json:"spans"`
}

// compareID orders span IDs shorter-first, then lexicographically, so the
// ordinal IDs "2" < "10" sort numerically and dotted children group after
// their parent ordinal.
func compareID(a, b string) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	return strings.Compare(a, b)
}

// canonical dedups spans by ID (first occurrence wins) and sorts them by
// (Start, ID).
func canonical(spans []Span) []Span {
	seen := make(map[string]bool, len(spans))
	out := make([]Span, 0, len(spans))
	for _, s := range spans {
		if seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return compareID(out[i].ID, out[j].ID) < 0
	})
	return out
}

// Sorted returns a copy of the trace with spans deduped (first wins) and in
// canonical (Start, ID) order. Wall annotations are preserved.
func (t Trace) Sorted() Trace {
	return Trace{ID: t.ID, Spans: canonical(t.Spans)}
}

// Canonical returns the Sorted copy with every wall-clock annotation
// stripped — the deterministic form golden files and byte-equality gates
// compare.
func (t Trace) Canonical() Trace {
	c := t.Sorted()
	for i := range c.Spans {
		c.Spans[i].Wall = 0
	}
	return c
}

// NewID derives a deterministic trace ID from the given parts (FNV-1a).
// Identical queries yield identical IDs, which is what lets the loopback
// and spd-trio executions of the same scenario produce the same trace.
func NewID(parts ...string) string {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write([]byte{0})
		}
		h.Write([]byte(p))
	}
	return fmt.Sprintf("sp-%016x", h.Sum64())
}

// Header is the HTTP header carrying trace context between daemons.
const Header = "X-SP-Trace"

// RemoteContext is the trace context propagated over the wire: the trace
// ID, the analyzer-side parent span ordinal the request belongs to, and the
// analyzer's virtual time when the request was issued (daemon-side child
// spans are virtual-instant at that time).
type RemoteContext struct {
	TraceID string
	Parent  string
	At      simtime.Time
}

// Encode renders the header value: "<traceID>;<parent>;<virtual-ns>".
func (r RemoteContext) Encode() string {
	return r.TraceID + ";" + r.Parent + ";" + strconv.FormatInt(int64(r.At), 10)
}

// ParseRemote parses a header value produced by Encode.
func ParseRemote(s string) (RemoteContext, bool) {
	parts := strings.Split(s, ";")
	if len(parts) != 3 || parts[0] == "" {
		return RemoteContext{}, false
	}
	at, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return RemoteContext{}, false
	}
	return RemoteContext{TraceID: parts[0], Parent: parts[1], At: simtime.Time(at)}, true
}

type ctxKey int

const (
	recorderKey ctxKey = iota
	remoteKey
)

// NewContext attaches a Recorder to ctx.
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, rec)
}

// FromContext returns the Recorder attached to ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey).(*Recorder)
	return rec
}

// ContextWithRemote attaches an outbound RemoteContext to ctx; the rpc
// client injects it as the X-SP-Trace header on every request made with
// that ctx.
func ContextWithRemote(ctx context.Context, rc RemoteContext) context.Context {
	if rc.TraceID == "" {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, rc)
}

// RemoteFromContext returns the outbound RemoteContext on ctx, if any.
func RemoteFromContext(ctx context.Context) (RemoteContext, bool) {
	rc, ok := ctx.Value(remoteKey).(RemoteContext)
	return rc, ok
}
