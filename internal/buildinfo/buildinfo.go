// Package buildinfo carries the binary's version identity — the one string
// every daemon and CLI reports consistently (-version flags, the /healthz
// build stanza, and the spd_build_info metric). It imports nothing beyond
// runtime so the deep deterministic packages can stay clear of it and it can
// be linked anywhere without dragging the metrics plane in.
package buildinfo

import "runtime"

// Version is the repo's release identity, bumped per PR series.
var Version = "v0.10.0"

// Go reports the toolchain that built the binary.
func Go() string { return runtime.Version() }
