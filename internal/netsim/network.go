package netsim

import (
	"fmt"

	"switchpointer/internal/eventq"
	"switchpointer/internal/simtime"
)

// Network owns the simulated elements and the event engine driving them.
type Network struct {
	Engine *eventq.Engine

	switches []*Switch
	hosts    []*Host
	byID     map[NodeID]Node
	byIP     map[IPv4]*Host
	nextID   NodeID
	nextPkt  uint64

	// NewSwitchQueue builds the egress queue for each switch port created by
	// Connect. Defaults to a 2 MB drop-tail FIFO; scenarios override it to
	// select priority queueing (§2.1) or different buffer depths.
	NewSwitchQueue func() Queue

	// NewHostQueue builds the egress queue for host NICs. Defaults to a
	// deep FIFO (hosts pace themselves; the NIC should rarely drop).
	NewHostQueue func() Queue

	// OnDrop observes every dropped packet (buffer overflow, no route, TTL).
	OnDrop func(p *Packet, at *Port, now simtime.Time)
}

// Default queue capacities.
const (
	DefaultSwitchBufBytes = 2 << 20 // 2 MB per output port, shallow-buffer ToR
	DefaultHostBufBytes   = 8 << 20
)

// New returns an empty network with a fresh event engine. Engine options
// (e.g. eventq.WithHeapQueue for the scheduler ablation) pass through.
func New(engineOpts ...eventq.Option) *Network {
	n := &Network{
		Engine: eventq.New(engineOpts...),
		byID:   make(map[NodeID]Node),
		byIP:   make(map[IPv4]*Host),
	}
	n.NewSwitchQueue = func() Queue { return NewFIFOQueue(DefaultSwitchBufBytes) }
	n.NewHostQueue = func() Queue { return NewFIFOQueue(DefaultHostBufBytes) }
	return n
}

// Now returns the current virtual time.
func (n *Network) Now() simtime.Time { return n.Engine.Now() }

// NewSwitch creates a switch with the given name and clock offset (its drift
// from true time; the network-wide pairwise bound is ε).
func (n *Network) NewSwitch(name string, clockOffset simtime.Time) *Switch {
	s := &Switch{
		id:    n.allocID(),
		name:  name,
		net:   n,
		Clock: simtime.NewClock(clockOffset),
	}
	n.switches = append(n.switches, s)
	n.byID[s.id] = s
	return s
}

// NewHost creates a host with the given name and IP address.
func (n *Network) NewHost(name string, ip IPv4) *Host {
	if _, dup := n.byIP[ip]; dup {
		panic(fmt.Sprintf("netsim: duplicate host IP %s", ip))
	}
	h := &Host{
		id:    n.allocID(),
		name:  name,
		ip:    ip,
		net:   n,
		Clock: simtime.NewClock(0),
	}
	n.hosts = append(n.hosts, h)
	n.byID[h.id] = h
	n.byIP[ip] = h
	return h
}

func (n *Network) allocID() NodeID {
	id := n.nextID
	n.nextID++
	return id
}

// Switches returns all switches in creation order.
func (n *Network) Switches() []*Switch { return n.switches }

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.hosts }

// NodeByID looks up a node.
func (n *Network) NodeByID(id NodeID) (Node, bool) {
	nd, ok := n.byID[id]
	return nd, ok
}

// HostByIP looks up a host by address.
func (n *Network) HostByIP(ip IPv4) (*Host, bool) {
	h, ok := n.byIP[ip]
	return h, ok
}

// LinkConfig describes one full-duplex link.
type LinkConfig struct {
	RateBps int64        // per-direction bandwidth
	Delay   simtime.Time // propagation delay
	// QueueA/QueueB override the egress queues of the A-side and B-side
	// ports; nil selects the network default for the node kind.
	QueueA, QueueB Queue
}

// Gigabit link rates used by the scenarios.
const (
	Rate1G  int64 = 1_000_000_000
	Rate10G int64 = 10_000_000_000
)

// Connect wires a full-duplex link between two nodes and returns the two
// ports (a-side, b-side).
func (n *Network) Connect(a, b Node, cfg LinkConfig) (*Port, *Port) {
	if cfg.RateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	pa := &Port{owner: a, net: n, rateBps: cfg.RateBps, delay: cfg.Delay, queue: cfg.QueueA}
	pb := &Port{owner: b, net: n, rateBps: cfg.RateBps, delay: cfg.Delay, queue: cfg.QueueB}
	if pa.queue == nil {
		pa.queue = n.defaultQueueFor(a)
	}
	if pb.queue == nil {
		pb.queue = n.defaultQueueFor(b)
	}
	pa.peer, pb.peer = pb, pa
	a.attach(pa)
	b.attach(pb)
	return pa, pb
}

func (n *Network) defaultQueueFor(nd Node) Queue {
	if _, isHost := nd.(*Host); isHost {
		return n.NewHostQueue()
	}
	return n.NewSwitchQueue()
}

// AllocPacketID returns a fresh unique packet ID.
func (n *Network) AllocPacketID() uint64 {
	n.nextPkt++
	return n.nextPkt
}

// Run drains all pending events.
func (n *Network) Run() { n.Engine.Run() }

// RunUntil advances the simulation to absolute virtual time t.
func (n *Network) RunUntil(t simtime.Time) { n.Engine.RunUntil(t) }

// RunFor advances the simulation by d.
func (n *Network) RunFor(d simtime.Time) { n.Engine.RunFor(d) }
