package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"switchpointer/internal/simtime"
)

// TestPropertyPacketConservation injects random traffic matrices into a
// random small fabric and checks conservation: every injected packet is
// either delivered, dropped (counted), or still queued when the run stops.
func TestPropertyPacketConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		n.NewSwitchQueue = func() Queue {
			if rng.Intn(2) == 0 {
				return NewFIFOQueue(64 << 10) // small: force drops
			}
			return NewPriorityQueue(64 << 10)
		}
		nHosts := 2 + rng.Intn(4)
		sw := n.NewSwitch("s", 0)
		hosts := make([]*Host, nHosts)
		received := 0
		for i := range hosts {
			hosts[i] = n.NewHost(string(rune('a'+i)), IP(10, 0, 0, byte(i+1)))
			n.Connect(hosts[i], sw, LinkConfig{RateBps: Rate1G})
			sw.SetRoute(hosts[i].IP(), i)
			hosts[i].OnReceive(func(p *Packet, now simtime.Time) { received++ })
		}
		sent := 0
		for i := 0; i < 50+rng.Intn(200); i++ {
			src := hosts[rng.Intn(nHosts)]
			dst := hosts[rng.Intn(nHosts)]
			if src == dst {
				continue
			}
			at := simtime.Time(rng.Intn(1000)) * simtime.Microsecond
			pkt := &Packet{
				ID:       n.AllocPacketID(),
				Flow:     FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: uint16(i), DstPort: 1, Proto: ProtoUDP},
				Size:     64 + rng.Intn(1436),
				Priority: uint8(rng.Intn(8)),
			}
			sent++
			s := src
			n.Engine.At(at, func() { s.Send(pkt) })
		}
		n.Run()
		var drops uint64
		for _, pt := range sw.Ports() {
			drops += pt.Drops
		}
		for _, h := range hosts {
			drops += h.NIC().Drops
		}
		return received+int(drops) == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFIFOOrderingPerPort checks that a FIFO egress port never
// reorders packets of the same flow.
func TestPropertyFIFOOrderingPerPort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		src := n.NewHost("src", IP(10, 0, 0, 1))
		dst := n.NewHost("dst", IP(10, 0, 0, 2))
		sw := n.NewSwitch("s", 0)
		n.Connect(src, sw, LinkConfig{RateBps: Rate10G})
		n.Connect(sw, dst, LinkConfig{RateBps: Rate1G})
		sw.SetRoute(dst.IP(), 1)
		var got []uint64
		dst.OnReceive(func(p *Packet, now simtime.Time) { got = append(got, p.ID) })
		flow := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 1, Proto: ProtoTCP}
		nPkts := 10 + rng.Intn(50)
		for i := 0; i < nPkts; i++ {
			id := uint64(i)
			at := simtime.Time(i) * simtime.Microsecond // ordered injection
			n.Engine.At(at, func() {
				src.Send(&Packet{ID: id, Flow: flow, Size: 200 + rng.Intn(1000)})
			})
		}
		n.Run()
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardPacket(b *testing.B) {
	n := New()
	src := n.NewHost("src", IP(10, 0, 0, 1))
	dst := n.NewHost("dst", IP(10, 0, 0, 2))
	sw := n.NewSwitch("s", 0)
	n.Connect(src, sw, LinkConfig{RateBps: Rate10G})
	n.Connect(sw, dst, LinkConfig{RateBps: Rate10G})
	sw.SetRoute(dst.IP(), 1)
	dst.OnReceive(func(p *Packet, now simtime.Time) {})
	flow := FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 1, Proto: ProtoUDP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(&Packet{ID: uint64(i), Flow: flow, Size: 1500})
		n.Run()
	}
}
