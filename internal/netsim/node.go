package netsim

import (
	"fmt"

	"switchpointer/internal/simtime"
)

// NodeID identifies a switch or host in the simulated network. Switches and
// hosts share one ID space so telemetry records can name either.
type NodeID int32

// Node is a network element that owns ports and consumes packets.
type Node interface {
	NodeID() NodeID
	NodeName() string
	attach(pt *Port)
	deliver(p *Packet, in *Port, now simtime.Time)
}

// PipelineFunc is one stage of a switch's forwarding pipeline, invoked after
// the routing decision and before the packet is enqueued on the output port.
// SwitchPointer's datapath — the MPH pointer update and the telemetry tag
// push — attaches here, exactly where the paper inserts it into the OVS
// pipeline.
type PipelineFunc func(sw *Switch, p *Packet, in, out *Port, now simtime.Time)

// Switch is a simulated output-queued switch.
type Switch struct {
	id    NodeID
	name  string
	net   *Network
	Clock *simtime.Clock

	ports  []*Port
	routes map[IPv4]int

	// RouteOverride, when non-nil, is consulted before the routing table.
	// Scenario code uses it to model misbehaving switches (e.g. the
	// flow-size-based load-imbalance malfunction of §5.4).
	RouteOverride func(sw *Switch, p *Packet) (outPort int, ok bool)

	// Pipeline stages run in order on every forwarded packet.
	Pipeline []PipelineFunc

	// ForwardedPkts counts packets the switch routed (not dropped for lack
	// of route or TTL).
	ForwardedPkts uint64
	// NoRouteDrops counts packets with no matching route.
	NoRouteDrops uint64
	// TTLDrops counts packets discarded by the loop guard.
	TTLDrops uint64
}

// NodeID implements Node.
func (s *Switch) NodeID() NodeID { return s.id }

// NodeName implements Node.
func (s *Switch) NodeName() string { return s.name }

func (s *Switch) attach(pt *Port) {
	pt.index = len(s.ports)
	s.ports = append(s.ports, pt)
}

// Ports returns the switch's ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// SetRoute installs dst → out-port in the routing table.
//
// Routing state is expected to be static once traffic starts flowing:
// host-side telemetry decoding memoizes path reconstruction per
// (src, dst, link) on that assumption (header.Decoder). A scenario that
// rewires routes mid-run must call InvalidatePaths on every decoder it
// built, or stale trajectories will be silently attributed to new packets.
func (s *Switch) SetRoute(dst IPv4, outPort int) {
	if s.routes == nil {
		s.routes = make(map[IPv4]int)
	}
	if outPort < 0 || outPort >= len(s.ports) {
		panic(fmt.Sprintf("netsim: switch %s route to invalid port %d", s.name, outPort))
	}
	s.routes[dst] = outPort
}

// RouteTo returns the configured output port for dst.
func (s *Switch) RouteTo(dst IPv4) (int, bool) {
	out, ok := s.routes[dst]
	return out, ok
}

// LocalEpoch returns the switch's current local epoch for epoch size alpha.
func (s *Switch) LocalEpoch(now simtime.Time, alpha simtime.Time) simtime.Epoch {
	return s.Clock.EpochAt(now, alpha)
}

// deliver implements Node: route, run the pipeline, enqueue on egress.
func (s *Switch) deliver(p *Packet, in *Port, now simtime.Time) {
	if p.hops >= maxHops {
		s.TTLDrops++
		if s.net.OnDrop != nil {
			s.net.OnDrop(p, in, now)
		}
		p.Release()
		return
	}
	p.hops++

	out := -1
	if s.RouteOverride != nil {
		if o, ok := s.RouteOverride(s, p); ok {
			out = o
		}
	}
	if out < 0 {
		o, ok := s.routes[p.Flow.Dst]
		if !ok {
			s.NoRouteDrops++
			if s.net.OnDrop != nil {
				s.net.OnDrop(p, in, now)
			}
			p.Release()
			return
		}
		out = o
	}
	if out < 0 || out >= len(s.ports) {
		s.NoRouteDrops++
		p.Release()
		return
	}
	outPort := s.ports[out]
	for _, stage := range s.Pipeline {
		stage(s, p, in, outPort, now)
	}
	s.ForwardedPkts++
	outPort.send(p)
}

// maxHops bounds the number of switch traversals per packet; exceeding it
// indicates a routing loop in a scenario and drops the packet.
const maxHops = 64

// ReceiveFunc consumes packets arriving at a host NIC.
type ReceiveFunc func(p *Packet, now simtime.Time)

// Host is a simulated end host with one NIC. The host side of SwitchPointer
// (telemetry decoding, flow records, triggers) subscribes to arriving packets
// with OnReceive; transports send with Send.
type Host struct {
	id    NodeID
	name  string
	ip    IPv4
	net   *Network
	Clock *simtime.Clock

	nic      *Port
	handlers []ReceiveFunc
}

// NodeID implements Node.
func (h *Host) NodeID() NodeID { return h.id }

// NodeName implements Node.
func (h *Host) NodeName() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() IPv4 { return h.ip }

// NIC returns the host's network port (nil before the host is connected).
func (h *Host) NIC() *Port { return h.nic }

func (h *Host) attach(pt *Port) {
	if h.nic != nil {
		panic(fmt.Sprintf("netsim: host %s already has a NIC", h.name))
	}
	pt.index = 0
	h.nic = pt
}

// OnReceive registers fn to observe every packet arriving at the host, in
// registration order.
func (h *Host) OnReceive(fn ReceiveFunc) { h.handlers = append(h.handlers, fn) }

// Send transmits a packet out of the host NIC.
func (h *Host) Send(p *Packet) {
	if h.nic == nil {
		panic(fmt.Sprintf("netsim: host %s is not connected", h.name))
	}
	h.nic.send(p)
}

// deliver implements Node. Delivery to a host is a packet's terminal point:
// after every receive handler has seen it, a pooled packet is recycled.
// Handlers must therefore not retain the packet past their return.
func (h *Host) deliver(p *Packet, in *Port, now simtime.Time) {
	for _, fn := range h.handlers {
		fn(p, now)
	}
	p.Release()
}
