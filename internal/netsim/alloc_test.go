package netsim

import (
	"testing"

	"switchpointer/internal/simtime"
)

// TestCloneZeroAlloc gates the pooled-clone contract: a steady-state
// Clone/Release cycle reuses a pooled packet (including its INT capacity)
// and performs zero heap allocations.
func TestCloneZeroAlloc(t *testing.T) {
	p := AllocPacket()
	p.Flow = FlowKey{Src: IP(10, 0, 0, 1), Dst: IP(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	p.Size = 1500
	for i := 0; i < 5; i++ {
		p.AppendINT(HopRecord{Switch: NodeID(i), Epoch: simtime.Epoch(i)})
	}
	// Warm the pool with one clone cycle.
	p.Clone().Release()
	allocs := testing.AllocsPerRun(1000, func() {
		c := p.Clone()
		if len(c.INT) != len(p.INT) || c.Flow != p.Flow {
			t.Fatal("bad clone")
		}
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("Packet.Clone steady state: %v allocs/op, want 0", allocs)
	}
	p.Release()
}

// TestCloneIsDeep asserts Release-safety of clones: mutating the clone's
// INT stack never aliases the original.
func TestCloneIsDeep(t *testing.T) {
	p := AllocPacket()
	p.AppendINT(HopRecord{Switch: 1, Epoch: 2})
	c := p.Clone()
	c.INT[0].Switch = 99
	c.AppendINT(HopRecord{Switch: 3, Epoch: 4})
	if p.INT[0].Switch != 1 || len(p.INT) != 1 {
		t.Fatalf("clone aliases original: %+v", p.INT)
	}
	c.Release()
	p.Release()
}

// TestAllocPacketResetsState asserts a recycled packet comes back zeroed
// (apart from retained INT capacity).
func TestAllocPacketResetsState(t *testing.T) {
	p := AllocPacket()
	p.Flow = FlowKey{Src: 1}
	p.Size = 77
	p.hops = 3
	p.PushTag(Tag{Type: TagLink, Value: 5})
	p.AppendINT(HopRecord{Switch: 1})
	p.Release()
	q := AllocPacket()
	if q.Size != 0 || q.NTag != 0 || q.hops != 0 || len(q.INT) != 0 || (q.Flow != FlowKey{}) {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	q.Release()
}
