package netsim

import (
	"switchpointer/internal/simtime"
)

// Port is one end of a full-duplex link. Each direction has its own egress
// queue and transmitter, so A→B traffic never blocks B→A. Serialization
// delay is Size·8/rate; the packet then propagates for the link delay and is
// delivered to the peer's owning node.
type Port struct {
	owner Node
	index int // port number on the owning node
	net   *Network

	queue   Queue
	rateBps int64
	delay   simtime.Time
	peer    *Port
	busy    bool

	// Counters (egress unless noted). These are the per-port counters that
	// in-network baseline techniques sample.
	TxBytes uint64
	TxPkts  uint64
	RxBytes uint64
	RxPkts  uint64
	Drops   uint64

	// OnTransmit, when set, observes every packet at the instant its
	// serialization onto the wire begins. Experiments attach per-flow
	// throughput meters here (e.g. "throughput of flow A-F at S1", Fig 3).
	OnTransmit func(p *Packet, now simtime.Time)
}

// Owner returns the node the port belongs to.
func (pt *Port) Owner() Node { return pt.owner }

// Index returns the port number on its owning node.
func (pt *Port) Index() int { return pt.index }

// Peer returns the port at the other end of the link.
func (pt *Port) Peer() *Port { return pt.peer }

// RateBps returns the link rate in bits per second.
func (pt *Port) RateBps() int64 { return pt.rateBps }

// QueueLen returns the instantaneous egress queue length in packets.
func (pt *Port) QueueLen() int { return pt.queue.Len() }

// QueueBytes returns the instantaneous egress queue depth in bytes.
func (pt *Port) QueueBytes() int { return pt.queue.Bytes() }

// send places p on the egress queue and kicks the transmitter. Drops are
// counted and reported to the network's OnDrop hook.
func (pt *Port) send(p *Packet) {
	if !pt.queue.Enqueue(p) {
		pt.Drops++
		if pt.net.OnDrop != nil {
			pt.net.OnDrop(p, pt, pt.net.Engine.Now())
		}
		return
	}
	if !pt.busy {
		pt.transmitNext()
	}
}

// transmitNext pops the next packet and models serialization + propagation.
func (pt *Port) transmitNext() {
	p := pt.queue.Dequeue()
	if p == nil {
		pt.busy = false
		return
	}
	pt.busy = true
	now := pt.net.Engine.Now()
	pt.TxBytes += uint64(p.Size)
	pt.TxPkts++
	if pt.OnTransmit != nil {
		pt.OnTransmit(p, now)
	}
	txTime := serializationTime(p.Size, pt.rateBps)
	peer := pt.peer
	// Serialization completes at now+txTime: the port is free for the next
	// packet. The tail of the packet reaches the peer after the propagation
	// delay on top of that.
	pt.net.Engine.After(txTime, func() {
		pt.net.Engine.After(pt.delay, func() {
			peer.receive(p)
		})
		pt.transmitNext()
	})
}

// receive hands an arriving packet to the owning node.
func (pt *Port) receive(p *Packet) {
	pt.RxBytes += uint64(p.Size)
	pt.RxPkts++
	pt.owner.deliver(p, pt, pt.net.Engine.Now())
}

// serializationTime returns the time to clock size bytes onto a link of the
// given rate.
func serializationTime(size int, rateBps int64) simtime.Time {
	if rateBps <= 0 {
		panic("netsim: non-positive link rate")
	}
	return simtime.Time(int64(size) * 8 * int64(simtime.Second) / rateBps)
}
