package netsim

import (
	"switchpointer/internal/simtime"
)

// Port is one end of a full-duplex link. Each direction has its own egress
// queue and transmitter, so A→B traffic never blocks B→A. Serialization
// delay is Size·8/rate; the packet then propagates for the link delay and is
// delivered to the peer's owning node.
type Port struct {
	owner Node
	index int // port number on the owning node
	net   *Network

	queue   Queue
	rateBps int64
	delay   simtime.Time
	peer    *Port

	// Per-packet transmission is allocation-free and costs one event per
	// packet on an uncongested link: instead of capturing the packet in
	// per-event closures, the port keeps a FIFO of packets in flight
	// (serializing or propagating) and schedules each packet's arrival at
	// the instant its serialization starts. The transmitter's availability
	// is tracked as a timestamp (freeAt); a separate drain event exists
	// only while packets are actually waiting behind the transmitter. FIFO
	// order is correct because transmit starts are non-decreasing in time,
	// so arrivals over a constant-delay link are non-decreasing too, and
	// the engine breaks equal-time ties in schedule order.
	freeAt         simtime.Time
	drainScheduled bool
	propagating    pktRing
	drainFn        func() // transmitter became free with work queued
	arriveFn       func() // head of `propagating` reached the peer

	// Counters (egress unless noted). These are the per-port counters that
	// in-network baseline techniques sample.
	TxBytes uint64
	TxPkts  uint64
	RxBytes uint64
	RxPkts  uint64
	Drops   uint64

	// OnTransmit, when set, observes every packet at the instant its
	// serialization onto the wire begins. Experiments attach per-flow
	// throughput meters here (e.g. "throughput of flow A-F at S1", Fig 3).
	OnTransmit func(p *Packet, now simtime.Time)
}

// Owner returns the node the port belongs to.
func (pt *Port) Owner() Node { return pt.owner }

// Index returns the port number on its owning node.
func (pt *Port) Index() int { return pt.index }

// Peer returns the port at the other end of the link.
func (pt *Port) Peer() *Port { return pt.peer }

// RateBps returns the link rate in bits per second.
func (pt *Port) RateBps() int64 { return pt.rateBps }

// QueueLen returns the instantaneous egress queue length in packets.
func (pt *Port) QueueLen() int { return pt.queue.Len() }

// QueueBytes returns the instantaneous egress queue depth in bytes.
func (pt *Port) QueueBytes() int { return pt.queue.Bytes() }

// send places p on the egress queue and kicks the transmitter. Drops are
// counted and reported to the network's OnDrop hook.
func (pt *Port) send(p *Packet) {
	if !pt.queue.Enqueue(p) {
		pt.Drops++
		if pt.net.OnDrop != nil {
			pt.net.OnDrop(p, pt, pt.net.Engine.Now())
		}
		p.Release()
		return
	}
	if pt.drainScheduled {
		return // transmitter busy, wakeup already booked
	}
	now := pt.net.Engine.Now()
	if now >= pt.freeAt {
		pt.transmitNext()
		return
	}
	pt.scheduleDrain()
}

func (pt *Port) scheduleDrain() {
	if pt.drainFn == nil {
		pt.drainFn = pt.drain
	}
	pt.drainScheduled = true
	pt.net.Engine.At(pt.freeAt, pt.drainFn)
}

// drain fires when the transmitter becomes free with packets waiting.
func (pt *Port) drain() {
	pt.drainScheduled = false
	pt.transmitNext()
}

// transmitNext pops the next packet and models serialization + propagation.
// The packet's arrival at the peer is scheduled immediately (serialization
// time plus propagation delay); a drain event is booked only when more
// packets are waiting behind the transmitter.
func (pt *Port) transmitNext() {
	p := pt.queue.Dequeue()
	if p == nil {
		return
	}
	now := pt.net.Engine.Now()
	pt.TxBytes += uint64(p.Size)
	pt.TxPkts++
	if pt.OnTransmit != nil {
		pt.OnTransmit(p, now)
	}
	txTime := serializationTime(p.Size, pt.rateBps)
	pt.freeAt = now + txTime
	if pt.queue.Len() > 0 {
		pt.scheduleDrain()
	}
	if pt.arriveFn == nil {
		pt.arriveFn = pt.arrive
	}
	pt.propagating.push(p)
	pt.net.Engine.After(txTime+pt.delay, pt.arriveFn)
}

// arrive fires when the oldest propagating packet reaches the peer.
func (pt *Port) arrive() {
	pt.peer.receive(pt.propagating.pop())
}

// receive hands an arriving packet to the owning node.
func (pt *Port) receive(p *Packet) {
	pt.RxBytes += uint64(p.Size)
	pt.RxPkts++
	pt.owner.deliver(p, pt, pt.net.Engine.Now())
}

// serializationTime returns the time to clock size bytes onto a link of the
// given rate.
func serializationTime(size int, rateBps int64) simtime.Time {
	if rateBps <= 0 {
		panic("netsim: non-positive link rate")
	}
	return simtime.Time(int64(size) * 8 * int64(simtime.Second) / rateBps)
}
