package netsim

// Queue is the discipline of one switch output port. Implementations must be
// cheap: Enqueue/Dequeue run once per forwarded packet.
//
// The paper's experiments use two disciplines: strict priority (the Pica8
// configuration that delays low-priority packets whenever a high-priority
// packet is present, §2.1) and plain FIFO (the microburst configuration).
type Queue interface {
	// Enqueue adds the packet; it reports false when the packet was dropped
	// (buffer full).
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() int
}

// pktRing is an amortized-O(1) FIFO of packets.
type pktRing struct {
	buf        []*Packet
	head, tail int
	n          int
	bytes      int
}

func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = p
	r.tail = (r.tail + 1) % len(r.buf)
	r.n++
	r.bytes += p.Size
}

func (r *pktRing) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.bytes -= p.Size
	return p
}

func (r *pktRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
	r.tail = r.n
}

// FIFOQueue is a drop-tail FIFO bounded by bytes.
type FIFOQueue struct {
	capBytes int
	ring     pktRing
}

// NewFIFOQueue returns a drop-tail FIFO holding at most capBytes of packets.
func NewFIFOQueue(capBytes int) *FIFOQueue {
	if capBytes <= 0 {
		panic("netsim: non-positive queue capacity")
	}
	return &FIFOQueue{capBytes: capBytes}
}

// Enqueue implements Queue.
func (q *FIFOQueue) Enqueue(p *Packet) bool {
	if q.ring.bytes+p.Size > q.capBytes {
		return false
	}
	q.ring.push(p)
	return true
}

// Dequeue implements Queue.
func (q *FIFOQueue) Dequeue() *Packet { return q.ring.pop() }

// Len implements Queue.
func (q *FIFOQueue) Len() int { return q.ring.n }

// Bytes implements Queue.
func (q *FIFOQueue) Bytes() int { return q.ring.bytes }

// NumPriorityBands is the number of strict-priority classes (DSCP 0–7).
const NumPriorityBands = 8

// PriorityQueue is a strict-priority discipline with NumPriorityBands
// drop-tail bands sharing one byte budget. Dequeue always serves the highest
// non-empty band, which is exactly the behaviour that produces the paper's
// low-priority starvation in Figure 2(a).
type PriorityQueue struct {
	capBytes int
	bytes    int
	bands    [NumPriorityBands]pktRing
}

// NewPriorityQueue returns a strict-priority queue with a shared byte budget.
func NewPriorityQueue(capBytes int) *PriorityQueue {
	if capBytes <= 0 {
		panic("netsim: non-positive queue capacity")
	}
	return &PriorityQueue{capBytes: capBytes}
}

// Enqueue implements Queue.
func (q *PriorityQueue) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.capBytes {
		return false
	}
	band := int(p.Priority)
	if band >= NumPriorityBands {
		band = NumPriorityBands - 1
	}
	q.bands[band].push(p)
	q.bytes += p.Size
	return true
}

// Dequeue implements Queue.
func (q *PriorityQueue) Dequeue() *Packet {
	for b := NumPriorityBands - 1; b >= 0; b-- {
		if q.bands[b].n > 0 {
			p := q.bands[b].pop()
			q.bytes -= p.Size
			return p
		}
	}
	return nil
}

// Len implements Queue.
func (q *PriorityQueue) Len() int {
	n := 0
	for b := range q.bands {
		n += q.bands[b].n
	}
	return n
}

// Bytes implements Queue.
func (q *PriorityQueue) Bytes() int { return q.bytes }

// QueueKind selects a discipline when building testbeds.
type QueueKind uint8

// Supported queue disciplines.
const (
	QueueFIFO QueueKind = iota
	QueuePriority
)

// NewQueue builds a queue of the given kind and capacity.
func NewQueue(kind QueueKind, capBytes int) Queue {
	switch kind {
	case QueuePriority:
		return NewPriorityQueue(capBytes)
	default:
		return NewFIFOQueue(capBytes)
	}
}
