// Package netsim is the discrete-event datacenter network simulator that
// SwitchPointer runs on in this reproduction: the substitute for the paper's
// physical testbed of commodity switches and servers.
//
// The simulator models hosts with rate-limited NICs, switches with per-output
// -port queues (drop-tail FIFO or strict priority), full-duplex links with
// bandwidth and propagation delay, and a per-switch forwarding pipeline to
// which SwitchPointer's datapath (pointer update + telemetry tagging) attaches
// as hooks. Everything runs on a single deterministic event engine in virtual
// time, so contention phenomena — priority starvation, microbursts, red-light
// accumulation, cascades — reproduce exactly across runs.
package netsim

import (
	"fmt"
	"strconv"
	"sync"

	"switchpointer/internal/simtime"
)

// IPv4 is an IPv4 address in host byte order. End hosts are identified by
// their IPv4 address throughout the system; it is the key of the minimal
// perfect hash at switches.
type IPv4 uint32

// IP builds an IPv4 address from its four octets.
func IP(a, b, c, d byte) IPv4 {
	return IPv4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address in dotted-quad notation. It is called once per
// contacted host per query round (cost-model server names), so it builds the
// string directly instead of going through fmt.
func (ip IPv4) String() string {
	var buf [15]byte
	b := strconv.AppendUint(buf[:0], uint64(byte(ip>>24)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>16)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>8)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip)), 10)
	return string(b)
}

// Protocol is an IP protocol number.
type Protocol uint8

// Protocols used by the workloads.
const (
	ProtoTCP Protocol = 6
	ProtoUDP Protocol = 17
)

func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FlowKey is the usual 5-tuple identifying a flow. It is comparable and used
// as a map key everywhere (flow records, meters, diagnosis results).
type FlowKey struct {
	Src, Dst         IPv4
	SrcPort, DstPort uint16
	Proto            Protocol
}

// String formats the flow as "proto src:sport->dst:dport".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d->%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Reverse returns the 5-tuple of the opposite direction (used for ACKs).
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// TCP header flag bits carried by simulated packets.
const (
	FlagSYN uint8 = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// TagType distinguishes the two 802.1ad VLAN tags SwitchPointer pushes in
// commodity mode (§4.1.3): the CherryPick link identifier and the epoch
// identifier of the tagging switch.
type TagType uint8

// Tag types.
const (
	TagNone  TagType = iota
	TagLink          // CherryPick key-link ID
	TagEpoch         // epochID at the tagging switch
)

// Tag is one VLAN tag on the packet's tag stack. Real 802.1ad tags carry a
// 12-bit VID; the paper's technique packs the linkID or epochID (mod 2^12)
// into it. We keep the full value and account header bytes separately.
type Tag struct {
	Type  TagType
	Value uint32
}

// HopRecord is one entry of the INT-style telemetry stack (clean-slate mode):
// the switch that forwarded the packet and its local epoch at that instant.
type HopRecord struct {
	Switch NodeID
	Epoch  simtime.Epoch
}

// VLANTagBytes is the wire overhead of one 802.1Q/802.1ad tag.
const VLANTagBytes = 4

// INTHopBytes is the wire overhead of one INT hop record (switchID+epoch).
const INTHopBytes = 8

// Packet is a simulated packet. Size is the full on-wire size in bytes and
// is what serialization delay and queue occupancy are computed from; when
// telemetry headers are pushed, Size grows accordingly.
//
// Packets on the hot datapath are pooled: transports allocate with
// AllocPacket and the simulator releases them back to the pool at their
// terminal point (delivery to a host, or any drop). Receive handlers must
// not retain a packet past their return; copy what they need into their own
// state (the host agent's record absorption already does). Packets built
// with a plain composite literal are never pooled and Release ignores them.
type Packet struct {
	ID       uint64
	Flow     FlowKey
	Priority uint8 // DSCP class: higher value = higher priority
	Size     int   // total on-wire bytes
	Payload  int   // transport payload bytes

	// TCP fields (ignored for UDP).
	Seq   uint32
	Ack   uint32
	Flags uint8

	// Telemetry carried in-band.
	Tags [2]Tag // commodity mode: [linkID, epochID]
	NTag int
	INT  []HopRecord // clean-slate mode

	SentAt simtime.Time // stamped by the sender's transport

	hops   int  // switch traversals, for the routing-loop guard
	pooled bool // came from the packet pool; Release returns it there
}

// pktPool recycles packets (and their INT capacity) across the simulation's
// send→deliver/drop lifecycle. sync.Pool keeps the steady-state per-packet
// path allocation-free while remaining safe if packets are ever allocated
// from multiple goroutines.
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// AllocPacket returns a zeroed packet from the pool. The INT slice capacity
// of the recycled packet is retained, so steady-state INT-mode telemetry
// appends without reallocating.
func AllocPacket() *Packet {
	p := pktPool.Get().(*Packet)
	intBuf := p.INT
	*p = Packet{INT: intBuf[:0], pooled: true}
	return p
}

// Release returns a pooled packet to the pool. It is a no-op for packets not
// obtained from AllocPacket or Clone, so tests that build packets with
// composite literals interoperate freely with the pooled datapath. Callers
// must not touch the packet after releasing it.
func (p *Packet) Release() {
	if !p.pooled {
		return
	}
	p.pooled = false
	pktPool.Put(p)
}

// PushTag appends a VLAN tag to the stack and grows the wire size. It panics
// when more than two tags are pushed: 802.1ad double-tagging is the
// commodity-switch limit the paper designs around.
func (p *Packet) PushTag(tag Tag) {
	if p.NTag >= len(p.Tags) {
		panic("netsim: VLAN tag stack overflow (802.1ad allows two tags)")
	}
	p.Tags[p.NTag] = tag
	p.NTag++
	p.Size += VLANTagBytes
}

// TagOf returns the first tag of the given type and whether it exists.
func (p *Packet) TagOf(t TagType) (Tag, bool) {
	for i := 0; i < p.NTag; i++ {
		if p.Tags[i].Type == t {
			return p.Tags[i], true
		}
	}
	return Tag{}, false
}

// AppendINT appends an INT hop record and grows the wire size. On pooled
// packets the INT slice reuses recycled capacity, so at steady state the
// append does not allocate.
func (p *Packet) AppendINT(rec HopRecord) {
	p.INT = append(p.INT, rec)
	p.Size += INTHopBytes
}

// Clone returns a deep copy of the packet (used by tests and by fan-out
// tooling; the datapath itself never copies packets). The clone comes from
// the packet pool and reuses recycled INT capacity, so a steady-state
// clone/Release cycle performs zero heap allocations; release clones with
// Release when done.
func (p *Packet) Clone() *Packet {
	c := pktPool.Get().(*Packet)
	intBuf := c.INT
	*c = *p
	c.pooled = true
	c.INT = append(intBuf[:0], p.INT...)
	return c
}
