package netsim

import (
	"testing"

	"switchpointer/internal/simtime"
)

func TestIPv4Formatting(t *testing.T) {
	ip := IP(10, 0, 1, 200)
	if ip.String() != "10.0.1.200" {
		t.Fatalf("String = %q", ip.String())
	}
	if uint32(ip) != 10<<24|1<<8|200 {
		t.Fatalf("value = %x", uint32(ip))
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: IP(1, 1, 1, 1), Dst: IP(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != 20 || r.DstPort != 10 || r.Proto != ProtoTCP {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatalf("double reverse should round-trip")
	}
	if k.String() != "TCP 1.1.1.1:10->2.2.2.2:20" {
		t.Fatalf("String = %q", k.String())
	}
}

func TestPacketTags(t *testing.T) {
	p := &Packet{Size: 1000}
	p.PushTag(Tag{Type: TagLink, Value: 7})
	p.PushTag(Tag{Type: TagEpoch, Value: 42})
	if p.Size != 1008 {
		t.Fatalf("Size after two tags = %d, want 1008", p.Size)
	}
	if tag, ok := p.TagOf(TagEpoch); !ok || tag.Value != 42 {
		t.Fatalf("TagOf(TagEpoch) = %+v, %v", tag, ok)
	}
	if _, ok := (&Packet{}).TagOf(TagLink); ok {
		t.Fatalf("TagOf on untagged packet should be false")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("third tag should panic (802.1ad limit)")
		}
	}()
	p.PushTag(Tag{Type: TagLink, Value: 1})
}

func TestPacketINTAndClone(t *testing.T) {
	p := &Packet{Size: 100}
	p.AppendINT(HopRecord{Switch: 3, Epoch: 9})
	if p.Size != 100+INTHopBytes || len(p.INT) != 1 {
		t.Fatalf("INT append wrong: size=%d len=%d", p.Size, len(p.INT))
	}
	c := p.Clone()
	c.AppendINT(HopRecord{Switch: 4, Epoch: 10})
	if len(p.INT) != 1 {
		t.Fatalf("Clone aliases INT slice")
	}
}

func TestFIFOQueueDropTail(t *testing.T) {
	q := NewFIFOQueue(2500)
	a := &Packet{ID: 1, Size: 1000}
	b := &Packet{ID: 2, Size: 1000}
	c := &Packet{ID: 3, Size: 1000}
	if !q.Enqueue(a) || !q.Enqueue(b) {
		t.Fatalf("first two enqueues should fit")
	}
	if q.Enqueue(c) {
		t.Fatalf("third enqueue should drop (2500 cap)")
	}
	if q.Len() != 2 || q.Bytes() != 2000 {
		t.Fatalf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	if q.Dequeue().ID != 1 || q.Dequeue().ID != 2 || q.Dequeue() != nil {
		t.Fatalf("FIFO order broken")
	}
}

func TestFIFOQueueRingGrowth(t *testing.T) {
	q := NewFIFOQueue(1 << 20)
	for i := 0; i < 100; i++ {
		q.Enqueue(&Packet{ID: uint64(i), Size: 10})
	}
	// Interleave to force wraparound.
	for i := 0; i < 50; i++ {
		if q.Dequeue().ID != uint64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	for i := 100; i < 200; i++ {
		q.Enqueue(&Packet{ID: uint64(i), Size: 10})
	}
	for i := 50; i < 200; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != uint64(i) {
			t.Fatalf("order broken at %d: %+v", i, p)
		}
	}
}

func TestPriorityQueueStrictOrder(t *testing.T) {
	q := NewPriorityQueue(1 << 20)
	lo := &Packet{ID: 1, Size: 100, Priority: 0}
	hi := &Packet{ID: 2, Size: 100, Priority: 7}
	mid := &Packet{ID: 3, Size: 100, Priority: 3}
	q.Enqueue(lo)
	q.Enqueue(hi)
	q.Enqueue(mid)
	if q.Len() != 3 || q.Bytes() != 300 {
		t.Fatalf("Len/Bytes wrong")
	}
	if q.Dequeue().ID != 2 || q.Dequeue().ID != 3 || q.Dequeue().ID != 1 {
		t.Fatalf("strict priority order broken")
	}
	if q.Dequeue() != nil {
		t.Fatalf("empty dequeue should be nil")
	}
}

func TestPriorityQueueSharedBudget(t *testing.T) {
	q := NewPriorityQueue(250)
	if !q.Enqueue(&Packet{Size: 200, Priority: 0}) {
		t.Fatalf("first should fit")
	}
	if q.Enqueue(&Packet{Size: 100, Priority: 7}) {
		t.Fatalf("budget is shared: high priority should also be tail-dropped")
	}
}

func TestPriorityQueueClampsBand(t *testing.T) {
	q := NewPriorityQueue(1 << 10)
	q.Enqueue(&Packet{ID: 1, Size: 10, Priority: 200}) // clamped to top band
	q.Enqueue(&Packet{ID: 2, Size: 10, Priority: 7})
	if q.Dequeue().ID != 1 {
		t.Fatalf("clamped-band packet should still dequeue first (FIFO within band)")
	}
}

func TestQueueConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"fifo": func() { NewFIFOQueue(0) },
		"prio": func() { NewPriorityQueue(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewQueueKinds(t *testing.T) {
	if _, ok := NewQueue(QueueFIFO, 10).(*FIFOQueue); !ok {
		t.Fatalf("QueueFIFO wrong type")
	}
	if _, ok := NewQueue(QueuePriority, 10).(*PriorityQueue); !ok {
		t.Fatalf("QueuePriority wrong type")
	}
}

// buildLine builds H1 -- S1 -- H2 with the given rate and delay.
func buildLine(t *testing.T, rate int64, delay simtime.Time) (*Network, *Host, *Switch, *Host) {
	t.Helper()
	n := New()
	h1 := n.NewHost("h1", IP(10, 0, 0, 1))
	h2 := n.NewHost("h2", IP(10, 0, 0, 2))
	s1 := n.NewSwitch("s1", 0)
	n.Connect(h1, s1, LinkConfig{RateBps: rate, Delay: delay})
	n.Connect(s1, h2, LinkConfig{RateBps: rate, Delay: delay})
	// Routing: s1 port 0 faces h1, port 1 faces h2.
	s1.SetRoute(h1.IP(), 0)
	s1.SetRoute(h2.IP(), 1)
	return n, h1, s1, h2
}

func TestEndToEndDeliveryTiming(t *testing.T) {
	n, h1, _, h2 := buildLine(t, Rate1G, 2*simtime.Microsecond)
	var arrivals []simtime.Time
	h2.OnReceive(func(p *Packet, now simtime.Time) { arrivals = append(arrivals, now) })

	pkt := &Packet{ID: n.AllocPacketID(), Size: 1500, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}}
	h1.Send(pkt)
	n.Run()

	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// 1500B at 1Gbps = 12µs serialization, twice (host NIC + switch egress),
	// plus 2µs propagation twice = 28µs.
	want := 28 * simtime.Microsecond
	if arrivals[0] != want {
		t.Fatalf("arrival at %v, want %v", arrivals[0], want)
	}
}

func TestStoreAndForwardPipelining(t *testing.T) {
	n, h1, _, h2 := buildLine(t, Rate1G, 0)
	var arrivals []simtime.Time
	h2.OnReceive(func(p *Packet, now simtime.Time) { arrivals = append(arrivals, now) })
	for i := 0; i < 3; i++ {
		h1.Send(&Packet{ID: n.AllocPacketID(), Size: 1500, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	}
	n.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// With store-and-forward, back-to-back packets arrive 12µs apart (one
	// serialization time at the bottleneck), the first after 24µs.
	ser := 12 * simtime.Microsecond
	if arrivals[0] != 2*ser || arrivals[1] != 3*ser || arrivals[2] != 4*ser {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestSwitchNoRouteDrop(t *testing.T) {
	n, h1, s1, _ := buildLine(t, Rate1G, 0)
	drops := 0
	n.OnDrop = func(p *Packet, at *Port, now simtime.Time) { drops++ }
	h1.Send(&Packet{ID: 1, Size: 100, Flow: FlowKey{Src: h1.IP(), Dst: IP(99, 9, 9, 9)}})
	n.Run()
	if s1.NoRouteDrops != 1 || drops != 1 {
		t.Fatalf("NoRouteDrops=%d hook=%d", s1.NoRouteDrops, drops)
	}
}

func TestRouteOverride(t *testing.T) {
	n := New()
	h1 := n.NewHost("h1", IP(10, 0, 0, 1))
	h2 := n.NewHost("h2", IP(10, 0, 0, 2))
	h3 := n.NewHost("h3", IP(10, 0, 0, 3))
	s1 := n.NewSwitch("s1", 0)
	n.Connect(h1, s1, LinkConfig{RateBps: Rate1G})
	n.Connect(s1, h2, LinkConfig{RateBps: Rate1G})
	n.Connect(s1, h3, LinkConfig{RateBps: Rate1G})
	s1.SetRoute(h2.IP(), 1)
	s1.SetRoute(h3.IP(), 2)
	// Malfunction: everything to h2 is detoured to h3's port.
	s1.RouteOverride = func(sw *Switch, p *Packet) (int, bool) {
		if p.Flow.Dst == h2.IP() {
			return 2, true
		}
		return 0, false
	}
	got2, got3 := 0, 0
	h2.OnReceive(func(p *Packet, now simtime.Time) { got2++ })
	h3.OnReceive(func(p *Packet, now simtime.Time) { got3++ })
	h1.Send(&Packet{ID: 1, Size: 100, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	n.Run()
	if got2 != 0 || got3 != 1 {
		t.Fatalf("override not applied: h2=%d h3=%d", got2, got3)
	}
}

func TestPipelineHookRuns(t *testing.T) {
	n, h1, s1, h2 := buildLine(t, Rate1G, 0)
	var seen []uint64
	s1.Pipeline = append(s1.Pipeline, func(sw *Switch, p *Packet, in, out *Port, now simtime.Time) {
		if sw != s1 || in.Owner() != s1 || out.Owner() != s1 {
			t.Errorf("pipeline wiring wrong")
		}
		if out.Index() != 1 {
			t.Errorf("out port = %d, want 1", out.Index())
		}
		seen = append(seen, p.ID)
	})
	h1.Send(&Packet{ID: 77, Size: 100, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	n.Run()
	if len(seen) != 1 || seen[0] != 77 {
		t.Fatalf("pipeline saw %v", seen)
	}
	if s1.ForwardedPkts != 1 {
		t.Fatalf("ForwardedPkts = %d", s1.ForwardedPkts)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	n := New()
	n.NewSwitchQueue = func() Queue { return NewFIFOQueue(3000) } // tiny buffer
	h1 := n.NewHost("h1", IP(10, 0, 0, 1))
	h2 := n.NewHost("h2", IP(10, 0, 0, 2))
	s1 := n.NewSwitch("s1", 0)
	// Fast ingress, slow egress → queue builds at s1.
	n.Connect(h1, s1, LinkConfig{RateBps: Rate10G})
	n.Connect(s1, h2, LinkConfig{RateBps: Rate1G})
	s1.SetRoute(h2.IP(), 1)
	received := 0
	h2.OnReceive(func(p *Packet, now simtime.Time) { received++ })
	for i := 0; i < 20; i++ {
		h1.Send(&Packet{ID: uint64(i), Size: 1500, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	}
	n.Run()
	egress := s1.Port(1)
	if egress.Drops == 0 {
		t.Fatalf("expected drops at the slow egress")
	}
	if received+int(egress.Drops) != 20 {
		t.Fatalf("received %d + drops %d != 20", received, egress.Drops)
	}
}

func TestPriorityStarvation(t *testing.T) {
	// A standing low-priority queue is starved while high-priority packets
	// keep arriving — the §2.1 phenomenon in miniature.
	n := New()
	n.NewSwitchQueue = func() Queue { return NewPriorityQueue(DefaultSwitchBufBytes) }
	hLo := n.NewHost("lo", IP(10, 0, 0, 1))
	hHi := n.NewHost("hi", IP(10, 0, 0, 2))
	dst := n.NewHost("dst", IP(10, 0, 0, 3))
	s := n.NewSwitch("s", 0)
	n.Connect(hLo, s, LinkConfig{RateBps: Rate10G})
	n.Connect(hHi, s, LinkConfig{RateBps: Rate10G})
	n.Connect(s, dst, LinkConfig{RateBps: Rate1G})
	s.SetRoute(dst.IP(), 2)

	var order []uint8
	dst.OnReceive(func(p *Packet, now simtime.Time) { order = append(order, p.Priority) })

	// Low-priority packets arrive first and sit in the queue...
	for i := 0; i < 5; i++ {
		hLo.Send(&Packet{ID: uint64(i), Size: 1500, Priority: 0, Flow: FlowKey{Src: hLo.IP(), Dst: dst.IP()}})
	}
	// ...then a high-priority burst lands while the egress is still busy.
	n.Engine.At(10*simtime.Microsecond, func() {
		for i := 0; i < 5; i++ {
			hHi.Send(&Packet{ID: uint64(100 + i), Size: 1500, Priority: 7, Flow: FlowKey{Src: hHi.IP(), Dst: dst.IP()}})
		}
	})
	n.Run()
	if len(order) != 10 {
		t.Fatalf("received %d", len(order))
	}
	// First packet may be low (already serializing); after the burst lands,
	// all highs must precede all remaining lows.
	firstHi := -1
	for i, pr := range order {
		if pr == 7 {
			firstHi = i
			break
		}
	}
	if firstHi < 0 {
		t.Fatalf("no high-priority packet received")
	}
	for i := firstHi; i < len(order); i++ {
		if order[i] == 0 && i < firstHi+5 {
			t.Fatalf("low-priority packet interleaved with high burst: %v", order)
		}
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	n, h1, _, h2 := buildLine(t, Rate1G, 0)
	var t1, t2 simtime.Time
	h1.OnReceive(func(p *Packet, now simtime.Time) { t1 = now })
	h2.OnReceive(func(p *Packet, now simtime.Time) { t2 = now })
	h1.Send(&Packet{ID: 1, Size: 1500, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	h2.Send(&Packet{ID: 2, Size: 1500, Flow: FlowKey{Src: h2.IP(), Dst: h1.IP()}})
	n.Run()
	// Both directions complete in 24µs each; neither blocks the other.
	if t1 != 24*simtime.Microsecond || t2 != 24*simtime.Microsecond {
		t.Fatalf("t1=%v t2=%v, want both 24µs", t1, t2)
	}
}

func TestPortCounters(t *testing.T) {
	n, h1, s1, h2 := buildLine(t, Rate1G, 0)
	h2.OnReceive(func(p *Packet, now simtime.Time) {})
	h1.Send(&Packet{ID: 1, Size: 1000, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	n.Run()
	eg := s1.Port(1)
	if eg.TxBytes != 1000 || eg.TxPkts != 1 {
		t.Fatalf("egress counters: %d bytes, %d pkts", eg.TxBytes, eg.TxPkts)
	}
	in := s1.Port(0)
	if in.RxBytes != 1000 || in.RxPkts != 1 {
		t.Fatalf("ingress counters: %d bytes, %d pkts", in.RxBytes, in.RxPkts)
	}
	nic := h2.NIC()
	if nic.RxBytes != 1000 {
		t.Fatalf("host NIC RxBytes = %d", nic.RxBytes)
	}
}

func TestOnTransmitMeter(t *testing.T) {
	n, h1, s1, h2 := buildLine(t, Rate1G, 0)
	var metered int
	s1.Port(1).OnTransmit = func(p *Packet, now simtime.Time) { metered += p.Size }
	h1.Send(&Packet{ID: 1, Size: 1000, Flow: FlowKey{Src: h1.IP(), Dst: h2.IP()}})
	n.Run()
	if metered != 1000 {
		t.Fatalf("metered %d", metered)
	}
}

func TestRoutingLoopGuard(t *testing.T) {
	n := New()
	h1 := n.NewHost("h1", IP(10, 0, 0, 1))
	a := n.NewSwitch("a", 0)
	b := n.NewSwitch("b", 0)
	n.Connect(h1, a, LinkConfig{RateBps: Rate10G})
	n.Connect(a, b, LinkConfig{RateBps: Rate10G})
	// Deliberate loop: a→b and b→a for the same destination.
	dst := IP(10, 0, 0, 99)
	a.SetRoute(dst, 1)
	b.SetRoute(dst, 0)
	h1.Send(&Packet{ID: 1, Size: 100, Flow: FlowKey{Src: h1.IP(), Dst: dst}})
	n.Run()
	if a.TTLDrops+b.TTLDrops != 1 {
		t.Fatalf("loop guard did not fire: a=%d b=%d", a.TTLDrops, b.TTLDrops)
	}
}

func TestDuplicateHostIPPanics(t *testing.T) {
	n := New()
	n.NewHost("a", IP(1, 1, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate IP should panic")
		}
	}()
	n.NewHost("b", IP(1, 1, 1, 1))
}

func TestLookups(t *testing.T) {
	n := New()
	h := n.NewHost("h", IP(1, 2, 3, 4))
	s := n.NewSwitch("s", 5*simtime.Millisecond)
	if nd, ok := n.NodeByID(h.NodeID()); !ok || nd.NodeName() != "h" {
		t.Fatalf("NodeByID host failed")
	}
	if nd, ok := n.NodeByID(s.NodeID()); !ok || nd.NodeName() != "s" {
		t.Fatalf("NodeByID switch failed")
	}
	if _, ok := n.NodeByID(999); ok {
		t.Fatalf("bogus ID found")
	}
	if got, ok := n.HostByIP(IP(1, 2, 3, 4)); !ok || got != h {
		t.Fatalf("HostByIP failed")
	}
	if s.LocalEpoch(7*simtime.Millisecond, 10*simtime.Millisecond) != 1 {
		t.Fatalf("LocalEpoch with +5ms offset at t=7ms should be epoch 1")
	}
}

func TestSerializationTime(t *testing.T) {
	if got := serializationTime(1500, Rate1G); got != 12*simtime.Microsecond {
		t.Fatalf("1500B@1G = %v, want 12µs", got)
	}
	if got := serializationTime(64, Rate10G); got != simtime.Time(51*simtime.Nanosecond)+simtime.Time(200*0) {
		// 64*8/10e9 s = 51.2ns, truncated to 51ns
		if got != 51*simtime.Nanosecond {
			t.Fatalf("64B@10G = %v, want 51ns", got)
		}
	}
}
