package metrics

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFixed populates a registry with one family of every kind, with
// label tuples inserted in the given order — the golden fixture.
func buildFixed(order []string) *Registry {
	r := NewRegistry()
	c := r.Counter("sp_requests_total", "Requests served.", "role", "code")
	g := r.Gauge("sp_resident_records", "Records resident in the store.", "host")
	h := r.Histogram("sp_wait_seconds", "Queue wait.", []float64{0.01, 0.1, 1}, "class")
	r.GaugeFunc("sp_collected", "Scrape-time samples.", []string{"shard"}, func(emit Emit) {
		// Deliberately emitted in reverse order: rendering must sort.
		emit(3, "b")
		emit(2, "a")
	})
	r.Counter("sp_empty_total", "A family with no samples yet.")
	for _, who := range order {
		switch who {
		case "host-a":
			c.With("host", "200").Add(12)
			g.With("10.0.0.1").Set(41)
		case "host-b":
			c.With("host", "500").Inc()
			g.With("10.0.0.2").Set(7)
		case "analyzer":
			c.With("analyzer", "200").Add(3)
			h.With("urgent").Observe(0.004)
			h.With("urgent").Observe(0.25)
			h.With("alert").Observe(2)
		}
	}
	return r
}

func TestGoldenRendering(t *testing.T) {
	got := buildFixed([]string{"host-a", "host-b", "analyzer"}).Render()
	golden := filepath.Join("testdata", "golden.prom")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rendering diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func TestRenderingDeterministic(t *testing.T) {
	// Repeated scrapes of unchanged state are byte-identical.
	r := buildFixed([]string{"host-a", "host-b", "analyzer"})
	first := r.Render()
	for i := 0; i < 10; i++ {
		if got := r.Render(); !bytes.Equal(got, first) {
			t.Fatalf("scrape %d differs from first scrape", i)
		}
	}
	// Insert order (and therefore child-map layout) must not matter.
	other := buildFixed([]string{"analyzer", "host-b", "host-a"}).Render()
	if !bytes.Equal(other, first) {
		t.Errorf("insert order changed rendering:\n--- reordered ---\n%s\n--- original ---\n%s", other, first)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("sp_esc", `has \ and
newline`, "path").With(`a"b\c` + "\nd").Set(1)
	out := string(r.Render())
	if !strings.Contains(out, `# HELP sp_esc has \\ and\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `sp_esc{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	fams, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	var got string
	for _, f := range fams {
		for _, s := range f.Samples {
			for _, kv := range s.Labels {
				if kv[0] == "path" {
					got = kv[1]
				}
			}
		}
	}
	if want := `a"b\c` + "\nd"; got != want {
		t.Errorf("round-trip label value = %q, want %q", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sp_h", "h", []float64{1, 2, 5}).With()
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	out := string(r.Render())
	for _, want := range []string{
		`sp_h_bucket{le="1"} 2`, // 0.5 and 1 (le inclusive)
		`sp_h_bucket{le="2"} 4`,
		`sp_h_bucket{le="5"} 5`,
		`sp_h_bucket{le="+Inf"} 6`,
		`sp_h_sum 18`,
		`sp_h_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sp_c_total", "c").With()
	c.Add(2.5)
	c.Inc()
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative counter Add did not panic")
			}
		}()
		c.Add(-1)
	}()
	g := r.Gauge("sp_g", "g").With()
	g.Set(10)
	g.Dec()
	g.Add(-2.5)
	if got := g.Value(); got != 6.5 {
		t.Errorf("gauge = %v, want 6.5", got)
	}
	// Idempotent re-registration returns the same cells.
	if got := r.Counter("sp_c_total", "c").With().Value(); got != 3.5 {
		t.Errorf("re-registered counter = %v, want 3.5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind-conflicting re-registration did not panic")
			}
		}()
		r.Gauge("sp_c_total", "c")
	}()
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("sp_x_total", "x").With().Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sp_x_total 1") {
		t.Errorf("body missing sample:\n%s", buf.String())
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"sp_x{le=unquoted} 1",
		"sp_x 1.2.3",
		`sp_x{a="b} 1`,
		"0bad_name 1",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", bad)
		}
	}
	fams, err := ParseText(strings.NewReader("# HELP sp_h help text\n# TYPE sp_h histogram\nsp_h_bucket{le=\"+Inf\"} 3\nsp_h_sum 4.5\nsp_h_count 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Name != "sp_h" || len(fams[0].Samples) != 3 {
		t.Errorf("histogram series did not attach to base family: %+v", fams)
	}
	if fams[0].Samples[0].Value != 3 || fams[0].Samples[0].Name != "sp_h_bucket" {
		t.Errorf("bucket sample = %+v", fams[0].Samples[0])
	}
}

func TestValueFormatting(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sp_v", "v", "k")
	g.With("inf").Set(math.Inf(1))
	g.With("int").Set(1500000)
	g.With("frac").Set(0.001)
	out := string(r.Render())
	for _, want := range []string{
		`sp_v{k="frac"} 0.001`,
		`sp_v{k="inf"} +Inf`,
		`sp_v{k="int"} 1.5e+06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
