package metrics

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry at GET /metrics in the text exposition
// format. Every render is deterministic: families sorted by name, samples
// by label tuple.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.Write(r.Render()) //nolint:errcheck
	})
}

// Render returns the full text exposition of the registry.
func (r *Registry) Render() []byte {
	var buf bytes.Buffer
	r.WriteText(&buf)
	return buf.Bytes()
}

// WriteText renders every family into buf, families sorted by name. A
// family with no samples yet still renders its # HELP/# TYPE header, so
// scrapers (and the verify smoke) see the full schema from the first
// scrape.
func (r *Registry) WriteText(buf *bytes.Buffer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		fams[name].writeText(buf)
	}
}

// sample is one rendered line's worth of data.
type sample struct {
	labelValues []string
	value       float64
	hist        *histSnapshot
}

type histSnapshot struct {
	counts []uint64 // per-bucket, last = +Inf
	sum    float64
	count  uint64
}

func (f *family) writeText(buf *bytes.Buffer) {
	if f.help != "" {
		buf.WriteString("# HELP ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(escapeHelp(f.help))
		buf.WriteByte('\n')
	}
	buf.WriteString("# TYPE ")
	buf.WriteString(f.name)
	buf.WriteByte(' ')
	buf.WriteString(f.kind.String())
	buf.WriteByte('\n')

	var samples []sample
	if f.collect != nil {
		// Scrape-time family: the callback runs without any registry lock
		// held, so it may freely take the instrumented layer's own locks.
		f.collect(func(v float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("metrics: %q collect emitted %d label values, want %d", f.name, len(labelValues), len(f.labels)))
			}
			samples = append(samples, sample{labelValues: append([]string(nil), labelValues...), value: v})
		})
	} else {
		f.mu.Lock()
		children := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			children = append(children, c)
		}
		f.mu.Unlock()
		for _, c := range children {
			s := sample{labelValues: c.labelValues}
			if f.kind == KindHistogram {
				hs := &histSnapshot{counts: make([]uint64, len(c.counts))}
				for i := range c.counts {
					hs.counts[i] = c.counts[i].Load()
				}
				hs.sum = math.Float64frombits(c.sumBits.Load())
				hs.count = c.count.Load()
				s.hist = hs
			} else {
				s.value = math.Float64frombits(c.bits.Load())
			}
			samples = append(samples, s)
		}
	}
	// Deterministic sample order regardless of child-map iteration or
	// collect-callback emission order.
	sort.Slice(samples, func(i, j int) bool {
		return lessStrings(samples[i].labelValues, samples[j].labelValues)
	})
	for _, s := range samples {
		if f.kind == KindHistogram && s.hist != nil {
			f.writeHistogram(buf, s)
			continue
		}
		buf.WriteString(f.name)
		writeLabels(buf, f.labels, s.labelValues, "", "")
		buf.WriteByte(' ')
		buf.WriteString(formatValue(s.value))
		buf.WriteByte('\n')
	}
}

func (f *family) writeHistogram(buf *bytes.Buffer, s sample) {
	cum := uint64(0)
	for i, bound := range f.buckets {
		cum += s.hist.counts[i]
		buf.WriteString(f.name)
		buf.WriteString("_bucket")
		writeLabels(buf, f.labels, s.labelValues, "le", formatValue(bound))
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatUint(cum, 10))
		buf.WriteByte('\n')
	}
	cum += s.hist.counts[len(f.buckets)]
	buf.WriteString(f.name)
	buf.WriteString("_bucket")
	writeLabels(buf, f.labels, s.labelValues, "le", "+Inf")
	buf.WriteByte(' ')
	buf.WriteString(strconv.FormatUint(cum, 10))
	buf.WriteByte('\n')

	buf.WriteString(f.name)
	buf.WriteString("_sum")
	writeLabels(buf, f.labels, s.labelValues, "", "")
	buf.WriteByte(' ')
	buf.WriteString(formatValue(s.hist.sum))
	buf.WriteByte('\n')

	buf.WriteString(f.name)
	buf.WriteString("_count")
	writeLabels(buf, f.labels, s.labelValues, "", "")
	buf.WriteByte(' ')
	buf.WriteString(strconv.FormatUint(s.hist.count, 10))
	buf.WriteByte('\n')
}

// writeLabels renders {a="b",...} (nothing when there are no labels), with
// an optional extra label appended (the histogram le).
func writeLabels(buf *bytes.Buffer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	buf.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(n)
		buf.WriteString(`="`)
		buf.WriteString(escapeLabelValue(values[i]))
		buf.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(extraName)
		buf.WriteString(`="`)
		buf.WriteString(escapeLabelValue(extraValue))
		buf.WriteByte('"')
	}
	buf.WriteByte('}')
}

// formatValue renders a float the way the Prometheus text format expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper       = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string       { return helpEscaper.Replace(s) }
func escapeLabelValue(s string) string { return labelValueEscaper.Replace(s) }

func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Family is one parsed metric family — what ParseText returns and spctl
// pretty-prints.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParsedSample is one parsed sample line.
type ParsedSample struct {
	// Name is the sample's full name (may carry a _bucket/_sum/_count
	// suffix for histogram series).
	Name string
	// Labels holds the label pairs in rendered order.
	Labels [][2]string
	// Value is the sample value.
	Value float64
}

// ParseText parses a Prometheus text-format exposition into families, in
// encounter order. Histogram series (_bucket/_sum/_count) attach to their
// base family. It is the promlint-style format check behind `spctl
// -metrics` and the verify smoke: malformed lines are errors, not skips.
func ParseText(r io.Reader) ([]Family, error) {
	var (
		out   []Family
		index = make(map[string]int)
	)
	famFor := func(name string) *Family {
		if i, ok := index[name]; ok {
			return &out[i]
		}
		index[name] = len(out)
		out = append(out, Family{Name: name})
		return &out[len(out)-1]
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := famFor(fields[2])
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				if fields[1] == "HELP" {
					f.Help = rest
				} else {
					f.Type = rest
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		base := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base {
				if _, ok := index[trimmed]; ok {
					base = trimmed
				}
				break
			}
		}
		f := famFor(base)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses `name{a="b",...} value` (labels optional).
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	rest := line
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may trail the value; take the first field as the value.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a {a="b",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string) (int, [][2]string, error) {
	var labels [][2]string
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[i : i+eq])
		if !validLabelName(name) && name != "le" {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in %q", s[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, [2]string{name, val.String()})
	}
}
