// Package metrics is SwitchPointer's self-observability plane: a
// stdlib-only metrics registry — counters, gauges, and fixed-bucket
// histograms, all with labels — rendered in the Prometheus text exposition
// format (version 0.0.4) at GET /metrics on every spd daemon role.
//
// Two registration styles cover the two instrumentation shapes in the tree:
//
//   - Vec instruments (Counter/Gauge/Histogram) are push-style: the
//     admission controller observes a queue wait the moment it ends. Their
//     values live in the registry as lock-free atomics.
//   - Func families (CounterFunc/GaugeFunc) are scrape-style: a callback
//     emits one sample per label tuple at render time, reading whatever
//     synchronized accessor the instrumented layer already has (store
//     lengths, pointer footprints, readiness counters). The deep
//     deterministic packages therefore never import this one.
//
// Rendering is deterministic by construction — families sort by name,
// samples by label tuple — so repeated scrapes of unchanged state are
// byte-identical regardless of map iteration order (the property the
// golden-file tests and the sortlint contract both pin down).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type as declared on the wire (# TYPE line).
type Kind int

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Emit delivers one sample from a Func family's collect callback. The label
// values must match the family's label names positionally.
type Emit func(value float64, labelValues ...string)

// Registry holds metric families and renders them. All methods are safe for
// concurrent use. Registries are per-daemon instances — there is no global
// default, so tests and loopback clusters never share counters.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric family: a name, help, kind, label schema, and either
// stored children (vec instruments) or a scrape-time collect callback.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, no +Inf

	mu       sync.Mutex
	children map[string]*child
	collect  func(Emit) // nil for vec families
}

// child is one label tuple's value cell. Counter/gauge values live in bits
// (float64 bit patterns, CAS-updated); histograms use counts/sumBits/count.
type child struct {
	labelValues []string
	bits        atomic.Uint64

	counts  []atomic.Uint64 // per-bucket (non-cumulative), last = +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// register installs (or idempotently returns) a family. Registering the
// same name with a different kind or label schema panics: that is a
// programming error no daemon should boot past.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string, collect func(Emit)) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || f.collect != nil || collect != nil {
			panic(fmt.Sprintf("metrics: %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
		collect:  collect,
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, nil, labelNames, nil)}
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, nil, labelNames, nil)}
}

// Histogram registers (or returns) a fixed-bucket histogram family. Buckets
// are upper bounds; they must be strictly increasing. A trailing +Inf is
// implicit (and stripped if supplied).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1]
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one finite bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing", name))
		}
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, append([]float64(nil), buckets...), labelNames, nil)}
}

// CounterFunc registers a scrape-time counter family: collect is called at
// every render and emits one sample per label tuple. The emitted values
// must be monotonically non-decreasing across scrapes (they typically read
// a layer's own accumulated counter).
func (r *Registry) CounterFunc(name, help string, labelNames []string, collect func(Emit)) {
	r.register(name, help, KindCounter, nil, labelNames, collect)
}

// GaugeFunc registers a scrape-time gauge family.
func (r *Registry) GaugeFunc(name, help string, labelNames []string, collect func(Emit)) {
	r.register(name, help, KindGauge, nil, labelNames, collect)
}

// Uptime registers a label-less gauge reporting seconds since registration
// — the one deliberately wall-clock metric a daemon exports. It is never
// part of a drift-gated rendering (tests and benches build registries
// without it).
func (r *Registry) Uptime(name, help string) {
	//splint:wallclock process uptime is real elapsed time by definition, never a frozen virtual-time metric
	start := time.Now()
	r.GaugeFunc(name, help, nil, func(emit Emit) {
		//splint:wallclock process uptime is real elapsed time by definition, never a frozen virtual-time metric
		emit(time.Since(start).Seconds())
	})
}

// childFor returns the value cell for one label tuple, creating it on first
// use.
func (f *family) childFor(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q expects %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			c.counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
		f.children[key] = c
	}
	return c
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label tuple.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{ch: v.f.childFor(labelValues)}
}

// Counter is a monotonically increasing value.
type Counter struct{ ch *child }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (panics if negative: counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter decrease")
	}
	addFloat(&c.ch.bits, v)
}

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.ch.bits.Load()) }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label tuple.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{ch: v.f.childFor(labelValues)}
}

// Gauge is a value that can go up and down.
type Gauge struct{ ch *child }

// Set stores v.
func (g *Gauge) Set(v float64) { g.ch.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.ch.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.ch.bits.Load()) }

// HistogramVec is a labelled fixed-bucket histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label tuple.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{ch: v.f.childFor(labelValues), bounds: v.f.buckets}
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	ch     *child
	bounds []float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le is inclusive)
	h.ch.counts[i].Add(1)
	addFloat(&h.ch.sumBits, v)
	h.ch.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.ch.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.ch.sumBits.Load()) }

// addFloat CAS-adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if len(s) == 0 || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
