package lint

import (
	"go/ast"
	"go/types"
)

// Ctxlint enforces the cancellation contract on the service-plane
// packages (rpc, cluster, analyzer, statesync): an exported function that
// performs I/O must take context.Context as its first parameter, and must
// not sever the chain by passing context.Background()/context.TODO() to a
// ctx-aware downstream call. Analyzer.Run's partial-cost contract — a
// cancelled diagnosis returns the cost actually incurred — only holds if
// every remote round between Run and the socket threads the same ctx.
//
// "Performs I/O" is judged on the function's direct body (function
// literals it builds, e.g. HTTP handler closures, are deferred behaviour
// and judged by their own enclosing rules): a call into net/http's
// request paths, a method on a type named HTTPClient, or any ctx-aware
// call (first parameter context.Context). Handlers are exempt through
// their *http.Request parameter — r.Context() is the request's context.
var Ctxlint = &Analyzer{
	Name:      "ctxlint",
	Doc:       "exported I/O functions in rpc/cluster/analyzer/statesync must take context.Context first and pass it downstream",
	Directive: "noctx",
	Run:       runCtxlint,
}

// ctxPkgs are the packages under the context contract.
var ctxPkgs = map[string]bool{
	"rpc":       true,
	"cluster":   true,
	"analyzer":  true,
	"statesync": true,
}

func runCtxlint(pass *Pass) error {
	if !pkgPathHasSegment(pass.Pkg.Path(), ctxPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
	return nil
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)

	hasCtxParam := firstParamIsContext(sig)
	hasRequestParam := false
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			if named, ok := p.Elem().(*types.Named); ok {
				o := named.Obj()
				if o.Name() == "Request" && o.Pkg() != nil && o.Pkg().Path() == "net/http" {
					hasRequestParam = true
				}
			}
		}
	}

	// Scan the direct body only: function literals are deferred work.
	var ioCalls []*ast.CallExpr
	var severed []*ast.CallExpr // ctx-aware calls fed Background()/TODO()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		csig, _ := callee.Type().(*types.Signature)
		ctxAware := firstParamIsContext(csig)
		if ctxAware || isHTTPIOCall(callee) {
			ioCalls = append(ioCalls, call)
		}
		if ctxAware && len(call.Args) > 0 && isBackgroundOrTODO(pass.Info, call.Args[0]) {
			severed = append(severed, call)
		}
		return true
	})
	if len(ioCalls) == 0 {
		return
	}

	recv := ""
	if r := recvTypeName(fn); r != "" {
		recv = r + "."
	}
	if !hasCtxParam && !hasRequestParam {
		// The signature is the root cause; severed downstream calls
		// inside are a symptom of the same finding, not reported twice.
		pass.Reportf(fd.Name.Pos(), "exported %s%s performs I/O but does not take context.Context as its first parameter; thread ctx through (or annotate //splint:noctx <reason>)", recv, fn.Name())
		return
	}
	for _, call := range severed {
		pass.Reportf(call.Pos(), "call severs the caller's context with context.Background/TODO; pass the function's ctx so cancellation and partial-cost accounting propagate (or annotate //splint:noctx <reason>)")
	}
}

// isHTTPIOCall reports whether fn is a net/http request-path call or an
// HTTPClient method — I/O even without a ctx parameter.
func isHTTPIOCall(fn *types.Func) bool {
	if recvTypeName(fn) == "HTTPClient" {
		// Cleanup methods tear state down without a network round.
		return fn.Name() != "Close" && fn.Name() != "CloseIdleConnections"
	}
	if funcPkgPath(fn) != "net/http" {
		return false
	}
	switch recvTypeName(fn) {
	case "":
		switch fn.Name() {
		case "Get", "Post", "PostForm", "Head":
			return true
		}
	case "Client":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return true
		}
	case "Transport":
		return fn.Name() == "RoundTrip"
	}
	return false
}

// isBackgroundOrTODO reports whether e is context.Background() or
// context.TODO().
func isBackgroundOrTODO(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}
