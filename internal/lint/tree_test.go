package lint_test

import (
	"strings"
	"testing"

	"switchpointer/internal/lint"
)

// TestSplintTreeClean is the shipped-tree gate: the full suite over every
// package in the module must produce zero diagnostics. Every wall-clock
// read, unsorted map iteration, locked network call, and ctx-less I/O
// function in the tree is either fixed or carries a justified
// //splint:<verb> directive; a regression in either direction (new
// violation, or an annotation going stale) fails this test — and with it
// make verify.
func TestSplintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Errorf("splint found %d diagnostic(s) on the shipped tree:\n%s", len(diags), b.String())
	}
}
