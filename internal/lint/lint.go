// Package lint is splint's analysis framework: a self-contained,
// stdlib-only analogue of golang.org/x/tools/go/analysis (which this
// offline build cannot vendor). It defines the Analyzer/Pass/Diagnostic
// vocabulary, the //splint:<verb> suppression directive, and the runner
// that applies a suite of analyzers to type-checked packages.
//
// The four shipped analyzers encode invariants the codebase's correctness
// claims already rest on (see README "Invariants & static analysis"):
//
//   - detlint  — no wall clock / unseeded math/rand in deterministic code
//   - sortlint — no map-iteration order leaking into reports or the wire
//   - locklint — no network calls while a mutex is held
//   - ctxlint  — exported I/O functions thread context.Context
//
// A diagnostic is suppressed by a directive comment of the form
//
//	//splint:<verb> <reason>
//
// placed on the flagged line or the line directly above it, where <verb>
// is the analyzer's directive verb (e.g. wallclock for detlint). The
// reason is mandatory: a bare directive is itself reported, so every
// exemption in the tree carries its one-line justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "detlint").
	Name string
	// Doc is a short description shown by cmd/splint.
	Doc string
	// Directive is the suppression verb: "//splint:<Directive> <reason>"
	// on the flagged line (or the line above) suppresses this analyzer's
	// diagnostic there.
	Directive string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// directiveRE matches a splint suppression comment. The verb is captured;
// everything after the first space is the justification.
var directiveRE = regexp.MustCompile(`^//splint:([a-z]+)(.*)$`)

// directive is one parsed //splint:<verb> comment.
type directive struct {
	verb   string
	reason string
	pos    token.Position
}

// collectDirectives extracts every splint directive in the files, keyed by
// (filename, line). A directive suppresses diagnostics on its own line and
// on the line below it (the usual "annotation above the statement" shape).
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]directive {
	out := make(map[string]map[int]directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]directive)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = directive{
					verb:   m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    pos,
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics in file/line order: analyzer findings minus
// directive-suppressed ones, plus a diagnostic for each malformed
// directive (unknown verb or missing reason) so stale or lazy annotations
// cannot accumulate silently.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// runVerbs are the directives whose analyzers actually execute this
	// run; only those can be judged stale. knownVerbs spans the full
	// suite so a partial run (splint -only detlint) never misreads
	// another analyzer's directive as unknown.
	runVerbs := make(map[string]bool)
	for _, a := range analyzers {
		runVerbs[a.Directive] = true
	}
	knownVerbs := make(map[string]bool)
	for _, a := range All() {
		knownVerbs[a.Directive] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg.Fset, pkg.Files)
		used := make(map[string]map[int]bool)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diags {
				if dir, line, ok := suppressing(dirs, d, a.Directive); ok {
					u := used[d.Pos.Filename]
					if u == nil {
						u = make(map[int]bool)
						used[d.Pos.Filename] = u
					}
					u[line] = true
					if dir.reason == "" {
						// Reported at the flagged line (not the directive)
						// so the finding stays attached to the code it
						// excuses; the directive did fire, so it is not
						// additionally stale.
						out = append(out, Diagnostic{
							Analyzer: a.Name,
							Pos:      d.Pos,
							Message:  fmt.Sprintf("//splint:%s directive requires a one-line reason", a.Directive),
						})
					}
					continue
				}
				out = append(out, d)
			}
		}
		// Directives that suppressed nothing are stale (or misspelled):
		// surface them so annotations track the code they excuse.
		for file, byLine := range dirs {
			for line, dir := range byLine {
				if !knownVerbs[dir.verb] {
					out = append(out, Diagnostic{
						Analyzer: "splint",
						Pos:      dir.pos,
						Message:  fmt.Sprintf("unknown splint directive %q", dir.verb),
					})
					continue
				}
				if runVerbs[dir.verb] && !used[file][line] {
					out = append(out, Diagnostic{
						Analyzer: "splint",
						Pos:      dir.pos,
						Message:  fmt.Sprintf("stale //splint:%s directive: nothing on this or the next line triggers it", dir.verb),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressing reports whether a directive with the given verb covers d,
// returning the directive and the line it sits on.
func suppressing(dirs map[string]map[int]directive, d Diagnostic, verb string) (directive, int, bool) {
	byLine := dirs[d.Pos.Filename]
	if byLine == nil {
		return directive{}, 0, false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := byLine[line]; ok && dir.verb == verb {
			return dir, line, true
		}
	}
	return directive{}, 0, false
}

// All returns the full splint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detlint, Sortlint, Locklint, Ctxlint}
}

// ---- shared type helpers used by the analyzers ----

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function, method, or qualified selector), or nil for
// calls through function-typed variables, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f, or "".
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// firstParamIsContext reports whether sig's first parameter is a
// context.Context — the marker splint uses for "ctx-aware, may block".
func firstParamIsContext(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// recvTypeName returns the bare type name of a method's receiver
// (dereferencing one pointer), or "" for non-methods.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pkgPathHasSegment reports whether any "/"-separated segment of path
// equals one of names — how analyzers scope themselves to package
// families (internal/netsim, cmd/spd, fixture dirs) without hardcoding
// the module prefix.
func pkgPathHasSegment(path string, names map[string]bool) bool {
	for _, seg := range strings.Split(path, "/") {
		if names[seg] {
			return true
		}
	}
	return false
}
