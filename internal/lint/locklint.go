package lint

import (
	"go/ast"
	"go/types"
)

// Locklint flags network-blocking calls made while a sync.Mutex/RWMutex
// is held. The store's shard locks and the switch agent's control-plane
// mutex serialize hot-path state; an HTTP round trip under one of them
// turns a 250 µs lock hold into a multi-millisecond stall for every
// absorber and querier behind it — or a deadlock when the remote side
// needs the same lock (the class PR 5's snapshot-under-absorption design
// dodged by cloning under the lock and writing to the wire outside it).
//
// "Can block on the network" means, per call site in the locked region:
//
//   - anything in net/http or a net.Dial*/Listen* call,
//   - any method on a type named HTTPClient (the rpc wire client),
//   - any ctx-aware call (first parameter context.Context) into the
//     service-plane packages rpc, cluster, or statesync — by this repo's
//     ctxlint contract, exactly the functions that may touch the network,
//   - any same-package function that transitively does one of the above
//     (computed to a fixpoint over the package's own call graph).
var Locklint = &Analyzer{
	Name:      "locklint",
	Doc:       "flags calls that can block on the network while a sync mutex is held",
	Directive: "netlock",
	Run:       runLocklint,
}

// servicePlanePkgs are packages whose ctx-aware exported functions are
// assumed to reach the network (ctxlint enforces the converse).
var servicePlanePkgs = map[string]bool{
	"rpc":       true,
	"cluster":   true,
	"statesync": true,
}

func runLocklint(pass *Pass) error {
	// Fixpoint: which functions declared in this package block on the
	// network (directly, or via a same-package call)?
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	blocking := make(map[*types.Func]bool)
	directlyBlocking := func(fn *types.Func) bool {
		switch funcPkgPath(fn) {
		case "net/http":
			// Only the entry points that perform network I/O — not
			// constructors, muxes, or header plumbing.
			switch recvTypeName(fn) {
			case "":
				switch fn.Name() {
				case "Get", "Post", "PostForm", "Head", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
					return true
				}
			case "Client":
				switch fn.Name() {
				case "Do", "Get", "Post", "PostForm", "Head":
					return true
				}
			case "Server":
				switch fn.Name() {
				case "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
					return true
				}
			case "Transport":
				return fn.Name() == "RoundTrip"
			}
			return false
		case "net":
			switch fn.Name() {
			case "Dial", "DialTimeout", "DialUDP", "DialTCP", "DialIP", "Listen", "ListenTCP", "ListenUDP", "ListenPacket", "LookupHost", "LookupAddr", "LookupIP":
				return true
			}
		}
		if recvTypeName(fn) == "HTTPClient" {
			// Cleanup methods tear state down without a network round.
			return fn.Name() != "Close" && fn.Name() != "CloseIdleConnections"
		}
		if sig, ok := fn.Type().(*types.Signature); ok && firstParamIsContext(sig) {
			if pkgPathHasSegment(funcPkgPath(fn), servicePlanePkgs) {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if blocking[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if _, isLit := n.(*ast.FuncLit); isLit {
					// A closure's body runs later, not when this
					// function is called — it is its own region.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if callee == nil {
					return true
				}
				if directlyBlocking(callee) || blocking[callee] {
					found = true
				}
				return true
			})
			if found {
				blocking[fn] = true
				changed = true
			}
		}
	}

	describe := func(fn *types.Func) string {
		if r := recvTypeName(fn); r != "" {
			return r + "." + fn.Name()
		}
		return fn.Name()
	}
	check := func(call *ast.CallExpr, heldExpr string) {
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return
		}
		if directlyBlocking(callee) || blocking[callee] {
			pass.Reportf(call.Pos(), "%s can block on the network while %s is locked; move the call outside the critical section (clone under the lock, send outside it) or annotate //splint:netlock <reason>", describe(callee), heldExpr)
		}
	}
	for _, fd := range decls {
		scanLockedRegions(pass, fd.Body, nil, check)
		// Each function literal (HTTP handler closures in particular) is
		// its own locked-region scan with a fresh held set.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				scanLockedRegions(pass, lit.Body, nil, check)
			}
			return true
		})
	}
	return nil
}

// lockOp classifies a statement-level call as a mutex acquire or release.
type lockOp struct {
	recv    string // source text of the receiver expression
	acquire bool
}

func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return lockOp{}, false
	}
	r := recvTypeName(fn)
	if r != "Mutex" && r != "RWMutex" {
		return lockOp{}, false
	}
	op := lockOp{recv: exprText(pass, sel.X)}
	switch fn.Name() {
	case "Lock", "RLock":
		op.acquire = true
	case "Unlock", "RUnlock":
		op.acquire = false
	default: // TryLock etc.: treat as acquire
		op.acquire = true
	}
	return op, true
}

// exprText renders an expression as compact source text for lock
// identity and messages (e.g. "sh.mu", "a.ctrlMu").
func exprText(pass *Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(pass, x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(pass, x.X) + "[...]"
	case *ast.CallExpr:
		return exprText(pass, x.Fun) + "(...)"
	case *ast.UnaryExpr:
		return exprText(pass, x.X)
	case *ast.StarExpr:
		return exprText(pass, x.X)
	default:
		return "lock"
	}
}

// scanLockedRegions walks stmts linearly, tracking which mutexes are held
// (including defer'd unlock meaning "held to the end"), and invokes check
// on every call expression evaluated while at least one lock is held.
// Nested blocks inherit a copy of the held set: a branch's acquisitions
// and releases do not leak into its siblings — conservative, but exactly
// right for the dominant lock();defer unlock() and lock();...;unlock()
// shapes this codebase uses.
func scanLockedRegions(pass *Pass, body *ast.BlockStmt, held map[string]bool, check func(call *ast.CallExpr, heldExpr string)) {
	if held == nil {
		held = make(map[string]bool)
	}
	anyHeld := func() (string, bool) {
		for k := range held {
			return k, true
		}
		return "", false
	}
	// checkExpr flags blocking calls inside e, without descending into
	// function literals (their bodies run later, possibly lock-free).
	checkExpr := func(e ast.Node) {
		name, ok := anyHeld()
		if !ok {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if _, isLock := classifyLockCall(pass, call); !isLock {
					check(call, name)
				}
			}
			return true
		})
	}
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if op, isLock := classifyLockCall(pass, call); isLock {
					if op.acquire {
						held[op.recv] = true
					} else {
						delete(held, op.recv)
					}
					continue
				}
			}
			checkExpr(s.X)
		case *ast.DeferStmt:
			if op, isLock := classifyLockCall(pass, s.Call); isLock {
				if !op.acquire {
					// defer mu.Unlock(): the lock stays held for the
					// remainder of this block — keep it in the set.
					held[op.recv] = true
				}
				continue
			}
			checkExpr(s.Call)
		case *ast.BlockStmt:
			scanLockedRegions(pass, s, cloneHeld(held), check)
		case *ast.IfStmt:
			if s.Init != nil {
				checkExpr(s.Init)
			}
			checkExpr(s.Cond)
			scanLockedRegions(pass, s.Body, cloneHeld(held), check)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				scanLockedRegions(pass, e, cloneHeld(held), check)
			case *ast.IfStmt:
				scanLockedRegions(pass, &ast.BlockStmt{List: []ast.Stmt{e}}, cloneHeld(held), check)
			}
		case *ast.ForStmt:
			scanLockedRegions(pass, s.Body, cloneHeld(held), check)
		case *ast.RangeStmt:
			scanLockedRegions(pass, s.Body, cloneHeld(held), check)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedRegions(pass, &ast.BlockStmt{List: cc.Body}, cloneHeld(held), check)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedRegions(pass, &ast.BlockStmt{List: cc.Body}, cloneHeld(held), check)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanLockedRegions(pass, &ast.BlockStmt{List: cc.Body}, cloneHeld(held), check)
				}
			}
		case *ast.GoStmt:
			// The goroutine runs without this stack's locks.
		default:
			checkExpr(stmt)
		}
	}
}

func cloneHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
