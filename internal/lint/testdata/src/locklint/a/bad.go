// Positive fixture: network calls under a held mutex — directly, through
// a same-package helper (fixpoint), and via a method on the wire-client
// type HTTPClient.
package a

import (
	"net/http"
	"sync"
)

type registry struct {
	mu    sync.Mutex
	peers []string
}

func (r *registry) refreshUnderLock(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = http.Get(url) // want "Get can block on the network while r.mu is locked"
}

func fetch(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func (r *registry) transitiveUnderLock(url string) {
	r.mu.Lock()
	_ = fetch(url) // want "fetch can block on the network while r.mu is locked"
	r.mu.Unlock()
}

type HTTPClient struct{}

func (c *HTTPClient) PullPointers() error { return nil }

func (r *registry) wireClientUnderLock(c *HTTPClient) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = c.PullPointers() // want "HTTPClient.PullPointers can block on the network while r.mu is locked"
}
