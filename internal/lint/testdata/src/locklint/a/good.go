// Negative fixture: the clone-under-the-lock-send-outside-it shape,
// handler constructors whose closures run later, and pure critical
// sections. None of these may be flagged.
package a

import "net/http"

func (r *registry) snapshotThenSend(url string) {
	r.mu.Lock()
	peers := make([]string, len(r.peers))
	copy(peers, r.peers)
	r.mu.Unlock()
	_, _ = http.Get(url) // lock already released: clone-then-send
	_ = peers
}

// newHandler only constructs a closure; the closure body runs later,
// without the caller's locks, so neither the constructor call under a
// lock nor the closure itself is a finding.
func newHandler(url string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		_, _ = http.Get(url)
	}
}

func (r *registry) installHandlerUnderLock(mux *http.ServeMux, url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	mux.Handle("/pull", newHandler(url))
}

func (r *registry) pureUnderLock() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.peers)
}

func (c *HTTPClient) Close() {}

func (r *registry) cleanupUnderLock(c *HTTPClient) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.Close() // teardown, not a network round
}
