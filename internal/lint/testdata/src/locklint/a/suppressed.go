// Directive fixture: a justified //splint:netlock clears the finding.
package a

import "net/http"

func (r *registry) justifiedUnderLock(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//splint:netlock fixture: cold admin path, lock never contended here
	_, _ = http.Get(url)
}
