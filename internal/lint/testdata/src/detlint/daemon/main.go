// Fixture for a package outside the deterministic-simulation set: wall
// clock is still flagged (daemons must justify timeouts and progress
// logs), but with the softer justify-or-annotate message, and a justified
// directive clears it.
package daemon

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is wall clock; justify with //splint:wallclock"
}

func poll() {
	//splint:wallclock daemon readiness polling is real time by design
	time.Sleep(50 * time.Millisecond)
}
