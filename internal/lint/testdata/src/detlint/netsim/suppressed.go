// Directive fixture: a justified //splint:wallclock suppresses the
// diagnostic; a bare one (no reason) and a stale one are themselves
// findings.
package netsim

import "time"

func justified() time.Time {
	//splint:wallclock fixture: legitimately exempt wall-clock read
	return time.Now()
}

func bare() time.Time {
	//splint:wallclock
	return time.Now() // want "directive requires a one-line reason"
}

func stale() time.Duration {
	//splint:wallclock nothing on the next line needs this // want "stale //splint:wallclock directive"
	return 5 * time.Second
}
