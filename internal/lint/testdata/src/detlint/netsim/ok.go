// Negative fixture: everything here is deterministic — explicit seeded
// sources, pure time conversions, duration arithmetic.
package netsim

import (
	"math/rand"
	"time"
)

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, 100)
	return rng.Intn(10) + int(z.Uint64())
}

func pureTime(ns int64) time.Time {
	d := 3 * time.Millisecond
	_ = d.Seconds()
	return time.Unix(0, ns)
}
