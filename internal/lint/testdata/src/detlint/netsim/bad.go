// Positive fixture: wall clock and unseeded math/rand inside a package
// whose path has a deterministic-simulation segment ("netsim").
package netsim

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()             // want "time.Now reads the wall clock inside a deterministic-simulation package"
	time.Sleep(time.Millisecond)    // want "time.Sleep reads the wall clock"
	<-time.After(time.Millisecond)  // want "time.After reads the wall clock"
	t := time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
	t.Stop()
	return time.Since(start) // want "time.Since reads the wall clock"
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the global math/rand source"
	return rand.Intn(10)               // want "rand.Intn draws from the global math/rand source"
}
