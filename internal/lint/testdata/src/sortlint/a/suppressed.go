// Directive fixture: //splint:unsorted with a reason clears the sink
// diagnostic.
package a

func keysOrderFree(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	//splint:unsorted fixture: consumer treats this as a set, order-free
	return out
}
