// Negative fixture: sorted before the sink (directly, via a local sort
// wrapper, or via sort.Slice on a field), sorted-by-construction k-way
// merge, and non-sink destinations. None of these may be flagged.
package a

import "sort"

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysLocalWrapper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(ks []string) {
	sort.Strings(ks)
}

func fieldSorted(m map[string]int, r *FlowReport) {
	for k := range m {
		r.Keys = append(r.Keys, k)
	}
	sort.Strings(r.Keys)
}

// mergeSortedRuns is the k-way-merge shape from internal/store: the output
// is sorted by construction and no map range is involved, so sortlint must
// stay quiet even though the slice is built by repeated append and
// returned.
func mergeSortedRuns(runs [][]int) []int {
	var out []int
	heads := make([]int, len(runs))
	for {
		best := -1
		for i, h := range heads {
			if h >= len(runs[i]) {
				continue
			}
			if best == -1 || runs[i][h] < runs[best][heads[best]] {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

type scratch struct {
	keys []string
}

func nonSinkDestination(m map[string]int, s *scratch) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	s.keys = ks // scratch is not a Report/Wire type: internal, order-free
}

func aggregateOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
