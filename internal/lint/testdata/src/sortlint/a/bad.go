// Positive fixture: map-iteration-ordered slices reaching each sink
// sortlint knows about — return, Report field, Report literal, encoder —
// plus a direct append into a Report field inside the range.
package a

import "encoding/json"

type FlowReport struct {
	Keys  []string
	Total int
}

func keysReturned(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out // want "out was filled from map iteration .* and is returned"
}

func keysToField(m map[string]int, r *FlowReport) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	r.Keys = ks // want "ks was filled from map iteration .* stored into FlowReport.Keys"
}

func keysToLiteral(m map[string]int) FlowReport {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	r := FlowReport{Keys: ks} // want "ks was filled from map iteration .* stored into a FlowReport literal"
	return r
}

func keysEncoded(m map[string]int, enc *json.Encoder) {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	_ = enc.Encode(ks) // want "ks was filled from map iteration .* passed to Encode"
}

func directFieldAppend(m map[string]int, r *FlowReport) {
	for k := range m {
		r.Keys = append(r.Keys, k) // want "FlowReport.Keys is appended to while ranging over a map"
	}
}
