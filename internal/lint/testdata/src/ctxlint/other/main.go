// Out-of-scope fixture: the package path has no rpc/cluster/analyzer/
// statesync segment, so ctxlint must not flag anything here.
package other

import "net/http"

func FetchNoCtx(url string) error {
	_, err := http.Get(url)
	return err
}
