// Positive fixture: exported I/O without a ctx parameter (function and
// method forms), and a ctx-aware function that severs its caller's
// context with context.Background.
package rpc

import (
	"context"
	"net/http"
)

func FetchNoCtx(url string) error { // want "exported FetchNoCtx performs I/O but does not take context.Context as its first parameter"
	_, err := http.Get(url)
	return err
}

type Client struct{}

func (c *Client) PushNoCtx(url string) error { // want "exported Client.PushNoCtx performs I/O but does not take context.Context as its first parameter"
	_, err := http.Post(url, "application/json", nil)
	return err
}

func pull(ctx context.Context, url string) error {
	_ = ctx
	return nil
}

func Sever(ctx context.Context, url string) error {
	return pull(context.Background(), url) // want "severs the caller's context with context.Background/TODO"
}
