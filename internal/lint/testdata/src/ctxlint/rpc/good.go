// Negative fixture: ctx threaded end to end, handlers exempt through
// their *http.Request (r.Context() is the request's context), unexported
// helpers out of scope, and pure exported functions with no I/O.
package rpc

import (
	"context"
	"net/http"
	"strconv"
)

func FetchWithCtx(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func ServePull(w http.ResponseWriter, r *http.Request) {
	_ = pull(r.Context(), "upstream")
}

func fireAndForget(url string) {
	_, _ = http.Get(url)
}

func Addr(host string, port int) string {
	return host + ":" + strconv.Itoa(port)
}
