// Directive fixture: //splint:noctx with a reason clears the signature
// finding — the shape the real tree uses on deprecated PR 1 shims.
package rpc

import "net/http"

//splint:noctx fixture: deprecated shim kept for source compatibility
func LegacyFetch(url string) error {
	_, err := http.Get(url)
	return err
}
