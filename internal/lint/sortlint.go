package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Sortlint flags function-local slices that are populated by ranging over
// a map and then escape — returned, stored into a Report/Wire/Request/
// Response struct, or handed to an encoder — without any sort call in
// between. Map iteration order is deliberately randomized by the runtime,
// so such a slice carries nondeterministic order straight into a Report
// or wire encoding: exactly the bug class the byte-identical-merge drift
// gates exist to catch, after the fact. Sortlint catches it at review
// time.
//
// The analysis is function-local and deliberately conservative in both
// directions: slices appended to outside any map range (e.g. the k-way
// merge in internal/store, which is sorted by construction) are never
// flagged, and a single sort.*/slices.* call naming the slice anywhere in
// the function clears it.
var Sortlint = &Analyzer{
	Name:      "sortlint",
	Doc:       "flags slices filled from map iteration that reach a return, report field, or encoder without being sorted",
	Directive: "unsorted",
	Run:       runSortlint,
}

// sinkTypeNames match struct type names whose fields are report/wire
// surfaces: order stored there is observable output.
func isSinkTypeName(name string) bool {
	for _, frag := range []string{"Report", "Wire", "Request", "Response"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// encoderFuncNames are call names that serialize their arguments.
var encoderFuncNames = map[string]bool{
	"Encode": true, "Marshal": true, "MarshalIndent": true,
}

func runSortlint(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSortFunc(pass, fd)
		}
	}
	return nil
}

func checkSortFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Pass 1: find slices appended to inside a range over a map — local
	// variables (tracked to their sinks in pass 3) and direct appends
	// into a Report/Wire struct field (already at the sink).
	type fieldTaint struct {
		obj  types.Object // the struct field
		pos  token.Pos
		name string // Struct.Field for the message
	}
	tainted := make(map[types.Object]token.Pos) // slice var -> range position
	var fieldTaints []fieldTaint
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asgn, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range asgn.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(asgn.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil {
					continue // shadowed append, not the builtin
				}
				switch lhs := ast.Unparen(asgn.Lhs[i]).(type) {
				case *ast.Ident:
					obj := info.Defs[lhs]
					if obj == nil {
						obj = info.Uses[lhs]
					}
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						if _, seen := tainted[obj]; !seen {
							tainted[obj] = rng.Pos()
						}
					}
				case *ast.SelectorExpr:
					sel, ok := info.Selections[lhs]
					if !ok {
						continue
					}
					tv, ok := info.Types[lhs.X]
					if !ok || tv.Type == nil {
						continue
					}
					t := tv.Type
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					named, ok := t.(*types.Named)
					if !ok || !isSinkTypeName(named.Obj().Name()) {
						continue
					}
					fieldTaints = append(fieldTaints, fieldTaint{
						obj:  sel.Obj(),
						pos:  asgn.Pos(),
						name: named.Obj().Name() + "." + lhs.Sel.Name,
					})
				}
			}
			return true
		})
		return true
	})
	if len(tainted) == 0 && len(fieldTaints) == 0 {
		return
	}

	// Pass 2: objects cleared by a sort call anywhere in the function.
	// Any identifier appearing in the arguments of a sort.*/slices.*
	// call counts (covers sort.Slice(s, ...), sort.Sort(byKey(s)),
	// slices.SortFunc(s, ...)), as do local sort wrappers — any callee
	// whose name mentions "sort" (sortRecords(out), sortFlowKeys(keys)).
	sorted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if p := funcPkgPath(fn); p != "sort" && p != "slices" &&
			!strings.Contains(strings.ToLower(fn.Name()), "sort") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.Ident:
					if obj := info.Uses[e]; obj != nil {
						sorted[obj] = true
					}
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[e]; ok {
						sorted[sel.Obj()] = true
					}
				}
				return true
			})
		}
		return true
	})

	for _, ft := range fieldTaints {
		if sorted[ft.obj] {
			continue
		}
		pass.Reportf(ft.pos, "%s is appended to while ranging over a map (nondeterministic order) and never sorted; sort it or annotate //splint:unsorted <reason>", ft.name)
	}

	// Pass 3: sinks. A tainted, unsorted slice reaching one is reported
	// at the sink (where the directive annotation reads best).
	report := func(pos token.Pos, obj types.Object, how string) {
		if sorted[obj] {
			return
		}
		pass.Reportf(pos, "%s was filled from map iteration (nondeterministic order) and %s without a sort; sort it or annotate //splint:unsorted <reason>", obj.Name(), how)
	}
	taintedIn := func(e ast.Expr) types.Object {
		var found types.Object
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && found == nil {
				if obj := info.Uses[id]; obj != nil {
					if _, ok := tainted[obj]; ok {
						found = obj
					}
				}
			}
			return found == nil
		})
		return found
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if obj := taintedIn(res); obj != nil {
					report(s.Pos(), obj, "is returned")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || i >= len(s.Rhs) {
					continue
				}
				tv, ok := info.Types[sel.X]
				if !ok || tv.Type == nil {
					continue
				}
				t := tv.Type
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				named, ok := t.(*types.Named)
				if !ok || !isSinkTypeName(named.Obj().Name()) {
					continue
				}
				if obj := taintedIn(s.Rhs[i]); obj != nil {
					report(s.Pos(), obj, "is stored into "+named.Obj().Name()+"."+sel.Sel.Name)
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[s]
			if !ok || tv.Type == nil {
				return true
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || !isSinkTypeName(named.Obj().Name()) {
				return true
			}
			for _, elt := range s.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if obj := taintedIn(kv.Value); obj != nil {
					report(kv.Pos(), obj, "is stored into a "+named.Obj().Name()+" literal")
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, s)
			if fn == nil || !encoderFuncNames[fn.Name()] {
				return true
			}
			for _, arg := range s.Args {
				if obj := taintedIn(arg); obj != nil {
					report(s.Pos(), obj, "is passed to "+fn.Name())
				}
			}
		}
		return true
	})
}
