package lint_test

import (
	"testing"

	"switchpointer/internal/lint"
	"switchpointer/internal/lint/linttest"
)

func TestLocklint(t *testing.T) {
	linttest.Run(t, lint.Locklint, "locklint/a")
}
