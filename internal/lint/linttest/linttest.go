// Package linttest is splint's analysistest analogue: it loads a fixture
// package from a testdata tree, runs one analyzer over it (directive
// suppression included), and asserts the produced diagnostics against
// "want" comments in the fixture source.
//
// Expectations use the analysistest comment convention:
//
//	s := f()            // want "regexp"
//	g(s)                // want "first" "second"
//
// Each quoted string is a regexp that must match the message of exactly
// one diagnostic reported on that line; diagnostics without a matching
// want, and wants without a matching diagnostic, fail the test.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"switchpointer/internal/lint"
)

// wantRE pulls the quoted regexps out of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads the fixture package at testdata/src/<pkgRel> (relative to the
// calling test's directory), applies the analyzer, and checks every
// diagnostic against the fixture's want comments. The fixture's package
// path is pkgRel itself, so analyzers that scope by path segment (e.g.
// detlint's deterministic set, ctxlint's service-plane set) see fixture
// trees the way they see the real one.
func Run(t *testing.T, a *lint.Analyzer, pkgRel string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgRel))
	moduleRoot, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.LoadFixture(moduleRoot, dir, pkgRel)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgRel, err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgRel, err)
	}

	wants := collectWants(t, dir)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic: %s:%d expected message matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			wm := wantRE.FindStringSubmatch(line)
			if wm == nil {
				continue
			}
			for _, q := range quotedRE.FindAllStringSubmatch(wm[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", m, i+1, q[1], err)
				}
				wants = append(wants, want{file: filepath.Base(m), line: i + 1, re: re})
			}
		}
	}
	return wants
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod — the anchor for the `go list` calls that locate stdlib export
// data for fixture imports.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}
