package lint_test

import (
	"testing"

	"switchpointer/internal/lint"
	"switchpointer/internal/lint/linttest"
)

func TestCtxlintServicePlane(t *testing.T) {
	linttest.Run(t, lint.Ctxlint, "ctxlint/rpc")
}

func TestCtxlintOutOfScope(t *testing.T) {
	linttest.Run(t, lint.Ctxlint, "ctxlint/other")
}
