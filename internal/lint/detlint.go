package lint

import (
	"go/ast"
)

// Detlint forbids wall-clock time and unseeded math/rand. The repo's
// correctness story is deterministic virtual time: every reported metric
// is drift-gated byte-identical (BENCH_*.json), which only holds if the
// simulation packages never consult the wall clock or a global random
// source. Outside the deterministic core (daemons, bench harnesses) wall
// clock is legitimate but must be justified with a //splint:wallclock
// directive, so each exemption is a reviewed decision, not an accident.
var Detlint = &Analyzer{
	Name:      "detlint",
	Doc:       "forbids wall-clock time and unseeded math/rand; deterministic-simulation packages must use virtual time (simtime) and seeded rand.New sources",
	Directive: "wallclock",
	Run:       runDetlint,
}

// deterministicPkgs are the packages whose behaviour feeds the
// byte-identical drift gates. Matched by path segment so the fixture
// trees under testdata scope the same way the real tree does.
var deterministicPkgs = map[string]bool{
	"netsim":      true,
	"eventq":      true,
	"simtime":     true,
	"analyzer":    true,
	"store":       true,
	"pointer":     true,
	"hostagent":   true,
	"switchagent": true,
	"experiments": true,
	"trace":       true,
}

// wallClockFuncs are the time package entry points that read or wait on
// the wall clock. Constructors like time.Duration arithmetic and
// time.Unix (pure conversion) are fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// seededRandFuncs are the math/rand package-level functions that do NOT
// draw from the global (unseeded) source: constructors for explicit
// sources a caller seeds deterministically.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *Rand the caller already seeded
}

func runDetlint(pass *Pass) error {
	deterministic := pkgPathHasSegment(pass.Pkg.Path(), deterministicPkgs)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			switch funcPkgPath(fn) {
			case "time":
				if wallClockFuncs[fn.Name()] && recvTypeName(fn) == "" {
					if deterministic {
						pass.Reportf(call.Pos(), "time.%s reads the wall clock inside a deterministic-simulation package; use virtual time (simtime/eventq) or annotate //splint:wallclock <reason>", fn.Name())
					} else {
						pass.Reportf(call.Pos(), "time.%s is wall clock; justify with //splint:wallclock <reason> (drift-gated metrics must never depend on it)", fn.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				if recvTypeName(fn) != "" {
					return true // methods on an explicit *rand.Rand are seeded by construction
				}
				if !seededRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source; use rand.New(rand.NewSource(seed)) so runs are reproducible", fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
