package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the JSON stream. -export makes the go tool compile every listed
// package and record its export-data file, which is what lets splint
// type-check targets from source while importing all dependencies
// (stdlib included) from compiled export data — fully offline, no
// golang.org/x/tools required.
func goList(dir string, patterns ...string) ([]listEntry, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %w", patterns, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter returns a types.Importer that reads gc export data from
// the files go list recorded.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("splint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load resolves patterns (e.g. "./...") relative to dir — a directory
// inside a Go module — and returns the matched packages parsed and
// type-checked from source. Test files are not loaded: splint checks the
// shipped tree, and tests legitimately reach for wall clock, fixed seeds,
// and synchronous shortcuts the analyzers would otherwise flag.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(e.ImportPath, e.Dir, e.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadFixture type-checks one analysistest-style fixture package: the .go
// files under dir, importing stdlib only, with the package path forced to
// importPath so analyzers scope-match fixture trees the same way they
// match the real one. moduleDir anchors the `go list` that locates stdlib
// export data.
func LoadFixture(moduleDir, dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("splint: fixture %s: no .go files", dir)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	imported := make(map[string]bool)
	var files []*ast.File
	for _, m := range matches {
		f, err := parser.ParseFile(fset, m, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			imported[importPathOf(imp)] = true
		}
		files = append(files, f)
	}
	var paths []string
	for p := range imported {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports := make(map[string]string)
	if len(paths) > 0 {
		entries, err := goList(moduleDir, paths...)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	return checkFiles(importPath, fset, files, exports)
}

func importPathOf(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	return p[1 : len(p)-1] // strip quotes
}

func checkPackage(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := checkFiles(importPath, fset, files, exports)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func checkFiles(importPath string, fset *token.FileSet, files []*ast.File, exports map[string]string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("splint: type-check %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
