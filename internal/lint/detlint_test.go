package lint_test

import (
	"testing"

	"switchpointer/internal/lint"
	"switchpointer/internal/lint/linttest"
)

func TestDetlintDeterministicPackage(t *testing.T) {
	linttest.Run(t, lint.Detlint, "detlint/netsim")
}

func TestDetlintDaemonPackage(t *testing.T) {
	linttest.Run(t, lint.Detlint, "detlint/daemon")
}
