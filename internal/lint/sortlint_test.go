package lint_test

import (
	"testing"

	"switchpointer/internal/lint"
	"switchpointer/internal/lint/linttest"
)

func TestSortlint(t *testing.T) {
	linttest.Run(t, lint.Sortlint, "sortlint/a")
}
