package mph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func distinctKeys(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint32]bool, n)
	keys := make([]uint32, 0, n)
	for len(keys) < n {
		k := rng.Uint32()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func checkPerfectMinimal(t *testing.T, tbl *Table, keys []uint32) {
	t.Helper()
	if tbl.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(keys))
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		idx := tbl.Lookup(k)
		if idx < 0 || idx >= len(keys) {
			t.Fatalf("Lookup(%d) = %d out of range [0,%d)", k, idx, len(keys))
		}
		if seen[idx] {
			t.Fatalf("collision at index %d", idx)
		}
		seen[idx] = true
	}
	// Perfect + injective into [0,m) of size m ⇒ minimal (bijective).
}

func TestBuildSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 17, 100} {
		keys := distinctKeys(n, int64(n))
		tbl, err := Build(keys)
		if err != nil {
			t.Fatalf("Build(%d keys): %v", n, err)
		}
		checkPerfectMinimal(t, tbl, keys)
	}
}

func TestBuildMedium(t *testing.T) {
	keys := distinctKeys(50000, 7)
	tbl, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfectMinimal(t, tbl, keys)
	if bpk := tbl.BitsPerKey(); bpk > 6 {
		t.Errorf("BitsPerKey = %.2f, want under 6 (paper's FCH: 2.1)", bpk)
	}
}

func TestBuild100K(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	keys := distinctKeys(100000, 99)
	tbl, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfectMinimal(t, tbl, keys)
	// The paper quotes ~70 KB for 100K hosts with FCH; BDZ lands within a
	// small constant factor. Assert we are in the same ballpark (<100 KB).
	if sz := tbl.SizeBytes(); sz > 100*1024 {
		t.Errorf("SizeBytes = %d, want < 100KB", sz)
	}
}

func TestBuildSequentialIPs(t *testing.T) {
	// Datacenter host IPs are typically dense and sequential (10.0.0.0/16
	// style); the hash must not degrade on structured keys.
	keys := make([]uint32, 4096)
	base := uint32(10<<24 | 0<<16 | 0<<8 | 1)
	for i := range keys {
		keys[i] = base + uint32(i)
	}
	tbl, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	checkPerfectMinimal(t, tbl, keys)
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err != ErrTooFewKeys {
		t.Fatalf("empty build err = %v", err)
	}
	if _, err := Build([]uint32{1, 2, 1}); err != ErrDuplicateKeys {
		t.Fatalf("duplicate build err = %v", err)
	}
}

func TestLookupDeterministic(t *testing.T) {
	keys := distinctKeys(1000, 3)
	tbl, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:50] {
		a, b := tbl.Lookup(k), tbl.Lookup(k)
		if a != b {
			t.Fatalf("non-deterministic lookup for %d: %d vs %d", k, a, b)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	keys := distinctKeys(5000, 11)
	tbl, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	data, err := tbl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Table
	if err := r.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if r.Lookup(k) != tbl.Lookup(k) {
			t.Fatalf("deserialized table disagrees for key %d", k)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var r Table
	if err := r.UnmarshalBinary([]byte{1}); err == nil {
		t.Fatalf("truncated header accepted")
	}
	keys := distinctKeys(100, 1)
	tbl, _ := Build(keys)
	data, _ := tbl.MarshalBinary()
	if err := r.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatalf("truncated body accepted")
	}
}

func TestQuickRandomKeySets(t *testing.T) {
	f := func(raw []uint32) bool {
		seen := map[uint32]bool{}
		keys := keysDedup(raw, seen)
		if len(keys) == 0 {
			return true
		}
		tbl, err := Build(keys)
		if err != nil {
			return false
		}
		used := make([]bool, len(keys))
		for _, k := range keys {
			i := tbl.Lookup(k)
			if i < 0 || i >= len(keys) || used[i] {
				return false
			}
			used[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func keysDedup(raw []uint32, seen map[uint32]bool) []uint32 {
	keys := raw[:0:0]
	for _, k := range raw {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestExpectedCollisions(t *testing.T) {
	// Paper's example: m = 100K keys, target 0.1% collisions needs ~50M
	// buckets (500× the key count).
	m := 100000
	got := BucketsForCollisionTarget(m, 0.001*float64(m))
	if got < 40_000_000 || got > 60_000_000 {
		t.Fatalf("BucketsForCollisionTarget(100K, 0.1%%) = %d, want ≈50M", got)
	}
	// Sanity: collisions decrease as buckets grow.
	if ExpectedCollisions(m, 1_000_000) <= ExpectedCollisions(m, 10_000_000) {
		t.Fatalf("ExpectedCollisions not monotone")
	}
	if ExpectedCollisions(0, 10) != 0 || ExpectedCollisions(10, 0) != 0 {
		t.Fatalf("degenerate inputs should be 0")
	}
}

func TestStrawmanVsMPHMemory(t *testing.T) {
	m := 100000
	buckets := BucketsForCollisionTarget(m, 0.001*float64(m))
	straw := StrawmanTableBytes(buckets)
	keys := distinctKeys(m, 5)
	tbl, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if straw < 50*tbl.SizeBytes() {
		t.Fatalf("strawman (%d B) should dwarf MPH (%d B)", straw, tbl.SizeBytes())
	}
}

func BenchmarkLookup(b *testing.B) {
	keys := distinctKeys(100000, 21)
	tbl, err := Build(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tbl.Lookup(keys[i%len(keys)])
	}
	_ = sink
}

func BenchmarkBuild10K(b *testing.B) {
	keys := distinctKeys(10000, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(keys); err != nil {
			b.Fatal(err)
		}
	}
}
