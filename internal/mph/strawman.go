package mph

import "math"

// The paper's §4.1.2 strawman: store pointers in an ordinary hash table. It
// either needs one probe per hierarchy level per packet, or — to get one
// probe total — a table so over-provisioned that collisions become
// negligible. This file quantifies that strawman so the ablation benchmarks
// can reproduce the paper's argument (50M buckets for 100K keys at a 0.1%
// collision target).

// ExpectedCollisions returns the expected number of colliding keys when m
// keys are hashed uniformly into n buckets: m − (n − n·(1−1/n)^m).
func ExpectedCollisions(m, n int) float64 {
	if n <= 0 || m <= 0 {
		return 0
	}
	fn := float64(n)
	fm := float64(m)
	occupied := fn - fn*math.Pow(1-1/fn, fm)
	return fm - occupied
}

// BucketsForCollisionTarget returns the number of hash-table buckets needed
// so that the expected number of collisions among m keys stays at or below
// target (an absolute count, e.g. 0.001·m). It binary-searches the monotone
// ExpectedCollisions curve.
func BucketsForCollisionTarget(m int, target float64) int {
	if m <= 1 {
		return 1
	}
	lo, hi := m, m
	for ExpectedCollisions(m, hi) > target {
		hi *= 2
		if hi > 1<<40 {
			break
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ExpectedCollisions(m, mid) > target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// StrawmanTableBytes returns the memory for a collision-averse hash table
// with one bit per bucket (the most charitable encoding for the strawman).
func StrawmanTableBytes(buckets int) int { return (buckets + 7) / 8 }
