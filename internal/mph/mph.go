// Package mph implements a minimal perfect hash function over 32-bit keys
// (IPv4 end-host addresses), replacing the CMPH/FCH library the paper uses
// (§4.1.2).
//
// The construction is the BDZ/MOS 3-hypergraph algorithm (Botelho, Pagh,
// Ziviani): each key maps to three vertices of a hypergraph with ~1.23·m
// vertices; if the graph is acyclic (peelable), a 2-bit value per vertex
// suffices to pick, for every key, a distinct vertex; a rank structure over
// the chosen vertices then yields indices in [0, m). The result is:
//
//   - exactly one table index per key, no collisions (perfect);
//   - indices form [0, m) with no gaps (minimal);
//   - O(1) lookup — a single seeded mix of the key followed by three
//     modular reductions and one rank probe, independent of the number of
//     levels in the pointer hierarchy (the paper's key requirement);
//   - a few bits of storage per key (BDZ ≈ 3.7 bits/key here; the paper's
//     FCH reaches 2.1 bits/key at much higher construction cost — the
//     constant factor difference is documented in EXPERIMENTS.md).
//
// Construction is randomized: if peeling fails the builder retries with a new
// seed. For load factors around 0.81 (γ = 1.23) failures are rare.
package mph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// Table is an immutable minimal perfect hash table mapping each key from the
// build set to a unique index in [0, Len()). Lookups of keys outside the
// build set return an arbitrary in-range index; callers that need membership
// must verify externally (SwitchPointer does not: the analyzer guarantees the
// key universe equals the current end-host set).
type Table struct {
	seed      uint64
	m         uint32 // number of keys
	partLen   uint32 // vertices per hypergraph part (3 parts)
	g         []byte // 2-bit values per vertex, packed 4 per byte
	chosen    []uint64
	rank      []uint32 // cumulative popcount per rank block of chosen
	buildIter int
}

const (
	gamma          = 1.23 // vertices per key
	maxBuildRetry  = 64
	rankBlockWords = 4 // rank sample every 256 bits
)

// ErrDuplicateKeys is returned by Build when the key set contains duplicates.
var ErrDuplicateKeys = errors.New("mph: duplicate keys in build set")

// ErrTooFewKeys is returned by Build for an empty key set.
var ErrTooFewKeys = errors.New("mph: empty key set")

// Build constructs a minimal perfect hash table for the given distinct keys.
// The input slice is not modified.
func Build(keys []uint32) (*Table, error) {
	return buildSeeded(keys, 0x9E3779B97F4A7C15)
}

func buildSeeded(keys []uint32, seed0 uint64) (*Table, error) {
	m := len(keys)
	if m == 0 {
		return nil, ErrTooFewKeys
	}
	if hasDuplicates(keys) {
		return nil, ErrDuplicateKeys
	}
	partLen := uint32(float64(m)*gamma/3.0) + 1
	if partLen < 2 {
		partLen = 2
	}
	nv := 3 * partLen

	type edge struct{ v [3]uint32 }
	edges := make([]edge, m)
	deg := make([]int32, nv)
	// adjacency: for peeling we keep, per vertex, the XOR of incident edge
	// ids and the degree; removing an edge updates both. When degree hits 1
	// the XOR holds the last incident edge id. This is the standard
	// linear-time peeling trick.
	xorEdge := make([]uint32, nv)

	seed := seed0
	for attempt := 0; attempt < maxBuildRetry; attempt++ {
		for i := range deg {
			deg[i] = 0
			xorEdge[i] = 0
		}
		for i, k := range keys {
			v0, v1, v2 := vertices(k, seed, partLen)
			edges[i] = edge{v: [3]uint32{v0, v1, v2}}
			for _, v := range edges[i].v {
				deg[v]++
				xorEdge[v] ^= uint32(i)
			}
		}

		// Peel: repeatedly remove vertices of degree 1.
		type peeled struct {
			edgeID uint32
			vertex uint32
		}
		order := make([]peeled, 0, m)
		stack := make([]uint32, 0, nv/4)
		for v := uint32(0); v < nv; v++ {
			if deg[v] == 1 {
				stack = append(stack, v)
			}
		}
		removed := make([]bool, m)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if deg[v] != 1 {
				continue
			}
			eid := xorEdge[v]
			if removed[eid] {
				continue
			}
			removed[eid] = true
			order = append(order, peeled{edgeID: eid, vertex: v})
			for _, u := range edges[eid].v {
				deg[u]--
				xorEdge[u] ^= eid
				if deg[u] == 1 {
					stack = append(stack, u)
				}
			}
		}
		if len(order) != m {
			// Cyclic hypergraph; try a different seed.
			seed = mix64(seed + 0x632BE59BD9B4E019)
			continue
		}

		// Assign: process edges in reverse peel order. The recorded vertex
		// of each edge is untouched by all earlier-processed edges, so it
		// can absorb whatever value makes the edge's g-sum select it.
		g := make([]byte, (nv+3)/4)
		visited := make([]bool, nv)
		chosen := make([]uint64, (nv+63)/64)
		for i := m - 1; i >= 0; i-- {
			p := order[i]
			e := edges[p.edgeID]
			var freeIdx int
			sum := 0
			for j, v := range e.v {
				if v == p.vertex && !visited[v] {
					freeIdx = j
					continue
				}
				visited[v] = true
				sum += int(getG(g, v))
			}
			val := byte(((freeIdx-sum)%3 + 3) % 3)
			setG(g, p.vertex, val)
			visited[p.vertex] = true
			chosen[p.vertex/64] |= 1 << (p.vertex % 64)
		}

		t := &Table{
			seed:      seed,
			m:         uint32(m),
			partLen:   partLen,
			g:         g,
			chosen:    chosen,
			buildIter: attempt + 1,
		}
		t.buildRank()
		return t, nil
	}
	return nil, fmt.Errorf("mph: build failed after %d seeds (m=%d)", maxBuildRetry, m)
}

func hasDuplicates(keys []uint32) bool {
	if len(keys) < 2 {
		return false
	}
	sorted := make([]uint32, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return true
		}
	}
	return false
}

func (t *Table) buildRank() {
	nBlocks := (len(t.chosen) + rankBlockWords - 1) / rankBlockWords
	t.rank = make([]uint32, nBlocks)
	var acc uint32
	for b := 0; b < nBlocks; b++ {
		t.rank[b] = acc
		for w := b * rankBlockWords; w < (b+1)*rankBlockWords && w < len(t.chosen); w++ {
			acc += uint32(bits.OnesCount64(t.chosen[w]))
		}
	}
}

func getG(g []byte, v uint32) byte { return (g[v/4] >> ((v % 4) * 2)) & 3 }

func setG(g []byte, v uint32, val byte) {
	shift := (v % 4) * 2
	g[v/4] = g[v/4]&^(3<<shift) | val<<shift
}

// mix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// vertices derives the three hypergraph vertices for a key: one 64-bit mix,
// three chunks, each reduced into its own third of the vertex space. A single
// mix per packet is the "one hash operation" the paper's data plane needs.
func vertices(key uint32, seed uint64, partLen uint32) (uint32, uint32, uint32) {
	h := mix64(uint64(key) ^ seed)
	h2 := mix64(h ^ 0xD6E8FEB86659FD93)
	v0 := uint32(h % uint64(partLen))
	v1 := partLen + uint32((h>>32)%uint64(partLen))
	v2 := 2*partLen + uint32(h2%uint64(partLen))
	return v0, v1, v2
}

// Len returns the number of keys in the table (the size of the index range).
func (t *Table) Len() int { return int(t.m) }

// BuildIterations reports how many seeds were tried before a peelable
// hypergraph was found (1 means first try).
func (t *Table) BuildIterations() int { return t.buildIter }

// Lookup returns the index in [0, Len()) assigned to key. Keys not in the
// build set yield an arbitrary in-range value.
func (t *Table) Lookup(key uint32) int {
	v0, v1, v2 := vertices(key, t.seed, t.partLen)
	j := (getG(t.g, v0) + getG(t.g, v1) + getG(t.g, v2)) % 3
	v := v0
	switch j {
	case 1:
		v = v1
	case 2:
		v = v2
	}
	return t.rankOf(v)
}

// rankOf counts chosen vertices strictly before v; for a chosen vertex this
// is its minimal perfect index.
func (t *Table) rankOf(v uint32) int {
	block := int(v) / (rankBlockWords * 64)
	r := t.rank[block]
	wordEnd := int(v) / 64
	for w := block * rankBlockWords; w < wordEnd; w++ {
		r += uint32(bits.OnesCount64(t.chosen[w]))
	}
	r += uint32(bits.OnesCount64(t.chosen[wordEnd] & ((1 << (v % 64)) - 1)))
	return int(r)
}

// SizeBytes returns the serialized storage footprint of the function itself
// (g array + chosen bitmap + rank samples + header). This is the quantity the
// paper reports as ~70 KB for 100 K hosts and ~700 KB for 1 M hosts.
func (t *Table) SizeBytes() int {
	return 8 + 4 + 4 + len(t.g) + len(t.chosen)*8 + len(t.rank)*4
}

// BitsPerKey reports the storage cost per key of the hash function.
func (t *Table) BitsPerKey() float64 { return float64(t.SizeBytes()*8) / float64(t.m) }

// MarshalBinary serializes the table so the analyzer can distribute it to
// every switch (§4.3: the analyzer constructs the MPH whenever the end-host
// population changes and pushes it to the switches).
func (t *Table) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, t.SizeBytes()+16)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], t.seed)
	binary.LittleEndian.PutUint32(hdr[8:], t.m)
	binary.LittleEndian.PutUint32(hdr[12:], t.partLen)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(t.g)))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(t.chosen)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, t.g...)
	for _, w := range t.chosen {
		var wb [8]byte
		binary.LittleEndian.PutUint64(wb[:], w)
		buf = append(buf, wb[:]...)
	}
	return buf, nil
}

// UnmarshalBinary restores a table serialized with MarshalBinary.
func (t *Table) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("mph: truncated header")
	}
	t.seed = binary.LittleEndian.Uint64(data[0:])
	t.m = binary.LittleEndian.Uint32(data[8:])
	t.partLen = binary.LittleEndian.Uint32(data[12:])
	gLen := int(binary.LittleEndian.Uint32(data[16:]))
	cLen := int(binary.LittleEndian.Uint32(data[20:]))
	need := 24 + gLen + cLen*8
	if len(data) != need {
		return fmt.Errorf("mph: body size %d, want %d", len(data)-24, need-24)
	}
	t.g = make([]byte, gLen)
	copy(t.g, data[24:24+gLen])
	t.chosen = make([]uint64, cLen)
	for i := range t.chosen {
		t.chosen[i] = binary.LittleEndian.Uint64(data[24+gLen+i*8:])
	}
	t.buildIter = 0
	t.buildRank()
	return nil
}
