package statesync

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/store"
)

// IngestBatch is the live-feed wire form: a batch of full wire-form flow
// records (the same JSON schema the query endpoints ship) emitted by the
// simulator or by another daemon. Each record wholesale-replaces the
// receiver's record for its flow under store.Put's recency guard
// (LastSeen, then Pkts): re-sending a record is idempotent, the freshest
// version wins regardless of arrival order, and a stale delivery — a
// snapshot segment racing the feed, a retried batch — can never clobber
// newer state.
type IngestBatch struct {
	Records []*flowrec.Record `json:"records"`
}

// IngestResponse acknowledges one ingest batch.
type IngestResponse struct {
	Accepted int    `json:"accepted"`
	State    string `json:"state"`
}

// IngestHandler serves POST /ingest on a host agent: the live feed a
// bootstrapped daemon switches to after (or while — ingest is safe
// concurrently with bootstrap and with query serving) absorbing a peer
// snapshot. rd, when non-nil, accumulates ingest accounting for /healthz.
func IngestHandler(ag *hostagent.Agent, rd *Readiness) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var batch IngestBatch
		if err := json.Unmarshal(body, &batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, rec := range batch.Records {
			if rec == nil {
				http.Error(w, "statesync: nil record in ingest batch", http.StatusBadRequest)
				return
			}
			ag.Store.Put(rec)
		}
		if rd != nil {
			rd.AddIngest(len(batch.Records))
		}
		state := StateLive.String()
		if rd != nil {
			state = rd.State().String()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(IngestResponse{Accepted: len(batch.Records), State: state}) //nolint:errcheck
	})
}

// Feed posts records to a host ingest endpoint in batches of batchSize
// (≤ 0 selects 256). It returns how many batches were sent. Records are
// shipped as-is; callers keeping the records afterwards should pass clones.
func Feed(ctx context.Context, client *http.Client, ingestURL string, recs []*flowrec.Record, batchSize int) (batches int, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	if batchSize <= 0 {
		batchSize = 256
	}
	for len(recs) > 0 {
		n := batchSize
		if n > len(recs) {
			n = len(recs)
		}
		body, err := json.Marshal(IngestBatch{Records: recs[:n]})
		if err != nil {
			return batches, fmt.Errorf("statesync: feed: %w", err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ingestURL, bytes.NewReader(body))
		if err != nil {
			return batches, fmt.Errorf("statesync: feed: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return batches, fmt.Errorf("statesync: feed %s: %w", ingestURL, err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return batches, fmt.Errorf("statesync: feed %s: status %d", ingestURL, resp.StatusCode)
		}
		batches++
		recs = recs[n:]
	}
	return batches, nil
}

// FeedStore streams a whole store to a peer's ingest endpoint — the
// catch-up feed a source daemon (or the simulator side of a test) uses to
// bring a bootstrapped replica up to date with records absorbed after the
// snapshot was taken. Clones are taken shard by shard under read locks, so
// the source keeps absorbing and serving while it feeds.
func FeedStore(ctx context.Context, client *http.Client, ingestURL string, st *store.RecordStore, batchSize int) (batches int, err error) {
	err = st.SnapshotShards(store.EveryEpoch, func(recs []*flowrec.Record) error {
		n, err := Feed(ctx, client, ingestURL, recs, batchSize)
		batches += n
		return err
	})
	return batches, err
}
