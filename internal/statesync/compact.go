package statesync

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/store"
)

// CompactPolicy decides which segment runs are worth merging.
type CompactPolicy struct {
	// MinRun is the minimum length of a mergeable run (default 4): shorter
	// runs are left alone, so compaction work stays amortized.
	MinRun int
	// MaxSegmentBytes bounds which segments count as "small" (default
	// 1 MiB): a segment already larger than this is a previous compaction's
	// output (or a huge sweep) and terminates any run.
	MaxSegmentBytes int
}

func (p CompactPolicy) withDefaults() CompactPolicy {
	if p.MinRun <= 0 {
		p.MinRun = 4
	}
	if p.MaxSegmentBytes <= 0 {
		p.MaxSegmentBytes = 1 << 20
	}
	return p
}

// CompactStats accounts one Compact call.
type CompactStats struct {
	// Runs is the number of segment runs merged.
	Runs int
	// SegmentsIn/SegmentsOut count segments consumed and produced.
	SegmentsIn, SegmentsOut int
	// RecordsIn/RecordsOut count record versions read and surviving
	// (RecordsIn - RecordsOut were superseded duplicates).
	RecordsIn, RecordsOut int
	// BytesIn/BytesOut count encoded payload bytes consumed and produced.
	BytesIn, BytesOut int
}

// Compactor runs a SegmentLog's compaction under a fixed policy — the
// shape `spd host -compact-*` arms on the daemon's maintenance timer.
type Compactor struct {
	Log    *SegmentLog
	Policy CompactPolicy
	// OnError, when set, receives background sweep failures.
	OnError func(error)
}

// Run performs one compaction pass.
func (c *Compactor) Run(ctx context.Context) (CompactStats, error) {
	st, err := c.Log.Compact(ctx, c.Policy)
	if err != nil && c.OnError != nil {
		c.OnError(err)
	}
	return st, err
}

// compactCrash, when non-nil, is invoked at the compactor's two
// crash-windows — after temp payloads are written but before they are
// renamed ("pre-rename"), and after the renames but before the manifest
// commit ("pre-commit"). A non-nil error aborts the pass right there,
// simulating a kill for the crash-safety tests: either way the committed
// manifest still describes the pre-compaction log, and reopen reconciles
// the debris.
var compactCrash func(stage string) error

// compactRun is one contiguous run of small chain-overlapping segments,
// [lo,hi) in prefix positions, plus its merged replacement.
type compactRun struct {
	lo, hi int
	seg    logSegment
	tmp    string // temp payload path (directory mode)
}

// Compact merges runs of small segments whose epoch ranges chain-overlap
// into one sorted segment each, dropping superseded record versions via
// the same recency guard as store.Put (LastSeen, then Pkts — the later
// segment wins ties, matching Put's equal-recency-replaces rule). New
// payloads are written to temp files and renamed, and the rewritten
// manifest is committed atomically, so a crash anywhere leaves either the
// old log or the new one. Concurrent appends land behind the compacted
// prefix; concurrent readers keep their views. The merged manifests carry
// the current index version, upgrading pre-index segments in passing.
func (l *SegmentLog) Compact(ctx context.Context, p CompactPolicy) (CompactStats, error) {
	p = p.withDefaults()
	l.rewriteMu.Lock()
	defer l.rewriteMu.Unlock()

	l.mu.RLock()
	prefix := l.segs
	l.mu.RUnlock()

	runs := findRuns(prefix, p)
	var st CompactStats
	if len(runs) == 0 {
		return st, nil
	}

	// Heavy phase, outside l.mu: decode each run, merge, encode, write the
	// new payload to a temp file. The prefix is immutable (appends only
	// extend the slice; rewrites are excluded by rewriteMu), so no lock is
	// needed to read it.
	abort := func() {
		for i := range runs {
			if runs[i].tmp != "" {
				_ = os.Remove(runs[i].tmp)
			}
		}
	}
	for ri := range runs {
		r := &runs[ri]
		if err := ctx.Err(); err != nil {
			abort()
			return CompactStats{}, err
		}
		merged := make(map[netsim.FlowKey]*flowrec.Record)
		recsIn, bytesIn := 0, 0
		for si := r.lo; si < r.hi; si++ {
			seg := &prefix[si]
			bytesIn += seg.Manifest.Bytes
			err := l.readSegment(seg, si, func(rec *flowrec.Record) {
				recsIn++
				if prev, ok := merged[rec.Flow]; ok &&
					(prev.LastSeen > rec.LastSeen ||
						(prev.LastSeen == rec.LastSeen && prev.Pkts > rec.Pkts)) {
					return
				}
				merged[rec.Flow] = rec
			})
			if err != nil {
				abort()
				return CompactStats{}, fmt.Errorf("statesync: compact: %w", err)
			}
		}
		recs := make([]*flowrec.Record, 0, len(merged))
		for _, rec := range merged {
			recs = append(recs, rec)
		}
		sort.Slice(recs, func(i, j int) bool { return flowrec.Less(recs[i].Flow, recs[j].Flow) })

		var buf bytes.Buffer
		if err := store.EncodeSegment(&buf, recs); err != nil {
			abort()
			return CompactStats{}, err
		}
		m := store.NewSegmentManifest(recs)
		m.Bytes = buf.Len()
		r.seg = logSegment{Manifest: m}
		if l.dir == "" {
			r.seg.payload = buf.Bytes()
		} else {
			l.mu.Lock()
			id := l.next
			l.next++
			l.mu.Unlock()
			r.seg.file = segFileName(id)
			r.tmp = filepath.Join(l.dir, r.seg.file+".tmp")
			if err := os.WriteFile(r.tmp, buf.Bytes(), 0o644); err != nil {
				abort()
				return CompactStats{}, fmt.Errorf("statesync: compact: %w", err)
			}
		}
		st.Runs++
		st.SegmentsIn += r.hi - r.lo
		st.SegmentsOut++
		st.RecordsIn += recsIn
		st.RecordsOut += len(recs)
		st.BytesIn += bytesIn
		st.BytesOut += m.Bytes
	}

	if compactCrash != nil {
		if err := compactCrash("pre-rename"); err != nil {
			abort()
			return CompactStats{}, err
		}
	}
	// Rename the temp payloads into place. They are not referenced by any
	// manifest yet: a crash from here until the manifest commit leaves them
	// as orphans that reopen removes.
	for ri := range runs {
		r := &runs[ri]
		if r.tmp == "" {
			continue
		}
		if err := os.Rename(r.tmp, filepath.Join(l.dir, r.seg.file)); err != nil {
			abort()
			return CompactStats{}, fmt.Errorf("statesync: compact: %w", err)
		}
		r.tmp = ""
	}
	if compactCrash != nil {
		if err := compactCrash("pre-commit"); err != nil {
			return CompactStats{}, err
		}
	}

	// Commit: splice the merged segments over their runs, keep everything
	// appended concurrently, rewrite the manifest atomically, publish the
	// new slice, and retire the replaced payload files.
	l.mu.Lock()
	cur := l.segs
	newSegs := make([]logSegment, 0, len(cur))
	var retired []string
	ri := 0
	for i := 0; i < len(cur); i++ {
		if ri < len(runs) && i == runs[ri].lo {
			newSegs = append(newSegs, runs[ri].seg)
			for si := runs[ri].lo; si < runs[ri].hi; si++ {
				if cur[si].file != "" {
					retired = append(retired, cur[si].file)
				}
			}
			i = runs[ri].hi - 1
			ri++
			continue
		}
		newSegs = append(newSegs, cur[i])
	}
	if l.dir != "" {
		if err := l.rewriteManifestLocked(newSegs); err != nil {
			// The merged payload files become orphans; reopen reconciles.
			l.mu.Unlock()
			return CompactStats{}, err
		}
	}
	l.segs = newSegs
	l.mu.Unlock()
	l.retire(retired)
	l.compactRuns.Add(1)
	l.compactedIn.Add(uint64(st.SegmentsIn))
	return st, nil
}

// findRuns scans the published prefix for contiguous runs of small,
// non-tiered segments whose epoch ranges chain-overlap (each next segment
// overlaps the union so far), at least p.MinRun long.
func findRuns(prefix []logSegment, p CompactPolicy) []compactRun {
	var runs []compactRun
	i := 0
	for i < len(prefix) {
		if !compactable(&prefix[i], p) {
			i++
			continue
		}
		j := i + 1
		union := prefix[i].Manifest.Epochs
		for j < len(prefix) && compactable(&prefix[j], p) && prefix[j].Manifest.Epochs.Overlaps(union) {
			union = union.Union(prefix[j].Manifest.Epochs)
			j++
		}
		if j-i >= p.MinRun {
			runs = append(runs, compactRun{lo: i, hi: j})
		}
		i = j
	}
	return runs
}

func compactable(s *logSegment, p CompactPolicy) bool {
	return !s.Manifest.Tiered && s.Manifest.Bytes <= p.MaxSegmentBytes
}
