package statesync

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/store"
)

// SegmentLog is the standard indexed flush sink behind store.Retention: it
// implements both halves of the cold-storage seam — store.ColdStore (the
// eviction sweep appends segments with their manifests) and
// store.ColdReader (epoch-windowed queries read evicted telemetry back
// through point-in-time views).
//
// Two modes:
//
//   - In-memory (dir == ""): segments live in process memory. The mode
//     tests and short-lived daemons use.
//   - Directory-backed: each segment persists as seg-NNNNNN.gob next to
//     manifest.jsonl, one JSON line per segment in log order — the tiny
//     index that lets read-back skip irrelevant segments without decoding
//     them, and that survives a daemon restart (reopening the same
//     directory resumes the log). Appends extend the manifest in place
//     (O(1) index I/O per eviction sweep); only compaction and tiering
//     rewrite it, atomically (temp file + rename).
//
// Manifest line format: version 1 lines carry an explicit "file" field
// naming the segment payload, so compaction can retire and merge files
// without renumbering survivors. Pre-index logs (bare SegmentManifest
// lines) still load — their files are addressed positionally, exactly as
// they were written — and are upgraded to the explicit format by the first
// rewrite. File ids are monotonic and never reused.
//
// All methods are safe for concurrent use: eviction sweeps append and the
// compactor rewrites while queries read through views (see View).
type SegmentLog struct {
	// mu guards segs and next. The published segs slice is copy-on-rewrite:
	// appends extend it, rewrites (compaction, tiering) replace it
	// wholesale, and views capture the slice header under RLock — so a
	// view's segments stay valid and consistent regardless of what the log
	// does afterwards.
	mu   sync.RWMutex
	dir  string
	segs []logSegment
	next int // next segment file id (monotonic, never reused)

	// rewriteMu serializes whole-log rewrites (Compact, TierOut) against
	// each other; appends and reads stay concurrent.
	rewriteMu sync.Mutex

	// views counts open views; pending holds files retired by a rewrite
	// that may still be referenced by an open view. Files are deleted only
	// when the view count reaches zero (and at reopen, as orphans).
	views     atomic.Int64
	reclaimMu sync.Mutex
	pending   []string

	viewPool sync.Pool

	// Cold-tier activity counters exported by /metrics: segment appends,
	// payload decodes, compaction passes that merged something, segments
	// consumed by compaction, and segments tiered out. Atomics, so scrapes
	// never contend with sweeps or queries.
	segWrites   atomic.Uint64
	segDecodes  atomic.Uint64
	compactRuns atomic.Uint64
	compactedIn atomic.Uint64
	tieredOut   atomic.Uint64
}

// Counters is a snapshot of a SegmentLog's cumulative activity.
type Counters struct {
	// SegmentWrites counts WriteSegment appends (eviction-sweep flushes).
	SegmentWrites uint64
	// SegmentDecodes counts payload decodes (cold read-back and
	// compaction both pay one per segment read).
	SegmentDecodes uint64
	// CompactRuns counts compaction passes that merged at least one run.
	CompactRuns uint64
	// CompactedSegments counts segments consumed by those merges.
	CompactedSegments uint64
	// TieredSegments counts segments tiered out by age.
	TieredSegments uint64
}

// Counters returns the log's cumulative activity counters.
func (l *SegmentLog) Counters() Counters {
	return Counters{
		SegmentWrites:     l.segWrites.Load(),
		SegmentDecodes:    l.segDecodes.Load(),
		CompactRuns:       l.compactRuns.Load(),
		CompactedSegments: l.compactedIn.Load(),
		TieredSegments:    l.tieredOut.Load(),
	}
}

type logSegment struct {
	Manifest store.SegmentManifest
	file     string // payload file name within dir ("" = in-memory or tiered)
	payload  []byte // in-memory mode only
}

// manifestLine is one persisted manifest.jsonl line: the manifest plus the
// explicit payload file name. Pre-index lines (no "file" key) address their
// payload positionally.
type manifestLine struct {
	store.SegmentManifest
	File string `json:"file,omitempty"`
}

var (
	_ store.ColdStore  = (*SegmentLog)(nil)
	_ store.ColdReader = (*SegmentLog)(nil)
)

// NewSegmentLog opens a segment log. An empty dir selects the in-memory
// mode; otherwise dir is created if needed and an existing manifest.jsonl
// resumes the persisted log. Reopening reconciles the directory against
// the manifest: segment files never referenced by a manifest line (crash
// orphans — a payload written before its manifest line landed, or a
// compaction output whose commit never happened) and leftover temp files
// are removed, so the log always serves exactly the committed view.
func NewSegmentLog(dir string) (*SegmentLog, error) {
	l := &SegmentLog{dir: dir}
	l.viewPool.New = func() any { return new(logView) }
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statesync: segment log: %w", err)
	}
	raw, err := os.ReadFile(l.manifestPath())
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("statesync: segment log: %w", err)
	}
	for i, line := range bytes.Split(raw, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var ln manifestLine
		if err := json.Unmarshal(line, &ln); err != nil {
			return nil, fmt.Errorf("statesync: segment log manifest line %d: %w", i+1, err)
		}
		seg := logSegment{Manifest: ln.SegmentManifest, file: ln.File}
		if !seg.Manifest.Tiered {
			if seg.file == "" {
				// Pre-index manifest line: files were named by position.
				seg.file = segFileName(len(l.segs))
			}
			if _, err := os.Stat(filepath.Join(dir, seg.file)); err != nil {
				return nil, fmt.Errorf("statesync: segment log: manifest names missing segment %d: %w", len(l.segs), err)
			}
		} else {
			seg.file = ""
		}
		if id, ok := segFileID(seg.file); ok && id >= l.next {
			l.next = id + 1
		}
		l.segs = append(l.segs, seg)
	}
	if len(l.segs) > l.next {
		l.next = len(l.segs)
	}
	if err := l.removeOrphans(); err != nil {
		return nil, err
	}
	return l, nil
}

// removeOrphans deletes every seg-*.gob not referenced by the loaded
// manifest, plus any *.tmp leftovers — the crash debris of an interrupted
// WriteSegment or compaction. Without this, a reopened log would leak the
// files forever and a future writer could collide with them.
func (l *SegmentLog) removeOrphans() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("statesync: segment log: %w", err)
	}
	referenced := make(map[string]bool, len(l.segs))
	for _, s := range l.segs {
		if s.file != "" {
			referenced[s.file] = true
		}
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == "manifest.jsonl" || referenced[name] {
			continue
		}
		stray := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".gob"))
		if !stray {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
			return fmt.Errorf("statesync: segment log: remove orphan %s: %w", name, err)
		}
	}
	return nil
}

// Dir returns the backing directory ("" for the in-memory mode).
func (l *SegmentLog) Dir() string { return l.dir }

func (l *SegmentLog) manifestPath() string { return filepath.Join(l.dir, "manifest.jsonl") }

func segFileName(id int) string { return fmt.Sprintf("seg-%06d.gob", id) }

// segFileID parses the id out of a seg-NNNNNN.gob name.
func segFileID(name string) (int, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".gob")
	if s == name || len(s) == 0 {
		return 0, false
	}
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// WriteSegment implements store.ColdStore: it appends one encoded segment
// and persists its manifest. In directory mode the segment file lands
// before its manifest line is appended, so a crash between the two leaves
// a recoverable log (the orphan file is removed at reopen).
func (l *SegmentLog) WriteSegment(m store.SegmentManifest, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	seg := logSegment{Manifest: m}
	if l.dir == "" {
		seg.payload = payload
	} else {
		seg.file = segFileName(l.next)
		if err := os.WriteFile(filepath.Join(l.dir, seg.file), payload, 0o644); err != nil {
			return fmt.Errorf("statesync: write segment %s: %w", seg.file, err)
		}
		if err := l.appendManifestLocked(manifestLine{SegmentManifest: m, File: seg.file}); err != nil {
			return err
		}
		l.next++
	}
	l.segs = append(l.segs, seg)
	l.segWrites.Add(1)
	return nil
}

// appendManifestLocked appends one manifest line — O(1) per eviction sweep
// regardless of log length.
func (l *SegmentLog) appendManifestLocked(ln manifestLine) error {
	raw, err := json.Marshal(ln)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(l.manifestPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("statesync: append manifest: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("statesync: append manifest: %w", err)
	}
	return nil
}

// rewriteManifestLocked atomically replaces manifest.jsonl with one line
// per segment of segs — the commit point of every rewrite (compaction,
// tiering). Written to a temp file and renamed, so a crash at any point
// leaves either the old manifest or the new one, never a torn mix. Caller
// holds l.mu.
func (l *SegmentLog) rewriteManifestLocked(segs []logSegment) error {
	var buf bytes.Buffer
	for _, s := range segs {
		raw, err := json.Marshal(manifestLine{SegmentManifest: s.Manifest, File: s.file})
		if err != nil {
			return err
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	tmp := l.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("statesync: rewrite manifest: %w", err)
	}
	if err := os.Rename(tmp, l.manifestPath()); err != nil {
		return fmt.Errorf("statesync: rewrite manifest: %w", err)
	}
	return nil
}

// View implements store.ColdReader: a stable point-in-time view of the
// log. The view stays consistent — same segments, same indexes — while
// eviction sweeps append, the compactor rewrites, or tiering retires
// segments underneath it. Views are pooled, so the per-query-round acquire
// → walk manifests → release cycle is allocation-free at steady state.
// Every View must be Closed; segment files retired by a rewrite are
// deleted only once no view that could reference them remains open.
func (l *SegmentLog) View() store.ColdView {
	v := l.viewPool.Get().(*logView)
	l.mu.RLock()
	v.l, v.segs = l, l.segs
	l.views.Add(1)
	l.mu.RUnlock()
	return v
}

type logView struct {
	l    *SegmentLog
	segs []logSegment
}

var _ store.ColdView = (*logView)(nil)

// Len returns the number of segments in the view.
func (v *logView) Len() int { return len(v.segs) }

// Manifest returns segment i's manifest. The pointer is read-only and
// valid until Close.
func (v *logView) Manifest(i int) *store.SegmentManifest { return &v.segs[i].Manifest }

// ReadSegment decodes segment i of the view and hands each record to fn.
// The records are fresh decodes owned by the caller. A tiered-out segment
// returns an error wrapping store.ErrTiered.
func (v *logView) ReadSegment(i int, fn func(*flowrec.Record)) error {
	if i < 0 || i >= len(v.segs) {
		return fmt.Errorf("statesync: segment %d out of range", i)
	}
	return v.l.readSegment(&v.segs[i], i, fn)
}

// Close releases the view back to the pool and, when it was the last open
// view, deletes any segment files retired by rewrites in the meantime.
func (v *logView) Close() {
	l := v.l
	v.l, v.segs = nil, nil
	l.viewPool.Put(v)
	if l.views.Add(-1) == 0 {
		l.reclaim()
	}
}

// reclaim deletes retired segment files once no view is open. Any view
// that could reference a pending file was open when the file was retired,
// so a zero view count — checked under reclaimMu, after the retiring
// rewrite published the new segment slice — proves the files unreachable:
// views opened later only see the new slice.
func (l *SegmentLog) reclaim() {
	l.reclaimMu.Lock()
	if l.views.Load() != 0 || len(l.pending) == 0 {
		l.reclaimMu.Unlock()
		return
	}
	pend := l.pending
	l.pending = nil
	l.reclaimMu.Unlock()
	for _, f := range pend {
		// Best-effort: a file that survives here is removed as an orphan at
		// the next reopen.
		_ = os.Remove(filepath.Join(l.dir, f))
	}
}

// retire queues files for deletion and reclaims immediately if possible.
func (l *SegmentLog) retire(files []string) {
	if l.dir == "" || len(files) == 0 {
		return
	}
	l.reclaimMu.Lock()
	l.pending = append(l.pending, files...)
	l.reclaimMu.Unlock()
	l.reclaim()
}

func (l *SegmentLog) readSegment(seg *logSegment, i int, fn func(*flowrec.Record)) error {
	if seg.Manifest.Tiered {
		return fmt.Errorf("statesync: segment %d: %w", i, store.ErrTiered)
	}
	payload := seg.payload
	if payload == nil {
		raw, err := os.ReadFile(filepath.Join(l.dir, seg.file))
		if err != nil {
			return fmt.Errorf("statesync: read segment %d: %w", i, err)
		}
		payload = raw
	}
	recs, err := store.DecodeSegment(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("statesync: segment %d: %w", i, err)
	}
	l.segDecodes.Add(1)
	for _, r := range recs {
		fn(r)
	}
	return nil
}

// Manifests returns a copy of every segment's manifest in log order — a
// convenience for tests and health accounting. Query paths should use View
// instead: it is allocation-free and index-stable across rewrites.
func (l *SegmentLog) Manifests() []store.SegmentManifest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]store.SegmentManifest, len(l.segs))
	for i, s := range l.segs {
		out[i] = s.Manifest
	}
	return out
}

// Len returns the number of stored segments.
func (l *SegmentLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.segs)
}

// ReadSegment decodes segment i of the current log state and hands each
// record to fn — the one-shot convenience form of View().ReadSegment.
func (l *SegmentLog) ReadSegment(i int, fn func(*flowrec.Record)) error {
	v := l.View()
	defer v.Close()
	return v.ReadSegment(i, fn)
}
