package statesync

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/store"
)

// SegmentLog is the standard indexed flush sink behind store.Retention: it
// implements both halves of the cold-storage seam — store.ColdStore (the
// eviction sweep appends segments with their manifests) and
// store.ColdReader (epoch-windowed queries read evicted telemetry back).
//
// Two modes:
//
//   - In-memory (dir == ""): segments live in process memory. The mode
//     tests and short-lived daemons use.
//   - Directory-backed: each segment persists as seg-NNNNNN.gob next to
//     manifest.jsonl, one JSON line per segment in eviction order — the
//     tiny index that lets read-back skip irrelevant segments without
//     decoding them, and that survives a daemon restart (reopening the
//     same directory resumes the log). The manifest is append-only, so a
//     long-running daemon pays O(1) index I/O per eviction sweep, not a
//     full rewrite.
//
// All methods are safe for concurrent use: eviction sweeps append while
// queries read.
type SegmentLog struct {
	mu   sync.RWMutex
	dir  string
	segs []logSegment
}

type logSegment struct {
	Manifest store.SegmentManifest `json:"manifest"`
	payload  []byte                // in-memory mode only
}

var (
	_ store.ColdStore  = (*SegmentLog)(nil)
	_ store.ColdReader = (*SegmentLog)(nil)
)

// NewSegmentLog opens a segment log. An empty dir selects the in-memory
// mode; otherwise dir is created if needed and an existing manifest.jsonl
// resumes the persisted log.
func NewSegmentLog(dir string) (*SegmentLog, error) {
	l := &SegmentLog{dir: dir}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statesync: segment log: %w", err)
	}
	raw, err := os.ReadFile(l.manifestPath())
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("statesync: segment log: %w", err)
	}
	for i, line := range bytes.Split(raw, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var m store.SegmentManifest
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("statesync: segment log manifest line %d: %w", i+1, err)
		}
		idx := len(l.segs)
		if _, err := os.Stat(l.segmentPath(idx)); err != nil {
			return nil, fmt.Errorf("statesync: segment log: manifest names missing segment %d: %w", idx, err)
		}
		l.segs = append(l.segs, logSegment{Manifest: m})
	}
	return l, nil
}

// Dir returns the backing directory ("" for the in-memory mode).
func (l *SegmentLog) Dir() string { return l.dir }

func (l *SegmentLog) manifestPath() string { return filepath.Join(l.dir, "manifest.jsonl") }

func (l *SegmentLog) segmentPath(i int) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%06d.gob", i))
}

// WriteSegment implements store.ColdStore: it appends one encoded segment
// and persists its manifest. In directory mode the segment file lands
// before its manifest line is appended, so a crash between the two leaves
// a recoverable log (the orphan file is simply not indexed).
func (l *SegmentLog) WriteSegment(m store.SegmentManifest, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := len(l.segs)
	seg := logSegment{Manifest: m}
	if l.dir == "" {
		seg.payload = payload
	} else {
		if err := os.WriteFile(l.segmentPath(i), payload, 0o644); err != nil {
			return fmt.Errorf("statesync: write segment %d: %w", i, err)
		}
		if err := l.appendManifestLocked(m); err != nil {
			return err
		}
	}
	l.segs = append(l.segs, seg)
	return nil
}

// appendManifestLocked appends one manifest line — O(1) per eviction sweep
// regardless of log length.
func (l *SegmentLog) appendManifestLocked(m store.SegmentManifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(l.manifestPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("statesync: append manifest: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("statesync: append manifest: %w", err)
	}
	return nil
}

// Manifests implements store.ColdReader: every segment's manifest in
// eviction (write) order.
func (l *SegmentLog) Manifests() []store.SegmentManifest {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]store.SegmentManifest, len(l.segs))
	for i, s := range l.segs {
		out[i] = s.Manifest
	}
	return out
}

// Len returns the number of stored segments.
func (l *SegmentLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.segs)
}

// ReadSegment implements store.ColdReader: it decodes segment i and hands
// each record to fn. The records are fresh decodes owned by the caller.
func (l *SegmentLog) ReadSegment(i int, fn func(*flowrec.Record)) error {
	l.mu.RLock()
	if i < 0 || i >= len(l.segs) {
		l.mu.RUnlock()
		return fmt.Errorf("statesync: segment %d out of range", i)
	}
	payload := l.segs[i].payload
	l.mu.RUnlock()
	if payload == nil {
		raw, err := os.ReadFile(l.segmentPath(i))
		if err != nil {
			return fmt.Errorf("statesync: read segment %d: %w", i, err)
		}
		payload = raw
	}
	recs, err := store.DecodeSegment(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("statesync: segment %d: %w", i, err)
	}
	for _, r := range recs {
		fn(r)
	}
	return nil
}
