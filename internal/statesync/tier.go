package statesync

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"switchpointer/internal/simtime"
)

// TierPolicy decides when a cold segment leaves this tier entirely.
type TierPolicy struct {
	// MaxAgeEpochs is the age bound: a segment whose entire epoch range
	// ended more than MaxAgeEpochs epochs before the sweep time is tiered
	// out. Zero disables tiering.
	MaxAgeEpochs int
	// Alpha is the epoch size the age math uses; required for MaxAgeEpochs.
	Alpha simtime.Time
	// ArchiveDir, when set, receives each tiered payload (same file name)
	// before it leaves the log — the archive seam. Empty deletes payloads.
	ArchiveDir string
}

// TierStats accounts one TierOut sweep.
type TierStats struct {
	// Tiered counts segments whose payload left this tier.
	Tiered int
	// TieredBytes counts their encoded payload bytes.
	TieredBytes int
	// Archived counts payloads copied to ArchiveDir (= Tiered when
	// archiving, 0 when deleting).
	Archived int
}

// Tier runs a SegmentLog's age tiering under a fixed policy — the shape
// `spd host -tier-*` arms on the daemon's maintenance timer.
type Tier struct {
	Log    *SegmentLog
	Policy TierPolicy
	// OnError, when set, receives background sweep failures.
	OnError func(error)
}

// Sweep performs one tiering pass at virtual time now.
func (t *Tier) Sweep(ctx context.Context, now simtime.Time) (TierStats, error) {
	st, err := t.Log.TierOut(ctx, now, t.Policy)
	if err != nil && t.OnError != nil {
		t.OnError(err)
	}
	return st, err
}

// TierOut archives-or-deletes every segment whose epoch range ended more
// than p.MaxAgeEpochs epochs ago. The segment's manifest SURVIVES, marked
// Tiered, and the rewritten manifest is committed atomically — so queries
// whose windows reach into tiered history get an honest ErrTiered /
// TieredSegments answer instead of silently missing data, and a reopened
// log still knows what it once held. Concurrent readers keep their views;
// retired payload files are deleted only once no view references them.
func (l *SegmentLog) TierOut(ctx context.Context, now simtime.Time, p TierPolicy) (TierStats, error) {
	var st TierStats
	if p.MaxAgeEpochs <= 0 || p.Alpha <= 0 {
		return st, nil
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	cutoff := simtime.EpochOf(now, p.Alpha) - simtime.Epoch(p.MaxAgeEpochs)

	l.rewriteMu.Lock()
	defer l.rewriteMu.Unlock()

	l.mu.RLock()
	prefix := l.segs
	l.mu.RUnlock()

	var victims []int
	for i := range prefix {
		if !prefix[i].Manifest.Tiered && prefix[i].Manifest.Epochs.Hi < cutoff {
			victims = append(victims, i)
		}
	}
	if len(victims) == 0 {
		return st, nil
	}

	// Archive before commit: once the manifest marks a segment tiered, its
	// payload must already be safe in the next tier.
	if p.ArchiveDir != "" {
		if err := os.MkdirAll(p.ArchiveDir, 0o755); err != nil {
			return st, fmt.Errorf("statesync: tier: %w", err)
		}
		for _, i := range victims {
			if err := l.archiveSegment(&prefix[i], i, p.ArchiveDir); err != nil {
				return st, err
			}
			st.Archived++
		}
	}

	l.mu.Lock()
	cur := l.segs
	newSegs := make([]logSegment, len(cur))
	copy(newSegs, cur)
	var retired []string
	for _, i := range victims {
		st.Tiered++
		st.TieredBytes += newSegs[i].Manifest.Bytes
		if newSegs[i].file != "" {
			retired = append(retired, newSegs[i].file)
		}
		newSegs[i].Manifest.Tiered = true
		newSegs[i].file = ""
		newSegs[i].payload = nil
	}
	if l.dir != "" {
		if err := l.rewriteManifestLocked(newSegs); err != nil {
			l.mu.Unlock()
			return TierStats{}, err
		}
	}
	l.segs = newSegs
	l.mu.Unlock()
	l.retire(retired)
	l.tieredOut.Add(uint64(st.Tiered))
	return st, nil
}

// archiveSegment copies one segment's payload into dir under its file name
// (in-memory segments are named by their current position).
func (l *SegmentLog) archiveSegment(seg *logSegment, i int, dir string) error {
	name := seg.file
	payload := seg.payload
	if name == "" {
		name = segFileName(i)
	}
	if payload == nil {
		raw, err := os.ReadFile(filepath.Join(l.dir, seg.file))
		if err != nil {
			return fmt.Errorf("statesync: tier: %w", err)
		}
		payload = raw
	}
	if err := os.WriteFile(filepath.Join(dir, name), payload, 0o644); err != nil {
		return fmt.Errorf("statesync: tier: %w", err)
	}
	return nil
}
