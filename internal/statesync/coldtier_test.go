package statesync

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/store"
)

// coldRecord builds one standalone record: flow keyed by port, observed at
// switch 1 across the given epoch range.
func coldRecord(port uint16, last simtime.Time, lo, hi simtime.Epoch) *flowrec.Record {
	flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 2), Dst: netsim.IP(10, 1, byte(port>>8), byte(port)),
		SrcPort: port, DstPort: 80, Proto: 6}
	r := flowrec.New(flow)
	r.Path = []netsim.NodeID{1}
	r.Epochs = []simtime.EpochRange{{Lo: lo, Hi: hi}}
	r.LastSeen = last
	r.Pkts = 1
	return r
}

// writeSeg encodes recs as one segment and appends it to the log.
func writeSeg(t *testing.T, l *SegmentLog, recs ...*flowrec.Record) {
	t.Helper()
	var buf strings.Builder
	if err := store.EncodeSegment(&buf, recs); err != nil {
		t.Fatal(err)
	}
	m := store.NewSegmentManifest(recs)
	m.Bytes = buf.Len()
	if err := l.WriteSegment(m, []byte(buf.String())); err != nil {
		t.Fatal(err)
	}
}

// readAll decodes segment i into a flow-keyed map.
func readAll(t *testing.T, l *SegmentLog, i int) map[netsim.FlowKey]*flowrec.Record {
	t.Helper()
	out := make(map[netsim.FlowKey]*flowrec.Record)
	if err := l.ReadSegment(i, func(r *flowrec.Record) { out[r.Flow] = r }); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCompactMergesRunsWithRecencyGuard pins the merge semantics in both
// modes: a run of small overlapping segments collapses into one sorted
// segment, and duplicate flow versions resolve exactly like store.Put —
// newer LastSeen wins; on ties, more Pkts wins; on full ties, the later
// segment's version replaces.
func TestCompactMergesRunsWithRecencyGuard(t *testing.T) {
	for _, dir := range []string{"", filepath.Join(t.TempDir(), "cold")} {
		name := "dir"
		if dir == "" {
			name = "mem"
		}
		t.Run(name, func(t *testing.T) {
			l, err := NewSegmentLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			stale := coldRecord(100, 50, 0, 2) // superseded: seg 2 carries LastSeen 90
			fresh := coldRecord(101, 10, 1, 3) // survives: seg 3 re-adds it with older LastSeen
			winner := coldRecord(100, 90, 4, 6)
			loser := coldRecord(101, 5, 5, 7)
			tiePrev := coldRecord(102, 30, 2, 4)
			tiePrev.Pkts = 9 // tie on LastSeen below: more Pkts, must survive
			tieNext := coldRecord(102, 30, 5, 7)
			writeSeg(t, l, stale, fresh)
			writeSeg(t, l, tiePrev)
			writeSeg(t, l, winner)
			writeSeg(t, l, loser, tieNext)

			st, err := l.Compact(context.Background(), CompactPolicy{MinRun: 4})
			if err != nil {
				t.Fatal(err)
			}
			if st.Runs != 1 || st.SegmentsIn != 4 || st.SegmentsOut != 1 {
				t.Fatalf("stats = %+v", st)
			}
			if st.RecordsIn != 6 || st.RecordsOut != 3 {
				t.Fatalf("stats = %+v: want 6 records in, 3 surviving", st)
			}
			if l.Len() != 1 {
				t.Fatalf("Len = %d after compaction", l.Len())
			}
			got := readAll(t, l, 0)
			if len(got) != 3 {
				t.Fatalf("merged segment holds %d flows, want 3", len(got))
			}
			if r := got[winner.Flow]; r == nil || r.LastSeen != 90 {
				t.Fatalf("port-100 flow = %+v, want the LastSeen-90 version", r)
			}
			if r := got[fresh.Flow]; r == nil || r.LastSeen != 10 {
				t.Fatalf("port-101 flow = %+v, want the LastSeen-10 version", r)
			}
			if r := got[tiePrev.Flow]; r == nil || r.Pkts != 9 {
				t.Fatalf("port-102 flow = %+v, want the Pkts-9 version (LastSeen tie)", r)
			}

			// The merged manifest is fully indexed and covers the run's union.
			m := l.Manifests()[0]
			if m.V == 0 || m.Bloom == nil {
				t.Fatalf("merged manifest unindexed: %+v", m)
			}
			// The index covers the SURVIVING records only (superseded
			// versions' epochs drop out): fresh [1,3] ∪ tiePrev [2,4] ∪
			// winner [4,6].
			if m.Epochs != (simtime.EpochRange{Lo: 1, Hi: 6}) {
				t.Fatalf("merged epochs = %+v", m.Epochs)
			}

			// Sorted by flow key: decode order must be ascending.
			var order []netsim.FlowKey
			if err := l.ReadSegment(0, func(r *flowrec.Record) { order = append(order, r.Flow) }); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(order); i++ {
				if !flowrec.Less(order[i-1], order[i]) {
					t.Fatalf("merged records not sorted: %v", order)
				}
			}
		})
	}
}

// TestCompactLeavesShortRunsAndBigSegments pins the policy edge: runs
// shorter than MinRun and segments above MaxSegmentBytes stay untouched.
func TestCompactLeavesShortRunsAndBigSegments(t *testing.T) {
	l, err := NewSegmentLog("")
	if err != nil {
		t.Fatal(err)
	}
	writeSeg(t, l, coldRecord(1, 1, 0, 1))
	writeSeg(t, l, coldRecord(2, 2, 1, 2))
	writeSeg(t, l, coldRecord(3, 3, 2, 3))
	st, err := l.Compact(context.Background(), CompactPolicy{MinRun: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 0 || l.Len() != 3 {
		t.Fatalf("short run compacted: %+v, Len %d", st, l.Len())
	}
	// With a tiny byte bound nothing qualifies as "small".
	st, err = l.Compact(context.Background(), CompactPolicy{MinRun: 2, MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 0 {
		t.Fatalf("oversized segments joined a run: %+v", st)
	}
}

// dirNames lists the data files in dir (everything but manifest.jsonl).
func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.Name() != "manifest.jsonl" {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestCompactCrashSafety kills the compactor in both crash windows — before
// the temp renames and after them but before the manifest commit — and
// asserts a reopened log serves exactly the pre-compaction view with no
// debris left in the directory.
func TestCompactCrashSafety(t *testing.T) {
	for _, stage := range []string{"pre-rename", "pre-commit"} {
		t.Run(stage, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "cold")
			l, err := NewSegmentLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				writeSeg(t, l, coldRecord(uint16(10+i), simtime.Time(i), simtime.Epoch(i), simtime.Epoch(i+1)))
			}
			before, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
			if err != nil {
				t.Fatal(err)
			}

			crashAt := stage
			compactCrash = func(s string) error {
				if s == crashAt {
					return fmt.Errorf("injected crash at %s", s)
				}
				return nil
			}
			defer func() { compactCrash = nil }()
			if _, err := l.Compact(context.Background(), CompactPolicy{MinRun: 4}); err == nil {
				t.Fatal("crashed compaction reported success")
			}

			// The committed manifest is untouched.
			after, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			if string(before) != string(after) {
				t.Fatalf("crash mutated the committed manifest:\n%s\nvs\n%s", before, after)
			}

			// Reopen: the pre-compaction view, with all crash debris removed.
			re, err := NewSegmentLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			if re.Len() != 4 {
				t.Fatalf("reopened Len = %d, want 4", re.Len())
			}
			for i := 0; i < 4; i++ {
				got := readAll(t, re, i)
				if len(got) != 1 {
					t.Fatalf("segment %d decoded %d records", i, len(got))
				}
			}
			names := dirNames(t, dir)
			if len(names) != 4 {
				t.Fatalf("directory holds %v after reopen, want the 4 committed segments", names)
			}
			for _, n := range names {
				if strings.HasSuffix(n, ".tmp") {
					t.Fatalf("temp debris survived reopen: %v", names)
				}
			}
		})
	}
}

// TestReopenReconcilesOrphansAndAvoidsCollision pins the reopen contract:
// segment files never referenced by the manifest (a payload written before
// its manifest line landed) and temp leftovers are removed, and subsequent
// WriteSegment calls never collide with — or resurrect — stale payloads.
func TestReopenReconcilesOrphansAndAvoidsCollision(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cold")
	l, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSeg(t, l, coldRecord(1, 1, 0, 1))
	writeSeg(t, l, coldRecord(2, 2, 1, 2))

	// Crash debris: the next segment's payload landed but its manifest line
	// never did, plus an interrupted rewrite's temp file.
	orphan := filepath.Join(dir, segFileName(2))
	if err := os.WriteFile(orphan, []byte("stale payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segFileName(9)+".tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
	if names := dirNames(t, dir); len(names) != 2 {
		t.Fatalf("orphans survived reopen: %v", names)
	}

	// The reconciled log writes the next segment under the reclaimed name —
	// and serves the NEW payload, not the stale orphan bytes.
	writeSeg(t, re, coldRecord(3, 3, 2, 3))
	got := readAll(t, re, 2)
	if len(got) != 1 {
		t.Fatalf("segment written after reconcile decoded %d records", len(got))
	}
	if _, ok := got[coldRecord(3, 3, 2, 3).Flow]; !ok {
		t.Fatal("post-reconcile segment serves the wrong payload")
	}
}

// TestManifestCompatAndUpgrade pins forward/backward compatibility: a
// pre-index manifest.jsonl (bare manifest lines, positionally-named files)
// loads, its unindexed manifests never skip anything, and the first
// compaction upgrades every surviving line to the explicit-file format.
func TestManifestCompatAndUpgrade(t *testing.T) {
	dir := t.TempDir()
	// Write two legacy segments exactly as the pre-index code did: payload
	// under the positional name, manifest line without "v" or "file".
	var lines []string
	for i := 0; i < 2; i++ {
		rec := coldRecord(uint16(20+i), simtime.Time(i), simtime.Epoch(i), simtime.Epoch(i+2))
		var buf strings.Builder
		if err := store.EncodeSegment(&buf, []*flowrec.Record{rec}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segFileName(i)), []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf(`{"epochs":{"Lo":%d,"Hi":%d},"flows":1,"bytes":%d}`, i, i+2, buf.Len()))
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.jsonl"), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("legacy log loaded %d segments, want 2", l.Len())
	}
	// Unindexed manifests are conservative: no switch or flow is excluded,
	// so a legacy segment can never be wrongly skipped.
	for _, m := range l.Manifests() {
		if m.V != 0 {
			t.Fatalf("legacy manifest parsed with V = %d", m.V)
		}
		if !m.MayContainSwitch(999) || !m.MayContainFlow(netsim.FlowKey{}) {
			t.Fatal("legacy manifest excluded a query")
		}
	}
	// Payloads resolve positionally.
	if got := readAll(t, l, 1); len(got) != 1 {
		t.Fatalf("legacy segment 1 decoded %d records", len(got))
	}

	// First compaction merges the legacy run and upgrades the manifest.
	if _, err := l.Compact(context.Background(), CompactPolicy{MinRun: 2}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ln struct {
			V    int    `json:"v"`
			File string `json:"file"`
		}
		if err := json.Unmarshal([]byte(line), &ln); err != nil {
			t.Fatal(err)
		}
		if ln.V == 0 || ln.File == "" {
			t.Fatalf("compaction left an unupgraded manifest line: %s", line)
		}
	}
	re, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("upgraded log reopened with %d segments, want 1", re.Len())
	}
	if got := readAll(t, re, 0); len(got) != 2 {
		t.Fatalf("merged legacy segment decoded %d records, want 2", len(got))
	}
}

// TestTierOutArchivesAndReportsHonestly pins the tiering contract: aged
// segments' payloads move to the archive, their manifests survive marked
// Tiered, reads return ErrTiered, and a reopened log still knows the gap.
func TestTierOutArchivesAndReportsHonestly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cold")
	archive := filepath.Join(t.TempDir(), "archive")
	l, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSeg(t, l, coldRecord(1, 1, 0, 1))
	writeSeg(t, l, coldRecord(2, 2, 2, 3))
	writeSeg(t, l, coldRecord(3, 3, 100, 101))

	const alpha = simtime.Millisecond
	tier := &Tier{Log: l, Policy: TierPolicy{MaxAgeEpochs: 10, Alpha: alpha, ArchiveDir: archive}}
	// now = epoch 50: cutoff 40, so the first two segments age out.
	st, err := tier.Sweep(context.Background(), 50*alpha)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tiered != 2 || st.Archived != 2 || st.TieredBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if l.Len() != 3 {
		t.Fatalf("tiering dropped manifests: Len = %d", l.Len())
	}
	for i := 0; i < 2; i++ {
		err := l.ReadSegment(i, func(*flowrec.Record) {})
		if !errors.Is(err, store.ErrTiered) {
			t.Fatalf("tiered segment %d read err = %v, want ErrTiered", i, err)
		}
		if _, err := os.Stat(filepath.Join(archive, segFileName(i))); err != nil {
			t.Fatalf("archived payload %d missing: %v", i, err)
		}
	}
	if got := readAll(t, l, 2); len(got) != 1 {
		t.Fatalf("young segment unreadable after tiering: %d records", len(got))
	}
	// Retired payloads left the cold dir (no view was open).
	if names := dirNames(t, dir); len(names) != 1 {
		t.Fatalf("tiered payloads survived in cold dir: %v", names)
	}
	// A second sweep is a no-op: tiered segments never re-tier.
	st, err = tier.Sweep(context.Background(), 50*alpha)
	if err != nil || st.Tiered != 0 {
		t.Fatalf("re-sweep = %+v, %v", st, err)
	}

	re, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	ms := re.Manifests()
	if len(ms) != 3 || !ms[0].Tiered || !ms[1].Tiered || ms[2].Tiered {
		t.Fatalf("reopened tier marks = %+v", ms)
	}
	if err := re.ReadSegment(0, func(*flowrec.Record) {}); !errors.Is(err, store.ErrTiered) {
		t.Fatalf("reopened tiered read err = %v", err)
	}
}

// TestViewSurvivesRewrites pins the consistency contract: a view opened
// before a compaction keeps serving the old segments — including their
// payload files, which are deleted only after the view closes.
func TestViewSurvivesRewrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cold")
	l, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		writeSeg(t, l, coldRecord(uint16(30+i), simtime.Time(i), simtime.Epoch(i), simtime.Epoch(i+1)))
	}
	v := l.View()
	if _, err := l.Compact(context.Background(), CompactPolicy{MinRun: 4}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("post-compaction Len = %d", l.Len())
	}
	// The open view still sees — and can decode — all four old segments.
	if v.Len() != 4 {
		t.Fatalf("view Len = %d after rewrite, want 4", v.Len())
	}
	for i := 0; i < 4; i++ {
		n := 0
		if err := v.ReadSegment(i, func(*flowrec.Record) { n++ }); err != nil || n != 1 {
			t.Fatalf("view segment %d: %d records, err %v", i, n, err)
		}
	}
	v.Close()
	// With the last view closed the retired payloads are reclaimed: only
	// the merged segment's file remains.
	if names := dirNames(t, dir); len(names) != 1 {
		t.Fatalf("retired payloads survived view close: %v", names)
	}
}

// TestViewWalkAllocFree is the perf gate for the per-round manifest walk:
// acquiring a view, touching every manifest, and releasing it must not
// allocate at steady state (the old Manifests() copy allocated per round).
func TestViewWalkAllocFree(t *testing.T) {
	l, err := NewSegmentLog("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		writeSeg(t, l, coldRecord(uint16(i), simtime.Time(i), simtime.Epoch(i), simtime.Epoch(i+1)))
	}
	// Warm the view pool.
	v := l.View()
	v.Close()
	avg := testing.AllocsPerRun(200, func() {
		v := l.View()
		n := 0
		for i := 0; i < v.Len(); i++ {
			if v.Manifest(i).Flows > 0 {
				n++
			}
		}
		v.Close()
		if n != 64 {
			t.Fatalf("walked %d manifests", n)
		}
	})
	if avg >= 1 {
		t.Fatalf("view walk allocates %.1f objects per round, want 0", avg)
	}
}

// TestColdTierConcurrency is the -race gate for the whole cold tier: an
// eviction appender, a compactor, and an age-tier sweeper all rewrite the
// log while four query readers walk views and decode segments.
func TestColdTierConcurrency(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cold")
	l, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		writeSeg(t, l, coldRecord(uint16(i), simtime.Time(i), simtime.Epoch(i), simtime.Epoch(i+1)))
	}

	const iters = 60
	var wg sync.WaitGroup
	fail := make(chan error, 8)

	wg.Add(1)
	go func() { // appender: eviction sweeps keep landing new segments
		defer wg.Done()
		for i := 0; i < iters; i++ {
			rec := coldRecord(uint16(100+i), simtime.Time(i), simtime.Epoch(i), simtime.Epoch(i+2))
			var buf strings.Builder
			if err := store.EncodeSegment(&buf, []*flowrec.Record{rec}); err != nil {
				fail <- err
				return
			}
			m := store.NewSegmentManifest([]*flowrec.Record{rec})
			m.Bytes = buf.Len()
			if err := l.WriteSegment(m, []byte(buf.String())); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := l.Compact(context.Background(), CompactPolicy{MinRun: 3}); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // age tiering
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			_, err := l.TierOut(context.Background(), simtime.Time(20+i)*simtime.Millisecond,
				TierPolicy{MaxAgeEpochs: 15, Alpha: simtime.Millisecond})
			if err != nil {
				fail <- err
				return
			}
		}
	}()
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() { // query readers
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := l.View()
				n := v.Len()
				for s := 0; s < n; s++ {
					m := v.Manifest(s)
					if m.Flows <= 0 && !m.Tiered {
						fail <- fmt.Errorf("view served an empty live manifest at %d", s)
						v.Close()
						return
					}
					err := v.ReadSegment(s, func(*flowrec.Record) {})
					if err != nil && !errors.Is(err, store.ErrTiered) {
						fail <- fmt.Errorf("view read %d: %w", s, err)
						v.Close()
						return
					}
				}
				v.Close()
			}
		}()
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// The settled log must still reopen cleanly and serve every live segment.
	re, err := NewSegmentLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < re.Len(); i++ {
		err := re.ReadSegment(i, func(*flowrec.Record) {})
		if err != nil && !errors.Is(err, store.ErrTiered) {
			t.Fatalf("reopened segment %d: %v", i, err)
		}
	}
}

// TestColdIndexEffectiveness is the index acceptance gate: over 80 flushed
// segments all overlapping the query window, a flow-restricted query must
// decode only the few segments that can actually hold its flows (bloom +
// bounds), a foreign-switch query must decode none (switch set), and the
// indexed answers must be byte-identical to an exhaustive unindexed scan of
// the same payloads.
func TestColdIndexEffectiveness(t *testing.T) {
	tb := redLights(t)
	ag := tb.HostAgents[richestAgentIP(tb)]
	// Empty the hot store so every answer comes from the cold tier.
	ag.Store.SetRetention(store.Retention{HotEpochs: 1, Alpha: tb.Opt.Alpha})
	if _, err := ag.Store.Maintain(1 << 40); err != nil {
		t.Fatal(err)
	}
	if ag.Store.Len() != 0 {
		t.Fatalf("store still holds %d records", ag.Store.Len())
	}

	// Two logs over IDENTICAL payloads: one with full version-1 manifests,
	// one with stripped pre-index manifests (V=0 — the exhaustive baseline).
	const segs = 80
	const perSeg = 4
	const k = 3 // segments the query's flows actually live in
	indexed, err := NewSegmentLog("")
	if err != nil {
		t.Fatal(err)
	}
	unindexed, err := NewSegmentLog("")
	if err != nil {
		t.Fatal(err)
	}
	var queryFlows []netsim.FlowKey
	for i := 0; i < segs; i++ {
		var recs []*flowrec.Record
		for j := 0; j < perSeg; j++ {
			recs = append(recs, coldRecord(uint16(1+i*perSeg+j), simtime.Time(i), 0, 10))
		}
		if i%27 == 0 && len(queryFlows) < k {
			queryFlows = append(queryFlows, recs[i%perSeg].Flow)
		}
		var buf strings.Builder
		if err := store.EncodeSegment(&buf, recs); err != nil {
			t.Fatal(err)
		}
		m := store.NewSegmentManifest(recs)
		m.Bytes = buf.Len()
		if err := indexed.WriteSegment(m, []byte(buf.String())); err != nil {
			t.Fatal(err)
		}
		bare := store.SegmentManifest{Epochs: m.Epochs, Flows: m.Flows, Bytes: m.Bytes}
		if err := unindexed.WriteSegment(bare, []byte(buf.String())); err != nil {
			t.Fatal(err)
		}
	}
	q := hostagent.HeadersQuery{Switch: 1, Epochs: simtime.EpochRange{Lo: 0, Hi: 10}, Flows: queryFlows}

	ag.SetColdReader(indexed)
	fast := ag.QueryHeaders(context.Background(), q)
	if len(fast.Records) != k {
		t.Fatalf("indexed query returned %d records, want %d", len(fast.Records), k)
	}
	// The gate: segments decoded ≤ k plus a little bloom false-positive
	// slack, with every skip accounted.
	const fpSlack = 4
	if fast.ColdSegments > k+fpSlack {
		t.Fatalf("indexed query decoded %d of %d segments, want ≤ %d", fast.ColdSegments, segs, k+fpSlack)
	}
	if fast.ColdSkippedByIndex != segs-fast.ColdSegments {
		t.Fatalf("skip accounting: decoded %d + skipped %d != %d segments",
			fast.ColdSegments, fast.ColdSkippedByIndex, segs)
	}

	// Exhaustive baseline: identical records, every segment decoded.
	ag.SetColdReader(unindexed)
	slow := ag.QueryHeaders(context.Background(), q)
	if slow.ColdSegments != segs || slow.ColdSkippedByIndex != 0 {
		t.Fatalf("unindexed scan decoded %d, skipped %d; want %d, 0",
			slow.ColdSegments, slow.ColdSkippedByIndex, segs)
	}
	fastJSON, _ := json.Marshal(fast.Records)
	slowJSON, _ := json.Marshal(slow.Records)
	if string(fastJSON) != string(slowJSON) {
		t.Fatalf("indexed answer diverged from exhaustive scan\n--- indexed ---\n%s\n--- exhaustive ---\n%s", fastJSON, slowJSON)
	}

	// Switch gating: a query for a switch no record traversed decodes
	// nothing under the index and everything without it.
	ag.SetColdReader(indexed)
	foreign := ag.QueryHeaders(context.Background(), hostagent.HeadersQuery{Switch: 999, Epochs: simtime.EpochRange{Lo: 0, Hi: 10}})
	if foreign.ColdSegments != 0 || foreign.ColdSkippedByIndex != segs || len(foreign.Records) != 0 {
		t.Fatalf("foreign-switch query: decoded %d, skipped %d, %d records",
			foreign.ColdSegments, foreign.ColdSkippedByIndex, len(foreign.Records))
	}
}
