package statesync

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"switchpointer/internal/buildinfo"
	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/store"
)

// redLights builds and plays the red-lights scenario — a small testbed
// whose host stores end up with real multi-switch records.
func redLights(t *testing.T) *scenario.Testbed {
	t.Helper()
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Testbed.Run(30 * simtime.Millisecond)
	return s.Testbed
}

// storeJSON canonicalizes a store's full record set for comparison.
func storeJSON(t *testing.T, st *store.RecordStore) string {
	t.Helper()
	raw, err := json.Marshal(st.All())
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// richestAgentIP returns the host holding the most records — the
// interesting bootstrap subject.
func richestAgentIP(tb *scenario.Testbed) netsim.IPv4 {
	var best netsim.IPv4
	n := -1
	for ip, ag := range tb.HostAgents {
		if l := ag.Store.Len(); l > n || (l == n && ip < best) {
			best, n = ip, l
		}
	}
	return best
}

func TestSegmentLogModes(t *testing.T) {
	tb := redLights(t)
	recs := tb.HostAgents[richestAgentIP(tb)].Store.All()
	if len(recs) == 0 {
		t.Fatal("scenario produced no records")
	}
	var buf strings.Builder
	if err := store.EncodeSegment(&buf, recs); err != nil {
		t.Fatal(err)
	}
	payload := []byte(buf.String())
	manifest := store.SegmentManifest{Epochs: simtime.EpochRange{Lo: 0, Hi: 10}, Flows: len(recs), Bytes: len(payload)}

	dir := t.TempDir()
	memLog, err := NewSegmentLog("")
	if err != nil {
		t.Fatal(err)
	}
	dirLog, err := NewSegmentLog(filepath.Join(dir, "cold"))
	if err != nil {
		t.Fatal(err)
	}
	for _, log := range []*SegmentLog{memLog, dirLog} {
		if err := log.WriteSegment(manifest, payload); err != nil {
			t.Fatal(err)
		}
		if err := log.WriteSegment(manifest, payload); err != nil {
			t.Fatal(err)
		}
		if log.Len() != 2 {
			t.Fatalf("Len = %d, want 2", log.Len())
		}
		ms := log.Manifests()
		if len(ms) != 2 || ms[0].Epochs != manifest.Epochs || ms[0].Flows != manifest.Flows || ms[0].Bytes != manifest.Bytes {
			t.Fatalf("Manifests = %+v", ms)
		}
		got := 0
		if err := log.ReadSegment(1, func(r *flowrec.Record) { got++ }); err != nil {
			t.Fatal(err)
		}
		if got != len(recs) {
			t.Fatalf("ReadSegment decoded %d records, want %d", got, len(recs))
		}
		if err := log.ReadSegment(7, func(*flowrec.Record) {}); err == nil {
			t.Fatal("out-of-range ReadSegment succeeded")
		}
	}

	// Reopening the directory resumes the persisted log.
	reopened, err := NewSegmentLog(dirLog.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", reopened.Len())
	}
	got := 0
	if err := reopened.ReadSegment(0, func(r *flowrec.Record) { got++ }); err != nil {
		t.Fatal(err)
	}
	if got != len(recs) {
		t.Fatalf("reopened ReadSegment decoded %d records, want %d", got, len(recs))
	}
}

func TestReadinessHealthz(t *testing.T) {
	rd := NewReadiness(false)
	if rd.Live() || rd.State().String() != "syncing" {
		t.Fatalf("fresh readiness = %v", rd.State())
	}
	rd.AddBootstrap(3, 17)
	rd.AddIngest(5)

	srv := httptest.NewServer(HealthzHandler(rd, func() (int, int) { return 42, 2 }))
	defer srv.Close()

	fetch := func() Health {
		t.Helper()
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := fetch()
	want := Health{State: "syncing", ResidentRecords: 42, EvictedSegments: 2,
		BootstrapSegments: 3, BootstrapRecords: 17, IngestBatches: 1, IngestRecords: 5,
		Build: BuildInfo{Version: buildinfo.Version, GoVersion: buildinfo.Go()}}
	if h != want {
		t.Fatalf("healthz = %+v, want %+v", h, want)
	}

	rd.SetLive()
	if h := fetch(); h.State != "live" {
		t.Fatalf("state after SetLive = %q", h.State)
	}

	// A nil readiness (daemon that never bootstraps) reports permanently
	// live; nil stats report zero counts.
	srv2 := httptest.NewServer(HealthzHandler(nil, nil))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h2 Health
	if err := json.NewDecoder(resp.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.State != "live" || h2.ResidentRecords != 0 {
		t.Fatalf("nil-readiness healthz = %+v", h2)
	}
}

// TestSnapshotBootstrapRoundTrip pulls a live agent's snapshot over HTTP
// into a fresh store and asserts the record sets are byte-identical, plus
// epoch-range addressing.
func TestSnapshotBootstrapRoundTrip(t *testing.T) {
	tb := redLights(t)
	ag := tb.HostAgents[richestAgentIP(tb)]
	srv := httptest.NewServer(HostSnapshotHandler(ag))
	defer srv.Close()

	rd := NewReadiness(false)
	b := &Bootstrapper{Readiness: rd}
	dst := store.New()
	segs, recs, err := b.BootstrapStore(context.Background(), srv.URL, store.EveryEpoch, dst)
	if err != nil {
		t.Fatal(err)
	}
	if recs != ag.Store.Len() || recs == 0 {
		t.Fatalf("bootstrapped %d records, source holds %d", recs, ag.Store.Len())
	}
	if segs == 0 {
		t.Fatal("no segments streamed")
	}
	if got, want := storeJSON(t, dst), storeJSON(t, ag.Store); got != want {
		t.Fatalf("bootstrapped store diverged\n--- source ---\n%s\n--- bootstrapped ---\n%s", want, got)
	}
	if rd.bootRecords.Load() != int64(recs) {
		t.Fatalf("readiness accounted %d records, want %d", rd.bootRecords.Load(), recs)
	}

	// The by-switch index must be rebuilt by Put: same answers per switch.
	for _, sw := range tb.Topo.Switches() {
		if got, want := len(dst.BySwitch(sw.NodeID())), len(ag.Store.BySwitch(sw.NodeID())); got != want {
			t.Fatalf("switch %v: bootstrapped index holds %d records, source %d", sw.NodeID(), got, want)
		}
	}

	// Epoch-range addressing: an impossible window yields an empty pull.
	empty := store.New()
	_, n, err := b.BootstrapStore(context.Background(), srv.URL, simtime.EpochRange{Lo: 100000, Hi: 100001}, empty)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || empty.Len() != 0 {
		t.Fatalf("future-window pull returned %d records", n)
	}

	// Malformed window → 400 surfaces as an error.
	resp, err := http.Get(srv.URL + "?lo=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("half-open window answered %d, want 400", resp.StatusCode)
	}
}

// TestIngestFeed round-trips records through POST /ingest: a live feed into
// an empty agent-backed store, with readiness accounting.
func TestIngestFeed(t *testing.T) {
	tb := redLights(t)
	src := tb.HostAgents[richestAgentIP(tb)]

	// A second, un-played testbed supplies a fresh agent of the same shape.
	s2, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dst = s2.Testbed.HostAgents[richestAgentIP(tb)]
	rd := NewReadiness(false)
	srv := httptest.NewServer(IngestHandler(dst, rd))
	defer srv.Close()

	batches, err := FeedStore(context.Background(), nil, srv.URL, src.Store, 2)
	if err != nil {
		t.Fatal(err)
	}
	if batches == 0 {
		t.Fatal("no batches fed")
	}
	if got, want := storeJSON(t, dst.Store), storeJSON(t, src.Store); got != want {
		t.Fatalf("fed store diverged from source")
	}
	if rd.ingestBatches.Load() != int64(batches) || rd.ingestRecords.Load() != int64(src.Store.Len()) {
		t.Fatalf("ingest accounting = %d batches / %d records, want %d / %d",
			rd.ingestBatches.Load(), rd.ingestRecords.Load(), batches, src.Store.Len())
	}

	// Re-feeding is idempotent: later batches wholesale-replace records.
	if _, err := FeedStore(context.Background(), nil, srv.URL, src.Store, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := storeJSON(t, dst.Store), storeJSON(t, src.Store); got != want {
		t.Fatalf("re-fed store diverged from source")
	}

	// GET on ingest is rejected.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest answered %d, want 405", resp.StatusCode)
	}
}

// TestColdReadBackHostQuery evicts a live store wholesale into a SegmentLog
// and asserts QueryHeaders transparently recovers the evicted records —
// byte-identical to the pre-eviction answer — while reporting the cold
// accounting, and that non-overlapping segments are skipped undecoded.
func TestColdReadBackHostQuery(t *testing.T) {
	tb := redLights(t)
	ip := richestAgentIP(tb)
	ag := tb.HostAgents[ip]

	var subject netsim.NodeID
	for _, s := range tb.Topo.Switches() {
		if len(ag.Store.BySwitch(s.NodeID())) > 0 {
			subject = s.NodeID()
			break
		}
	}
	window := simtime.EpochRange{Lo: 0, Hi: 1000}

	hot := ag.QueryHeaders(context.Background(), hostagent.HeadersQuery{Switch: subject, Epochs: window})
	if len(hot.Records) == 0 {
		t.Fatal("no hot records to evict")
	}
	if hot.ColdSegments != 0 || hot.ColdRecords != 0 {
		t.Fatalf("hot answer carries cold accounting: %+v", hot)
	}
	hotJSON, _ := json.Marshal(hot.Records)

	// Evict everything into an indexed segment log.
	seglog, err := NewSegmentLog("")
	if err != nil {
		t.Fatal(err)
	}
	ag.Store.SetRetention(store.Retention{HotEpochs: 1, Alpha: tb.Opt.Alpha, Cold: seglog})
	evicted, err := ag.Store.Maintain(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if evicted == 0 || ag.Store.Len() != 0 {
		t.Fatalf("eviction left %d resident (evicted %d)", ag.Store.Len(), evicted)
	}
	ag.SetColdReader(seglog)

	cold := ag.QueryHeaders(context.Background(), hostagent.HeadersQuery{Switch: subject, Epochs: window})
	coldJSON, _ := json.Marshal(cold.Records)
	if string(coldJSON) != string(hotJSON) {
		t.Fatalf("cold read-back diverged\n--- hot ---\n%s\n--- cold ---\n%s", hotJSON, coldJSON)
	}
	if cold.ColdSegments == 0 || cold.ColdRecords == 0 {
		t.Fatalf("cold answer carries no cold accounting: segments=%d records=%d", cold.ColdSegments, cold.ColdRecords)
	}

	// A window no manifest overlaps is answered without decoding anything.
	miss := ag.QueryHeaders(context.Background(), hostagent.HeadersQuery{Switch: subject, Epochs: simtime.EpochRange{Lo: 500000, Hi: 500001}})
	if len(miss.Records) != 0 || miss.ColdSegments != 0 {
		t.Fatalf("manifest skip failed: %+v", miss)
	}
}
