package statesync

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/store"
	"switchpointer/internal/switchagent"
)

// Bootstrapper pulls peer snapshots into local agents — the client half of
// the snapshot/bootstrap leg. A fresh daemon uses it to absorb a live
// peer's state before switching to the ingest feed.
type Bootstrapper struct {
	// HTTP is the client to pull with (http.DefaultClient when nil).
	HTTP *http.Client
	// RTT, when non-zero, is slept before every pull round — the emulated
	// per-round network latency seam (this repo benches on a 1-CPU
	// container, so deployment latency is emulated here rather than
	// measured; see BenchmarkSnapshotBootstrap). Zero in production.
	RTT time.Duration
	// Readiness, when set, accumulates bootstrap accounting as segments
	// land, so /healthz shows a bootstrap progressing.
	Readiness *Readiness
}

func (b *Bootstrapper) http() *http.Client {
	if b.HTTP != nil {
		return b.HTTP
	}
	return http.DefaultClient
}

// round emulates one network round trip when an RTT is configured.
func (b *Bootstrapper) round() {
	if b.RTT > 0 {
		//splint:wallclock emulated per-round RTT on a real network pull (1-CPU container seam)
		time.Sleep(b.RTT)
	}
}

// BootstrapStore pulls the peer host agent's snapshot (GET
// peerBase/snapshot, epoch-range addressed) and installs every record into
// st via Put — safe while st is concurrently serving queries, which is
// exactly the syncing state: the daemon answers with whatever has landed so
// far. It returns how many segments and records were absorbed.
func (b *Bootstrapper) BootstrapStore(ctx context.Context, peerBase string, epochs simtime.EpochRange, st *store.RecordStore) (segments, records int, err error) {
	url := peerBase + "/snapshot"
	if epochs != store.EveryEpoch {
		url = fmt.Sprintf("%s?lo=%d&hi=%d", url, epochs.Lo, epochs.Hi)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("statesync: bootstrap: %w", err)
	}
	b.round()
	resp, err := b.http().Do(req)
	if err != nil {
		return 0, 0, fmt.Errorf("statesync: bootstrap %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("statesync: bootstrap %s: status %d", url, resp.StatusCode)
	}
	return ReadSegments(resp.Body, func(recs []*flowrec.Record) error {
		for _, rec := range recs {
			st.Put(rec)
		}
		if b.Readiness != nil {
			b.Readiness.AddBootstrap(1, len(recs))
		}
		return nil
	})
}

// BootstrapHost pulls the peer's full snapshot into a local host agent's
// store.
func (b *Bootstrapper) BootstrapHost(ctx context.Context, peerBase string, ag *hostagent.Agent) (segments, records int, err error) {
	return b.BootstrapStore(ctx, peerBase, store.EveryEpoch, ag.Store)
}

// BootstrapSwitch pulls the peer switch agent's snapshot (pointer structure
// + control store + MPH) and restores it into a local agent of identical
// geometry, so subsequent pointer pulls answer byte-identically to the
// source's.
func (b *Bootstrapper) BootstrapSwitch(ctx context.Context, peerBase string, ag *switchagent.Agent) error {
	b.round()
	snap, err := rpc.NewHTTPClient(b.HTTP).SwitchSnapshot(ctx, peerBase)
	if err != nil {
		return fmt.Errorf("statesync: bootstrap switch: %w", err)
	}
	if err := snap.Apply(ag); err != nil {
		return fmt.Errorf("statesync: bootstrap switch: %w", err)
	}
	if b.Readiness != nil {
		b.Readiness.AddBootstrap(1, 0)
	}
	return nil
}
