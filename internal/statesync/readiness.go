// Package statesync is the state-sync plane that turns spd daemons from
// scenario-replay servers into live state machines. It has three legs:
//
//   - Snapshot/serve: host agents expose their sharded record stores as
//     self-contained gob segments over HTTP (GET .../snapshot, epoch-range
//     addressable, streamed shard by shard so absorption never stalls), and
//     switch agents expose pointer + MPH snapshots.
//   - Bootstrap/ingest: a fresh daemon pulls a peer's segments, loads them,
//     and switches to a live ingest feed (POST .../ingest, batched wire-form
//     records) while already serving queries, with a syncing → live
//     readiness state machine surfaced at /healthz.
//   - Cold read-back: SegmentLog is the indexed flush sink behind
//     store.Retention — evicted segments persist with tiny manifests, and
//     host agents transparently consult them for epoch windows that have
//     aged out of the hot set (store.ColdReader).
package statesync

import (
	"encoding/json"
	"net/http"
	"sync/atomic"

	"switchpointer/internal/buildinfo"
)

// State is a daemon's readiness.
type State int32

// Readiness states.
const (
	// StateSyncing: the daemon is absorbing a peer snapshot; queries are
	// served against whatever state has landed so far.
	StateSyncing State = iota
	// StateLive: bootstrap finished (or was never needed) — the daemon's
	// answers reflect complete state plus whatever the ingest feed delivers.
	StateLive
)

func (s State) String() string {
	if s == StateLive {
		return "live"
	}
	return "syncing"
}

// Readiness is the syncing → live state machine every spd role surfaces at
// /healthz, plus the bootstrap/ingest counters it accumulates on the way.
// All methods are safe for concurrent use.
type Readiness struct {
	state atomic.Int32

	bootSegments  atomic.Int64
	bootRecords   atomic.Int64
	ingestBatches atomic.Int64
	ingestRecords atomic.Int64
}

// NewReadiness returns a Readiness starting in StateSyncing, or directly in
// StateLive (a daemon whose state needs no bootstrap).
func NewReadiness(live bool) *Readiness {
	r := &Readiness{}
	if live {
		r.state.Store(int32(StateLive))
	}
	return r
}

// SetLive transitions to StateLive. The transition is one-way.
func (r *Readiness) SetLive() { r.state.Store(int32(StateLive)) }

// State returns the current state.
func (r *Readiness) State() State { return State(r.state.Load()) }

// Live reports whether the daemon has reached StateLive.
func (r *Readiness) Live() bool { return r.State() == StateLive }

// AddBootstrap accounts segments/records absorbed from a peer snapshot.
func (r *Readiness) AddBootstrap(segments, records int) {
	r.bootSegments.Add(int64(segments))
	r.bootRecords.Add(int64(records))
}

// AddIngest accounts one live ingest batch.
func (r *Readiness) AddIngest(records int) {
	r.ingestBatches.Add(1)
	r.ingestRecords.Add(int64(records))
}

// Progress returns the accumulated bootstrap/ingest counters — the
// scrape-side accessor behind the statesync /metrics families.
func (r *Readiness) Progress() (bootSegments, bootRecords, ingestBatches, ingestRecords int64) {
	return r.bootSegments.Load(), r.bootRecords.Load(), r.ingestBatches.Load(), r.ingestRecords.Load()
}

// Health is the /healthz body: the readiness state plus resident/evicted
// accounting, so `spd wait` (and operators) can gate on "live" and watch a
// bootstrap land.
type Health struct {
	State           string `json:"state"`
	ResidentRecords int    `json:"resident_records"`
	EvictedSegments int    `json:"evicted_segments"`

	BootstrapSegments int64 `json:"bootstrap_segments,omitempty"`
	BootstrapRecords  int64 `json:"bootstrap_records,omitempty"`
	IngestBatches     int64 `json:"ingest_batches,omitempty"`
	IngestRecords     int64 `json:"ingest_records,omitempty"`

	// Build identifies the serving binary — version skew across a trio is
	// the first thing to rule out when daemons disagree.
	Build BuildInfo `json:"build"`
}

// BuildInfo is the /healthz build stanza.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// HealthzHandler serves GET /healthz as a Health JSON document. stats
// supplies the role's resident-record and evicted-segment counts (nil means
// both zero — the analyzer role, which holds no telemetry). A nil rd reports
// permanently live.
func HealthzHandler(rd *Readiness, stats func() (resident, evictedSegments int)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		h := Health{
			State: StateLive.String(),
			Build: BuildInfo{Version: buildinfo.Version, GoVersion: buildinfo.Go()},
		}
		if rd != nil {
			h.State = rd.State().String()
			h.BootstrapSegments = rd.bootSegments.Load()
			h.BootstrapRecords = rd.bootRecords.Load()
			h.IngestBatches = rd.ingestBatches.Load()
			h.IngestRecords = rd.ingestRecords.Load()
		}
		if stats != nil {
			h.ResidentRecords, h.EvictedSegments = stats()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h) //nolint:errcheck
	})
}
