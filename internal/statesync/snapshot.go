package statesync

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/simtime"
	"switchpointer/internal/store"
)

// SegmentsContentType marks a host snapshot body: a sequence of
// length-prefixed frames (4-byte big-endian length, then that many bytes),
// each holding one self-contained gob segment (store.EncodeSegment form),
// one per non-empty store shard. The explicit framing matters: a gob
// decoder buffers reads ahead of the message it decodes, so self-contained
// segments concatenated on one stream cannot be peeled off with fresh
// decoders — the frame boundary hands each decoder exactly its own bytes.
const SegmentsContentType = "application/x-switchpointer-segments"

// HostSnapshotHandler serves GET /snapshot on a host agent: the agent's
// resident record set as a stream of self-contained gob segments, one per
// non-empty store shard. Optional ?lo=E&hi=E query parameters restrict the
// snapshot to records whose telemetry epochs overlap [lo,hi] (epoch-range
// addressing); without them the full store is streamed.
//
// Each shard's segment is encoded from clones taken under only that shard's
// read lock, and written to the wire with no locks held — so a peer pulling
// a large snapshot never stalls the agent's packet absorption or its other
// query traffic. The response is flushed after every segment, so the puller
// can start loading while later shards are still being encoded.
func HostSnapshotHandler(ag *hostagent.Agent) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		epochs, err := epochWindow(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", SegmentsContentType)
		flusher, _ := w.(http.Flusher)
		var buf bytes.Buffer
		werr := ag.Store.SnapshotShards(epochs, func(recs []*flowrec.Record) error {
			buf.Reset()
			if err := store.EncodeSegment(&buf, recs); err != nil {
				return err
			}
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
			if _, err := w.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := w.Write(buf.Bytes()); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		if werr != nil {
			// Headers are already out; the truncated stream surfaces as a
			// decode error on the puller, which is the honest failure mode.
			return
		}
	})
}

// epochWindow parses the optional ?lo=&hi= epoch-range address of a
// snapshot request. Absent parameters select the full store.
func epochWindow(r *http.Request) (simtime.EpochRange, error) {
	q := r.URL.Query()
	lo, hi := q.Get("lo"), q.Get("hi")
	if lo == "" && hi == "" {
		return store.EveryEpoch, nil
	}
	if lo == "" || hi == "" {
		return simtime.EpochRange{}, errors.New("statesync: snapshot window needs both lo and hi")
	}
	l, err := strconv.ParseInt(lo, 10, 64)
	if err != nil {
		return simtime.EpochRange{}, fmt.Errorf("statesync: bad lo: %w", err)
	}
	h, err := strconv.ParseInt(hi, 10, 64)
	if err != nil {
		return simtime.EpochRange{}, fmt.Errorf("statesync: bad hi: %w", err)
	}
	return simtime.EpochRange{Lo: simtime.Epoch(l), Hi: simtime.Epoch(h)}, nil
}

// ReadSegments decodes a stream of length-prefixed gob segments (a host
// snapshot body) until EOF, handing each segment's record slice to fn. It
// returns how many segments and records were decoded. A stream truncated
// mid-frame is an error, never a silent short read.
func ReadSegments(r io.Reader, fn func(recs []*flowrec.Record) error) (segments, records int, err error) {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return segments, records, nil
			}
			return segments, records, fmt.Errorf("statesync: segment frame: %w", err)
		}
		payload := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(r, payload); err != nil {
			return segments, records, fmt.Errorf("statesync: truncated segment %d: %w", segments, err)
		}
		recs, err := store.DecodeSegment(bytes.NewReader(payload))
		if err != nil {
			return segments, records, err
		}
		segments++
		records += len(recs)
		if err := fn(recs); err != nil {
			return segments, records, err
		}
	}
}
