package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
)

// stubRunner executes queries under caller control: each Run blocks until
// the test releases it, while tracking the concurrency high-water mark.
type stubRunner struct {
	gate     chan struct{} // each Run consumes one token (nil = run through)
	started  chan string   // receives the query name when a Run begins
	inflight atomic.Int64
	peak     atomic.Int64
	runs     atomic.Int64
}

func (s *stubRunner) Run(ctx context.Context, q analyzer.Query) (*analyzer.Report, error) {
	cur := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	s.runs.Add(1)
	if s.started != nil {
		s.started <- q.Name()
	}
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &analyzer.Report{Kind: analyzer.KindInconclusive}, nil
}

func timeoutQuery() analyzer.Query {
	return analyzer.ContentionQuery{Alert: hostagent.Alert{Kind: hostagent.AlertTimeout}}
}

func dropQuery() analyzer.Query {
	return analyzer.ContentionQuery{Alert: hostagent.Alert{Kind: hostagent.AlertThroughputDrop}}
}

// TestAdmissionBoundsInFlight pins the core contract: never more than
// MaxInFlight concurrent Runs, every submitted query accounted exactly once
// across admitted/rejected, and the counters settle clean.
func TestAdmissionBoundsInFlight(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{})}
	ad := NewAdmission(stub, AdmissionConfig{MaxInFlight: 2, MaxQueued: 3})

	const submitters = 10
	var wg sync.WaitGroup
	var okCount, rejected atomic.Int64
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := ad.Run(context.Background(), dropQuery())
			switch {
			case err == nil:
				okCount.Add(1)
			case errors.Is(err, ErrRejected):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Release everyone; close is fine — the gate is consume-on-read via
	// select, so a closed gate releases all current and future Runs.
	time.Sleep(20 * time.Millisecond)
	close(stub.gate)
	wg.Wait()

	if got := stub.peak.Load(); got > 2 {
		t.Fatalf("in-flight peak %d, want ≤ 2", got)
	}
	if okCount.Load()+rejected.Load() != submitters {
		t.Fatalf("accounting: %d ok + %d rejected != %d", okCount.Load(), rejected.Load(), submitters)
	}
	if rejected.Load() == 0 {
		t.Fatal("queue bound never hit — test not exercising rejection")
	}
	stats := ad.Stats()
	if stats.InFlight != 0 || stats.Queued != 0 {
		t.Fatalf("counters did not settle: %+v", stats)
	}
	if stats.Admitted != uint64(okCount.Load()) || stats.Rejected != uint64(rejected.Load()) {
		t.Fatalf("stats %+v disagree with outcomes (%d ok, %d rejected)", stats, okCount.Load(), rejected.Load())
	}
}

// TestAdmissionPriorityOrder pins the overflow queue's per-alert-kind
// priority: with the slot busy, a queued timeout alert overtakes an earlier
// queued throughput-drop alert, FIFO within each class.
func TestAdmissionPriorityOrder(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{}), started: make(chan string, 8)}
	ad := NewAdmission(stub, AdmissionConfig{MaxInFlight: 1, MaxQueued: 8})

	errs := make(chan error, 3)
	go func() { _, err := ad.Run(context.Background(), dropQuery()); errs <- err }()
	if got := <-stub.started; got != "contention" {
		t.Fatalf("first run %q", got)
	}

	// Queue a background top-k, then a drop alert, then a timeout alert —
	// service order must be timeout, drop, top-k.
	queued := []struct {
		q    analyzer.Query
		name string
	}{
		{analyzer.TopKQuery{K: 1}, "top-k"},
		{dropQuery(), "contention"},
		{timeoutQuery(), "contention"},
	}
	for n, item := range queued {
		item := item
		go func() { _, err := ad.Run(context.Background(), item.q); errs <- err }()
		// Wait until the waiter is actually queued before adding the next,
		// so arrival order is deterministic.
		deadline := time.Now().Add(time.Second)
		for ad.Stats().Queued != n+1 {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d: %+v", n+1, ad.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	stub.gate <- struct{}{} // finish the in-flight drop query
	if got := <-stub.started; got != "contention" {
		t.Fatalf("second served %q, want the timeout-alert contention query", got)
	}
	stub.gate <- struct{}{}
	if got := <-stub.started; got != "contention" {
		t.Fatalf("third served %q, want the drop-alert contention query", got)
	}
	stub.gate <- struct{}{}
	if got := <-stub.started; got != "top-k" {
		t.Fatalf("fourth served %q, want top-k", got)
	}
	stub.gate <- struct{}{}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// TestAdmissionTypedErrors pins the typed failure modes: ErrRejected on a
// full queue, ErrExpired on the queue-wait bound, ctx.Err while queued.
func TestAdmissionTypedErrors(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{})}
	ad := NewAdmission(stub, AdmissionConfig{MaxInFlight: 1, MaxQueued: 1, QueueWait: 30 * time.Millisecond})

	done := make(chan error, 1)
	go func() { _, err := ad.Run(context.Background(), dropQuery()); done <- err }()
	deadline := time.Now().Add(time.Second)
	for ad.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first query never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Occupy the single queue slot with a ctx-cancelled waiter.
	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan error, 1)
	go func() { _, err := ad.Run(ctx, dropQuery()); waiting <- err }()
	for ad.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}

	// Queue full → ErrRejected.
	if _, err := ad.Run(context.Background(), dropQuery()); !errors.Is(err, ErrRejected) {
		t.Fatalf("full queue returned %v, want ErrRejected", err)
	}

	// Cancel the waiter → its ctx error surfaces, slot count restored.
	cancel()
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}

	// A fresh waiter expires after QueueWait → ErrExpired.
	if _, err := ad.Run(context.Background(), dropQuery()); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired waiter returned %v, want ErrExpired", err)
	}

	close(stub.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	stats := ad.Stats()
	if stats.Cancelled != 1 || stats.Expired != 1 || stats.Rejected != 1 {
		t.Fatalf("typed-outcome counters wrong: %+v", stats)
	}
}

// TestAdmissionOverlappingAlertsRace floods a real analyzer with
// overlapping alert diagnoses through the controller — the -race-gated
// proof that concurrent Analyzer.Run calls under admission are safe (the
// sharded stores and per-switch pull locks carry the load) and produce
// identical reports.
func TestAdmissionOverlappingAlertsRace(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	alert, err := s.Alert()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := s.Testbed.Analyzer.Run(context.Background(), analyzer.RedLightsQuery{Alert: alert})
	if err != nil {
		t.Fatal(err)
	}
	goldenTotal := golden.Total()

	ad := NewAdmission(s.Testbed.Analyzer, AdmissionConfig{MaxInFlight: 4, MaxQueued: 64})
	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				r, err := ad.Run(context.Background(), analyzer.RedLightsQuery{Alert: alert})
				if err != nil {
					t.Errorf("overlapping run: %v", err)
					return
				}
				if r.Kind != golden.Kind || r.Total() != goldenTotal || len(r.Culprits) != len(golden.Culprits) {
					t.Errorf("overlapping run diverged: kind=%v total=%v culprits=%d", r.Kind, r.Total(), len(r.Culprits))
					return
				}
			}
		}()
	}
	wg.Wait()
	stats := ad.Stats()
	if stats.Admitted != clients*3 || stats.InFlight != 0 || stats.Queued != 0 {
		t.Fatalf("admission stats after flood: %+v", stats)
	}
}
