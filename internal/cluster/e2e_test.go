package cluster

import (
	"context"
	"encoding/json"
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/simtime"
)

func window(lo, hi simtime.Epoch) simtime.EpochRange {
	return simtime.EpochRange{Lo: lo, Hi: hi}
}

// wireJSON canonicalizes a report for byte-level comparison.
func wireJSON(t *testing.T, w *WireReport) string {
	t.Helper()
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestLoopbackEquivalenceAllKinds is the tentpole acceptance gate: for every
// query kind, a diagnosis run entirely over loopback HTTP — pointer pulls
// and MPH distribution through RemoteDirectory, every per-host round through
// RemoteHosts, submitted through the admission-controlled /diagnose service
// — must produce a Report byte-identical (in wire form) to the in-memory
// run on the same testbed.
func TestLoopbackEquivalenceAllKinds(t *testing.T) {
	cases := []struct {
		scenario string
		m, n     int
	}{
		{"priority", 4, 0},      // ContentionQuery → priority-contention
		{"microburst", 4, 0},    // ContentionQuery → microburst-contention
		{"redlights", 0, 0},     // RedLightsQuery
		{"cascade", 0, 0},       // CascadeQuery
		{"loadimbalance", 0, 8}, // ImbalanceQuery
		{"topk", 0, 8},          // TopKQuery
	}
	for _, tc := range cases {
		t.Run(tc.scenario, func(t *testing.T) {
			s, err := BuildScenario(tc.scenario, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Testbed.Close()
			q, err := s.Query()
			if err != nil {
				t.Fatal(err)
			}

			local, err := s.Testbed.Analyzer.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("in-memory run: %v", err)
			}
			if local.Kind == analyzer.KindInconclusive && tc.scenario != "topk" {
				t.Fatalf("in-memory run inconclusive: %s", local.Conclusion)
			}
			localWire := wireJSON(t, WireFromReport(local))

			lb, err := NewLoopback(s.Testbed, AdmissionConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer lb.Close()

			// (1) The remote-backend analyzer in-process: every backend call
			// travels HTTP.
			remote, err := lb.Analyzer.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("remote-backend run: %v", err)
			}
			if got := wireJSON(t, WireFromReport(remote)); got != localWire {
				t.Fatalf("remote-backend report diverged\n--- in-memory ---\n%s\n--- remote ---\n%s", localWire, got)
			}

			// (2) The full service path: envelope → POST /diagnose →
			// admission → remote analyzer → wire report.
			env, err := Envelope(q)
			if err != nil {
				t.Fatal(err)
			}
			served, err := lb.Client.Diagnose(context.Background(), env)
			if err != nil {
				t.Fatalf("/diagnose: %v", err)
			}
			if got := wireJSON(t, served); got != localWire {
				t.Fatalf("/diagnose report diverged\n--- in-memory ---\n%s\n--- served ---\n%s", localWire, got)
			}

			stats, err := lb.Client.Stats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stats.Admitted != 1 || stats.InFlight != 0 {
				t.Fatalf("admission stats after one query: %+v", stats)
			}
		})
	}
}

// TestEnvelopeRoundTrip pins Query ⇄ QueryEnvelope for every kind.
func TestEnvelopeRoundTrip(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	alert, err := s.Alert()
	if err != nil {
		t.Fatal(err)
	}
	queries := []analyzer.Query{
		analyzer.ContentionQuery{Alert: alert},
		analyzer.RedLightsQuery{Alert: alert},
		analyzer.CascadeQuery{Alert: alert},
		analyzer.ImbalanceQuery{Switch: 3, Window: window(2, 11), At: 42},
		analyzer.TopKQuery{Switch: 3, K: 7, Window: window(0, 5), Mode: analyzer.ModePathDump, At: 17},
	}
	for _, q := range queries {
		env, err := Envelope(q)
		if err != nil {
			t.Fatalf("%T: %v", q, err)
		}
		raw, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		var back QueryEnvelope
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Query()
		if err != nil {
			t.Fatalf("%T: %v", q, err)
		}
		gotJSON, _ := json.Marshal(mustEnvelope(t, got))
		if string(gotJSON) != string(raw) {
			t.Fatalf("%T round trip diverged:\n%s\n%s", q, raw, gotJSON)
		}
		if got.Name() != q.Name() {
			t.Fatalf("kind changed: %s → %s", q.Name(), got.Name())
		}
	}
	if _, err := (QueryEnvelope{Kind: "nope"}).Query(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (QueryEnvelope{Kind: "cascade"}).Query(); err == nil {
		t.Fatal("cascade without alert accepted")
	}
}

func mustEnvelope(t *testing.T, q analyzer.Query) QueryEnvelope {
	t.Helper()
	env, err := Envelope(q)
	if err != nil {
		t.Fatal(err)
	}
	return env
}
