package cluster

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/pointer"
	"switchpointer/internal/scenario"
	"switchpointer/internal/statesync"
)

var backendCases = []struct {
	scenario string
	m, n     int
}{
	{"priority", 4, 0},      // ContentionQuery → priority-contention
	{"microburst", 4, 0},    // ContentionQuery → microburst-contention
	{"redlights", 0, 0},     // RedLightsQuery
	{"cascade", 0, 0},       // CascadeQuery
	{"loadimbalance", 0, 8}, // ImbalanceQuery
	{"topk", 0, 8},          // TopKQuery
}

// verdictJSON canonicalizes the decision content of a report — outcome kind
// plus every answer field — while excluding the search-radius accounting
// (Consulted, HostsContacted, Conclusion, Clock), which legitimately grows
// under a sketch backend's false-positive fan-out.
func verdictJSON(t *testing.T, rep *analyzer.Report) string {
	t.Helper()
	w := WireFromReport(rep)
	b, err := json.Marshal(map[string]any{
		"kind":      w.Kind,
		"culprits":  w.Culprits,
		"perswitch": rep.PerSwitch,
		"cascade":   rep.Cascade,
		"flows":     rep.Flows,
		"links":     rep.Links,
		"separated": rep.Separated,
		"boundary":  rep.Boundary,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBootstrapCrossBackendEquivalence is satellite 4's statesync gate: a
// dense-backend daemon's snapshots bootstrap an adaptive-backend twin (the
// V2 wire's exact payloads restore across backends), and the twin serves a
// wire-form report byte-identical to the source's in-memory run for every
// query kind.
func TestBootstrapCrossBackendEquivalence(t *testing.T) {
	for _, tc := range backendCases {
		t.Run(tc.scenario, func(t *testing.T) {
			src, err := BuildScenarioBackend(tc.scenario, tc.m, tc.n, pointer.BackendDense)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Testbed.Close()
			q, err := src.Query()
			if err != nil {
				t.Fatal(err)
			}
			local, err := src.Testbed.Analyzer.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("in-memory run: %v", err)
			}
			localWire := wireJSON(t, WireFromReport(local))

			hostSrv := httptest.NewServer(HostMux(src.Testbed, nil))
			defer hostSrv.Close()
			switchSrv := httptest.NewServer(SwitchMux(src.Testbed, nil))
			defer switchSrv.Close()

			dst, err := BuildScenarioBackend(tc.scenario, tc.m, tc.n, pointer.BackendAdaptive)
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Testbed.Close()
			b := &statesync.Bootstrapper{}
			if _, _, err := BootstrapHosts(context.Background(), b, hostSrv.URL, dst.Testbed); err != nil {
				t.Fatal(err)
			}
			if err := BootstrapSwitches(context.Background(), b, switchSrv.URL, dst.Testbed); err != nil {
				t.Fatal(err)
			}

			dstHostSrv := httptest.NewServer(HostMux(dst.Testbed, nil))
			defer dstHostSrv.Close()
			dstSwitchSrv := httptest.NewServer(SwitchMux(dst.Testbed, nil))
			defer dstSwitchSrv.Close()
			a, err := NewRemoteAnalyzer(dst.Testbed,
				HostURLs(dstHostSrv.URL, dst.Testbed),
				SwitchURLs(dstSwitchSrv.URL, dst.Testbed), nil)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := a.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("cross-backend bootstrapped run: %v", err)
			}
			if got := wireJSON(t, WireFromReport(remote)); got != localWire {
				t.Fatalf("dense→adaptive bootstrap diverged\n--- dense in-memory ---\n%s\n--- adaptive bootstrapped ---\n%s", localWire, got)
			}
		})
	}
}

// TestBloomDiagnosisCulpritEquivalence is the sketch acceptance gate: with
// a deliberately undersized per-slot filter (64 bits — dense with false
// positives at these testbed sizes), every query kind still reaches the
// exact backend's verdict — same kind, culprits, cascade chain, link
// distributions, and top-k flows — because a false-positive host simply
// answers an empty round. The extra fan-out must be visible: never a
// cheaper clock than the exact run, and strictly more hosts contacted
// somewhere across the suite.
func TestBloomDiagnosisCulpritEquivalence(t *testing.T) {
	extraHosts, extraClock := 0, int64(0)
	for _, tc := range backendCases {
		t.Run(tc.scenario, func(t *testing.T) {
			base, err := BuildScenario(tc.scenario, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer base.Testbed.Close()
			q, err := base.Query()
			if err != nil {
				t.Fatal(err)
			}
			baseRep, err := base.Testbed.Analyzer.Run(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}

			bloom, err := BuildScenarioOpt(tc.scenario, tc.m, tc.n, scenario.Options{
				PointerBackend:     pointer.BackendBloom,
				PointerBloomBits:   64,
				PointerBloomHashes: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer bloom.Testbed.Close()
			q2, err := bloom.Query()
			if err != nil {
				t.Fatal(err)
			}
			bloomRep, err := bloom.Testbed.Analyzer.Run(context.Background(), q2)
			if err != nil {
				t.Fatal(err)
			}

			want, got := verdictJSON(t, baseRep), verdictJSON(t, bloomRep)
			if want != got {
				t.Fatalf("bloom verdict diverged\n--- exact ---\n%s\n--- bloom ---\n%s", want, got)
			}
			if bloomRep.HostsContacted < baseRep.HostsContacted {
				t.Fatalf("bloom candidates (%d hosts) below the exact superset floor (%d)",
					bloomRep.HostsContacted, baseRep.HostsContacted)
			}
			if bloomRep.Clock.Total() < baseRep.Clock.Total() {
				t.Fatalf("bloom run cheaper than exact (%v < %v): false-positive rounds uncharged",
					bloomRep.Clock.Total(), baseRep.Clock.Total())
			}
			extraHosts += bloomRep.HostsContacted - baseRep.HostsContacted
			extraClock += int64(bloomRep.Clock.Total() - baseRep.Clock.Total())
		})
	}
	if extraHosts == 0 {
		t.Fatalf("no scenario produced false-positive fan-out — 64-bit filters should collide; the gate is vacuous")
	}
	if extraClock <= 0 {
		t.Fatalf("false-positive rounds (%d extra hosts) added no clock cost", extraHosts)
	}
}
