package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
	"switchpointer/internal/statesync"
	"switchpointer/internal/store"
)

// TestBootstrapEquivalenceAllKinds is the state-sync acceptance gate: for
// every query kind, a testbed that never replayed the scenario — its host
// stores pulled as gob segments and its switch pointer structures restored
// from snapshots, all over HTTP — must serve a wire-form report
// byte-identical to the in-memory run on the source testbed.
func TestBootstrapEquivalenceAllKinds(t *testing.T) {
	cases := []struct {
		scenario string
		m, n     int
	}{
		{"priority", 4, 0},      // ContentionQuery → priority-contention
		{"microburst", 4, 0},    // ContentionQuery → microburst-contention
		{"redlights", 0, 0},     // RedLightsQuery
		{"cascade", 0, 0},       // CascadeQuery
		{"loadimbalance", 0, 8}, // ImbalanceQuery
		{"topk", 0, 8},          // TopKQuery
	}
	for _, tc := range cases {
		t.Run(tc.scenario, func(t *testing.T) {
			src, err := BuildScenario(tc.scenario, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer src.Testbed.Close()
			q, err := src.Query() // plays the source to its horizon
			if err != nil {
				t.Fatal(err)
			}
			local, err := src.Testbed.Analyzer.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("in-memory run: %v", err)
			}
			localWire := wireJSON(t, WireFromReport(local))

			// Serve the live source and bootstrap a never-played twin.
			hostSrv := httptest.NewServer(HostMux(src.Testbed, nil))
			defer hostSrv.Close()
			switchSrv := httptest.NewServer(SwitchMux(src.Testbed, nil))
			defer switchSrv.Close()

			dst, err := BuildScenario(tc.scenario, tc.m, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Testbed.Close()
			b := &statesync.Bootstrapper{}
			segs, recs, err := BootstrapHosts(context.Background(), b, hostSrv.URL, dst.Testbed)
			if err != nil {
				t.Fatal(err)
			}
			if recs == 0 || segs == 0 {
				t.Fatalf("bootstrap absorbed %d segments / %d records", segs, recs)
			}
			if err := BootstrapSwitches(context.Background(), b, switchSrv.URL, dst.Testbed); err != nil {
				t.Fatal(err)
			}

			// Diagnose against the bootstrapped plane only: a remote-backend
			// analyzer whose every host and switch interaction reaches the
			// bootstrapped daemon.
			dstHostSrv := httptest.NewServer(HostMux(dst.Testbed, nil))
			defer dstHostSrv.Close()
			dstSwitchSrv := httptest.NewServer(SwitchMux(dst.Testbed, nil))
			defer dstSwitchSrv.Close()
			a, err := NewRemoteAnalyzer(dst.Testbed,
				HostURLs(dstHostSrv.URL, dst.Testbed),
				SwitchURLs(dstSwitchSrv.URL, dst.Testbed), nil)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := a.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("bootstrapped run: %v", err)
			}
			if got := wireJSON(t, WireFromReport(remote)); got != localWire {
				t.Fatalf("bootstrapped report diverged\n--- source in-memory ---\n%s\n--- bootstrapped ---\n%s", localWire, got)
			}
		})
	}
}

// hostAnswers canonicalizes one agent's answers for all five host-level
// query kinds (headers, top-k, flow sizes, record lookup, priority) over
// every switch and every flow the reference store holds.
func hostAnswers(t *testing.T, ag *hostagent.Agent, switches []netsim.NodeID, flows []netsim.FlowKey) string {
	t.Helper()
	ctx := context.Background()
	out := map[string]any{}
	for _, sw := range switches {
		key := fmt.Sprintf("%d", sw)
		out["headers/"+key] = ag.QueryHeaders(ctx, hostagent.HeadersQuery{Switch: sw, Epochs: simtime.EpochRange{Lo: 0, Hi: 1 << 30}})
		out["topk/"+key] = ag.QueryTopK(ctx, sw, 100)
		out["flowsizes/"+key] = ag.QueryFlowSizes(ctx, sw)
	}
	for _, f := range flows {
		rec, ok := ag.LookupRecord(ctx, f)
		prio, known := ag.QueryPriority(ctx, f)
		out["record/"+f.String()] = map[string]any{"rec": rec, "ok": ok}
		out["priority/"+f.String()] = map[string]any{"prio": prio, "known": known}
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestBootstrapMidSimulationAndIngestCatchUp bootstraps a second host
// daemon from a live one mid-simulation and asserts every host agent's
// answers for all five query kinds are byte-identical to the source's; the
// source then plays on to its horizon and the replica catches up over the
// live ingest feed, staying byte-identical.
func TestBootstrapMidSimulationAndIngestCatchUp(t *testing.T) {
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := s.Testbed
	defer src.Close()
	src.Run(15 * simtime.Millisecond) // mid-simulation: half the horizon

	s2, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := s2.Testbed
	defer dst.Close()

	hostSrv := httptest.NewServer(HostMux(src, nil))
	defer hostSrv.Close()
	rd := statesync.NewReadiness(false)
	dstSrv := httptest.NewServer(HostMux(dst, rd))
	defer dstSrv.Close()

	b := &statesync.Bootstrapper{Readiness: rd}
	if _, recs, err := BootstrapHosts(context.Background(), b, hostSrv.URL, dst); err != nil {
		t.Fatal(err)
	} else if recs == 0 {
		t.Fatal("mid-simulation bootstrap absorbed no records")
	}
	rd.SetLive()

	var switches []netsim.NodeID
	for id := range src.SwitchAgents {
		switches = append(switches, id)
	}
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })

	compare := func(stage string) {
		t.Helper()
		for ip, srcAg := range src.HostAgents {
			var flows []netsim.FlowKey
			for _, r := range srcAg.Store.All() {
				flows = append(flows, r.Flow)
			}
			want := hostAnswers(t, srcAg, switches, flows)
			got := hostAnswers(t, dst.HostAgents[ip], switches, flows)
			if got != want {
				t.Fatalf("%s: host %v answers diverged\n--- source ---\n%s\n--- replica ---\n%s", stage, ip, want, got)
			}
		}
	}
	compare("mid-simulation bootstrap")

	// The source plays on; the replica catches up over POST /ingest.
	src.Run(30 * simtime.Millisecond)
	for ip, srcAg := range src.HostAgents {
		url := dstSrv.URL + "/hosts/" + ip.String() + "/ingest"
		if _, err := statesync.FeedStore(context.Background(), nil, url, srcAg.Store, 4); err != nil {
			t.Fatal(err)
		}
	}
	compare("ingest catch-up")

	// The replica's health reflects the journey: live, with bootstrap and
	// ingest accounting and the full resident set.
	if err := WaitReady(context.Background(), dstSrv.URL+"/healthz", time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestWaitReadyGatesOnLive proves the readiness gate: a syncing daemon
// answers 200 but WaitReady keeps waiting until the daemon flips to live.
func TestWaitReadyGatesOnLive(t *testing.T) {
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	rd := statesync.NewReadiness(false)
	srv := httptest.NewServer(HostMux(s.Testbed, rd))
	defer srv.Close()

	if err := WaitReady(context.Background(), srv.URL+"/healthz", 250*time.Millisecond); err == nil {
		t.Fatal("WaitReady returned while the daemon was still syncing")
	}
	rd.SetLive()
	if err := WaitReady(context.Background(), srv.URL+"/healthz", 5*time.Second); err != nil {
		t.Fatalf("WaitReady after SetLive: %v", err)
	}
}

// TestColdReadBackDiagnosis drives a whole diagnosis whose epoch window has
// been evicted: every host store is flushed wholesale into indexed segment
// logs, and the contention procedure must still find the same culprits —
// with the extra cold-read-back round visible on the report clock.
func TestColdReadBackDiagnosis(t *testing.T) {
	src, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Testbed.Close()
	q, err := src.Query()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := src.Testbed.Analyzer.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.ColdSegments != 0 || baseline.Clock.PhaseTotal("cold-read-back") != 0 {
		t.Fatalf("baseline report carries cold accounting: %d segments", baseline.ColdSegments)
	}

	// Second identical testbed: evict EVERY record into segment logs.
	cold, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Testbed.Close()
	q2, err := cold.Query()
	if err != nil {
		t.Fatal(err)
	}
	for _, ag := range cold.Testbed.HostAgents {
		seglog, err := statesync.NewSegmentLog("")
		if err != nil {
			t.Fatal(err)
		}
		ag.Store.SetRetention(store.Retention{HotEpochs: 1, Alpha: cold.Testbed.Opt.Alpha, Cold: seglog})
		if _, err := ag.Store.Maintain(1 << 40); err != nil {
			t.Fatal(err)
		}
		if ag.Store.Len() != 0 {
			t.Fatalf("host still holds %d resident records", ag.Store.Len())
		}
		ag.SetColdReader(seglog)
	}

	rep, err := cold.Testbed.Analyzer.Run(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdSegments == 0 {
		t.Fatal("evicted-window diagnosis decoded no cold segments")
	}
	extra := rep.Clock.PhaseTotal("cold-read-back")
	if extra == 0 {
		t.Fatal("no cold-read-back round charged on the clock")
	}

	// Same verdict: culprits and per-switch shares byte-identical.
	baseWire, coldWire := WireFromReport(baseline), WireFromReport(rep)
	bc, _ := json.Marshal(baseWire.Culprits)
	cc, _ := json.Marshal(coldWire.Culprits)
	if string(bc) != string(cc) {
		t.Fatalf("cold culprits diverged\n--- baseline ---\n%s\n--- cold ---\n%s", bc, cc)
	}
	if baseWire.Kind != coldWire.Kind || baseWire.Conclusion != coldWire.Conclusion {
		t.Fatalf("cold verdict diverged: %q/%q vs %q/%q", baseWire.Kind, baseWire.Conclusion, coldWire.Kind, coldWire.Conclusion)
	}
	// The cold run costs exactly the baseline plus the charged extra
	// round(s) — virtual-time accounting stays honest.
	if got, want := rep.Clock.Total(), baseline.Clock.Total()+extra; got != want {
		t.Fatalf("cold total %v != baseline %v + cold rounds %v", got, baseline.Clock.Total(), extra)
	}
}

// TestSwitchBootstrapConcurrentWithPulls is the -race gate for the syncing
// switch daemon: a replica serves pointer pulls over HTTP while a
// background bootstrap restores its pointer structures — exactly what `spd
// switch -bootstrap-from` does. After the bootstrap lands, pulls must
// answer identically to the source's.
func TestSwitchBootstrapConcurrentWithPulls(t *testing.T) {
	src, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Testbed.Close()
	src.Run()
	srcSrv := httptest.NewServer(SwitchMux(src.Testbed, nil))
	defer srcSrv.Close()

	dst, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Testbed.Close()
	rd := statesync.NewReadiness(false)
	dstSrv := httptest.NewServer(SwitchMux(dst.Testbed, rd))
	defer dstSrv.Close()

	ids := dst.SwitchIDs()
	window := simtime.EpochRange{Lo: 0, Hi: 5}
	client := rpc.NewPooledHTTPClient()
	defer client.CloseIdleConnections()

	// Hammer pulls and healthz against the syncing replica while the
	// bootstrap restores underneath them.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range ids {
					url := dstSrv.URL + "/switches/" + strconv.Itoa(int(id))
					if _, _, err := client.PullPointers(context.Background(), url, window); err != nil {
						t.Error(err)
						return
					}
				}
				if err := WaitReady(context.Background(), dstSrv.URL+"/healthz", 10*time.Millisecond); err == nil && !rd.Live() {
					t.Error("healthz reported live while syncing")
					return
				}
			}
		}()
	}
	b := &statesync.Bootstrapper{Readiness: rd}
	if err := BootstrapSwitches(context.Background(), b, srcSrv.URL, dst.Testbed); err != nil {
		t.Fatal(err)
	}
	rd.SetLive()
	close(stop)
	wg.Wait()

	// Post-bootstrap pulls answer byte-identically to the source's.
	for _, id := range ids {
		srcBits, srcResp, err := client.PullPointers(context.Background(), srcSrv.URL+"/switches/"+strconv.Itoa(int(id)), window)
		if err != nil {
			t.Fatal(err)
		}
		dstBits, dstResp, err := client.PullPointers(context.Background(), dstSrv.URL+"/switches/"+strconv.Itoa(int(id)), window)
		if err != nil {
			t.Fatal(err)
		}
		if srcResp.HostsB64 != dstResp.HostsB64 || srcResp.Level != dstResp.Level || srcResp.Source != dstResp.Source {
			t.Fatalf("switch %d: pull diverged: %+v vs %+v", id, srcResp, dstResp)
		}
		if fmt.Sprint(srcBits.Indices()) != fmt.Sprint(dstBits.Indices()) {
			t.Fatalf("switch %d: bitmaps diverged", id)
		}
	}
}
