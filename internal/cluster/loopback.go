package cluster

import (
	"fmt"
	"net"
	"net/http"
	"strconv"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/metrics"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/scenario"
	"switchpointer/internal/statesync"
	"switchpointer/internal/trace"
)

// HostMux serves every host agent of a testbed on one handler, multiplexed
// by IP: agent for host ip lives under /hosts/<ip>/ — the rpc.NewHostHandler
// query routes plus the state-sync plane (GET /hosts/<ip>/snapshot, POST
// /hosts/<ip>/ingest). /healthz answers the statesync.Health document
// (state + resident-record/evicted-segment accounting) against rd; a nil rd
// reports permanently live — the non-bootstrap daemon. This is what `spd
// host` serves; HostURLs derives the matching per-host base URLs. The
// daemon's self-observability rides along: GET /metrics (Prometheus text
// over a HostRegistry) and GET /stats (the HostStatsDoc JSON).
func HostMux(tb *scenario.Testbed, rd *statesync.Readiness) http.Handler {
	return HostMuxWith(tb, rd, HostRegistry(tb, rd), trace.NewFlightRecorder("host", 0))
}

// HostMuxWith is HostMux with a caller-supplied metric registry — the spd
// daemon passes one so it can add process-level families (uptime) before
// mounting — and flight recorder. Each host agent's query handler records
// child spans for traced requests into fr, served back at GET /traces; a nil
// fr disables both.
func HostMuxWith(tb *scenario.Testbed, rd *statesync.Readiness, reg *metrics.Registry, fr *trace.FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	for ip, ag := range tb.HostAgents {
		prefix := "/hosts/" + ip.String()
		mux.Handle(prefix+"/", http.StripPrefix(prefix, rpc.NewTracedHostHandler(ag, ip.String(), fr)))
		mux.Handle(prefix+"/snapshot", statesync.HostSnapshotHandler(ag))
		mux.Handle(prefix+"/ingest", statesync.IngestHandler(ag, rd))
	}
	mux.Handle("/healthz", statesync.HealthzHandler(rd, hostStats(tb)))
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/stats", HostStatsHandler(tb, rd))
	if fr != nil {
		mux.Handle("/traces", http.StripPrefix("/traces", fr.Handler()))
		mux.Handle("/traces/", http.StripPrefix("/traces", fr.Handler()))
	}
	return mux
}

// hostStats sums a host daemon's /healthz accounting: records resident
// across every agent's store, and flushed (evicted) segments across every
// agent's cold read-back log.
func hostStats(tb *scenario.Testbed) func() (resident, evictedSegments int) {
	return func() (resident, evictedSegments int) {
		for _, ag := range tb.HostAgents {
			resident += ag.Store.Len()
			if cold := ag.ColdReader(); cold != nil {
				v := cold.View()
				evictedSegments += v.Len()
				v.Close()
			}
		}
		return resident, evictedSegments
	}
}

// SwitchMux serves every switch agent of a testbed on one handler,
// multiplexed by switch ID under /switches/<id>/ (the rpc.NewSwitchHandler
// routes below it, including the state-sync GET /switches/<id>/snapshot).
// /healthz reports readiness against rd plus the daemon's pushed
// control-store slot count as its resident-record figure — what `spd
// switch` serves. GET /metrics and GET /stats ride along as on HostMux.
func SwitchMux(tb *scenario.Testbed, rd *statesync.Readiness) http.Handler {
	return SwitchMuxWith(tb, rd, SwitchRegistry(tb, rd), trace.NewFlightRecorder("switch", 0))
}

// SwitchMuxWith is SwitchMux with a caller-supplied metric registry and
// flight recorder (nil disables span recording and the /traces endpoints).
func SwitchMuxWith(tb *scenario.Testbed, rd *statesync.Readiness, reg *metrics.Registry, fr *trace.FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	for id, ag := range tb.SwitchAgents {
		prefix := "/switches/" + strconv.Itoa(int(id))
		mux.Handle(prefix+"/", http.StripPrefix(prefix, rpc.NewTracedSwitchHandler(ag, strconv.Itoa(int(id)), fr)))
	}
	mux.Handle("/healthz", statesync.HealthzHandler(rd, func() (int, int) {
		resident := 0
		for _, ag := range tb.SwitchAgents {
			resident += ag.ControlStoreLen()
		}
		return resident, 0
	}))
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/stats", SwitchStatsHandler(tb, rd))
	if fr != nil {
		mux.Handle("/traces", http.StripPrefix("/traces", fr.Handler()))
		mux.Handle("/traces/", http.StripPrefix("/traces", fr.Handler()))
	}
	return mux
}

// HostURLs maps every host IP to its base URL under a HostMux server root.
func HostURLs(base string, tb *scenario.Testbed) map[netsim.IPv4]string {
	urls := make(map[netsim.IPv4]string, len(tb.HostAgents))
	for ip := range tb.HostAgents {
		urls[ip] = base + "/hosts/" + ip.String()
	}
	return urls
}

// SwitchURLs maps every switch ID to its base URL under a SwitchMux server
// root.
func SwitchURLs(base string, tb *scenario.Testbed) map[netsim.NodeID]string {
	urls := make(map[netsim.NodeID]string, len(tb.SwitchAgents))
	for id := range tb.SwitchAgents {
		urls[id] = base + "/switches/" + strconv.Itoa(int(id))
	}
	return urls
}

// NewRemoteAnalyzer assembles an analyzer whose every backend speaks HTTP:
// pointer pulls and MPH distribution through analyzer.RemoteDirectory
// against the switch URLs, all per-host query rounds through
// analyzer.RemoteHosts against the host URLs. One pooled client is shared
// by both planes so keep-alive connections span a whole diagnosis. The
// topology and cost model come from the (locally rebuilt) testbed — the
// deployment knowledge an analyzer node carries.
//
// The host-IP index order is tb.Topo.Hosts() order, matching the MPH the
// testbed distributed to its switches, so remotely decoded pointer bitmaps
// agree with in-memory decoding bit for bit.
func NewRemoteAnalyzer(tb *scenario.Testbed, hostURLs map[netsim.IPv4]string, switchURLs map[netsim.NodeID]string, client *rpc.HTTPClient) (*analyzer.Analyzer, error) {
	if client == nil {
		client = rpc.NewPooledHTTPClient()
	}
	hosts := tb.Topo.Hosts()
	ips := make([]netsim.IPv4, 0, len(hosts))
	for _, h := range hosts {
		ips = append(ips, h.IP())
	}
	dir, err := analyzer.NewRemoteDirectory(ips, switchURLs, client)
	if err != nil {
		return nil, err
	}
	a := analyzer.New(tb.Topo, dir, nil, tb.Opt.Cost)
	a.HostBack = analyzer.NewRemoteHosts(hostURLs, client)
	return a, nil
}

// Loopback is a whole SwitchPointer service plane on 127.0.0.1: the
// testbed's host agents behind HostMux, its switch agents behind SwitchMux,
// and an admission-controlled analyzer service whose analyzer reaches both
// only over HTTP. It is the in-process twin of an `spd host|switch|analyzer`
// trio — the launcher tests and the e2e equivalence gate use.
type Loopback struct {
	// HostURL/SwitchURL/AnalyzerURL are the three servers' roots.
	HostURL, SwitchURL, AnalyzerURL string
	// HostURLs/SwitchURLs map agents to their per-agent base URLs.
	HostURLs   map[netsim.IPv4]string
	SwitchURLs map[netsim.NodeID]string

	// Analyzer is the remote-backend analyzer the service executes.
	Analyzer *analyzer.Analyzer
	// Admission is the controller in front of it.
	Admission *Admission
	// Client is pre-pointed at the analyzer service.
	Client *Client

	// HostFlight/SwitchFlight/AnalyzerFlight are the three daemons' trace
	// flight recorders, served at each root's GET /traces. AnalyzerFlight
	// advertises the other two as peers so a trace client can walk the
	// whole trio from the analyzer alone.
	HostFlight     *trace.FlightRecorder
	SwitchFlight   *trace.FlightRecorder
	AnalyzerFlight *trace.FlightRecorder

	httpClient *rpc.HTTPClient
	servers    []*http.Server
}

// NewLoopback serves tb's full service plane on three fresh loopback
// listeners. The testbed must be idle (run to its horizon) — the simulated
// agents are served in place. Close releases everything.
func NewLoopback(tb *scenario.Testbed, cfg AdmissionConfig) (*Loopback, error) {
	lb := &Loopback{
		httpClient:     rpc.NewPooledHTTPClient(),
		HostFlight:     trace.NewFlightRecorder("host", 0),
		SwitchFlight:   trace.NewFlightRecorder("switch", 0),
		AnalyzerFlight: trace.NewFlightRecorder("analyzer", 0),
	}

	hostURL, err := lb.serve(HostMuxWith(tb, nil, HostRegistry(tb, nil), lb.HostFlight))
	if err != nil {
		lb.Close()
		return nil, err
	}
	switchURL, err := lb.serve(SwitchMuxWith(tb, nil, SwitchRegistry(tb, nil), lb.SwitchFlight))
	if err != nil {
		lb.Close()
		return nil, err
	}
	lb.HostURL, lb.SwitchURL = hostURL, switchURL
	lb.HostURLs = HostURLs(hostURL, tb)
	lb.SwitchURLs = SwitchURLs(switchURL, tb)
	lb.AnalyzerFlight.SetPeers(map[string]string{"hosts": hostURL, "switches": switchURL})

	lb.Analyzer, err = NewRemoteAnalyzer(tb, lb.HostURLs, lb.SwitchURLs, lb.httpClient)
	if err != nil {
		lb.Close()
		return nil, err
	}
	lb.Admission = NewAdmission(lb.Analyzer, cfg)
	lb.Admission.Flight = lb.AnalyzerFlight
	lb.AnalyzerURL, err = lb.serve(NewAnalyzerHandler(lb.Admission))
	if err != nil {
		lb.Close()
		return nil, err
	}
	lb.Client = &Client{BaseURL: lb.AnalyzerURL}
	return lb, nil
}

// serve starts one HTTP server on a fresh 127.0.0.1 listener and returns
// its root URL.
func (lb *Loopback) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("cluster: loopback listen: %w", err)
	}
	srv := &http.Server{Handler: h}
	lb.servers = append(lb.servers, srv)
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return "http://" + ln.Addr().String(), nil
}

// Close shuts every server down and drops pooled connections.
func (lb *Loopback) Close() {
	for _, srv := range lb.servers {
		srv.Close() //nolint:errcheck
	}
	if lb.httpClient != nil {
		lb.httpClient.CloseIdleConnections()
	}
}
