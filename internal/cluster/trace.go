package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"switchpointer/internal/trace"
)

// FetchTraceIndex pulls one daemon's GET /traces index — its role, the trace
// IDs currently in its flight recorder, and (on the analyzer) its peers'
// roots for walking the rest of the trio.
func FetchTraceIndex(ctx context.Context, hc *http.Client, baseURL string) (trace.Index, error) {
	var idx trace.Index
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/traces", nil)
	if err != nil {
		return idx, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return idx, fmt.Errorf("cluster: fetch trace index: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return idx, err
	}
	if resp.StatusCode != http.StatusOK {
		return idx, fmt.Errorf("cluster: /traces status %d", resp.StatusCode)
	}
	return idx, json.Unmarshal(body, &idx)
}

// FetchTrace pulls one trace by ID from a daemon's flight recorder. A 404
// (the daemon never saw the trace, or it was evicted) returns ok=false with
// no error, so callers can probe every daemon and merge what answers.
func FetchTrace(ctx context.Context, hc *http.Client, baseURL, id string) (trace.Trace, bool, error) {
	var t trace.Trace
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/traces/"+id, nil)
	if err != nil {
		return t, false, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return t, false, fmt.Errorf("cluster: fetch trace %s: %w", id, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return t, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(body, &t); err != nil {
			return t, false, err
		}
		return t, true, nil
	case http.StatusNotFound:
		return t, false, nil
	default:
		return t, false, fmt.Errorf("cluster: /traces/%s status %d", id, resp.StatusCode)
	}
}

// MergeTraces folds per-daemon views of the same trace into one canonical
// tree: spans deduplicate by ID (first daemon wins — span IDs are globally
// deterministic, so duplicates are byte-equal modulo wall annotations) and
// sort canonically. Views under other trace IDs are ignored.
func MergeTraces(id string, views ...trace.Trace) trace.Trace {
	merged := trace.Trace{ID: id}
	seen := make(map[string]bool)
	for _, v := range views {
		if v.ID != id {
			continue
		}
		for _, s := range v.Spans {
			if seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			merged.Spans = append(merged.Spans, s)
		}
	}
	return merged.Sorted()
}
