package cluster

import (
	"fmt"
	"sort"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/pointer"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// Scenario couples a deterministic testbed with the analyzer query its
// workload is built to answer. It is the shared fixture behind the spd
// daemons (every daemon of a cluster rebuilds identical state from the
// scenario name — the simulation is deterministic, so host, switch, and
// analyzer processes agree byte-for-byte on all agent state) and behind
// spctl --remote (which derives the query locally and submits it over the
// wire).
type Scenario struct {
	// Name is the scenario identifier (see BuildScenario).
	Name string
	// Testbed is the fully wired deployment; run to Horizon before serving
	// or querying.
	Testbed *scenario.Testbed
	// Horizon is the virtual time the workload needs to play out.
	Horizon simtime.Time
	// SwitchName names the subject switch of the switch-driven scenarios
	// (loadimbalance, topk); empty otherwise.
	SwitchName string

	victim  netsim.FlowKey
	suspect netsim.NodeID
	topkK   int
	kind    string
	ran     bool
}

// ScenarioNames lists the supported scenario identifiers.
func ScenarioNames() []string {
	return []string{"priority", "microburst", "redlights", "cascade", "loadimbalance", "topk"}
}

// BuildScenario assembles a named scenario. m parameterizes burst width for
// priority/microburst (≤0 selects 8); n parameterizes server count for
// loadimbalance/topk (≤0 selects 16). The same (name, m, n) always yields
// the same testbed state at the horizon.
func BuildScenario(name string, m, n int) (*Scenario, error) {
	return BuildScenarioBackend(name, m, n, pointer.BackendAdaptive)
}

// BuildScenarioBackend is BuildScenario with an explicit pointer-slot
// backend on every switch. Exact backends (adaptive, dense) reproduce
// identical diagnosis reports; the bloom backend reproduces identical
// culprit sets with the extra false-positive fan-out charged on the clock.
func BuildScenarioBackend(name string, m, n int, be pointer.Backend) (*Scenario, error) {
	return BuildScenarioOpt(name, m, n, scenario.Options{PointerBackend: be})
}

// BuildScenarioOpt is the general form: testbed options are threaded into
// the named scenario's builder (its own workload knobs still win).
func BuildScenarioOpt(name string, m, n int, opt scenario.Options) (*Scenario, error) {
	if m <= 0 {
		m = 8
	}
	if n <= 0 {
		n = 16
	}
	switch name {
	case "priority", "microburst":
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: m, Microburst: name == "microburst", Opt: opt})
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Testbed: s.Testbed, Horizon: 110 * simtime.Millisecond,
			victim: s.Victim, kind: "contention"}, nil
	case "redlights":
		s, err := scenario.NewRedLights(opt)
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Testbed: s.Testbed, Horizon: 30 * simtime.Millisecond,
			victim: s.Victim, kind: "red-lights"}, nil
	case "cascade":
		s, err := scenario.NewCascades(true, opt)
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Testbed: s.Testbed, Horizon: 60 * simtime.Millisecond,
			victim: s.FlowCE, kind: "cascade"}, nil
	case "loadimbalance":
		s, err := scenario.NewLoadImbalance(n, opt)
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Testbed: s.Testbed,
			Horizon:    s.MaxFlowDuration() + 100*simtime.Millisecond,
			SwitchName: s.Suspect.NodeName(),
			suspect:    s.Suspect.NodeID(), kind: "load-imbalance"}, nil
	case "topk":
		s, err := scenario.NewTopKWorkload(n, 96, opt)
		if err != nil {
			return nil, err
		}
		return &Scenario{Name: name, Testbed: s.Testbed, Horizon: 50 * simtime.Millisecond,
			SwitchName: s.Queried.NodeName(),
			suspect:    s.Queried.NodeID(), topkK: 100, kind: "top-k"}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown scenario %q (want one of %v)", name, ScenarioNames())
	}
}

// Run plays the workload out to the horizon (idempotent) and returns the
// final virtual time. Serve agents or derive queries only after Run.
func (s *Scenario) Run() simtime.Time {
	end := s.Testbed.Run(s.Horizon)
	s.ran = true
	return end
}

// Alert returns the workload's trigger alert (alert-driven scenarios only).
func (s *Scenario) Alert() (hostagent.Alert, error) {
	if !s.ran {
		s.Run()
	}
	alert, ok := s.Testbed.AlertFor(s.victim)
	if !ok {
		return hostagent.Alert{}, fmt.Errorf("cluster: scenario %q raised no alert for %v", s.Name, s.victim)
	}
	return alert, nil
}

// Query returns the analyzer query the scenario is built to answer, derived
// from the played-out testbed exactly the way an operator session would
// derive it.
func (s *Scenario) Query() (analyzer.Query, error) {
	end := s.Run()
	switch s.kind {
	case "contention":
		alert, err := s.Alert()
		return analyzer.ContentionQuery{Alert: alert}, err
	case "red-lights":
		alert, err := s.Alert()
		return analyzer.RedLightsQuery{Alert: alert}, err
	case "cascade":
		alert, err := s.Alert()
		return analyzer.CascadeQuery{Alert: alert}, err
	case "load-imbalance":
		ag := s.Testbed.SwitchAgents[s.suspect]
		nowEpoch := ag.LocalEpochAt(end)
		return analyzer.ImbalanceQuery{
			Switch: s.suspect,
			Window: simtime.EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch},
			At:     end,
		}, nil
	case "top-k":
		return analyzer.TopKQuery{
			Switch: s.suspect, K: s.topkK,
			Window: simtime.EpochRange{Lo: 0, Hi: 10},
			Mode:   analyzer.ModeSwitchPointer,
			At:     end,
		}, nil
	default:
		return nil, fmt.Errorf("cluster: scenario %q has no query", s.Name)
	}
}

// HostIPs returns the testbed's end-host IPs in topology order — the order
// every directory backend must use so MPH bitmap indices agree across
// processes.
func (s *Scenario) HostIPs() []netsim.IPv4 {
	hosts := s.Testbed.Topo.Hosts()
	ips := make([]netsim.IPv4, 0, len(hosts))
	for _, h := range hosts {
		ips = append(ips, h.IP())
	}
	return ips
}

// SwitchIDs returns the testbed's switch IDs, sorted.
func (s *Scenario) SwitchIDs() []netsim.NodeID {
	ids := make([]netsim.NodeID, 0, len(s.Testbed.SwitchAgents))
	for id := range s.Testbed.SwitchAgents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
