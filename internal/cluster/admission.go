// Package cluster is SwitchPointer's service plane: the pieces that turn
// the analyzer + agents into a deployable distributed system. It provides
//
//   - Admission, a multi-query admission controller that bounds concurrent
//     Analyzer.Run calls and queues overflow FIFO with per-alert-kind
//     priority (the DCM-style coordination of many concurrent monitoring
//     tasks over one vantage-point fleet);
//   - the JSON wire forms of analyzer queries and reports (wire.go) and the
//     analyzer service endpoint POST /diagnose that speaks them
//     (service.go), plus the matching Client;
//   - a loopback-cluster launcher (loopback.go) that serves a whole
//     testbed's agents and an admission-controlled remote-backend analyzer
//     over 127.0.0.1 HTTP — the fixture behind the spd daemons' tests and
//     the e2e equivalence gate;
//   - the deterministic named scenarios (scenario.go) shared by the spd
//     daemons and spctl --remote, so every process of a cluster can rebuild
//     identical state from a scenario name.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/trace"
)

// Typed admission outcomes. Callers distinguish "try later" (ErrRejected:
// the queue was full on arrival) from "waited too long" (ErrExpired: the
// configured queue wait elapsed before a slot freed).
var (
	ErrRejected = errors.New("cluster: admission queue full")
	ErrExpired  = errors.New("cluster: admission queue wait expired")
)

// Runner executes one analyzer query; *analyzer.Analyzer satisfies it.
type Runner interface {
	Run(ctx context.Context, q analyzer.Query) (*analyzer.Report, error)
}

// AdmissionConfig tunes the controller. Zero values select the defaults.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently executing queries (default 4). The
	// sharded host stores and per-switch pull locks make any bound safe;
	// the bound is a throughput/latency knob, measured by the
	// diagnosis-throughput experiment at 1/4/16.
	MaxInFlight int
	// MaxQueued bounds waiters beyond the in-flight set (default 64). A
	// query arriving with the queue full is rejected with ErrRejected.
	MaxQueued int
	// QueueWait bounds how long a query may wait for a slot (0 = only the
	// query's own ctx bounds it). A waiter that outlives it fails with
	// ErrExpired.
	QueueWait time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	return c
}

// Queue priority classes: FIFO within a class, lower value served first.
const (
	prioUrgent     = iota // timeout alerts — a transfer is stuck right now
	prioAlert             // throughput-drop alerts
	prioBackground        // switch-driven investigations (imbalance, top-k)
	numPriorities
)

// priorityOf classifies a query for the overflow queue: hard-failure alerts
// (TCP timeouts) ahead of throughput-drop alerts, alert-driven diagnoses
// ahead of operator-initiated switch investigations.
func priorityOf(q analyzer.Query) int {
	switch q := q.(type) {
	case analyzer.ContentionQuery:
		return alertPriority(q.Alert)
	case *analyzer.ContentionQuery:
		return alertPriority(q.Alert)
	case analyzer.RedLightsQuery:
		return alertPriority(q.Alert)
	case *analyzer.RedLightsQuery:
		return alertPriority(q.Alert)
	case analyzer.CascadeQuery:
		return alertPriority(q.Alert)
	case *analyzer.CascadeQuery:
		return alertPriority(q.Alert)
	default:
		return prioBackground
	}
}

func alertPriority(a hostagent.Alert) int {
	if a.Kind == hostagent.AlertTimeout {
		return prioUrgent
	}
	return prioAlert
}

// AdmissionStats is a snapshot of the controller's counters.
type AdmissionStats struct {
	// Admitted counts queries that started executing (immediately or after
	// queueing).
	Admitted uint64 `json:"admitted"`
	// Rejected counts queries refused because the queue was full.
	Rejected uint64 `json:"rejected"`
	// Expired counts waiters that hit the QueueWait bound.
	Expired uint64 `json:"expired"`
	// Cancelled counts waiters whose ctx ended before a slot freed.
	Cancelled uint64 `json:"cancelled"`
	// InFlight is the number of queries executing right now.
	InFlight int `json:"in_flight"`
	// Queued is the number of queries waiting right now.
	Queued int `json:"queued"`
}

// waiter is one queued query; grant is closed (under the mutex) when a slot
// is transferred to it.
type waiter struct {
	grant chan struct{}
}

// Admission bounds concurrent Runner.Run calls. Queries beyond MaxInFlight
// queue FIFO within per-alert-kind priority classes; overflow beyond
// MaxQueued is rejected with ErrRejected, waiters honour their ctx and the
// configured QueueWait (ErrExpired). All methods are safe for concurrent
// use.
type Admission struct {
	run Runner
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	queued   int
	queues   [numPriorities][]*waiter

	admitted  uint64
	rejected  uint64
	expired   uint64
	cancelled uint64

	// obs holds the attached metric instruments (nil until Observe). An
	// atomic pointer so Run never takes a lock just to find out the
	// controller is uninstrumented.
	obs atomic.Pointer[admissionObs]

	// Flight, when set, arms tracing: every admitted query records into a
	// trace.Recorder (queue wait included) whose finished trace lands here.
	// Set before serving; must not change while Runs are in flight.
	Flight *trace.FlightRecorder
}

// NewAdmission wraps a Runner (typically *analyzer.Analyzer) in an
// admission controller.
func NewAdmission(run Runner, cfg AdmissionConfig) *Admission {
	return &Admission{run: run, cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (ad *Admission) Config() AdmissionConfig { return ad.cfg }

// Stats returns a snapshot of the counters.
func (ad *Admission) Stats() AdmissionStats {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	return AdmissionStats{
		Admitted:  ad.admitted,
		Rejected:  ad.rejected,
		Expired:   ad.expired,
		Cancelled: ad.cancelled,
		InFlight:  ad.inflight,
		Queued:    ad.queued,
	}
}

// queueDepths snapshots the per-priority-class waiter counts.
func (ad *Admission) queueDepths() [numPriorities]int {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	var depths [numPriorities]int
	for p := 0; p < numPriorities; p++ {
		depths[p] = len(ad.queues[p])
	}
	return depths
}

// Run executes q through the wrapped Runner, subject to admission control:
// it starts immediately when a slot is free, waits FIFO within its priority
// class otherwise, and fails with a typed error when the queue is full
// (ErrRejected), the wait bound elapses (ErrExpired), or the ctx ends while
// queued (ctx.Err()). Once admitted, cancellation semantics are the wrapped
// Runner's own (Analyzer.Run returns the partial report with the cost
// incurred).
func (ad *Admission) Run(ctx context.Context, q analyzer.Query) (*analyzer.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ad.mu.Lock()
	if ad.inflight < ad.cfg.MaxInFlight {
		ad.inflight++
		ad.admitted++
		ad.mu.Unlock()
		return ad.exec(ctx, q, 0)
	}
	if ad.queued >= ad.cfg.MaxQueued {
		ad.rejected++
		ad.mu.Unlock()
		return nil, fmt.Errorf("%w (%d in flight, %d queued)", ErrRejected, ad.cfg.MaxInFlight, ad.cfg.MaxQueued)
	}
	w := &waiter{grant: make(chan struct{})}
	prio := priorityOf(q)
	ad.queues[prio] = append(ad.queues[prio], w)
	ad.queued++
	ad.mu.Unlock()

	//splint:wallclock queue-wait latency is a real-time service metric on live daemons
	waitStart := time.Now()
	var expire <-chan time.Time
	if ad.cfg.QueueWait > 0 {
		//splint:wallclock queue-wait expiry is a real-time service bound on live daemons
		t := time.NewTimer(ad.cfg.QueueWait)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-w.grant:
		// The releasing query transferred its slot (and counted the
		// admission) under the mutex.
		//splint:wallclock queue-wait latency is a real-time service metric on live daemons
		wait := time.Since(waitStart)
		ad.observeQueueWait(prio, wait)
		return ad.exec(ctx, q, wait)
	case <-ctx.Done():
		if ad.abandon(prio, w, &ad.cancelled) {
			return nil, ctx.Err()
		}
		// A grant raced in: we own a slot but the caller is gone. The grant
		// already counted an admission for a query that will never execute —
		// reclassify it as cancelled, then hand the slot on.
		ad.mu.Lock()
		ad.admitted--
		ad.cancelled++
		ad.mu.Unlock()
		ad.release()
		return nil, ctx.Err()
	case <-expire:
		if ad.abandon(prio, w, &ad.expired) {
			return nil, fmt.Errorf("%w (after %v)", ErrExpired, ad.cfg.QueueWait)
		}
		// Granted at the deadline boundary: the slot is ours, so run.
		//splint:wallclock queue-wait latency is a real-time service metric on live daemons
		wait := time.Since(waitStart)
		ad.observeQueueWait(prio, wait)
		return ad.exec(ctx, q, wait)
	}
}

// observeQueueWait records how long a queued query waited for its slot.
func (ad *Admission) observeQueueWait(prio int, wait time.Duration) {
	o := ad.obs.Load()
	if o == nil {
		return
	}
	o.queueWait.With(priorityName(prio)).Observe(wait.Seconds())
}

// exec runs an admitted query and releases its slot afterwards, recording
// the diagnosis outcome when instruments are attached. wait is how long the
// query sat in the overflow queue (zero when admitted immediately).
func (ad *Admission) exec(ctx context.Context, q analyzer.Query, wait time.Duration) (*analyzer.Report, error) {
	defer ad.release()
	if ad.Flight != nil {
		rec := trace.FromContext(ctx)
		if rec == nil {
			rec = trace.NewRecorder(analyzer.TraceID(q), "analyzer", q.Name())
			ctx = trace.NewContext(ctx, rec)
		}
		// Anchor at the query's own virtual start so the queue-wait span
		// sits at the root's opening instant — it is virtual-instant (the
		// clock never charges admission delay); the real wall wait rides
		// along only as the exempt Wall annotation, which Canonical strips.
		anchor := analyzer.QueryStart(q)
		rec.Anchor(anchor)
		rec.Record(trace.Span{
			ID: "adm", Parent: "0", Name: "queue-wait", Role: "analyzer",
			Start: anchor, End: anchor, Wall: wait.Nanoseconds(),
		})
	}
	o := ad.obs.Load()
	var rep *analyzer.Report
	var err error
	if o == nil {
		rep, err = ad.run.Run(ctx, q)
	} else {
		//splint:wallclock diagnosis wall latency is a real-time service metric on live daemons
		start := time.Now()
		rep, err = ad.run.Run(ctx, q)
		//splint:wallclock diagnosis wall latency is a real-time service metric on live daemons
		o.recordDiagnosis(q, rep, err, time.Since(start))
	}
	if ad.Flight != nil && rep != nil && rep.Trace != nil {
		ad.Flight.Add(*rep.Trace)
	}
	return rep, err
}

// abandon removes a still-queued waiter, bumping the given counter, and
// reports whether the waiter was still queued (false means a grant already
// transferred a slot to it).
func (ad *Admission) abandon(prio int, w *waiter, counter *uint64) bool {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	qs := ad.queues[prio]
	for i, cand := range qs {
		if cand == w {
			ad.queues[prio] = append(qs[:i], qs[i+1:]...)
			ad.queued--
			*counter++
			return true
		}
	}
	return false
}

// release frees one slot: the highest-priority oldest waiter inherits it,
// otherwise the in-flight count drops.
func (ad *Admission) release() {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	for prio := 0; prio < numPriorities; prio++ {
		if len(ad.queues[prio]) == 0 {
			continue
		}
		w := ad.queues[prio][0]
		ad.queues[prio] = ad.queues[prio][1:]
		ad.queued--
		ad.admitted++
		close(w.grant) // slot transfers; inflight stays constant
		return
	}
	ad.inflight--
}
