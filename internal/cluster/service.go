package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"switchpointer/internal/metrics"
	"switchpointer/internal/statesync"
	"switchpointer/internal/trace"
)

// DiagnoseResponse is the body POST /diagnose answers with. A fully
// successful query carries only Report; a cancelled/deadline-cut query that
// still produced a partial report carries both (Error explains the cut);
// admission failures carry only Error (with a non-200 status).
type DiagnoseResponse struct {
	Report *WireReport `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// NewAnalyzerHandler exposes the analyzer service plane over HTTP:
//
//	POST /diagnose — QueryEnvelope in, DiagnoseResponse out. Admission
//	                 failures map to status codes: queue full → 429,
//	                 queue wait expired → 503, malformed query → 400.
//	GET  /stats    — AdmissionStats counters.
//	GET  /metrics  — Prometheus text over an AnalyzerRegistry (admission
//	                 occupancy plus per-query-kind diagnosis families).
//	GET  /healthz  — statesync.Health JSON. The analyzer holds no telemetry
//	and needs no bootstrap, so it reports state "live" with
//	zero resident/evicted counts.
//	GET  /traces   — the flight recorder's trace index; /traces/<id> one
//	                 merged trace (only when a recorder is attached).
//
// Handlers are safe for concurrent requests; concurrency across diagnoses
// is exactly what the admission controller bounds.
func NewAnalyzerHandler(ad *Admission) http.Handler {
	return NewAnalyzerHandlerWith(ad, AnalyzerRegistry(ad), ad.Flight)
}

// NewAnalyzerHandlerWith is NewAnalyzerHandler with a caller-supplied metric
// registry (built by AnalyzerRegistry, possibly extended with process-level
// families) and flight recorder (nil disables the /traces endpoints; when
// non-nil it should be the same recorder as ad.Flight so served traces
// include the admission spans).
func NewAnalyzerHandlerWith(ad *Admission, reg *metrics.Registry, fr *trace.FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/diagnose", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var env QueryEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q, err := env.Query()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if env.TraceID != "" {
			// The client pinned a trace ID: install a recorder under that ID
			// so the admission controller adopts it instead of deriving one.
			ctx = trace.NewContext(ctx, trace.NewRecorder(env.TraceID, "analyzer", q.Name()))
		}
		rep, err := ad.Run(ctx, q)
		switch {
		case errors.Is(err, ErrRejected):
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		case errors.Is(err, ErrExpired):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil && rep == nil:
			// Validation or queue-side cancellation: no report to return.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := DiagnoseResponse{Report: WireFromReport(rep)}
		if err != nil {
			resp.Error = err.Error() // partial report: cost incurred so far
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, ad.Stats())
	})
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/healthz", statesync.HealthzHandler(nil, nil))
	if fr != nil {
		mux.Handle("/traces", http.StripPrefix("/traces", fr.Handler()))
		mux.Handle("/traces/", http.StripPrefix("/traces", fr.Handler()))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client submits queries to a running spd analyzer service.
type Client struct {
	// BaseURL is the analyzer service root, e.g. http://127.0.0.1:7643.
	BaseURL string
	// HTTP is the client to use (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Diagnose submits an envelope and returns the wire report. A partial
// report (server-side cancellation) is returned together with an error
// describing the cut; admission failures return nil and a typed-ish error
// carrying the server's explanation.
func (c *Client) Diagnose(ctx context.Context, env QueryEnvelope) (*WireReport, error) {
	body, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal envelope: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/diagnose", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: post /diagnose: %w", err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: /diagnose status %d: %s", httpResp.StatusCode, bytes.TrimSpace(raw))
	}
	var resp DiagnoseResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return resp.Report, fmt.Errorf("cluster: remote query cut short: %s", resp.Error)
	}
	return resp.Report, nil
}

// Stats fetches the admission counters.
func (c *Client) Stats(ctx context.Context) (AdmissionStats, error) {
	var stats AdmissionStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/stats", nil)
	if err != nil {
		return stats, err
	}
	httpResp, err := c.http().Do(req)
	if err != nil {
		return stats, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return stats, fmt.Errorf("cluster: /stats status %d", httpResp.StatusCode)
	}
	return stats, json.NewDecoder(httpResp.Body).Decode(&stats)
}

// WaitReady polls url (a /healthz endpoint) until the daemon behind it is
// ready or the timeout elapses — the readiness gate daemons and scripts use
// before pointing clients at a freshly started cluster. Ready means an HTTP
// 200 whose statesync.Health body reports state "live": a bootstrapping
// daemon answers 200 with state "syncing" while it absorbs its peer's
// snapshot, and WaitReady keeps polling until the bootstrap lands. A 200
// with a non-JSON body (a plain health endpoint) counts as live.
func WaitReady(ctx context.Context, url string, timeout time.Duration) error {
	//splint:wallclock readiness polling races a live daemon, not the simulation
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	var lastErr error
	//splint:wallclock readiness polling races a live daemon, not the simulation
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			switch {
			case rerr != nil:
				lastErr = rerr
			case resp.StatusCode != http.StatusOK:
				lastErr = fmt.Errorf("status %d", resp.StatusCode)
			default:
				var h statesync.Health
				if jerr := json.Unmarshal(body, &h); jerr == nil && h.State != "" && h.State != statesync.StateLive.String() {
					lastErr = fmt.Errorf("state %q", h.State)
				} else {
					return nil
				}
			}
		} else {
			lastErr = err
		}
		//splint:wallclock readiness polling races a live daemon, not the simulation
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("cluster: %s not ready after %v: %v", url, timeout, lastErr)
}
