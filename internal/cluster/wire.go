package cluster

import (
	"fmt"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
)

// QueryEnvelope is the JSON wire form of an analyzer.Query — the body of
// POST /diagnose. Kind selects the query type (the Query.Name values);
// the remaining fields carry that kind's parameters and the rest stay at
// their zero values.
type QueryEnvelope struct {
	Kind string `json:"kind"`

	// Alert parameterizes the alert-driven kinds (contention, red-lights,
	// cascade).
	Alert *hostagent.Alert `json:"alert,omitempty"`

	// Switch/Window/At parameterize the switch-driven kinds (load-imbalance,
	// top-k); K and Mode are top-k only.
	Switch netsim.NodeID      `json:"switch,omitempty"`
	K      int                `json:"k,omitempty"`
	Window simtime.EpochRange `json:"window,omitzero"`
	Mode   analyzer.TopKMode  `json:"mode,omitempty"`
	At     simtime.Time       `json:"at,omitempty"`

	// TraceID, when set, pins the diagnosis trace ID instead of letting the
	// analyzer derive it from the query (they coincide for well-formed
	// clients, since spctl derives it the same way).
	TraceID string `json:"trace_id,omitempty"`
}

// Envelope wraps an analyzer.Query in its wire form.
func Envelope(q analyzer.Query) (QueryEnvelope, error) {
	switch q := q.(type) {
	case analyzer.ContentionQuery:
		return QueryEnvelope{Kind: q.Name(), Alert: &q.Alert}, nil
	case *analyzer.ContentionQuery:
		return Envelope(*q)
	case analyzer.RedLightsQuery:
		return QueryEnvelope{Kind: q.Name(), Alert: &q.Alert}, nil
	case *analyzer.RedLightsQuery:
		return Envelope(*q)
	case analyzer.CascadeQuery:
		return QueryEnvelope{Kind: q.Name(), Alert: &q.Alert}, nil
	case *analyzer.CascadeQuery:
		return Envelope(*q)
	case analyzer.ImbalanceQuery:
		return QueryEnvelope{Kind: q.Name(), Switch: q.Switch, Window: q.Window, At: q.At}, nil
	case *analyzer.ImbalanceQuery:
		return Envelope(*q)
	case analyzer.TopKQuery:
		return QueryEnvelope{Kind: q.Name(), Switch: q.Switch, K: q.K, Window: q.Window, Mode: q.Mode, At: q.At}, nil
	case *analyzer.TopKQuery:
		return Envelope(*q)
	default:
		return QueryEnvelope{}, fmt.Errorf("cluster: unknown query type %T", q)
	}
}

// Query unwraps the envelope into the analyzer.Query it names.
func (e QueryEnvelope) Query() (analyzer.Query, error) {
	alert := func() (hostagent.Alert, error) {
		if e.Alert == nil {
			return hostagent.Alert{}, fmt.Errorf("cluster: %q query without an alert", e.Kind)
		}
		return *e.Alert, nil
	}
	switch e.Kind {
	case analyzer.ContentionQuery{}.Name():
		a, err := alert()
		return analyzer.ContentionQuery{Alert: a}, err
	case analyzer.RedLightsQuery{}.Name():
		a, err := alert()
		return analyzer.RedLightsQuery{Alert: a}, err
	case analyzer.CascadeQuery{}.Name():
		a, err := alert()
		return analyzer.CascadeQuery{Alert: a}, err
	case analyzer.ImbalanceQuery{}.Name():
		return analyzer.ImbalanceQuery{Switch: e.Switch, Window: e.Window, At: e.At}, nil
	case analyzer.TopKQuery{}.Name():
		return analyzer.TopKQuery{Switch: e.Switch, K: e.K, Window: e.Window, Mode: e.Mode, At: e.At}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown query kind %q", e.Kind)
	}
}

// WireReport is the JSON wire form of an analyzer.Report: every
// result-bearing field plus the clock's phase breakdown and round counters
// flattened into plain values. Two reports are equivalent exactly when
// their WireReports marshal to identical bytes — the e2e equivalence gate's
// definition of "byte-identical".
type WireReport struct {
	Kind       analyzer.Kind `json:"kind"`
	Conclusion string        `json:"conclusion"`

	Alert  *hostagent.Alert `json:"alert,omitempty"`
	Switch netsim.NodeID    `json:"switch,omitempty"`

	Culprits  []analyzer.Culprit                   `json:"culprits,omitempty"`
	PerSwitch map[netsim.NodeID][]analyzer.Culprit `json:"per_switch,omitempty"`
	Cascade   []netsim.FlowKey                     `json:"cascade,omitempty"`
	Links     []analyzer.LinkDistribution          `json:"links,omitempty"`
	Separated bool                                 `json:"separated,omitempty"`
	Boundary  uint64                               `json:"boundary,omitempty"`
	Flows     []hostagent.FlowBytes                `json:"flows,omitempty"`

	PointerHosts   int           `json:"pointer_hosts"`
	PrunedHosts    int           `json:"pruned_hosts"`
	HostsContacted int           `json:"hosts_contacted"`
	Consulted      []netsim.IPv4 `json:"consulted,omitempty"`
	ColdSegments   int           `json:"cold_segments,omitempty"`
	// ColdSkippedByIndex / TieredSegments: cold-tier index accounting —
	// segments excluded without decoding, and segments whose payloads aged
	// out of cold storage entirely.
	ColdSkippedByIndex int `json:"cold_skipped_by_index,omitempty"`
	TieredSegments     int `json:"tiered_segments,omitempty"`

	// Virtual-time cost accounting, flattened from the report's Clock.
	Phases          []rpc.Phase  `json:"phases,omitempty"`
	TotalVirtual    simtime.Time `json:"total_virtual_ns"`
	PointerRounds   int          `json:"pointer_rounds"`
	PointersCharged int          `json:"pointers_charged"`
	QueryRounds     int          `json:"query_rounds"`
	ColdRounds      int          `json:"cold_rounds,omitempty"`

	// TraceID names the diagnosis trace held in the daemons' flight
	// recorders (GET /traces/<id>); empty when tracing was disabled.
	TraceID string `json:"trace_id,omitempty"`
}

// WireFromReport flattens a Report (including its Clock) into wire form.
func WireFromReport(r *analyzer.Report) *WireReport {
	if r == nil {
		return nil
	}
	w := &WireReport{
		Kind:               r.Kind,
		Conclusion:         r.Conclusion,
		Switch:             r.Switch,
		Culprits:           r.Culprits,
		PerSwitch:          r.PerSwitch,
		Cascade:            r.Cascade,
		Links:              r.Links,
		Separated:          r.Separated,
		Boundary:           r.Boundary,
		Flows:              r.Flows,
		PointerHosts:       r.PointerHosts,
		PrunedHosts:        r.PrunedHosts,
		HostsContacted:     r.HostsContacted,
		Consulted:          r.Consulted,
		ColdSegments:       r.ColdSegments,
		ColdSkippedByIndex: r.ColdSkippedByIndex,
		TieredSegments:     r.TieredSegments,
	}
	if r.Alert.Flow != (netsim.FlowKey{}) || r.Alert.Kind != 0 {
		alert := r.Alert
		w.Alert = &alert
	}
	if len(w.PerSwitch) == 0 {
		w.PerSwitch = nil
	}
	if r.Clock != nil {
		w.Phases = r.Clock.Phases()
		w.TotalVirtual = r.Clock.Total()
		w.PointerRounds = r.Clock.PointerRounds()
		w.PointersCharged = r.Clock.PointersCharged()
		w.QueryRounds = r.Clock.QueryRounds()
		w.ColdRounds = r.Clock.ColdRounds()
	}
	w.TraceID = r.TraceID
	return w
}

// Total returns the end-to-end virtual debugging time.
func (w *WireReport) Total() simtime.Time { return w.TotalVirtual }
