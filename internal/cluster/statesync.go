package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/statesync"
)

// BootstrapHosts pulls every host agent's snapshot from a live peer host
// daemon at peerRoot (the root a HostMux serves, e.g. http://addr) into
// tb's agents, in sorted-IP order so progress accounting is deterministic.
// It returns total segments and records absorbed. The testbed may already
// be serving queries — that is exactly the syncing state.
func BootstrapHosts(ctx context.Context, b *statesync.Bootstrapper, peerRoot string, tb *scenario.Testbed) (segments, records int, err error) {
	ips := make([]netsim.IPv4, 0, len(tb.HostAgents))
	for ip := range tb.HostAgents {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		segs, recs, err := b.BootstrapHost(ctx, peerRoot+"/hosts/"+ip.String(), tb.HostAgents[ip])
		segments += segs
		records += recs
		if err != nil {
			return segments, records, fmt.Errorf("cluster: bootstrap host %s: %w", ip, err)
		}
	}
	return segments, records, nil
}

// BootstrapSwitches pulls every switch agent's snapshot (pointer structure,
// control store, MPH) from a live peer switch daemon at peerRoot into tb's
// agents, in sorted-ID order.
func BootstrapSwitches(ctx context.Context, b *statesync.Bootstrapper, peerRoot string, tb *scenario.Testbed) error {
	ids := make([]netsim.NodeID, 0, len(tb.SwitchAgents))
	for id := range tb.SwitchAgents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		url := peerRoot + "/switches/" + strconv.Itoa(int(id))
		if err := b.BootstrapSwitch(ctx, url, tb.SwitchAgents[id]); err != nil {
			return fmt.Errorf("cluster: bootstrap switch %d: %w", id, err)
		}
	}
	return nil
}
