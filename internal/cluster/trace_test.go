package cluster

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/simtime"
	"switchpointer/internal/trace"
)

// goldenTraceJSON renders the merged trace exactly the way `spctl -trace
// -json` does, so the committed golden gates both this test and the
// verify.sh trio smoke.
func goldenTraceJSON(t *testing.T, merged trace.Trace) []byte {
	t.Helper()
	data, err := json.MarshalIndent(merged.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// mergedFlightTrace collects one trace ID's per-role views from a loopback
// plane's three flight recorders and merges them.
func mergedFlightTrace(lb *Loopback, id string) trace.Trace {
	var views []trace.Trace
	for _, fr := range []*trace.FlightRecorder{lb.AnalyzerFlight, lb.HostFlight, lb.SwitchFlight} {
		if v, ok := fr.Get(id); ok {
			views = append(views, v)
		}
	}
	return MergeTraces(id, views...)
}

// TestRedLightsTraceGolden is the tentpole's determinism gate: the red-lights
// diagnosis, run through the full loopback service plane (alert pipeline →
// admission → remote-backend analyzer → host/switch daemons), must produce a
// merged trace byte-identical to the committed golden — and byte-identical
// again when the whole diagnosis is repeated.
func TestRedLightsTraceGolden(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	lb, err := NewLoopback(s.Testbed, AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	// The alert rides the pipeline first, exactly as the spd trio's
	// -alert-pipeline path does. The redlights trigger is a throughput-drop,
	// so the pipeline's verdict span lands under the contention-query trace
	// the forwarded alert would start — a separate trace from the explicit
	// red-lights query below, same as in a live trio.
	alert, err := s.Alert()
	if err != nil {
		t.Fatal(err)
	}
	pipe := NewAlertPipeline(s.Testbed.Topo, PipelineConfig{DedupWindow: simtime.Time(time.Second)}, nil)
	pipe.Flight = lb.AnalyzerFlight
	if !pipe.Offer(alert) {
		t.Fatal("pipeline suppressed the trigger alert")
	}
	pipeID := analyzer.TraceID(analyzer.ContentionQuery{Alert: alert})
	if pt, ok := lb.AnalyzerFlight.Get(pipeID); !ok || len(pt.Spans) == 0 || pt.Spans[0].ID != "pipe:forwarded" {
		t.Fatalf("pipeline verdict span missing from trace %s: %+v", pipeID, pt.Spans)
	}

	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	env, err := Envelope(q)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lb.Client.Diagnose(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceID == "" {
		t.Fatal("wire report carries no trace ID")
	}

	merged := mergedFlightTrace(lb, rep.TraceID)
	roles := map[string]bool{}
	for _, sp := range merged.Spans {
		roles[sp.Role] = true
	}
	for _, want := range []string{"analyzer", "host", "switch"} {
		if !roles[want] {
			t.Fatalf("merged trace has no %s spans (roles %v, %d spans)", want, roles, len(merged.Spans))
		}
	}

	got := goldenTraceJSON(t, merged)
	golden := filepath.Join("testdata", "redlights_trace.golden.json")
	want, err := os.ReadFile(golden)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote golden %s (%d spans)", golden, len(merged.Spans))
		want = got
	} else if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("merged trace diverged from golden %s\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}

	// Repeating the identical diagnosis must leave the trace byte-identical:
	// every span is deterministic, and the recorders dedup by span ID.
	if _, err := lb.Client.Diagnose(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	again := goldenTraceJSON(t, mergedFlightTrace(lb, rep.TraceID))
	if string(again) != string(got) {
		t.Fatalf("repeated diagnosis changed the trace\n--- first ---\n%s\n--- second ---\n%s", got, again)
	}
}

// TestTracingOffLeavesReportIdentical: disabling tracing must not move a
// single virtual-time metric — the trace is an observer of the clock, never
// a participant. Byte-equality is checked on the wire form with the trace ID
// cleared (the only field tracing itself owns).
func TestTracingOffLeavesReportIdentical(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}

	traced, err := s.Testbed.Analyzer.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if traced.TraceID == "" || traced.Trace == nil {
		t.Fatal("traced run carries no trace")
	}

	s.Testbed.Analyzer.DisableTracing = true
	defer func() { s.Testbed.Analyzer.DisableTracing = false }()
	untraced, err := s.Testbed.Analyzer.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if untraced.TraceID != "" || untraced.Trace != nil {
		t.Fatal("untraced run still carries a trace")
	}

	strip := func(w *WireReport) string {
		w.TraceID = ""
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	a, b := strip(WireFromReport(traced)), strip(WireFromReport(untraced))
	if a != b {
		t.Fatalf("tracing moved the report\n--- traced ---\n%s\n--- untraced ---\n%s", a, b)
	}
	if !strings.Contains(a, "total_virtual_ns") {
		t.Fatal("wire report lost its virtual-time accounting")
	}
}
