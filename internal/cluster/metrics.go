// Self-observability plane (metrics.go): per-role metric registries over a
// testbed's agents, plus the admission/diagnosis instruments. Deep
// deterministic packages (store, pointer, agents, statesync) never import
// the metrics package — they expose synchronized accessors, and the
// registries built here read them at scrape time through Func families, so
// a scrape can never perturb a replay and every frozen virtual-time metric
// renders byte-identically across scrapes.
package cluster

import (
	"net/http"
	"sort"
	"strconv"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/metrics"
	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/statesync"
	"switchpointer/internal/switchagent"
)

// sortedHostAgents fixes the scrape iteration order once: host agents by IP.
func sortedHostAgents(tb *scenario.Testbed) ([]string, []*hostagent.Agent) {
	ips := make([]netsim.IPv4, 0, len(tb.HostAgents))
	for ip := range tb.HostAgents {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	labels := make([]string, len(ips))
	agents := make([]*hostagent.Agent, len(ips))
	for i, ip := range ips {
		labels[i] = ip.String()
		agents[i] = tb.HostAgents[ip]
	}
	return labels, agents
}

// sortedSwitchAgents fixes the scrape iteration order once: switch agents by
// node ID.
func sortedSwitchAgents(tb *scenario.Testbed) ([]string, []*switchagent.Agent) {
	ids := make([]netsim.NodeID, 0, len(tb.SwitchAgents))
	for id := range tb.SwitchAgents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	labels := make([]string, len(ids))
	agents := make([]*switchagent.Agent, len(ids))
	for i, id := range ids {
		labels[i] = strconv.Itoa(int(id))
		agents[i] = tb.SwitchAgents[id]
	}
	return labels, agents
}

// registerReadiness adds the statesync progress families every role serves.
// A nil rd (a daemon that needs no bootstrap) reports ready=1 and zero
// progress — the families are always present so smoke tests can grep them.
func registerReadiness(reg *metrics.Registry, rd *statesync.Readiness) {
	reg.GaugeFunc("spd_ready", "1 once the daemon is live (bootstrap finished or never needed), 0 while syncing.", nil, func(emit metrics.Emit) {
		if rd == nil || rd.Live() {
			emit(1)
		} else {
			emit(0)
		}
	})
	progress := func(pick func(bs, br, ib, ir int64) int64) func(metrics.Emit) {
		return func(emit metrics.Emit) {
			if rd == nil {
				emit(0)
				return
			}
			emit(float64(pick(rd.Progress())))
		}
	}
	reg.CounterFunc("spd_statesync_bootstrap_segments_total", "Peer snapshot segments absorbed during bootstrap.", nil,
		progress(func(bs, _, _, _ int64) int64 { return bs }))
	reg.CounterFunc("spd_statesync_bootstrap_records_total", "Records absorbed from peer snapshot segments.", nil,
		progress(func(_, br, _, _ int64) int64 { return br }))
	reg.CounterFunc("spd_statesync_ingest_batches_total", "Live ingest batches applied.", nil,
		progress(func(_, _, ib, _ int64) int64 { return ib }))
	reg.CounterFunc("spd_statesync_ingest_records_total", "Records applied from the live ingest feed.", nil,
		progress(func(_, _, _, ir int64) int64 { return ir }))
}

// HostRegistry builds the host daemon's metric registry: per-agent store
// occupancy and shard-lock contention, telemetry absorption, cold read-back
// work, the cold segment log's maintenance counters, and bootstrap/ingest
// progress. Everything is collected at scrape time from synchronized
// accessors, so the registry is safe while the daemon serves.
func HostRegistry(tb *scenario.Testbed, rd *statesync.Readiness) *metrics.Registry {
	reg := metrics.NewRegistry()
	labels, agents := sortedHostAgents(tb)
	perHost := []string{"host"}
	each := func(get func(ag *hostagent.Agent) float64) func(metrics.Emit) {
		return func(emit metrics.Emit) {
			for i, ag := range agents {
				emit(get(ag), labels[i])
			}
		}
	}

	reg.GaugeFunc("spd_store_resident_records", "Flow records resident in the hot telemetry store.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.Store.Len()) }))
	reg.CounterFunc("spd_store_evicted_records_total", "Records evicted to cold storage by retention.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.Store.Evicted()) }))
	reg.GaugeFunc("spd_store_shard_generations", "Sum of per-shard merge generations (secondary-index rebuild pressure).", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.Store.Generations()) }))
	reg.CounterFunc("spd_store_lock_acquires_total", "Shard lock acquisitions on the record write path.", perHost,
		each(func(ag *hostagent.Agent) float64 { acq, _ := ag.Store.LockStats(); return float64(acq) }))
	reg.CounterFunc("spd_store_lock_contended_total", "Shard lock acquisitions that had to wait (contended TryLock).", perHost,
		each(func(ag *hostagent.Agent) float64 { _, cont := ag.Store.LockStats(); return float64(cont) }))

	reg.CounterFunc("spd_absorbed_packets_total", "Telemetry-tagged packets absorbed by the host agent.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.Received) }))
	reg.CounterFunc("spd_decode_errors_total", "Packets whose telemetry tag could not be decoded.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.DecodeErrors) }))

	reg.CounterFunc("spd_cold_segments_decoded_total", "Cold segments decoded to answer aged-out epoch windows.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.ColdStats().Segments) }))
	reg.CounterFunc("spd_cold_records_scanned_total", "Records decoded from cold segments.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.ColdStats().Records) }))
	reg.CounterFunc("spd_cold_records_returned_total", "Cold records that matched a query and were returned.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.ColdStats().Returned) }))
	reg.CounterFunc("spd_cold_segments_skipped_total", "Cold segments excluded by manifest indexes without decoding.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.ColdStats().SkippedByIndex) }))
	reg.CounterFunc("spd_cold_segments_tiered_total", "Query-visible cold segments whose payloads were tiered out.", perHost,
		each(func(ag *hostagent.Agent) float64 { return float64(ag.ColdStats().Tiered) }))

	eachLog := func(get func(c statesync.Counters) uint64) func(metrics.Emit) {
		return func(emit metrics.Emit) {
			for i, ag := range agents {
				var c statesync.Counters
				if l, ok := ag.ColdReader().(*statesync.SegmentLog); ok && l != nil {
					c = l.Counters()
				}
				emit(float64(get(c)), labels[i])
			}
		}
	}
	reg.CounterFunc("spd_coldlog_segment_writes_total", "Segments flushed into the cold log.", perHost,
		eachLog(func(c statesync.Counters) uint64 { return c.SegmentWrites }))
	reg.CounterFunc("spd_coldlog_segment_decodes_total", "Cold log segment payload decodes (read-back cost).", perHost,
		eachLog(func(c statesync.Counters) uint64 { return c.SegmentDecodes }))
	reg.CounterFunc("spd_coldlog_compact_runs_total", "Cold log compaction passes completed.", perHost,
		eachLog(func(c statesync.Counters) uint64 { return c.CompactRuns }))
	reg.CounterFunc("spd_coldlog_compacted_segments_total", "Input segments consumed by compaction.", perHost,
		eachLog(func(c statesync.Counters) uint64 { return c.CompactedSegments }))
	reg.CounterFunc("spd_coldlog_tiered_segments_total", "Segments aged out of the cold tier by tiering.", perHost,
		eachLog(func(c statesync.Counters) uint64 { return c.TieredSegments }))

	registerReadiness(reg, rd)
	return reg
}

// SwitchRegistry builds the switch daemon's metric registry: pointer pull
// service counts (total and approximate), the pointer structure's resident
// and full switch-memory footprint, sealed-slot push accounting, and the
// pushed control-store depth.
func SwitchRegistry(tb *scenario.Testbed, rd *statesync.Readiness) *metrics.Registry {
	reg := metrics.NewRegistry()
	labels, agents := sortedSwitchAgents(tb)
	perSwitch := []string{"switch"}
	each := func(get func(ag *switchagent.Agent) float64) func(metrics.Emit) {
		return func(emit metrics.Emit) {
			for i, ag := range agents {
				emit(get(ag), labels[i])
			}
		}
	}

	reg.CounterFunc("spd_pointer_pulls_total", "Analyzer pointer pulls served.", perSwitch,
		each(func(ag *switchagent.Agent) float64 { pulls, _ := ag.PullCounts(); return float64(pulls) }))
	reg.CounterFunc("spd_pointer_approx_pulls_total", "Pulls answered approximately (sketch backend or approx control-store slot).", perSwitch,
		each(func(ag *switchagent.Agent) float64 { _, approx := ag.PullCounts(); return float64(approx) }))
	reg.GaugeFunc("spd_pointer_resident_bytes", "Pointer structure resident bytes (live slots).", perSwitch,
		each(func(ag *switchagent.Agent) float64 { res, _ := ag.PointerFootprint(); return float64(res) }))
	reg.GaugeFunc("spd_switch_memory_bytes", "Full switch-memory footprint: pointer sets plus installed MPH.", perSwitch,
		each(func(ag *switchagent.Agent) float64 { _, mem := ag.PointerFootprint(); return float64(mem) }))
	reg.CounterFunc("spd_pointer_pushed_slots_total", "Sealed top-level slots pushed to persistent storage.", perSwitch,
		each(func(ag *switchagent.Agent) float64 { n, _ := ag.PushStats(); return float64(n) }))
	reg.CounterFunc("spd_pointer_pushed_bytes_total", "Encoded bytes of pushed sealed slots.", perSwitch,
		each(func(ag *switchagent.Agent) float64 { _, b := ag.PushStats(); return float64(b) }))
	reg.GaugeFunc("spd_control_store_slots", "Pushed slots resident in the control store.", perSwitch,
		each(func(ag *switchagent.Agent) float64 { return float64(ag.ControlStoreLen()) }))

	registerReadiness(reg, rd)
	return reg
}

// diagnosis latency buckets: virtual diagnosis cost sits in the tens of
// microseconds to tens of milliseconds; wall latency on a loopback cluster
// sits in the same decades.
var latencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// AnalyzerRegistry builds the analyzer daemon's metric registry: admission
// occupancy/outcome families read from the controller at scrape time, plus
// the push-style queue-wait and per-query-kind diagnosis instruments wired
// into the controller via Observe.
func AnalyzerRegistry(ad *Admission) *metrics.Registry {
	reg := metrics.NewRegistry()
	stat := func(pick func(AdmissionStats) float64) func(metrics.Emit) {
		return func(emit metrics.Emit) { emit(pick(ad.Stats())) }
	}
	reg.GaugeFunc("spd_admission_in_flight", "Diagnoses executing right now.", nil,
		stat(func(s AdmissionStats) float64 { return float64(s.InFlight) }))
	reg.GaugeFunc("spd_admission_queued", "Diagnoses waiting for a slot right now.", nil,
		stat(func(s AdmissionStats) float64 { return float64(s.Queued) }))
	reg.CounterFunc("spd_admission_admitted_total", "Queries that started executing.", nil,
		stat(func(s AdmissionStats) float64 { return float64(s.Admitted) }))
	reg.CounterFunc("spd_admission_rejected_total", "Queries refused because the queue was full.", nil,
		stat(func(s AdmissionStats) float64 { return float64(s.Rejected) }))
	reg.CounterFunc("spd_admission_expired_total", "Waiters that hit the queue-wait bound.", nil,
		stat(func(s AdmissionStats) float64 { return float64(s.Expired) }))
	reg.CounterFunc("spd_admission_cancelled_total", "Waiters whose context ended before a slot freed.", nil,
		stat(func(s AdmissionStats) float64 { return float64(s.Cancelled) }))
	reg.GaugeFunc("spd_admission_max_in_flight", "Configured concurrency bound.", nil,
		func(emit metrics.Emit) { emit(float64(ad.cfg.MaxInFlight)) })
	reg.GaugeFunc("spd_admission_max_queued", "Configured queue bound.", nil,
		func(emit metrics.Emit) { emit(float64(ad.cfg.MaxQueued)) })
	reg.GaugeFunc("spd_admission_queue_depth", "Waiters per priority class right now.", []string{"class"},
		func(emit metrics.Emit) {
			depths := ad.queueDepths()
			for p := 0; p < numPriorities; p++ {
				emit(float64(depths[p]), priorityName(p))
			}
		})
	ad.Observe(reg)
	registerReadiness(reg, nil)
	return reg
}

// priorityName labels an admission priority class for metrics.
func priorityName(p int) string {
	switch p {
	case prioUrgent:
		return "urgent"
	case prioAlert:
		return "alert"
	default:
		return "background"
	}
}

// admissionObs holds the push-style instruments the admission controller
// drives: queue-wait latency by class, and per-query-kind diagnosis
// outcomes, latency (virtual and wall), and rpc.Clock round/charge totals
// recorded when Analyzer.Run completes.
type admissionObs struct {
	queueWait *metrics.HistogramVec

	diagTotal       *metrics.CounterVec
	diagErrors      *metrics.CounterVec
	diagVirtual     *metrics.HistogramVec
	diagWall        *metrics.HistogramVec
	pointerRounds   *metrics.CounterVec
	pointersCharged *metrics.CounterVec
	queryRounds     *metrics.CounterVec
	coldRounds      *metrics.CounterVec
}

// Observe attaches metric instruments to the controller. Pass a registry to
// instrument queue waits and diagnosis completions; uninstrumented
// controllers (tests, benchmarks that must stay wall-clock-free) skip all
// recording.
func (ad *Admission) Observe(reg *metrics.Registry) {
	o := &admissionObs{
		queueWait:       reg.Histogram("spd_admission_queue_wait_seconds", "Wall time a query waited for an execution slot.", latencyBuckets, "class"),
		diagTotal:       reg.Counter("spd_diagnosis_total", "Diagnoses executed, by query kind.", "kind"),
		diagErrors:      reg.Counter("spd_diagnosis_errors_total", "Diagnoses that returned an error (including partial reports).", "kind"),
		diagVirtual:     reg.Histogram("spd_diagnosis_virtual_seconds", "Virtual-time diagnosis cost (rpc.Clock total).", latencyBuckets, "kind"),
		diagWall:        reg.Histogram("spd_diagnosis_wall_seconds", "Wall-clock diagnosis latency.", latencyBuckets, "kind"),
		pointerRounds:   reg.Counter("spd_diagnosis_pointer_rounds_total", "Pointer pull rounds charged, by query kind.", "kind"),
		pointersCharged: reg.Counter("spd_diagnosis_pointers_charged_total", "Pointer pulls charged, by query kind.", "kind"),
		queryRounds:     reg.Counter("spd_diagnosis_query_rounds_total", "Host query rounds charged, by query kind.", "kind"),
		coldRounds:      reg.Counter("spd_diagnosis_cold_rounds_total", "Cold read-back rounds charged, by query kind.", "kind"),
	}
	ad.obs.Store(o)
}

// recordDiagnosis accounts one completed Analyzer.Run.
func (o *admissionObs) recordDiagnosis(q analyzer.Query, rep *analyzer.Report, err error, wall time.Duration) {
	kind := q.Name()
	o.diagTotal.With(kind).Inc()
	if err != nil {
		o.diagErrors.With(kind).Inc()
	}
	o.diagWall.With(kind).Observe(wall.Seconds())
	if rep != nil && rep.Clock != nil {
		o.diagVirtual.With(kind).Observe(rep.Clock.Total().Seconds())
		o.pointerRounds.With(kind).Add(float64(rep.Clock.PointerRounds()))
		o.pointersCharged.With(kind).Add(float64(rep.Clock.PointersCharged()))
		o.queryRounds.With(kind).Add(float64(rep.Clock.QueryRounds()))
		o.coldRounds.With(kind).Add(float64(rep.Clock.ColdRounds()))
	}
}

// HostAgentStats is one host agent's row in the host daemon's GET /stats
// document.
type HostAgentStats struct {
	Host             string `json:"host"`
	AbsorbedPackets  uint64 `json:"absorbed_packets"`
	DecodeErrors     uint64 `json:"decode_errors"`
	ResidentRecords  int    `json:"resident_records"`
	EvictedRecords   uint64 `json:"evicted_records"`
	ShardGenerations uint64 `json:"shard_generations"`
	LockAcquires     uint64 `json:"lock_acquires"`
	LockContended    uint64 `json:"lock_contended"`

	ColdSegmentsDecoded uint64 `json:"cold_segments_decoded"`
	ColdRecordsReturned uint64 `json:"cold_records_returned"`
	ColdSegmentsSkipped uint64 `json:"cold_segments_skipped"`
}

// HostStatsDoc is the host daemon's GET /stats body.
type HostStatsDoc struct {
	State             string           `json:"state"`
	BootstrapSegments int64            `json:"bootstrap_segments"`
	BootstrapRecords  int64            `json:"bootstrap_records"`
	IngestBatches     int64            `json:"ingest_batches"`
	IngestRecords     int64            `json:"ingest_records"`
	Agents            []HostAgentStats `json:"agents"`
}

// HostStatsHandler serves the host daemon's GET /stats: one row per agent
// (absorption, store occupancy, lock contention, cold read-back) plus the
// daemon's bootstrap/ingest progress, agents sorted by IP.
func HostStatsHandler(tb *scenario.Testbed, rd *statesync.Readiness) http.Handler {
	labels, agents := sortedHostAgents(tb)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := HostStatsDoc{State: statesync.StateLive.String(), Agents: make([]HostAgentStats, 0, len(agents))}
		if rd != nil {
			doc.State = rd.State().String()
			doc.BootstrapSegments, doc.BootstrapRecords, doc.IngestBatches, doc.IngestRecords = rd.Progress()
		}
		for i, ag := range agents {
			acq, cont := ag.Store.LockStats()
			cold := ag.ColdStats()
			doc.Agents = append(doc.Agents, HostAgentStats{
				Host:                labels[i],
				AbsorbedPackets:     ag.Received,
				DecodeErrors:        ag.DecodeErrors,
				ResidentRecords:     ag.Store.Len(),
				EvictedRecords:      ag.Store.Evicted(),
				ShardGenerations:    ag.Store.Generations(),
				LockAcquires:        acq,
				LockContended:       cont,
				ColdSegmentsDecoded: cold.Segments,
				ColdRecordsReturned: cold.Returned,
				ColdSegmentsSkipped: cold.SkippedByIndex,
			})
		}
		writeJSON(w, doc)
	})
}

// SwitchAgentStats is one switch agent's row in the switch daemon's GET
// /stats document.
type SwitchAgentStats struct {
	Switch            string `json:"switch"`
	PointerPulls      uint64 `json:"pointer_pulls"`
	ApproxPulls       uint64 `json:"approx_pulls"`
	ResidentBytes     int    `json:"resident_bytes"`
	MemoryBytes       int    `json:"memory_bytes"`
	PushedSlots       uint64 `json:"pushed_slots"`
	PushedBytes       uint64 `json:"pushed_bytes"`
	ControlStoreSlots int    `json:"control_store_slots"`
}

// SwitchStatsDoc is the switch daemon's GET /stats body.
type SwitchStatsDoc struct {
	State  string             `json:"state"`
	Agents []SwitchAgentStats `json:"agents"`
}

// SwitchStatsHandler serves the switch daemon's GET /stats: one row per
// agent (pull service, pointer footprint, push accounting, control-store
// depth), agents sorted by switch ID.
func SwitchStatsHandler(tb *scenario.Testbed, rd *statesync.Readiness) http.Handler {
	labels, agents := sortedSwitchAgents(tb)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		doc := SwitchStatsDoc{State: statesync.StateLive.String(), Agents: make([]SwitchAgentStats, 0, len(agents))}
		if rd != nil {
			doc.State = rd.State().String()
		}
		for i, ag := range agents {
			pulls, approx := ag.PullCounts()
			res, mem := ag.PointerFootprint()
			slots, bytes := ag.PushStats()
			doc.Agents = append(doc.Agents, SwitchAgentStats{
				Switch:            labels[i],
				PointerPulls:      pulls,
				ApproxPulls:       approx,
				ResidentBytes:     res,
				MemoryBytes:       mem,
				PushedSlots:       slots,
				PushedBytes:       bytes,
				ControlStoreSlots: ag.ControlStoreLen(),
			})
		}
		writeJSON(w, doc)
	})
}
