package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/statesync"
	"switchpointer/internal/store"
)

// hostColdAnswers canonicalizes one agent's result payloads for all five
// host-level query kinds, EXCLUDING the cold cost counters — compaction
// changes how many segments a query decodes, never what it returns.
func hostColdAnswers(t *testing.T, ag *hostagent.Agent, switches []netsim.NodeID, flows []netsim.FlowKey) string {
	t.Helper()
	ctx := context.Background()
	out := map[string]any{}
	for _, sw := range switches {
		key := fmt.Sprintf("%d", sw)
		ans := ag.QueryHeaders(ctx, hostagent.HeadersQuery{Switch: sw, Epochs: simtime.EpochRange{Lo: 0, Hi: 1 << 30}})
		out["headers/"+key] = ans.Records
		out["topk/"+key] = ag.QueryTopK(ctx, sw, 100)
		out["flowsizes/"+key] = ag.QueryFlowSizes(ctx, sw)
	}
	for _, f := range flows {
		rec, ok := ag.LookupRecord(ctx, f)
		prio, known := ag.QueryPriority(ctx, f)
		out["record/"+f.String()] = map[string]any{"rec": rec, "ok": ok}
		out["priority/"+f.String()] = map[string]any{"prio": prio, "known": known}
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestCompactionEquivalenceAllKinds is the compaction acceptance gate:
// after staged evictions fragment every host's history across many cold
// segments, compacting the logs must leave every answer byte-identical —
// the full priority-contention diagnosis (culprits, verdict, hot-window
// virtual-time metrics) and all five host-level query kinds — while
// decoding fewer segments and charging no more cold-read-back time.
func TestCompactionEquivalenceAllKinds(t *testing.T) {
	src, err := BuildScenario("priority", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Testbed.Close()
	q, err := src.Query()
	if err != nil {
		t.Fatal(err)
	}

	// Reference sets captured before any eviction.
	var switches []netsim.NodeID
	for _, s := range src.Testbed.Topo.Switches() {
		switches = append(switches, s.NodeID())
	}
	flowsOf := map[netsim.IPv4][]netsim.FlowKey{}
	for ip, ag := range src.Testbed.HostAgents {
		for _, r := range ag.Store.All() {
			flowsOf[ip] = append(flowsOf[ip], r.Flow)
		}
	}

	// Staged eviction: repeated sweeps at increasing times fragment each
	// host's records across many small epoch-overlapping segments — the
	// state a long-running daemon accumulates.
	alpha := src.Testbed.Opt.Alpha
	logs := map[netsim.IPv4]*statesync.SegmentLog{}
	for ip, ag := range src.Testbed.HostAgents {
		seglog, err := statesync.NewSegmentLog("")
		if err != nil {
			t.Fatal(err)
		}
		ag.Store.SetRetention(store.Retention{HotEpochs: 1, Alpha: alpha, Cold: seglog})
		for sweep := simtime.Time(simtime.Millisecond); sweep <= 60*simtime.Millisecond; sweep += simtime.Millisecond {
			if _, err := ag.Store.Maintain(sweep); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ag.Store.Maintain(1 << 40); err != nil {
			t.Fatal(err)
		}
		if ag.Store.Len() != 0 {
			t.Fatalf("host %v still holds %d resident records", ip, ag.Store.Len())
		}
		ag.SetColdReader(seglog)
		logs[ip] = seglog
	}

	before, err := src.Testbed.Analyzer.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if before.ColdSegments == 0 {
		t.Fatal("fragmented diagnosis decoded no cold segments")
	}
	hostBefore := map[netsim.IPv4]string{}
	segsBefore := 0
	for ip, ag := range src.Testbed.HostAgents {
		hostBefore[ip] = hostColdAnswers(t, ag, switches, flowsOf[ip])
		segsBefore += logs[ip].Len()
	}

	// Compact every host's log.
	runs := 0
	for _, l := range logs {
		st, err := l.Compact(context.Background(), statesync.CompactPolicy{MinRun: 2})
		if err != nil {
			t.Fatal(err)
		}
		runs += st.Runs
	}
	if runs == 0 {
		t.Fatal("compaction found nothing to merge — the staged eviction produced no runs")
	}
	segsAfter := 0
	for ip := range logs {
		segsAfter += logs[ip].Len()
	}
	if segsAfter >= segsBefore {
		t.Fatalf("compaction left %d segments, had %d", segsAfter, segsBefore)
	}

	// Gate 1: all five host-level query kinds byte-identical per host.
	for ip, ag := range src.Testbed.HostAgents {
		if got := hostColdAnswers(t, ag, switches, flowsOf[ip]); got != hostBefore[ip] {
			t.Fatalf("host %v answers diverged after compaction\n--- before ---\n%s\n--- after ---\n%s",
				ip, hostBefore[ip], got)
		}
	}

	// Gate 2: the full diagnosis — same culprits and verdict, fewer
	// segments decoded, cold-read-back cost no higher, every hot-window
	// virtual-time phase byte-identical.
	after, err := src.Testbed.Analyzer.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := json.Marshal(WireFromReport(before).Culprits)
	ac, _ := json.Marshal(WireFromReport(after).Culprits)
	if string(bc) != string(ac) {
		t.Fatalf("culprits diverged after compaction\n--- before ---\n%s\n--- after ---\n%s", bc, ac)
	}
	if before.Kind != after.Kind || before.Conclusion != after.Conclusion {
		t.Fatalf("verdict diverged: %v/%q vs %v/%q", before.Kind, before.Conclusion, after.Kind, after.Conclusion)
	}
	if after.ColdSegments >= before.ColdSegments {
		t.Fatalf("diagnosis decoded %d cold segments after compaction, had %d", after.ColdSegments, before.ColdSegments)
	}
	if ba, aa := before.Clock.PhaseTotal("cold-read-back"), after.Clock.PhaseTotal("cold-read-back"); aa > ba {
		t.Fatalf("cold-read-back cost rose from %v to %v", ba, aa)
	}
	for _, ph := range before.Clock.Phases() {
		if ph.Name == "cold-read-back" {
			continue
		}
		if got := after.Clock.PhaseTotal(ph.Name); got != ph.Duration {
			t.Fatalf("hot-window phase %q changed: %v → %v", ph.Name, ph.Duration, got)
		}
	}
}
