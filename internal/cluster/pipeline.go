package cluster

import (
	"context"
	"sort"
	"sync"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/metrics"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/trace"
)

// PipelineConfig tunes the alert enrichment/dedup pipeline in front of
// admission.
type PipelineConfig struct {
	// DedupWindow suppresses an alert whose (kind, flow) matches one
	// forwarded less than a window ago, measured on the alerts' own
	// virtual DetectedAt clock. Zero disables deduplication.
	DedupWindow simtime.Time
	// Rate is the sustained forward rate in alerts per virtual second; the
	// token bucket refills on the DetectedAt clock. Zero disables rate
	// limiting.
	Rate float64
	// Burst is the token bucket capacity (default 1 when Rate > 0).
	Burst int
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = 1
	}
	return c
}

// EnrichedAlert is a raised alert annotated with directory context: the
// switch set its telemetry tuples implicate, the victim flow's topology
// path, and the diagnosis query the alert kind maps to — everything the
// admission controller's priority classifier and the analyzer need, attached
// before the alert crosses into the service plane.
type EnrichedAlert struct {
	Alert hostagent.Alert
	// Switches is the sorted, deduplicated set of switches named by the
	// alert's telemetry tuples.
	Switches []netsim.NodeID
	// Path is the victim flow's topology path (nil when the flow's
	// endpoints are unknown to the directory).
	Path []netsim.NodeID
	// Query is the diagnosis this alert triggers: red-lights for timeouts
	// (where is the transfer stuck), contention for throughput drops (who
	// is stealing the bandwidth).
	Query analyzer.Query
}

// PipelineStats is a snapshot of the pipeline's counters. Every received
// alert lands in exactly one of Deduped, RateLimited, or Forwarded.
type PipelineStats struct {
	// Received counts alerts offered to the pipeline.
	Received uint64 `json:"received"`
	// Deduped counts alerts suppressed as duplicates within the window.
	Deduped uint64 `json:"deduped"`
	// RateLimited counts alerts suppressed by the token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// Forwarded counts alerts enriched and handed to the forward sink.
	Forwarded uint64 `json:"forwarded"`
}

type dedupKey struct {
	kind hostagent.AlertKind
	flow netsim.FlowKey
}

// AlertPipeline sits between a testbed's alert bus and the admission
// controller: it deduplicates alert storms (a congestion event makes every
// affected transfer raise near-identical alerts), rate-limits the survivors
// on the alerts' own virtual clock so suppression counts are deterministic
// for a replayed scenario, and enriches what passes with directory context.
// All methods are safe for concurrent use; the forward sink runs outside the
// pipeline's lock, so it may call Admission.Run (or the network) directly.
type AlertPipeline struct {
	tp      *topo.Topology
	cfg     PipelineConfig
	forward func(EnrichedAlert)

	// Flight, when set, receives one instant span per offered alert under
	// the alert's derived diagnosis trace ID, so suppression decisions show
	// up in the same trace tree as the diagnosis they gated.
	Flight *trace.FlightRecorder

	mu         sync.Mutex
	lastSent   map[dedupKey]simtime.Time
	tokens     float64
	lastRefill simtime.Time
	primed     bool
	stats      PipelineStats
}

// NewAlertPipeline builds a pipeline over the directory tp whose surviving
// alerts are delivered to forward (called synchronously, outside the
// pipeline lock).
func NewAlertPipeline(tp *topo.Topology, cfg PipelineConfig, forward func(EnrichedAlert)) *AlertPipeline {
	return &AlertPipeline{
		tp:       tp,
		cfg:      cfg.withDefaults(),
		forward:  forward,
		lastSent: make(map[dedupKey]simtime.Time),
	}
}

// Stats returns a snapshot of the counters.
func (p *AlertPipeline) Stats() PipelineStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Offer runs one alert through dedup and rate limiting; survivors are
// enriched and forwarded before Offer returns true. Suppressed alerts
// return false.
func (p *AlertPipeline) Offer(a hostagent.Alert) bool {
	now := a.DetectedAt
	p.mu.Lock()
	p.stats.Received++
	key := dedupKey{kind: a.Kind, flow: a.Flow}
	if p.cfg.DedupWindow > 0 {
		if last, ok := p.lastSent[key]; ok && now >= last && now-last < p.cfg.DedupWindow {
			p.stats.Deduped++
			p.mu.Unlock()
			p.recordVerdict(a, "deduped")
			return false
		}
	}
	if p.cfg.Rate > 0 {
		if !p.primed {
			// The bucket starts full at the first alert's timestamp.
			p.tokens = float64(p.cfg.Burst)
			p.lastRefill = now
			p.primed = true
		} else if now > p.lastRefill {
			p.tokens += (now - p.lastRefill).Seconds() * p.cfg.Rate
			if max := float64(p.cfg.Burst); p.tokens > max {
				p.tokens = max
			}
			p.lastRefill = now
		}
		if p.tokens < 1 {
			p.stats.RateLimited++
			p.mu.Unlock()
			p.recordVerdict(a, "rate-limited")
			return false
		}
		p.tokens--
	}
	p.lastSent[key] = now
	p.stats.Forwarded++
	p.mu.Unlock()

	p.recordVerdict(a, "forwarded")
	ea := p.enrich(a)
	if p.forward != nil {
		p.forward(ea)
	}
	return true
}

// recordVerdict drops one instant span into the flight recorder under the
// trace ID the alert's diagnosis would use, so the pipeline's decision joins
// the diagnosis trace. Runs outside p.mu; the recorder has its own lock.
func (p *AlertPipeline) recordVerdict(a hostagent.Alert, verdict string) {
	if p.Flight == nil {
		return
	}
	var q analyzer.Query
	if a.Kind == hostagent.AlertTimeout {
		q = analyzer.RedLightsQuery{Alert: a}
	} else {
		q = analyzer.ContentionQuery{Alert: a}
	}
	p.Flight.Record(analyzer.TraceID(q), trace.Span{
		ID:     "pipe:" + verdict,
		Parent: "0",
		Name:   "alert-pipeline",
		Role:   "analyzer",
		Start:  a.DetectedAt,
		End:    a.DetectedAt,
		Attrs:  []trace.Attr{{Key: "verdict", Value: verdict}},
	})
}

// enrich attaches directory context to a surviving alert.
func (p *AlertPipeline) enrich(a hostagent.Alert) EnrichedAlert {
	ea := EnrichedAlert{Alert: a}
	seen := make(map[netsim.NodeID]bool, len(a.Tuples))
	for _, t := range a.Tuples {
		if !seen[t.Switch] {
			seen[t.Switch] = true
			ea.Switches = append(ea.Switches, t.Switch)
		}
	}
	sort.Slice(ea.Switches, func(i, j int) bool { return ea.Switches[i] < ea.Switches[j] })
	if p.tp != nil {
		if path, err := p.tp.PathOf(a.Flow); err == nil {
			ea.Path = path
		}
	}
	if a.Kind == hostagent.AlertTimeout {
		ea.Query = analyzer.RedLightsQuery{Alert: a}
	} else {
		ea.Query = analyzer.ContentionQuery{Alert: a}
	}
	return ea
}

// Run drains a subscription channel (hostagent.Bus.Subscribe) through the
// pipeline until the channel closes or ctx ends — the goroutine body the
// analyzer daemon starts when its alert pipeline is enabled.
func (p *AlertPipeline) Run(ctx context.Context, ch <-chan hostagent.Alert) {
	for {
		select {
		case <-ctx.Done():
			return
		case a, ok := <-ch:
			if !ok {
				return
			}
			p.Offer(a)
		}
	}
}

// Register adds the pipeline's counter families to a registry (scrape-time
// reads of Stats, so the families stay deterministic for replayed
// scenarios).
func (p *AlertPipeline) Register(reg *metrics.Registry) {
	stat := func(pick func(PipelineStats) uint64) func(metrics.Emit) {
		return func(emit metrics.Emit) { emit(float64(pick(p.Stats()))) }
	}
	reg.CounterFunc("spd_alerts_received_total", "Alerts offered to the enrichment pipeline.", nil,
		stat(func(s PipelineStats) uint64 { return s.Received }))
	reg.CounterFunc("spd_alerts_deduped_total", "Alerts suppressed as duplicates within the dedup window.", nil,
		stat(func(s PipelineStats) uint64 { return s.Deduped }))
	reg.CounterFunc("spd_alerts_ratelimited_total", "Alerts suppressed by the virtual-time token bucket.", nil,
		stat(func(s PipelineStats) uint64 { return s.RateLimited }))
	reg.CounterFunc("spd_alerts_forwarded_total", "Alerts enriched and forwarded toward admission.", nil,
		stat(func(s PipelineStats) uint64 { return s.Forwarded }))
}
