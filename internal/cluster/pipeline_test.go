package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// stormAlert builds a synthetic alert for pipeline unit tests: flow index f,
// detected at t.
func stormAlert(f int, t simtime.Time) hostagent.Alert {
	return hostagent.Alert{
		Kind:       hostagent.AlertThroughputDrop,
		Flow:       netsim.FlowKey{Src: netsim.IPv4(0x0a000001), Dst: netsim.IPv4(0x0a000100 + uint32(f)), SrcPort: 1000, DstPort: 80},
		DetectedAt: t,
	}
}

// TestPipelineDedup pins the dedup contract: a (kind, flow) pair forwarded
// less than a window ago is suppressed, the window is measured on the
// alerts' virtual DetectedAt clock, and only actual forwards arm it.
func TestPipelineDedup(t *testing.T) {
	var got []EnrichedAlert
	p := NewAlertPipeline(nil, PipelineConfig{DedupWindow: simtime.Second},
		func(ea EnrichedAlert) { got = append(got, ea) })

	if !p.Offer(stormAlert(1, 0)) {
		t.Fatal("first alert suppressed")
	}
	if p.Offer(stormAlert(1, 500*simtime.Millisecond)) {
		t.Fatal("duplicate within window forwarded")
	}
	if !p.Offer(stormAlert(2, 500*simtime.Millisecond)) {
		t.Fatal("distinct flow suppressed")
	}
	if !p.Offer(stormAlert(1, 1500*simtime.Millisecond)) {
		t.Fatal("alert beyond window suppressed")
	}
	// Same flow, different kind: a distinct dedup key.
	timeout := stormAlert(1, 1600*simtime.Millisecond)
	timeout.Kind = hostagent.AlertTimeout
	if !p.Offer(timeout) {
		t.Fatal("distinct kind suppressed")
	}

	st := p.Stats()
	want := PipelineStats{Received: 5, Deduped: 1, Forwarded: 4}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
	if len(got) != 4 {
		t.Fatalf("forward sink saw %d alerts, want 4", len(got))
	}
}

// TestPipelineRateLimit pins the token bucket: Burst forwards immediately,
// then the virtual-clock refill gates the rest.
func TestPipelineRateLimit(t *testing.T) {
	p := NewAlertPipeline(nil, PipelineConfig{Rate: 1, Burst: 2}, nil)

	forwarded := 0
	for f := 0; f < 5; f++ {
		if p.Offer(stormAlert(f, 0)) {
			forwarded++
		}
	}
	if forwarded != 2 {
		t.Fatalf("burst forwarded %d, want 2", forwarded)
	}
	// Half a second refills half a token: still gated.
	if p.Offer(stormAlert(10, 500*simtime.Millisecond)) {
		t.Fatal("forwarded before a full token refilled")
	}
	// A full second from start refills one token.
	if !p.Offer(stormAlert(11, simtime.Second)) {
		t.Fatal("suppressed after a full token refilled")
	}
	st := p.Stats()
	want := PipelineStats{Received: 7, RateLimited: 4, Forwarded: 3}
	if st != want {
		t.Fatalf("stats %+v, want %+v", st, want)
	}
}

// TestPipelineEnrichment drives a real scenario alert through enrichment:
// the tuple switch set comes out sorted and deduplicated, the victim flow's
// topology path is attached, and the alert kind maps to the right query.
func TestPipelineEnrichment(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	alert, err := s.Alert()
	if err != nil {
		t.Fatal(err)
	}
	if len(alert.Tuples) == 0 {
		t.Fatal("scenario alert carries no tuples")
	}

	var got EnrichedAlert
	p := NewAlertPipeline(s.Testbed.Topo, PipelineConfig{}, func(ea EnrichedAlert) { got = ea })
	if !p.Offer(alert) {
		t.Fatal("alert suppressed by empty config")
	}

	if len(got.Switches) == 0 {
		t.Fatal("no switches attached")
	}
	for i := 1; i < len(got.Switches); i++ {
		if got.Switches[i-1] >= got.Switches[i] {
			t.Fatalf("switches not sorted/unique: %v", got.Switches)
		}
	}
	if len(got.Path) == 0 {
		t.Fatal("no topology path attached")
	}
	// The scenario's trigger is a throughput-drop alert → contention query.
	if _, ok := got.Query.(analyzer.ContentionQuery); !ok {
		t.Fatalf("throughput-drop alert mapped to %T, want ContentionQuery", got.Query)
	}

	timeout := alert
	timeout.Kind = hostagent.AlertTimeout
	p.Offer(timeout)
	if _, ok := got.Query.(analyzer.RedLightsQuery); !ok {
		t.Fatalf("timeout alert mapped to %T, want RedLightsQuery", got.Query)
	}
}

// stormCounts replays the canonical deterministic alert storm — 10 waves ×
// 20 flows, 100 ms apart, dedup window 1 s, rate 1/s with burst 8 — and
// returns the pipeline stats. Shared with BenchmarkAlertStorm, whose
// reported counts are drift-gated.
func stormCounts(forward func(EnrichedAlert)) PipelineStats {
	p := NewAlertPipeline(nil, PipelineConfig{
		DedupWindow: simtime.Second,
		Rate:        1,
		Burst:       8,
	}, forward)
	for wave := 0; wave < 10; wave++ {
		at := simtime.Time(wave) * 100 * simtime.Millisecond
		for f := 0; f < 20; f++ {
			p.Offer(stormAlert(f, at))
		}
	}
	return p.Stats()
}

// TestAlertStormDeterministicCounts pins the storm arithmetic: wave 0's 20
// unique flows hit a full burst-8 bucket (8 forwarded, 12 rate-limited);
// every later wave dedups the 8 forwarded flows while the refill (0.1
// token/wave) never reaches a full token for the rest.
func TestAlertStormDeterministicCounts(t *testing.T) {
	st := stormCounts(nil)
	want := PipelineStats{Received: 200, Deduped: 72, RateLimited: 120, Forwarded: 8}
	if st != want {
		t.Fatalf("storm stats %+v, want %+v", st, want)
	}
}

// TestAlertStormBoundsAdmission is the end-to-end storm proof: a storm of
// 200 raw alerts pours through the pipeline into a live admission
// controller whose runner is deliberately stuck, and the controller's
// occupancy never exceeds its configured bounds — the pipeline plus
// admission together turn an unbounded alert storm into a bounded inflow.
func TestAlertStormBoundsAdmission(t *testing.T) {
	stub := &stubRunner{gate: make(chan struct{})}
	ad := NewAdmission(stub, AdmissionConfig{MaxInFlight: 2, MaxQueued: 3})

	var wg sync.WaitGroup
	forward := func(ea EnrichedAlert) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//nolint:errcheck // overflow rejections are expected under storm
			ad.Run(context.Background(), ea.Query)
		}()
	}
	st := stormCounts(forward)
	if st.Forwarded != 8 {
		t.Fatalf("storm forwarded %d, want 8", st.Forwarded)
	}

	// Let the 8 forwards reach the controller, then check occupancy while
	// the runner is still stuck.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := ad.Stats()
		if s.InFlight+s.Queued+int(s.Rejected) >= 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mid := ad.Stats()
	if mid.InFlight > 2 {
		t.Errorf("in-flight %d exceeds bound 2", mid.InFlight)
	}
	if mid.Queued > 3 {
		t.Errorf("queued %d exceeds bound 3", mid.Queued)
	}

	close(stub.gate)
	wg.Wait()
	end := ad.Stats()
	if end.InFlight != 0 || end.Queued != 0 {
		t.Fatalf("controller did not settle: %+v", end)
	}
	if end.Admitted+end.Rejected+end.Expired+end.Cancelled != uint64(st.Forwarded) {
		t.Fatalf("admission accounting %+v does not cover %d forwards", end, st.Forwarded)
	}
	if got := stub.peak.Load(); got > 2 {
		t.Fatalf("runner concurrency peak %d, want ≤ 2", got)
	}
}

// TestPipelineRun drains a channel like the analyzer daemon's subscription
// goroutine does.
func TestPipelineRun(t *testing.T) {
	var mu sync.Mutex
	var n int
	p := NewAlertPipeline(nil, PipelineConfig{}, func(EnrichedAlert) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	ch := make(chan hostagent.Alert, 4)
	for f := 0; f < 3; f++ {
		ch <- stormAlert(f, simtime.Time(f)*simtime.Millisecond)
	}
	close(ch)
	done := make(chan struct{})
	go func() { p.Run(context.Background(), ch); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return on channel close")
	}
	mu.Lock()
	defer mu.Unlock()
	if n != 3 {
		t.Fatalf("forwarded %d, want 3", n)
	}
}
