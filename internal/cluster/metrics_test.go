package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"testing"

	"switchpointer/internal/metrics"
)

// scrapeMetrics GETs url/metrics and returns the parsed families plus the
// raw body.
func scrapeMetrics(t *testing.T, base string) ([]metrics.Family, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics: status %d", base, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("content type %q, want %q", ct, metrics.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parse %s/metrics: %v\n%s", base, err, raw)
	}
	return fams, raw
}

// famByName indexes parsed families.
func famByName(fams []metrics.Family) map[string]metrics.Family {
	idx := make(map[string]metrics.Family, len(fams))
	for _, f := range fams {
		idx[f.Name] = f
	}
	return idx
}

// sumFamily totals a family's samples (ignoring histogram series).
func sumFamily(f metrics.Family) float64 {
	var sum float64
	for _, s := range f.Samples {
		if s.Name == f.Name {
			sum += s.Value
		}
	}
	return sum
}

func requireFamilies(t *testing.T, role string, idx map[string]metrics.Family, names ...string) {
	t.Helper()
	for _, n := range names {
		if _, ok := idx[n]; !ok {
			t.Errorf("%s /metrics missing family %s", role, n)
		}
	}
}

// TestMetricsEndpoints is the tentpole acceptance gate for the
// observability plane: after one diagnosis through the loopback trio, every
// role serves a parseable Prometheus /metrics covering its required metric
// families with values consistent with the work that just happened, and the
// host scrape — all frozen virtual-time metrics — renders byte-identically
// across repeated scrapes.
func TestMetricsEndpoints(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	q, err := s.Query()
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLoopback(s.Testbed, AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	if _, err := lb.Admission.Run(context.Background(), q); err != nil {
		t.Fatalf("diagnosis: %v", err)
	}

	// Host role.
	hostFams, hostRaw := scrapeMetrics(t, lb.HostURL)
	hostIdx := famByName(hostFams)
	requireFamilies(t, "host", hostIdx,
		"spd_store_resident_records", "spd_store_evicted_records_total",
		"spd_store_lock_acquires_total", "spd_store_lock_contended_total",
		"spd_absorbed_packets_total", "spd_decode_errors_total",
		"spd_cold_segments_decoded_total", "spd_coldlog_segment_writes_total",
		"spd_statesync_bootstrap_segments_total", "spd_ready")
	if got := sumFamily(hostIdx["spd_absorbed_packets_total"]); got <= 0 {
		t.Errorf("spd_absorbed_packets_total = %v, want > 0 after replay", got)
	}
	if got := sumFamily(hostIdx["spd_store_resident_records"]); got <= 0 {
		t.Errorf("spd_store_resident_records = %v, want > 0 after replay", got)
	}
	if got := sumFamily(hostIdx["spd_ready"]); got != 1 {
		t.Errorf("host spd_ready = %v, want 1", got)
	}
	if got := sumFamily(hostIdx["spd_store_lock_acquires_total"]); got <= 0 {
		t.Errorf("spd_store_lock_acquires_total = %v, want > 0 after replay", got)
	}

	// Determinism: the host registry carries only frozen virtual-time
	// metrics, so a second scrape must be byte-identical.
	_, hostRaw2 := scrapeMetrics(t, lb.HostURL)
	if !bytes.Equal(hostRaw, hostRaw2) {
		t.Error("host /metrics not byte-identical across scrapes")
	}

	// Switch role.
	switchFams, _ := scrapeMetrics(t, lb.SwitchURL)
	switchIdx := famByName(switchFams)
	requireFamilies(t, "switch", switchIdx,
		"spd_pointer_pulls_total", "spd_pointer_approx_pulls_total",
		"spd_pointer_resident_bytes", "spd_switch_memory_bytes",
		"spd_pointer_pushed_slots_total", "spd_control_store_slots", "spd_ready")
	if got := sumFamily(switchIdx["spd_pointer_pulls_total"]); got <= 0 {
		t.Errorf("spd_pointer_pulls_total = %v, want > 0 after a diagnosis", got)
	}
	if got := sumFamily(switchIdx["spd_pointer_resident_bytes"]); got <= 0 {
		t.Errorf("spd_pointer_resident_bytes = %v, want > 0", got)
	}

	// Analyzer role.
	anFams, _ := scrapeMetrics(t, lb.AnalyzerURL)
	anIdx := famByName(anFams)
	requireFamilies(t, "analyzer", anIdx,
		"spd_admission_in_flight", "spd_admission_queued",
		"spd_admission_admitted_total", "spd_admission_rejected_total",
		"spd_admission_queue_depth", "spd_diagnosis_total",
		"spd_diagnosis_virtual_seconds", "spd_ready")
	if got := sumFamily(anIdx["spd_admission_admitted_total"]); got != 1 {
		t.Errorf("spd_admission_admitted_total = %v, want 1", got)
	}
	diag := anIdx["spd_diagnosis_total"]
	found := false
	for _, smp := range diag.Samples {
		for _, l := range smp.Labels {
			if l[0] == "kind" && l[1] == "red-lights" && smp.Value == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("spd_diagnosis_total{kind=\"red-lights\"} != 1: %+v", diag.Samples)
	}
	// The virtual-cost histogram observed exactly one diagnosis.
	var virtCount float64
	for _, smp := range anIdx["spd_diagnosis_virtual_seconds"].Samples {
		if smp.Name == "spd_diagnosis_virtual_seconds_count" {
			virtCount += smp.Value
		}
	}
	if virtCount != 1 {
		t.Errorf("spd_diagnosis_virtual_seconds count = %v, want 1", virtCount)
	}
}

// TestStatsEndpoints pins the host and switch daemons' GET /stats JSON
// documents: per-agent rows, sorted, with values consistent with the replay.
func TestStatsEndpoints(t *testing.T) {
	s, err := BuildScenario("redlights", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Testbed.Close()
	s.Run()
	lb, err := NewLoopback(s.Testbed, AdmissionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	var hostDoc HostStatsDoc
	getJSON(t, lb.HostURL+"/stats", &hostDoc)
	if len(hostDoc.Agents) != len(s.Testbed.HostAgents) {
		t.Fatalf("host /stats rows %d, want %d", len(hostDoc.Agents), len(s.Testbed.HostAgents))
	}
	if !sort.SliceIsSorted(hostDoc.Agents, func(i, j int) bool {
		return hostDoc.Agents[i].Host < hostDoc.Agents[j].Host
	}) {
		t.Error("host /stats rows not sorted by host")
	}
	var absorbed uint64
	for _, row := range hostDoc.Agents {
		absorbed += row.AbsorbedPackets
	}
	if absorbed == 0 {
		t.Error("host /stats absorbed_packets all zero after replay")
	}
	if hostDoc.State != "live" {
		t.Errorf("host /stats state %q, want live", hostDoc.State)
	}

	var swDoc SwitchStatsDoc
	getJSON(t, lb.SwitchURL+"/stats", &swDoc)
	if len(swDoc.Agents) != len(s.Testbed.SwitchAgents) {
		t.Fatalf("switch /stats rows %d, want %d", len(swDoc.Agents), len(s.Testbed.SwitchAgents))
	}
	var mem int
	for _, row := range swDoc.Agents {
		mem += row.MemoryBytes
	}
	if mem == 0 {
		t.Error("switch /stats memory_bytes all zero")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
