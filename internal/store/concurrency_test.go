package store

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// TestConcurrentQueriesDuringAbsorption is the -race gate for the sharded
// store: a writer absorbs packets (including reroutes, which drive the
// index/memo invalidation paths) while query goroutines hammer every read
// API concurrently. Run under `go test -race ./internal/store` (part of
// `make verify`); without -race it still checks liveness and that queries
// only ever observe fully-absorbed records.
func TestConcurrentQueriesDuringAbsorption(t *testing.T) {
	st := New()
	const (
		flows    = 64
		packets  = 200
		queriers = 4
	)
	pathA := []netsim.NodeID{10, 11, 12}
	pathB := []netsim.NodeID{10, 13, 12} // reroute target
	epochs := []simtime.EpochRange{{Lo: 1, Hi: 2}, {Lo: 1, Hi: 2}, {Lo: 1, Hi: 2}}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: the simulated host's absorption loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for pkt := 0; pkt < packets; pkt++ {
			for f := 0; f < flows; f++ {
				flow := netsim.FlowKey{
					Src: netsim.IPv4(f + 1), Dst: 99,
					SrcPort: uint16(f), DstPort: 2, Proto: netsim.ProtoTCP,
				}
				path := pathA
				if (pkt/10+f)%2 == 1 { // periodic reroute churn
					path = pathB
				}
				rec := st.Acquire(flow)
				rec.Absorb(&netsim.Packet{Flow: flow, Size: 100},
					header.Decoded{Path: path, Epochs: epochs, TagIdx: 0},
					simtime.Time(pkt))
				st.Release(rec)
			}
		}
	}()

	// Flusher: the periodic "flush to local storage" must snapshot safely
	// while absorption is running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Flush(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Queriers: concurrent analyzer/HTTP-binding reads over every read API.
	// Each querier sends at most ONE error and then exits — the channel can
	// never fill, so a store regression reports its diagnostic instead of
	// blocking a send inside a shard-locked callback and deadlocking the
	// whole gate.
	errs := make(chan error, queriers)
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var fail error
				for _, sw := range []netsim.NodeID{10, 11, 12, 13} {
					prev := netsim.FlowKey{}
					first := true
					st.QueryBySwitch(sw, func(r *flowrec.Record) bool {
						if r.Pkts == 0 || r.Bytes != 100*r.Pkts {
							fail = fmt.Errorf("half-absorbed record observed: %v", r)
							return false
						}
						if !first && !flowLess(prev, r.Flow) {
							fail = fmt.Errorf("switch %d: order violated at %v", sw, r.Flow)
							return false
						}
						prev, first = r.Flow, false
						return true
					})
					if fail != nil {
						errs <- fail
						return
					}
				}
				st.View(netsim.FlowKey{Src: 1, Dst: 99, SrcPort: 0, DstPort: 2, Proto: netsim.ProtoTCP},
					func(r *flowrec.Record) { _ = r.Priority })
				_ = st.Len()
			}
		}(q)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Post-conditions: every flow fully absorbed and indexed exactly once
	// per traversed switch.
	if st.Len() != flows {
		t.Fatalf("Len = %d, want %d", st.Len(), flows)
	}
	seen := 0
	for _, sw := range []netsim.NodeID{11, 13} {
		seen += len(st.BySwitch(sw))
	}
	if seen != flows {
		t.Fatalf("switches 11+13 index %d flows, want %d", seen, flows)
	}
}

// TestBySwitchMergesShardsSorted pins the cross-shard merge contract: with
// enough flows to populate every shard, BySwitch returns one slice in
// global flow-key order, identical to a naive sort of the membership.
func TestBySwitchMergesShardsSorted(t *testing.T) {
	st := New()
	const n = 10 * numShards
	for i := n; i > 0; i-- { // reverse insertion order
		addRecord(st, netsim.IPv4(i), 7, []netsim.NodeID{42}, i)
	}
	got := st.BySwitch(42)
	if len(got) != n {
		t.Fatalf("BySwitch = %d records, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if !flowLess(got[i-1].Flow, got[i].Flow) {
			t.Fatalf("merge order violated at %d: %v !< %v", i, got[i-1].Flow, got[i].Flow)
		}
	}
	// Memoized: repeat call returns the cached merged slice.
	if again := st.BySwitch(42); &again[0] != &got[0] {
		t.Fatal("merged BySwitch not memoized")
	}
}

// TestAcquireReleaseZeroAlloc gates the absorption hot path: at steady
// state (flow known, path unchanged) an Acquire/Release cycle performs
// zero heap allocations.
func TestAcquireReleaseZeroAlloc(t *testing.T) {
	st := New()
	rec := addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	allocs := testing.AllocsPerRun(1000, func() {
		r := st.Acquire(rec.Flow)
		st.Release(r)
	})
	if allocs != 0 {
		t.Fatalf("Acquire/Release steady state: %v allocs/op, want 0", allocs)
	}
}
