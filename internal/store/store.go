// Package store is the embedded flow-record store at each end host: the
// reproduction's substitute for the MongoDB instance the paper's PathDump
// deployment flushes records to (§6).
//
// It keeps records in memory sharded by flow-key hash, behind two indexes
// (by flow and by traversed switch), and supports snapshot/restore through
// encoding/gob for the "flushed to local storage" behaviour.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// numShards is the shard count: a power of two so the flow-key hash maps to
// a shard with a mask. 16 shards keep lock contention negligible for the
// fan-out widths the analyzer uses (≤16 workers) at ~1 KB of fixed overhead
// per store.
const numShards = 16

// shard owns one slice of the flow-key space.
type shard struct {
	// mu guards recs, bySwitch, and indexed: write-locked by mutations
	// (Acquire/Release, Get-create, Reindex, Load), read-locked by queries.
	mu       sync.RWMutex
	recs     map[netsim.FlowKey]*flowrec.Record
	bySwitch map[netsim.NodeID]map[netsim.FlowKey]struct{}
	indexed  map[netsim.FlowKey][]netsim.NodeID // path as last indexed

	// memoMu guards sorted, the shard's memoized per-switch record slices.
	// It is a leaf lock: taken under mu (either mode), never the reverse.
	memoMu sync.Mutex
	sorted map[netsim.NodeID][]*flowrec.Record
}

// RecordStore indexes flow records by flow key and by traversed switch.
//
// Records are sharded by flow-key hash with per-shard locks, so one store
// serves many concurrent queries: BySwitch answers are memoized per shard
// and merged in deterministic flow-key-sorted order, with the merged answer
// cached until any shard's membership for that switch changes.
//
// # Concurrency contract
//
// Queries (BySwitch, QueryBySwitch, View, Lookup, All, Len) are safe to
// call concurrently with each other AND with mutations: each takes the
// affected shards' read locks. Flush is also mutation-safe — it encodes
// record clones snapshotted under shard read locks, never the live records.
// There is no longer a single-owner-per-round restriction — the analyzer
// may fan any number of concurrent queries at one store and the HTTP
// binding may serve requests while the owning host is still absorbing
// packets.
//
// Mutators take one shard's write lock. The packet hot path uses the
// Acquire/Release pair, which holds the flow's shard write-locked across
// the record mutation so concurrent queries never observe a half-absorbed
// record. Get and Reindex remain for single-writer callers (tests, tools);
// a record obtained from Get may only be mutated while no concurrent
// queries run, or via Acquire/Release.
//
// Records handed out by query APIs are read-only: QueryBySwitch and View
// hold the record's shard read-locked during the callback, which is the
// only race-free way to read fields of a record that is still absorbing
// packets. BySwitch/All return the shared record pointers for
// sim-thread/serialization use; callers reading them concurrently with
// absorption must go through the callback APIs instead.
type RecordStore struct {
	shards [numShards]shard

	// mergeMu guards merged and gens. It is never held while acquiring a
	// shard lock (BySwitch releases it before touching shards), so shard
	// write paths may take it freely.
	mergeMu sync.Mutex
	merged  map[netsim.NodeID]mergedEntry
	gens    map[netsim.NodeID]uint64

	// ret holds the optional eviction policy (see SetRetention/Maintain in
	// retention.go). Zero value = no eviction.
	ret retention

	// acquires/contended count Acquire calls and the subset that found
	// their shard's write lock already held — the shard-contention signal
	// the metrics plane exports. Atomics, so scrapes never touch a shard
	// lock.
	acquires  atomic.Uint64
	contended atomic.Uint64
}

// mergedEntry is a cached cross-shard BySwitch answer, valid while the
// switch's generation is unchanged.
type mergedEntry struct {
	recs []*flowrec.Record
	gen  uint64
}

// New returns an empty store.
func New() *RecordStore {
	st := &RecordStore{
		merged: make(map[netsim.NodeID]mergedEntry),
		gens:   make(map[netsim.NodeID]uint64),
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.recs = make(map[netsim.FlowKey]*flowrec.Record)
		sh.bySwitch = make(map[netsim.NodeID]map[netsim.FlowKey]struct{})
		sh.indexed = make(map[netsim.FlowKey][]netsim.NodeID)
		sh.sorted = make(map[netsim.NodeID][]*flowrec.Record)
	}
	return st
}

// shardOf hashes a flow key to its shard. The mix only spreads flows across
// shards — it never influences any query answer, which are all merged in
// flow-key-sorted order.
func (st *RecordStore) shardOf(flow netsim.FlowKey) *shard {
	h := uint64(flow.Src)<<32 | uint64(flow.Dst)
	h ^= uint64(flow.SrcPort)<<24 ^ uint64(flow.DstPort)<<8 ^ uint64(flow.Proto)
	// splitmix64-style avalanche so adjacent IPs land on different shards.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return &st.shards[h&(numShards-1)]
}

// Len returns the number of records.
func (st *RecordStore) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.recs)
		sh.mu.RUnlock()
	}
	return n
}

// Get returns the record for a flow, creating it if absent. See the
// concurrency contract for when the returned record may be mutated.
func (st *RecordStore) Get(flow netsim.FlowKey) *flowrec.Record {
	sh := st.shardOf(flow)
	sh.mu.Lock()
	r := getLocked(sh, flow)
	sh.mu.Unlock()
	return r
}

func getLocked(sh *shard, flow netsim.FlowKey) *flowrec.Record {
	r, ok := sh.recs[flow]
	if !ok {
		r = flowrec.New(flow)
		sh.recs[flow] = r
	}
	return r
}

// Lookup returns the record for a flow without creating it.
func (st *RecordStore) Lookup(flow netsim.FlowKey) (*flowrec.Record, bool) {
	sh := st.shardOf(flow)
	sh.mu.RLock()
	r, ok := sh.recs[flow]
	sh.mu.RUnlock()
	return r, ok
}

// View runs fn on the record for flow (if present) with the record's shard
// read-locked, so fn may read record fields concurrently with absorption
// into the store. It reports whether the record existed. fn must not call
// back into the store.
func (st *RecordStore) View(flow netsim.FlowKey, fn func(*flowrec.Record)) bool {
	sh := st.shardOf(flow)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.recs[flow]
	if !ok {
		return false
	}
	fn(r)
	return true
}

// Acquire returns the record for a flow — created if absent — with its
// shard write-locked for mutation. Every Acquire must be paired with a
// Release of the same record, which reindexes it and unlocks the shard.
// The pair is the packet-absorption hot path: it performs zero heap
// allocations at steady state and makes the mutation atomic with respect
// to concurrent queries.
func (st *RecordStore) Acquire(flow netsim.FlowKey) *flowrec.Record {
	sh := st.shardOf(flow)
	st.acquires.Add(1)
	if !sh.mu.TryLock() {
		st.contended.Add(1)
		sh.mu.Lock()
	}
	return getLocked(sh, flow)
}

// LockStats returns how many Acquire calls have run and how many of them
// found their shard write-contended (blocked behind another writer or any
// reader). The ratio is the shard-contention signal /metrics exports.
func (st *RecordStore) LockStats() (acquires, contended uint64) {
	return st.acquires.Load(), st.contended.Load()
}

// Generations returns the sum of every switch's merge-generation counter —
// it advances once per shard invalidation, so its rate tracks how often
// absorption churns the memoized BySwitch merges.
func (st *RecordStore) Generations() uint64 {
	st.mergeMu.Lock()
	defer st.mergeMu.Unlock()
	var total uint64
	for _, g := range st.gens {
		total += g
	}
	return total
}

// Release reindexes a record obtained from Acquire and unlocks its shard.
func (st *RecordStore) Release(r *flowrec.Record) {
	sh := st.shardOf(r.Flow)
	st.reindexLocked(sh, r)
	sh.mu.Unlock()
}

// Put installs (or wholesale replaces) a record under its shard's write
// lock and reindexes it — the state-sync ingestion primitive: snapshot
// bootstrap and live ingest feeds install records that were absorbed
// elsewhere, so there is no local record to Acquire and mutate. The store
// takes ownership of rec; callers must pass a clone when they keep using
// the record.
//
// Replacement is recency-guarded: a record strictly older than the
// resident one (by LastSeen, then Pkts) is dropped, so the freshest
// version wins regardless of arrival order — a snapshot segment cloned
// before an ingest update can race the feed and land after it without
// clobbering the newer state. Equal-recency Puts replace, keeping
// idempotent re-feeds honest. It reports whether rec was installed.
func (st *RecordStore) Put(rec *flowrec.Record) bool {
	sh := st.shardOf(rec.Flow)
	sh.mu.Lock()
	prev, replaced := sh.recs[rec.Flow]
	if replaced && (prev.LastSeen > rec.LastSeen ||
		(prev.LastSeen == rec.LastSeen && prev.Pkts > rec.Pkts)) {
		sh.mu.Unlock()
		return false
	}
	if replaced {
		// Wholesale replacement: the memoized per-switch answers hold the
		// OLD record pointer, so every switch the flow touches — old path
		// and new — must be invalidated even when the path is unchanged
		// (reindexLocked early-returns in that case and would leave stale
		// memos serving the superseded record).
		for _, sw := range sh.indexed[rec.Flow] {
			st.invalidate(sh, sw)
		}
	}
	sh.recs[rec.Flow] = rec
	st.reindexLocked(sh, rec)
	if replaced {
		for _, sw := range rec.Path {
			st.invalidate(sh, sw)
		}
	}
	sh.mu.Unlock()
	return true
}

// Reindex must be called after a record's path may have changed so the
// switch index stays consistent. Switches the record no longer traverses are
// removed from the index (a rerouted flow must stop answering queries for
// its old path), newly traversed switches are added, and only the affected
// switches' memoized answers are invalidated. When the path is unchanged —
// the steady-state per-packet case — Reindex returns without touching the
// index or the caches. Callers that mutate records concurrently with
// queries should use Acquire/Release, which folds this in.
func (st *RecordStore) Reindex(r *flowrec.Record) {
	sh := st.shardOf(r.Flow)
	sh.mu.Lock()
	st.reindexLocked(sh, r)
	sh.mu.Unlock()
}

func (st *RecordStore) reindexLocked(sh *shard, r *flowrec.Record) {
	prev := sh.indexed[r.Flow]
	if slices.Equal(prev, r.Path) {
		return
	}
	// Drop stale entries: switches on the old path but not the new one.
	for _, sw := range prev {
		if !slices.Contains(r.Path, sw) {
			if m, ok := sh.bySwitch[sw]; ok {
				delete(m, r.Flow)
			}
			st.invalidate(sh, sw)
		}
	}
	for _, sw := range r.Path {
		m, ok := sh.bySwitch[sw]
		if !ok {
			m = make(map[netsim.FlowKey]struct{})
			sh.bySwitch[sw] = m
		}
		if _, had := m[r.Flow]; !had {
			m[r.Flow] = struct{}{}
			st.invalidate(sh, sw)
		}
	}
	sh.indexed[r.Flow] = append(prev[:0], r.Path...)
}

// invalidate drops the shard's memoized slice for sw and bumps the switch's
// generation so an in-flight BySwitch merge cannot cache a stale answer.
// Called with sh.mu write-locked; takes only leaf locks.
func (st *RecordStore) invalidate(sh *shard, sw netsim.NodeID) {
	sh.memoMu.Lock()
	delete(sh.sorted, sw)
	sh.memoMu.Unlock()
	st.mergeMu.Lock()
	st.gens[sw]++
	delete(st.merged, sw)
	st.mergeMu.Unlock()
}

// shardBySwitch returns the shard's memoized sorted record slice for sw,
// building it on first use. Called with sh.mu read- or write-locked.
func (sh *shard) shardBySwitch(sw netsim.NodeID) []*flowrec.Record {
	sh.memoMu.Lock()
	defer sh.memoMu.Unlock()
	if out, ok := sh.sorted[sw]; ok {
		return out
	}
	keys, ok := sh.bySwitch[sw]
	if !ok {
		return nil
	}
	out := make([]*flowrec.Record, 0, len(keys))
	for k := range keys {
		out = append(out, sh.recs[k])
	}
	sortRecords(out)
	sh.sorted[sw] = out
	return out
}

// BySwitch returns all records whose path visits sw, in deterministic
// (flow-key-sorted) order: the per-shard memoized slices merged across
// shards. The merged result is itself memoized until any shard's membership
// for sw changes; callers must treat it as read-only. To read fields of the
// returned records concurrently with absorption, use QueryBySwitch instead.
func (st *RecordStore) BySwitch(sw netsim.NodeID) []*flowrec.Record {
	st.mergeMu.Lock()
	if e, ok := st.merged[sw]; ok && e.gen == st.gens[sw] {
		st.mergeMu.Unlock()
		return e.recs
	}
	gen := st.gens[sw]
	st.mergeMu.Unlock()

	// Collect the per-shard sorted slices under read locks, then k-way
	// merge. Shards are snapshotted one at a time; the generation check at
	// caching time rejects the merge if any membership changed meanwhile.
	var parts [numShards][]*flowrec.Record
	total := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		parts[i] = sh.shardBySwitch(sw)
		sh.mu.RUnlock()
		total += len(parts[i])
	}
	var out []*flowrec.Record // nil for an unknown/empty switch — cached too
	if total > 0 {
		out = mergeSorted(parts[:], total)
	}
	st.mergeMu.Lock()
	if st.gens[sw] == gen {
		st.merged[sw] = mergedEntry{recs: out, gen: gen}
	}
	st.mergeMu.Unlock()
	return out
}

// mergeSorted k-way merges per-shard slices that are each flow-key-sorted
// into one sorted slice.
func mergeSorted(parts [][]*flowrec.Record, total int) []*flowrec.Record {
	out := make([]*flowrec.Record, 0, total)
	var heads [numShards]int
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || flowLess(p[heads[i]].Flow, parts[best][heads[best]].Flow) {
				best = i
			}
		}
		out = append(out, parts[best][heads[best]])
		heads[best]++
	}
	return out
}

// QueryBySwitch calls fn for every record whose path visits sw, in
// flow-key-sorted order, holding each record's shard read-locked during its
// callback. This is the query executors' iteration primitive: it is safe to
// run concurrently with packet absorption (Acquire/Release) into the same
// store. fn must not call back into the store; returning false stops the
// iteration.
func (st *RecordStore) QueryBySwitch(sw netsim.NodeID, fn func(*flowrec.Record) bool) {
	for _, r := range st.BySwitch(sw) {
		sh := st.shardOf(r.Flow)
		sh.mu.RLock()
		cont := fn(r)
		sh.mu.RUnlock()
		if !cont {
			return
		}
	}
}

// All returns every record in deterministic order.
func (st *RecordStore) All() []*flowrec.Record {
	var out []*flowrec.Record
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, r := range sh.recs {
			out = append(out, r)
		}
		sh.mu.RUnlock()
	}
	sortRecords(out)
	return out
}

func flowLess(a, b netsim.FlowKey) bool { return flowrec.Less(a, b) }

func sortRecords(rs []*flowrec.Record) {
	sort.Slice(rs, func(i, j int) bool { return flowLess(rs[i].Flow, rs[j].Flow) })
}

// snapshot is the gob wire form.
type snapshot struct {
	Records []*flowrec.Record
}

// EncodeSegment writes one self-contained gob segment holding the given
// records — the schema Flush writes, Load reads, and DecodeSegment decodes.
// Every segment carries its own type information (fresh encoder), so
// segments are independently decodable in any order.
func EncodeSegment(w io.Writer, recs []*flowrec.Record) error {
	if err := gob.NewEncoder(w).Encode(&snapshot{Records: recs}); err != nil {
		return fmt.Errorf("store: encode segment: %w", err)
	}
	return nil
}

// DecodeSegment decodes one segment written by EncodeSegment (or Flush, or a
// retention eviction) back into records.
func DecodeSegment(r io.Reader) ([]*flowrec.Record, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode segment: %w", err)
	}
	return snap.Records, nil
}

// MatchesEpochs reports whether a record is addressed by the given epoch
// window: any of its per-switch epoch ranges overlaps it. The full range
// (EverySegment) matches records with no telemetry epochs too.
func MatchesEpochs(rec *flowrec.Record, epochs simtime.EpochRange) bool {
	if epochs == EveryEpoch {
		return true
	}
	for _, er := range rec.Epochs {
		if er.Overlaps(epochs) {
			return true
		}
	}
	return false
}

// EveryEpoch is the epoch window that addresses all records — what a
// snapshot pull without an explicit window uses.
var EveryEpoch = simtime.EpochRange{Lo: simtime.Epoch(-1 << 62), Hi: simtime.Epoch(1 << 62)}

// SnapshotShards calls fn once per non-empty shard with record clones
// matching the epoch window, in shard order. The clones are taken with only
// that shard's read lock held, and fn runs with no locks held at all — so a
// caller streaming a large store over the network (the state-sync snapshot
// path) never stalls packet absorption: at most one shard is briefly
// read-locked while the other fifteen keep absorbing and answering queries.
// The per-shard record slices are flow-key-sorted, so a concatenation of the
// shard segments is deterministic up to shard hashing (which is fixed).
// fn returning an error aborts the walk.
func (st *RecordStore) SnapshotShards(epochs simtime.EpochRange, fn func(recs []*flowrec.Record) error) error {
	for i := range st.shards {
		sh := &st.shards[i]
		var recs []*flowrec.Record
		sh.mu.RLock()
		for _, r := range sh.recs {
			if MatchesEpochs(r, epochs) {
				recs = append(recs, r.Clone())
			}
		}
		sh.mu.RUnlock()
		if len(recs) == 0 {
			continue
		}
		sortRecords(recs)
		if err := fn(recs); err != nil {
			return err
		}
	}
	return nil
}

// Flush serializes the store (the periodic "flush to local storage"). It
// snapshots record clones shard by shard under read locks, so it is safe to
// run concurrently with queries and with absorption — the encoder never
// touches a record that is still being mutated.
func (st *RecordStore) Flush(w io.Writer) error {
	var snap snapshot
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for _, r := range sh.recs {
			snap.Records = append(snap.Records, r.Clone())
		}
		sh.mu.RUnlock()
	}
	sortRecords(snap.Records)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Load restores a store serialized with Flush, replacing current contents.
// Load requires exclusive access: no queries or mutations may run
// concurrently.
func (st *RecordStore) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sh.recs = make(map[netsim.FlowKey]*flowrec.Record)
		sh.bySwitch = make(map[netsim.NodeID]map[netsim.FlowKey]struct{})
		sh.indexed = make(map[netsim.FlowKey][]netsim.NodeID)
		sh.memoMu.Lock()
		sh.sorted = make(map[netsim.NodeID][]*flowrec.Record)
		sh.memoMu.Unlock()
		sh.mu.Unlock()
	}
	st.mergeMu.Lock()
	st.merged = make(map[netsim.NodeID]mergedEntry)
	st.gens = make(map[netsim.NodeID]uint64)
	st.mergeMu.Unlock()
	for _, rec := range snap.Records {
		sh := st.shardOf(rec.Flow)
		sh.mu.Lock()
		sh.recs[rec.Flow] = rec
		st.reindexLocked(sh, rec)
		sh.mu.Unlock()
	}
	return nil
}
