// Package store is the embedded flow-record store at each end host: the
// reproduction's substitute for the MongoDB instance the paper's PathDump
// deployment flushes records to (§6).
//
// It keeps records in memory behind two indexes (by flow and by traversed
// switch) and supports snapshot/restore through encoding/gob for the
// "flushed to local storage" behaviour.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
)

// RecordStore indexes flow records by flow key and by traversed switch.
//
// The switch index memoizes its sorted per-switch record slices: BySwitch is
// answered from cache on the steady-state path and the cache is invalidated
// by Reindex exactly for the switches whose membership changed. Reindex
// itself is a no-op (and allocation-free) when the record's path is
// unchanged since it was last indexed — the common per-packet case.
//
// Concurrency: queries (BySwitch, Get, Lookup, All) are safe to run
// concurrently with each other — the memo cache fill is the one mutation on
// the query path and it is guarded by its own mutex, so the HTTP binding's
// per-request goroutines cannot race it. Mutations (Get-create, Absorb on a
// returned record, Reindex, Load) still require exclusive access relative
// to queries: the simulated testbed is single-threaded and the analyzer's
// fan-out dispatches each host at most once per round, which satisfies
// this; the real HTTP binding serves queries only while the simulation is
// idle (see rpc.NewHostHandler).
type RecordStore struct {
	recs     map[netsim.FlowKey]*flowrec.Record
	bySwitch map[netsim.NodeID]map[netsim.FlowKey]struct{}
	indexed  map[netsim.FlowKey][]netsim.NodeID // path as last indexed

	mu     sync.Mutex                          // guards sorted
	sorted map[netsim.NodeID][]*flowrec.Record // memoized BySwitch answers
}

// New returns an empty store.
func New() *RecordStore {
	return &RecordStore{
		recs:     make(map[netsim.FlowKey]*flowrec.Record),
		bySwitch: make(map[netsim.NodeID]map[netsim.FlowKey]struct{}),
		indexed:  make(map[netsim.FlowKey][]netsim.NodeID),
		sorted:   make(map[netsim.NodeID][]*flowrec.Record),
	}
}

// Len returns the number of records.
func (st *RecordStore) Len() int { return len(st.recs) }

// Get returns the record for a flow, creating it if absent.
func (st *RecordStore) Get(flow netsim.FlowKey) *flowrec.Record {
	r, ok := st.recs[flow]
	if !ok {
		r = flowrec.New(flow)
		st.recs[flow] = r
	}
	return r
}

// Lookup returns the record for a flow without creating it.
func (st *RecordStore) Lookup(flow netsim.FlowKey) (*flowrec.Record, bool) {
	r, ok := st.recs[flow]
	return r, ok
}

// Reindex must be called after a record's path may have changed so the
// switch index stays consistent. Switches the record no longer traverses are
// removed from the index (a rerouted flow must stop answering queries for
// its old path), newly traversed switches are added, and only the affected
// switches' memoized BySwitch answers are invalidated. When the path is
// unchanged — the steady-state per-packet case — Reindex returns without
// touching the index or the caches.
func (st *RecordStore) Reindex(r *flowrec.Record) {
	prev := st.indexed[r.Flow]
	if slices.Equal(prev, r.Path) {
		return
	}
	// Drop stale entries: switches on the old path but not the new one.
	for _, sw := range prev {
		if !slices.Contains(r.Path, sw) {
			if m, ok := st.bySwitch[sw]; ok {
				delete(m, r.Flow)
			}
			st.invalidate(sw)
		}
	}
	for _, sw := range r.Path {
		m, ok := st.bySwitch[sw]
		if !ok {
			m = make(map[netsim.FlowKey]struct{})
			st.bySwitch[sw] = m
		}
		if _, had := m[r.Flow]; !had {
			m[r.Flow] = struct{}{}
			st.invalidate(sw)
		}
	}
	st.indexed[r.Flow] = append(prev[:0], r.Path...)
}

func (st *RecordStore) invalidate(sw netsim.NodeID) {
	st.mu.Lock()
	delete(st.sorted, sw)
	st.mu.Unlock()
}

// BySwitch returns all records whose path visits sw, in deterministic
// (flow-key-sorted) order. The result is memoized until a Reindex changes
// the switch's membership; callers must treat it as read-only.
func (st *RecordStore) BySwitch(sw netsim.NodeID) []*flowrec.Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	if out, ok := st.sorted[sw]; ok {
		return out
	}
	keys, ok := st.bySwitch[sw]
	if !ok {
		return nil
	}
	out := make([]*flowrec.Record, 0, len(keys))
	for k := range keys {
		out = append(out, st.recs[k])
	}
	sortRecords(out)
	st.sorted[sw] = out
	return out
}

// All returns every record in deterministic order.
func (st *RecordStore) All() []*flowrec.Record {
	out := make([]*flowrec.Record, 0, len(st.recs))
	for _, r := range st.recs {
		out = append(out, r)
	}
	sortRecords(out)
	return out
}

func sortRecords(rs []*flowrec.Record) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Flow, rs[j].Flow
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
}

// snapshot is the gob wire form.
type snapshot struct {
	Records []*flowrec.Record
}

// Flush serializes the store (the periodic "flush to local storage").
func (st *RecordStore) Flush(w io.Writer) error {
	snap := snapshot{Records: st.All()}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Load restores a store serialized with Flush, replacing current contents.
func (st *RecordStore) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	st.recs = make(map[netsim.FlowKey]*flowrec.Record, len(snap.Records))
	st.bySwitch = make(map[netsim.NodeID]map[netsim.FlowKey]struct{})
	st.indexed = make(map[netsim.FlowKey][]netsim.NodeID, len(snap.Records))
	st.sorted = make(map[netsim.NodeID][]*flowrec.Record)
	for _, rec := range snap.Records {
		st.recs[rec.Flow] = rec
		st.Reindex(rec)
	}
	return nil
}
