// Package store is the embedded flow-record store at each end host: the
// reproduction's substitute for the MongoDB instance the paper's PathDump
// deployment flushes records to (§6).
//
// It keeps records in memory behind two indexes (by flow and by traversed
// switch) and supports snapshot/restore through encoding/gob for the
// "flushed to local storage" behaviour.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
)

// RecordStore indexes flow records by flow key and by traversed switch.
type RecordStore struct {
	recs     map[netsim.FlowKey]*flowrec.Record
	bySwitch map[netsim.NodeID]map[netsim.FlowKey]struct{}
}

// New returns an empty store.
func New() *RecordStore {
	return &RecordStore{
		recs:     make(map[netsim.FlowKey]*flowrec.Record),
		bySwitch: make(map[netsim.NodeID]map[netsim.FlowKey]struct{}),
	}
}

// Len returns the number of records.
func (st *RecordStore) Len() int { return len(st.recs) }

// Get returns the record for a flow, creating it if absent.
func (st *RecordStore) Get(flow netsim.FlowKey) *flowrec.Record {
	r, ok := st.recs[flow]
	if !ok {
		r = flowrec.New(flow)
		st.recs[flow] = r
	}
	return r
}

// Lookup returns the record for a flow without creating it.
func (st *RecordStore) Lookup(flow netsim.FlowKey) (*flowrec.Record, bool) {
	r, ok := st.recs[flow]
	return r, ok
}

// Reindex must be called after a record's path may have changed so the
// switch index stays consistent.
func (st *RecordStore) Reindex(r *flowrec.Record) {
	for _, sw := range r.Path {
		m, ok := st.bySwitch[sw]
		if !ok {
			m = make(map[netsim.FlowKey]struct{})
			st.bySwitch[sw] = m
		}
		m[r.Flow] = struct{}{}
	}
}

// BySwitch returns all records whose path visits sw, in deterministic
// (flow-key-sorted) order.
func (st *RecordStore) BySwitch(sw netsim.NodeID) []*flowrec.Record {
	keys, ok := st.bySwitch[sw]
	if !ok {
		return nil
	}
	out := make([]*flowrec.Record, 0, len(keys))
	for k := range keys {
		if r, live := st.recs[k]; live && r.Traverses(sw) {
			out = append(out, r)
		}
	}
	sortRecords(out)
	return out
}

// All returns every record in deterministic order.
func (st *RecordStore) All() []*flowrec.Record {
	out := make([]*flowrec.Record, 0, len(st.recs))
	for _, r := range st.recs {
		out = append(out, r)
	}
	sortRecords(out)
	return out
}

func sortRecords(rs []*flowrec.Record) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Flow, rs[j].Flow
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
}

// snapshot is the gob wire form.
type snapshot struct {
	Records []*flowrec.Record
}

// Flush serializes the store (the periodic "flush to local storage").
func (st *RecordStore) Flush(w io.Writer) error {
	snap := snapshot{Records: st.All()}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Load restores a store serialized with Flush, replacing current contents.
func (st *RecordStore) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	st.recs = make(map[netsim.FlowKey]*flowrec.Record, len(snap.Records))
	st.bySwitch = make(map[netsim.NodeID]map[netsim.FlowKey]struct{})
	for _, rec := range snap.Records {
		st.recs[rec.Flow] = rec
		st.Reindex(rec)
	}
	return nil
}
