package store

import (
	"encoding/json"
	"testing"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// manifestRecord builds a standalone record for manifest-index tests.
func manifestRecord(port uint16, last simtime.Time, path ...netsim.NodeID) *flowrec.Record {
	flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 1), Dst: netsim.IP(10, 0, byte(port>>8), byte(port)),
		SrcPort: port, DstPort: 80, Proto: 17}
	r := flowrec.New(flow)
	r.Path = append(r.Path, path...)
	for range path {
		r.Epochs = append(r.Epochs, simtime.EpochRange{Lo: simtime.Epoch(port), Hi: simtime.Epoch(port) + 2})
	}
	r.LastSeen = last
	return r
}

// TestNewSegmentManifestIndex pins the version-1 index: epoch union, sorted
// switch set, exact flow bounds, and a bloom with no false negatives.
func TestNewSegmentManifestIndex(t *testing.T) {
	recs := []*flowrec.Record{
		manifestRecord(30, 5, 7, 3),
		manifestRecord(10, 6, 3),
		manifestRecord(20, 7, 9),
	}
	m := NewSegmentManifest(recs)
	if m.V != manifestVersion {
		t.Fatalf("V = %d, want %d", m.V, manifestVersion)
	}
	if m.Flows != 3 {
		t.Fatalf("Flows = %d", m.Flows)
	}
	if m.Epochs != (simtime.EpochRange{Lo: 10, Hi: 32}) {
		t.Fatalf("Epochs = %+v", m.Epochs)
	}
	wantSw := []netsim.NodeID{3, 7, 9}
	if len(m.Switches) != len(wantSw) {
		t.Fatalf("Switches = %v", m.Switches)
	}
	for i, sw := range wantSw {
		if m.Switches[i] != sw {
			t.Fatalf("Switches = %v, want %v", m.Switches, wantSw)
		}
		if !m.MayContainSwitch(sw) {
			t.Fatalf("MayContainSwitch(%d) = false", sw)
		}
	}
	if m.MayContainSwitch(4) {
		t.Fatal("MayContainSwitch(4) = true for a switch no record traversed")
	}
	if m.FlowLo == nil || m.FlowHi == nil {
		t.Fatal("flow bounds missing")
	}
	if m.FlowLo.SrcPort != 10 || m.FlowHi.SrcPort != 30 {
		t.Fatalf("bounds = %v..%v", m.FlowLo, m.FlowHi)
	}
	for _, r := range recs {
		if !m.MayContainFlow(r.Flow) {
			t.Fatalf("false negative for member flow %v", r.Flow)
		}
	}
	// A flow outside the key bounds is excluded without a bloom probe.
	if m.MayContainFlow(netsim.FlowKey{Src: netsim.IP(11, 0, 0, 1)}) {
		t.Fatal("flow above FlowHi not excluded")
	}
}

// TestFlowBloomDeterministicAndBounded pins the filter contract: identical
// input sets produce identical bytes (fixed seeds), membership never false-
// negatives, and the ~10 bits/flow geometry keeps the false-positive rate in
// the expected ~1% band.
func TestFlowBloomDeterministicAndBounded(t *testing.T) {
	const n = 1000
	build := func() *FlowBloom {
		b := NewFlowBloom(n)
		for i := 0; i < n; i++ {
			b.Add(netsim.FlowKey{Src: netsim.IPv4(i), Dst: netsim.IPv4(i * 7), SrcPort: uint16(i), DstPort: 80, Proto: 6})
		}
		return b
	}
	b1, b2 := build(), build()
	j1, err := json.Marshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(b2)
	if string(j1) != string(j2) {
		t.Fatal("identical input sets produced different filter bytes")
	}
	for i := 0; i < n; i++ {
		f := netsim.FlowKey{Src: netsim.IPv4(i), Dst: netsim.IPv4(i * 7), SrcPort: uint16(i), DstPort: 80, Proto: 6}
		if !b1.MayContain(f) {
			t.Fatalf("false negative for member %d", i)
		}
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		f := netsim.FlowKey{Src: netsim.IPv4(i + 1_000_000), Dst: netsim.IPv4(i), SrcPort: uint16(i), DstPort: 443, Proto: 6}
		if b1.MayContain(f) {
			fp++
		}
	}
	// 7 probes at 10 bits/flow target ~1%; allow generous slack (3%) so the
	// gate never flakes while still catching a broken hash.
	if fp > probes*3/100 {
		t.Fatalf("false positive rate %d/%d exceeds 3%%", fp, probes)
	}
	if words := (n*bloomBitsPerFlow + 63) / 64; b1.SizeBytes() != words*8 {
		t.Fatalf("SizeBytes = %d, want %d", b1.SizeBytes(), words*8)
	}
}

// TestSegmentManifestJSONRoundTrip pins the persisted form: a full
// version-1 manifest survives marshal/unmarshal with its index intact.
func TestSegmentManifestJSONRoundTrip(t *testing.T) {
	recs := []*flowrec.Record{manifestRecord(5, 1, 2), manifestRecord(6, 2, 4)}
	m := NewSegmentManifest(recs)
	m.Bytes = 123
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back SegmentManifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, _ := json.Marshal(back)
	if string(raw) != string(raw2) {
		t.Fatalf("round trip diverged:\n%s\n%s", raw, raw2)
	}
	for _, r := range recs {
		if !back.MayContainFlow(r.Flow) {
			t.Fatalf("round-tripped manifest lost member %v", r.Flow)
		}
	}
	if back.MayContainSwitch(9) {
		t.Fatal("round-tripped manifest lost switch index")
	}
}

// TestSegmentManifestLegacyConservative pins backward compatibility: a bare
// pre-index manifest (no v/index fields — what old manifest.jsonl lines
// hold) must match every switch and every flow, so legacy segments are
// decoded rather than wrongly skipped.
func TestSegmentManifestLegacyConservative(t *testing.T) {
	var m SegmentManifest
	if err := json.Unmarshal([]byte(`{"epochs":{"lo":3,"hi":9},"flows":17,"bytes":4096}`), &m); err != nil {
		t.Fatal(err)
	}
	if m.V != 0 {
		t.Fatalf("legacy manifest parsed with V = %d", m.V)
	}
	if !m.MayContainSwitch(12345) {
		t.Fatal("legacy manifest excluded a switch")
	}
	if !m.MayContainFlow(netsim.FlowKey{Src: netsim.IP(1, 2, 3, 4), SrcPort: 9}) {
		t.Fatal("legacy manifest excluded a flow")
	}
	if !m.MayContainAnyFlow([]netsim.FlowKey{{}}) {
		t.Fatal("legacy manifest excluded the zero flow")
	}
}

// TestFlowBloomJSONRejectsGarbage pins the unmarshal guards.
func TestFlowBloomJSONRejectsGarbage(t *testing.T) {
	var b FlowBloom
	if err := json.Unmarshal([]byte(`{"k":0,"bits":""}`), &b); err == nil {
		t.Fatal("zero probe count accepted")
	}
	if err := json.Unmarshal([]byte(`{"k":7,"bits":"!!!"}`), &b); err == nil {
		t.Fatal("invalid base64 accepted")
	}
}
