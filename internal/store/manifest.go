package store

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"switchpointer/internal/bitset"
	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// manifestVersion is the current SegmentManifest index version. Version 0
// (the pre-index format) carries only the epoch range and counters; version
// 1 adds the per-segment flow-key index (switch set, flow-key bounds, bloom
// filter). Readers treat any unindexed manifest conservatively: it may
// contain anything, so it always matches.
const manifestVersion = 1

// SegmentManifest is the tiny per-segment index persisted alongside every
// evicted segment: enough for a cold read-back to decide whether a segment
// can possibly answer a query WITHOUT decoding it.
//
// The zero (version 0) manifest carries only Epochs/Flows/Bytes; version 1
// manifests (built by NewSegmentManifest) additionally index WHICH switches
// and WHICH flows the segment's records cover, so an epoch-overlapping
// query that asks about a switch or flows the segment cannot contain is
// skipped without touching the payload. Index fields are strictly
// conservative: a nil/absent field never excludes anything.
type SegmentManifest struct {
	// Epochs is the union of the evicted records' per-switch epoch ranges —
	// a segment whose Epochs does not overlap a query window holds no
	// matching record.
	Epochs simtime.EpochRange `json:"epochs"`
	// Flows is the number of records in the segment.
	Flows int `json:"flows"`
	// Bytes is the encoded segment size.
	Bytes int `json:"bytes"`

	// V is the manifest index version (0 = unindexed pre-index format;
	// manifestVersion = fully indexed).
	V int `json:"v,omitempty"`
	// Switches is the sorted set of switches traversed by any record in the
	// segment. A version ≥ 1 manifest whose Switches excludes a query's
	// switch cannot answer it.
	Switches []netsim.NodeID `json:"switches,omitempty"`
	// FlowLo/FlowHi are the exact min/max flow keys (flowrec.Less order) in
	// the segment — cheap range exclusion before the bloom probe.
	FlowLo *netsim.FlowKey `json:"flow_lo,omitempty"`
	FlowHi *netsim.FlowKey `json:"flow_hi,omitempty"`
	// Bloom is the compact flow-key membership filter (~10 bits/flow).
	Bloom *FlowBloom `json:"bloom,omitempty"`

	// Tiered marks a segment whose payload was archived or deleted by age
	// tiering: the manifest survives so queries report the gap honestly
	// (ErrTiered / TieredSegments) instead of silently missing data.
	Tiered bool `json:"tiered,omitempty"`
}

// MayContainSwitch reports whether the segment can hold a record that
// traversed sw. Unindexed (version 0) manifests always may.
func (m *SegmentManifest) MayContainSwitch(sw netsim.NodeID) bool {
	if m.V < 1 {
		return true
	}
	i := sort.Search(len(m.Switches), func(i int) bool { return m.Switches[i] >= sw })
	return i < len(m.Switches) && m.Switches[i] == sw
}

// MayContainFlow reports whether the segment can hold flow f's record.
// Unindexed (version 0) manifests always may.
func (m *SegmentManifest) MayContainFlow(f netsim.FlowKey) bool {
	if m.V < 1 {
		return true
	}
	if m.FlowLo != nil && flowrec.Less(f, *m.FlowLo) {
		return false
	}
	if m.FlowHi != nil && flowrec.Less(*m.FlowHi, f) {
		return false
	}
	if m.Bloom != nil && !m.Bloom.MayContain(f) {
		return false
	}
	return true
}

// MayContainAnyFlow reports whether the segment can hold any of the given
// flows' records.
func (m *SegmentManifest) MayContainAnyFlow(fs []netsim.FlowKey) bool {
	for _, f := range fs {
		if m.MayContainFlow(f) {
			return true
		}
	}
	return false
}

// NewSegmentManifest indexes one segment's records: the union of their
// per-switch epoch ranges (and exact-epoch accounting, so untagged flows
// stay addressable), the sorted switch set, the exact flow-key bounds, and
// a bloom filter over the flow keys. The caller sets Bytes after encoding.
func NewSegmentManifest(recs []*flowrec.Record) SegmentManifest {
	m := SegmentManifest{Flows: len(recs), V: manifestVersion}
	first := true
	widen := func(er simtime.EpochRange) {
		if first {
			m.Epochs = er
			first = false
			return
		}
		m.Epochs = m.Epochs.Union(er)
	}
	swset := make(map[netsim.NodeID]struct{})
	bloom := NewFlowBloom(len(recs))
	for i, r := range recs {
		for _, er := range r.Epochs {
			widen(er)
		}
		for e := range r.EpochBytes {
			widen(simtime.EpochRange{Lo: e, Hi: e})
		}
		for _, sw := range r.Path {
			swset[sw] = struct{}{}
		}
		bloom.Add(r.Flow)
		if i == 0 || flowLess(r.Flow, *m.FlowLo) {
			f := r.Flow
			m.FlowLo = &f
		}
		if i == 0 || flowLess(*m.FlowHi, r.Flow) {
			f := r.Flow
			m.FlowHi = &f
		}
	}
	if len(recs) > 0 {
		m.Bloom = bloom
	}
	m.Switches = make([]netsim.NodeID, 0, len(swset))
	for sw := range swset {
		m.Switches = append(m.Switches, sw)
	}
	sort.Slice(m.Switches, func(i, j int) bool { return m.Switches[i] < m.Switches[j] })
	if len(m.Switches) == 0 {
		m.Switches = nil
	}
	return m
}

// Bloom geometry: ~10 bits per flow and 7 probes target a ~1% false
// positive rate; fixed seeds keep the filter fully deterministic (detlint:
// the same record set always yields the same bytes).
const (
	bloomBitsPerFlow = 10
	bloomHashes      = 7
	bloomSeed1       = 0x9e3779b97f4a7c15
	bloomSeed2       = 0xc2b2ae3d27d4eb4f
)

// FlowBloom is a compact bloom filter over flow keys, backed by
// bitset.Set. The zero value is unusable; build with NewFlowBloom or
// unmarshal a persisted one.
type FlowBloom struct {
	k    int
	bits *bitset.Set
}

// NewFlowBloom sizes a filter for n flows at ~bloomBitsPerFlow bits each
// (minimum one 64-bit word).
func NewFlowBloom(n int) *FlowBloom {
	m := n * bloomBitsPerFlow
	if m < 64 {
		m = 64
	}
	return &FlowBloom{k: bloomHashes, bits: bitset.New(m)}
}

// Add inserts a flow key.
func (b *FlowBloom) Add(f netsim.FlowKey) {
	h1, h2 := bloomHash(f)
	m := uint64(b.bits.Len())
	for i := 0; i < b.k; i++ {
		b.bits.Set(int((h1 + uint64(i)*h2) % m))
	}
}

// MayContain reports whether f may have been added (never a false
// negative).
func (b *FlowBloom) MayContain(f netsim.FlowKey) bool {
	h1, h2 := bloomHash(f)
	m := uint64(b.bits.Len())
	for i := 0; i < b.k; i++ {
		if !b.bits.Get(int((h1 + uint64(i)*h2) % m)) {
			return false
		}
	}
	return true
}

// SizeBytes returns the filter's bit-array size in bytes.
func (b *FlowBloom) SizeBytes() int { return b.bits.SizeBytes() }

// bloomHash derives the double-hashing pair (h1, h2) from a flow key with
// fixed seeds — deterministic across processes and runs. h2 is forced odd
// so the probe sequence cycles through distinct positions for power-of-two
// and near-power-of-two filter sizes alike.
func bloomHash(f netsim.FlowKey) (h1, h2 uint64) {
	packed := uint64(f.SrcPort)<<40 | uint64(f.DstPort)<<24 | uint64(f.Proto)
	addrs := uint64(f.Src)<<32 | uint64(f.Dst)
	h1 = mix64(mix64(bloomSeed1^addrs) ^ packed)
	h2 = mix64(mix64(bloomSeed2^addrs) ^ packed)
	h2 |= 1
	return h1, h2
}

// mix64 is the splitmix64 finalizer — a fixed, seedless avalanche.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// flowBloomJSON is the persisted form: probe count plus the base64 of the
// bitset's binary encoding.
type flowBloomJSON struct {
	K    int    `json:"k"`
	Bits string `json:"bits"`
}

// MarshalJSON implements json.Marshaler.
func (b *FlowBloom) MarshalJSON() ([]byte, error) {
	raw, err := b.bits.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return json.Marshal(flowBloomJSON{K: b.k, Bits: base64.StdEncoding.EncodeToString(raw)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *FlowBloom) UnmarshalJSON(data []byte) error {
	var w flowBloomJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("store: flow bloom: %w", err)
	}
	if w.K <= 0 {
		return fmt.Errorf("store: flow bloom: invalid probe count %d", w.K)
	}
	raw, err := base64.StdEncoding.DecodeString(w.Bits)
	if err != nil {
		return fmt.Errorf("store: flow bloom: %w", err)
	}
	s := &bitset.Set{}
	if err := s.UnmarshalBinary(raw); err != nil {
		return fmt.Errorf("store: flow bloom: %w", err)
	}
	b.k, b.bits = w.K, s
	return nil
}

// ErrTiered is returned by ColdView.ReadSegment for a segment whose payload
// was archived or deleted by age tiering: its manifest remains addressable,
// but the data is gone from this tier. Queries surface the gap through
// TieredSegments accounting instead of failing.
var ErrTiered = errors.New("store: segment tiered out")
