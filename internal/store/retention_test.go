package store

import (
	"bytes"
	"testing"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// seedRecord inserts a record for flow with the given path and LastSeen,
// via the Acquire/Release mutation path so it is safe concurrently with
// Maintain sweeps and queries.
func seedRecord(st *RecordStore, port uint16, last simtime.Time, path ...netsim.NodeID) netsim.FlowKey {
	flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 1), Dst: netsim.IP(10, 0, byte(port>>8), byte(port)),
		SrcPort: port, DstPort: 80, Proto: 17}
	r := st.Acquire(flow)
	r.Path = append(r.Path[:0], path...)
	r.Epochs = make([]simtime.EpochRange, len(path))
	r.LastSeen = last
	r.Bytes = uint64(port)
	st.Release(r)
	return flow
}

// TestRetentionAgeEviction pins the age bound: records idle past the hot
// window leave memory through the gob sink, recent ones stay, and evicted
// flows stop answering by-switch queries.
func TestRetentionAgeEviction(t *testing.T) {
	st := New()
	var sink bytes.Buffer
	st.SetRetention(Retention{HotEpochs: 10, Alpha: simtime.Millisecond, Sink: &sink})

	const sw = netsim.NodeID(3)
	old1 := seedRecord(st, 1, 5*simtime.Millisecond, sw)
	old2 := seedRecord(st, 2, 20*simtime.Millisecond, sw)
	hot := seedRecord(st, 3, 95*simtime.Millisecond, sw)

	evicted, err := st.Maintain(100 * simtime.Millisecond) // cutoff = 90 ms
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 || st.Evicted() != 2 {
		t.Fatalf("evicted %d (counter %d), want 2", evicted, st.Evicted())
	}
	if _, ok := st.Lookup(old1); ok {
		t.Fatal("cold record 1 still resident")
	}
	if _, ok := st.Lookup(old2); ok {
		t.Fatal("cold record 2 still resident")
	}
	if _, ok := st.Lookup(hot); !ok {
		t.Fatal("hot record evicted")
	}
	if got := len(st.BySwitch(sw)); got != 1 {
		t.Fatalf("BySwitch after eviction: %d records, want 1", got)
	}

	// The sink segment is Flush-shaped: a fresh store Loads it.
	archived := New()
	if err := archived.Load(&sink); err != nil {
		t.Fatal(err)
	}
	if archived.Len() != 2 {
		t.Fatalf("archive holds %d records, want 2", archived.Len())
	}
	if _, ok := archived.Lookup(old1); !ok {
		t.Fatal("archive missing cold record 1")
	}
}

// TestRetentionSizeBound pins the size bound: beyond MaxRecords the coldest
// surplus leaves, regardless of age.
func TestRetentionSizeBound(t *testing.T) {
	st := New()
	st.SetRetention(Retention{MaxRecords: 4})
	var flows []netsim.FlowKey
	for i := 0; i < 10; i++ {
		flows = append(flows, seedRecord(st, uint16(i+1), simtime.Time(i)*simtime.Millisecond, 1))
	}
	evicted, err := st.Maintain(10 * simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 6 || st.Len() != 4 {
		t.Fatalf("evicted %d, len %d; want 6 evicted, 4 resident", evicted, st.Len())
	}
	for i, f := range flows {
		_, resident := st.Lookup(f)
		wantResident := i >= 6 // the 4 newest stay
		if resident != wantResident {
			t.Fatalf("flow %d resident=%v, want %v", i, resident, wantResident)
		}
	}
}

// TestRetentionDisabled pins the zero-value contract: no policy, no
// eviction.
func TestRetentionDisabled(t *testing.T) {
	st := New()
	seedRecord(st, 1, 0, 1)
	if n, err := st.Maintain(simtime.Second); err != nil || n != 0 {
		t.Fatalf("zero retention evicted %d (err %v)", n, err)
	}
	if st.Len() != 1 {
		t.Fatal("record vanished without a policy")
	}
}

// TestRetentionFlushAbsorbRace exercises Maintain concurrently with
// absorption and queries (meaningful under -race): the sweep must hold the
// same locks as any other mutator.
func TestRetentionFlushAbsorbRace(t *testing.T) {
	st := New()
	st.SetRetention(Retention{MaxRecords: 32})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			seedRecord(st, uint16(i%64+1), simtime.Time(i)*simtime.Millisecond, netsim.NodeID(i%4))
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := st.Maintain(simtime.Time(i) * 4 * simtime.Millisecond); err != nil {
			t.Fatal(err)
		}
		st.QueryBySwitch(netsim.NodeID(i%4), func(r *flowrec.Record) bool { return true })
	}
	<-done
	if _, err := st.Maintain(simtime.Second); err != nil {
		t.Fatal(err)
	}
	if st.Len() > 32 {
		t.Fatalf("store unbounded under churn: %d records", st.Len())
	}
}
