package store

import (
	"bytes"
	"testing"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

func addRecord(st *RecordStore, src, dst netsim.IPv4, path []netsim.NodeID, bytes int) *flowrec.Record {
	flow := netsim.FlowKey{Src: src, Dst: dst, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoTCP}
	rec := st.Get(flow)
	epochs := make([]simtime.EpochRange, len(path))
	for i := range epochs {
		epochs[i] = simtime.EpochRange{Lo: 5, Hi: 6}
	}
	rec.Absorb(&netsim.Packet{Flow: flow, Size: bytes},
		header.Decoded{Path: path, Epochs: epochs, TagIdx: 0}, 0)
	st.Reindex(rec)
	return rec
}

func TestGetCreatesOnce(t *testing.T) {
	st := New()
	f := netsim.FlowKey{Src: 1, Dst: 2}
	a := st.Get(f)
	b := st.Get(f)
	if a != b || st.Len() != 1 {
		t.Fatalf("Get should be idempotent")
	}
	if _, ok := st.Lookup(netsim.FlowKey{Src: 9}); ok {
		t.Fatalf("Lookup should not create")
	}
}

func TestBySwitchIndex(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	addRecord(st, 3, 4, []netsim.NodeID{11, 12}, 200)
	addRecord(st, 5, 6, []netsim.NodeID{13}, 300)
	if got := st.BySwitch(11); len(got) != 2 {
		t.Fatalf("BySwitch(11) = %d records", len(got))
	}
	if got := st.BySwitch(13); len(got) != 1 || got[0].Bytes != 300 {
		t.Fatalf("BySwitch(13) wrong")
	}
	if st.BySwitch(99) != nil {
		t.Fatalf("unknown switch should return nil")
	}
}

func TestBySwitchDeterministicOrder(t *testing.T) {
	st := New()
	addRecord(st, 9, 2, []netsim.NodeID{7}, 1)
	addRecord(st, 1, 2, []netsim.NodeID{7}, 2)
	addRecord(st, 5, 2, []netsim.NodeID{7}, 3)
	got := st.BySwitch(7)
	if len(got) != 3 || got[0].Flow.Src != 1 || got[1].Flow.Src != 5 || got[2].Flow.Src != 9 {
		t.Fatalf("order not deterministic: %v", got)
	}
}

func TestAll(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{1}, 10)
	addRecord(st, 3, 4, []netsim.NodeID{2}, 20)
	if len(st.All()) != 2 {
		t.Fatalf("All = %d", len(st.All()))
	}
}

func TestFlushLoadRoundTrip(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	addRecord(st, 3, 4, []netsim.NodeID{11}, 200)
	var buf bytes.Buffer
	if err := st.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	if err := st2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Fatalf("loaded %d records", st2.Len())
	}
	if got := st2.BySwitch(11); len(got) != 2 {
		t.Fatalf("index not rebuilt: %d", len(got))
	}
	rec, ok := st2.Lookup(netsim.FlowKey{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoTCP})
	if !ok || rec.Bytes != 100 {
		t.Fatalf("record lost in round trip")
	}
}

func TestLoadGarbage(t *testing.T) {
	st := New()
	if err := st.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatalf("garbage should error")
	}
}
