package store

import (
	"bytes"
	"testing"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

func addRecord(st *RecordStore, src, dst netsim.IPv4, path []netsim.NodeID, bytes int) *flowrec.Record {
	flow := netsim.FlowKey{Src: src, Dst: dst, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoTCP}
	rec := st.Get(flow)
	epochs := make([]simtime.EpochRange, len(path))
	for i := range epochs {
		epochs[i] = simtime.EpochRange{Lo: 5, Hi: 6}
	}
	rec.Absorb(&netsim.Packet{Flow: flow, Size: bytes},
		header.Decoded{Path: path, Epochs: epochs, TagIdx: 0}, 0)
	st.Reindex(rec)
	return rec
}

func TestGetCreatesOnce(t *testing.T) {
	st := New()
	f := netsim.FlowKey{Src: 1, Dst: 2}
	a := st.Get(f)
	b := st.Get(f)
	if a != b || st.Len() != 1 {
		t.Fatalf("Get should be idempotent")
	}
	if _, ok := st.Lookup(netsim.FlowKey{Src: 9}); ok {
		t.Fatalf("Lookup should not create")
	}
}

func TestBySwitchIndex(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	addRecord(st, 3, 4, []netsim.NodeID{11, 12}, 200)
	addRecord(st, 5, 6, []netsim.NodeID{13}, 300)
	if got := st.BySwitch(11); len(got) != 2 {
		t.Fatalf("BySwitch(11) = %d records", len(got))
	}
	if got := st.BySwitch(13); len(got) != 1 || got[0].Bytes != 300 {
		t.Fatalf("BySwitch(13) wrong")
	}
	if st.BySwitch(99) != nil {
		t.Fatalf("unknown switch should return nil")
	}
}

func TestBySwitchDeterministicOrder(t *testing.T) {
	st := New()
	addRecord(st, 9, 2, []netsim.NodeID{7}, 1)
	addRecord(st, 1, 2, []netsim.NodeID{7}, 2)
	addRecord(st, 5, 2, []netsim.NodeID{7}, 3)
	got := st.BySwitch(7)
	if len(got) != 3 || got[0].Flow.Src != 1 || got[1].Flow.Src != 5 || got[2].Flow.Src != 9 {
		t.Fatalf("order not deterministic: %v", got)
	}
}

func TestAll(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{1}, 10)
	addRecord(st, 3, 4, []netsim.NodeID{2}, 20)
	if len(st.All()) != 2 {
		t.Fatalf("All = %d", len(st.All()))
	}
}

func TestFlushLoadRoundTrip(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	addRecord(st, 3, 4, []netsim.NodeID{11}, 200)
	var buf bytes.Buffer
	if err := st.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := New()
	if err := st2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Fatalf("loaded %d records", st2.Len())
	}
	if got := st2.BySwitch(11); len(got) != 2 {
		t.Fatalf("index not rebuilt: %d", len(got))
	}
	rec, ok := st2.Lookup(netsim.FlowKey{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoTCP})
	if !ok || rec.Bytes != 100 {
		t.Fatalf("record lost in round trip")
	}
}

func TestLoadGarbage(t *testing.T) {
	st := New()
	if err := st.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatalf("garbage should error")
	}
}

// TestReindexRemovesStaleSwitches asserts the rerouting contract: when a
// record's path changes, switches it no longer traverses stop returning it
// from BySwitch (before PR 2 the index only ever grew, so a rerouted flow
// kept answering queries for its old path).
func TestReindexRemovesStaleSwitches(t *testing.T) {
	st := New()
	rec := addRecord(st, 1, 2, []netsim.NodeID{10, 11, 12}, 100)
	if got := st.BySwitch(11); len(got) != 1 {
		t.Fatalf("precondition: BySwitch(11) = %d", len(got))
	}
	// Reroute: the flow now takes 10→13→12.
	rec.Absorb(&netsim.Packet{Flow: rec.Flow, Size: 50},
		header.Decoded{
			Path:   []netsim.NodeID{10, 13, 12},
			Epochs: []simtime.EpochRange{{Lo: 7, Hi: 8}, {Lo: 7, Hi: 8}, {Lo: 7, Hi: 8}},
			TagIdx: 0,
		}, 1)
	st.Reindex(rec)
	if got := st.BySwitch(11); len(got) != 0 {
		t.Fatalf("stale switch 11 still returns %d record(s)", len(got))
	}
	for _, sw := range []netsim.NodeID{10, 13, 12} {
		if got := st.BySwitch(sw); len(got) != 1 {
			t.Fatalf("BySwitch(%d) = %d, want 1", sw, len(got))
		}
	}
}

// TestReindexInvalidatesMemoizedBySwitch asserts the memoized sorted slices
// refresh when membership changes.
func TestReindexInvalidatesMemoizedBySwitch(t *testing.T) {
	st := New()
	addRecord(st, 1, 2, []netsim.NodeID{7}, 1)
	first := st.BySwitch(7)
	if len(first) != 1 {
		t.Fatalf("BySwitch = %d", len(first))
	}
	// Memoized: a repeat query without mutation returns the cached slice.
	if again := st.BySwitch(7); &again[0] != &first[0] {
		t.Fatalf("BySwitch not memoized between mutations")
	}
	addRecord(st, 5, 2, []netsim.NodeID{7}, 2)
	if got := st.BySwitch(7); len(got) != 2 {
		t.Fatalf("memoized answer not invalidated: %d", len(got))
	}
}

// TestReindexUnchangedPathIsCheap asserts the per-packet steady state: a
// Reindex with an unchanged path allocates nothing.
func TestReindexUnchangedPathIsCheap(t *testing.T) {
	st := New()
	rec := addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	st.BySwitch(10)
	allocs := testing.AllocsPerRun(1000, func() { st.Reindex(rec) })
	if allocs != 0 {
		t.Fatalf("Reindex unchanged path: %v allocs/op, want 0", allocs)
	}
	if got := st.BySwitch(10); len(got) != 1 {
		t.Fatalf("index lost: %d", len(got))
	}
}

// TestPutReplacementInvalidatesMemos is the ingest-semantics gate: Put of a
// newer record for an already-indexed flow must invalidate the memoized
// per-switch answers even when the path is unchanged — otherwise queries
// keep serving the superseded record forever ("a later batch always wins"
// would be silently broken).
func TestPutReplacementInvalidatesMemos(t *testing.T) {
	st := New()
	old := addRecord(st, 1, 2, []netsim.NodeID{10, 11}, 100)
	if got := st.BySwitch(10); len(got) != 1 || got[0].Bytes != 100 {
		t.Fatalf("pre-replacement BySwitch = %+v", got)
	}

	// Same path, updated counters (a catch-up ingest batch).
	upd := old.Clone()
	upd.Bytes = 250
	st.Put(upd)
	if got := st.BySwitch(10); len(got) != 1 || got[0].Bytes != 250 {
		t.Fatalf("unchanged-path replacement not visible: %+v", got)
	}
	if got := st.BySwitch(11); len(got) != 1 || got[0].Bytes != 250 {
		t.Fatalf("second switch still serves the old record: %+v", got)
	}

	// Rerouted replacement: old-path-only switches stop answering, new
	// ones start, shared ones serve the new version.
	rerouted := upd.Clone()
	rerouted.Path = []netsim.NodeID{10, 12}
	rerouted.Epochs = []simtime.EpochRange{{Lo: 5, Hi: 6}, {Lo: 5, Hi: 6}}
	rerouted.Bytes = 400
	st.Put(rerouted)
	if got := st.BySwitch(11); len(got) != 0 {
		t.Fatalf("stale switch still indexed: %+v", got)
	}
	if got := st.BySwitch(12); len(got) != 1 || got[0].Bytes != 400 {
		t.Fatalf("new switch not indexed: %+v", got)
	}
	if got := st.BySwitch(10); len(got) != 1 || got[0].Bytes != 400 {
		t.Fatalf("shared switch serves a stale version: %+v", got)
	}

	// Fresh-flow Put (the bootstrap case) still indexes from scratch.
	fresh := New()
	fresh.Put(rerouted.Clone())
	if got := fresh.BySwitch(12); len(got) != 1 || got[0].Bytes != 400 {
		t.Fatalf("fresh Put not indexed: %+v", got)
	}
}

// TestPutRecencyGuard: a stale record (older LastSeen, or same LastSeen
// with fewer packets) must not clobber the resident one — arrival order
// does not decide, freshness does.
func TestPutRecencyGuard(t *testing.T) {
	st := New()
	cur := addRecord(st, 1, 2, []netsim.NodeID{10}, 100)
	cur.LastSeen = 500
	cur.Pkts = 9

	stale := cur.Clone()
	stale.LastSeen = 400
	stale.Bytes = 1
	if st.Put(stale) {
		t.Fatal("older LastSeen replaced the resident record")
	}
	if got := st.BySwitch(10); got[0].Bytes != 100 {
		t.Fatalf("stale Put visible: %+v", got[0])
	}

	fewer := cur.Clone()
	fewer.Pkts = 3
	fewer.Bytes = 2
	if st.Put(fewer) {
		t.Fatal("same LastSeen with fewer packets replaced the resident record")
	}

	newer := cur.Clone()
	newer.LastSeen = 600
	newer.Bytes = 777
	if !st.Put(newer) {
		t.Fatal("newer record rejected")
	}
	if got := st.BySwitch(10); got[0].Bytes != 777 {
		t.Fatalf("newer Put not visible: %+v", got[0])
	}
}
