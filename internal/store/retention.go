package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// Retention bounds a store's resident record set so long-running hosts keep
// only the hot window in memory — the "flush to local storage" policy made
// continuous. Two triggers compose:
//
//   - Age: a record idle for more than HotEpochs epochs (HotEpochs × Alpha
//     of virtual time since its LastSeen) is cold and gets evicted.
//   - Size: when the store still exceeds MaxRecords, the coldest surplus
//     (oldest LastSeen first) is evicted regardless of age.
//
// Evicted records leave through the store's gob Flush path: they are
// appended to Sink as a stream of Flush-compatible snapshots (nil Sink
// drops them). Zero triggers disable the respective bound; the zero
// Retention disables eviction entirely.
type Retention struct {
	// HotEpochs is the age bound in epochs (0 = no age-based eviction).
	HotEpochs int
	// Alpha is the epoch size the age math uses; required for HotEpochs.
	Alpha simtime.Time
	// MaxRecords caps the resident set (0 = unbounded).
	MaxRecords int
	// Sink receives evicted records as gob snapshot segments (one segment
	// per Maintain call that evicted anything; a segment decodes with the
	// same schema Flush writes and Load reads). Nil drops evictions.
	Sink io.Writer
	// Cold, when set, receives the same segments together with a
	// SegmentManifest each — the indexed flush path that makes cold
	// read-back possible (statesync.SegmentLog is the standard
	// implementation). Sink and Cold may be set independently; evictions go
	// to both.
	Cold ColdStore
}

// ColdStore is the write half of the indexed eviction path: it persists one
// encoded segment together with its manifest (see SegmentManifest in
// manifest.go). WriteSegment owns payload after the call returns.
type ColdStore interface {
	WriteSegment(m SegmentManifest, payload []byte) error
}

// ColdReader is the read-back seam over flushed segments: host agents
// consult it when a query's epoch window reaches past the hot window. View
// returns a stable point-in-time view of the log — safe to walk while
// eviction sweeps append, a compactor rewrites, or tiering retires
// segments underneath it. Implementations must make View allocation-free
// at steady state (the per-round index walk is a hot path).
type ColdReader interface {
	View() ColdView
}

// ColdView is one consistent snapshot of a cold store's segments. Indexes
// are positions within THIS view (they survive concurrent rewrites of the
// underlying log). Manifest returns a read-only pointer; ReadSegment
// decodes segment i and calls fn for each of its records (the records are
// owned by the caller), returning an error wrapping ErrTiered when the
// segment's payload was tiered out. Close releases the view — the view and
// any manifest pointers obtained from it must not be used afterwards.
type ColdView interface {
	Len() int
	Manifest(i int) *SegmentManifest
	ReadSegment(i int, fn func(*flowrec.Record)) error
	Close()
}

// retention is the store-side policy state; maintMu serializes Maintain
// sweeps and sink encoding against each other (shard access inside the
// sweep uses the normal shard locks, so sweeps run concurrently with
// queries and absorption).
type retention struct {
	maintMu sync.Mutex
	cfg     Retention
	evicted uint64
}

// SetRetention installs (or, with a zero Retention, removes) the eviction
// policy. Call before concurrent use or between Maintain sweeps.
func (st *RecordStore) SetRetention(r Retention) {
	st.ret.maintMu.Lock()
	defer st.ret.maintMu.Unlock()
	st.ret.cfg = r
}

// Evicted returns the number of records evicted by Maintain so far.
func (st *RecordStore) Evicted() uint64 {
	st.ret.maintMu.Lock()
	defer st.ret.maintMu.Unlock()
	return st.ret.evicted
}

// Maintain runs one eviction sweep at virtual time now, applying the
// installed Retention: cold records (age bound) leave first, then the
// coldest surplus beyond MaxRecords. Evicted records are flushed to the
// sink in deterministic (LastSeen, flow-key) order. It returns how many
// records were evicted this sweep.
//
// Maintain is safe to run concurrently with queries and packet absorption —
// removal holds the affected shard's write lock and invalidates the
// memoized per-switch answers, exactly like a path-change reindex. Sweeps
// themselves are serialized against each other.
func (st *RecordStore) Maintain(now simtime.Time) (int, error) {
	st.ret.maintMu.Lock()
	defer st.ret.maintMu.Unlock()
	cfg := st.ret.cfg

	var victims []*flowrec.Record

	// Age pass: evict everything idle past the hot window.
	if cfg.HotEpochs > 0 && cfg.Alpha > 0 {
		cutoff := now - simtime.Time(cfg.HotEpochs)*cfg.Alpha
		for i := range st.shards {
			sh := &st.shards[i]
			sh.mu.Lock()
			var cold []*flowrec.Record
			for _, r := range sh.recs {
				if r.LastSeen < cutoff {
					cold = append(cold, r)
				}
			}
			// Remove after collection so the map is not mutated mid-range.
			for _, r := range cold {
				st.removeLocked(sh, r)
			}
			sh.mu.Unlock()
			victims = append(victims, cold...)
		}
	}

	// Size pass: evict the coldest surplus beyond the cap.
	if cfg.MaxRecords > 0 {
		if surplus := st.Len() - cfg.MaxRecords; surplus > 0 {
			type coldKey struct {
				flow netsim.FlowKey
				last simtime.Time
			}
			var all []coldKey
			for i := range st.shards {
				sh := &st.shards[i]
				sh.mu.RLock()
				for k, r := range sh.recs {
					all = append(all, coldKey{flow: k, last: r.LastSeen})
				}
				sh.mu.RUnlock()
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].last != all[j].last {
					return all[i].last < all[j].last
				}
				return flowLess(all[i].flow, all[j].flow)
			})
			if surplus > len(all) {
				surplus = len(all)
			}
			for _, c := range all[:surplus] {
				sh := st.shardOf(c.flow)
				sh.mu.Lock()
				// Re-check LastSeen under the write lock: a record that
				// absorbed traffic since the snapshot is no longer the
				// coldest and must survive this sweep.
				if r, live := sh.recs[c.flow]; live && r.LastSeen == c.last {
					st.removeLocked(sh, r)
					victims = append(victims, r)
				}
				sh.mu.Unlock()
			}
		}
	}

	if len(victims) == 0 {
		return 0, nil
	}
	st.ret.evicted += uint64(len(victims))

	if cfg.Sink == nil && cfg.Cold == nil {
		return len(victims), nil
	}
	// Flush through the gob path in deterministic cold-first order. The
	// victims are no longer reachable from the store, so encoding the live
	// pointers is race-free. Each sweep writes one self-contained segment
	// (fresh encoder), so any segment decodes independently with Load.
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].LastSeen != victims[j].LastSeen {
			return victims[i].LastSeen < victims[j].LastSeen
		}
		return flowLess(victims[i].Flow, victims[j].Flow)
	})
	if cfg.Sink != nil {
		if err := gob.NewEncoder(cfg.Sink).Encode(&snapshot{Records: victims}); err != nil {
			return len(victims), fmt.Errorf("store: eviction flush: %w", err)
		}
	}
	if cfg.Cold != nil {
		var buf bytes.Buffer
		if err := EncodeSegment(&buf, victims); err != nil {
			return len(victims), err
		}
		m := NewSegmentManifest(victims)
		m.Bytes = buf.Len()
		if err := cfg.Cold.WriteSegment(m, buf.Bytes()); err != nil {
			return len(victims), fmt.Errorf("store: eviction segment: %w", err)
		}
	}
	return len(victims), nil
}

// removeLocked evicts one record from its (write-locked) shard: the record
// map, the by-switch index, the path memo, and every affected memoized
// answer.
func (st *RecordStore) removeLocked(sh *shard, r *flowrec.Record) {
	delete(sh.recs, r.Flow)
	for _, sw := range sh.indexed[r.Flow] {
		if m, ok := sh.bySwitch[sw]; ok {
			delete(m, r.Flow)
		}
		st.invalidate(sh, sw)
	}
	delete(sh.indexed, r.Flow)
}
