package flowrec

import (
	"testing"

	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

func sampleDecoded() header.Decoded {
	return header.Decoded{
		Mode:   header.ModeCommodity,
		Path:   []netsim.NodeID{1, 2, 3},
		Epochs: []simtime.EpochRange{{Lo: 4, Hi: 6}, {Lo: 5, Hi: 5}, {Lo: 5, Hi: 7}},
		TagIdx: 1,
	}
}

func samplePacket(size int, prio uint8) *netsim.Packet {
	return &netsim.Packet{
		Flow:     netsim.FlowKey{Src: 10, Dst: 20, SrcPort: 1, DstPort: 2, Proto: netsim.ProtoTCP},
		Priority: prio,
		Size:     size,
	}
}

func TestAbsorbFirstPacket(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	r.Absorb(samplePacket(1000, 3), sampleDecoded(), 7*simtime.Millisecond)
	if r.Pkts != 1 || r.Bytes != 1000 || r.Priority != 3 {
		t.Fatalf("basic counters wrong: %+v", r)
	}
	if len(r.Path) != 3 || r.TagIdx != 1 {
		t.Fatalf("path wrong: %+v", r)
	}
	if r.FirstSeen != 7*simtime.Millisecond || r.LastSeen != r.FirstSeen {
		t.Fatalf("timestamps wrong")
	}
	// Exact epoch accounting at tag switch (epoch 5).
	if r.EpochBytes[5] != 1000 {
		t.Fatalf("EpochBytes = %v", r.EpochBytes)
	}
}

func TestAbsorbMergesEpochRanges(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	r.Absorb(samplePacket(1000, 1), sampleDecoded(), simtime.Millisecond)
	d2 := sampleDecoded()
	d2.Epochs = []simtime.EpochRange{{Lo: 8, Hi: 9}, {Lo: 8, Hi: 8}, {Lo: 7, Hi: 9}}
	r.Absorb(samplePacket(500, 1), d2, 2*simtime.Millisecond)
	if r.Pkts != 2 || r.Bytes != 1500 {
		t.Fatalf("counters: %+v", r)
	}
	if r.Epochs[0].Lo != 4 || r.Epochs[0].Hi != 9 {
		t.Fatalf("union wrong: %v", r.Epochs[0])
	}
	if r.EpochBytes[5] != 1000 || r.EpochBytes[8] != 500 {
		t.Fatalf("EpochBytes = %v", r.EpochBytes)
	}
}

func TestAbsorbPathChangeResets(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	r.Absorb(samplePacket(100, 0), sampleDecoded(), 0)
	d2 := header.Decoded{
		Path:   []netsim.NodeID{1, 9, 3},
		Epochs: []simtime.EpochRange{{Lo: 10, Hi: 10}, {Lo: 10, Hi: 11}, {Lo: 11, Hi: 12}},
		TagIdx: 0,
	}
	r.Absorb(samplePacket(100, 0), d2, simtime.Millisecond)
	if r.Path[1] != 9 {
		t.Fatalf("path not updated: %v", r.Path)
	}
	if r.Epochs[1].Lo != 10 {
		t.Fatalf("epochs not reset: %v", r.Epochs)
	}
}

func TestEpochsAtAndBytesIn(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	r.Absorb(samplePacket(1000, 0), sampleDecoded(), 0)
	er, ok := r.EpochsAt(2)
	if !ok || er.Lo != 5 || er.Hi != 5 {
		t.Fatalf("EpochsAt(2) = %v %v", er, ok)
	}
	if _, ok := r.EpochsAt(42); ok {
		t.Fatalf("unknown switch should miss")
	}
	if !r.Traverses(3) || r.Traverses(42) {
		t.Fatalf("Traverses wrong")
	}
	if r.BytesIn(simtime.EpochRange{Lo: 5, Hi: 5}) != 1000 {
		t.Fatalf("BytesIn hit wrong")
	}
	if r.BytesIn(simtime.EpochRange{Lo: 6, Hi: 9}) != 0 {
		t.Fatalf("BytesIn miss wrong")
	}
}

func TestTagLinkRecorded(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	p := samplePacket(100, 0)
	p.PushTag(netsim.Tag{Type: netsim.TagLink, Value: 77})
	p.PushTag(netsim.Tag{Type: netsim.TagEpoch, Value: 5})
	r.Absorb(p, sampleDecoded(), 0)
	if r.TagLink != 77 {
		t.Fatalf("TagLink = %d", r.TagLink)
	}
}

func TestSortedEpochs(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	d := sampleDecoded()
	for _, e := range []simtime.Epoch{9, 3, 7} {
		d.Epochs[1] = simtime.EpochRange{Lo: e, Hi: e}
		r.Absorb(samplePacket(10, 0), d, 0)
	}
	got := r.SortedEpochs()
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("SortedEpochs = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	r.Absorb(samplePacket(100, 2), sampleDecoded(), 0)
	c := r.Clone()
	c.EpochBytes[99] = 1
	c.Path[0] = 42
	if _, ok := r.EpochBytes[99]; ok {
		t.Fatalf("clone aliases EpochBytes")
	}
	if r.Path[0] == 42 {
		t.Fatalf("clone aliases Path")
	}
	if c.Bytes != r.Bytes {
		t.Fatalf("clone lost data")
	}
}

func TestUntaggedEpochAccounting(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	d := header.Decoded{
		Mode:   header.ModeCommodity,
		Path:   []netsim.NodeID{5},
		Epochs: []simtime.EpochRange{{Lo: 10, Hi: 14}},
		TagIdx: -1,
	}
	r.Absorb(samplePacket(100, 0), d, 0)
	// Midpoint of the estimate: epoch 12.
	if r.EpochBytes[12] != 100 {
		t.Fatalf("EpochBytes = %v", r.EpochBytes)
	}
}

func TestStringForm(t *testing.T) {
	r := New(samplePacket(0, 0).Flow)
	r.Absorb(samplePacket(100, 2), sampleDecoded(), 0)
	if s := r.String(); s == "" {
		t.Fatalf("empty String()")
	}
}
