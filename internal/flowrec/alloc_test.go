package flowrec

import (
	"testing"

	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// TestAbsorbZeroAlloc gates the steady-state record path: absorbing another
// packet of an already-known flow on an unchanged path (same trajectory,
// already-seen exact epoch) performs zero heap allocations.
func TestAbsorbZeroAlloc(t *testing.T) {
	flow := netsim.FlowKey{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: netsim.ProtoTCP}
	dec := header.Decoded{
		Mode:   header.ModeCommodity,
		Path:   []netsim.NodeID{1, 2, 3},
		Epochs: []simtime.EpochRange{{Lo: 5, Hi: 5}, {Lo: 4, Hi: 6}, {Lo: 4, Hi: 7}},
		TagIdx: 0,
	}
	p := &netsim.Packet{Flow: flow, Priority: 2, Size: 1500}
	r := New(flow)
	// First absorb takes the slow path (copies the trajectory).
	r.Absorb(p, dec, 10)
	now := simtime.Time(20)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Absorb(p, dec, now)
		now += 10
	})
	if allocs != 0 {
		t.Fatalf("Record.Absorb steady state: %v allocs/op, want 0", allocs)
	}
	if r.Pkts < 1000 || r.Bytes == 0 {
		t.Fatalf("absorbs lost: %+v", r)
	}
}
