// Package flowrec defines the per-flow telemetry records end hosts maintain.
//
// This is the PathDump-extended record of §6: one record per received flow
// holding the usual 5-tuple, the switch-level path, a series of epoch ranges
// corresponding to each switch, byte/packet counts (including per-epoch byte
// counts at the tagging switch), and the flow's DSCP priority. Records are
// what the analyzer's distributed queries run against.
package flowrec

import (
	"fmt"
	"sort"

	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

// Record is one flow's telemetry at its destination host.
type Record struct {
	Flow     netsim.FlowKey
	Priority uint8

	// Path is the switch trajectory; Epochs[i] is the (unioned) epoch range
	// observed at Path[i] across all packets of the flow.
	Path   []netsim.NodeID
	Epochs []simtime.EpochRange
	// TagIdx is the index of the switch whose epochs are exact; −1 when the
	// flow's packets carried no epoch tag.
	TagIdx int

	// TagLink is the CherryPick link the flow's packets were stamped with
	// (0 when untagged). For parallel-link topologies this identifies the
	// egress interface the flow used — the load-imbalance signal of §5.4.
	TagLink topo.LinkID

	Bytes uint64
	Pkts  uint64
	// EpochBytes counts bytes per exact epoch of the tagging switch (or of
	// the host-estimated epoch for untagged flows). These are the
	// "byte counts per epoch" carried in alerts (§5.1).
	EpochBytes map[simtime.Epoch]uint64

	FirstSeen simtime.Time
	LastSeen  simtime.Time
}

// New creates an empty record for a flow.
func New(flow netsim.FlowKey) *Record {
	return &Record{Flow: flow, TagIdx: -1, EpochBytes: make(map[simtime.Epoch]uint64)}
}

// Absorb merges one received packet's decoded telemetry into the record.
//
// Absorb runs once per received packet and is allocation-free on the
// steady-state path (flow already known, trajectory unchanged, exact epoch
// already seen); only the first packet and path changes copy the decoded
// trajectory. dec may alias decoder-owned scratch buffers — everything kept
// is copied here.
func (r *Record) Absorb(p *netsim.Packet, dec header.Decoded, now simtime.Time) {
	if r.Pkts == 0 {
		r.FirstSeen = now
		r.Path = append([]netsim.NodeID(nil), dec.Path...)
		r.Epochs = append([]simtime.EpochRange(nil), dec.Epochs...)
		r.TagIdx = dec.TagIdx
	} else if pathsEqual(r.Path, dec.Path) {
		for i := range r.Epochs {
			r.Epochs[i] = r.Epochs[i].Union(dec.Epochs[i])
		}
	} else {
		// Path changed mid-flow (rerouting). Keep the latest path but widen
		// nothing: restart the epoch series for the new trajectory.
		r.Path = append(r.Path[:0], dec.Path...)
		r.Epochs = append(r.Epochs[:0], dec.Epochs...)
		r.TagIdx = dec.TagIdx
	}
	r.LastSeen = now
	r.Priority = p.Priority
	r.Bytes += uint64(p.Size)
	r.Pkts++
	if tag, ok := p.TagOf(netsim.TagLink); ok {
		r.TagLink = topo.LinkID(tag.Value)
	}
	// Exact epoch accounting: at the tagging switch in commodity mode, at
	// the first hop in INT mode, or the host-estimate midpoint when untagged.
	r.EpochBytes[exactEpoch(dec)] += uint64(p.Size)
}

func exactEpoch(dec header.Decoded) simtime.Epoch {
	switch {
	case dec.TagIdx >= 0 && dec.TagIdx < len(dec.Epochs):
		return dec.Epochs[dec.TagIdx].Lo
	case dec.Mode == header.ModeINT && len(dec.Epochs) > 0:
		return dec.Epochs[0].Lo
	case len(dec.Epochs) > 0:
		mid := (dec.Epochs[0].Lo + dec.Epochs[0].Hi) / 2
		return mid
	default:
		return 0
	}
}

func pathsEqual(a, b []netsim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EpochsAt returns the epoch range the flow was seen at switch sw, if the
// switch is on the recorded path.
func (r *Record) EpochsAt(sw netsim.NodeID) (simtime.EpochRange, bool) {
	for i, id := range r.Path {
		if id == sw {
			return r.Epochs[i], true
		}
	}
	return simtime.EpochRange{}, false
}

// Traverses reports whether the flow's path visits switch sw.
func (r *Record) Traverses(sw netsim.NodeID) bool {
	_, ok := r.EpochsAt(sw)
	return ok
}

// BytesIn returns the bytes the flow carried during epochs overlapping er
// (by the record's exact-epoch accounting).
func (r *Record) BytesIn(er simtime.EpochRange) uint64 {
	var total uint64
	for e, b := range r.EpochBytes {
		if er.Contains(e) {
			total += b
		}
	}
	return total
}

// SortedEpochs returns the exact epochs with traffic, ascending.
func (r *Record) SortedEpochs() []simtime.Epoch {
	out := make([]simtime.Epoch, 0, len(r.EpochBytes))
	for e := range r.EpochBytes {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Less orders flow keys lexicographically (src, dst, src port, dst port,
// proto) — the deterministic order every store query answer is merged in.
func Less(a, b netsim.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Clone returns a deep copy (used when shipping records across the RPC
// boundary so callers can't mutate host state).
func (r *Record) Clone() *Record {
	c := *r
	c.Path = append([]netsim.NodeID(nil), r.Path...)
	c.Epochs = append([]simtime.EpochRange(nil), r.Epochs...)
	c.EpochBytes = make(map[simtime.Epoch]uint64, len(r.EpochBytes))
	for k, v := range r.EpochBytes {
		c.EpochBytes[k] = v
	}
	return &c
}

// String summarises the record.
func (r *Record) String() string {
	return fmt.Sprintf("%v prio=%d path=%v bytes=%d pkts=%d", r.Flow, r.Priority, r.Path, r.Bytes, r.Pkts)
}
