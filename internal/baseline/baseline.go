// Package baseline implements the in-network monitoring techniques the paper
// compares against in §2 — packet sampling (sFlow/NetFlow-style), per-port
// counter polling, and queue-occupancy trigger predicates — so their failure
// modes (undersampling microbursts, indistinguishable contention kinds,
// predicates that never fire on red-lights) can be demonstrated on the same
// simulated testbeds SwitchPointer runs on.
package baseline

import (
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// SampleRecord is one sampled packet header.
type SampleRecord struct {
	Flow     netsim.FlowKey
	Priority uint8
	Size     int
	At       simtime.Time
}

// PacketSampler samples 1-in-N forwarded packets at a switch, the classic
// sampled-NetFlow/sFlow design. §2.1: "packet sampling based techniques
// would miss microbursts due to undersampling".
type PacketSampler struct {
	N       int // sampling ratio (1-in-N)
	count   uint64
	Samples []SampleRecord
}

// NewPacketSampler returns a sampler with ratio 1-in-N.
func NewPacketSampler(n int) *PacketSampler {
	if n < 1 {
		panic("baseline: sampling ratio must be ≥ 1")
	}
	return &PacketSampler{N: n}
}

// Stage returns the pipeline hook to install on a switch.
func (s *PacketSampler) Stage() netsim.PipelineFunc {
	return func(sw *netsim.Switch, p *netsim.Packet, in, out *netsim.Port, now simtime.Time) {
		s.count++
		if s.count%uint64(s.N) == 0 {
			s.Samples = append(s.Samples, SampleRecord{
				Flow: p.Flow, Priority: p.Priority, Size: p.Size, At: now,
			})
		}
	}
}

// Seen reports how many samples matched the flow.
func (s *PacketSampler) Seen(flow netsim.FlowKey) int {
	n := 0
	for _, r := range s.Samples {
		if r.Flow == flow {
			n++
		}
	}
	return n
}

// SeenIn reports how many samples landed inside the window.
func (s *PacketSampler) SeenIn(from, to simtime.Time) int {
	n := 0
	for _, r := range s.Samples {
		if r.At >= from && r.At < to {
			n++
		}
	}
	return n
}

// CounterPoller polls a port's transmit byte counter on a fixed period —
// the SNMP/sFlow counter pipeline. §2.1: "switch counter based techniques
// would not be able to differentiate between the priority-based and
// microburst-based flow contention".
type CounterPoller struct {
	port     *netsim.Port
	interval simtime.Time
	last     uint64
	// DeltaBytes[i] is the byte count of polling interval i.
	DeltaBytes []uint64
}

// AttachCounterPoller starts polling the port every interval.
func AttachCounterPoller(net *netsim.Network, port *netsim.Port, interval simtime.Time) *CounterPoller {
	c := &CounterPoller{port: port, interval: interval}
	net.Engine.EveryWeak(interval, func() {
		cur := port.TxBytes
		c.DeltaBytes = append(c.DeltaBytes, cur-c.last)
		c.last = cur
	})
	return c
}

// UtilizationSeries converts the deltas into per-interval link utilization.
func (c *CounterPoller) UtilizationSeries() []float64 {
	cap := float64(c.port.RateBps()) * c.interval.Seconds() / 8
	out := make([]float64, len(c.DeltaBytes))
	for i, d := range c.DeltaBytes {
		out[i] = float64(d) / cap
	}
	return out
}

// MaxUtilization returns the peak per-interval utilization.
func (c *CounterPoller) MaxUtilization() float64 {
	var max float64
	for _, u := range c.UtilizationSeries() {
		if u > max {
			max = u
		}
	}
	return max
}

// QueueProbe samples a port's queue occupancy on a fixed period and converts
// it to queueing delay. It implements the §2.2 in-network trigger predicate
// ("queuing delay is larger than 1 ms") so tests can show it never fires on
// the red-lights workload even though the victim's end-to-end throughput
// halves.
type QueueProbe struct {
	port     *netsim.Port
	interval simtime.Time
	// MaxBytes is the largest queue depth observed.
	MaxBytes int
}

// AttachQueueProbe starts sampling the port queue every interval.
func AttachQueueProbe(net *netsim.Network, port *netsim.Port, interval simtime.Time) *QueueProbe {
	q := &QueueProbe{port: port, interval: interval}
	net.Engine.EveryWeak(interval, func() {
		if b := port.QueueBytes(); b > q.MaxBytes {
			q.MaxBytes = b
		}
	})
	return q
}

// MaxDelay converts the peak occupancy into queueing delay at line rate.
func (q *QueueProbe) MaxDelay() simtime.Time {
	return simtime.Time(int64(q.MaxBytes) * 8 * int64(simtime.Second) / q.port.RateBps())
}

// PredicateFired reports whether the classic in-network trigger (queueing
// delay above the threshold) would have collected telemetry.
func (q *QueueProbe) PredicateFired(threshold simtime.Time) bool {
	return q.MaxDelay() > threshold
}
