package baseline

import (
	"testing"

	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// TestSamplerUndersamplesMicrobursts demonstrates §2.1: at a realistic
// 1-in-1000 sampling ratio, a 1 ms burst of m flows leaves almost no trace,
// while SwitchPointer's host records capture every burst flow.
func TestSamplerUndersamplesMicrobursts(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 4, Microburst: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	sampler := NewPacketSampler(1000)
	sl := tb.Switch("SL")
	sl.Pipeline = append(sl.Pipeline, sampler.Stage())
	tb.Run(110 * simtime.Millisecond)

	// Each 1 ms burst flow carries ~83 packets; at 1-in-1000 most burst
	// flows are never sampled.
	burstFlowsSeen := 0
	burstFlowsTotal := 0
	for ip, ag := range tb.HostAgents {
		_ = ip
		for _, rec := range ag.Store.All() {
			if rec.Flow.Proto == netsim.ProtoUDP && rec.Flow.DstPort >= 7000 && rec.Flow.DstPort < 7100 {
				burstFlowsTotal++
				if sampler.Seen(rec.Flow) > 0 {
					burstFlowsSeen++
				}
			}
		}
	}
	// 5 batches × 4 flows, each batch a distinct source port.
	if burstFlowsTotal != 20 {
		t.Fatalf("host records captured %d burst flows, want 20 (SwitchPointer sees everything)", burstFlowsTotal)
	}
	if burstFlowsSeen == burstFlowsTotal {
		t.Fatalf("sampler saw all burst flows — undersampling not demonstrated (seen=%d)", burstFlowsSeen)
	}
}

// TestCountersCannotDistinguishContentionKind demonstrates §2.1: the
// bottleneck's byte counters look the same under priority-based and
// microburst-based contention; only the per-flow priority in host telemetry
// separates them.
func TestCountersCannotDistinguishContentionKind(t *testing.T) {
	peak := map[bool]float64{}
	for _, micro := range []bool{false, true} {
		s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 8, Microburst: micro})
		if err != nil {
			t.Fatal(err)
		}
		tb := s.Testbed
		sl := tb.Switch("SL")
		poller := AttachCounterPoller(tb.Net, sl.Port(0), 10*simtime.Millisecond)
		tb.Run(110 * simtime.Millisecond)
		peak[micro] = poller.MaxUtilization()
	}
	// Both scenarios saturate the bottleneck: the counter view is
	// indistinguishable (within a few percent).
	diff := peak[false] - peak[true]
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1 {
		t.Fatalf("counters distinguished the scenarios (%.3f vs %.3f) — unexpected", peak[false], peak[true])
	}
	if peak[false] < 0.9 {
		t.Fatalf("bottleneck not saturated: %.3f", peak[false])
	}
}

// TestRedLightsPredicateNeverFires demonstrates §2.2: each 400 µs red light
// queues at most ~50 KB (≈0.4 ms at 1G) at any single switch, so the classic
// "queueing delay > 1 ms" in-network predicate never fires — while the
// victim's destination sees its throughput collapse and SwitchPointer
// diagnoses the accumulation.
func TestRedLightsPredicateNeverFires(t *testing.T) {
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	var probes []*QueueProbe
	for _, sw := range tb.Topo.Switches() {
		for _, pt := range sw.Ports() {
			if _, isSwitch := pt.Peer().Owner().(*netsim.Switch); isSwitch {
				probes = append(probes, AttachQueueProbe(tb.Net, pt, 50*simtime.Microsecond))
			}
		}
	}
	tb.Run(30 * simtime.Millisecond)

	for i, q := range probes {
		if q.PredicateFired(simtime.Millisecond) {
			t.Fatalf("probe %d: in-network predicate fired (delay %v) — red lights should stay under it", i, q.MaxDelay())
		}
	}
	// Yet the end host detected the problem.
	if _, ok := tb.AlertFor(s.Victim); !ok {
		t.Fatalf("host trigger did not fire")
	}
}

func TestSamplerBasics(t *testing.T) {
	s := NewPacketSampler(2)
	stage := s.Stage()
	for i := 0; i < 10; i++ {
		stage(nil, &netsim.Packet{Flow: netsim.FlowKey{Src: 1}, Size: 100}, nil, nil, simtime.Time(i))
	}
	if len(s.Samples) != 5 {
		t.Fatalf("1-in-2 sampled %d of 10", len(s.Samples))
	}
	if s.Seen(netsim.FlowKey{Src: 1}) != 5 || s.Seen(netsim.FlowKey{Src: 2}) != 0 {
		t.Fatalf("Seen wrong")
	}
	if s.SeenIn(0, 4) != 2 {
		t.Fatalf("SeenIn = %d", s.SeenIn(0, 4))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("ratio 0 should panic")
		}
	}()
	NewPacketSampler(0)
}
