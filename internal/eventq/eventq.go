// Package eventq implements the discrete-event engine that drives the
// SwitchPointer testbed simulation.
//
// The engine is single-threaded and deterministic: events scheduled for the
// same virtual time fire in the order they were scheduled (FIFO tie-break via
// a monotonically increasing sequence number). All network, transport, agent
// and analyzer activity in the simulated testbed is expressed as events on a
// single Engine, so an entire experiment is a pure function of its inputs.
//
// The engine is built for zero steady-state heap allocations and minimal GC
// traffic: event bodies live in one engine-owned arena recycled through a
// free list, the scheduling queue works on pointer-free entries (the
// ordering keys inline plus an arena index, so the queue's arrays are
// invisible to the garbage collector), and Timer handles are
// generation-counted values so Stop on a handle whose event has already
// fired and been recycled is a safe no-op. At steady state (free list warm,
// queue at capacity) neither scheduling nor Step allocates.
//
// Three scheduling-queue implementations sit behind the same entry
// contract. The default (hybrid.go) is calendar-backed: a bucketed calendar
// queue (calendar.go) whose pop is O(1) for the near-monotonic schedules
// the simulator produces, with a small-population heap regime below the
// measured crossover (~64 pending events) where a heap's couple of inline
// comparisons win. The pure 4-ary heap (heapq.go) the calendar replaced is
// retained behind WithHeapQueue as the O(log n) reference for the property
// tests and the `make bench` scheduler ablation, and WithCalendarQueue
// selects the pure calendar. All three pop in identical order — globally
// smallest (at, seq) — so the choice never changes simulation results,
// only wall-clock speed.
package eventq

import (
	"switchpointer/internal/simtime"
)

// Func is the body of a scheduled event. It runs at the event's virtual time.
type Func func()

// noEvent marks the end of the free list.
const noEvent = int32(-1)

// event is one arena slot. Slots are recycled through the engine's free
// list; gen increments on every recycle so stale Timer handles can detect
// that their event is gone.
type event struct {
	fn   Func
	gen  uint32
	dead bool  // cancelled
	weak bool  // does not keep Run() alive
	next int32 // free-list link (arena index)
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// value is a valid, already-inert handle. Timers are values: copying one
// copies the handle, and all copies refer to the same scheduled event.
type Timer struct {
	eng *Engine
	idx int32
	gen uint32
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired, already-stopped, or recycled timer is a no-op:
// the generation counter guards against the underlying arena slot having
// been reused for a different, later event.
func (t Timer) Stop() bool {
	if t.eng == nil {
		return false
	}
	ev := &t.eng.events[t.idx]
	if ev.gen != t.gen || ev.dead {
		return false
	}
	ev.dead = true
	if !ev.weak {
		t.eng.strong--
	}
	return true
}

// entry is one scheduling-queue element: the ordering keys inline plus the
// arena index of the event. Entries contain no pointers, so the queue's
// arrays are never scanned and entry moves incur no write barriers.
type entry struct {
	at  simtime.Time
	seq uint64
	idx int32
}

// before reports strict scheduling order: earlier time first, FIFO
// tie-break.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pq is the scheduling-queue contract: a min-queue over (at, seq). pop and
// peek must return the globally smallest entry under before(), so every
// implementation yields byte-identical simulations. pop and peek may only
// be called while length() > 0. The engine itself always schedules on a
// concrete *hybridQueue (pinned to a regime or adaptive) so the per-event
// calls devirtualize; the interface exists for the property tests that
// compare implementations.
type pq interface {
	push(entry)
	pop() entry
	peek() entry
	length() int
}

var (
	_ pq = (*heapQueue)(nil)
	_ pq = (*calendarQueue)(nil)
	_ pq = (*hybridQueue)(nil)
)

// Engine is a deterministic discrete-event scheduler over virtual time.
// The zero value is not usable; construct with New.
type Engine struct {
	now       simtime.Time
	seq       uint64
	q         *hybridQueue
	events    []event // arena of event bodies
	free      int32   // head of the recycled-slot list
	processed uint64
	strong    int // pending non-weak events
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithHeapQueue selects the pure 4-ary-heap scheduling queue: O(log n) pop,
// but insensitive to the shape of the schedule. Kept for the scheduler
// ablation and as the reference implementation the calendar queue is
// property-tested against.
func WithHeapQueue() Option {
	return func(e *Engine) { e.q = newPinnedQueue(modeHeapOnly) }
}

// WithCalendarQueue selects the pure bucketed calendar queue: O(1) push and
// pop for the near-monotonic schedules the simulator produces, without the
// default's small-population heap regime. Used by tests and ablations; most
// callers want the default.
func WithCalendarQueue() Option {
	return func(e *Engine) { e.q = newPinnedQueue(modeCalendarOnly) }
}

// WithHybridQueue selects the calendar-backed hybrid queue explicitly (the
// default: calendar at scale, heap regime below the crossover).
func WithHybridQueue() Option {
	return func(e *Engine) { e.q = newHybridQueue() }
}

// New returns an empty engine positioned at virtual time zero, scheduling on
// the calendar-backed hybrid queue unless an Option overrides it.
func New(opts ...Option) *Engine {
	e := &Engine{free: noEvent, q: newHybridQueue()}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the current virtual time. During an event callback this is the
// event's scheduled time.
func (e *Engine) Now() simtime.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return e.q.length() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: that is always a logic error in a discrete simulation.
func (e *Engine) At(t simtime.Time, fn Func) Timer {
	return e.schedule(t, fn, false)
}

// AtWeak schedules a weak event: it runs like any other when the clock
// reaches it, but pending weak events alone do not keep Run going. Use for
// open-ended maintenance work (epoch rotation, pollers) that should not
// make a finite workload run forever.
func (e *Engine) AtWeak(t simtime.Time, fn Func) Timer {
	return e.schedule(t, fn, true)
}

// alloc takes a recycled arena slot, or grows the arena.
func (e *Engine) alloc() int32 {
	if i := e.free; i != noEvent {
		e.free = e.events[i].next
		return i
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

// release recycles an arena slot: the generation bump invalidates
// outstanding Timer handles and the closure reference is dropped so it can
// be collected.
func (e *Engine) release(i int32) {
	ev := &e.events[i]
	ev.gen++
	ev.fn = nil
	ev.dead = false
	ev.weak = false
	ev.next = e.free
	e.free = i
}

func (e *Engine) schedule(t simtime.Time, fn Func, weak bool) Timer {
	if t < e.now {
		panic("eventq: scheduling event in the past")
	}
	i := e.alloc()
	ev := &e.events[i]
	ev.fn = fn
	ev.weak = weak
	e.q.push(entry{at: t, seq: e.seq, idx: i})
	e.seq++
	if !weak {
		e.strong++
	}
	return Timer{eng: e, idx: i, gen: ev.gen}
}

// After schedules fn to run d nanoseconds after the current virtual time.
func (e *Engine) After(d simtime.Time, fn Func) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run repeatedly with the given period, starting at
// Now+period. The returned Timer cancels the *next* occurrence when stopped;
// stopping it permanently ends the series.
func (e *Engine) Every(period simtime.Time, fn Func) *Timer {
	return e.every(period, fn, false)
}

// EveryWeak is Every with weak events: the series runs whenever other work
// advances the clock past its ticks, but does not by itself keep Run alive.
func (e *Engine) EveryWeak(period simtime.Time, fn Func) *Timer {
	return e.every(period, fn, true)
}

func (e *Engine) every(period simtime.Time, fn Func, weak bool) *Timer {
	if period <= 0 {
		panic("eventq: non-positive period")
	}
	t := &Timer{}
	var tick Func
	tick = func() {
		fn()
		*t = e.schedule(e.now+period, tick, weak)
	}
	*t = e.schedule(e.now+period, tick, weak)
	return t
}

// Step runs the single earliest pending event. It reports false when the
// queue is empty. At steady state Step performs zero heap allocations: the
// popped event's arena slot returns to the free list before its body runs,
// so the body can reschedule without growing anything.
func (e *Engine) Step() bool {
	for e.q.length() > 0 {
		it := e.q.pop()
		ev := &e.events[it.idx]
		if ev.dead {
			e.release(it.idx)
			continue
		}
		if !ev.weak {
			e.strong--
		}
		fn := ev.fn
		e.release(it.idx)
		e.now = it.at
		e.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until no non-weak work remains. Weak maintenance
// timers (epoch rotation, pollers) do not keep the run alive; they fire only
// while driven by remaining real work.
func (e *Engine) Run() {
	for e.strong > 0 && e.Step() {
	}
}

// RunUntil executes events with scheduled time ≤ t, then advances the clock
// to exactly t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t simtime.Time) {
	for {
		at, ok := e.peek()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of virtual time from Now.
func (e *Engine) RunFor(d simtime.Time) { e.RunUntil(e.now + d) }

// peek reports the scheduled time of the earliest live event, discarding
// cancelled entries from the front of the queue as it goes.
func (e *Engine) peek() (simtime.Time, bool) {
	for e.q.length() > 0 {
		top := e.q.peek()
		if !e.events[top.idx].dead {
			return top.at, true
		}
		e.release(e.q.pop().idx)
	}
	return 0, false
}
