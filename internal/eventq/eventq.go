// Package eventq implements the discrete-event engine that drives the
// SwitchPointer testbed simulation.
//
// The engine is single-threaded and deterministic: events scheduled for the
// same virtual time fire in the order they were scheduled (FIFO tie-break via
// a monotonically increasing sequence number). All network, transport, agent
// and analyzer activity in the simulated testbed is expressed as events on a
// single Engine, so an entire experiment is a pure function of its inputs.
//
// The engine is built for zero steady-state heap allocations and minimal GC
// traffic: event bodies live in one engine-owned arena recycled through a
// free list, the priority queue is a specialized pointer-free 4-ary heap
// (entries carry the ordering keys inline plus an arena index, so sift swaps
// incur no write barriers and the heap array is invisible to the garbage
// collector), and Timer handles are generation-counted values so Stop on a
// handle whose event has already fired and been recycled is a safe no-op.
// At steady state (free list warm, heap at capacity) neither scheduling nor
// Step allocates.
package eventq

import (
	"switchpointer/internal/simtime"
)

// Func is the body of a scheduled event. It runs at the event's virtual time.
type Func func()

// noEvent marks the end of the free list.
const noEvent = int32(-1)

// event is one arena slot. Slots are recycled through the engine's free
// list; gen increments on every recycle so stale Timer handles can detect
// that their event is gone.
type event struct {
	fn   Func
	gen  uint32
	dead bool  // cancelled
	weak bool  // does not keep Run() alive
	next int32 // free-list link (arena index)
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// value is a valid, already-inert handle. Timers are values: copying one
// copies the handle, and all copies refer to the same scheduled event.
type Timer struct {
	eng *Engine
	idx int32
	gen uint32
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired, already-stopped, or recycled timer is a no-op:
// the generation counter guards against the underlying arena slot having
// been reused for a different, later event.
func (t Timer) Stop() bool {
	if t.eng == nil {
		return false
	}
	ev := &t.eng.events[t.idx]
	if ev.gen != t.gen || ev.dead {
		return false
	}
	ev.dead = true
	if !ev.weak {
		t.eng.strong--
	}
	return true
}

// entry is one heap element: the ordering keys inline plus the arena index
// of the event. Entries contain no pointers, so the heap array is never
// scanned and sift swaps incur no write barriers.
type entry struct {
	at  simtime.Time
	seq uint64
	idx int32
}

// before reports strict heap ordering: earlier time first, FIFO tie-break.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a deterministic discrete-event scheduler over virtual time.
// The zero value is not usable; construct with New.
type Engine struct {
	now       simtime.Time
	seq       uint64
	heap      []entry
	events    []event // arena of event bodies
	free      int32   // head of the recycled-slot list
	processed uint64
	strong    int // pending non-weak events
}

// New returns an empty engine positioned at virtual time zero.
func New() *Engine {
	return &Engine{free: noEvent}
}

// Now returns the current virtual time. During an event callback this is the
// event's scheduled time.
func (e *Engine) Now() simtime.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: that is always a logic error in a discrete simulation.
func (e *Engine) At(t simtime.Time, fn Func) Timer {
	return e.schedule(t, fn, false)
}

// AtWeak schedules a weak event: it runs like any other when the clock
// reaches it, but pending weak events alone do not keep Run going. Use for
// open-ended maintenance work (epoch rotation, pollers) that should not
// make a finite workload run forever.
func (e *Engine) AtWeak(t simtime.Time, fn Func) Timer {
	return e.schedule(t, fn, true)
}

// alloc takes a recycled arena slot, or grows the arena.
func (e *Engine) alloc() int32 {
	if i := e.free; i != noEvent {
		e.free = e.events[i].next
		return i
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

// release recycles an arena slot: the generation bump invalidates
// outstanding Timer handles and the closure reference is dropped so it can
// be collected.
func (e *Engine) release(i int32) {
	ev := &e.events[i]
	ev.gen++
	ev.fn = nil
	ev.dead = false
	ev.weak = false
	ev.next = e.free
	e.free = i
}

func (e *Engine) schedule(t simtime.Time, fn Func, weak bool) Timer {
	if t < e.now {
		panic("eventq: scheduling event in the past")
	}
	i := e.alloc()
	ev := &e.events[i]
	ev.fn = fn
	ev.weak = weak
	e.push(entry{at: t, seq: e.seq, idx: i})
	e.seq++
	if !weak {
		e.strong++
	}
	return Timer{eng: e, idx: i, gen: ev.gen}
}

// After schedules fn to run d nanoseconds after the current virtual time.
func (e *Engine) After(d simtime.Time, fn Func) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run repeatedly with the given period, starting at
// Now+period. The returned Timer cancels the *next* occurrence when stopped;
// stopping it permanently ends the series.
func (e *Engine) Every(period simtime.Time, fn Func) *Timer {
	return e.every(period, fn, false)
}

// EveryWeak is Every with weak events: the series runs whenever other work
// advances the clock past its ticks, but does not by itself keep Run alive.
func (e *Engine) EveryWeak(period simtime.Time, fn Func) *Timer {
	return e.every(period, fn, true)
}

func (e *Engine) every(period simtime.Time, fn Func, weak bool) *Timer {
	if period <= 0 {
		panic("eventq: non-positive period")
	}
	t := &Timer{}
	var tick Func
	tick = func() {
		fn()
		*t = e.schedule(e.now+period, tick, weak)
	}
	*t = e.schedule(e.now+period, tick, weak)
	return t
}

// The priority queue is a 4-ary heap: compared to the binary layout it
// halves the sift depth (and therefore the swap count) at the price of up to
// three extra comparisons per level — a good trade when the comparison keys
// live inline in the pointer-free entries, as the four children share cache
// lines.

// push appends an entry and restores the heap invariant (sift-up).
func (e *Engine) push(it entry) {
	h := append(e.heap, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the earliest entry. Callers must check Pending.
func (e *Engine) pop() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	e.heap = h
	// Sift-down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if h[j].before(h[min]) {
				min = j
			}
		}
		if !h[min].before(h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Step runs the single earliest pending event. It reports false when the
// queue is empty. At steady state Step performs zero heap allocations: the
// popped event's arena slot returns to the free list before its body runs,
// so the body can reschedule without growing anything.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		it := e.pop()
		ev := &e.events[it.idx]
		if ev.dead {
			e.release(it.idx)
			continue
		}
		if !ev.weak {
			e.strong--
		}
		fn := ev.fn
		e.release(it.idx)
		e.now = it.at
		e.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until no non-weak work remains. Weak maintenance
// timers (epoch rotation, pollers) do not keep the run alive; they fire only
// while driven by remaining real work.
func (e *Engine) Run() {
	for e.strong > 0 && e.Step() {
	}
}

// RunUntil executes events with scheduled time ≤ t, then advances the clock
// to exactly t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t simtime.Time) {
	for {
		at, ok := e.peek()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of virtual time from Now.
func (e *Engine) RunFor(d simtime.Time) { e.RunUntil(e.now + d) }

// peek reports the scheduled time of the earliest live event, discarding
// cancelled entries from the top of the heap as it goes.
func (e *Engine) peek() (simtime.Time, bool) {
	for len(e.heap) > 0 {
		if !e.events[e.heap[0].idx].dead {
			return e.heap[0].at, true
		}
		e.release(e.pop().idx)
	}
	return 0, false
}
