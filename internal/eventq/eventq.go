// Package eventq implements the discrete-event engine that drives the
// SwitchPointer testbed simulation.
//
// The engine is single-threaded and deterministic: events scheduled for the
// same virtual time fire in the order they were scheduled (FIFO tie-break via
// a monotonically increasing sequence number). All network, transport, agent
// and analyzer activity in the simulated testbed is expressed as events on a
// single Engine, so an entire experiment is a pure function of its inputs.
package eventq

import (
	"container/heap"

	"switchpointer/internal/simtime"
)

// Func is the body of a scheduled event. It runs at the event's virtual time.
type Func func()

type event struct {
	at   simtime.Time
	seq  uint64
	fn   Func
	dead bool // cancelled
	weak bool // does not keep Run() alive
	idx  int  // heap index, -1 when popped
	eng  *Engine
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.idx == -1 {
		return false
	}
	t.ev.dead = true
	if !t.ev.weak && t.ev.eng != nil {
		t.ev.eng.strong--
	}
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler over virtual time.
// The zero value is not usable; construct with New.
type Engine struct {
	now       simtime.Time
	seq       uint64
	heap      eventHeap
	processed uint64
	strong    int // pending non-weak events
}

// New returns an empty engine positioned at virtual time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time. During an event callback this is the
// event's scheduled time.
func (e *Engine) Now() simtime.Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still scheduled (including cancelled
// events not yet reaped).
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: that is always a logic error in a discrete simulation.
func (e *Engine) At(t simtime.Time, fn Func) *Timer {
	return e.schedule(t, fn, false)
}

// AtWeak schedules a weak event: it runs like any other when the clock
// reaches it, but pending weak events alone do not keep Run going. Use for
// open-ended maintenance work (epoch rotation, pollers) that should not
// make a finite workload run forever.
func (e *Engine) AtWeak(t simtime.Time, fn Func) *Timer {
	return e.schedule(t, fn, true)
}

func (e *Engine) schedule(t simtime.Time, fn Func, weak bool) *Timer {
	if t < e.now {
		panic("eventq: scheduling event in the past")
	}
	ev := &event{at: t, seq: e.seq, fn: fn, weak: weak, eng: e}
	e.seq++
	heap.Push(&e.heap, ev)
	if !weak {
		e.strong++
	}
	return &Timer{ev: ev}
}

// After schedules fn to run d nanoseconds after the current virtual time.
func (e *Engine) After(d simtime.Time, fn Func) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run repeatedly with the given period, starting at
// Now+period. The returned Timer cancels the *next* occurrence when stopped;
// stopping it permanently ends the series.
func (e *Engine) Every(period simtime.Time, fn Func) *Timer {
	return e.every(period, fn, false)
}

// EveryWeak is Every with weak events: the series runs whenever other work
// advances the clock past its ticks, but does not by itself keep Run alive.
func (e *Engine) EveryWeak(period simtime.Time, fn Func) *Timer {
	return e.every(period, fn, true)
}

func (e *Engine) every(period simtime.Time, fn Func, weak bool) *Timer {
	if period <= 0 {
		panic("eventq: non-positive period")
	}
	t := &Timer{}
	var tick Func
	tick = func() {
		fn()
		t.ev = e.schedule(e.now+period, tick, weak).ev
	}
	t.ev = e.schedule(e.now+period, tick, weak).ev
	return t
}

// Step runs the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*event)
		if ev.dead {
			continue
		}
		if !ev.weak {
			e.strong--
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until no non-weak work remains. Weak maintenance
// timers (epoch rotation, pollers) do not keep the run alive; they fire only
// while driven by remaining real work.
func (e *Engine) Run() {
	for e.strong > 0 && e.Step() {
	}
}

// RunUntil executes events with scheduled time ≤ t, then advances the clock
// to exactly t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t simtime.Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d nanoseconds of virtual time from Now.
func (e *Engine) RunFor(d simtime.Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *event {
	for len(e.heap) > 0 {
		ev := e.heap[0]
		if !ev.dead {
			return ev
		}
		heap.Pop(&e.heap)
	}
	return nil
}
