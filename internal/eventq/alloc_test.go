package eventq

import (
	"testing"
)

// TestStepZeroAlloc gates the engine's steady-state allocation contract:
// with the free list warm and the heap at capacity, a schedule+Step cycle
// performs zero heap allocations.
func TestStepZeroAlloc(t *testing.T) {
	e := New()
	n := 0
	fn := func() { n++ }
	// Warm the arena and the heap backing array.
	for i := 0; i < 64; i++ {
		e.At(e.Now()+1, fn)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.At(e.Now()+1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Engine.Step steady state: %v allocs/op, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("events did not run")
	}
}

// TestStopRecycledTimerZeroAllocSafe exercises the generation guard under
// the same recycled-arena steady state the alloc gate runs in.
func TestStopRecycledTimerZeroAlloc(t *testing.T) {
	e := New()
	fn := func() {}
	stale := e.At(1, fn)
	e.Run() // fires and recycles the event
	// The recycled slot is reused by a new event; the stale handle must not
	// cancel it, and Stop must not allocate.
	e.At(2, fn)
	allocs := testing.AllocsPerRun(100, func() {
		if stale.Stop() {
			t.Fatal("stale Timer stopped a recycled event")
		}
	})
	if allocs != 0 {
		t.Fatalf("Timer.Stop: %v allocs/op, want 0", allocs)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
}
