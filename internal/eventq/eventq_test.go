package eventq

import (
	"testing"

	"switchpointer/internal/simtime"
)

func TestOrderingByTime(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
	if e.Processed() != 3 {
		t.Fatalf("Processed = %d", e.Processed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of order at %d: %v", i, v)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var trace []simtime.Time
	e.At(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("trace = %v", trace)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatalf("Stop should report true for pending event")
	}
	if tm.Stop() {
		t.Fatalf("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatalf("cancelled event fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	e := New()
	tm := e.At(10, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatalf("Stop after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []simtime.Time
	for _, at := range []simtime.Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(12)
	if len(got) != 2 || e.Now() != 12 {
		t.Fatalf("got=%v now=%v", got, e.Now())
	}
	e.RunFor(3) // to t=15
	if len(got) != 3 || e.Now() != 15 {
		t.Fatalf("after RunFor: got=%v now=%v", got, e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("final got=%v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEvery(t *testing.T) {
	e := New()
	count := 0
	tm := e.Every(10, func() { count++ })
	e.RunUntil(55)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	tm.Stop()
	e.RunUntil(200)
	if count != 5 {
		t.Fatalf("count after stop = %d, want 5", count)
	}
}

func TestEveryPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New().Every(0, func() {})
}

func TestPendingCount(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d", e.Pending())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatalf("Step on empty queue should report false")
	}
}

func TestManyEventsStress(t *testing.T) {
	e := New()
	const n = 20000
	var last simtime.Time = -1
	ok := true
	// Insert in a scrambled but deterministic order.
	for i := 0; i < n; i++ {
		at := simtime.Time((i * 7919) % n)
		e.At(at, func() {
			if at < last {
				ok = false
			}
			last = at
		})
	}
	e.Run()
	if !ok {
		t.Fatalf("events executed out of time order")
	}
}

func TestWeakEventsDoNotKeepRunAlive(t *testing.T) {
	e := New()
	weakFired := 0
	e.EveryWeak(10, func() { weakFired++ })
	fired := false
	e.At(35, func() { fired = true })
	e.Run() // must terminate despite the unbounded weak series
	if !fired {
		t.Fatalf("strong event did not fire")
	}
	// Weak ticks at 10, 20, 30 ran while strong work remained.
	if weakFired != 3 {
		t.Fatalf("weak ticks = %d, want 3", weakFired)
	}
	if e.Now() != 35 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestWeakOnlyRunTerminatesImmediately(t *testing.T) {
	e := New()
	e.AtWeak(10, func() { t.Errorf("weak-only event fired under Run") })
	e.Run()
	if e.Now() != 0 {
		t.Fatalf("Run advanced time with only weak events pending")
	}
}

func TestRunUntilStillDrivesWeakEvents(t *testing.T) {
	e := New()
	n := 0
	e.EveryWeak(10, func() { n++ })
	e.RunUntil(45)
	if n != 4 {
		t.Fatalf("weak ticks under RunUntil = %d, want 4", n)
	}
}

func TestStopWeakAndStrongAccounting(t *testing.T) {
	e := New()
	st := e.At(10, func() {})
	wk := e.AtWeak(20, func() {})
	if !st.Stop() || !wk.Stop() {
		t.Fatalf("stops failed")
	}
	e.At(5, func() {})
	e.Run() // must not hang or panic on accounting
	if e.Now() != 5 {
		t.Fatalf("Now = %v", e.Now())
	}
}
