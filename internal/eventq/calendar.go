package eventq

import (
	"slices"

	"switchpointer/internal/simtime"
)

// calendarQueue is a bucketed calendar queue (R. Brown, CACM 1988 — the
// scheduler ns-2/ns-3 reach for): virtual time is divided into fixed-width
// buckets ("days") that wrap around a power-of-two table ("years"), and a
// cursor walks the table in time order. For the near-monotonic schedules a
// network simulator produces — almost every new event lands within a few
// bucket widths of Now — both push and pop are O(1): push is an append into
// the event's day, pop scans the cursor's day (≈1 entry when the table is
// sized right) for the earliest due entry.
//
// Determinism is identical to the heap: pop always returns the globally
// smallest (at, seq) entry, so the FIFO tie-break for same-time events is
// preserved exactly. This holds because all same-`at` entries share one
// bucket, the cursor-advance invariant below guarantees the first due entry
// found is the global minimum, and tie runs are served in seq order from
// the due buffer.
//
// Invariant: no live bucket-resident entry is earlier than the cursor's
// window start (curTop - width). push repositions the cursor backwards when
// an entry would land behind it; the cursor only advances past a bucket
// after proving the bucket holds nothing due in its current-year window,
// and an entry in [start, top) can live only in the cursor's bucket.
//
// Three mechanisms keep the O(1) claim honest on real simulator schedules:
//
//   - Tie-run extraction. Simulations synchronize: dozens of per-host meter
//     ticks share one instant, and any bucket scheme puts simultaneous
//     events in one bucket, making a naive per-pop bucket scan O(run) — the
//     burst costs O(run²). When findHead's scan lands on a tie run it
//     extracts the whole run in that same scan, sorts it once by seq
//     (engine seq is globally monotonic, so a later push at the same time
//     appends to the run in order), and serves the following pops O(1) from
//     the due buffer.
//
//   - Population-tracked table size. The table doubles when occupancy
//     exceeds two entries per bucket and halves by pairwise merge below one
//     entry per two buckets. The merge keeps the width and reuses the lower
//     half's backing arrays, so a drained-then-refilled queue schedules
//     without reallocating — Step stays zero-alloc at steady state.
//
//   - Feedback-driven width. Every bucket-scan pop records its scan cost
//     and the virtual-time gap to the previous pop; when a review window's
//     mean scan cost exceeds a threshold, the width is re-derived from the
//     measured mean gap and the table rebucketed. A static head-of-queue
//     sample (Brown's original rule) mis-sizes exactly the schedules a
//     simulator produces — a tie cluster or a dense packet burst at the
//     head yields a near-zero width that turns every later pop into a
//     bucket crawl. Measured gaps are immune, and a mis-sized table
//     corrects itself within one window in either direction.
type calendarQueue struct {
	buckets [][]entry
	mask    int  // len(buckets)-1; len is a power of two
	shift   uint // bucket width is 1<<shift nanoseconds
	count   int  // all pending entries (buckets + due run)

	cur    int          // bucket the scan cursor is on
	curTop simtime.Time // exclusive top of cur's current-year window

	// due is the tie run currently being served, sorted by seq; dueHead
	// indexes the next entry to pop. All due entries share one `at`, and
	// every bucket-resident entry is strictly later.
	due     []entry
	dueHead int

	// head memoizes a singleton found by the last scan so a peek
	// immediately followed by pop (the Step/RunUntil cadence) costs one
	// scan, matching the heap's O(1) peek.
	headValid  bool
	headBucket int
	headSlot   int
	head       entry

	growAt   int // grow the table when count exceeds this
	shrinkAt int // shrink the table when count falls below this (0 = never)

	// Width-review feedback over bucket-scan pops, reset every
	// calReviewWindow such pops. Due-buffer pops are excluded: tie runs
	// cost O(1) regardless of width, and their zero gaps would drag the
	// width estimate toward zero.
	pops     int          // bucket-scan pops in the current window
	gapSum   simtime.Time // summed pop-to-pop gaps (each clamped)
	scanWork int          // buckets visited + entries inspected by findHead
	lastAt   simtime.Time // previous pop's time
	havePop  bool         // lastAt is meaningful
}

const (
	// calMinBuckets floors the table size; tiny queues stay on one cheap
	// 16-bucket year.
	calMinBuckets = 16
	// calInitShift is the bucket width (log2 nanoseconds) before feedback
	// kicks in: 2^20 ns ≈ 1 ms.
	calInitShift = 20
	// calReviewWindow is how many bucket-scan pops are sampled between
	// width reviews.
	calReviewWindow = 128
	// calScanThreshold is the mean per-pop scan work (buckets visited plus
	// entries inspected) above which a review re-derives the width. A
	// well-sized table costs ~2–3 per pop, so reviews trigger as soon as
	// the mean drifts past double that.
	calScanThreshold = 5
	// calGapClamp bounds one gap's contribution to the width estimate so a
	// single idle jump (a simulation advancing past dead air) cannot blow
	// the width up for a whole window.
	calGapClamp = simtime.Second
)

func newCalendarQueue() *calendarQueue {
	c := &calendarQueue{
		buckets: make([][]entry, calMinBuckets),
		mask:    calMinBuckets - 1,
		shift:   calInitShift,
		growAt:  2 * calMinBuckets,
	}
	c.curTop = c.width()
	return c
}

func (c *calendarQueue) length() int { return c.count }

// width returns the bucket span. It is always a power of two, so the hot
// path maps times to buckets with shifts instead of 64-bit divisions.
func (c *calendarQueue) width() simtime.Time { return 1 << c.shift }

func (c *calendarQueue) bucketOf(t simtime.Time) int {
	return int(uint64(t>>c.shift) & uint64(c.mask))
}

// windowTop returns the exclusive top of the bucket window containing t.
func (c *calendarQueue) windowTop(t simtime.Time) simtime.Time {
	return (t>>c.shift + 1) << c.shift
}

func (c *calendarQueue) push(e entry) {
	if c.dueHead < len(c.due) {
		at := c.due[c.dueHead].at
		if e.at == at {
			// Engine seq is globally monotonic, so e is the run's newest
			// entry and appending preserves the run's seq order.
			c.due = append(c.due, e)
			c.count++
			return
		}
		if e.at < at {
			// Only possible while the engine clock lags the run (idle
			// RunUntil followed by an earlier schedule): the run is no
			// longer the front, so return it to the table.
			c.spillDue()
		}
	}
	c.bucketPush(e)
	c.count++
	if c.count > c.growAt {
		c.grow()
	}
}

// bucketPush files an entry into its bucket, maintaining the cursor
// invariant. It does not touch count.
func (c *calendarQueue) bucketPush(e entry) {
	// An empty table repositions unconditionally so the next scan starts at
	// the only event instead of walking forward from a stale position.
	if c.count == 0 || e.at < c.curTop-c.width() {
		c.cur = c.bucketOf(e.at)
		c.curTop = c.windowTop(e.at)
	}
	b := c.bucketOf(e.at)
	c.buckets[b] = append(c.buckets[b], e)
	if c.headValid && e.before(c.head) {
		c.headValid = false
	}
}

// spillDue returns an unserved tie run to the buckets (all entries share
// one at, hence one bucket).
func (c *calendarQueue) spillDue() {
	for _, e := range c.due[c.dueHead:] {
		c.bucketPush(e)
	}
	c.due = c.due[:0]
	c.dueHead = 0
}

// peek returns the earliest entry without removing it. Callers must check
// length.
func (c *calendarQueue) peek() entry {
	if c.dueHead < len(c.due) {
		return c.due[c.dueHead]
	}
	c.findHead()
	if c.dueHead < len(c.due) {
		return c.due[c.dueHead]
	}
	return c.head
}

// pop removes and returns the earliest entry. Callers must check length.
func (c *calendarQueue) pop() entry {
	if c.dueHead == len(c.due) {
		c.findHead()
	}
	if c.dueHead < len(c.due) {
		e := c.due[c.dueHead]
		c.dueHead++
		if c.dueHead == len(c.due) {
			c.due = c.due[:0]
			c.dueHead = 0
		}
		c.count--
		c.maybeShrink()
		return e
	}

	e := c.head
	b := c.buckets[c.headBucket]
	n := len(b) - 1
	b[c.headSlot] = b[n]
	c.buckets[c.headBucket] = b[:n]
	c.count--
	c.headValid = false

	// Feed the width review.
	if c.havePop {
		g := e.at - c.lastAt
		if g > calGapClamp {
			g = calGapClamp
		}
		c.gapSum += g
	}
	c.havePop = true
	c.lastAt = e.at
	c.pops++
	if c.pops >= calReviewWindow {
		c.review()
	}

	c.maybeShrink()
	return e
}

func (c *calendarQueue) maybeShrink() {
	if c.shrinkAt > 0 && c.count < c.shrinkAt {
		c.shrink()
	}
}

// findHead locates the globally earliest (at, seq) entry: a singleton is
// cached in head, a tie run is extracted into the due buffer. count must
// exceed the due buffer's residue (i.e. some entry lives in a bucket).
func (c *calendarQueue) findHead() {
	if c.headValid {
		return
	}
	for {
		cur, top := c.cur, c.curTop
		for k := 0; k <= c.mask; k++ {
			b := c.buckets[cur]
			c.scanWork += 1 + len(b)
			best := -1
			run := 0
			for i := range b {
				if b[i].at >= top {
					continue
				}
				switch {
				case best < 0 || b[i].at < b[best].at:
					best = i
					run = 1
				case b[i].at == b[best].at:
					run++
					if b[i].seq < b[best].seq {
						best = i
					}
				}
			}
			if best >= 0 {
				c.cur, c.curTop = cur, top
				if run > 1 {
					c.extractRun(cur, b[best].at)
					return
				}
				c.head = b[best]
				c.headBucket, c.headSlot = cur, best
				c.headValid = true
				return
			}
			cur = (cur + 1) & c.mask
			top += c.width()
		}
		// A whole year held nothing due: the schedule is sparse relative to
		// the table span. Jump the cursor straight to the earliest event's
		// window instead of spinning through empty years.
		c.scanWork += c.count
		c.jumpToMin()
	}
}

// extractRun moves every entry of bucket bi scheduled exactly at `at` — the
// tie run at the queue's head — into the due buffer, sorted by seq. One
// O(run log run) extraction replaces O(run) per-pop bucket scans that would
// cost O(run²) across the burst.
func (c *calendarQueue) extractRun(bi int, at simtime.Time) {
	b := c.buckets[bi]
	kept := b[:0]
	for _, e := range b {
		if e.at == at {
			c.due = append(c.due, e)
		} else {
			kept = append(kept, e)
		}
	}
	c.buckets[bi] = kept
	// Swap-removes may have shuffled the bucket, so the run is not
	// guaranteed to be in push order; sort restores the FIFO contract.
	slices.SortFunc(c.due, func(a, b entry) int {
		switch {
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		default:
			return 0
		}
	})
}

// review closes a sampling window: when scanning has been expensive, the
// width is re-derived as ~2× the measured mean pop-to-pop gap (rounded up
// to a power of two) and the table rebucketed at the new width. 2× keeps
// bucket occupancy near one entry (the rounding-up already adds slack), so
// the per-pop scan stays at a couple of inspections — comparable to the
// 4-ary heap's sift cost even for small standing populations.
func (c *calendarQueue) review() {
	if c.scanWork/c.pops > calScanThreshold && c.count > 1 && c.gapSum > 0 {
		target := 2 * c.gapSum / simtime.Time(c.pops)
		s := uint(0)
		for (1 << s) < target {
			s++
		}
		if s != c.shift {
			c.rebucket(s)
		}
	}
	c.pops = 0
	c.gapSum = 0
	c.scanWork = 0
}

// jumpToMin repositions the cursor at the window of the earliest
// bucket-resident event. At least one bucket must be non-empty.
func (c *calendarQueue) jumpToMin() {
	first := true
	var min simtime.Time
	for _, b := range c.buckets {
		for _, e := range b {
			if first || e.at < min {
				min = e.at
				first = false
			}
		}
	}
	c.cur = c.bucketOf(min)
	c.curTop = c.windowTop(min)
}

// grow doubles the table at the current width so occupancy returns to ~1
// entry/bucket; the width review keeps the width itself honest.
func (c *calendarQueue) grow() {
	n := 2 * len(c.buckets)
	old := c.buckets
	c.buckets = make([][]entry, n)
	c.mask = n - 1
	c.redistribute(old)
	c.growAt = 2 * n
	c.shrinkAt = n / 2
}

// rebucket redistributes every entry into a fresh table of the same size at
// a new bucket width.
func (c *calendarQueue) rebucket(shift uint) {
	old := c.buckets
	c.shift = shift
	c.buckets = make([][]entry, len(old))
	c.redistribute(old)
}

// shrink halves the table by pairwise merge at the same width: bucket i
// absorbs bucket i+n, exactly preserving the (t/width) mod n mapping. The
// lower half's backing arrays are reused, so a queue that drains and refills
// at a steady small size never reallocates its buckets.
func (c *calendarQueue) shrink() {
	n := len(c.buckets) / 2
	if n < calMinBuckets {
		return
	}
	hasEntries := false
	for i := 0; i < n; i++ {
		if len(c.buckets[i+n]) > 0 {
			c.buckets[i] = append(c.buckets[i], c.buckets[i+n]...)
			c.buckets[i+n] = c.buckets[i+n][:0]
		}
		if len(c.buckets[i]) > 0 {
			hasEntries = true
		}
	}
	c.buckets = c.buckets[:n]
	c.mask = n - 1
	c.growAt = 2 * n
	c.shrinkAt = 0
	if n > calMinBuckets {
		c.shrinkAt = n / 2
	}
	if hasEntries {
		c.jumpToMin()
	} else {
		// No bucket-resident entries (anything live sits in the due
		// buffer), so keep the cursor's time window but remap its bucket
		// index — the (t/width) mod n mapping just changed, and the old
		// index may exceed the halved table.
		c.cur = c.bucketOf(c.curTop - c.width())
	}
	c.headValid = false
}

// drain hands every resident entry (in no particular order) to fn and
// empties the queue, retaining the table, its learned width, and all
// backing arrays for reuse. The width-review sampling state is reset: the
// gaps observed before a drain say nothing about the schedule after the
// queue refills.
func (c *calendarQueue) drain(fn func(entry)) {
	for _, e := range c.due[c.dueHead:] {
		fn(e)
	}
	c.due = c.due[:0]
	c.dueHead = 0
	for i, b := range c.buckets {
		for _, e := range b {
			fn(e)
		}
		c.buckets[i] = b[:0]
	}
	c.count = 0
	c.headValid = false
	c.pops = 0
	c.gapSum = 0
	c.scanWork = 0
	c.havePop = false
}

// redistribute reinserts every entry of the old table and repositions the
// cursor at the new global minimum.
func (c *calendarQueue) redistribute(old [][]entry) {
	first := true
	var min simtime.Time
	for _, b := range old {
		for _, e := range b {
			i := c.bucketOf(e.at)
			c.buckets[i] = append(c.buckets[i], e)
			if first || e.at < min {
				min = e.at
				first = false
			}
		}
	}
	if !first {
		c.cur = c.bucketOf(min)
		c.curTop = c.windowTop(min)
	}
	c.headValid = false
}
