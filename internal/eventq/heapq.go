package eventq

// heapQueue is the 4-ary-heap scheduling queue: compared to the binary
// layout it halves the sift depth (and therefore the swap count) at the
// price of up to three extra comparisons per level — a good trade when the
// comparison keys live inline in the pointer-free entries, as the four
// children share cache lines.
//
// It was the engine's only queue before the calendar queue landed; it is
// kept behind the WithHeapQueue option as the O(log n)-pop reference for
// correctness tests and for the `make bench` scheduler ablation.
type heapQueue struct {
	h []entry
}

func (q *heapQueue) length() int { return len(q.h) }

// peek returns the earliest entry without removing it.
func (q *heapQueue) peek() entry { return q.h[0] }

// push appends an entry and restores the heap invariant (sift-up).
func (q *heapQueue) push(it entry) {
	h := append(q.h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.h = h
}

// pop removes and returns the earliest entry. Callers must check length.
func (q *heapQueue) pop() entry {
	h := q.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	q.h = h
	// Sift-down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if h[j].before(h[min]) {
				min = j
			}
		}
		if !h[min].before(h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}
