package eventq

import (
	"fmt"
	"math/rand"
	"testing"

	"switchpointer/internal/simtime"
)

// queueImpls enumerates the scheduling-queue implementations under test.
// The random workloads drive the hybrid's population across both migration
// thresholds (fill bursts cross hybridUp, drain bursts cross hybridDown),
// so the heap↔calendar migrations are exercised by every property run.
func queueImpls() map[string]func() pq {
	return map[string]func() pq{
		"heap":     func() pq { return &heapQueue{} },
		"calendar": func() pq { return newCalendarQueue() },
		"hybrid":   func() pq { return newHybridQueue() },
	}
}

// TestCalendarMatchesHeapPopOrder is the property gate for the calendar
// queue: under randomized push/pop workloads that respect the engine's
// no-past-scheduling invariant, the calendar queue must pop byte-identically
// to the heap — including the seq tie-break for simultaneous events. The
// time distributions deliberately cover the shapes that stress a calendar
// queue: dense near-monotonic schedules (the simulator's common case), heavy
// ties, sparse jumps that force empty-year scans, far-future stragglers that
// would skew a naive width estimate, and drain/refill cycles that cross the
// resize thresholds both ways.
func TestCalendarMatchesHeapPopOrder(t *testing.T) {
	type dist struct {
		name string
		gap  func(r *rand.Rand) simtime.Time
	}
	dists := []dist{
		{"near-monotonic", func(r *rand.Rand) simtime.Time { return simtime.Time(r.Intn(2000)) }},
		{"heavy-ties", func(r *rand.Rand) simtime.Time { return simtime.Time(r.Intn(3)) * 100 }},
		{"sparse-jumps", func(r *rand.Rand) simtime.Time {
			if r.Intn(10) == 0 {
				return simtime.Time(r.Intn(10)) * simtime.Second
			}
			return simtime.Time(r.Intn(50))
		}},
		{"far-stragglers", func(r *rand.Rand) simtime.Time {
			if r.Intn(100) == 0 {
				return simtime.Time(3600) * simtime.Second
			}
			return simtime.Time(r.Intn(500))
		}},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			h := &heapQueue{}
			c := newCalendarQueue()
			y := newHybridQueue()
			var now simtime.Time
			var seq uint64
			push := func() {
				e := entry{at: now + d.gap(r), seq: seq, idx: int32(seq)}
				seq++
				h.push(e)
				c.push(e)
				y.push(e)
			}
			popBoth := func() {
				if h.peek() != c.peek() || h.peek() != y.peek() {
					t.Fatalf("peek diverged: heap=%+v calendar=%+v hybrid=%+v", h.peek(), c.peek(), y.peek())
				}
				hp, cp, yp := h.pop(), c.pop(), y.pop()
				if hp != cp || hp != yp {
					t.Fatalf("pop diverged at now=%v: heap=%+v calendar=%+v hybrid=%+v", now, hp, cp, yp)
				}
				now = hp.at
			}
			for op := 0; op < 20000; op++ {
				switch {
				case h.length() == 0:
					push()
				case r.Intn(5) == 0:
					// Drain bursts cross the shrink threshold.
					for i := 0; i < r.Intn(40)+1 && h.length() > 0; i++ {
						popBoth()
					}
				case r.Intn(2) == 0:
					// Fill bursts cross the grow threshold.
					for i := 0; i < r.Intn(40)+1; i++ {
						push()
					}
				default:
					popBoth()
				}
			}
			for h.length() > 0 {
				popBoth()
			}
			if c.length() != 0 || y.length() != 0 {
				t.Fatalf("calendar retains %d, hybrid %d entries after heap drained", c.length(), y.length())
			}
		})
	}
}

// TestEngineBehaviourBothQueues runs an end-to-end engine workload —
// nested scheduling, cancellation, weak timers, RunUntil slicing — under
// both queue options and requires the identical fire trace.
func TestEngineBehaviourBothQueues(t *testing.T) {
	run := func(opt Option) []string {
		e := New(opt)
		var trace []string
		fire := func(tag string) func() {
			return func() { trace = append(trace, fmt.Sprintf("%s@%d", tag, e.Now())) }
		}
		r := rand.New(rand.NewSource(7))
		var timers []Timer
		for i := 0; i < 500; i++ {
			at := simtime.Time(r.Intn(5000))
			timers = append(timers, e.At(at, fire(fmt.Sprintf("a%d", i))))
		}
		for i := 0; i < 100; i++ {
			timers[r.Intn(len(timers))].Stop()
		}
		e.At(1000, func() {
			trace = append(trace, "nest")
			e.After(250, fire("nested"))
		})
		e.EveryWeak(333, func() { trace = append(trace, fmt.Sprintf("w@%d", e.Now())) })
		e.RunUntil(2500)
		e.Run()
		trace = append(trace, fmt.Sprintf("end@%d/%d", e.Now(), e.Processed()))
		return trace
	}
	heap := run(WithHeapQueue())
	for name, opt := range map[string]Option{"calendar": WithCalendarQueue(), "hybrid": WithHybridQueue()} {
		got := run(opt)
		if len(heap) != len(got) {
			t.Fatalf("trace lengths differ: heap=%d %s=%d", len(heap), name, len(got))
		}
		for i := range heap {
			if heap[i] != got[i] {
				t.Fatalf("trace diverged at %d: heap=%q %s=%q", i, heap[i], name, got[i])
			}
		}
	}
}

// TestStepZeroAllocBothQueues gates the steady-state allocation contract
// for each queue implementation explicitly (TestStepZeroAlloc covers the
// default): with the arena free list and the queue's storage warm, a
// schedule+Step cycle performs zero heap allocations.
func TestStepZeroAllocBothQueues(t *testing.T) {
	for name, opt := range map[string]Option{
		"heap": WithHeapQueue(), "calendar": WithCalendarQueue(), "hybrid": WithHybridQueue(),
	} {
		t.Run(name, func(t *testing.T) {
			e := New(opt)
			fn := func() {}
			// Warm through a grow/shrink cycle so the steady state measured
			// below reuses existing bucket storage.
			for i := 0; i < 64; i++ {
				e.At(e.Now()+simtime.Time(i), fn)
			}
			for e.Step() {
			}
			for i := 0; i < 256; i++ {
				e.At(e.Now()+1, fn)
				e.Step()
			}
			allocs := testing.AllocsPerRun(1000, func() {
				e.At(e.Now()+1, fn)
				e.Step()
			})
			if allocs != 0 {
				t.Fatalf("%s: steady-state Step: %v allocs/op, want 0", name, allocs)
			}
		})
	}
}

// TestCalendarSparseThenDense exercises the direct-search jump: a lone
// far-future event after a dense burst must not be popped early, and a
// fresh dense burst scheduled behind the jumped cursor must still pop first.
func TestCalendarSparseThenDense(t *testing.T) {
	e := New(WithCalendarQueue())
	var got []simtime.Time
	rec := func() { got = append(got, e.Now()) }
	e.At(3600*simtime.Second, rec)
	e.RunUntil(simtime.Second) // jumps the cursor to the straggler's window
	if len(got) != 0 {
		t.Fatalf("straggler fired early at %v", got)
	}
	// Schedule dense work far behind the cursor's jumped position.
	for i := 0; i < 100; i++ {
		e.At(simtime.Second+simtime.Time(i), rec)
	}
	e.Run()
	if len(got) != 101 {
		t.Fatalf("fired %d events, want 101", len(got))
	}
	for i := 0; i < 100; i++ {
		if got[i] != simtime.Second+simtime.Time(i) {
			t.Fatalf("event %d fired at %v", i, got[i])
		}
	}
	if got[100] != 3600*simtime.Second {
		t.Fatalf("straggler fired at %v", got[100])
	}
}

// TestCalendarShrinkRemapsCursor is the regression gate for shrinking while
// every live entry sits in the due buffer: the halved table changes the
// (t/width) mod n mapping, and the scan cursor must be remapped even though
// there is no bucket-resident minimum to jump to — otherwise the next
// findHead indexes past the shortened bucket table.
func TestCalendarShrinkRemapsCursor(t *testing.T) {
	c := newCalendarQueue()
	var seq uint64
	push := func(at simtime.Time) {
		c.push(entry{at: at, seq: seq, idx: int32(seq)})
		seq++
	}
	w := c.width()
	// Grow the table to 32 buckets (count 33 > growAt 32).
	for i := 0; i < 33; i++ {
		push(simtime.Time(i) * w)
	}
	// A 17-entry tie run in a bucket index above the post-shrink mask.
	for i := 0; i < 17; i++ {
		push(50 * w)
	}
	// Drain the singles, then serve two run entries from the due buffer —
	// count passes below shrinkAt (16) with every live entry in the due
	// buffer, so shrink runs with no bucket-resident entries.
	for i := 0; i < 35; i++ {
		c.pop()
	}
	if len(c.buckets) != calMinBuckets {
		t.Fatalf("table not shrunk: %d buckets", len(c.buckets))
	}
	// New bucket-resident work while the run is still being served, then a
	// full drain: pops must stay ordered and must not panic.
	push(60 * w)
	var last simtime.Time
	n := 0
	for c.length() > 0 {
		e := c.pop()
		if e.at < last {
			t.Fatalf("pop order violated: %v after %v", e.at, last)
		}
		last = e.at
		n++
	}
	if n != 16 || last != 60*w {
		t.Fatalf("drained %d entries ending at %v, want 16 ending at %v", n, last, 60*w)
	}
}

// TestHybridMigratesAcrossThresholds pins the hybrid's regime machinery
// directly: filling past hybridUp must move every entry onto the calendar,
// draining to hybridDown must move the remainder back to the heap, and pop
// order must match the heap reference across both migrations — including a
// tie run straddling a migration point.
func TestHybridMigratesAcrossThresholds(t *testing.T) {
	y := newHybridQueue()
	h := &heapQueue{}
	var seq uint64
	push := func(at simtime.Time) {
		e := entry{at: at, seq: seq, idx: int32(seq)}
		seq++
		y.push(e)
		h.push(e)
	}
	// Fill well past hybridUp, with a tie cluster near the front.
	for i := 0; i < 3*hybridUp; i++ {
		push(simtime.Time(100 + (i%40)*25)) // many exact-time ties
	}
	if !y.inCal {
		t.Fatalf("population %d did not migrate to calendar (up=%d)", y.length(), hybridUp)
	}
	if y.heap.length() != 0 {
		t.Fatalf("heap regime retains %d entries after migration", y.heap.length())
	}
	// Drain everything; order must match the reference through the
	// calendar→heap migration at hybridDown.
	var now simtime.Time
	refilled := false
	for h.length() > 0 {
		if y.length() != h.length() {
			t.Fatalf("length diverged: hybrid=%d heap=%d", y.length(), h.length())
		}
		hp, yp := h.pop(), y.pop()
		if hp != yp {
			t.Fatalf("pop diverged at now=%v: heap=%+v hybrid=%+v", now, hp, yp)
		}
		now = hp.at
		// Once: refill below the down-threshold so the heap regime is
		// re-entered with live traffic, then crossed upward again.
		if !refilled && h.length() == hybridDown-2 {
			refilled = true
			for i := 0; i < hybridUp; i++ {
				push(now + simtime.Time(1+i))
			}
		}
	}
	if y.length() != 0 {
		t.Fatalf("hybrid retains %d entries", y.length())
	}
	if y.inCal {
		t.Fatal("empty hybrid still in calendar regime")
	}
}

// BenchmarkQueuePopNearMonotonic is the scheduler ablation at the queue
// level: a packet-arrival-like schedule (push one, pop one, small forward
// gaps) over a standing population of pending events.
func BenchmarkQueuePopNearMonotonic(b *testing.B) {
	for _, standing := range []int{64, 4096} {
		for name, mk := range queueImpls() {
			b.Run(fmt.Sprintf("%s/standing=%d", name, standing), func(b *testing.B) {
				q := mk()
				r := rand.New(rand.NewSource(42))
				var now simtime.Time
				var seq uint64
				for i := 0; i < standing; i++ {
					q.push(entry{at: now + simtime.Time(r.Intn(10000)), seq: seq})
					seq++
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e := q.pop()
					now = e.at
					q.push(entry{at: now + simtime.Time(r.Intn(2000)), seq: seq})
					seq++
				}
			})
		}
	}
}
