package eventq

// hybridQueue is the engine's default scheduling queue: the bucketed
// calendar queue (calendar.go) for the standing populations real
// simulations produce, with a 4-ary-heap regime below a small population
// threshold where the heap's two-or-three inline comparisons beat any
// bucket scan. Measured on the simulator event-rate workloads, the
// crossover sits around a few dozen pending events: a near-idle network
// (single flow, ≈10 standing events) runs ~10% faster on the heap, while a
// loaded one (tens of flows, ≈100+ standing events) runs ~30% faster on
// the calendar.
//
// Entries live in exactly one regime at a time. Regime switches migrate
// every entry and happen at deterministic population thresholds, so the
// queue as a whole remains fully deterministic: both regimes pop the
// globally smallest (at, seq) entry, hence pop order — and therefore every
// simulation result — is identical to either pure implementation. The
// thresholds carry 4× hysteresis so a population hovering at the boundary
// cannot thrash migrations, and both regimes retain their backing storage
// across switches, keeping steady-state Step allocation-free.
type hybridQueue struct {
	heap  heapQueue
	cal   *calendarQueue
	inCal bool
	mode  queueMode
}

// queueMode pins a hybridQueue to one regime for the scheduler ablation
// and the pure-implementation property tests. The engine always schedules
// on a concrete *hybridQueue — pinned or adaptive — so the per-event
// push/pop/peek calls devirtualize instead of going through an interface.
type queueMode uint8

const (
	// modeAdaptive migrates between regimes at the population thresholds
	// (the default).
	modeAdaptive queueMode = iota
	// modeHeapOnly schedules on the 4-ary heap forever.
	modeHeapOnly
	// modeCalendarOnly schedules on the calendar queue forever.
	modeCalendarOnly
)

const (
	// hybridUp moves scheduling onto the calendar when the heap regime's
	// population reaches it.
	hybridUp = 64
	// hybridDown falls back to the heap when the calendar regime's
	// population drains to it.
	hybridDown = 16
)

func newHybridQueue() *hybridQueue {
	return &hybridQueue{cal: newCalendarQueue()}
}

// newPinnedQueue returns a hybridQueue locked to one regime.
func newPinnedQueue(mode queueMode) *hybridQueue {
	q := &hybridQueue{cal: newCalendarQueue(), mode: mode}
	if mode == modeCalendarOnly {
		q.inCal = true
	}
	return q
}

func (q *hybridQueue) length() int {
	if q.inCal {
		return q.cal.length()
	}
	return q.heap.length()
}

func (q *hybridQueue) push(e entry) {
	if q.inCal {
		q.cal.push(e)
		return
	}
	q.heap.push(e)
	if q.mode == modeAdaptive && q.heap.length() >= hybridUp {
		q.toCalendar()
	}
}

func (q *hybridQueue) pop() entry {
	if !q.inCal {
		return q.heap.pop()
	}
	e := q.cal.pop()
	if q.mode == modeAdaptive && q.cal.length() <= hybridDown {
		q.toHeap()
	}
	return e
}

func (q *hybridQueue) peek() entry {
	if q.inCal {
		return q.cal.peek()
	}
	return q.heap.peek()
}

// toCalendar migrates every heap entry into the calendar. Heap order is
// irrelevant: calendar push accepts entries in any order.
func (q *hybridQueue) toCalendar() {
	for _, e := range q.heap.h {
		q.cal.push(e)
	}
	q.heap.h = q.heap.h[:0]
	q.inCal = true
}

// toHeap drains the calendar into the heap. The calendar keeps its learned
// bucket width and its backing arrays for the next upswing.
func (q *hybridQueue) toHeap() {
	q.cal.drain(func(e entry) { q.heap.push(e) })
	q.inCal = false
}
