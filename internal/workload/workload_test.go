package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPresetMeans(t *testing.T) {
	// §6.1 anchors: enterprise mean > 256 B (≈850 B per Benson et al.);
	// hadoop median ≈ 250 B (Roy et al.).
	ent := EnterpriseDC()
	if ent.Mean() < 700 || ent.Mean() > 1000 {
		t.Fatalf("enterprise mean = %.0f, want ≈850", ent.Mean())
	}
	had := HadoopDC()
	if med := had.Quantile(0.5); med != 250 {
		t.Fatalf("hadoop median = %d, want 250", med)
	}
	if MinimumEthernet().Mean() != 64 || FullMTU().Mean() != 1500 {
		t.Fatalf("degenerate presets wrong")
	}
	if len(Mixes()) != 4 {
		t.Fatalf("Mixes count wrong")
	}
}

func TestSampleMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := EnterpriseDC()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	got := sum / n
	if got < d.Mean()*0.98 || got > d.Mean()*1.02 {
		t.Fatalf("empirical mean %.1f vs analytic %.1f", got, d.Mean())
	}
}

func TestNewSizeDistValidation(t *testing.T) {
	if _, err := NewSizeDist("x", nil); err == nil {
		t.Fatalf("empty accepted")
	}
	if _, err := NewSizeDist("x", []SizePoint{{Size: -1, Weight: 1}}); err == nil {
		t.Fatalf("negative size accepted")
	}
	if _, err := NewSizeDist("x", []SizePoint{{Size: 100, Weight: 0}}); err == nil {
		t.Fatalf("zero weight accepted")
	}
	d, err := NewSizeDist("ok", []SizePoint{{Size: 100, Weight: 2}, {Size: 200, Weight: 2}})
	if err != nil || d.Mean() != 150 || d.Name() != "ok" {
		t.Fatalf("build failed: %v %v", d, err)
	}
}

func TestQuantileMonotone(t *testing.T) {
	d := HadoopDC()
	prev := 0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		s := d.Quantile(q)
		if s < prev {
			t.Fatalf("quantiles not monotone at %v", q)
		}
		prev = s
	}
}

func TestPropertySamplesWithinSupport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := EnterpriseDC()
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < 64 || s > 1500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowSizesHeavyTail(t *testing.T) {
	sizes := FlowSizes(10000, 1<<20, 7)
	var small, elephant int
	for _, s := range sizes {
		if s <= 2<<20 {
			small++
		}
		if s >= 20<<20 {
			elephant++
		}
	}
	if small < 4000 {
		t.Fatalf("mice underrepresented: %d", small)
	}
	if elephant == 0 || elephant > 1000 {
		t.Fatalf("elephants = %d, want a thin tail", elephant)
	}
	// Deterministic per seed.
	again := FlowSizes(10000, 1<<20, 7)
	for i := range sizes {
		if sizes[i] != again[i] {
			t.Fatalf("not deterministic")
		}
	}
}
