// Package workload provides empirical datacenter traffic models: packet-size
// mixes and heavy-tailed flow sizes, plus a deterministic background-traffic
// generator for testbeds.
//
// The paper's Fig 9 argument leans on measured datacenter packet sizes —
// "an average packet size in data centers is in general larger than 256
// bytes (e.g., 850 bytes [Benson et al.], median value of 250 bytes for
// hadoop traffic [Roy et al.])" (§6.1) — so the throughput degradation below
// 256 B is acceptable in practice. This package encodes those mixes so the
// claim can be evaluated quantitatively (see the packet-mix experiment).
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// SizePoint is one (size, weight) element of an empirical distribution.
type SizePoint struct {
	Size   int
	Weight float64
}

// SizeDist is a discrete empirical size distribution.
type SizeDist struct {
	name   string
	points []SizePoint
	cum    []float64
	mean   float64
}

// NewSizeDist builds a distribution from weighted points (weights need not
// be normalized).
func NewSizeDist(name string, points []SizePoint) (*SizeDist, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: empty distribution %q", name)
	}
	d := &SizeDist{name: name, points: append([]SizePoint(nil), points...)}
	sort.Slice(d.points, func(i, j int) bool { return d.points[i].Size < d.points[j].Size })
	var total float64
	for _, p := range d.points {
		if p.Size <= 0 || p.Weight < 0 {
			return nil, fmt.Errorf("workload: bad point %+v in %q", p, name)
		}
		total += p.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: zero total weight in %q", name)
	}
	acc := 0.0
	d.cum = make([]float64, len(d.points))
	for i, p := range d.points {
		acc += p.Weight / total
		d.cum[i] = acc
		d.mean += float64(p.Size) * p.Weight / total
	}
	d.cum[len(d.cum)-1] = 1.0
	return d, nil
}

// Name returns the distribution's label.
func (d *SizeDist) Name() string { return d.name }

// Mean returns the expected size.
func (d *SizeDist) Mean() float64 { return d.mean }

// Sample draws one size.
func (d *SizeDist) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range d.cum {
		if u <= c {
			return d.points[i].Size
		}
	}
	return d.points[len(d.points)-1].Size
}

// Quantile returns the smallest size s with CDF(s) ≥ q.
func (d *SizeDist) Quantile(q float64) int {
	for i, c := range d.cum {
		if q <= c {
			return d.points[i].Size
		}
	}
	return d.points[len(d.points)-1].Size
}

// mustDist builds a preset (panics only on programmer error).
func mustDist(name string, points []SizePoint) *SizeDist {
	d, err := NewSizeDist(name, points)
	if err != nil {
		panic(err)
	}
	return d
}

// EnterpriseDC models the Benson et al. enterprise/datacenter packet mix:
// bimodal small-ACK / full-MTU with a mean near 850 B.
func EnterpriseDC() *SizeDist {
	return mustDist("enterprise-dc", []SizePoint{
		{Size: 64, Weight: 0.18},
		{Size: 256, Weight: 0.10},
		{Size: 576, Weight: 0.12},
		{Size: 1024, Weight: 0.18},
		{Size: 1500, Weight: 0.42},
	})
}

// HadoopDC models the Roy et al. (Facebook) hadoop traffic: median ≈250 B,
// ACK-heavy.
func HadoopDC() *SizeDist {
	return mustDist("hadoop-dc", []SizePoint{
		{Size: 64, Weight: 0.25},
		{Size: 128, Weight: 0.15},
		{Size: 250, Weight: 0.22},
		{Size: 576, Weight: 0.13},
		{Size: 1500, Weight: 0.25},
	})
}

// MinimumEthernet is the worst case: all 64 B packets.
func MinimumEthernet() *SizeDist {
	return mustDist("all-64B", []SizePoint{{Size: 64, Weight: 1}})
}

// FullMTU is the best case: all 1500 B packets.
func FullMTU() *SizeDist {
	return mustDist("all-1500B", []SizePoint{{Size: 1500, Weight: 1}})
}

// Mixes returns the standard evaluation set.
func Mixes() []*SizeDist {
	return []*SizeDist{MinimumEthernet(), HadoopDC(), EnterpriseDC(), FullMTU()}
}

// FlowSizes draws n heavy-tailed flow sizes (bytes) with the given median —
// a crude Pareto-like model (80% mice below ~2× median, few elephants) for
// background traffic generation.
func FlowSizes(n int, median int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		u := rng.Float64()
		switch {
		case u < 0.5:
			out[i] = median/2 + rng.Int63n(median)
		case u < 0.8:
			out[i] = median + rng.Int63n(3*median)
		case u < 0.95:
			out[i] = 4*median + rng.Int63n(16*median)
		default:
			out[i] = 20*median + rng.Int63n(80*median)
		}
	}
	return out
}
