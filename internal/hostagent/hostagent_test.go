package hostagent

import (
	"context"
	"testing"

	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

func params() header.Params {
	return header.Params{
		Alpha: 10 * simtime.Millisecond,
		Eps:   10 * simtime.Millisecond,
		Delta: 20 * simtime.Millisecond,
	}
}

// testbed builds a chain with embedders installed and agents on all hosts.
func testbed(t *testing.T) (*netsim.Network, *topo.Topology, map[netsim.IPv4]*Agent) {
	t.Helper()
	net := netsim.New()
	net.NewSwitchQueue = func() netsim.Queue { return netsim.NewPriorityQueue(netsim.DefaultSwitchBufBytes) }
	tp := topo.Chain(net, []int{2, 2, 2}, topo.Config{})
	emb := &header.Embedder{Topo: tp, Mode: header.ModeCommodity, Params: params()}
	for _, sw := range tp.Switches() {
		sw.Pipeline = append(sw.Pipeline, emb.Stage())
	}
	dec := &header.Decoder{Topo: tp, Mode: header.ModeCommodity, Params: params()}
	agents := make(map[netsim.IPv4]*Agent)
	for _, h := range tp.Hosts() {
		agents[h.IP()] = New(net, h, dec, Config{})
	}
	return net, tp, agents
}

func TestRecordsBuiltFromTraffic(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 5, DstPort: 6, Proto: netsim.ProtoUDP}
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow: flow, RateBps: 100_000_000, Start: 0, Duration: 30 * simtime.Millisecond})
	net.Run()

	ag := agents[dst.IP()]
	if ag.Received == 0 || ag.DecodeErrors != 0 {
		t.Fatalf("received=%d decodeErrors=%d", ag.Received, ag.DecodeErrors)
	}
	rec, ok := ag.Store.Lookup(flow)
	if !ok {
		t.Fatalf("no record for flow")
	}
	if len(rec.Path) != 3 {
		t.Fatalf("path = %v", rec.Path)
	}
	if rec.Bytes == 0 || rec.Pkts == 0 {
		t.Fatalf("counters empty")
	}
	// 30 ms at α=10ms spans epochs 0..2; tagging switch range must cover
	// roughly that.
	s1, _ := tp.SwitchByName("S1")
	er, ok := rec.EpochsAt(s1.NodeID())
	if !ok || er.Len() < 2 {
		t.Fatalf("S1 epochs = %v", er)
	}
}

func TestThroughputDropTrigger(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	udpSrc, _ := tp.HostByName("h1-2")
	udpDst, _ := tp.HostByName("h3-2")

	var alerts []Alert
	ag := agents[dst.IP()]
	ag.OnAlert = func(a Alert) { alerts = append(alerts, a) }
	ag.StartTriggers()

	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoTCP}
	transport.StartTCP(net, src, dst, transport.TCPConfig{
		Flow: flow, Priority: 0, Duration: 100 * simtime.Millisecond})
	// High-priority blast at t=50ms starves the TCP flow.
	transport.StartUDP(net, udpSrc, transport.UDPConfig{
		Flow:     netsim.FlowKey{Src: udpSrc.IP(), Dst: udpDst.IP(), SrcPort: 2, DstPort: 2},
		Priority: 7, RateBps: netsim.Rate1G,
		Start: 50 * simtime.Millisecond, Duration: 10 * simtime.Millisecond})
	net.RunUntil(120 * simtime.Millisecond)

	var got *Alert
	for i := range alerts {
		if alerts[i].Flow == flow {
			got = &alerts[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("no alert for the starved flow (alerts: %d)", len(alerts))
	}
	if got.Kind != AlertThroughputDrop {
		t.Fatalf("kind = %v", got.Kind)
	}
	// Detection within a few ms of the 50 ms starvation onset.
	if got.DetectedAt < 50*simtime.Millisecond || got.DetectedAt > 60*simtime.Millisecond {
		t.Fatalf("DetectedAt = %v", got.DetectedAt)
	}
	if got.PrevGbps < 0.5 || got.CurGbps > got.PrevGbps/2 {
		t.Fatalf("drop magnitudes: prev=%v cur=%v", got.PrevGbps, got.CurGbps)
	}
	// Alert must carry the <switch, epochs> tuples for the whole path.
	if len(got.Tuples) != 3 {
		t.Fatalf("tuples = %d, want 3", len(got.Tuples))
	}
	s1, _ := tp.SwitchByName("S1")
	if got.Tuples[0].Switch != s1.NodeID() {
		t.Fatalf("first tuple switch = %v", got.Tuples[0].Switch)
	}
	if got.Tuples[0].EpochBytes == nil {
		t.Fatalf("tagging-switch tuple missing per-epoch byte counts")
	}
}

func TestTriggerCooldownSuppressesDuplicates(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	udpSrc, _ := tp.HostByName("h1-2")
	udpDst, _ := tp.HostByName("h3-2")
	ag := agents[dst.IP()]
	count := 0
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoTCP}
	ag.OnAlert = func(a Alert) {
		if a.Flow == flow {
			count++
		}
	}
	ag.StartTriggers()
	transport.StartTCP(net, src, dst, transport.TCPConfig{
		Flow: flow, Priority: 0, Duration: 80 * simtime.Millisecond})
	transport.StartUDP(net, udpSrc, transport.UDPConfig{
		Flow:     netsim.FlowKey{Src: udpSrc.IP(), Dst: udpDst.IP(), SrcPort: 2, DstPort: 2},
		Priority: 7, RateBps: netsim.Rate1G,
		Start: 40 * simtime.Millisecond, Duration: 5 * simtime.Millisecond})
	net.RunUntil(100 * simtime.Millisecond)
	if count > 2 {
		t.Fatalf("cooldown failed: %d alerts for one event", count)
	}
}

func TestStopTriggers(t *testing.T) {
	net, tp, agents := testbed(t)
	dst, _ := tp.HostByName("h3-1")
	ag := agents[dst.IP()]
	ag.StartTriggers()
	ag.StartTriggers() // idempotent
	ag.StopTriggers()
	ag.OnAlert = func(a Alert) { t.Errorf("alert after StopTriggers") }
	net.RunUntil(20 * simtime.Millisecond)
}

func TestQueryHeaders(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 9, DstPort: 9, Proto: netsim.ProtoUDP}
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow: flow, RateBps: 200_000_000, Start: 0, Duration: 25 * simtime.Millisecond})
	net.Run()
	ag := agents[dst.IP()]
	s2, _ := tp.SwitchByName("S2")

	recs := ag.QueryHeaders(context.Background(), HeadersQuery{Switch: s2.NodeID(), Epochs: simtime.EpochRange{Lo: 0, Hi: 5}}).Records
	if len(recs) != 1 || recs[0].Flow != flow {
		t.Fatalf("QueryHeaders = %v", recs)
	}
	// Epoch window far in the future matches nothing.
	if recs := ag.QueryHeaders(context.Background(), HeadersQuery{Switch: s2.NodeID(), Epochs: simtime.EpochRange{Lo: 1000, Hi: 2000}}).Records; len(recs) != 0 {
		t.Fatalf("future epochs should match nothing")
	}
	// Unknown switch matches nothing.
	if recs := ag.QueryHeaders(context.Background(), HeadersQuery{Switch: 999, Epochs: simtime.EpochRange{Lo: 0, Hi: 5}}).Records; len(recs) != 0 {
		t.Fatalf("unknown switch should match nothing")
	}
}

func TestQueryTopK(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	s2, _ := tp.SwitchByName("S2")
	// Three flows with distinct rates to the same destination.
	for i, rate := range []int64{50_000_000, 150_000_000, 100_000_000} {
		transport.StartUDP(net, src, transport.UDPConfig{
			Flow:    netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: uint16(10 + i), DstPort: 7, Proto: netsim.ProtoUDP},
			RateBps: rate, Start: 0, Duration: 20 * simtime.Millisecond})
	}
	net.Run()
	ag := agents[dst.IP()]
	top := ag.QueryTopK(context.Background(), s2.NodeID(), 2)
	if len(top) != 2 {
		t.Fatalf("topk = %d", len(top))
	}
	if top[0].Flow.SrcPort != 11 || top[1].Flow.SrcPort != 12 {
		t.Fatalf("topk order wrong: %+v", top)
	}
	if top[0].Bytes <= top[1].Bytes {
		t.Fatalf("topk not descending")
	}
	if all := ag.QueryTopK(context.Background(), s2.NodeID(), 0); len(all) != 3 {
		t.Fatalf("k=0 should return all: %d", len(all))
	}
}

func TestQueryPriorityAndFlowSizes(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	s1, _ := tp.SwitchByName("S1")
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 3, DstPort: 4, Proto: netsim.ProtoUDP}
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow: flow, Priority: 5, RateBps: 100_000_000, Start: 0, Duration: 10 * simtime.Millisecond})
	net.Run()
	ag := agents[dst.IP()]
	if prio, ok := ag.QueryPriority(context.Background(), flow); !ok || prio != 5 {
		t.Fatalf("QueryPriority = %d %v", prio, ok)
	}
	if _, ok := ag.QueryPriority(context.Background(), netsim.FlowKey{Src: 1}); ok {
		t.Fatalf("unknown flow priority should miss")
	}
	sizes := ag.QueryFlowSizes(context.Background(), s1.NodeID())
	if len(sizes) != 1 || sizes[0].Bytes == 0 || sizes[0].Link == 0 {
		t.Fatalf("QueryFlowSizes = %+v", sizes)
	}
}

func TestInjectTimeout(t *testing.T) {
	net, tp, agents := testbed(t)
	src, _ := tp.HostByName("h1-1")
	dst, _ := tp.HostByName("h3-1")
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 3, DstPort: 4, Proto: netsim.ProtoTCP}
	transport.StartUDP(net, src, transport.UDPConfig{ // some traffic so a record exists
		Flow: flow, RateBps: 100_000_000, Start: 0, Duration: 5 * simtime.Millisecond})
	net.Run()
	ag := agents[dst.IP()]
	var got Alert
	ag.OnAlert = func(a Alert) { got = a }
	ag.InjectTimeout(flow, 42*simtime.Millisecond)
	if got.Kind != AlertTimeout || got.Flow != flow || len(got.Tuples) != 3 {
		t.Fatalf("timeout alert = %+v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MeterInterval != simtime.Millisecond || c.DropFraction != 0.5 {
		t.Fatalf("defaults: %+v", c)
	}
	if AlertThroughputDrop.String() == "" || AlertTimeout.String() == "" || AlertKind(9).String() == "" {
		t.Fatalf("AlertKind.String broken")
	}
}
