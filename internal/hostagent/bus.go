package hostagent

import (
	"sync"

	"switchpointer/internal/netsim"
)

// AlertFilter selects which alerts a subscription receives. Zero-valued
// fields match everything, so the zero AlertFilter subscribes to all alerts.
type AlertFilter struct {
	// Flow restricts delivery to alerts for one flow (zero = any flow).
	Flow netsim.FlowKey
	// Host restricts delivery to alerts raised by one host (zero = any).
	Host netsim.IPv4
	// Kind restricts delivery to one alert kind (zero = any).
	Kind AlertKind
}

// Match reports whether the filter accepts the alert.
func (f AlertFilter) Match(a Alert) bool {
	if f.Flow != (netsim.FlowKey{}) && a.Flow != f.Flow {
		return false
	}
	if f.Host != 0 && a.Host != f.Host {
		return false
	}
	if f.Kind != 0 && a.Kind != f.Kind {
		return false
	}
	return true
}

// DefaultSubscriptionBuffer is the per-subscriber channel capacity.
const DefaultSubscriptionBuffer = 64

// Bus fans alerts out to subscribers. Publishing never blocks the
// simulation: each subscriber gets a buffered channel, and an alert that
// finds a subscriber's buffer full is dropped for that subscriber (counted
// in Dropped). Closing the bus closes every subscriber channel; late
// subscriptions on a closed bus receive an already-closed channel.
type Bus struct {
	mu      sync.Mutex
	subs    []*busSub
	closed  bool
	dropped uint64
}

type busSub struct {
	filter AlertFilter
	ch     chan Alert
}

// NewBus returns an empty alert bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers a subscriber for alerts matching the filter, with the
// default buffer capacity.
func (b *Bus) Subscribe(f AlertFilter) <-chan Alert {
	return b.SubscribeBuffered(f, DefaultSubscriptionBuffer)
}

// SubscribeBuffered registers a subscriber with an explicit buffer capacity
// (minimum 1).
func (b *Bus) SubscribeBuffered(f AlertFilter, buf int) <-chan Alert {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Alert, buf)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(ch)
		return ch
	}
	b.subs = append(b.subs, &busSub{filter: f, ch: ch})
	return ch
}

// Publish delivers the alert to every matching subscriber and reports how
// many received it. Full buffers drop rather than block.
func (b *Bus) Publish(a Alert) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	delivered := 0
	for _, s := range b.subs {
		if !s.filter.Match(a) {
			continue
		}
		select {
		case s.ch <- a:
			delivered++
		default:
			b.dropped++
		}
	}
	return delivered
}

// Dropped returns how many alert deliveries were lost to full buffers.
func (b *Bus) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close shuts the bus down: every subscriber channel is closed after any
// buffered alerts drain, and future publishes are discarded. Close is
// idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		close(s.ch)
	}
	b.subs = nil
}
