package hostagent

import (
	"testing"

	"switchpointer/internal/netsim"
)

func alertFor(flow netsim.FlowKey, host netsim.IPv4, kind AlertKind) Alert {
	return Alert{Kind: kind, Flow: flow, Host: host}
}

func TestBusFanOutAndFilters(t *testing.T) {
	b := NewBus()
	flowA := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 1), Dst: netsim.IP(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: 6}
	flowB := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 3), Dst: netsim.IP(10, 0, 0, 4), SrcPort: 3, DstPort: 4, Proto: 17}

	all1 := b.Subscribe(AlertFilter{})
	all2 := b.Subscribe(AlertFilter{})
	onlyA := b.Subscribe(AlertFilter{Flow: flowA})
	onlyTimeouts := b.Subscribe(AlertFilter{Kind: AlertTimeout})
	onlyHost := b.Subscribe(AlertFilter{Host: flowB.Dst})

	if n := b.Publish(alertFor(flowA, flowA.Dst, AlertThroughputDrop)); n != 3 {
		t.Fatalf("first publish delivered to %d subscribers, want 3", n)
	}
	if n := b.Publish(alertFor(flowB, flowB.Dst, AlertTimeout)); n != 4 {
		t.Fatalf("second publish delivered to %d subscribers, want 4", n)
	}

	if len(all1) != 2 || len(all2) != 2 {
		t.Fatalf("unfiltered subscribers got %d/%d alerts, want 2 each", len(all1), len(all2))
	}
	if got := <-all1; got.Flow != flowA {
		t.Fatalf("delivery order broken: first alert %v", got.Flow)
	}
	if len(onlyA) != 1 || (<-onlyA).Flow != flowA {
		t.Fatalf("flow filter leaked")
	}
	if len(onlyTimeouts) != 1 || (<-onlyTimeouts).Kind != AlertTimeout {
		t.Fatalf("kind filter leaked")
	}
	if len(onlyHost) != 1 || (<-onlyHost).Host != flowB.Dst {
		t.Fatalf("host filter leaked")
	}
}

func TestBusDropsOnFullBuffer(t *testing.T) {
	b := NewBus()
	ch := b.SubscribeBuffered(AlertFilter{}, 1)
	flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 1), Dst: netsim.IP(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: 6}
	b.Publish(alertFor(flow, flow.Dst, AlertThroughputDrop))
	if n := b.Publish(alertFor(flow, flow.Dst, AlertThroughputDrop)); n != 0 {
		t.Fatalf("overflow publish delivered to %d, want 0", n)
	}
	if b.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Dropped())
	}
	if len(ch) != 1 {
		t.Fatalf("buffer holds %d, want the first alert only", len(ch))
	}
}

func TestBusClose(t *testing.T) {
	b := NewBus()
	flow := netsim.FlowKey{Src: netsim.IP(10, 0, 0, 1), Dst: netsim.IP(10, 0, 0, 2), SrcPort: 1, DstPort: 2, Proto: 6}
	ch := b.Subscribe(AlertFilter{})
	b.Publish(alertFor(flow, flow.Dst, AlertThroughputDrop))
	b.Close()
	b.Close() // idempotent

	// Buffered alerts drain, then the channel reports closed.
	if _, ok := <-ch; !ok {
		t.Fatalf("buffered alert lost on close")
	}
	if _, ok := <-ch; ok {
		t.Fatalf("channel not closed")
	}
	// Publishing after close is discarded, not a panic.
	if n := b.Publish(alertFor(flow, flow.Dst, AlertThroughputDrop)); n != 0 {
		t.Fatalf("publish after close delivered %d", n)
	}
	// Subscribing after close yields an already-closed channel.
	if _, ok := <-b.Subscribe(AlertFilter{}); ok {
		t.Fatalf("subscription on closed bus not closed")
	}
}
