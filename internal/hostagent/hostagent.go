// Package hostagent implements SwitchPointer's end-host component (§4.2):
// the PathDump-derived agent that decodes telemetry from arriving packets,
// maintains flow records, monitors per-flow throughput at millisecond
// granularity, triggers alerts on spurious events, and executes the
// analyzer's distributed queries.
package hostagent

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/header"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/store"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

// Config tunes the agent's trigger engine.
type Config struct {
	// MeterInterval is the throughput sampling period (paper: 1 ms).
	MeterInterval simtime.Time
	// DropFraction is the relative throughput drop that raises an alert
	// (paper: 0.5, i.e. "drop of more than 50%").
	DropFraction float64
	// MinActiveGbps arms the trigger only for flows that were actually
	// moving data; idle flows and ACK streams stay quiet.
	MinActiveGbps float64
	// Cooldown suppresses repeated alerts for the same flow within the
	// given window, so one event produces one alert.
	Cooldown simtime.Time
}

func (c Config) withDefaults() Config {
	if c.MeterInterval == 0 {
		c.MeterInterval = simtime.Millisecond
	}
	if c.DropFraction == 0 {
		c.DropFraction = 0.5
	}
	if c.MinActiveGbps == 0 {
		c.MinActiveGbps = 0.05
	}
	if c.Cooldown == 0 {
		c.Cooldown = 20 * simtime.Millisecond
	}
	return c
}

// AlertKind classifies what the trigger saw.
type AlertKind uint8

// Alert kinds.
const (
	AlertThroughputDrop AlertKind = iota + 1
	AlertTimeout
)

func (k AlertKind) String() string {
	switch k {
	case AlertThroughputDrop:
		return "throughput-drop"
	case AlertTimeout:
		return "tcp-timeout"
	default:
		return fmt.Sprintf("alert(%d)", uint8(k))
	}
}

// AlertTuple is one <switchID, epochID range, per-epoch byte counts> element
// of an alert (§5.1).
type AlertTuple struct {
	Switch     netsim.NodeID
	Epochs     simtime.EpochRange
	EpochBytes map[simtime.Epoch]uint64
}

// Alert is the message a host sends the analyzer when a trigger fires.
type Alert struct {
	Kind       AlertKind
	Flow       netsim.FlowKey
	Host       netsim.IPv4
	DetectedAt simtime.Time
	PrevGbps   float64
	CurGbps    float64
	// Tuples tell the analyzer when and where the victim flow's packets
	// were: one entry per switch on the path.
	Tuples []AlertTuple
}

// Agent is one host's SwitchPointer agent.
type Agent struct {
	host *netsim.Host
	net  *netsim.Network
	dec  *header.Decoder
	cfg  Config

	// Store holds the flow records (the MongoDB substitute).
	Store *store.RecordStore
	// Meters tracks per-flow arrival throughput at MeterInterval.
	Meters *transport.FlowMeters

	// OnAlert, when set, receives trigger events.
	OnAlert func(a Alert)
	// OnEvictError, when set, receives store-eviction flush failures from
	// the EnableRetention sweep (a full disk on the sink, typically).
	OnEvictError func(err error)

	// DecodeErrors counts packets whose telemetry could not be decoded.
	DecodeErrors uint64
	// Received counts packets processed.
	Received uint64

	lastAlert map[netsim.FlowKey]simtime.Time
	armed     bool // StartTriggers called
	trigTimer interface{ Stop() bool }

	// cold is the read-back seam over flushed segments (see SetColdReader).
	cold store.ColdReader

	// Cumulative cold read-back accounting, accumulated per query on top
	// of the per-answer HeadersAnswer counters — the scrape-side totals
	// /metrics exports. Atomics: query executors run concurrently.
	coldSegments atomic.Uint64
	coldRecords  atomic.Uint64
	coldReturned atomic.Uint64
	coldSkipped  atomic.Uint64
	coldTiered   atomic.Uint64
}

// ColdStats is the agent's cumulative cold read-back accounting.
type ColdStats struct {
	// Segments counts cold segments decoded for queries (a segment shared
	// by several queries of one round counts once per charged query,
	// matching the per-answer cost contract).
	Segments uint64
	// Records counts records scanned in those segments.
	Records uint64
	// Returned counts cold records merged into answers.
	Returned uint64
	// SkippedByIndex counts segments ruled out by their manifest index.
	SkippedByIndex uint64
	// Tiered counts tiered-out segment hits (honest answer gaps).
	Tiered uint64
}

// ColdStats returns the cumulative cold read-back counters.
func (a *Agent) ColdStats() ColdStats {
	return ColdStats{
		Segments:       a.coldSegments.Load(),
		Records:        a.coldRecords.Load(),
		Returned:       a.coldReturned.Load(),
		SkippedByIndex: a.coldSkipped.Load(),
		Tiered:         a.coldTiered.Load(),
	}
}

// New attaches a SwitchPointer agent to a host. The agent immediately starts
// decoding arriving packets; call StartTriggers to arm the monitor.
func New(net *netsim.Network, host *netsim.Host, dec *header.Decoder, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{
		host:      host,
		net:       net,
		dec:       dec,
		cfg:       cfg,
		Store:     store.New(),
		Meters:    transport.NewFlowMeters(cfg.MeterInterval),
		lastAlert: make(map[netsim.FlowKey]simtime.Time),
	}
	host.OnReceive(a.onPacket)
	return a
}

// Host returns the host this agent runs on.
func (a *Agent) Host() *netsim.Host { return a.host }

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

func (a *Agent) onPacket(p *netsim.Packet, now simtime.Time) {
	a.Received++
	if a.armed && a.trigTimer == nil {
		a.startTrigTimer()
	}
	a.Meters.Record(p, now)
	dec, err := a.dec.Decode(p, now, a.host.Clock)
	if err != nil {
		a.DecodeErrors++
		return
	}
	// Acquire/Release holds the flow's shard write-locked across the
	// mutation, so concurrent query executors never see a half-absorbed
	// record. The pair is allocation-free at steady state.
	rec := a.Store.Acquire(p.Flow)
	rec.Absorb(p, dec, now)
	a.Store.Release(rec)
}

// StartTriggers arms the millisecond monitor (the paper's "trigger measures
// throughput every 1 ms and generates an alert ... if throughput drop is
// more than 50%"). The periodic scan itself starts lazily with the host's
// first received packet: an idle host has nothing to monitor, and skipping
// its ticks keeps the event queue proportional to *active* hosts rather
// than cluster size.
func (a *Agent) StartTriggers() {
	if a.armed {
		return
	}
	a.armed = true
	if a.Received > 0 {
		a.startTrigTimer()
	}
}

func (a *Agent) startTrigTimer() {
	a.trigTimer = a.net.Engine.EveryWeak(a.cfg.MeterInterval, a.checkTriggers)
}

// StopTriggers disarms the monitor.
func (a *Agent) StopTriggers() {
	a.armed = false
	if a.trigTimer != nil {
		a.trigTimer.Stop()
		a.trigTimer = nil
	}
}

func (a *Agent) checkTriggers() {
	now := a.net.Now()
	completed := int(now/a.cfg.MeterInterval) - 1 // last fully elapsed bucket
	if completed < 1 {
		return
	}
	a.Meters.ForEach(func(flow netsim.FlowKey, m *transport.Meter) {
		prev := m.GbpsAt(completed - 1)
		cur := m.GbpsAt(completed)
		if prev < a.cfg.MinActiveGbps {
			return
		}
		if cur >= prev*(1-a.cfg.DropFraction) {
			return
		}
		if last, ok := a.lastAlert[flow]; ok && now-last < a.cfg.Cooldown {
			return
		}
		a.lastAlert[flow] = now
		a.raise(Alert{
			Kind:       AlertThroughputDrop,
			Flow:       flow,
			Host:       a.host.IP(),
			DetectedAt: now,
			PrevGbps:   prev,
			CurGbps:    cur,
		})
	})
}

// EnableRetention installs an eviction policy on the agent's store and
// starts a periodic maintenance sweep (every `every` of virtual time; ≤ 0
// selects 10 ms — one paper-default epoch). Cold records leave memory
// through the store's gob flush path into ret.Sink and/or ret.Cold; see
// store.Retention. When ret.Cold also implements store.ColdReader (as
// statesync.SegmentLog does), it is installed as the agent's read-back seam,
// so epoch-windowed queries reaching past the hot window transparently
// consult the flushed segments. The sweep timer is weak, so an
// otherwise-idle simulation still drains.
func (a *Agent) EnableRetention(ret store.Retention, every simtime.Time) {
	if every <= 0 {
		every = 10 * simtime.Millisecond
	}
	a.Store.SetRetention(ret)
	if rd, ok := ret.Cold.(store.ColdReader); ok {
		a.SetColdReader(rd)
	}
	a.net.Engine.EveryWeak(every, func() {
		if _, err := a.Store.Maintain(a.net.Now()); err != nil && a.OnEvictError != nil {
			a.OnEvictError(err)
		}
	})
}

// SetColdReader installs (nil removes) the cold read-back seam QueryHeaders
// consults for epoch windows that have aged out of the resident set. Set it
// before serving queries.
func (a *Agent) SetColdReader(rd store.ColdReader) { a.cold = rd }

// ColdReader returns the installed read-back seam (nil when none).
func (a *Agent) ColdReader() store.ColdReader { return a.cold }

// InjectTimeout raises a TCP-timeout alert for a flow (the destination-side
// stack noticing an RTO-scale silence; transports call this from scenario
// wiring).
func (a *Agent) InjectTimeout(flow netsim.FlowKey, at simtime.Time) {
	a.raise(Alert{
		Kind:       AlertTimeout,
		Flow:       flow,
		Host:       a.host.IP(),
		DetectedAt: at,
	})
}

func (a *Agent) raise(al Alert) {
	if rec, ok := a.Store.Lookup(al.Flow); ok {
		for i, sw := range rec.Path {
			tup := AlertTuple{Switch: sw, Epochs: rec.Epochs[i]}
			if i == rec.TagIdx || (rec.TagIdx == -1 && len(rec.Path) == 1) {
				tup.EpochBytes = make(map[simtime.Epoch]uint64, len(rec.EpochBytes))
				for e, b := range rec.EpochBytes {
					tup.EpochBytes[e] = b
				}
			}
			al.Tuples = append(al.Tuples, tup)
		}
	}
	if a.OnAlert != nil {
		a.OnAlert(al)
	}
}

// ---- Query executors (invoked by the analyzer over RPC) ----
//
// Every executor takes a context so a long distributed query can be
// cancelled or deadline-bounded end to end: the analyzer passes its query
// context, and the HTTP binding passes the request context.
//
// Executors are safe for concurrent invocation against the same agent —
// any number at once, and concurrently with the agent's own packet
// absorption: the sharded record store serves them under per-shard read
// locks (see store.RecordStore), so the HTTP binding runs fully
// multi-threaded with no single-owner-per-round restriction.

// HeadersQuery asks for records of flows that traversed a switch during an
// epoch range. Flows, when non-empty, restricts the answer to those flow
// keys — and lets the cold tier's per-segment bloom/flow-key index skip
// segments that cannot contain any of them.
type HeadersQuery struct {
	Switch netsim.NodeID
	Epochs simtime.EpochRange
	Flows  []netsim.FlowKey
}

// wantsFlow reports whether the query's flow restriction (if any) admits f.
func (q HeadersQuery) wantsFlow(f netsim.FlowKey) bool {
	if len(q.Flows) == 0 {
		return true
	}
	for _, w := range q.Flows {
		if w == f {
			return true
		}
	}
	return false
}

// HeadersAnswer is one host's reply to a HeadersQuery: the matching records
// plus the cold read-back accounting the analyzer needs to charge honestly.
// ColdSegments counts flushed segments this query had to decode (0 when the
// whole window was answered from the hot resident set); ColdRecords counts
// the records decoded from them (the host-local scan work, not just the
// matches). ColdReturned counts the records in Records that were recovered
// from cold segments rather than the hot store — the part of the answer
// that actually crosses the wire in the extra round, and therefore what
// the analyzer sizes that round by (the same returned-records basis the
// hot diagnosis round uses). ColdSkippedByIndex counts segments whose
// epoch range overlapped the window but whose manifest index (switch set,
// flow bounds, bloom) proved them irrelevant — skipped without decoding,
// the "cost proportional to the answer" savings. TieredSegments counts
// segments whose manifests matched but whose payloads were tiered out of
// cold storage: data the answer honestly does NOT include.
type HeadersAnswer struct {
	Records            []*flowrec.Record
	ColdSegments       int
	ColdRecords        int
	ColdReturned       int
	ColdSkippedByIndex int
	TieredSegments     int
}

// QueryHeaders returns (clones of) records matching the query: the
// "filter headers for packets that match a (switchID, epochID) pair"
// primitive that SwitchPointer's whole debugging flow builds on.
//
// When a ColdReader is installed (retention with an indexed flush path —
// see EnableRetention), the query transparently consults flushed segments
// whose manifests overlap the requested epoch window, so a diagnosis
// reaching past the hot window still succeeds; segments whose manifests
// don't overlap are skipped without decoding. The answer's cold counters
// report what that cost, and the analyzer charges one extra virtual-time
// round for it. With no cold reader — or a window answered entirely hot —
// the answer is byte-identical to the pre-read-back behaviour.
func (a *Agent) QueryHeaders(ctx context.Context, q HeadersQuery) HeadersAnswer {
	return a.QueryHeadersMulti(ctx, []HeadersQuery{q})[0]
}

// QueryHeadersMulti answers several header queries in one pass — the
// per-round primitive: a contention alert carries one HeadersQuery per
// alert tuple, and answering them together decodes each overlapping cold
// segment ONCE instead of once per tuple. Every answer — records, order,
// and cold accounting (each query is charged as if it had scanned the
// segments itself: the virtual-time cost contract is per query even though
// the physical decode is shared) — is byte-identical to calling
// QueryHeaders per query.
func (a *Agent) QueryHeadersMulti(ctx context.Context, qs []HeadersQuery) []HeadersAnswer {
	out := make([]HeadersAnswer, len(qs))
	if ctx.Err() != nil || len(qs) == 0 {
		return out
	}
	for qi := range qs {
		q := qs[qi]
		a.Store.QueryBySwitch(q.Switch, func(rec *flowrec.Record) bool {
			er, ok := rec.EpochsAt(q.Switch)
			if ok && er.Overlaps(q.Epochs) && q.wantsFlow(rec.Flow) {
				out[qi].Records = append(out[qi].Records, rec.Clone())
			}
			return true
		})
	}
	if a.cold == nil {
		return out
	}

	// Cold read-back over a point-in-time view of the segment log: decode
	// only segments whose manifest epoch range overlaps some query's window
	// AND whose index (switch set, flow-key bounds, bloom) cannot rule the
	// query out — index exclusions are counted per query as
	// ColdSkippedByIndex. Tiered-out segments are never decoded (the data
	// is gone); they are reported as TieredSegments so the answer's gap is
	// honest. Kept records must match the query's (switch, epochs) and not
	// already be answered hot. Later segments win for a flow evicted more
	// than once (eviction order is write order).
	hot := make([]map[netsim.FlowKey]bool, len(qs))
	recovered := make([]map[netsim.FlowKey]*flowrec.Record, len(qs))
	for qi := range qs {
		hot[qi] = make(map[netsim.FlowKey]bool, len(out[qi].Records))
		for _, r := range out[qi].Records {
			hot[qi][r.Flow] = true
		}
		recovered[qi] = make(map[netsim.FlowKey]*flowrec.Record)
	}
	view := a.cold.View()
	defer view.Close()
	var interested []int
	var recs []*flowrec.Record
	for i := 0; i < view.Len(); i++ {
		m := view.Manifest(i)
		interested = interested[:0]
		for qi := range qs {
			q := qs[qi]
			if !m.Epochs.Overlaps(q.Epochs) {
				continue
			}
			if !m.MayContainSwitch(q.Switch) ||
				(len(q.Flows) > 0 && !m.MayContainAnyFlow(q.Flows)) {
				out[qi].ColdSkippedByIndex++
				continue
			}
			if m.Tiered {
				out[qi].TieredSegments++
				continue
			}
			interested = append(interested, qi)
		}
		if len(interested) == 0 {
			continue
		}
		recs = recs[:0]
		err := view.ReadSegment(i, func(rec *flowrec.Record) { recs = append(recs, rec) })
		if err != nil {
			if a.OnEvictError != nil {
				a.OnEvictError(fmt.Errorf("hostagent: cold read-back: %w", err))
			}
			continue
		}
		for _, qi := range interested {
			q := qs[qi]
			out[qi].ColdSegments++
			out[qi].ColdRecords += len(recs)
			for _, rec := range recs {
				if hot[qi][rec.Flow] || !q.wantsFlow(rec.Flow) {
					continue
				}
				er, ok := rec.EpochsAt(q.Switch)
				if ok && er.Overlaps(q.Epochs) {
					recovered[qi][rec.Flow] = rec
				}
			}
		}
	}
	for qi := range qs {
		if len(recovered[qi]) == 0 {
			continue
		}
		out[qi].ColdReturned = len(recovered[qi])
		for _, rec := range recovered[qi] {
			out[qi].Records = append(out[qi].Records, rec)
		}
		// Keep each merged answer in the store's deterministic flow-key
		// order so reports are byte-identical to a run whose window was
		// never evicted.
		sort.Slice(out[qi].Records, func(i, j int) bool {
			return flowrec.Less(out[qi].Records[i].Flow, out[qi].Records[j].Flow)
		})
	}
	for qi := range out {
		a.coldSegments.Add(uint64(out[qi].ColdSegments))
		a.coldRecords.Add(uint64(out[qi].ColdRecords))
		a.coldReturned.Add(uint64(out[qi].ColdReturned))
		a.coldSkipped.Add(uint64(out[qi].ColdSkippedByIndex))
		a.coldTiered.Add(uint64(out[qi].TieredSegments))
	}
	return out
}

// FlowBytes pairs a flow with a byte count for top-k style answers.
type FlowBytes struct {
	Flow  netsim.FlowKey
	Bytes uint64
}

// QueryTopK returns this host's top-k flows by bytes through switch sw.
// The analyzer merges per-host answers into the global top-k (Fig 12).
func (a *Agent) QueryTopK(ctx context.Context, sw netsim.NodeID, k int) []FlowBytes {
	if ctx.Err() != nil {
		return nil
	}
	out := make([]FlowBytes, 0, len(a.Store.BySwitch(sw))) // memoized; sizes the answer
	a.Store.QueryBySwitch(sw, func(r *flowrec.Record) bool {
		out = append(out, FlowBytes{Flow: r.Flow, Bytes: r.Bytes})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// FlowSize reports one flow's size and the egress link (interface) its
// packets used at the tagging switch — the §5.4 load-imbalance signal.
type FlowSize struct {
	Flow  netsim.FlowKey
	Bytes uint64
	Link  topo.LinkID
}

// QueryFlowSizes returns sizes and egress links of this host's flows through
// switch sw.
func (a *Agent) QueryFlowSizes(ctx context.Context, sw netsim.NodeID) []FlowSize {
	if ctx.Err() != nil {
		return nil
	}
	out := make([]FlowSize, 0, len(a.Store.BySwitch(sw))) // memoized; sizes the answer
	a.Store.QueryBySwitch(sw, func(r *flowrec.Record) bool {
		out = append(out, FlowSize{Flow: r.Flow, Bytes: r.Bytes, Link: r.TagLink})
		return true
	})
	return out
}

// LookupRecord returns a clone of one flow's full record, if the host holds
// one — the cascade procedure's synthetic-alert source. The clone is taken
// under the record's shard read lock, so it is safe concurrently with
// absorption; the HTTP binding serves it at /record.
func (a *Agent) LookupRecord(ctx context.Context, flow netsim.FlowKey) (*flowrec.Record, bool) {
	if ctx.Err() != nil {
		return nil, false
	}
	var rec *flowrec.Record
	ok := a.Store.View(flow, func(r *flowrec.Record) { rec = r.Clone() })
	return rec, ok
}

// QueryPriority returns the recorded DSCP priority of a flow, if known.
func (a *Agent) QueryPriority(ctx context.Context, flow netsim.FlowKey) (uint8, bool) {
	if ctx.Err() != nil {
		return 0, false
	}
	var prio uint8
	known := a.Store.View(flow, func(rec *flowrec.Record) { prio = rec.Priority })
	return prio, known
}
