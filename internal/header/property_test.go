package header

import (
	"math/rand"
	"testing"
	"testing/quick"

	"switchpointer/internal/simtime"
)

// TestPropertyExtrapolationSound verifies the §4.2.1 soundness invariant
// against a randomized forwarding model: for random epoch sizes, drift
// bounds, hop delays and tagging positions, the decoded per-switch ranges
// always contain the true local epoch at which each switch processed the
// packet — provided the true drifts and delays respect the bounds.
func TestPropertyExtrapolationSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := simtime.Time(1+rng.Intn(30)) * simtime.Millisecond
		p := Params{
			Alpha: alpha,
			Eps:   simtime.Time(rng.Intn(3)) * alpha / 2,
			Delta: simtime.Time(rng.Intn(5)) * alpha / 2,
		}
		n := 1 + rng.Intn(6)
		tagIdx := rng.Intn(n)

		// Simulate a packet traversal: true arrival times at each switch,
		// per-hop delays within [0, Δ], clock offsets within ±ε/2.
		tTrue := simtime.Time(rng.Intn(1_000_000)) * simtime.Microsecond
		arrivals := make([]simtime.Time, n)
		offsets := make([]simtime.Time, n)
		for i := 0; i < n; i++ {
			if i > 0 {
				hop := simtime.Time(rng.Int63n(int64(p.Delta) + 1))
				tTrue += hop
			}
			arrivals[i] = tTrue
			if p.Eps > 0 {
				offsets[i] = simtime.Time(rng.Int63n(int64(p.Eps)+1)) - p.Eps/2
			}
		}
		// The tag carries the tagging switch's local epoch.
		ei := simtime.EpochOf(arrivals[tagIdx]+offsets[tagIdx], p.Alpha)
		ranges := ExtrapolateEpochs(n, tagIdx, ei, p)
		for i := 0; i < n; i++ {
			trueEpoch := simtime.EpochOf(arrivals[i]+offsets[i], p.Alpha)
			if !ranges[i].Contains(trueEpoch) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyExtrapolationWidths checks the monotone-width property: range
// width never shrinks with hop distance from the tagging switch.
func TestPropertyExtrapolationWidths(t *testing.T) {
	p := params10()
	for tagIdx := 0; tagIdx < 5; tagIdx++ {
		ranges := ExtrapolateEpochs(5, tagIdx, 1000, p)
		for i := 0; i+1 < tagIdx; i++ { // upstream: width grows away from tag
			if ranges[i].Len() < ranges[i+1].Len() {
				t.Fatalf("tag=%d: upstream widths not monotone: %v", tagIdx, ranges)
			}
		}
		for i := tagIdx + 1; i+1 < 5; i++ { // downstream
			if ranges[i].Len() > ranges[i+1].Len() {
				t.Fatalf("tag=%d: downstream widths not monotone: %v", tagIdx, ranges)
			}
		}
	}
}
