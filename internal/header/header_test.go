package header

import (
	"testing"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

func params10() Params {
	// The paper's running example: α = 10 ms, ε = α, Δ = 2α.
	return Params{
		Alpha: 10 * simtime.Millisecond,
		Eps:   10 * simtime.Millisecond,
		Delta: 20 * simtime.Millisecond,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := params10().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{Alpha: 0}).Validate(); err == nil {
		t.Fatalf("zero alpha accepted")
	}
	if err := (Params{Alpha: 1, Eps: -1}).Validate(); err == nil {
		t.Fatalf("negative eps accepted")
	}
}

func TestExtrapolatePaperExample(t *testing.T) {
	// Figure 6 example: 5-switch path S1..S5, epoch ei tagged at S3 (tag
	// index 2), α=10, ε=α, Δ=2α ⇒ S2 gets [ei−3, ei+1], S4 gets [ei−1, ei+3].
	ei := simtime.Epoch(100)
	ranges := ExtrapolateEpochs(5, 2, ei, params10())
	want := []simtime.EpochRange{
		{Lo: 95, Hi: 101},  // S1: j=2 upstream, (ε+2Δ)/α = 5
		{Lo: 97, Hi: 101},  // S2: j=1 upstream, (ε+Δ)/α = 3
		{Lo: 100, Hi: 100}, // S3: tagging switch
		{Lo: 99, Hi: 103},  // S4: j=1 downstream
		{Lo: 99, Hi: 105},  // S5: j=2 downstream
	}
	for i, w := range want {
		if ranges[i] != w {
			t.Errorf("switch %d: got %v, want %v", i+1, ranges[i], w)
		}
	}
}

func TestExtrapolateCeilings(t *testing.T) {
	// ε = 5 ms with α = 10 ms must round up to 1 epoch of drift slack.
	p := Params{Alpha: 10 * simtime.Millisecond, Eps: 5 * simtime.Millisecond, Delta: 12 * simtime.Millisecond}
	r := ExtrapolateEpochs(2, 1, 50, p)
	// Upstream j=1: (5+12)/10 → ceil = 2.
	if r[0].Lo != 48 || r[0].Hi != 51 {
		t.Fatalf("upstream = %v", r[0])
	}
	if r[1].Lo != 50 || r[1].Hi != 50 {
		t.Fatalf("tag switch = %v", r[1])
	}
}

func TestExtrapolateZeroSlack(t *testing.T) {
	p := Params{Alpha: 10 * simtime.Millisecond}
	r := ExtrapolateEpochs(3, 1, 7, p)
	for i, rr := range r {
		if rr.Lo != 7 || rr.Hi != 7 {
			t.Fatalf("switch %d with ε=Δ=0 should be exact: %v", i, rr)
		}
	}
}

func buildChain(t *testing.T) (*netsim.Network, *topo.Topology) {
	t.Helper()
	net := netsim.New()
	tp := topo.Chain(net, []int{2, 2, 2}, topo.Config{})
	return net, tp
}

func installEmbedder(tp *topo.Topology, e *Embedder) {
	for _, sw := range tp.Switches() {
		sw.Pipeline = append(sw.Pipeline, e.Stage())
	}
}

func TestCommodityEmbedDecodeEndToEnd(t *testing.T) {
	net, tp := buildChain(t)
	e := &Embedder{Topo: tp, Mode: ModeCommodity, Params: params10()}
	installEmbedder(tp, e)

	a, _ := tp.HostByName("h1-1")
	f, _ := tp.HostByName("h3-2")
	dec := &Decoder{Topo: tp, Mode: ModeCommodity, Params: params10()}

	var got Decoded
	var decErr error
	f.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		got, decErr = dec.Decode(p, now, f.Clock)
	})
	// Send at 55 ms so the switches are mid-epoch 5.
	net.Engine.At(55*simtime.Millisecond, func() {
		a.Send(&netsim.Packet{ID: 1, Size: 1000, Flow: netsim.FlowKey{
			Src: a.IP(), Dst: f.IP(), SrcPort: 1, DstPort: 2, Proto: netsim.ProtoTCP}})
	})
	net.Run()

	if decErr != nil {
		t.Fatal(decErr)
	}
	if len(got.Path) != 3 {
		t.Fatalf("path = %v", got.Path)
	}
	if got.TagIdx != 0 {
		t.Fatalf("TagIdx = %d, want 0 (first switch tags in a chain)", got.TagIdx)
	}
	if e.TagsPushed != 1 {
		t.Fatalf("TagsPushed = %d", e.TagsPushed)
	}
	// Ground truth: all clocks have zero offset here, so every switch
	// processed the packet in epoch 5; every decoded range must contain 5.
	for i, r := range got.Epochs {
		if !r.Contains(5) {
			t.Fatalf("switch %d range %v does not contain epoch 5", i, r)
		}
	}
	// The tagging switch is exact.
	if got.Epochs[0].Lo != 5 || got.Epochs[0].Hi != 5 {
		t.Fatalf("tag switch range = %v, want [5,5]", got.Epochs[0])
	}
}

func TestCommodityOnlyFirstSwitchTags(t *testing.T) {
	net, tp := buildChain(t)
	e := &Embedder{Topo: tp, Mode: ModeCommodity, Params: params10()}
	installEmbedder(tp, e)
	a, _ := tp.HostByName("h1-1")
	f, _ := tp.HostByName("h3-1")
	var nTags int
	f.OnReceive(func(p *netsim.Packet, now simtime.Time) { nTags = p.NTag })
	a.Send(&netsim.Packet{ID: 1, Size: 100, Flow: netsim.FlowKey{Src: a.IP(), Dst: f.IP()}})
	net.Run()
	if nTags != 2 {
		t.Fatalf("NTag = %d, want exactly 2 (link+epoch from the first switch)", nTags)
	}
}

func TestCommodityEpochWithClockDrift(t *testing.T) {
	// With drifting switch clocks the decoded ranges must still contain each
	// switch's true local epoch at forwarding time.
	net := netsim.New()
	eps := 10 * simtime.Millisecond
	tp := topo.Chain(net, []int{1, 0, 1}, topo.Config{Eps: eps, Seed: 7})
	p := Params{Alpha: 10 * simtime.Millisecond, Eps: eps, Delta: 20 * simtime.Millisecond}
	e := &Embedder{Topo: tp, Mode: ModeCommodity, Params: p}
	installEmbedder(tp, e)

	// Record each switch's true local epoch when it forwards.
	trueEpochs := map[netsim.NodeID]simtime.Epoch{}
	for _, sw := range tp.Switches() {
		sw := sw
		sw.Pipeline = append(sw.Pipeline, func(s *netsim.Switch, pk *netsim.Packet, in, out *netsim.Port, now simtime.Time) {
			trueEpochs[s.NodeID()] = s.Clock.EpochAt(now, p.Alpha)
		})
	}

	src := tp.Hosts()[0]
	dst := tp.Hosts()[1]
	dec := &Decoder{Topo: tp, Mode: ModeCommodity, Params: p}
	var got Decoded
	var decErr error
	dst.OnReceive(func(pk *netsim.Packet, now simtime.Time) {
		got, decErr = dec.Decode(pk, now, dst.Clock)
	})
	net.Engine.At(123*simtime.Millisecond, func() {
		src.Send(&netsim.Packet{ID: 1, Size: 800, Flow: netsim.FlowKey{Src: src.IP(), Dst: dst.IP()}})
	})
	net.Run()
	if decErr != nil {
		t.Fatal(decErr)
	}
	for i, swID := range got.Path {
		te, ok := trueEpochs[swID]
		if !ok {
			t.Fatalf("switch %v never forwarded", swID)
		}
		if !got.Epochs[i].Contains(te) {
			t.Fatalf("switch %d: true epoch %d outside decoded range %v", i, te, got.Epochs[i])
		}
	}
}

func TestUntaggedSingleSwitchEstimate(t *testing.T) {
	net := netsim.New()
	tp := topo.Star(net, 3, topo.Config{})
	p := params10()
	e := &Embedder{Topo: tp, Mode: ModeCommodity, Params: p}
	installEmbedder(tp, e)
	src, dst := tp.Hosts()[0], tp.Hosts()[1]
	sw := tp.Switches()[0]
	var trueEpoch simtime.Epoch
	sw.Pipeline = append(sw.Pipeline, func(s *netsim.Switch, pk *netsim.Packet, in, out *netsim.Port, now simtime.Time) {
		trueEpoch = s.Clock.EpochAt(now, p.Alpha)
	})
	dec := &Decoder{Topo: tp, Mode: ModeCommodity, Params: p}
	var got Decoded
	var decErr error
	dst.OnReceive(func(pk *netsim.Packet, now simtime.Time) {
		got, decErr = dec.Decode(pk, now, dst.Clock)
	})
	net.Engine.At(42*simtime.Millisecond, func() {
		src.Send(&netsim.Packet{ID: 1, Size: 500, Flow: netsim.FlowKey{Src: src.IP(), Dst: dst.IP()}})
	})
	net.Run()
	if decErr != nil {
		t.Fatal(decErr)
	}
	if got.TagIdx != -1 || len(got.Path) != 1 {
		t.Fatalf("decoded = %+v", got)
	}
	if !got.Epochs[0].Contains(trueEpoch) {
		t.Fatalf("estimate %v misses true epoch %d", got.Epochs[0], trueEpoch)
	}
	if e.TagsPushed != 0 {
		t.Fatalf("single-switch path should not be tagged")
	}
}

func TestINTEmbedDecode(t *testing.T) {
	net, tp := buildChain(t)
	p := params10()
	e := &Embedder{Topo: tp, Mode: ModeINT, Params: p}
	installEmbedder(tp, e)
	a, _ := tp.HostByName("h1-1")
	f, _ := tp.HostByName("h3-2")
	dec := &Decoder{Topo: tp, Mode: ModeINT, Params: p}
	var got Decoded
	var decErr error
	f.OnReceive(func(pk *netsim.Packet, now simtime.Time) {
		got, decErr = dec.Decode(pk, now, f.Clock)
	})
	net.Engine.At(37*simtime.Millisecond, func() {
		a.Send(&netsim.Packet{ID: 1, Size: 600, Flow: netsim.FlowKey{Src: a.IP(), Dst: f.IP()}})
	})
	net.Run()
	if decErr != nil {
		t.Fatal(decErr)
	}
	if len(got.Path) != 3 || got.Mode != ModeINT {
		t.Fatalf("decoded = %+v", got)
	}
	for i, r := range got.Epochs {
		if r.Lo != r.Hi {
			t.Fatalf("INT hop %d should be exact, got %v", i, r)
		}
		if r.Lo != 3 {
			t.Fatalf("INT hop %d epoch = %d, want 3 (t=37ms, α=10ms)", i, r.Lo)
		}
	}
	if e.INTRecords != 3 {
		t.Fatalf("INTRecords = %d", e.INTRecords)
	}
}

func TestINTDecodeEmptyStack(t *testing.T) {
	_, tp := buildChain(t)
	dec := &Decoder{Topo: tp, Mode: ModeINT, Params: params10()}
	_, err := dec.Decode(&netsim.Packet{}, 0, simtime.NewClock(0))
	if err == nil {
		t.Fatalf("empty INT stack should error")
	}
}

func TestHalfTaggedPacketRejected(t *testing.T) {
	net, tp := buildChain(t)
	_ = net
	a, _ := tp.HostByName("h1-1")
	f, _ := tp.HostByName("h3-1")
	dec := &Decoder{Topo: tp, Mode: ModeCommodity, Params: params10()}
	pkt := &netsim.Packet{Flow: netsim.FlowKey{Src: a.IP(), Dst: f.IP()}}
	s1, _ := tp.SwitchByName("S1")
	s2, _ := tp.SwitchByName("S2")
	link, _ := tp.LinkBetween(s1.NodeID(), s2.NodeID())
	pkt.PushTag(netsim.Tag{Type: netsim.TagLink, Value: uint32(link)})
	if _, err := dec.Decode(pkt, 0, simtime.NewClock(0)); err == nil {
		t.Fatalf("link tag without epoch tag should error")
	}
}

func TestRuleUpdateIntervalStaleness(t *testing.T) {
	// With a 15 ms rule floor and α=10 ms, the stamped epoch can lag the
	// true one (the §4.1.3 commodity constraint). Staleness never exceeds
	// ceil(interval/α) epochs.
	net, tp := buildChain(t)
	p := params10()
	e := &Embedder{Topo: tp, Mode: ModeCommodity, Params: p, RuleUpdateInterval: 15 * simtime.Millisecond}
	installEmbedder(tp, e)
	a, _ := tp.HostByName("h1-1")
	f, _ := tp.HostByName("h3-1")
	var stamped simtime.Epoch
	gotTag := false
	f.OnReceive(func(pk *netsim.Packet, now simtime.Time) {
		if tag, ok := pk.TagOf(netsim.TagEpoch); ok {
			stamped = simtime.Epoch(int32(tag.Value))
			gotTag = true
		}
	})
	// t = 58 ms: true epoch 5; last rule update at 45 ms → epoch 4.
	net.Engine.At(58*simtime.Millisecond, func() {
		a.Send(&netsim.Packet{ID: 1, Size: 400, Flow: netsim.FlowKey{Src: a.IP(), Dst: f.IP()}})
	})
	net.Run()
	if !gotTag {
		t.Fatalf("no epoch tag")
	}
	if stamped != 4 {
		t.Fatalf("stamped epoch = %d, want 4 (stale by one)", stamped)
	}
	if got := e.EpochRuleUpdatesPerSecond(); got != 1000.0/15.0 {
		t.Fatalf("EpochRuleUpdatesPerSecond = %v", got)
	}
}

func TestEpochRuleUpdatesPerSecondDefault(t *testing.T) {
	e := &Embedder{Params: params10()}
	if got := e.EpochRuleUpdatesPerSecond(); got != 100 {
		t.Fatalf("α=10ms should mean 100 rule updates/s, got %v", got)
	}
}

func TestWireOverhead(t *testing.T) {
	if WireOverheadBytes(ModeCommodity, 5) != 8 {
		t.Fatalf("commodity overhead should be 8B for any multi-switch path")
	}
	if WireOverheadBytes(ModeCommodity, 1) != 0 {
		t.Fatalf("single-switch commodity path carries no tags")
	}
	if WireOverheadBytes(ModeINT, 5) != 40 {
		t.Fatalf("INT overhead should be 8B per hop")
	}
}

func TestDecodedEpochAt(t *testing.T) {
	d := Decoded{
		Path:   []netsim.NodeID{1, 2},
		Epochs: []simtime.EpochRange{{Lo: 1, Hi: 2}, {Lo: 3, Hi: 4}},
	}
	if r, ok := d.EpochAt(2); !ok || r.Lo != 3 {
		t.Fatalf("EpochAt(2) = %v %v", r, ok)
	}
	if _, ok := d.EpochAt(9); ok {
		t.Fatalf("EpochAt missing switch should be false")
	}
}
