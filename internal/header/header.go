// Package header implements SwitchPointer's in-band telemetry headers:
// embedding at switches and decoding at end hosts.
//
// Two modes are supported, as in the paper (§4.1.3):
//
//   - ModeCommodity — the deployable technique: a CherryPick key-link ID in
//     one 802.1ad VLAN tag plus the tagging switch's epochID in a second tag.
//     The receiving host reconstructs the full switch path from (src, dst,
//     linkID) using topology knowledge and *extrapolates* epoch ranges for
//     the non-tagging switches from the single epochID (§4.2.1), using the
//     datacenter's clock-drift bound ε and maximum per-hop delay Δ.
//
//   - ModeINT — the clean-slate alternative: every switch appends its
//     (switchID, epochID) to an INT stack, giving exact per-hop epochs on
//     arbitrary topologies at the cost of per-hop header growth.
//
// Both modes produce the same Decoded form for the host agent.
package header

import (
	"fmt"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

// Mode selects the telemetry embedding technique.
type Mode uint8

// Embedding modes.
const (
	ModeCommodity Mode = iota // double VLAN tag, clos topologies only
	ModeINT                   // per-hop INT stack, arbitrary topologies
)

func (m Mode) String() string {
	switch m {
	case ModeCommodity:
		return "commodity"
	case ModeINT:
		return "int"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Params are the network-wide constants the epoch extrapolation of §4.2.1
// depends on. The paper's running example uses ε = α and Δ = 2α.
type Params struct {
	Alpha simtime.Time // epoch duration α
	Eps   simtime.Time // max pairwise clock drift ε
	Delta simtime.Time // max one-hop (queueing+forwarding) delay Δ
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("header: Alpha must be positive")
	}
	if p.Eps < 0 || p.Delta < 0 {
		return fmt.Errorf("header: Eps and Delta must be non-negative")
	}
	return nil
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b simtime.Time) int64 {
	if a <= 0 {
		return 0
	}
	return int64((a + b - 1) / b)
}

// Decoded is the telemetry extracted from one packet at its destination: the
// switch-level path and, per switch, the range of local epochs during which
// that switch may have processed the packet.
type Decoded struct {
	Mode Mode
	// Path is the switch trajectory, source ToR first.
	Path []netsim.NodeID
	// Epochs[i] is the epoch range at Path[i].
	Epochs []simtime.EpochRange
	// TagIdx is the index in Path of the switch whose exact epoch was
	// carried in the header (commodity mode); −1 when the packet carried no
	// epoch tag (single-switch paths) or in INT mode (all hops exact).
	TagIdx int
}

// EpochAt returns the epoch range for switch id, if it is on the path.
func (d *Decoded) EpochAt(id netsim.NodeID) (simtime.EpochRange, bool) {
	for i, sw := range d.Path {
		if sw == id {
			return d.Epochs[i], true
		}
	}
	return simtime.EpochRange{}, false
}

// ExtrapolateEpochs computes per-switch epoch ranges for a path of length n
// given the exact epoch ei observed at index tagIdx (§4.2.1):
//
//	upstream,   j hops before the tagging switch: [ei−(ε+j·Δ)/α, ei+ε/α]
//	downstream, j hops after the tagging switch:  [ei−ε/α, ei+(ε+j·Δ)/α]
//
// Divisions are taken as ceilings — the conservative reading that never
// excludes a feasible epoch. The tagging switch itself gets [ei, ei].
func ExtrapolateEpochs(n, tagIdx int, ei simtime.Epoch, p Params) []simtime.EpochRange {
	return appendExtrapolatedEpochs(nil, n, tagIdx, ei, p)
}

// appendExtrapolatedEpochs is ExtrapolateEpochs into a caller-provided
// buffer, the allocation-free form the per-packet decode path uses.
func appendExtrapolatedEpochs(out []simtime.EpochRange, n, tagIdx int, ei simtime.Epoch, p Params) []simtime.EpochRange {
	drift := simtime.Epoch(ceilDiv(p.Eps, p.Alpha))
	for i := 0; i < n; i++ {
		var r simtime.EpochRange
		switch {
		case i == tagIdx:
			r = simtime.EpochRange{Lo: ei, Hi: ei}
		case i < tagIdx: // upstream: the packet was there earlier
			j := simtime.Time(tagIdx - i)
			span := simtime.Epoch(ceilDiv(p.Eps+j*p.Delta, p.Alpha))
			r = simtime.EpochRange{Lo: ei - span, Hi: ei + drift}
		default: // downstream: the packet got there later
			j := simtime.Time(i - tagIdx)
			span := simtime.Epoch(ceilDiv(p.Eps+j*p.Delta, p.Alpha))
			r = simtime.EpochRange{Lo: ei - drift, Hi: ei + span}
		}
		out = append(out, r)
	}
	return out
}

// Embedder is the switch-side half: a netsim pipeline stage that stamps
// telemetry into forwarded packets.
type Embedder struct {
	Topo   *topo.Topology
	Mode   Mode
	Params Params

	// RuleUpdateInterval models how often the switch can rewrite its
	// epoch-tagging flow rule. Commodity OpenFlow hardware manages ~one
	// update per 15 ms (§4.1.3), which lower-bounds the effective α there;
	// zero means the rule tracks every epoch boundary exactly (software
	// switches, INT).
	RuleUpdateInterval simtime.Time

	// TagsPushed counts (linkID, epochID) tag pairs stamped.
	TagsPushed uint64
	// INTRecords counts INT hop records appended.
	INTRecords uint64
}

// Stage returns the pipeline function to install on a switch.
func (e *Embedder) Stage() netsim.PipelineFunc {
	return func(sw *netsim.Switch, p *netsim.Packet, in, out *netsim.Port, now simtime.Time) {
		e.Embed(sw, p, out, now)
	}
}

// Embed stamps telemetry for one forwarded packet.
func (e *Embedder) Embed(sw *netsim.Switch, p *netsim.Packet, out *netsim.Port, now simtime.Time) {
	switch e.Mode {
	case ModeINT:
		p.AppendINT(netsim.HopRecord{Switch: sw.NodeID(), Epoch: e.epochFor(sw, now)})
		e.INTRecords++
	case ModeCommodity:
		if p.NTag != 0 {
			return // already tagged upstream; rules match untagged packets only
		}
		if !e.Topo.IsKeyLinkEgress(sw, p.Flow.Dst, out.Index()) {
			return
		}
		link, ok := e.Topo.LinkIDForPort(sw.NodeID(), out.Index())
		if !ok {
			return
		}
		p.PushTag(netsim.Tag{Type: netsim.TagLink, Value: uint32(link)})
		p.PushTag(netsim.Tag{Type: netsim.TagEpoch, Value: uint32(e.epochFor(sw, now))})
		e.TagsPushed++
	}
}

// epochFor returns the epoch value the switch would stamp at time now,
// accounting for the flow-rule update cadence: with a non-zero
// RuleUpdateInterval the stamped epoch is the one that was current at the
// last permitted rule update, which can lag the true local epoch.
func (e *Embedder) epochFor(sw *netsim.Switch, now simtime.Time) simtime.Epoch {
	local := sw.Clock.Local(now)
	if e.RuleUpdateInterval > e.Params.Alpha {
		// Quantize local time to the rule-update grid before taking the
		// epoch: the rule still carries the epoch of the last update.
		local = (local / e.RuleUpdateInterval) * e.RuleUpdateInterval
	}
	return simtime.EpochOf(local, e.Params.Alpha)
}

// EpochRuleUpdatesPerSecond reports how often the epoch rule must be
// rewritten under this configuration (§4.1.3 accounting: one rule, updated
// once per effective epoch).
func (e *Embedder) EpochRuleUpdatesPerSecond() float64 {
	period := e.Params.Alpha
	if e.RuleUpdateInterval > period {
		period = e.RuleUpdateInterval
	}
	return float64(simtime.Second) / float64(period)
}

// Decoder is the host-side half: it turns received packets into Decoded
// telemetry.
//
// Decoding runs once per received packet, so the decoder is built for zero
// steady-state allocations: path reconstruction is memoized per
// (src, dst, link) — routes are static once a topology is built, so the
// reconstruction is a pure function of that key — and the per-switch epoch
// ranges are computed into decoder-owned scratch buffers. The returned
// Decoded therefore aliases decoder-owned memory and is only valid until
// the next Decode call; consumers must copy what they keep (the host
// agent's record absorption already does).
//
// A Decoder is NOT goroutine-safe: it is driven by the single-threaded
// simulation loop. The analyzer's parallel query fan-out never touches it.
type Decoder struct {
	Topo   *topo.Topology
	Mode   Mode
	Params Params

	paths       map[pathKey]pathVal  // memoized ReconstructPath results
	pathScratch []netsim.NodeID      // INT-mode path scratch
	epochs      []simtime.EpochRange // epoch-range scratch
}

type pathKey struct {
	src, dst netsim.IPv4
	link     topo.LinkID
}

type pathVal struct {
	path   []netsim.NodeID
	tagIdx int
}

// Decode extracts the path and per-switch epoch ranges from a packet
// arriving at true time now at a host with the given clock. The result
// aliases decoder-owned buffers and is valid until the next Decode call.
func (d *Decoder) Decode(p *netsim.Packet, now simtime.Time, hostClock *simtime.Clock) (Decoded, error) {
	if d.Mode == ModeINT {
		return d.decodeINT(p)
	}
	return d.decodeCommodity(p, now, hostClock)
}

func (d *Decoder) decodeINT(p *netsim.Packet) (Decoded, error) {
	if len(p.INT) == 0 {
		return Decoded{}, fmt.Errorf("header: INT mode packet with empty stack (flow %s)", p.Flow)
	}
	dec := Decoded{Mode: ModeINT, TagIdx: -1}
	dec.Path = d.pathScratch[:0]
	dec.Epochs = d.epochs[:0]
	for _, hop := range p.INT {
		dec.Path = append(dec.Path, hop.Switch)
		dec.Epochs = append(dec.Epochs, simtime.EpochRange{Lo: hop.Epoch, Hi: hop.Epoch})
	}
	d.pathScratch = dec.Path
	d.epochs = dec.Epochs
	return dec, nil
}

// InvalidatePaths drops the memoized path reconstructions. Scenarios that
// mutate routing state mid-run (netsim.Switch.SetRoute, RouteOverride)
// must call it so subsequent packets decode against the new routes; the
// built-in topologies never reroute after construction.
func (d *Decoder) InvalidatePaths() { d.paths = nil }

// reconstructPath memoizes Topology.ReconstructPath: routing state is fixed
// after topology construction (see InvalidatePaths for the escape hatch),
// so the path for a (src, dst, link) key never changes. Errors are not
// cached (they are cold paths by construction).
func (d *Decoder) reconstructPath(src, dst netsim.IPv4, link topo.LinkID) ([]netsim.NodeID, int, error) {
	k := pathKey{src: src, dst: dst, link: link}
	if v, ok := d.paths[k]; ok {
		return v.path, v.tagIdx, nil
	}
	path, tagIdx, err := d.Topo.ReconstructPath(src, dst, link)
	if err != nil {
		return nil, 0, err
	}
	if d.paths == nil {
		d.paths = make(map[pathKey]pathVal)
	}
	d.paths[k] = pathVal{path: path, tagIdx: tagIdx}
	return path, tagIdx, nil
}

func (d *Decoder) decodeCommodity(p *netsim.Packet, now simtime.Time, hostClock *simtime.Clock) (Decoded, error) {
	linkTag, hasLink := p.TagOf(netsim.TagLink)
	epochTag, hasEpoch := p.TagOf(netsim.TagEpoch)
	var link topo.LinkID
	if hasLink {
		link = topo.LinkID(linkTag.Value)
	}
	path, tagIdx, err := d.reconstructPath(p.Flow.Src, p.Flow.Dst, link)
	if err != nil {
		return Decoded{}, err
	}
	if hasLink != hasEpoch {
		return Decoded{}, fmt.Errorf("header: half-tagged packet (link=%v epoch=%v)", hasLink, hasEpoch)
	}
	if hasEpoch {
		ei := simtime.Epoch(int32(epochTag.Value))
		d.epochs = appendExtrapolatedEpochs(d.epochs[:0], len(path), tagIdx, ei, d.Params)
		return Decoded{
			Mode:   ModeCommodity,
			Path:   path,
			Epochs: d.epochs,
			TagIdx: tagIdx,
		}, nil
	}
	// Untagged single-switch path: no epoch was carried. Estimate from the
	// arrival time — the switch processed the packet at most Δ before now,
	// with clock skew up to ε either way.
	local := hostClock.Local(now)
	lo := simtime.EpochOf(local-d.Params.Eps-d.Params.Delta, d.Params.Alpha)
	hi := simtime.EpochOf(local+d.Params.Eps, d.Params.Alpha)
	d.epochs = append(d.epochs[:0], simtime.EpochRange{Lo: lo, Hi: hi})
	return Decoded{
		Mode:   ModeCommodity,
		Path:   path,
		Epochs: d.epochs,
		TagIdx: -1,
	}, nil
}

// WireOverheadBytes returns the per-packet header growth of each mode for a
// path of n switches: commodity mode pays two VLAN tags regardless of path
// length; INT pays per hop.
func WireOverheadBytes(mode Mode, pathLen int) int {
	if mode == ModeINT {
		return pathLen * netsim.INTHopBytes
	}
	if pathLen <= 1 {
		return 0
	}
	return 2 * netsim.VLANTagBytes
}
