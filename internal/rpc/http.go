package rpc

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"switchpointer/internal/bitset"
	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
	"switchpointer/internal/topo"
)

// This file is the real-network binding of the agent query interfaces:
// JSON over HTTP via net/http, replacing the paper's flask microframework.
// Handlers must only be served while the simulation engine is idle (the
// simulated testbed is single-threaded); in deployments the agents would own
// their state behind these handlers directly.

// HeadersRequest asks a host for records matching (switch, epoch range).
type HeadersRequest struct {
	Switch  netsim.NodeID `json:"switch"`
	EpochLo simtime.Epoch `json:"epoch_lo"`
	EpochHi simtime.Epoch `json:"epoch_hi"`
}

// TopKRequest asks a host for its top-k flows through a switch.
type TopKRequest struct {
	Switch netsim.NodeID `json:"switch"`
	K      int           `json:"k"`
}

// FlowSizesRequest asks a host for flow sizes and egress links at a switch.
type FlowSizesRequest struct {
	Switch netsim.NodeID `json:"switch"`
}

// PriorityRequest asks a host for a flow's recorded DSCP priority.
type PriorityRequest struct {
	Flow netsim.FlowKey `json:"flow"`
}

// PriorityResponse is the answer to a PriorityRequest.
type PriorityResponse struct {
	Priority uint8 `json:"priority"`
	Known    bool  `json:"known"`
}

// RecordRequest asks a host for one flow's full record (the cascade
// procedure's synthetic-alert source).
type RecordRequest struct {
	Flow netsim.FlowKey `json:"flow"`
}

// RecordResponse is the answer to a RecordRequest.
type RecordResponse struct {
	Record *flowrec.Record `json:"record,omitempty"`
	Known  bool            `json:"known"`
}

// PointersRequest asks a switch for its pointer union over an epoch range.
type PointersRequest struct {
	EpochLo simtime.Epoch `json:"epoch_lo"`
	EpochHi simtime.Epoch `json:"epoch_hi"`
}

// MPHRequest installs a freshly built minimal perfect hash on a switch —
// the wire form of the analyzer's §4.3 distribution responsibility.
type MPHRequest struct {
	TableB64 string `json:"table_b64"`
}

// PointersResponse carries the pointer bitmap and how it was satisfied.
type PointersResponse struct {
	HostsB64 string `json:"hosts_b64"`
	Level    int    `json:"level"`
	Slots    int    `json:"slots"`
	Covered  bool   `json:"covered"`
	Source   string `json:"source"`
}

// Decode unpacks the bitmap.
func (pr *PointersResponse) Decode() (*bitset.Set, error) {
	raw, err := base64.StdEncoding.DecodeString(pr.HostsB64)
	if err != nil {
		return nil, fmt.Errorf("rpc: pointer bitmap: %w", err)
	}
	var s bitset.Set
	if err := s.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return &s, nil
}

// NewHostHandler exposes a host agent's query executors over HTTP.
func NewHostHandler(a *hostagent.Agent) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/headers", func(w http.ResponseWriter, r *http.Request) {
		var req HeadersRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		recs := a.QueryHeaders(r.Context(), hostagent.HeadersQuery{
			Switch: req.Switch,
			Epochs: simtime.EpochRange{Lo: req.EpochLo, Hi: req.EpochHi},
		})
		writeJSON(w, recs)
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		var req TopKRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, a.QueryTopK(r.Context(), req.Switch, req.K))
	})
	mux.HandleFunc("/flowsizes", func(w http.ResponseWriter, r *http.Request) {
		var req FlowSizesRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, a.QueryFlowSizes(r.Context(), req.Switch))
	})
	mux.HandleFunc("/priority", func(w http.ResponseWriter, r *http.Request) {
		var req PriorityRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		prio, known := a.QueryPriority(r.Context(), req.Flow)
		writeJSON(w, PriorityResponse{Priority: prio, Known: known})
	})
	mux.HandleFunc("/record", func(w http.ResponseWriter, r *http.Request) {
		var req RecordRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		rec, known := a.LookupRecord(r.Context(), req.Flow)
		writeJSON(w, RecordResponse{Record: rec, Known: known})
	})
	return mux
}

// NewSwitchHandler exposes a switch agent's pointer pulls over HTTP.
// net/http serves requests concurrently but switchagent.Agent is not
// concurrency-safe (pulls rotate epochs and mutate accounting), so the
// handler serializes agent access — the server-side twin of the per-switch
// pull mutexes in analyzer.MemoryDirectory. Pulls against DIFFERENT
// switches (separate handlers) still proceed in parallel, which is what
// the batched round relies on.
func NewSwitchHandler(a *switchagent.Agent) http.Handler {
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("/pointers", func(w http.ResponseWriter, r *http.Request) {
		var req PointersRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		mu.Lock()
		res := a.PullPointers(simtime.EpochRange{Lo: req.EpochLo, Hi: req.EpochHi})
		mu.Unlock()
		raw, err := res.Hosts.MarshalBinary()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, PointersResponse{
			HostsB64: base64.StdEncoding.EncodeToString(raw),
			Level:    res.Info.Level,
			Slots:    res.Info.Slots,
			Covered:  res.Info.Covered,
			Source:   res.Source,
		})
	})
	mux.HandleFunc("/mph", func(w http.ResponseWriter, r *http.Request) {
		var req MPHRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		raw, err := base64.StdEncoding.DecodeString(req.TableB64)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var table mph.Table
		if err := table.UnmarshalBinary(raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		a.InstallMPH(&table)
		mu.Unlock()
		writeJSON(w, struct{}{})
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HTTPClient is the analyzer-side client for the HTTP binding.
//
// Concurrency contract: an HTTPClient is goroutine-safe — all query methods
// may be called concurrently (http.Client and http.Transport are themselves
// concurrent-safe), which is what QueryHosts relies on to fan a round out
// over many host agents at once. The flask deployment the paper measures
// opens one connection per server per query (§6.2's sequential bottleneck);
// NewPooledHTTPClient is the corresponding fix: a shared, keep-alive
// http.Transport whose idle pool spans query rounds, so repeat rounds skip
// connection initiation entirely — the real-network twin of the cost model's
// Pooled+Parallel accounting.
type HTTPClient struct {
	HTTP *http.Client

	// PerHostTimeout bounds each single host interaction (connection +
	// request + response). Zero means no per-host bound; the round is then
	// limited only by the caller's context. A slow or dead host therefore
	// cannot stall a whole fan-out round beyond this bound.
	PerHostTimeout time.Duration
}

// NewHTTPClient returns a client using the given http.Client (or the default
// client when nil).
func NewHTTPClient(c *http.Client) *HTTPClient {
	if c == nil {
		c = http.DefaultClient
	}
	return &HTTPClient{HTTP: c}
}

// NewPooledHTTPClient returns a client over a dedicated pooled
// http.Transport tuned for analyzer fan-out: generous idle-connection
// limits so a 96-server query round keeps every connection alive for the
// next round, and a default per-host timeout so one dead agent cannot hang
// a diagnosis.
func NewPooledHTTPClient() *HTTPClient {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPClient{
		HTTP:           &http.Client{Transport: tr},
		PerHostTimeout: 5 * time.Second,
	}
}

// CloseIdleConnections drops pooled keep-alive connections.
func (c *HTTPClient) CloseIdleConnections() { c.HTTP.CloseIdleConnections() }

func (c *HTTPClient) post(ctx context.Context, url string, req, resp any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.PerHostTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.PerHostTimeout)
		defer cancel()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("rpc: marshal: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpc: request %s: %w", url, err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return fmt.Errorf("rpc: post %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("rpc: %s: status %d: %s", url, httpResp.StatusCode, msg)
	}
	if resp == nil {
		io.Copy(io.Discard, io.LimitReader(httpResp.Body, 1<<20)) //nolint:errcheck
		return nil
	}
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return err
	}
	// Drain to EOF so the transport sees the response end and returns the
	// connection to the idle pool — otherwise every chunked response kills
	// its keep-alive connection and fan-out rounds re-pay connection setup.
	io.Copy(io.Discard, io.LimitReader(httpResp.Body, 1<<20)) //nolint:errcheck
	return nil
}

// QueryHeaders fetches matching records from a host agent at baseURL.
func (c *HTTPClient) QueryHeaders(ctx context.Context, baseURL string, sw netsim.NodeID, epochs simtime.EpochRange) ([]*flowrec.Record, error) {
	var out []*flowrec.Record
	err := c.post(ctx, baseURL+"/headers", HeadersRequest{Switch: sw, EpochLo: epochs.Lo, EpochHi: epochs.Hi}, &out)
	return out, err
}

// QueryTopK fetches a host's top-k flows through a switch.
func (c *HTTPClient) QueryTopK(ctx context.Context, baseURL string, sw netsim.NodeID, k int) ([]hostagent.FlowBytes, error) {
	var out []hostagent.FlowBytes
	err := c.post(ctx, baseURL+"/topk", TopKRequest{Switch: sw, K: k}, &out)
	return out, err
}

// QueryFlowSizes fetches flow sizes + egress links at a switch from a host.
func (c *HTTPClient) QueryFlowSizes(ctx context.Context, baseURL string, sw netsim.NodeID) ([]hostagent.FlowSize, error) {
	var out []hostagent.FlowSize
	err := c.post(ctx, baseURL+"/flowsizes", FlowSizesRequest{Switch: sw}, &out)
	return out, err
}

// QueryPriority fetches a flow's priority from a host.
func (c *HTTPClient) QueryPriority(ctx context.Context, baseURL string, flow netsim.FlowKey) (uint8, bool, error) {
	var out PriorityResponse
	err := c.post(ctx, baseURL+"/priority", PriorityRequest{Flow: flow}, &out)
	return out.Priority, out.Known, err
}

// QueryRecord fetches one flow's full record from its destination host.
func (c *HTTPClient) QueryRecord(ctx context.Context, baseURL string, flow netsim.FlowKey) (*flowrec.Record, bool, error) {
	var out RecordResponse
	err := c.post(ctx, baseURL+"/record", RecordRequest{Flow: flow}, &out)
	return out.Record, out.Known && err == nil, err
}

// InstallMPH distributes a minimal perfect hash table to the switch at
// baseURL (the §4.3 membership-change push).
func (c *HTTPClient) InstallMPH(ctx context.Context, baseURL string, t *mph.Table) error {
	raw, err := t.MarshalBinary()
	if err != nil {
		return fmt.Errorf("rpc: marshal mph: %w", err)
	}
	return c.post(ctx, baseURL+"/mph", MPHRequest{TableB64: base64.StdEncoding.EncodeToString(raw)}, nil)
}

// PullPointers fetches a switch's pointer union for an epoch range.
func (c *HTTPClient) PullPointers(ctx context.Context, baseURL string, epochs simtime.EpochRange) (*bitset.Set, PointersResponse, error) {
	var out PointersResponse
	if err := c.post(ctx, baseURL+"/pointers", PointersRequest{EpochLo: epochs.Lo, EpochHi: epochs.Hi}, &out); err != nil {
		return nil, out, err
	}
	bits, err := out.Decode()
	return bits, out, err
}

// HostResult is one host's outcome in a concurrent query round.
type HostResult[T any] struct {
	URL string
	Val T
	Err error
}

// QueryHosts fans fn out over the given base URLs on the shared bounded
// worker pool (FanOut), preserving the partial-result contract: results[i]
// corresponds to urls[i], only the dispatched prefix is returned, and the
// per-URL order never depends on worker scheduling. fn typically wraps one
// of the Query* methods; per-host failures land in the result's Err so one
// dead agent does not abort the round. On cancellation the dispatched
// prefix and ctx's error are returned together.
func QueryHosts[T any](ctx context.Context, c *HTTPClient, workers int, urls []string, fn func(ctx context.Context, c *HTTPClient, url string) (T, error)) ([]HostResult[T], error) {
	results := make([]HostResult[T], len(urls))
	dispatched, err := FanOut(ctx, workers, len(urls), func(ctx context.Context, i int) {
		results[i].URL = urls[i]
		results[i].Val, results[i].Err = fn(ctx, c, urls[i])
	})
	return results[:dispatched], err
}

// Ensure topo.LinkID marshals as a plain number in FlowSize responses.
var _ = topo.LinkID(0)
