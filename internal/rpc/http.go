package rpc

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"switchpointer/internal/bitset"
	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
	"switchpointer/internal/topo"
	"switchpointer/internal/trace"
)

// This file is the real-network binding of the agent query interfaces:
// JSON over HTTP via net/http, replacing the paper's flask microframework.
// Handlers must only be served while the simulation engine is idle (the
// simulated testbed is single-threaded); in deployments the agents would own
// their state behind these handlers directly.

// HeadersRequest asks a host for records matching (switch, epoch range).
// Flows, when non-empty, restricts the answer to those flow keys and lets
// the host's cold-tier manifest index skip segments that cannot contain
// any of them.
type HeadersRequest struct {
	Switch  netsim.NodeID    `json:"switch"`
	EpochLo simtime.Epoch    `json:"epoch_lo"`
	EpochHi simtime.Epoch    `json:"epoch_hi"`
	Flows   []netsim.FlowKey `json:"flows,omitempty"`
}

// HeadersResponse answers a HeadersRequest: the matching records plus the
// host's cold read-back accounting (flushed segments decoded / records
// scanned past the hot window — zero when the window was answered entirely
// from the resident set). ColdSkippedByIndex counts epoch-overlapping
// segments the manifest index excluded without decoding; TieredSegments
// counts matching segments whose payloads were tiered out of cold storage
// (data the answer honestly does not include).
type HeadersResponse struct {
	Records            []*flowrec.Record `json:"records"`
	ColdSegments       int               `json:"cold_segments,omitempty"`
	ColdRecords        int               `json:"cold_records,omitempty"`
	ColdReturned       int               `json:"cold_returned,omitempty"`
	ColdSkippedByIndex int               `json:"cold_skipped_by_index,omitempty"`
	TieredSegments     int               `json:"tiered_segments,omitempty"`
}

// HeadersBatchRequest asks a host to answer several header queries in one
// request — the per-round form: a contention alert carries one query per
// alert tuple, and batching them means one HTTP round trip per host per
// round and one cold-segment decode pass (hostagent.QueryHeadersMulti)
// instead of one per tuple.
type HeadersBatchRequest struct {
	Queries []HeadersRequest `json:"queries"`
}

// HeadersBatchResponse answers a HeadersBatchRequest, one answer per query
// in order.
type HeadersBatchResponse struct {
	Answers []HeadersResponse `json:"answers"`
}

// TopKRequest asks a host for its top-k flows through a switch.
type TopKRequest struct {
	Switch netsim.NodeID `json:"switch"`
	K      int           `json:"k"`
}

// FlowSizesRequest asks a host for flow sizes and egress links at a switch.
type FlowSizesRequest struct {
	Switch netsim.NodeID `json:"switch"`
}

// PriorityRequest asks a host for a flow's recorded DSCP priority.
type PriorityRequest struct {
	Flow netsim.FlowKey `json:"flow"`
}

// PriorityResponse is the answer to a PriorityRequest.
type PriorityResponse struct {
	Priority uint8 `json:"priority"`
	Known    bool  `json:"known"`
}

// RecordRequest asks a host for one flow's full record (the cascade
// procedure's synthetic-alert source).
type RecordRequest struct {
	Flow netsim.FlowKey `json:"flow"`
}

// RecordResponse is the answer to a RecordRequest.
type RecordResponse struct {
	Record *flowrec.Record `json:"record,omitempty"`
	Known  bool            `json:"known"`
}

// PointersRequest asks a switch for its pointer union over an epoch range.
type PointersRequest struct {
	EpochLo simtime.Epoch `json:"epoch_lo"`
	EpochHi simtime.Epoch `json:"epoch_hi"`
}

// MPHRequest installs a freshly built minimal perfect hash on a switch —
// the wire form of the analyzer's §4.3 distribution responsibility.
type MPHRequest struct {
	TableB64 string `json:"table_b64"`
}

// SwitchSnapshotResponse is the switch half of a state-sync snapshot
// (GET /snapshot on a switch handler): the live pointer structure, the
// pushed control-store history, and the installed MPH, each in its own
// binary encoding. A bootstrapping daemon pulls one from its peer and
// applies it to a local agent of identical geometry so subsequent pointer
// pulls answer byte-identically to the source's.
type SwitchSnapshotResponse struct {
	PointerB64 string `json:"pointer_b64"`
	ControlB64 string `json:"control_b64"`
	MPHB64     string `json:"mph_b64,omitempty"`
}

// Apply restores the snapshot into a local switch agent: pointer structure,
// control store, and (when the snapshot carries one) the MPH.
func (sr *SwitchSnapshotResponse) Apply(a *switchagent.Agent) error {
	ptr, err := base64.StdEncoding.DecodeString(sr.PointerB64)
	if err != nil {
		return fmt.Errorf("rpc: switch snapshot: %w", err)
	}
	if err := a.RestorePointerSnapshot(ptr); err != nil {
		return err
	}
	ctrl, err := base64.StdEncoding.DecodeString(sr.ControlB64)
	if err != nil {
		return fmt.Errorf("rpc: switch snapshot: %w", err)
	}
	if err := a.RestoreControlStoreSnapshot(ctrl); err != nil {
		return err
	}
	if sr.MPHB64 != "" {
		raw, err := base64.StdEncoding.DecodeString(sr.MPHB64)
		if err != nil {
			return fmt.Errorf("rpc: switch snapshot: %w", err)
		}
		var table mph.Table
		if err := table.UnmarshalBinary(raw); err != nil {
			return err
		}
		a.InstallMPH(&table)
	}
	return nil
}

// PointersResponse carries the pointer bitmap and how it was satisfied.
type PointersResponse struct {
	HostsB64 string `json:"hosts_b64"`
	Level    int    `json:"level"`
	Slots    int    `json:"slots"`
	Covered  bool   `json:"covered"`
	Source   string `json:"source"`
	// Approx marks a sketch-backed answer: the bitmap is a candidate
	// superset of the touched hosts (never missing one). Omitted (false)
	// for exact backends, keeping the wire form identical to older peers.
	Approx bool `json:"approx,omitempty"`
}

// Decode unpacks the bitmap.
func (pr *PointersResponse) Decode() (*bitset.Set, error) {
	raw, err := base64.StdEncoding.DecodeString(pr.HostsB64)
	if err != nil {
		return nil, fmt.Errorf("rpc: pointer bitmap: %w", err)
	}
	var s bitset.Set
	if err := s.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	return &s, nil
}

// recordChild emits a virtual-instant child span into the daemon's flight
// recorder when the request carries trace context: the span sits at the
// analyzer's virtual send time, parents under the phase ordinal the round
// will charge, and derives its ID from (parent, role, label, endpoint) so
// the same diagnosis yields the same tree on every execution path.
func recordChild(fr *trace.FlightRecorder, role, label string, r *http.Request, name string, attrs ...trace.Attr) {
	if fr == nil {
		return
	}
	rc, ok := trace.ParseRemote(r.Header.Get(trace.Header))
	if !ok {
		return
	}
	fr.Record(rc.TraceID, trace.Span{
		ID:     rc.Parent + "." + role + ":" + label + ":" + name,
		Parent: rc.Parent,
		Name:   name,
		Role:   role,
		Start:  rc.At,
		End:    rc.At,
		Attrs:  attrs,
	})
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// NewHostHandler exposes a host agent's query executors over HTTP.
func NewHostHandler(a *hostagent.Agent) http.Handler {
	return NewTracedHostHandler(a, "", nil)
}

// NewTracedHostHandler is NewHostHandler with a flight recorder: requests
// carrying an X-SP-Trace header additionally emit child spans (records
// returned, cold decode counts) under the daemon's label (its host IP).
func NewTracedHostHandler(a *hostagent.Agent, label string, fr *trace.FlightRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/headers", func(w http.ResponseWriter, r *http.Request) {
		var req HeadersRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ans := a.QueryHeaders(r.Context(), hostagent.HeadersQuery{
			Switch: req.Switch,
			Epochs: simtime.EpochRange{Lo: req.EpochLo, Hi: req.EpochHi},
			Flows:  req.Flows,
		})
		recordChild(fr, "host", label, r, "headers",
			trace.Attr{Key: "records", Value: itoa(len(ans.Records))},
			trace.Attr{Key: "cold_segments", Value: itoa(ans.ColdSegments)},
			trace.Attr{Key: "cold_returned", Value: itoa(ans.ColdReturned)})
		writeJSON(w, headersToWire(ans))
	})
	mux.HandleFunc("/headers-batch", func(w http.ResponseWriter, r *http.Request) {
		var req HeadersBatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		qs := make([]hostagent.HeadersQuery, len(req.Queries))
		for i, q := range req.Queries {
			qs[i] = hostagent.HeadersQuery{
				Switch: q.Switch,
				Epochs: simtime.EpochRange{Lo: q.EpochLo, Hi: q.EpochHi},
				Flows:  q.Flows,
			}
		}
		answers := a.QueryHeadersMulti(r.Context(), qs)
		resp := HeadersBatchResponse{Answers: make([]HeadersResponse, len(answers))}
		records, coldSegments, coldReturned := 0, 0, 0
		for i, ans := range answers {
			resp.Answers[i] = headersToWire(ans)
			records += len(ans.Records)
			coldSegments += ans.ColdSegments
			coldReturned += ans.ColdReturned
		}
		recordChild(fr, "host", label, r, "headers-batch",
			trace.Attr{Key: "records", Value: itoa(records)},
			trace.Attr{Key: "cold_segments", Value: itoa(coldSegments)},
			trace.Attr{Key: "cold_returned", Value: itoa(coldReturned)})
		writeJSON(w, resp)
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		var req TopKRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		flows := a.QueryTopK(r.Context(), req.Switch, req.K)
		recordChild(fr, "host", label, r, "topk",
			trace.Attr{Key: "flows", Value: itoa(len(flows))})
		writeJSON(w, flows)
	})
	mux.HandleFunc("/flowsizes", func(w http.ResponseWriter, r *http.Request) {
		var req FlowSizesRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		sizes := a.QueryFlowSizes(r.Context(), req.Switch)
		recordChild(fr, "host", label, r, "flowsizes",
			trace.Attr{Key: "flows", Value: itoa(len(sizes))})
		writeJSON(w, sizes)
	})
	mux.HandleFunc("/priority", func(w http.ResponseWriter, r *http.Request) {
		var req PriorityRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		prio, known := a.QueryPriority(r.Context(), req.Flow)
		recordChild(fr, "host", label, r, "priority",
			trace.Attr{Key: "known", Value: fmt.Sprintf("%v", known)})
		writeJSON(w, PriorityResponse{Priority: prio, Known: known})
	})
	mux.HandleFunc("/record", func(w http.ResponseWriter, r *http.Request) {
		var req RecordRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		rec, known := a.LookupRecord(r.Context(), req.Flow)
		recordChild(fr, "host", label, r, "record",
			trace.Attr{Key: "known", Value: fmt.Sprintf("%v", known)})
		writeJSON(w, RecordResponse{Record: rec, Known: known})
	})
	return mux
}

// NewSwitchHandler exposes a switch agent's pointer pulls over HTTP.
// net/http serves requests concurrently but switchagent.Agent is not
// concurrency-safe (pulls rotate epochs and mutate accounting), so the
// handler serializes agent access — the server-side twin of the per-switch
// pull mutexes in analyzer.MemoryDirectory. Pulls against DIFFERENT
// switches (separate handlers) still proceed in parallel, which is what
// the batched round relies on.
func NewSwitchHandler(a *switchagent.Agent) http.Handler {
	return NewTracedSwitchHandler(a, "", nil)
}

// NewTracedSwitchHandler is NewSwitchHandler with a flight recorder:
// pointer pulls carrying an X-SP-Trace header additionally emit child spans
// (level, slot count, approx flag) under the daemon's label (its switch ID).
func NewTracedSwitchHandler(a *switchagent.Agent, label string, fr *trace.FlightRecorder) http.Handler {
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("/pointers", func(w http.ResponseWriter, r *http.Request) {
		var req PointersRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		mu.Lock()
		res := a.PullPointers(simtime.EpochRange{Lo: req.EpochLo, Hi: req.EpochHi})
		mu.Unlock()
		raw, err := res.Hosts.MarshalBinary()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		recordChild(fr, "switch", label, r, "pointers",
			trace.Attr{Key: "level", Value: itoa(res.Info.Level)},
			trace.Attr{Key: "slots", Value: itoa(res.Info.Slots)},
			trace.Attr{Key: "covered", Value: fmt.Sprintf("%v", res.Info.Covered)},
			trace.Attr{Key: "source", Value: res.Source},
			trace.Attr{Key: "approx", Value: fmt.Sprintf("%v", !res.Exact)})
		writeJSON(w, PointersResponse{
			HostsB64: base64.StdEncoding.EncodeToString(raw),
			Level:    res.Info.Level,
			Slots:    res.Info.Slots,
			Covered:  res.Info.Covered,
			Source:   res.Source,
			Approx:   !res.Exact,
		})
	})
	mux.HandleFunc("/mph", func(w http.ResponseWriter, r *http.Request) {
		var req MPHRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		raw, err := base64.StdEncoding.DecodeString(req.TableB64)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var table mph.Table
		if err := table.UnmarshalBinary(raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		a.InstallMPH(&table)
		mu.Unlock()
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		mu.Lock()
		ptr, err := a.PointerSnapshot()
		var ctrl []byte
		if err == nil {
			ctrl, err = a.ControlStoreSnapshot()
		}
		var mphRaw []byte
		if err == nil && a.MPH() != nil {
			mphRaw, err = a.MPH().MarshalBinary()
		}
		mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := SwitchSnapshotResponse{
			PointerB64: base64.StdEncoding.EncodeToString(ptr),
			ControlB64: base64.StdEncoding.EncodeToString(ctrl),
		}
		if mphRaw != nil {
			resp.MPHB64 = base64.StdEncoding.EncodeToString(mphRaw)
		}
		writeJSON(w, resp)
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HTTPClient is the analyzer-side client for the HTTP binding.
//
// Concurrency contract: an HTTPClient is goroutine-safe — all query methods
// may be called concurrently (http.Client and http.Transport are themselves
// concurrent-safe), which is what QueryHosts relies on to fan a round out
// over many host agents at once. The flask deployment the paper measures
// opens one connection per server per query (§6.2's sequential bottleneck);
// NewPooledHTTPClient is the corresponding fix: a shared, keep-alive
// http.Transport whose idle pool spans query rounds, so repeat rounds skip
// connection initiation entirely — the real-network twin of the cost model's
// Pooled+Parallel accounting.
//
// Static-analysis contract: splint treats every HTTPClient method (except
// Close/CloseIdleConnections) as a network round. locklint therefore flags
// any call on one while a sync.Mutex/RWMutex is held — clone the state
// under the lock and send outside it — and ctxlint requires exported
// callers in the service-plane packages to thread a context.Context down
// into these methods rather than severing the chain with
// context.Background.
type HTTPClient struct {
	HTTP *http.Client

	// PerHostTimeout bounds each single host interaction (connection +
	// request + response). Zero means no per-host bound; the round is then
	// limited only by the caller's context. A slow or dead host therefore
	// cannot stall a whole fan-out round beyond this bound.
	PerHostTimeout time.Duration
}

// NewHTTPClient returns a client using the given http.Client (or the default
// client when nil).
func NewHTTPClient(c *http.Client) *HTTPClient {
	if c == nil {
		c = http.DefaultClient
	}
	return &HTTPClient{HTTP: c}
}

// NewPooledHTTPClient returns a client over a dedicated pooled
// http.Transport tuned for analyzer fan-out: generous idle-connection
// limits so a 96-server query round keeps every connection alive for the
// next round, and a default per-host timeout so one dead agent cannot hang
// a diagnosis.
func NewPooledHTTPClient() *HTTPClient {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPClient{
		HTTP:           &http.Client{Transport: tr},
		PerHostTimeout: 5 * time.Second,
	}
}

// CloseIdleConnections drops pooled keep-alive connections.
func (c *HTTPClient) CloseIdleConnections() { c.HTTP.CloseIdleConnections() }

func (c *HTTPClient) post(ctx context.Context, url string, req, resp any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.PerHostTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.PerHostTimeout)
		defer cancel()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("rpc: marshal: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpc: request %s: %w", url, err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if rc, ok := trace.RemoteFromContext(ctx); ok {
		httpReq.Header.Set(trace.Header, rc.Encode())
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return fmt.Errorf("rpc: post %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("rpc: %s: status %d: %s", url, httpResp.StatusCode, msg)
	}
	if resp == nil {
		io.Copy(io.Discard, io.LimitReader(httpResp.Body, 1<<20)) //nolint:errcheck
		return nil
	}
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return err
	}
	// Drain to EOF so the transport sees the response end and returns the
	// connection to the idle pool — otherwise every chunked response kills
	// its keep-alive connection and fan-out rounds re-pay connection setup.
	io.Copy(io.Discard, io.LimitReader(httpResp.Body, 1<<20)) //nolint:errcheck
	return nil
}

// get issues a GET and decodes the JSON answer, under the same per-host
// timeout discipline as post.
func (c *HTTPClient) get(ctx context.Context, url string, resp any) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.PerHostTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.PerHostTimeout)
		defer cancel()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("rpc: request %s: %w", url, err)
	}
	if rc, ok := trace.RemoteFromContext(ctx); ok {
		httpReq.Header.Set(trace.Header, rc.Encode())
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return fmt.Errorf("rpc: get %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("rpc: %s: status %d: %s", url, httpResp.StatusCode, msg)
	}
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("rpc: read %s: %w", url, err)
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("rpc: decode %s: %w", url, err)
	}
	return nil
}

// SwitchSnapshot pulls the state-sync snapshot of the switch agent at
// baseURL (GET /snapshot). Apply it to a local agent with Apply.
func (c *HTTPClient) SwitchSnapshot(ctx context.Context, baseURL string) (SwitchSnapshotResponse, error) {
	var out SwitchSnapshotResponse
	err := c.get(ctx, baseURL+"/snapshot", &out)
	return out, err
}

// headersToWire/headersFromWire map between the in-process HeadersAnswer
// and its wire form, field for field.
func headersToWire(ans hostagent.HeadersAnswer) HeadersResponse {
	return HeadersResponse{
		Records:            ans.Records,
		ColdSegments:       ans.ColdSegments,
		ColdRecords:        ans.ColdRecords,
		ColdReturned:       ans.ColdReturned,
		ColdSkippedByIndex: ans.ColdSkippedByIndex,
		TieredSegments:     ans.TieredSegments,
	}
}

func headersFromWire(resp HeadersResponse) hostagent.HeadersAnswer {
	return hostagent.HeadersAnswer{
		Records:            resp.Records,
		ColdSegments:       resp.ColdSegments,
		ColdRecords:        resp.ColdRecords,
		ColdReturned:       resp.ColdReturned,
		ColdSkippedByIndex: resp.ColdSkippedByIndex,
		TieredSegments:     resp.TieredSegments,
	}
}

// QueryHeaders fetches matching records (and the host's cold read-back
// accounting) from a host agent at baseURL.
func (c *HTTPClient) QueryHeaders(ctx context.Context, baseURL string, sw netsim.NodeID, epochs simtime.EpochRange) (hostagent.HeadersAnswer, error) {
	var out HeadersResponse
	err := c.post(ctx, baseURL+"/headers", HeadersRequest{Switch: sw, EpochLo: epochs.Lo, EpochHi: epochs.Hi}, &out)
	return headersFromWire(out), err
}

// QueryHeadersBatch answers several header queries against one host in a
// single request (POST /headers-batch), one answer per query in order.
func (c *HTTPClient) QueryHeadersBatch(ctx context.Context, baseURL string, qs []hostagent.HeadersQuery) ([]hostagent.HeadersAnswer, error) {
	req := HeadersBatchRequest{Queries: make([]HeadersRequest, len(qs))}
	for i, q := range qs {
		req.Queries[i] = HeadersRequest{Switch: q.Switch, EpochLo: q.Epochs.Lo, EpochHi: q.Epochs.Hi, Flows: q.Flows}
	}
	var out HeadersBatchResponse
	if err := c.post(ctx, baseURL+"/headers-batch", req, &out); err != nil {
		return nil, err
	}
	if len(out.Answers) != len(qs) {
		return nil, fmt.Errorf("rpc: headers batch answered %d of %d queries", len(out.Answers), len(qs))
	}
	answers := make([]hostagent.HeadersAnswer, len(out.Answers))
	for i, ans := range out.Answers {
		answers[i] = headersFromWire(ans)
	}
	return answers, nil
}

// QueryTopK fetches a host's top-k flows through a switch.
func (c *HTTPClient) QueryTopK(ctx context.Context, baseURL string, sw netsim.NodeID, k int) ([]hostagent.FlowBytes, error) {
	var out []hostagent.FlowBytes
	err := c.post(ctx, baseURL+"/topk", TopKRequest{Switch: sw, K: k}, &out)
	return out, err
}

// QueryFlowSizes fetches flow sizes + egress links at a switch from a host.
func (c *HTTPClient) QueryFlowSizes(ctx context.Context, baseURL string, sw netsim.NodeID) ([]hostagent.FlowSize, error) {
	var out []hostagent.FlowSize
	err := c.post(ctx, baseURL+"/flowsizes", FlowSizesRequest{Switch: sw}, &out)
	return out, err
}

// QueryPriority fetches a flow's priority from a host.
func (c *HTTPClient) QueryPriority(ctx context.Context, baseURL string, flow netsim.FlowKey) (uint8, bool, error) {
	var out PriorityResponse
	err := c.post(ctx, baseURL+"/priority", PriorityRequest{Flow: flow}, &out)
	return out.Priority, out.Known, err
}

// QueryRecord fetches one flow's full record from its destination host.
func (c *HTTPClient) QueryRecord(ctx context.Context, baseURL string, flow netsim.FlowKey) (*flowrec.Record, bool, error) {
	var out RecordResponse
	err := c.post(ctx, baseURL+"/record", RecordRequest{Flow: flow}, &out)
	return out.Record, out.Known && err == nil, err
}

// InstallMPH distributes a minimal perfect hash table to the switch at
// baseURL (the §4.3 membership-change push).
func (c *HTTPClient) InstallMPH(ctx context.Context, baseURL string, t *mph.Table) error {
	raw, err := t.MarshalBinary()
	if err != nil {
		return fmt.Errorf("rpc: marshal mph: %w", err)
	}
	return c.post(ctx, baseURL+"/mph", MPHRequest{TableB64: base64.StdEncoding.EncodeToString(raw)}, nil)
}

// PullPointers fetches a switch's pointer union for an epoch range.
func (c *HTTPClient) PullPointers(ctx context.Context, baseURL string, epochs simtime.EpochRange) (*bitset.Set, PointersResponse, error) {
	var out PointersResponse
	if err := c.post(ctx, baseURL+"/pointers", PointersRequest{EpochLo: epochs.Lo, EpochHi: epochs.Hi}, &out); err != nil {
		return nil, out, err
	}
	bits, err := out.Decode()
	return bits, out, err
}

// HostResult is one host's outcome in a concurrent query round.
type HostResult[T any] struct {
	URL string
	Val T
	Err error
}

// QueryHosts fans fn out over the given base URLs on the shared bounded
// worker pool (FanOut), preserving the partial-result contract: results[i]
// corresponds to urls[i], only the dispatched prefix is returned, and the
// per-URL order never depends on worker scheduling. fn typically wraps one
// of the Query* methods; per-host failures land in the result's Err so one
// dead agent does not abort the round. On cancellation the dispatched
// prefix and ctx's error are returned together.
func QueryHosts[T any](ctx context.Context, c *HTTPClient, workers int, urls []string, fn func(ctx context.Context, c *HTTPClient, url string) (T, error)) ([]HostResult[T], error) {
	results := make([]HostResult[T], len(urls))
	dispatched, err := FanOut(ctx, workers, len(urls), func(ctx context.Context, i int) {
		results[i].URL = urls[i]
		results[i].Val, results[i].Err = fn(ctx, c, urls[i])
	})
	return results[:dispatched], err
}

// Ensure topo.LinkID marshals as a plain number in FlowSize responses.
var _ = topo.LinkID(0)
