// Package rpc models and implements the control communication between the
// analyzer, switch agents, and host agents.
//
// It has two halves:
//
//   - A virtual-time cost model (this file) substituting for the paper's
//     flask-based agents. The paper's §6.2 analysis shows diagnosis latency
//     is dominated by *sequential per-server connection initiation* (the
//     analyzer spawns one thread per server on demand); pooling connections
//     is the suggested optimization. The cost model reproduces exactly that
//     structure so Figs 7, 8 and 12 can be regenerated, and exposes the
//     pooled mode as an ablation.
//
//   - A real JSON-over-HTTP binding (http.go) of the same query interfaces,
//     run over net/http, demonstrating the system end-to-end as an actual
//     distributed service.
package rpc

import (
	"context"
	"fmt"

	"switchpointer/internal/simtime"
	"switchpointer/internal/trace"
)

// PhaseColdReadBack names the clock phase charged for cold-segment
// read-back rounds; the Clock counts them (ColdRounds) so traces and
// /metrics agree on the same denominator.
const PhaseColdReadBack = "cold-read-back"

// CostModel parameterizes the virtual-time communication costs, calibrated
// to the latencies the paper reports (§5, §6.2).
type CostModel struct {
	// AlertSend is the host→analyzer alert + acknowledgment time
	// (paper: 2–3 ms).
	AlertSend simtime.Time
	// PointerPull is the time to retrieve pointers from one switch
	// (paper: 7–8 ms).
	PointerPull simtime.Time
	// PointerPullExtra is the marginal cost per additional switch pulled in
	// the same round (pulls overlap; the red-lights case fetches from three
	// switches in ~10 ms).
	PointerPullExtra simtime.Time
	// ConnInit is the per-server connection-initiation cost: flask's
	// on-demand thread creation plus TCP/HTTP setup. Paid SEQUENTIALLY per
	// contacted server (paper's §6.2 bottleneck).
	ConnInit simtime.Time
	// RTT is one request/response network round trip.
	RTT simtime.Time
	// QueryExec is the base query execution time at a host.
	QueryExec simtime.Time
	// QueryPerRecord is the marginal execution time per record scanned.
	QueryPerRecord simtime.Time

	// Pooled switches the analyzer to a connection pool: ConnInit is paid
	// only on first contact with a server (the paper's proposed fix).
	Pooled bool

	// Parallel switches query-round accounting from the paper's sequential
	// per-server model to the concurrent fan-out the analyzer actually runs:
	// connections to all first-contact servers initiate concurrently, so a
	// round costs ConnInit (once, if any server is new) + RTT + max(exec)
	// instead of Σ ConnInit + RTT + max(exec). Keep it false to reproduce
	// the paper's §6.2 sequential-bottleneck curves (Figs 7, 8, 12); set it
	// (typically together with Pooled) for the parallel ablation.
	Parallel bool
}

// DefaultCostModel returns costs calibrated to the paper's measurements:
// ~3 ms alert, 7.5 ms single-switch pointer retrieval, and ≈3.3 ms/server
// sequential connection initiation (which yields PathDump's ≈0.35 s at 96
// servers in Fig 12 and the ≈400 ms load-imbalance diagnosis at 96 relevant
// servers in Fig 8).
func DefaultCostModel() CostModel {
	return CostModel{
		AlertSend:        2500 * simtime.Microsecond,
		PointerPull:      7500 * simtime.Microsecond,
		PointerPullExtra: 1250 * simtime.Microsecond,
		ConnInit:         3300 * simtime.Microsecond,
		RTT:              250 * simtime.Microsecond,
		QueryExec:        800 * simtime.Microsecond,
		QueryPerRecord:   2 * simtime.Microsecond,
	}
}

// Validate checks the model.
func (c CostModel) Validate() error {
	if c.AlertSend < 0 || c.PointerPull < 0 || c.ConnInit < 0 || c.RTT < 0 ||
		c.QueryExec < 0 || c.QueryPerRecord < 0 || c.PointerPullExtra < 0 {
		return fmt.Errorf("rpc: negative cost")
	}
	return nil
}

// Clock tracks the analyzer's position in virtual time as a diagnosis
// proceeds, together with a per-phase breakdown ledger and round counters
// that let tests assert *how* a cost was incurred (batched vs sequential)
// independently of the virtual-time total.
type Clock struct {
	cost      CostModel
	now       simtime.Time
	connected map[string]bool // servers with pooled connections
	phases    []Phase

	pullRounds   int // batched pointer-pull rounds (PointersPulled calls)
	pullsCharged int // individual switch pulls across all rounds
	queryRounds  int // host query rounds (HostsQueried calls)
	coldRounds   int // cold read-back rounds (PhaseColdReadBack charges)

	rec *trace.Recorder // when set, every charge also emits a span
}

// Phase is one named span of a diagnosis timeline.
type Phase struct {
	Name     string
	Duration simtime.Time
}

// NewClock starts an analyzer clock at the given virtual time.
func NewClock(cost CostModel, start simtime.Time) *Clock {
	return &Clock{cost: cost, now: start, connected: make(map[string]bool)}
}

// Now returns the analyzer's current virtual time.
func (c *Clock) Now() simtime.Time { return c.now }

// Phases returns the recorded per-phase breakdown.
func (c *Clock) Phases() []Phase { return c.phases }

// PhaseTotal returns the summed duration of phases with the given name.
func (c *Clock) PhaseTotal(name string) simtime.Time {
	var total simtime.Time
	for _, p := range c.phases {
		if p.Name == name {
			total += p.Duration
		}
	}
	return total
}

// Total returns the summed duration of all phases.
func (c *Clock) Total() simtime.Time {
	var total simtime.Time
	for _, p := range c.phases {
		total += p.Duration
	}
	return total
}

// spend advances the clock and records a phase (and, when tracing is
// armed, the matching span). The charge sequence within a procedure is
// sequential, so span ordinals are deterministic.
func (c *Clock) spend(name string, d simtime.Time) {
	if d < 0 {
		d = 0
	}
	start := c.now
	c.now += d
	c.phases = append(c.phases, Phase{Name: name, Duration: d})
	if name == PhaseColdReadBack {
		c.coldRounds++
	}
	if c.rec != nil {
		c.rec.Phase(name, start, c.now)
	}
}

// Trace arms span emission: every subsequent charge becomes a child span
// on rec, anchored at the clock's current virtual time. A nil rec is a
// no-op, so callers can pass trace.FromContext(ctx) unconditionally.
func (c *Clock) Trace(rec *trace.Recorder) {
	c.rec = rec
	if rec != nil {
		rec.Anchor(c.now)
	}
}

// RemoteCtx attaches the outbound trace context for requests issued in the
// round about to be charged: child spans emitted by the daemons that serve
// those requests parent under the next phase ordinal at the clock's current
// virtual time. Without an armed recorder it returns ctx unchanged.
func (c *Clock) RemoteCtx(ctx context.Context) context.Context {
	if c.rec == nil {
		return ctx
	}
	return trace.ContextWithRemote(ctx, trace.RemoteContext{
		TraceID: c.rec.ID(),
		Parent:  c.rec.NextPhaseID(),
		At:      c.now,
	})
}

// ColdRounds returns how many cold read-back rounds have been charged.
func (c *Clock) ColdRounds() int { return c.coldRounds }

// Spend records an explicitly-costed phase (e.g. detection latency measured
// by the host trigger).
func (c *Clock) Spend(name string, d simtime.Time) { c.spend(name, d) }

// AlertDelivered accounts the host→analyzer alert hop.
func (c *Clock) AlertDelivered() { c.spend("alert", c.cost.AlertSend) }

// PointersPulled accounts retrieving pointers from n switches in one
// overlapping (batched) round: the first pull costs PointerPull, each
// additional switch in the round only the marginal PointerPullExtra. One
// call = one round trip; Analyzer.pullCandidates issues exactly one per
// alert since the pulls go through Directory.HostsBatch.
func (c *Clock) PointersPulled(n int) {
	if n <= 0 {
		return
	}
	c.pullRounds++
	c.pullsCharged += n
	d := c.cost.PointerPull + simtime.Time(n-1)*c.cost.PointerPullExtra
	c.spend("pointer-retrieval", d)
	if c.rec != nil {
		c.rec.AnnotateLast(trace.Attr{Key: "switches", Value: fmt.Sprintf("%d", n)})
	}
}

// PointerRounds returns how many batched pointer-pull round trips have been
// charged, and PointersCharged how many individual switch pulls they
// covered. The batching invariant the analyzer maintains is one round per
// alert regardless of path length.
func (c *Clock) PointerRounds() int { return c.pullRounds }

// PointersCharged returns the number of individual switch pulls charged
// across all rounds.
func (c *Clock) PointersCharged() int { return c.pullsCharged }

// QueryRounds returns how many host query rounds have been charged.
func (c *Clock) QueryRounds() int { return c.queryRounds }

// HostsQueried accounts one query round to the named servers, where server i
// scans recs[i] records. Connection initiation is sequential per server (or
// pooled); execution and responses overlap across servers. When the cost
// model's Parallel flag is set it dispatches to HostsQueriedParallel.
func (c *Clock) HostsQueried(phase string, servers []string, recs []int) {
	if c.cost.Parallel {
		c.HostsQueriedParallel(phase, servers, recs)
		return
	}
	if len(servers) == 0 {
		return
	}
	c.queryRounds++
	var init simtime.Time
	for _, s := range servers {
		if c.cost.Pooled && c.connected[s] {
			continue
		}
		c.connected[s] = true
		init += c.cost.ConnInit
	}
	c.spend(phase, init+c.cost.RTT+c.maxExec(servers, recs))
	c.annotateRound(servers, recs)
}

// annotateRound labels the just-charged query-round span with its fan-out.
func (c *Clock) annotateRound(servers []string, recs []int) {
	if c.rec == nil {
		return
	}
	total := 0
	for _, n := range recs {
		total += n
	}
	c.rec.AnnotateLast(
		trace.Attr{Key: "servers", Value: fmt.Sprintf("%d", len(servers))},
		trace.Attr{Key: "records", Value: fmt.Sprintf("%d", total)},
	)
}

// HostsQueriedParallel accounts one query round under the concurrent
// fan-out model: all first-contact connections initiate concurrently, so
// ConnInit is paid once per round (and, when pooled, only on rounds that
// touch a not-yet-connected server) instead of once per server. The round
// costs ConnInit(first-contact) + RTT + max(exec).
func (c *Clock) HostsQueriedParallel(phase string, servers []string, recs []int) {
	if len(servers) == 0 {
		return
	}
	c.queryRounds++
	var init simtime.Time
	for _, s := range servers {
		if c.cost.Pooled && c.connected[s] {
			continue
		}
		c.connected[s] = true
		init = c.cost.ConnInit // overlapped: one initiation covers the round
	}
	c.spend(phase, init+c.cost.RTT+c.maxExec(servers, recs))
	c.annotateRound(servers, recs)
}

// maxExec returns the slowest per-server execution time of a round.
func (c *Clock) maxExec(servers []string, recs []int) simtime.Time {
	var max simtime.Time
	for i := range servers {
		n := 0
		if i < len(recs) {
			n = recs[i]
		}
		exec := c.cost.QueryExec + simtime.Time(n)*c.cost.QueryPerRecord
		if exec > max {
			max = exec
		}
	}
	return max
}
