package rpc

import (
	"context"
	"runtime"
	"sync"
)

// DefaultFanOutWorkers is the fan-out width used when a caller passes a
// non-positive worker count: one worker per CPU, capped so a huge machine
// does not spawn hundreds of goroutines for a 96-host query round.
func DefaultFanOutWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// FanOut runs fn(i) for every index in [0, n) on a bounded pool of workers
// and waits for all dispatched work to finish. It is the shared concurrency
// primitive behind the analyzer's per-host query rounds, for both the
// virtual-time backend and the HTTP binding.
//
// The contract is built for deterministic results and deterministic partial
// cost under cancellation:
//
//   - Dispatch is sequential in index order on the calling goroutine, and
//     ctx.Err is consulted exactly once before each dispatch — the same
//     one-check-per-item cadence as a sequential loop. The set of dispatched
//     indices is therefore always a prefix of [0, n).
//   - Every dispatched index runs to completion before FanOut returns, so
//     callers can merge per-index results in index order afterwards — worker
//     scheduling never influences the outcome, only the wall-clock time.
//   - Workers receive a context derived from ctx (cancelled when FanOut
//     returns); real deadline/cancel signals propagate to in-flight work via
//     Done, but worker-side Err polls do not consume checks on the caller's
//     context.
//
// fn must be safe to call concurrently for distinct indices. With one worker
// (or n ≤ 1) everything runs inline on the caller's goroutine and fn
// receives ctx itself — byte-for-byte the sequential semantics.
//
// FanOut returns the number of dispatched indices and ctx.Err() as observed
// at the dispatch checkpoint that stopped early, if any.
func FanOut(ctx context.Context, workers, n int, fn func(ctx context.Context, i int)) (dispatched int, err error) {
	if n <= 0 {
		return 0, nil
	}
	if workers <= 0 {
		workers = DefaultFanOutWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return i, err
			}
			fn(ctx, i)
		}
		return n, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(runCtx, i)
			}
		}()
	}
	for dispatched = 0; dispatched < n; dispatched++ {
		if err = ctx.Err(); err != nil {
			break
		}
		idx <- dispatched
	}
	close(idx)
	wg.Wait()
	return dispatched, err
}
