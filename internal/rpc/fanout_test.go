package rpc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"switchpointer/internal/simtime"
)

func TestFanOutRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var hits [100]int32
		dispatched, err := FanOut(context.Background(), workers, len(hits), func(_ context.Context, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		if err != nil || dispatched != len(hits) {
			t.Fatalf("workers=%d: dispatched=%d err=%v", workers, dispatched, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestFanOutEmpty(t *testing.T) {
	dispatched, err := FanOut(context.Background(), 4, 0, func(context.Context, int) {
		t.Fatal("fn called for n=0")
	})
	if dispatched != 0 || err != nil {
		t.Fatalf("dispatched=%d err=%v", dispatched, err)
	}
}

func TestFanOutCancelledBeforeDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		dispatched, err := FanOut(ctx, workers, 10, func(context.Context, int) {
			t.Fatal("fn called after cancellation")
		})
		if dispatched != 0 || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: dispatched=%d err=%v", workers, dispatched, err)
		}
	}
}

// countdownCtx cancels after a fixed number of Err checks, giving the tests
// a deterministic mid-round cancellation point. Only the dispatching
// goroutine consults it (workers poll a derived context), so no locking is
// needed even for workers > 1.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestFanOutCancelledMidDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx := &countdownCtx{Context: context.Background(), remaining: 5}
		var ran int32
		dispatched, err := FanOut(ctx, workers, 10, func(_ context.Context, i int) {
			if i >= 5 {
				t.Errorf("index %d dispatched past the cancellation point", i)
			}
			atomic.AddInt32(&ran, 1)
		})
		if dispatched != 5 || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: dispatched=%d err=%v", workers, dispatched, err)
		}
		// Every dispatched index completes before FanOut returns: the
		// dispatched set is always the prefix [0, dispatched).
		if ran != 5 {
			t.Fatalf("workers=%d: ran=%d, want 5", workers, ran)
		}
	}
}

func TestFanOutWorkerCtxPropagatesRealCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawDone := make(chan struct{})
	done, err := FanOut(ctx, 4, 4, func(wctx context.Context, i int) {
		if i == 0 {
			cancel()
			<-wctx.Done() // the derived context must observe the cancel
			close(sawDone)
		}
	})
	<-sawDone
	if done > 4 || err == nil && done == 4 {
		// Cancellation raced dispatch; both a full and a partial round are
		// legal — the invariant under test is only Done propagation.
		_ = done
	}
	_ = err
}

func TestHostsQueriedParallelAccounting(t *testing.T) {
	cost := DefaultCostModel()
	servers := make([]string, 96)
	recs := make([]int, 96)
	for i := range servers {
		servers[i] = fmt.Sprintf("h%d", i)
		recs[i] = i // max exec at the last server
	}
	maxExec := cost.QueryExec + 95*cost.QueryPerRecord

	seq := NewClock(cost, 0)
	seq.HostsQueried("q", servers, recs)
	wantSeq := 96*cost.ConnInit + cost.RTT + maxExec
	if seq.Total() != wantSeq {
		t.Fatalf("sequential: %v, want %v", seq.Total(), wantSeq)
	}

	par := NewClock(cost, 0)
	par.HostsQueriedParallel("q", servers, recs)
	wantPar := cost.ConnInit + cost.RTT + maxExec
	if par.Total() != wantPar {
		t.Fatalf("parallel: %v, want %v", par.Total(), wantPar)
	}

	// The Parallel flag reroutes HostsQueried, and with pooling a repeat
	// round to connected servers skips ConnInit entirely.
	cost.Parallel = true
	cost.Pooled = true
	pp := NewClock(cost, 0)
	pp.HostsQueried("q", servers, recs)
	if got := pp.Total(); got != wantPar {
		t.Fatalf("pooled+parallel first round: %v, want %v", got, wantPar)
	}
	pp.HostsQueried("q", servers, recs)
	if got := pp.Total() - wantPar; got != cost.RTT+maxExec {
		t.Fatalf("pooled+parallel repeat round: %v, want %v", got, cost.RTT+maxExec)
	}
}

// TestQueryHostsConcurrent drives the pooled HTTP client's fan-out path
// against live test servers: every host answers, per-host failures stay
// per-host, and results come back in URL order.
func TestQueryHostsConcurrent(t *testing.T) {
	const n = 8
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if i == 3 {
				http.Error(w, "down", http.StatusInternalServerError)
				return
			}
			fmt.Fprintf(w, "{\"host\":%d}", i)
		}))
		defer srv.Close()
		urls[i] = srv.URL
	}
	client := NewPooledHTTPClient()
	defer client.CloseIdleConnections()

	type answer struct{ Host int }
	results, err := QueryHosts(context.Background(), client, 4, urls,
		func(ctx context.Context, c *HTTPClient, url string) (answer, error) {
			var out answer
			err := c.post(ctx, url, struct{}{}, &out)
			return out, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.URL != urls[i] {
			t.Fatalf("result %d out of order: %s", i, r.URL)
		}
		if i == 3 {
			if r.Err == nil {
				t.Fatal("down host should error")
			}
			continue
		}
		if r.Err != nil || r.Val.Host != i {
			t.Fatalf("result %d = %+v err=%v", i, r.Val, r.Err)
		}
	}
}

// TestPerHostTimeout asserts a dead host is bounded by PerHostTimeout
// rather than hanging the round.
func TestPerHostTimeout(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer srv.Close()
	defer close(stall)

	client := NewPooledHTTPClient()
	client.PerHostTimeout = 50 * time.Millisecond
	defer client.CloseIdleConnections()
	_, _, err := client.PullPointers(context.Background(), srv.URL, simtime.EpochRange{})
	if err == nil {
		t.Fatal("stalled host should time out")
	}
}
