package rpc

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"switchpointer/internal/bitset"
	"switchpointer/internal/header"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/pointer"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCostModel()
	bad.ConnInit = -1
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative cost accepted")
	}
}

func TestClockPhases(t *testing.T) {
	c := NewClock(DefaultCostModel(), 100*simtime.Millisecond)
	c.Spend("detection", simtime.Millisecond)
	c.AlertDelivered()
	c.PointersPulled(1)
	c.HostsQueried("diagnosis", []string{"a", "b"}, []int{10, 1000})
	if c.Now() != 100*simtime.Millisecond+c.Total() {
		t.Fatalf("Now drifted from phases: %v vs %v", c.Now(), c.Total())
	}
	if c.PhaseTotal("alert") != 2500*simtime.Microsecond {
		t.Fatalf("alert phase = %v", c.PhaseTotal("alert"))
	}
	if c.PhaseTotal("pointer-retrieval") != 7500*simtime.Microsecond {
		t.Fatalf("pointer phase = %v", c.PhaseTotal("pointer-retrieval"))
	}
	// Two servers: 2×3.3ms init + RTT + max exec (0.8ms + 1000×2µs = 2.8ms).
	want := 2*3300*simtime.Microsecond + 250*simtime.Microsecond + 2800*simtime.Microsecond
	if got := c.PhaseTotal("diagnosis"); got != want {
		t.Fatalf("diagnosis = %v, want %v", got, want)
	}
	if len(c.Phases()) != 4 {
		t.Fatalf("phases = %d", len(c.Phases()))
	}
}

func TestClockSequentialInitScalesLinearly(t *testing.T) {
	// The §6.2 bottleneck: contacting n servers costs ≈ n × ConnInit.
	cost := DefaultCostModel()
	servers := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = string(rune('a' + i))
		}
		return out
	}
	c8 := NewClock(cost, 0)
	c8.HostsQueried("q", servers(8), nil)
	c96 := NewClock(cost, 0)
	c96.HostsQueried("q", servers(96), nil)
	d8, d96 := c8.Total(), c96.Total()
	ratio := float64(d96-cost.RTT-cost.QueryExec) / float64(d8-cost.RTT-cost.QueryExec)
	if ratio < 11.9 || ratio > 12.1 {
		t.Fatalf("init cost not linear: %v", ratio)
	}
	// 96 servers ≈ 0.32 s — the Fig 12 PathDump regime.
	if d96 < 300*simtime.Millisecond || d96 > 350*simtime.Millisecond {
		t.Fatalf("96-server query = %v, want ≈317ms", d96)
	}
}

func TestClockPooledAblation(t *testing.T) {
	cost := DefaultCostModel()
	cost.Pooled = true
	c := NewClock(cost, 0)
	srv := []string{"a", "b", "c"}
	c.HostsQueried("q1", srv, nil)
	first := c.Total()
	c.HostsQueried("q2", srv, nil)
	second := c.Total() - first
	if second >= first {
		t.Fatalf("pooled reuse not cheaper: first=%v second=%v", first, second)
	}
	if second != cost.RTT+cost.QueryExec {
		t.Fatalf("pooled second round = %v", second)
	}
}

func TestClockPointerRounds(t *testing.T) {
	c := NewClock(DefaultCostModel(), 0)
	c.PointersPulled(3)
	// 7.5ms + 2×1.25ms = 10ms — the paper's "three switches in 10 ms".
	if got := c.Total(); got != 10*simtime.Millisecond {
		t.Fatalf("3-switch pull = %v, want 10ms", got)
	}
	c2 := NewClock(DefaultCostModel(), 0)
	c2.PointersPulled(0)
	if c2.Total() != 0 {
		t.Fatalf("0-switch pull should be free")
	}
}

// TestHTTPEndToEnd runs the full stack over real sockets: traffic on the
// simulated testbed, then host/switch agents served via httptest and queried
// with the HTTP client.
func TestHTTPEndToEnd(t *testing.T) {
	net := netsim.New()
	tp := topo.Chain(net, []int{1, 0, 1}, topo.Config{})
	alpha := 10 * simtime.Millisecond
	params := header.Params{Alpha: alpha, Eps: alpha, Delta: 2 * alpha}

	hosts := tp.Hosts()
	keys := make([]uint32, len(hosts))
	for i, h := range hosts {
		keys[i] = uint32(h.IP())
	}
	table, err := mph.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	var swAgents []*switchagent.Agent
	for _, sw := range tp.Switches() {
		ag, err := switchagent.New(net, tp, sw, switchagent.Config{
			Pointer: pointer.Config{Alpha: alpha, K: 2, NumHosts: len(hosts)},
			Mode:    header.ModeCommodity,
			Params:  params,
		})
		if err != nil {
			t.Fatal(err)
		}
		ag.InstallMPH(table)
		swAgents = append(swAgents, ag)
	}
	dec := &header.Decoder{Topo: tp, Mode: header.ModeCommodity, Params: params}
	src, dst := hosts[0], hosts[1]
	hostAg := hostagent.New(net, dst, dec, hostagent.Config{})

	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 7, DstPort: 8, Proto: netsim.ProtoUDP}
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow: flow, Priority: 2, RateBps: 200_000_000, Start: 0, Duration: 25 * simtime.Millisecond})
	net.RunUntil(40 * simtime.Millisecond)

	// Serve the agents over HTTP (simulation now idle).
	hostSrv := httptest.NewServer(NewHostHandler(hostAg))
	defer hostSrv.Close()
	swSrv := httptest.NewServer(NewSwitchHandler(swAgents[0]))
	defer swSrv.Close()
	client := NewHTTPClient(nil)

	s1 := tp.Switches()[0]
	// Pointer pull over the wire.
	bits, resp, err := client.PullPointers(context.Background(), swSrv.URL, simtime.EpochRange{Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Covered || !bits.Get(table.Lookup(uint32(dst.IP()))) {
		t.Fatalf("pointer pull: covered=%v bits=%v", resp.Covered, bits.Indices())
	}
	// Headers query over the wire.
	ans, err := client.QueryHeaders(context.Background(), hostSrv.URL, s1.NodeID(), simtime.EpochRange{Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := ans.Records
	if len(recs) != 1 || recs[0].Flow != flow || recs[0].Priority != 2 {
		t.Fatalf("headers = %+v", recs)
	}
	if len(recs[0].EpochBytes) == 0 {
		t.Fatalf("EpochBytes lost in JSON round trip")
	}
	// Top-k over the wire.
	top, err := client.QueryTopK(context.Background(), hostSrv.URL, s1.NodeID(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Flow != flow || top[0].Bytes == 0 {
		t.Fatalf("topk = %+v", top)
	}
	// Flow sizes over the wire.
	sizes, err := client.QueryFlowSizes(context.Background(), hostSrv.URL, s1.NodeID())
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0].Link == 0 {
		t.Fatalf("flowsizes = %+v", sizes)
	}
	// Priority over the wire.
	prio, known, err := client.QueryPriority(context.Background(), hostSrv.URL, flow)
	if err != nil || !known || prio != 2 {
		t.Fatalf("priority = %d %v %v", prio, known, err)
	}
	// Unknown flow.
	_, known, err = client.QueryPriority(context.Background(), hostSrv.URL, netsim.FlowKey{Src: 1})
	if err != nil || known {
		t.Fatalf("unknown flow: %v %v", known, err)
	}

	// Concurrent pulls against ONE switch: the handler must serialize
	// access to the (not concurrency-safe) agent, so overlapping diagnoses
	// sharing a switch are race-free and all see the same answer (gated by
	// the -race run of this package).
	var wg sync.WaitGroup
	pulls := make([]*bitset.Set, 8)
	errs := make([]error, 8)
	for i := range pulls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pulls[i], _, errs[i] = client.PullPointers(context.Background(), swSrv.URL, simtime.EpochRange{Lo: 0, Hi: 2})
		}(i)
	}
	wg.Wait()
	for i := range pulls {
		if errs[i] != nil {
			t.Fatalf("concurrent pull %d: %v", i, errs[i])
		}
		if got, want := pulls[i].Indices(), bits.Indices(); !reflect.DeepEqual(got, want) {
			t.Fatalf("concurrent pull %d diverged: %v != %v", i, got, want)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	net := netsim.New()
	tp := topo.Star(net, 2, topo.Config{})
	dec := &header.Decoder{Topo: tp, Mode: header.ModeCommodity,
		Params: header.Params{Alpha: 10 * simtime.Millisecond}}
	ag := hostagent.New(net, tp.Hosts()[0], dec, hostagent.Config{})
	srv := httptest.NewServer(NewHostHandler(ag))
	defer srv.Close()

	// GET not allowed.
	resp, err := srv.Client().Get(srv.URL + "/headers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	// Garbage body.
	resp, err = srv.Client().Post(srv.URL+"/topk", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage status = %d", resp.StatusCode)
	}
	// Client-side error surfaces.
	client := NewHTTPClient(srv.Client())
	if _, err := client.QueryTopK(context.Background(), srv.URL+"/nope", 1, 1); err == nil {
		t.Fatalf("404 should error")
	}
}

func TestPointersResponseDecodeErrors(t *testing.T) {
	bad := PointersResponse{HostsB64: "!!!"}
	if _, err := bad.Decode(); err == nil {
		t.Fatalf("invalid base64 accepted")
	}
	bad = PointersResponse{HostsB64: "AAAA"}
	if _, err := bad.Decode(); err == nil {
		t.Fatalf("truncated bitmap accepted")
	}
}
