package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestConversions(t *testing.T) {
	if FromDuration(1500*time.Microsecond) != 1500*Microsecond {
		t.Fatalf("FromDuration mismatch")
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Microseconds(); got != 3000 {
		t.Fatalf("Microseconds = %v, want 3000", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v, want 0.25", got)
	}
	if got := (1250 * Microsecond).String(); got != "1.250ms" {
		t.Fatalf("String = %q", got)
	}
	if (5 * Millisecond).Duration() != 5*time.Millisecond {
		t.Fatalf("Duration mismatch")
	}
}

func TestTimeOrdering(t *testing.T) {
	a, b := Time(10), Time(20)
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Fatalf("Before wrong")
	}
	if !b.After(a) || a.After(b) || a.After(a) {
		t.Fatalf("After wrong")
	}
	if a.Add(5) != 15 || b.Sub(a) != 10 {
		t.Fatalf("Add/Sub wrong")
	}
}

func TestEpochOf(t *testing.T) {
	alpha := 10 * Millisecond
	cases := []struct {
		t Time
		e Epoch
	}{
		{0, 0},
		{9*Millisecond + 999*Microsecond, 0},
		{10 * Millisecond, 1},
		{25 * Millisecond, 2},
		{-1 * Nanosecond, -1},
		{-10 * Millisecond, -1},
		{-10*Millisecond - 1, -2},
	}
	for _, c := range cases {
		if got := EpochOf(c.t, alpha); got != c.e {
			t.Errorf("EpochOf(%v) = %d, want %d", c.t, got, c.e)
		}
	}
}

func TestEpochOfFloorProperty(t *testing.T) {
	alpha := 7 * Millisecond
	f := func(raw int32) bool {
		tt := Time(raw) * Microsecond
		e := EpochOf(tt, alpha)
		start := EpochStart(e, alpha)
		return start <= tt && tt < start+alpha
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEpochOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-positive alpha")
		}
	}()
	EpochOf(5, 0)
}

func TestEpochRange(t *testing.T) {
	r := EpochRange{Lo: 3, Hi: 7}
	if !r.Contains(3) || !r.Contains(7) || r.Contains(2) || r.Contains(8) {
		t.Fatalf("Contains wrong")
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	if (EpochRange{Lo: 5, Hi: 4}).Len() != 0 {
		t.Fatalf("empty range should have Len 0")
	}
	if !r.Overlaps(EpochRange{Lo: 7, Hi: 9}) || !r.Overlaps(EpochRange{Lo: 0, Hi: 3}) {
		t.Fatalf("Overlaps should be true at touching boundaries")
	}
	if r.Overlaps(EpochRange{Lo: 8, Hi: 10}) || r.Overlaps(EpochRange{Lo: 0, Hi: 2}) {
		t.Fatalf("Overlaps should be false when disjoint")
	}
	u := r.Union(EpochRange{Lo: 1, Hi: 4})
	if u.Lo != 1 || u.Hi != 7 {
		t.Fatalf("Union = %v", u)
	}
	if r.String() != "[3,7]" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestClock(t *testing.T) {
	c := NewClock(3 * Millisecond)
	if c.Offset() != 3*Millisecond {
		t.Fatalf("Offset wrong")
	}
	if c.Local(10*Millisecond) != 13*Millisecond {
		t.Fatalf("Local wrong")
	}
	alpha := 10 * Millisecond
	if c.EpochAt(8*Millisecond, alpha) != 1 {
		t.Fatalf("EpochAt: 8ms true time with +3ms offset should be epoch 1")
	}
	neg := NewClock(-5 * Millisecond)
	if neg.EpochAt(2*Millisecond, alpha) != -1 {
		t.Fatalf("EpochAt with negative local time should floor to -1")
	}
}
