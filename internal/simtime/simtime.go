// Package simtime provides the virtual-time base for the SwitchPointer
// simulator: a nanosecond-resolution Time type, duration helpers, and
// per-device clocks with bounded drift.
//
// All SwitchPointer experiments run in virtual time so that queueing delays,
// epoch boundaries and diagnosis latencies are deterministic and reproducible.
// Device clocks (switches, hosts) are modelled as the true virtual time plus a
// fixed offset bounded by the network-wide drift bound ε, which is exactly the
// asynchrony model of §4.2.1 of the paper.
package simtime

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation start.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a time.Duration into a virtual Time offset.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts a virtual time span into a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with millisecond precision, e.g. "13.250ms".
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Milliseconds()) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Add returns t shifted by d virtual nanoseconds.
func (t Time) Add(d Time) Time { return t + d }

// Sub returns the span t−u.
func (t Time) Sub(u Time) Time { return t - u }

// Epoch identifies one switch epoch (a contiguous α-sized slice of a device's
// local time). EpochIDs are what switches embed into packet headers.
type Epoch int64

// EpochOf returns the epoch that local time t falls into for epoch size alpha.
// alpha must be positive.
func EpochOf(t Time, alpha Time) Epoch {
	if alpha <= 0 {
		panic("simtime: non-positive epoch size")
	}
	if t < 0 {
		// Clock offsets may push local time slightly below zero near the
		// simulation start; floor-divide so epochs stay consistent.
		return Epoch((t - alpha + 1) / alpha)
	}
	return Epoch(t / alpha)
}

// EpochStart returns the local time at which epoch e begins.
func EpochStart(e Epoch, alpha Time) Time { return Time(e) * alpha }

// EpochRange is a closed interval of epochs [Lo, Hi]. It is the unit the
// analyzer uses when asking a switch for pointers, and what the host-side
// decoder produces when extrapolating epochs across a path (§4.2.1).
type EpochRange struct {
	Lo, Hi Epoch
}

// Contains reports whether e falls inside the range.
func (r EpochRange) Contains(e Epoch) bool { return e >= r.Lo && e <= r.Hi }

// Overlaps reports whether the two ranges share at least one epoch.
func (r EpochRange) Overlaps(o EpochRange) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// Union returns the smallest range covering both r and o.
func (r EpochRange) Union(o EpochRange) EpochRange {
	if o.Lo < r.Lo {
		r.Lo = o.Lo
	}
	if o.Hi > r.Hi {
		r.Hi = o.Hi
	}
	return r
}

// Len returns the number of epochs in the range.
func (r EpochRange) Len() int {
	if r.Hi < r.Lo {
		return 0
	}
	return int(r.Hi-r.Lo) + 1
}

// String formats the range as "[lo,hi]".
func (r EpochRange) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// Clock models one device's local clock: true virtual time plus a fixed
// offset. In a datacenter the offset between any pair of devices is bounded
// (|offset| ≤ ε/2 against true time gives pairwise drift ≤ ε), which is the
// assumption SwitchPointer exploits to bound epoch uncertainty.
type Clock struct {
	offset Time
}

// NewClock returns a clock with the given fixed offset from true time.
func NewClock(offset Time) *Clock { return &Clock{offset: offset} }

// Offset reports the clock's fixed offset from true virtual time.
func (c *Clock) Offset() Time { return c.offset }

// Local converts true virtual time into this device's local time.
func (c *Clock) Local(now Time) Time { return now + c.offset }

// EpochAt returns the device-local epoch at true time now for epoch size alpha.
func (c *Clock) EpochAt(now Time, alpha Time) Epoch { return EpochOf(c.Local(now), alpha) }
