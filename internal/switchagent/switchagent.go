// Package switchagent implements the switch side of SwitchPointer: the data
// plane pipeline (one MPH lookup + k-level pointer update + telemetry tag
// push per forwarded packet) and the control-plane agent that rotates pointer
// slots at epoch boundaries, pushes sealed top-level slots to persistent
// storage, and serves the analyzer's pointer pulls (§4.1).
package switchagent

import (
	"fmt"
	"sync"

	"switchpointer/internal/bitset"
	"switchpointer/internal/header"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/pointer"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

// Config parameterizes one switch agent.
type Config struct {
	Pointer pointer.Config // α, k, host-bitmap width
	Mode    header.Mode
	Params  header.Params
	// RuleUpdateInterval is the commodity epoch-rule constraint (§4.1.3);
	// zero = software switch (rule tracks every epoch).
	RuleUpdateInterval simtime.Time
}

// Agent runs SwitchPointer on one switch.
type Agent struct {
	sw  *netsim.Switch
	net *netsim.Network
	tp  *topo.Topology
	cfg Config

	mphTable *mph.Table
	ptr      *pointer.Structure
	emb      *header.Embedder

	// ctlMu serializes control-plane access — pointer pulls, MPH install,
	// snapshot/restore, control-store reads — so a daemon can keep serving
	// while a background bootstrap restores state. The per-packet datapath
	// stage does NOT take it: the simulation thread has the agent to
	// itself by contract (handlers are only served while the engine is
	// idle), so the lock never taxes the hot path.
	ctlMu sync.Mutex

	// ControlStore accumulates pushed top-level slots — the persistent,
	// off-chip history for offline diagnosis. Access it through
	// ControlStoreLen/ControlStoreSnapshot (or under the simulation
	// thread's exclusivity) when the agent may be serving.
	ControlStore []pointer.Slot

	// PointerPulls counts analyzer pull requests served.
	PointerPulls uint64
	// ApproxPulls counts pulls whose answer was approximate (a bloom
	// backend or approx control-store slot contributed: candidate
	// supersets, never a missed host). Guarded by ctlMu like PointerPulls;
	// read both through PullCounts while the agent may be serving.
	ApproxPulls uint64
}

// New creates the agent, installs its pipeline stage on the switch, and
// schedules epoch-boundary rotation on the switch's local clock.
func New(net *netsim.Network, tp *topo.Topology, sw *netsim.Switch, cfg Config) (*Agent, error) {
	a := &Agent{sw: sw, net: net, tp: tp, cfg: cfg}
	ptr, err := pointer.New(cfg.Pointer, func(s pointer.Slot) {
		a.ControlStore = append(a.ControlStore, s)
	})
	if err != nil {
		return nil, err
	}
	a.ptr = ptr
	a.emb = &header.Embedder{
		Topo:               tp,
		Mode:               cfg.Mode,
		Params:             cfg.Params,
		RuleUpdateInterval: cfg.RuleUpdateInterval,
	}
	a.ptr.Advance(sw.Clock.EpochAt(net.Now(), cfg.Pointer.Alpha))
	sw.Pipeline = append(sw.Pipeline, a.stage)
	a.scheduleEpochTicks()
	return a, nil
}

// InstallMPH distributes a freshly built minimal perfect hash function to
// this switch (the analyzer does this whenever the end-host population
// changes permanently, §4.3).
func (a *Agent) InstallMPH(t *mph.Table) {
	a.ctlMu.Lock()
	a.mphTable = t
	a.ctlMu.Unlock()
}

// MPH returns the installed hash table (nil before InstallMPH).
func (a *Agent) MPH() *mph.Table {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return a.mphTable
}

// Switch returns the switch this agent manages.
func (a *Agent) Switch() *netsim.Switch { return a.sw }

// Pointer returns the hierarchical pointer structure (for tests and
// accounting).
func (a *Agent) Pointer() *pointer.Structure { return a.ptr }

// Embedder returns the telemetry embedder (for accounting).
func (a *Agent) Embedder() *header.Embedder { return a.emb }

// stage is the per-packet SwitchPointer datapath.
func (a *Agent) stage(sw *netsim.Switch, p *netsim.Packet, in, out *netsim.Port, now simtime.Time) {
	a.ensureEpoch(now)
	if a.mphTable != nil {
		// ONE hash operation per packet; k parallel bit sets.
		a.ptr.Touch(a.mphTable.Lookup(uint32(p.Flow.Dst)))
	}
	a.emb.Embed(sw, p, out, now)
}

// ensureEpoch lazily advances the pointer structure to the switch's current
// local epoch (a backstop for the timer-driven rotation).
func (a *Agent) ensureEpoch(now simtime.Time) {
	e := a.sw.Clock.EpochAt(now, a.cfg.Pointer.Alpha)
	if e > a.ptr.CurrentEpoch() {
		a.ptr.Advance(e)
	}
}

// scheduleEpochTicks arranges rotation exactly at the switch's local epoch
// boundaries (which differ across switches because clocks drift).
func (a *Agent) scheduleEpochTicks() {
	alpha := a.cfg.Pointer.Alpha
	now := a.net.Now()
	local := a.sw.Clock.Local(now)
	nextLocal := (local/alpha + 1) * alpha
	firstTick := now + (nextLocal - local)
	a.net.Engine.AtWeak(firstTick, func() {
		a.ensureEpoch(a.net.Now())
		a.net.Engine.EveryWeak(alpha, func() { a.ensureEpoch(a.net.Now()) })
	})
}

// LocalEpochAt converts a true time to this switch's local epoch.
func (a *Agent) LocalEpochAt(t simtime.Time) simtime.Epoch {
	return a.sw.Clock.EpochAt(t, a.cfg.Pointer.Alpha)
}

// PullResult is the answer to an analyzer pointer pull.
type PullResult struct {
	Hosts  *bitset.Set
	Info   pointer.QueryResult
	Source string // "live" or "control-store"
	// Exact is true when Hosts is exactly the touched set. With a sketch
	// backend it is false and Hosts is a candidate superset: false-positive
	// hosts may appear (they answer empty query rounds), but a touched host
	// is never missing.
	Exact bool
}

// PullPointers serves the analyzer: the union of end-host bits for the
// requested epoch range, from the finest live level that covers it, falling
// back to the control store's pushed history for older windows.
func (a *Agent) PullPointers(r simtime.EpochRange) PullResult {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	a.ensureEpoch(a.net.Now())
	a.PointerPulls++
	bits, info := a.ptr.Query(r)
	if info.Covered {
		if !info.Exact {
			a.ApproxPulls++
		}
		return PullResult{Hosts: bits, Info: info, Source: "live", Exact: info.Exact}
	}
	// Offline path: merge pushed top-level history.
	merged := bits
	found := info.Slots > 0
	exact := info.Exact
	for _, s := range a.ControlStore {
		if s.Epochs.Overlaps(r) {
			merged.UnionWith(s.Bits)
			found = true
			exact = exact && !s.Approx
		}
	}
	src := "control-store"
	if !found {
		src = "none"
	}
	if !exact {
		a.ApproxPulls++
	}
	return PullResult{Hosts: merged, Info: info, Source: src, Exact: exact}
}

// PullCounts returns the served-pull counters — total pulls and the subset
// answered approximately — safe while the agent is serving.
func (a *Agent) PullCounts() (pulls, approx uint64) {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return a.PointerPulls, a.ApproxPulls
}

// SlotsAt exposes the pull-model access to raw slots at a given level.
func (a *Agent) SlotsAt(level int, r simtime.EpochRange) []pointer.Slot {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	a.PointerPulls++
	return a.ptr.SlotsAt(level, r)
}

// PointerSnapshot serializes the live pointer structure (every slot of
// every level plus ring positions and accounting) — the switch half of a
// state-sync snapshot. The control store and MPH are carried separately by
// the statesync wire form.
func (a *Agent) PointerSnapshot() ([]byte, error) {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return a.ptr.Snapshot()
}

// RestorePointerSnapshot replaces the live pointer structure with a snapshot
// taken from an agent of identical geometry, so subsequent pointer pulls
// answer byte-identically to the source's. The epoch backstop continues
// from the restored epoch. Safe while the agent is serving pulls — that is
// exactly the bootstrapping daemon's syncing state.
func (a *Agent) RestorePointerSnapshot(b []byte) error {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return a.ptr.Restore(b)
}

// RestoreControlStore replaces the pushed top-level history (bootstrap from
// a peer snapshot).
func (a *Agent) RestoreControlStore(slots []pointer.Slot) {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	a.ControlStore = slots
}

// ControlStoreLen returns the pushed-slot count — the switch daemon's
// /healthz resident figure, safe while a bootstrap is restoring.
func (a *Agent) ControlStoreLen() int {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return len(a.ControlStore)
}

// ControlStoreSnapshot serializes the pushed top-level history for the
// state-sync wire (pointer.EncodeSlots form).
func (a *Agent) ControlStoreSnapshot() ([]byte, error) {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return pointer.EncodeSlots(a.ControlStore)
}

// RestoreControlStoreSnapshot replaces the pushed history with one encoded
// by ControlStoreSnapshot.
func (a *Agent) RestoreControlStoreSnapshot(b []byte) error {
	slots, err := pointer.DecodeSlots(b)
	if err != nil {
		return err
	}
	a.RestoreControlStore(slots)
	return nil
}

// MemoryBytes reports the agent's switch-memory footprint: pointer sets plus
// the installed MPH (the §6.1 quantities).
func (a *Agent) MemoryBytes() int {
	m := a.ptr.MemoryBytes()
	if a.mphTable != nil {
		m += a.mphTable.SizeBytes()
	}
	return m
}

// PointerFootprint returns the pointer structure's resident byte count and
// the agent's full switch-memory figure (pointer sets + installed MPH)
// under the control-plane lock — the scrape-side accessor behind /metrics.
func (a *Agent) PointerFootprint() (residentBytes, memoryBytes int) {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	m := a.ptr.MemoryBytes()
	if a.mphTable != nil {
		m += a.mphTable.SizeBytes()
	}
	return a.ptr.ResidentBytes(), m
}

// PushStats returns the pointer structure's sealed-slot push accounting
// (slots pushed and their encoded bytes) under the control-plane lock.
func (a *Agent) PushStats() (count, bytes uint64) {
	a.ctlMu.Lock()
	defer a.ctlMu.Unlock()
	return a.ptr.Pushes()
}

// String describes the agent.
func (a *Agent) String() string {
	return fmt.Sprintf("switchagent(%s, α=%v, k=%d)", a.sw.NodeName(), a.cfg.Pointer.Alpha, a.cfg.Pointer.K)
}
