package switchagent

import (
	"testing"

	"switchpointer/internal/header"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/pointer"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/transport"
)

func agentConfig(n int) Config {
	alpha := 10 * simtime.Millisecond
	return Config{
		Pointer: pointer.Config{Alpha: alpha, K: 3, NumHosts: n},
		Mode:    header.ModeCommodity,
		Params:  header.Params{Alpha: alpha, Eps: alpha, Delta: 2 * alpha},
	}
}

// build wires a dumbbell with agents on both switches and an MPH over all
// host IPs.
func build(t *testing.T, eps simtime.Time) (*netsim.Network, *topo.Topology, map[netsim.NodeID]*Agent) {
	t.Helper()
	net := netsim.New()
	tp := topo.Dumbbell(net, 2, 2, topo.Config{Eps: eps, Seed: 3})
	hosts := tp.Hosts()
	keys := make([]uint32, len(hosts))
	for i, h := range hosts {
		keys[i] = uint32(h.IP())
	}
	table, err := mph.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	agents := make(map[netsim.NodeID]*Agent)
	for _, sw := range tp.Switches() {
		cfg := agentConfig(len(hosts))
		cfg.Params.Eps = eps
		ag, err := New(net, tp, sw, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ag.InstallMPH(table)
		agents[sw.NodeID()] = ag
	}
	return net, tp, agents
}

func TestDatapathTouchesPointers(t *testing.T) {
	net, tp, agents := build(t, 0)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2, Proto: netsim.ProtoUDP}
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow: flow, RateBps: 100_000_000, Start: 0, Duration: 15 * simtime.Millisecond})
	net.RunUntil(40 * simtime.Millisecond)

	sl, _ := tp.SwitchByName("SL")
	ag := agents[sl.NodeID()]
	if ag.Pointer().Touches() == 0 {
		t.Fatalf("no pointer touches")
	}
	// The destination must appear in the pointers for epochs 0–1 (first 15ms).
	res := ag.PullPointers(simtime.EpochRange{Lo: 0, Hi: 1})
	idx := ag.MPH().Lookup(uint32(dst.IP()))
	if !res.Hosts.Get(idx) {
		t.Fatalf("destination bit not set in pulled pointers")
	}
	// Non-destination hosts must not be flagged.
	other, _ := tp.HostByName("R2")
	if res.Hosts.Get(ag.MPH().Lookup(uint32(other.IP()))) {
		t.Fatalf("uninvolved host flagged")
	}
	if res.Source != "live" {
		t.Fatalf("source = %q", res.Source)
	}
}

func TestEpochRotationFollowsLocalClock(t *testing.T) {
	net, tp, agents := build(t, 8*simtime.Millisecond)
	_ = tp
	net.RunUntil(100 * simtime.Millisecond)
	for _, ag := range agents {
		wantEpoch := ag.Switch().Clock.EpochAt(net.Now(), 10*simtime.Millisecond)
		if got := ag.Pointer().CurrentEpoch(); got != wantEpoch {
			t.Fatalf("%s: pointer epoch %d, local epoch %d", ag, got, wantEpoch)
		}
	}
}

func TestTopLevelPushReachesControlStore(t *testing.T) {
	net, tp, agents := build(t, 0)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow:    netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2},
		RateBps: 50_000_000, Start: 0, Duration: 20 * simtime.Millisecond})
	// k=3, α=10ms → top window = α³ = 1000 epochs? No: α^(k−1)=100 epochs =
	// 1000 ms. Run past one full top window.
	net.RunUntil(1100 * simtime.Millisecond)
	sl, _ := tp.SwitchByName("SL")
	ag := agents[sl.NodeID()]
	if len(ag.ControlStore) == 0 {
		t.Fatalf("no top-level slots pushed")
	}
	slot := ag.ControlStore[0]
	idx := ag.MPH().Lookup(uint32(dst.IP()))
	if !slot.Bits.Get(idx) {
		t.Fatalf("pushed history lost the destination bit")
	}
}

func TestPullFallsBackToControlStore(t *testing.T) {
	net, tp, agents := build(t, 0)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow:    netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2},
		RateBps: 50_000_000, Start: 0, Duration: 20 * simtime.Millisecond})
	// Run long enough that epoch 0 is beyond even the live top slot.
	net.RunUntil(2500 * simtime.Millisecond)
	sl, _ := tp.SwitchByName("SL")
	ag := agents[sl.NodeID()]
	res := ag.PullPointers(simtime.EpochRange{Lo: 0, Hi: 1})
	if res.Source != "control-store" {
		t.Fatalf("source = %q, want control-store", res.Source)
	}
	if !res.Hosts.Get(ag.MPH().Lookup(uint32(dst.IP()))) {
		t.Fatalf("offline history lost the destination")
	}
}

func TestSlotsAtPullModel(t *testing.T) {
	net, tp, agents := build(t, 0)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow:    netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2},
		RateBps: 100_000_000, Start: 0, Duration: 50 * simtime.Millisecond})
	net.RunUntil(60 * simtime.Millisecond)
	sl, _ := tp.SwitchByName("SL")
	ag := agents[sl.NodeID()]
	// Five most recent level-1 slots (§4.1.1's "last 50 ms" example).
	slots := ag.SlotsAt(1, simtime.EpochRange{Lo: 0, Hi: 4})
	if len(slots) != 5 {
		t.Fatalf("level-1 slots = %d, want 5", len(slots))
	}
	if ag.PointerPulls == 0 {
		t.Fatalf("pull accounting missing")
	}
}

func TestMemoryAccountingIncludesMPH(t *testing.T) {
	_, _, agents := build(t, 0)
	for _, ag := range agents {
		withMPH := ag.MemoryBytes()
		ptrOnly := ag.Pointer().MemoryBytes()
		if withMPH <= ptrOnly {
			t.Fatalf("MemoryBytes should include the MPH table")
		}
	}
}

func TestNoMPHNoTouch(t *testing.T) {
	// Without an installed MPH the datapath forwards but records nothing —
	// matching a switch that has not been initialized by the analyzer.
	net := netsim.New()
	tp := topo.Dumbbell(net, 1, 1, topo.Config{})
	sl, _ := tp.SwitchByName("SL")
	ag, err := New(net, tp, sl, agentConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow:    netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2},
		RateBps: 100_000_000, Start: 0, Duration: 5 * simtime.Millisecond})
	net.Run()
	if ag.Pointer().Touches() != 0 {
		t.Fatalf("touches without MPH")
	}
	if ag.MPH() != nil {
		t.Fatalf("MPH should be nil")
	}
}

func TestInvalidPointerConfig(t *testing.T) {
	net := netsim.New()
	tp := topo.Dumbbell(net, 1, 1, topo.Config{})
	sl, _ := tp.SwitchByName("SL")
	cfg := agentConfig(2)
	cfg.Pointer.K = 0
	if _, err := New(net, tp, sl, cfg); err == nil {
		t.Fatalf("invalid config accepted")
	}
}

func TestEmbedderWiredThroughAgent(t *testing.T) {
	net, tp, agents := build(t, 0)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	var tagged int
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.NTag == 2 {
			tagged++
		}
	})
	transport.StartUDP(net, src, transport.UDPConfig{
		Flow:    netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2},
		RateBps: 100_000_000, Start: 0, Duration: 5 * simtime.Millisecond})
	net.Run()
	if tagged == 0 {
		t.Fatalf("no packets tagged by agent datapath")
	}
	sl, _ := tp.SwitchByName("SL")
	if agents[sl.NodeID()].Embedder().TagsPushed == 0 {
		t.Fatalf("embedder accounting empty")
	}
	if s := agents[sl.NodeID()].String(); s == "" {
		t.Fatalf("String() empty")
	}
}
