// Package analyzer implements SwitchPointer's analyzer (§4.3): the component
// that turns a host-raised alert into a diagnosis by pulling pointers from
// switches, pruning the search radius with topology knowledge, querying the
// relevant end hosts, and correlating the returned telemetry spatially and
// temporally.
package analyzer

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"switchpointer/internal/bitset"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
)

// ErrUnknownSwitch is returned by Directory implementations for lookups
// against a switch the directory does not manage.
var ErrUnknownSwitch = errors.New("analyzer: unknown switch")

// Directory is the analyzer's backend seam to the switch-resident pointer
// directory (§4.1): everything the diagnosis procedures need from switch
// pointer state goes through this interface, so the in-memory implementation
// below can later be swapped for a sharded or remote one without touching the
// procedures.
//
// The three capabilities mirror the paper's directory-service roles:
//
//   - Hosts: pull the pointers a switch holds for an epoch range and expand
//     them into the end-host set they name (the epoch-range scan);
//   - IndexOf/IPAt/Len/Decode: the cluster-wide minimal perfect hash between
//     end-host IPs and pointer-bitmap indices (the pointer lookup);
//   - Distribute: install the MPH on every switch after a membership change
//     (the §4.3 distribution responsibility).
//
// # Concurrency contract
//
// The analyzer's per-host query rounds fan out over a bounded worker pool
// (rpc.FanOut), so an implementation must support:
//
//   - Hosts, IndexOf, IPAt, Len, Decode: safe for concurrent calls. The
//     built-in procedures currently issue pointer pulls from the
//     coordinating goroutine only, but remote/sharded backends must not
//     rely on that.
//   - Distribute: may mutate; callers serialize it against queries (it runs
//     at membership changes, never during a diagnosis).
//
// Host agents, by contrast, are NOT required to tolerate concurrent queries
// against the same agent: the fan-out dispatches each host exactly once per
// round, so one worker owns one host's store at a time (the record store
// memoizes query indexes on first use and relies on this).
type Directory interface {
	// Hosts returns the end hosts named by switch sw's pointers over the
	// epoch range, honouring ctx cancellation. It returns ErrUnknownSwitch
	// (possibly wrapped) when sw is not part of the directory.
	Hosts(ctx context.Context, sw netsim.NodeID, epochs simtime.EpochRange) ([]netsim.IPv4, error)
	// IndexOf returns the pointer-bitmap index of an end host.
	IndexOf(ip netsim.IPv4) int
	// IPAt returns the end host at a bitmap index.
	IPAt(idx int) netsim.IPv4
	// Len returns the number of end hosts in the directory.
	Len() int
	// Decode expands a raw pointer bitmap into the end-host IPs it names.
	Decode(bits *bitset.Set) []netsim.IPv4
	// Distribute (re)installs the directory's hash table on every switch.
	Distribute() error
}

// MemoryDirectory is the default Directory: it owns the cluster-wide minimal
// perfect hash and reaches the simulated switch agents directly (in a real
// deployment this is the analyzer colocated with the control plane).
type MemoryDirectory struct {
	table    *mph.Table
	ips      []netsim.IPv4 // index → IP
	switches map[netsim.NodeID]*switchagent.Agent
}

var _ Directory = (*MemoryDirectory)(nil)

// NewMemoryDirectory constructs the MPH over the given end-host IPs and binds
// it to the given switch agents (which may be nil for an index-only
// directory, e.g. in unit tests).
func NewMemoryDirectory(ips []netsim.IPv4, switches map[netsim.NodeID]*switchagent.Agent) (*MemoryDirectory, error) {
	if len(ips) == 0 {
		return nil, fmt.Errorf("analyzer: no end hosts")
	}
	keys := make([]uint32, len(ips))
	for i, ip := range ips {
		keys[i] = uint32(ip)
	}
	table, err := mph.Build(keys)
	if err != nil {
		return nil, fmt.Errorf("analyzer: building MPH: %w", err)
	}
	d := &MemoryDirectory{table: table, ips: make([]netsim.IPv4, len(ips)), switches: switches}
	for _, ip := range ips {
		d.ips[table.Lookup(uint32(ip))] = ip
	}
	return d, nil
}

// BuildDirectory constructs an index-only in-memory directory.
//
// Deprecated: use NewMemoryDirectory, which also binds the switch agents so
// Hosts and Distribute work.
func BuildDirectory(ips []netsim.IPv4) (*MemoryDirectory, error) {
	return NewMemoryDirectory(ips, nil)
}

// Table returns the underlying hash table (what gets distributed to
// switches).
func (d *MemoryDirectory) Table() *mph.Table { return d.table }

// Len returns the number of end hosts.
func (d *MemoryDirectory) Len() int { return len(d.ips) }

// IndexOf returns the bitmap index of an end host.
func (d *MemoryDirectory) IndexOf(ip netsim.IPv4) int { return d.table.Lookup(uint32(ip)) }

// IPAt returns the end host at a bitmap index.
func (d *MemoryDirectory) IPAt(idx int) netsim.IPv4 { return d.ips[idx] }

// Hosts pulls switch sw's pointers for the epoch range and decodes them.
func (d *MemoryDirectory) Hosts(ctx context.Context, sw netsim.NodeID, epochs simtime.EpochRange) ([]netsim.IPv4, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ag, ok := d.switches[sw]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSwitch, sw)
	}
	res := ag.PullPointers(epochs)
	return d.Decode(res.Hosts), nil
}

// Distribute installs the directory's hash table on every switch (§4.3).
func (d *MemoryDirectory) Distribute() error {
	for _, sw := range d.switches {
		sw.InstallMPH(d.table)
	}
	return nil
}

// Decode expands a pointer bitmap into the end-host IPs it names, sorted.
func (d *MemoryDirectory) Decode(bits *bitset.Set) []netsim.IPv4 {
	var out []netsim.IPv4
	bits.ForEach(func(i int) bool {
		if i < len(d.ips) {
			out = append(out, d.ips[i])
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
