// Package analyzer implements SwitchPointer's analyzer (§4.3): the component
// that turns a host-raised alert into a diagnosis by pulling pointers from
// switches, pruning the search radius with topology knowledge, querying the
// relevant end hosts, and correlating the returned telemetry spatially and
// temporally.
package analyzer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"switchpointer/internal/bitset"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
)

// ErrUnknownSwitch is returned by Directory implementations for lookups
// against a switch the directory does not manage.
var ErrUnknownSwitch = errors.New("analyzer: unknown switch")

// SwitchEpochs names one (switch, epoch range) pointer pull of a batched
// round: the per-switch element of an alert's tuple list.
type SwitchEpochs struct {
	Switch netsim.NodeID
	Epochs simtime.EpochRange
}

// Directory is the analyzer's backend seam to the switch-resident pointer
// directory (§4.1): everything the diagnosis procedures need from switch
// pointer state goes through this interface, so the in-memory implementation
// below can be swapped for the remote one (RemoteDirectory) or a sharded one
// without touching the procedures.
//
// The capabilities mirror the paper's directory-service roles:
//
//   - Hosts/HostsBatch: pull the pointers switches hold for an epoch range
//     and expand them into the end-host sets they name (the epoch-range
//     scan); HostsBatch serves a whole alert's tuple list in one concurrent
//     round instead of one pull per tuple;
//   - IndexOf/IPAt/Len/Decode: the cluster-wide minimal perfect hash between
//     end-host IPs and pointer-bitmap indices (the pointer lookup);
//   - Distribute: install the MPH on every switch after a membership change
//     (the §4.3 distribution responsibility).
//
// # Concurrency contract
//
// The analyzer's per-host query rounds fan out over a bounded worker pool
// (rpc.FanOut) and pointer pulls fan out inside HostsBatch, so an
// implementation must support:
//
//   - Hosts, HostsBatch, IndexOf, IPAt, Len, Decode: safe for concurrent
//     calls, including multiple concurrent diagnoses over one directory.
//   - Distribute: may mutate; callers serialize it against queries (it runs
//     at membership changes, never during a diagnosis).
//
// Host agents tolerate any number of concurrent queries against the same
// agent — including concurrently with the agent's own packet absorption:
// the sharded record store (store.RecordStore) serves queries under
// per-shard read locks. The former single-owner-per-round restriction is
// gone; fan-out width is purely a throughput knob.
//
// # Static-analysis contract
//
// splint enforces the interface's cross-cutting rules mechanically:
// ctxlint requires every exported caller to thread its ctx into
// Hosts/HostsBatch/Distribute (no context.Background in the middle of a
// diagnosis), locklint forbids invoking them while a mutex is held (remote
// implementations perform HTTP rounds), and sortlint guards the expanded
// host sets: any slice an implementation fills from map iteration must be
// sorted before it is returned or encoded, or the byte-identical report
// drift gates break.
type Directory interface {
	// Hosts returns the end hosts named by switch sw's pointers over the
	// epoch range, honouring ctx cancellation. It returns ErrUnknownSwitch
	// (possibly wrapped) when sw is not part of the directory.
	Hosts(ctx context.Context, sw netsim.NodeID, epochs simtime.EpochRange) ([]netsim.IPv4, error)
	// HostsBatch performs every requested pull in one concurrent round —
	// the batched form of Hosts that lets an alert's whole tuple list cost
	// one round trip. hosts[i] and errs[i] report request reqs[i]; both
	// slices always have len(reqs). Requests for switches outside the
	// directory fail their slot with ErrUnknownSwitch (possibly wrapped)
	// without affecting other slots; a cancelled ctx fails the undispatched
	// remainder with ctx.Err().
	HostsBatch(ctx context.Context, reqs []SwitchEpochs) (hosts [][]netsim.IPv4, errs []error)
	// IndexOf returns the pointer-bitmap index of an end host.
	IndexOf(ip netsim.IPv4) int
	// IPAt returns the end host at a bitmap index.
	IPAt(idx int) netsim.IPv4
	// Len returns the number of end hosts in the directory.
	Len() int
	// Decode expands a raw pointer bitmap into the end-host IPs it names.
	Decode(bits *bitset.Set) []netsim.IPv4
	// Distribute (re)installs the directory's hash table on every switch.
	// Remote implementations perform one HTTP round per switch, so ctx
	// bounds the push and must thread into it (enforced by ctxlint).
	Distribute(ctx context.Context) error
}

// hostIndex is the cluster-wide minimal perfect hash between end-host IPs
// and pointer-bitmap indices, shared by every Directory backend. All methods
// are read-only after construction and safe for concurrent use.
type hostIndex struct {
	table *mph.Table
	ips   []netsim.IPv4 // index → IP
}

func newHostIndex(ips []netsim.IPv4) (hostIndex, error) {
	if len(ips) == 0 {
		return hostIndex{}, fmt.Errorf("analyzer: no end hosts")
	}
	keys := make([]uint32, len(ips))
	for i, ip := range ips {
		keys[i] = uint32(ip)
	}
	table, err := mph.Build(keys)
	if err != nil {
		return hostIndex{}, fmt.Errorf("analyzer: building MPH: %w", err)
	}
	x := hostIndex{table: table, ips: make([]netsim.IPv4, len(ips))}
	for _, ip := range ips {
		x.ips[table.Lookup(uint32(ip))] = ip
	}
	return x, nil
}

// Table returns the underlying hash table (what gets distributed to
// switches).
func (x hostIndex) Table() *mph.Table { return x.table }

// Len returns the number of end hosts.
func (x hostIndex) Len() int { return len(x.ips) }

// IndexOf returns the bitmap index of an end host.
func (x hostIndex) IndexOf(ip netsim.IPv4) int { return x.table.Lookup(uint32(ip)) }

// IPAt returns the end host at a bitmap index.
func (x hostIndex) IPAt(idx int) netsim.IPv4 { return x.ips[idx] }

// Decode expands a pointer bitmap into the end-host IPs it names, sorted.
func (x hostIndex) Decode(bits *bitset.Set) []netsim.IPv4 {
	var out []netsim.IPv4
	bits.ForEach(func(i int) bool {
		if i < len(x.ips) {
			out = append(out, x.ips[i])
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MemoryDirectory is the default Directory: it owns the cluster-wide minimal
// perfect hash and reaches the simulated switch agents directly (in a real
// deployment this is the analyzer colocated with the control plane).
type MemoryDirectory struct {
	hostIndex
	switches map[netsim.NodeID]*switchagent.Agent

	// pullMu serializes pointer pulls per switch: switchagent.Agent mutates
	// pull accounting and lazily advances its epoch, so concurrent pulls
	// against one agent (overlapping diagnoses, batched rounds) must not
	// interleave. Pulls against distinct switches proceed in parallel.
	pullMu map[netsim.NodeID]*sync.Mutex
}

var _ Directory = (*MemoryDirectory)(nil)

// NewMemoryDirectory constructs the MPH over the given end-host IPs and binds
// it to the given switch agents (which may be nil for an index-only
// directory, e.g. in unit tests).
func NewMemoryDirectory(ips []netsim.IPv4, switches map[netsim.NodeID]*switchagent.Agent) (*MemoryDirectory, error) {
	idx, err := newHostIndex(ips)
	if err != nil {
		return nil, err
	}
	d := &MemoryDirectory{
		hostIndex: idx,
		switches:  switches,
		pullMu:    make(map[netsim.NodeID]*sync.Mutex, len(switches)),
	}
	for sw := range switches {
		d.pullMu[sw] = &sync.Mutex{}
	}
	return d, nil
}

// BuildDirectory constructs an index-only in-memory directory.
//
// Deprecated: use NewMemoryDirectory, which also binds the switch agents so
// Hosts and Distribute work.
func BuildDirectory(ips []netsim.IPv4) (*MemoryDirectory, error) {
	return NewMemoryDirectory(ips, nil)
}

// Hosts pulls switch sw's pointers for the epoch range and decodes them.
func (d *MemoryDirectory) Hosts(ctx context.Context, sw netsim.NodeID, epochs simtime.EpochRange) ([]netsim.IPv4, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ag, ok := d.switches[sw]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSwitch, sw)
	}
	res := d.pull(sw, ag, epochs)
	return d.Decode(res.Hosts), nil
}

// pull serializes PullPointers per switch.
func (d *MemoryDirectory) pull(sw netsim.NodeID, ag *switchagent.Agent, epochs simtime.EpochRange) switchagent.PullResult {
	mu := d.pullMu[sw]
	mu.Lock()
	defer mu.Unlock()
	return ag.PullPointers(epochs)
}

// fanOutSlots runs pull(i) for n request slots over the shared bounded
// worker pool and returns one error per slot. Dispatch is sequential in
// slot order (rpc.FanOut), so ctx-cancellation points are as deterministic
// as a sequential loop; slots the cancellation prevented from dispatching
// fail with the context's error. Shared by both directory backends'
// HostsBatch and by RemoteDirectory.Distribute so the cancellation-tail
// semantics cannot diverge between them.
func fanOutSlots(ctx context.Context, workers, n int, pull func(ctx context.Context, i int) error) []error {
	errs := make([]error, n)
	dispatched, cerr := rpc.FanOut(ctx, workers, n, func(ctx context.Context, i int) {
		errs[i] = pull(ctx, i)
	})
	for i := dispatched; i < n; i++ {
		errs[i] = cerr
	}
	return errs
}

// HostsBatch pulls every requested switch's pointers in one concurrent
// round over the shared bounded worker pool; per-request outcomes land in
// their own slots, so worker scheduling never influences the result.
func (d *MemoryDirectory) HostsBatch(ctx context.Context, reqs []SwitchEpochs) ([][]netsim.IPv4, []error) {
	hosts := make([][]netsim.IPv4, len(reqs))
	errs := fanOutSlots(ctx, 0, len(reqs), func(ctx context.Context, i int) error {
		ag, ok := d.switches[reqs[i].Switch]
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownSwitch, reqs[i].Switch)
		}
		res := d.pull(reqs[i].Switch, ag, reqs[i].Epochs)
		hosts[i] = d.Decode(res.Hosts)
		return nil
	})
	return hosts, errs
}

// Distribute installs the directory's hash table on every switch (§4.3).
// The in-memory push is synchronous and does not block on ctx.
func (d *MemoryDirectory) Distribute(ctx context.Context) error {
	for _, sw := range d.switches {
		sw.InstallMPH(d.table)
	}
	return nil
}
