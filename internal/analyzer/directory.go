// Package analyzer implements SwitchPointer's analyzer (§4.3): the component
// that turns a host-raised alert into a diagnosis by pulling pointers from
// switches, pruning the search radius with topology knowledge, querying the
// relevant end hosts, and correlating the returned telemetry spatially and
// temporally.
package analyzer

import (
	"fmt"
	"sort"

	"switchpointer/internal/bitset"
	"switchpointer/internal/mph"
	"switchpointer/internal/netsim"
)

// Directory owns the cluster-wide minimal perfect hash: the mapping between
// end-host IPs and pointer-bitmap indices. The analyzer constructs it
// whenever the end-host population changes permanently and distributes it to
// every switch (§4.3).
type Directory struct {
	table *mph.Table
	ips   []netsim.IPv4 // index → IP
}

// BuildDirectory constructs the MPH over the given end-host IPs.
func BuildDirectory(ips []netsim.IPv4) (*Directory, error) {
	if len(ips) == 0 {
		return nil, fmt.Errorf("analyzer: no end hosts")
	}
	keys := make([]uint32, len(ips))
	for i, ip := range ips {
		keys[i] = uint32(ip)
	}
	table, err := mph.Build(keys)
	if err != nil {
		return nil, fmt.Errorf("analyzer: building MPH: %w", err)
	}
	d := &Directory{table: table, ips: make([]netsim.IPv4, len(ips))}
	for _, ip := range ips {
		d.ips[table.Lookup(uint32(ip))] = ip
	}
	return d, nil
}

// Table returns the underlying hash table (what gets distributed to
// switches).
func (d *Directory) Table() *mph.Table { return d.table }

// Len returns the number of end hosts.
func (d *Directory) Len() int { return len(d.ips) }

// IndexOf returns the bitmap index of an end host.
func (d *Directory) IndexOf(ip netsim.IPv4) int { return d.table.Lookup(uint32(ip)) }

// IPAt returns the end host at a bitmap index.
func (d *Directory) IPAt(idx int) netsim.IPv4 { return d.ips[idx] }

// Decode expands a pointer bitmap into the end-host IPs it names, sorted.
func (d *Directory) Decode(bits *bitset.Set) []netsim.IPv4 {
	var out []netsim.IPv4
	bits.ForEach(func(i int) bool {
		if i < len(d.ips) {
			out = append(out, d.ips[i])
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
