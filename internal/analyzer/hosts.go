package analyzer

import (
	"context"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
)

// HostBackend is the analyzer's seam to end-host telemetry: every per-host
// interaction of the five diagnosis procedures — the fan-out query rounds
// and the two single-host probes — goes through this interface, mirroring
// what the Directory interface does for switch pointer state. The in-memory
// implementation (MemoryHosts, the default) reaches hostagent.Agent
// executors directly; the HTTP implementation (RemoteHosts) reaches the
// same executors over their JSON/HTTP binding (rpc.NewHostHandler), so a
// whole diagnosis can run over the wire.
//
// # Round contract
//
// The *Round methods each run one per-host query round and carry the
// rpc.FanOut partial-result contract through unchanged, because the
// procedures' cost accounting depends on it:
//
//   - answers[i] is host hosts[i]'s reply; only indices < dispatched are
//     meaningful, and dispatched is always a prefix of the host list
//     (cancellation stops dispatch at a deterministic per-host checkpoint).
//   - Every dispatched host's answer is complete when the round returns, so
//     callers merge in host order and results never depend on worker
//     scheduling; workers ≤ 0 selects rpc.DefaultFanOutWorkers.
//   - err is the ctx error observed at the checkpoint that stopped early,
//     nil on a full round. A host the backend cannot reach (absent agent,
//     dead server) yields a zero answer, not an error — one dead host never
//     aborts a round.
//
// Implementations must support any number of concurrent rounds (the
// admission controller overlaps whole diagnoses).
type HostBackend interface {
	// HeadersRound asks each host for records matching each query:
	// answers[i][q] holds hosts[i]'s answer for queries[q] — the matching
	// records plus the host's cold read-back accounting (segments decoded
	// past the hot window), which the procedures charge as one extra
	// virtual-time round.
	HeadersRound(ctx context.Context, workers int, hosts []netsim.IPv4, queries []hostagent.HeadersQuery) (answers [][]hostagent.HeadersAnswer, dispatched int, err error)
	// TopKRound asks each host for its top-k flows through switch sw.
	TopKRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID, k int) (answers [][]hostagent.FlowBytes, dispatched int, err error)
	// FlowSizesRound asks each host for flow sizes + egress links at sw.
	FlowSizesRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID) (answers [][]hostagent.FlowSize, dispatched int, err error)
	// Priority asks one host for a flow's recorded DSCP priority.
	Priority(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (uint8, bool)
	// Record fetches one flow's record from its destination host — the
	// cascade procedure's synthetic-alert source. ok is false when the host
	// is unreachable or holds no record for the flow.
	Record(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (*flowrec.Record, bool)
}

// hostBackend resolves the analyzer's host backend: the explicit HostBack
// when set, else the in-memory default over the Hosts map.
func (a *Analyzer) hostBackend() HostBackend {
	if a.HostBack != nil {
		return a.HostBack
	}
	return MemoryHosts{Agents: a.Hosts}
}

// MemoryHosts is the default HostBackend: it reaches host agents in-process
// (the analyzer colocated with the simulated testbed). Hosts without an
// agent answer every query with nothing, matching a silent server.
type MemoryHosts struct {
	Agents map[netsim.IPv4]*hostagent.Agent
}

var _ HostBackend = MemoryHosts{}

// HeadersRound implements HostBackend over in-process agents.
func (m MemoryHosts) HeadersRound(ctx context.Context, workers int, hosts []netsim.IPv4, queries []hostagent.HeadersQuery) ([][]hostagent.HeadersAnswer, int, error) {
	answers := make([][]hostagent.HeadersAnswer, len(hosts))
	dispatched, err := rpc.FanOut(ctx, workers, len(hosts), func(ctx context.Context, i int) {
		ag, ok := m.Agents[hosts[i]]
		if !ok {
			return
		}
		// One multi-query pass per host: cold segments decode once per
		// round, not once per alert tuple.
		per := ag.QueryHeadersMulti(ctx, queries)
		answers[i] = per
	})
	return answers, dispatched, err
}

// TopKRound implements HostBackend over in-process agents.
func (m MemoryHosts) TopKRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID, k int) ([][]hostagent.FlowBytes, int, error) {
	answers := make([][]hostagent.FlowBytes, len(hosts))
	dispatched, err := rpc.FanOut(ctx, workers, len(hosts), func(ctx context.Context, i int) {
		if ag, ok := m.Agents[hosts[i]]; ok {
			answers[i] = ag.QueryTopK(ctx, sw, k)
		}
	})
	return answers, dispatched, err
}

// FlowSizesRound implements HostBackend over in-process agents.
func (m MemoryHosts) FlowSizesRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID) ([][]hostagent.FlowSize, int, error) {
	answers := make([][]hostagent.FlowSize, len(hosts))
	dispatched, err := rpc.FanOut(ctx, workers, len(hosts), func(ctx context.Context, i int) {
		if ag, ok := m.Agents[hosts[i]]; ok {
			answers[i] = ag.QueryFlowSizes(ctx, sw)
		}
	})
	return answers, dispatched, err
}

// Priority implements HostBackend over in-process agents.
func (m MemoryHosts) Priority(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (uint8, bool) {
	ag, ok := m.Agents[ip]
	if !ok {
		return 0, false
	}
	return ag.QueryPriority(ctx, flow)
}

// Record implements HostBackend over in-process agents.
func (m MemoryHosts) Record(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (*flowrec.Record, bool) {
	ag, ok := m.Agents[ip]
	if !ok {
		return nil, false
	}
	return ag.LookupRecord(ctx, flow)
}
