package analyzer

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
	"switchpointer/internal/trace"
)

// LinkDistribution is the flow-size distribution observed on one egress
// interface (link) of the suspect switch.
type LinkDistribution struct {
	Link  topo.LinkID
	Sizes []uint64 // ascending
	Flows int
}

// Min returns the smallest flow size on the link (0 when empty).
func (l LinkDistribution) Min() uint64 {
	if len(l.Sizes) == 0 {
		return 0
	}
	return l.Sizes[0]
}

// Max returns the largest flow size on the link.
func (l LinkDistribution) Max() uint64 {
	if len(l.Sizes) == 0 {
		return 0
	}
	return l.Sizes[len(l.Sizes)-1]
}

// DiagnoseLoadImbalance investigates uneven egress utilization at a switch
// without cancellation support. Unlike Run, it never returns nil: invalid
// parameters yield an inconclusive report instead of an error.
//
// Deprecated: use Run with an ImbalanceQuery.
//
//splint:noctx deprecated PR 1 shim; Run(ctx, ImbalanceQuery{...}) is the ctx-aware path
func (a *Analyzer) DiagnoseLoadImbalance(sw netsim.NodeID, window simtime.EpochRange, at simtime.Time) *Report {
	rep, err := a.Run(context.Background(), ImbalanceQuery{Switch: sw, Window: window, At: at})
	if rep == nil {
		rep = &Report{Switch: sw, Kind: KindInconclusive, Clock: rpc.NewClock(a.Cost, at),
			Conclusion: fmt.Sprintf("invalid query: %v", err)}
	}
	return rep
}

// diagnoseImbalance is the §5.4 procedure: it pulls the pointers covering
// the window, asks the named hosts for a flow-size distribution per egress
// interface, and tests for a clean separation in flow size between the
// interfaces (the malfunction signature: small flows on one interface,
// large on the other).
func (a *Analyzer) diagnoseImbalance(ctx context.Context, q ImbalanceQuery) (*Report, error) {
	clock := rpc.NewClock(a.Cost, q.At)
	clock.Trace(trace.FromContext(ctx))
	rep := &Report{Switch: q.Switch, Clock: clock, Kind: KindInconclusive}

	// The pointer pull parents under the pointer-retrieval span charged on
	// return.
	hosts, err := a.Dir.Hosts(clock.RemoteCtx(ctx), q.Switch, q.Window)
	if err != nil {
		if errors.Is(err, ErrUnknownSwitch) {
			rep.Conclusion = "unknown switch"
			return rep, err
		}
		return aborted(rep, ctx, err, "pointer retrieval")
	}
	clock.PointersPulled(1)
	rep.HostsContacted = len(hosts)
	rep.Consulted = hosts

	// Per-host flow-size queries run as one HostBackend round; the byLink
	// merge below runs in sorted host order (and the per-link series are
	// sorted afterwards anyway), so the report is identical for every
	// worker count and backend.
	answers, dispatched, cerr := a.hostBackend().FlowSizesRound(clock.RemoteCtx(ctx), a.workers(), hosts, q.Switch)
	byLink := make(map[topo.LinkID][]uint64)
	recCounts := make([]int, dispatched)
	for i := 0; i < dispatched; i++ {
		recCounts[i] = len(answers[i])
		for _, fs := range answers[i] {
			byLink[fs.Link] = append(byLink[fs.Link], fs.Bytes)
		}
	}
	if cerr != nil {
		chargePartial(rep, "diagnosis", hosts, recCounts)
		return cancelled(rep, ctx, "host queries")
	}
	clock.HostsQueried("diagnosis", hostNames(hosts), recCounts)

	links := make([]topo.LinkID, 0, len(byLink))
	for l := range byLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		sizes := byLink[l]
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		rep.Links = append(rep.Links, LinkDistribution{Link: l, Sizes: sizes, Flows: len(sizes)})
	}

	// Clean-separation test across any pair of links: every flow on one
	// strictly smaller than every flow on the other.
	for i := 0; i < len(rep.Links); i++ {
		for j := 0; j < len(rep.Links); j++ {
			if i == j || rep.Links[i].Flows == 0 || rep.Links[j].Flows == 0 {
				continue
			}
			if rep.Links[i].Max() < rep.Links[j].Min() {
				rep.Separated = true
				rep.Boundary = rep.Links[j].Min()
			}
		}
	}
	switch {
	case rep.Separated:
		rep.Kind = KindLoadImbalance
		rep.Conclusion = fmt.Sprintf(
			"load imbalance: flow sizes separate cleanly across %d egress interfaces at ≈%d bytes (size-based misrouting)",
			len(rep.Links), rep.Boundary)
	case len(rep.Links) > 1:
		rep.Conclusion = "multiple egress interfaces in use, no size separation — balancing looks hash-based"
	default:
		rep.Conclusion = "single egress interface observed; nothing to compare"
	}
	return rep, nil
}
