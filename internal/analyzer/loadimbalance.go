package analyzer

import (
	"fmt"
	"sort"

	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

// LinkDistribution is the flow-size distribution observed on one egress
// interface (link) of the suspect switch.
type LinkDistribution struct {
	Link  topo.LinkID
	Sizes []uint64 // ascending
	Flows int
}

// Min returns the smallest flow size on the link (0 when empty).
func (l LinkDistribution) Min() uint64 {
	if len(l.Sizes) == 0 {
		return 0
	}
	return l.Sizes[0]
}

// Max returns the largest flow size on the link.
func (l LinkDistribution) Max() uint64 {
	if len(l.Sizes) == 0 {
		return 0
	}
	return l.Sizes[len(l.Sizes)-1]
}

// ImbalanceReport is the outcome of a load-imbalance investigation (§5.4).
type ImbalanceReport struct {
	Switch netsim.NodeID
	Links  []LinkDistribution
	// Separated is true when the per-link distributions split cleanly by
	// flow size (the malfunction signature: small flows on one interface,
	// large on the other).
	Separated bool
	// Boundary is a size threshold witnessing the separation.
	Boundary uint64

	HostsContacted int
	Clock          *rpc.Clock
	Conclusion     string
}

// DiagnoseLoadImbalance investigates uneven egress utilization at a switch:
// it pulls the pointers covering the most recent window, asks the named
// hosts for a flow-size distribution per egress interface, and tests for a
// clean separation in flow size between the interfaces (§5.4).
func (a *Analyzer) DiagnoseLoadImbalance(sw netsim.NodeID, window simtime.EpochRange, at simtime.Time) *ImbalanceReport {
	clock := rpc.NewClock(a.Cost, at)
	rep := &ImbalanceReport{Switch: sw, Clock: clock}

	ag, ok := a.Switches[sw]
	if !ok {
		rep.Conclusion = "unknown switch"
		return rep
	}
	res := ag.PullPointers(window)
	clock.PointersPulled(1)
	hosts := a.Dir.Decode(res.Hosts)
	rep.HostsContacted = len(hosts)

	byLink := make(map[topo.LinkID][]uint64)
	recCounts := make([]int, 0, len(hosts))
	for _, ip := range hosts {
		hostAg, ok := a.Hosts[ip]
		if !ok {
			recCounts = append(recCounts, 0)
			continue
		}
		sizes := hostAg.QueryFlowSizes(sw)
		recCounts = append(recCounts, len(sizes))
		for _, fs := range sizes {
			byLink[fs.Link] = append(byLink[fs.Link], fs.Bytes)
		}
	}
	clock.HostsQueried("diagnosis", hostNames(hosts), recCounts)

	links := make([]topo.LinkID, 0, len(byLink))
	for l := range byLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		sizes := byLink[l]
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		rep.Links = append(rep.Links, LinkDistribution{Link: l, Sizes: sizes, Flows: len(sizes)})
	}

	// Clean-separation test across any pair of links: every flow on one
	// strictly smaller than every flow on the other.
	for i := 0; i < len(rep.Links); i++ {
		for j := 0; j < len(rep.Links); j++ {
			if i == j || rep.Links[i].Flows == 0 || rep.Links[j].Flows == 0 {
				continue
			}
			if rep.Links[i].Max() < rep.Links[j].Min() {
				rep.Separated = true
				rep.Boundary = rep.Links[j].Min()
			}
		}
	}
	switch {
	case rep.Separated:
		rep.Conclusion = fmt.Sprintf(
			"load imbalance: flow sizes separate cleanly across %d egress interfaces at ≈%d bytes (size-based misrouting)",
			len(rep.Links), rep.Boundary)
	case len(rep.Links) > 1:
		rep.Conclusion = "multiple egress interfaces in use, no size separation — balancing looks hash-based"
	default:
		rep.Conclusion = "single egress interface observed; nothing to compare"
	}
	return rep
}
