package analyzer

import (
	"context"
	"fmt"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/trace"
)

// maxCascadeDepth bounds how far back the analyzer chases causality.
const maxCascadeDepth = 4

// DiagnoseCascade debugs a traffic-cascade suspicion without cancellation
// support.
//
// Deprecated: use Run with a CascadeQuery.
//
//splint:noctx deprecated PR 1 shim; Run(ctx, CascadeQuery{...}) is the ctx-aware path
func (a *Analyzer) DiagnoseCascade(alert hostagent.Alert) *Report {
	rep, _ := a.Run(context.Background(), CascadeQuery{Alert: alert})
	return rep
}

// diagnoseCascade is the §5.3 procedure: after finding the victim's direct
// aggressor, it recursively examines the aggressor's own path and epochs —
// "whether or not the flow was affected by some other flows" — building the
// causality chain (e.g. C-E was delayed by A-F, which was itself delayed by
// B-D). This needs both spatial correlation (pointers across switches) and
// temporal correlation (overlapping epochs), including telemetry of flows
// that never triggered any alert themselves.
func (a *Analyzer) diagnoseCascade(ctx context.Context, alert hostagent.Alert) (*Report, error) {
	clock := rpc.NewClock(a.Cost, alert.DetectedAt)
	clock.Trace(trace.FromContext(ctx))
	clock.Spend("detection", a.DetectionLatency)
	clock.AlertDelivered()

	chain := []netsim.FlowKey{alert.Flow}
	visited := map[netsim.FlowKey]bool{alert.Flow: true}

	first, err := a.contentionRound(ctx, clock, alert)
	agg := first
	result := &Report{
		Alert:              alert,
		Clock:              clock,
		PerSwitch:          first.PerSwitch,
		Culprits:           first.Culprits,
		PointerHosts:       first.PointerHosts,
		PrunedHosts:        first.PrunedHosts,
		HostsContacted:     first.HostsContacted,
		Consulted:          first.Consulted,
		ColdSegments:       first.ColdSegments,
		ColdSkippedByIndex: first.ColdSkippedByIndex,
		TieredSegments:     first.TieredSegments,
		Cascade:            chain,
		Kind:               KindInconclusive,
	}
	if err != nil {
		return aborted(result, ctx, err, "first contention round")
	}

	for depth := 0; depth < maxCascadeDepth; depth++ {
		if len(agg.Culprits) == 0 {
			break
		}
		top := agg.Culprits[0]
		if visited[top.Flow] {
			break
		}
		visited[top.Flow] = true
		chain = append(chain, top.Flow)

		if ctx.Err() != nil {
			result.Cascade = chain
			return cancelled(result, ctx, fmt.Sprintf("cascade round %d", depth+1))
		}

		// Was the aggressor itself delayed? Examine pointers along ITS path
		// during ITS epochs. Its telemetry lives at its destination host.
		synth, ok := a.syntheticAlert(ctx, clock, top.Flow)
		if !ok {
			break
		}
		next, err := a.contentionRound(ctx, clock, synth)
		// Keep only strictly higher-priority culprits: a flow can only have
		// been delayed by traffic its queue had to yield to.
		next.Culprits = filterAbovePriority(next.Culprits, top.Priority)
		result.PointerHosts += next.PointerHosts
		result.PrunedHosts += next.PrunedHosts
		result.HostsContacted += next.HostsContacted
		result.ColdSegments += next.ColdSegments
		result.ColdSkippedByIndex += next.ColdSkippedByIndex
		result.TieredSegments += next.TieredSegments
		result.Consulted = dedupIPs(result.Consulted, next.Consulted)
		for sw, cs := range next.PerSwitch {
			for _, c := range filterAbovePriority(cs, top.Priority) {
				result.PerSwitch[sw] = appendCulprit(result.PerSwitch[sw], c)
				result.Culprits = appendCulprit(result.Culprits, c)
			}
		}
		if err != nil {
			result.Cascade = chain
			sortCulprits(result.Culprits)
			return aborted(result, ctx, err, fmt.Sprintf("cascade round %d", depth+1))
		}
		agg = next
	}

	result.Cascade = chain
	sortCulprits(result.Culprits)
	if len(chain) >= 3 {
		result.Kind = KindCascade
		result.Conclusion = fmt.Sprintf("traffic cascade: %s", chainString(chain))
	} else if len(result.Culprits) > 0 {
		result.Kind = first.Kind
		result.Conclusion = first.Conclusion + " (no deeper cascade found)"
	} else {
		result.Kind = KindInconclusive
		result.Conclusion = "no contending flows found"
	}
	return result, nil
}

// syntheticAlert builds the alert-equivalent tuples for a flow from its
// destination host's record (one extra host contact, charged to the clock),
// fetched through the host backend so the cascade procedure works over the
// wire too.
func (a *Analyzer) syntheticAlert(ctx context.Context, clock *rpc.Clock, flow netsim.FlowKey) (hostagent.Alert, bool) {
	// The record probe parents under the one-host diagnosis round charged
	// just below.
	ctx = clock.RemoteCtx(ctx)
	rec, ok := a.hostBackend().Record(ctx, flow.Dst, flow)
	if !ok {
		return hostagent.Alert{}, false
	}
	clock.HostsQueried("diagnosis", []string{flow.Dst.String()}, []int{1})
	al := hostagent.Alert{Flow: flow, Host: flow.Dst}
	for i, sw := range rec.Path {
		al.Tuples = append(al.Tuples, hostagent.AlertTuple{Switch: sw, Epochs: rec.Epochs[i]})
	}
	return al, true
}

func filterAbovePriority(cs []Culprit, prio uint8) []Culprit {
	var out []Culprit
	for _, c := range cs {
		if c.Priority > prio {
			out = append(out, c)
		}
	}
	return out
}

func chainString(chain []netsim.FlowKey) string {
	s := ""
	for i, f := range chain {
		if i > 0 {
			s += " ← delayed by "
		}
		s += f.String()
	}
	return s
}
