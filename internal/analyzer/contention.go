package analyzer

import (
	"context"
	"fmt"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/trace"
)

// DiagnoseContention debugs a throughput-drop or timeout alert without
// cancellation support.
//
// Deprecated: use Run with a ContentionQuery.
//
//splint:noctx deprecated PR 1 shim; Run(ctx, ContentionQuery{...}) is the ctx-aware path
func (a *Analyzer) DiagnoseContention(alert hostagent.Alert) *Report {
	rep, _ := a.Run(context.Background(), ContentionQuery{Alert: alert})
	return rep
}

// diagnoseContention is the §5.1 "too much traffic" procedure, which also
// covers §5.2 "too many red lights" (the same machinery, with culprits
// grouped per switch).
//
// Steps, each charged to the virtual-time clock:
//  1. the destination host detected the problem (detection);
//  2. the alert with <switchID, epochIDs, byte counts> tuples reached the
//     analyzer (alert);
//  3. pointers were pulled from the path's switches for the victim's epochs
//     (pointer retrieval);
//  4. the hosts named by the pointers — after topology pruning — were
//     queried for matching headers, and the returned records correlated
//     with the victim (diagnosis).
func (a *Analyzer) diagnoseContention(ctx context.Context, alert hostagent.Alert) (*Report, error) {
	clock := rpc.NewClock(a.Cost, alert.DetectedAt)
	clock.Trace(trace.FromContext(ctx))
	clock.Spend("detection", a.DetectionLatency)
	clock.AlertDelivered()
	return a.contentionRound(ctx, clock, alert)
}

// contentionRound performs one pull–prune–query–correlate round on an
// existing analyzer clock. diagnoseCascade chains several rounds on one
// clock to follow causality backwards.
func (a *Analyzer) contentionRound(ctx context.Context, clock *rpc.Clock, alert hostagent.Alert) (*Report, error) {
	d := &Report{Alert: alert, Clock: clock, PerSwitch: make(map[netsim.NodeID][]Culprit), Kind: KindInconclusive}
	if len(alert.Tuples) == 0 {
		d.Conclusion = "alert carried no telemetry tuples"
		return d, nil
	}

	cands, err := a.pullCandidates(ctx, clock, alert.Tuples)
	if err != nil {
		return aborted(d, ctx, err, "pointer retrieval")
	}

	// Prune per switch, then merge the survivors into the contact set.
	perSwitchKept := make(map[netsim.NodeID][]netsim.IPv4, len(cands))
	var all [][]netsim.IPv4
	pointerTotal := 0
	prunedTotal := 0
	for sw, ips := range cands {
		pointerTotal += len(ips)
		kept, pruned := a.pruneForVictim(sw, alert.Flow, ips)
		perSwitchKept[sw] = kept
		prunedTotal += len(pruned)
		all = append(all, kept)
	}
	contact := dedupIPs(all...)
	d.PointerHosts = pointerTotal
	d.PrunedHosts = prunedTotal
	d.HostsContacted = len(contact)
	d.Consulted = contact

	// Query each surviving host for headers matching any (switch, epochs)
	// tuple of the victim, and correlate. The per-host queries run as one
	// HostBackend round (a bounded-worker fan-out in both the in-memory and
	// HTTP backends); the correlation below merges in sorted host order —
	// host, then tuple, then record — so the report is byte-identical for
	// every worker count and backend. A cancellation mid-round still charges
	// the hosts dispatched so far, so the partial Report carries the cost
	// actually incurred.
	// The uncharged priority probe and the headers fan-out both parent
	// under the diagnosis span charged when the round returns.
	qctx := clock.RemoteCtx(ctx)
	victimPrio := victimPriority(qctx, a, alert)
	queries := make([]hostagent.HeadersQuery, len(alert.Tuples))
	for qi, tup := range alert.Tuples {
		queries[qi] = hostagent.HeadersQuery{Switch: tup.Switch, Epochs: tup.Epochs}
	}
	answers, dispatched, cerr := a.hostBackend().HeadersRound(qctx, a.workers(), contact, queries)
	recCounts := make([]int, dispatched)
	var coldHosts []string
	var coldRecs []int
	sawHigher := false
	sawEqual := false
	for i := 0; i < dispatched; i++ {
		ip := contact[i]
		scanned := 0
		coldSegs := 0
		coldReturned := 0
		for qi, ans := range answers[i] {
			tup := alert.Tuples[qi]
			scanned += len(ans.Records)
			coldSegs += ans.ColdSegments
			coldReturned += ans.ColdReturned
			d.ColdSegments += ans.ColdSegments
			d.ColdSkippedByIndex += ans.ColdSkippedByIndex
			d.TieredSegments += ans.TieredSegments
			for _, rec := range ans.Records {
				if rec.Flow == alert.Flow {
					continue
				}
				er, _ := rec.EpochsAt(tup.Switch)
				if !er.Overlaps(tup.Epochs) {
					continue
				}
				// Contention requires sharing an output queue at this
				// switch, not merely co-traversal.
				if !a.sharesEgress(tup.Switch, alert.Flow.Dst, rec.Flow.Dst) {
					continue
				}
				c := Culprit{
					Flow:     rec.Flow,
					Priority: rec.Priority,
					Bytes:    rec.BytesIn(intersect(er, tup.Epochs)),
					Switch:   tup.Switch,
					Host:     ip,
					Overlap:  intersect(er, tup.Epochs),
				}
				if c.Bytes == 0 {
					c.Bytes = rec.Bytes
				}
				d.PerSwitch[c.Switch] = appendCulprit(d.PerSwitch[c.Switch], c)
				d.Culprits = appendCulprit(d.Culprits, c)
				switch {
				case c.Priority > victimPrio:
					sawHigher = true
				case c.Priority == victimPrio:
					sawEqual = true
				}
			}
		}
		recCounts[i] = scanned
		// A host joins the cold round iff it decoded flushed segments. The
		// round is sized by the records the cold tier RETURNED — the part
		// of the answer that crosses the wire, the same returned-records
		// basis the diagnosis round above uses — not by the host-local
		// decode work (ans.ColdRecords), so compacting segments can never
		// raise the charged cost of an unchanged answer.
		if coldSegs > 0 {
			coldHosts = append(coldHosts, ip.String())
			coldRecs = append(coldRecs, coldReturned)
		}
	}
	if cerr != nil {
		chargePartial(d, "diagnosis", contact, recCounts)
		// The dispatched prefix's cold scans happened too: charge them so a
		// partial report never carries ColdSegments without the matching
		// round (the Report.ColdSegments invariant holds even cancelled).
		if len(coldHosts) > 0 {
			clock.HostsQueried(rpc.PhaseColdReadBack, coldHosts, coldRecs)
		}
		return cancelled(d, ctx, "host queries")
	}
	clock.HostsQueried("diagnosis", hostNames(contact), recCounts)
	// Cold read-back: hosts whose epoch window had aged out of the hot set
	// consulted flushed segments; that telemetry is a second request round
	// trip to those hosts, charged explicitly so virtual-time accounting
	// stays honest. A diagnosis answered entirely from hot windows charges
	// nothing here, keeping all hot-window metrics byte-identical.
	if len(coldHosts) > 0 {
		clock.HostsQueried(rpc.PhaseColdReadBack, coldHosts, coldRecs)
	}

	sortCulprits(d.Culprits)
	for sw := range d.PerSwitch {
		sortCulprits(d.PerSwitch[sw])
	}

	// Classify.
	switchesWithCulprits := 0
	for _, cs := range d.PerSwitch {
		if len(cs) > 0 {
			switchesWithCulprits++
		}
	}
	switch {
	case len(d.Culprits) == 0:
		d.Kind = KindInconclusive
		d.Conclusion = "no contending flows found in the victim's epochs"
	case switchesWithCulprits > 1:
		d.Kind = KindRedLights
		d.Conclusion = fmt.Sprintf(
			"performance degradation accumulated across %d switches: %d contending flow(s) share epochs with the victim",
			switchesWithCulprits, len(d.Culprits))
	case sawHigher:
		d.Kind = KindPriorityContention
		d.Conclusion = fmt.Sprintf(
			"%d higher-priority flow(s) contended with the victim at switch %v during its epochs",
			len(d.Culprits), firstSwitch(d.PerSwitch))
	case sawEqual:
		d.Kind = KindMicroburst
		d.Conclusion = fmt.Sprintf(
			"%d equal-priority flow(s) burst into the victim's queue at switch %v (microburst)",
			len(d.Culprits), firstSwitch(d.PerSwitch))
	default:
		d.Kind = KindInconclusive
		d.Conclusion = "contending flows found, but none at or above the victim's priority"
	}
	return d, nil
}

func victimPriority(ctx context.Context, a *Analyzer, alert hostagent.Alert) uint8 {
	if prio, known := a.hostBackend().Priority(ctx, alert.Host, alert.Flow); known {
		return prio
	}
	return 0
}

func intersect(a, b simtime.EpochRange) simtime.EpochRange {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	return simtime.EpochRange{Lo: lo, Hi: hi}
}

// appendCulprit adds c unless an entry for the same flow at the same switch
// exists (it keeps the one with more bytes).
func appendCulprit(list []Culprit, c Culprit) []Culprit {
	for i := range list {
		if list[i].Flow == c.Flow && list[i].Switch == c.Switch {
			if c.Bytes > list[i].Bytes {
				list[i] = c
			}
			return list
		}
	}
	return append(list, c)
}

func sortCulprits(cs []Culprit) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			a, b := cs[j-1], cs[j]
			worse := a.Bytes < b.Bytes ||
				(a.Bytes == b.Bytes && a.Flow.String() > b.Flow.String())
			if !worse {
				break
			}
			cs[j-1], cs[j] = b, a
		}
	}
}

func firstSwitch(m map[netsim.NodeID][]Culprit) netsim.NodeID {
	best := netsim.NodeID(-1)
	for sw, cs := range m {
		if len(cs) == 0 {
			continue
		}
		if best == -1 || sw < best {
			best = sw
		}
	}
	return best
}
