package analyzer_test

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

// cancelOnHeaders wraps a HostBackend and cancels the run's context the
// moment the diagnosis reaches its HeadersRound fan-out, so the round stops
// at a deterministic dispatch-prefix checkpoint mid-procedure.
type cancelOnHeaders struct {
	analyzer.HostBackend
	cancel context.CancelFunc
}

func (c cancelOnHeaders) HeadersRound(ctx context.Context, workers int, hosts []netsim.IPv4, queries []hostagent.HeadersQuery) ([][]hostagent.HeadersAnswer, int, error) {
	c.cancel()
	return c.HostBackend.HeadersRound(ctx, workers, hosts, queries)
}

// TestCancelledDiagnosisTraceWellFormed: a diagnosis cut by context
// cancellation must still hand back a closed, well-formed trace whose phase
// spans mirror the partial report's charged phases exactly — the trace
// equivalent of the dispatched-prefix partial-cost contract.
func TestCancelledDiagnosisTraceWellFormed(t *testing.T) {
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	defer tb.Close()
	tb.Run(30 * simtime.Millisecond)

	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Fatal("victim never triggered")
	}
	q := analyzer.RedLightsQuery{Alert: alert}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tb.Analyzer.HostBack = cancelOnHeaders{
		HostBackend: analyzer.MemoryHosts{Agents: tb.Analyzer.Hosts},
		cancel:      cancel,
	}
	defer func() { tb.Analyzer.HostBack = nil }()

	rep, err := tb.Analyzer.Run(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if rep.TraceID == "" || rep.TraceID != analyzer.TraceID(q) {
		t.Fatalf("TraceID = %q, want derived %q", rep.TraceID, analyzer.TraceID(q))
	}
	if rep.Trace == nil {
		t.Fatal("cancelled run carries no trace")
	}

	// The root span must be closed at the clock's final reading and anchored
	// at the query's virtual start.
	var rootFound bool
	for _, sp := range rep.Trace.Spans {
		if sp.End < sp.Start {
			t.Fatalf("span %s runs backwards: %v → %v", sp.ID, sp.Start, sp.End)
		}
		if sp.ID == "0" {
			rootFound = true
			if sp.Start != analyzer.QueryStart(q) {
				t.Fatalf("root start = %v, want %v", sp.Start, analyzer.QueryStart(q))
			}
			if sp.End != rep.Clock.Now() {
				t.Fatalf("root not closed at clock: end %v, clock %v", sp.End, rep.Clock.Now())
			}
		}
	}
	if !rootFound {
		t.Fatal("trace has no root span")
	}

	// Every charged phase must appear as exactly one ordinal child span with
	// matching name, order, and virtual duration — including the partial
	// charge for the dispatched prefix of the cancelled round.
	phases := rep.Clock.Phases()
	if len(phases) == 0 {
		t.Fatal("partial report charged no phases")
	}
	for i, ph := range phases {
		id := strconv.Itoa(i + 1)
		var found bool
		for _, sp := range rep.Trace.Spans {
			if sp.ID != id {
				continue
			}
			found = true
			if sp.Parent != "0" {
				t.Fatalf("phase span %s parent = %q", id, sp.Parent)
			}
			if sp.Name != ph.Name {
				t.Fatalf("phase span %s = %q, want charged phase %q", id, sp.Name, ph.Name)
			}
			if sp.Duration() != ph.Duration {
				t.Fatalf("phase span %s duration %v, want charged %v", id, sp.Duration(), ph.Duration)
			}
		}
		if !found {
			t.Fatalf("charged phase %d (%s) has no span", i+1, ph.Name)
		}
	}
	// And no phase spans beyond the charged ones.
	if extra := strconv.Itoa(len(phases) + 1); rep.TraceID != "" {
		for _, sp := range rep.Trace.Spans {
			if sp.ID == extra {
				t.Fatalf("trace has uncharged phase span %s (%s)", extra, sp.Name)
			}
		}
	}
	// The partial-cost contract: the consulted set is the dispatched prefix,
	// never the full fan-out list.
	if len(rep.Consulted) > rep.HostsContacted {
		t.Fatalf("consulted %d > contacted %d", len(rep.Consulted), rep.HostsContacted)
	}
}
