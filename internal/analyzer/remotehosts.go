package analyzer

import (
	"context"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
)

// RemoteHosts is the HostBackend for a real deployment: every per-host
// query round of the diagnosis procedures travels the JSON/HTTP binding,
// fanned out through rpc.QueryHosts against rpc.NewHostHandler servers —
// the host-side twin of RemoteDirectory. With both installed on an
// Analyzer, a whole diagnosis (pointer pulls, MPH distribution, and all
// per-host rounds) runs over the wire, and the Report is byte-identical to
// the in-memory run: rounds dispatch in host order, answers merge in host
// order, and the partial-cost contract under cancellation is carried
// through rpc.QueryHosts unchanged.
//
// A host without a registered URL, or one whose server fails a request,
// answers with nothing — the same silent-server semantics as an absent
// in-memory agent, so one dead host never aborts a round.
//
// Concurrency: all methods are safe for concurrent use (rpc.HTTPClient is
// goroutine-safe), including overlapping whole diagnoses.
type RemoteHosts struct {
	urls   map[netsim.IPv4]string // host → base URL
	client *rpc.HTTPClient

	// Workers bounds each round's fan-out; zero selects the caller's width
	// (the analyzer passes its own Workers setting per round).
	Workers int
}

var _ HostBackend = (*RemoteHosts)(nil)

// NewRemoteHosts binds host agents served at the given base URLs. client
// may be nil, in which case a pooled client (keep-alive transport) is used
// — the right default, since query rounds repeat against the same hosts.
func NewRemoteHosts(hostURLs map[netsim.IPv4]string, client *rpc.HTTPClient) *RemoteHosts {
	if client == nil {
		client = rpc.NewPooledHTTPClient()
	}
	return &RemoteHosts{urls: hostURLs, client: client}
}

// Client returns the underlying HTTP client (shared with RemoteDirectory in
// typical deployments so the connection pool spans both planes).
func (r *RemoteHosts) Client() *rpc.HTTPClient { return r.client }

// urlsFor aligns base URLs with the host list; unknown hosts get "".
func (r *RemoteHosts) urlsFor(hosts []netsim.IPv4) []string {
	urls := make([]string, len(hosts))
	for i, ip := range hosts {
		urls[i] = r.urls[ip]
	}
	return urls
}

// workers resolves the per-round fan-out width.
func (r *RemoteHosts) workers(callerWorkers int) int {
	if callerWorkers > 0 {
		return callerWorkers
	}
	return r.Workers
}

// HeadersRound implements HostBackend over HTTP: one /headers-batch POST
// per host carrying every query of the round (matching the one-round
// virtual-time charge), hosts in parallel, answers per host in query
// order. The hosts' cold read-back accounting rides the wire form, so a
// remote diagnosis charges the extra round exactly like the in-memory one.
func (r *RemoteHosts) HeadersRound(ctx context.Context, workers int, hosts []netsim.IPv4, queries []hostagent.HeadersQuery) ([][]hostagent.HeadersAnswer, int, error) {
	results, err := rpc.QueryHosts(ctx, r.client, r.workers(workers), r.urlsFor(hosts),
		func(ctx context.Context, c *rpc.HTTPClient, url string) ([]hostagent.HeadersAnswer, error) {
			if url == "" {
				return nil, nil
			}
			return c.QueryHeadersBatch(ctx, url, queries)
		})
	answers := make([][]hostagent.HeadersAnswer, len(hosts))
	for i := range results {
		answers[i] = results[i].Val
	}
	return answers, len(results), err
}

// TopKRound implements HostBackend over HTTP.
func (r *RemoteHosts) TopKRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID, k int) ([][]hostagent.FlowBytes, int, error) {
	results, err := rpc.QueryHosts(ctx, r.client, r.workers(workers), r.urlsFor(hosts),
		func(ctx context.Context, c *rpc.HTTPClient, url string) ([]hostagent.FlowBytes, error) {
			if url == "" {
				return nil, nil
			}
			return c.QueryTopK(ctx, url, sw, k)
		})
	answers := make([][]hostagent.FlowBytes, len(hosts))
	for i := range results {
		answers[i] = results[i].Val
	}
	return answers, len(results), err
}

// FlowSizesRound implements HostBackend over HTTP.
func (r *RemoteHosts) FlowSizesRound(ctx context.Context, workers int, hosts []netsim.IPv4, sw netsim.NodeID) ([][]hostagent.FlowSize, int, error) {
	results, err := rpc.QueryHosts(ctx, r.client, r.workers(workers), r.urlsFor(hosts),
		func(ctx context.Context, c *rpc.HTTPClient, url string) ([]hostagent.FlowSize, error) {
			if url == "" {
				return nil, nil
			}
			return c.QueryFlowSizes(ctx, url, sw)
		})
	answers := make([][]hostagent.FlowSize, len(hosts))
	for i := range results {
		answers[i] = results[i].Val
	}
	return answers, len(results), err
}

// Priority implements HostBackend over HTTP; an unreachable host answers
// "unknown".
func (r *RemoteHosts) Priority(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (uint8, bool) {
	url, ok := r.urls[ip]
	if !ok {
		return 0, false
	}
	prio, known, err := r.client.QueryPriority(ctx, url, flow)
	if err != nil {
		return 0, false
	}
	return prio, known
}

// Record implements HostBackend over HTTP; an unreachable host answers
// "no record".
func (r *RemoteHosts) Record(ctx context.Context, ip netsim.IPv4, flow netsim.FlowKey) (*flowrec.Record, bool) {
	url, ok := r.urls[ip]
	if !ok {
		return nil, false
	}
	rec, known, err := r.client.QueryRecord(ctx, url, flow)
	if err != nil || rec == nil {
		return nil, false
	}
	return rec, known
}
