package analyzer_test

import (
	"testing"

	"switchpointer/internal/analyzer"
	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/scenario"
	"switchpointer/internal/simtime"
)

func TestDirectory(t *testing.T) {
	ips := []netsim.IPv4{netsim.IP(10, 0, 0, 1), netsim.IP(10, 0, 0, 2), netsim.IP(10, 0, 0, 3)}
	dir, err := analyzer.BuildDirectory(ips)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Len() != 3 {
		t.Fatalf("Len = %d", dir.Len())
	}
	seen := map[int]bool{}
	for _, ip := range ips {
		idx := dir.IndexOf(ip)
		if idx < 0 || idx >= 3 || seen[idx] {
			t.Fatalf("bad index %d for %s", idx, ip)
		}
		seen[idx] = true
		if dir.IPAt(idx) != ip {
			t.Fatalf("inverse broken for %s", ip)
		}
	}
	if _, err := analyzer.BuildDirectory(nil); err == nil {
		t.Fatalf("empty directory accepted")
	}
}

// --- §5.1 Too much traffic: priority contention ---

func TestDiagnosePriorityContention(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(110 * simtime.Millisecond)

	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Fatalf("victim never triggered (alerts: %d)", len(tb.Alerts))
	}
	d := tb.Analyzer.DiagnoseContention(alert)
	if d.Kind != analyzer.KindPriorityContention {
		t.Fatalf("kind = %v (%s)", d.Kind, d.Conclusion)
	}
	// The culprits must be the burst flows: high priority, distinct dsts.
	if len(d.Culprits) == 0 || len(d.Culprits) > 4 {
		t.Fatalf("culprits = %d", len(d.Culprits))
	}
	for _, c := range d.Culprits {
		if c.Priority != scenario.PrioHigh {
			t.Fatalf("culprit %v priority %d", c.Flow, c.Priority)
		}
		if c.Flow.Proto != netsim.ProtoUDP {
			t.Fatalf("culprit %v not UDP", c.Flow)
		}
	}
	// Single contention point: the dumbbell's left switch only.
	if len(d.PerSwitch) != 1 {
		t.Fatalf("PerSwitch = %v (want contention at one switch)", d.PerSwitch)
	}
	// Timing: the paper debugs this in under 100 ms (Fig 7).
	if d.Total() > 100*simtime.Millisecond {
		t.Fatalf("debugging took %v", d.Total())
	}
	if d.Clock.PhaseTotal("pointer-retrieval") == 0 || d.Clock.PhaseTotal("diagnosis") == 0 {
		t.Fatalf("missing phases: %+v", d.Clock.Phases())
	}
	if d.HostsContacted == 0 || d.HostsContacted > 4 {
		t.Fatalf("HostsContacted = %d", d.HostsContacted)
	}
}

func TestDiagnoseMicroburst(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 4, Microburst: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(110 * simtime.Millisecond)
	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Skipf("FIFO burst did not trip the 50%% trigger in this configuration")
	}
	d := tb.Analyzer.DiagnoseContention(alert)
	if d.Kind != analyzer.KindMicroburst {
		t.Fatalf("kind = %v (%s)", d.Kind, d.Conclusion)
	}
}

// --- §5.2 Too many red lights ---

func TestDiagnoseRedLights(t *testing.T) {
	s, err := scenario.NewRedLights(scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(30 * simtime.Millisecond)

	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Fatalf("victim never triggered")
	}
	d := tb.Analyzer.DiagnoseContention(alert)
	if d.Kind != analyzer.KindRedLights {
		t.Fatalf("kind = %v (%s)", d.Kind, d.Conclusion)
	}
	// Both B→D (at S1) and C→E (at S2) must be identified.
	found := map[netsim.FlowKey]bool{}
	for _, c := range d.Culprits {
		found[c.Flow] = true
	}
	if !found[s.FlowBD] || !found[s.FlowCE] {
		t.Fatalf("culprits %v missing B-D or C-E", d.Culprits)
	}
	s1, s2 := tb.Switch("S1"), tb.Switch("S2")
	if len(d.PerSwitch[s1.NodeID()]) == 0 || len(d.PerSwitch[s2.NodeID()]) == 0 {
		t.Fatalf("spatial correlation missing: %v", d.PerSwitch)
	}
	// B-D must NOT be blamed at S2 (no shared egress there).
	for _, c := range d.PerSwitch[s2.NodeID()] {
		if c.Flow == s.FlowBD {
			t.Fatalf("B-D wrongly blamed at S2")
		}
	}
	// The paper's budget: ~30 ms end to end.
	if d.Total() > 60*simtime.Millisecond {
		t.Fatalf("red-lights diagnosis took %v", d.Total())
	}
}

// --- §5.3 Traffic cascades ---

func TestDiagnoseCascade(t *testing.T) {
	s, err := scenario.NewCascades(true, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(60 * simtime.Millisecond)

	alert, ok := tb.AlertFor(s.FlowCE)
	if !ok {
		t.Fatalf("C-E never triggered")
	}
	d := tb.Analyzer.DiagnoseCascade(alert)
	if d.Kind != analyzer.KindCascade {
		t.Fatalf("kind = %v (%s)", d.Kind, d.Conclusion)
	}
	if len(d.Cascade) != 3 {
		t.Fatalf("cascade chain = %v", d.Cascade)
	}
	if d.Cascade[0] != s.FlowCE || d.Cascade[1] != s.FlowAF || d.Cascade[2] != s.FlowBD {
		t.Fatalf("chain order wrong: %v", d.Cascade)
	}
	// The paper's budget: ~50 ms for the two-round diagnosis.
	if d.Total() > 100*simtime.Millisecond {
		t.Fatalf("cascade diagnosis took %v", d.Total())
	}
}

func TestNoCascadeBaseline(t *testing.T) {
	s, err := scenario.NewCascades(false, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(60 * simtime.Millisecond)
	// Without the S1 contention the C-E flow should not suffer a drop, or
	// at worst produce an inconclusive diagnosis with no cascade chain.
	if alert, ok := tb.AlertFor(s.FlowCE); ok {
		d := tb.Analyzer.DiagnoseCascade(alert)
		if d.Kind == analyzer.KindCascade {
			t.Fatalf("cascade diagnosed in the no-cascade baseline: %v", d.Cascade)
		}
	}
}

// --- §5.4 Load imbalance ---

func TestDiagnoseLoadImbalance(t *testing.T) {
	s, err := scenario.NewLoadImbalance(8, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(200 * simtime.Millisecond)

	// Query the most recent second of epochs.
	nowEpoch := tb.SwitchAgents[s.Suspect.NodeID()].LocalEpochAt(tb.Net.Now())
	window := simtime.EpochRange{Lo: nowEpoch - 99, Hi: nowEpoch}
	rep := tb.Analyzer.DiagnoseLoadImbalance(s.Suspect.NodeID(), window, tb.Net.Now())
	if !rep.Separated {
		t.Fatalf("separation not detected: %s (links=%v)", rep.Conclusion, rep.Links)
	}
	if len(rep.Links) != 2 {
		t.Fatalf("links = %d", len(rep.Links))
	}
	if rep.Boundary < 256<<10 || rep.Boundary > 4<<20 {
		t.Fatalf("boundary = %d, want near 1MB", rep.Boundary)
	}
	if rep.HostsContacted != 8 {
		t.Fatalf("HostsContacted = %d, want 8", rep.HostsContacted)
	}
}

// --- Fig 12: top-k, SwitchPointer vs PathDump ---

func TestTopKModes(t *testing.T) {
	s, err := scenario.NewTopKWorkload(4, 12, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(50 * simtime.Millisecond)

	window := simtime.EpochRange{Lo: 0, Hi: 10}
	sp := tb.Analyzer.TopK(s.Queried.NodeID(), 100, window, analyzer.ModeSwitchPointer, tb.Net.Now())
	pd := tb.Analyzer.TopK(s.Queried.NodeID(), 100, window, analyzer.ModePathDump, tb.Net.Now())

	// SwitchPointer contacts only hosts with relevant telemetry; PathDump
	// contacts everyone.
	if sp.HostsContacted > 6 {
		t.Fatalf("SwitchPointer contacted %d hosts", sp.HostsContacted)
	}
	if pd.HostsContacted != 14 { // 2 left + 12 right
		t.Fatalf("PathDump contacted %d hosts, want all 14", pd.HostsContacted)
	}
	if sp.Clock.Total() >= pd.Clock.Total() {
		t.Fatalf("SwitchPointer (%v) not faster than PathDump (%v)", sp.Clock.Total(), pd.Clock.Total())
	}
	// Same answer: the 4 relevant flows, sorted by bytes descending.
	if len(sp.Flows) != 4 || len(pd.Flows) != 4 {
		t.Fatalf("flows: sp=%d pd=%d", len(sp.Flows), len(pd.Flows))
	}
	for i := range sp.Flows {
		if sp.Flows[i].Flow != pd.Flows[i].Flow {
			t.Fatalf("mode answers differ at %d", i)
		}
		if i > 0 && sp.Flows[i].Bytes > sp.Flows[i-1].Bytes {
			t.Fatalf("not sorted")
		}
	}
}

// --- Pruning ablation ---

func TestPruningReducesContacts(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb := s.Testbed
	tb.Run(110 * simtime.Millisecond)
	alert, ok := tb.AlertFor(s.Victim)
	if !ok {
		t.Fatalf("no alert")
	}
	pruned := tb.Analyzer.DiagnoseContention(alert)
	tb.Analyzer.DisablePruning = true
	unpruned := tb.Analyzer.DiagnoseContention(alert)
	tb.Analyzer.DisablePruning = false
	if pruned.HostsContacted >= unpruned.HostsContacted {
		t.Fatalf("pruning did not reduce contacts: %d vs %d",
			pruned.HostsContacted, unpruned.HostsContacted)
	}
	if pruned.Kind != unpruned.Kind {
		t.Fatalf("pruning changed the diagnosis: %v vs %v", pruned.Kind, unpruned.Kind)
	}
}

func TestEmptyAlertInconclusive(t *testing.T) {
	s, err := scenario.NewTooMuchTraffic(scenario.TooMuchTrafficConfig{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Testbed.Analyzer.DiagnoseContention(hostagent.Alert{})
	if d.Kind != analyzer.KindInconclusive {
		t.Fatalf("kind = %v", d.Kind)
	}
}
