package analyzer

import (
	"sort"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
)

// TopKReport is the outcome of a distributed top-k query (§6.2, Fig 12).
type TopKReport struct {
	Switch netsim.NodeID
	Flows  []hostagent.FlowBytes
	// HostsContacted is the number of servers queried: with SwitchPointer
	// only those the switch's pointers name; with the PathDump baseline,
	// every server in the network.
	HostsContacted int
	Clock          *rpc.Clock
}

// TopKMode selects how the query locates telemetry.
type TopKMode uint8

// Query modes.
const (
	// ModeSwitchPointer contacts only the hosts named by the switch's
	// pointers for the window.
	ModeSwitchPointer TopKMode = iota
	// ModePathDump contacts every server (the baseline: "PathDump executes
	// the query from all the servers in the network").
	ModePathDump
)

// TopK runs the "top-k flows at a switch" query over the hosts' telemetry.
func (a *Analyzer) TopK(sw netsim.NodeID, k int, window simtime.EpochRange, mode TopKMode, at simtime.Time) *TopKReport {
	clock := rpc.NewClock(a.Cost, at)
	rep := &TopKReport{Switch: sw, Clock: clock}

	var hosts []netsim.IPv4
	switch mode {
	case ModePathDump:
		for _, h := range a.Topo.Hosts() {
			hosts = append(hosts, h.IP())
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	default:
		ag, ok := a.Switches[sw]
		if !ok {
			return rep
		}
		res := ag.PullPointers(window)
		clock.PointersPulled(1)
		hosts = a.Dir.Decode(res.Hosts)
	}
	rep.HostsContacted = len(hosts)

	merged := make(map[netsim.FlowKey]uint64)
	recCounts := make([]int, 0, len(hosts))
	for _, ip := range hosts {
		hostAg, ok := a.Hosts[ip]
		if !ok {
			recCounts = append(recCounts, 0)
			continue
		}
		top := hostAg.QueryTopK(sw, k)
		recCounts = append(recCounts, len(top))
		for _, fb := range top {
			if fb.Bytes > merged[fb.Flow] {
				merged[fb.Flow] = fb.Bytes
			}
		}
	}
	clock.HostsQueried("query-execution", hostNames(hosts), recCounts)

	rep.Flows = make([]hostagent.FlowBytes, 0, len(merged))
	for f, b := range merged {
		rep.Flows = append(rep.Flows, hostagent.FlowBytes{Flow: f, Bytes: b})
	}
	sort.Slice(rep.Flows, func(i, j int) bool {
		if rep.Flows[i].Bytes != rep.Flows[j].Bytes {
			return rep.Flows[i].Bytes > rep.Flows[j].Bytes
		}
		return rep.Flows[i].Flow.String() < rep.Flows[j].Flow.String()
	})
	if k > 0 && len(rep.Flows) > k {
		rep.Flows = rep.Flows[:k]
	}
	return rep
}
