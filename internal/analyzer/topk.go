package analyzer

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/trace"
)

// TopKMode selects how the query locates telemetry.
type TopKMode uint8

// Query modes.
const (
	// ModeSwitchPointer contacts only the hosts named by the switch's
	// pointers for the window.
	ModeSwitchPointer TopKMode = iota
	// ModePathDump contacts every server (the baseline: "PathDump executes
	// the query from all the servers in the network").
	ModePathDump
)

// TopK runs the "top-k flows at a switch" query without cancellation
// support. Unlike Run, it never returns nil: pre-Query semantics treated
// any non-positive k as "all flows", and invalid parameters yield an
// inconclusive report instead of an error.
//
// Deprecated: use Run with a TopKQuery.
//
//splint:noctx deprecated PR 1 shim; Run(ctx, TopKQuery{...}) is the ctx-aware path
func (a *Analyzer) TopK(sw netsim.NodeID, k int, window simtime.EpochRange, mode TopKMode, at simtime.Time) *Report {
	if k < 0 {
		k = 0
	}
	rep, err := a.Run(context.Background(), TopKQuery{Switch: sw, K: k, Window: window, Mode: mode, At: at})
	if rep == nil {
		rep = &Report{Switch: sw, Kind: KindInconclusive, Clock: rpc.NewClock(a.Cost, at),
			Conclusion: fmt.Sprintf("invalid query: %v", err)}
	}
	return rep
}

// topK runs the distributed top-k query (§6.2, Fig 12) over the hosts'
// telemetry, locating the relevant hosts per the query mode.
func (a *Analyzer) topK(ctx context.Context, q TopKQuery) (*Report, error) {
	clock := rpc.NewClock(a.Cost, q.At)
	clock.Trace(trace.FromContext(ctx))
	rep := &Report{Switch: q.Switch, Clock: clock, Kind: KindTopK}

	var hosts []netsim.IPv4
	switch q.Mode {
	case ModePathDump:
		for _, h := range a.Topo.Hosts() {
			hosts = append(hosts, h.IP())
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	default:
		var err error
		// The pointer pull parents under the pointer-retrieval span
		// charged on return.
		hosts, err = a.Dir.Hosts(clock.RemoteCtx(ctx), q.Switch, q.Window)
		if err != nil {
			rep.Kind = KindInconclusive
			if errors.Is(err, ErrUnknownSwitch) {
				rep.Conclusion = "unknown switch"
				return rep, err
			}
			return aborted(rep, ctx, err, "pointer retrieval")
		}
		clock.PointersPulled(1)
	}
	rep.HostsContacted = len(hosts)
	rep.Consulted = hosts

	// Per-host top-k queries run as one HostBackend round (fanned out over
	// the worker pool in both backends); each host fills its own answer slot
	// and the merge below runs in sorted host order, so the result is
	// identical for every worker count and backend.
	answers, dispatched, cerr := a.hostBackend().TopKRound(clock.RemoteCtx(ctx), a.workers(), hosts, q.Switch, q.K)
	merged := make(map[netsim.FlowKey]uint64)
	recCounts := make([]int, dispatched)
	for i := 0; i < dispatched; i++ {
		recCounts[i] = len(answers[i])
		for _, fb := range answers[i] {
			if fb.Bytes > merged[fb.Flow] {
				merged[fb.Flow] = fb.Bytes
			}
		}
	}
	if cerr != nil {
		// Keep the answers already merged: the caller paid for these host
		// queries and the partial Report must carry their data.
		chargePartial(rep, "query-execution", hosts, recCounts)
		rep.Flows = sortedFlows(merged, q.K)
		return cancelled(rep, ctx, "query execution")
	}
	clock.HostsQueried("query-execution", hostNames(hosts), recCounts)

	rep.Flows = sortedFlows(merged, q.K)
	rep.Conclusion = fmt.Sprintf("top-%d flows at switch %d via %d host(s)", q.K, q.Switch, rep.HostsContacted)
	return rep, nil
}

// sortedFlows orders merged per-host answers by bytes descending (flow key
// as the tie-break) and truncates to k when k > 0.
func sortedFlows(merged map[netsim.FlowKey]uint64, k int) []hostagent.FlowBytes {
	flows := make([]hostagent.FlowBytes, 0, len(merged))
	for f, b := range merged {
		flows = append(flows, hostagent.FlowBytes{Flow: f, Bytes: b})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Bytes != flows[j].Bytes {
			return flows[i].Bytes > flows[j].Bytes
		}
		return flows[i].Flow.String() < flows[j].Flow.String()
	})
	if k > 0 && len(flows) > k {
		flows = flows[:k]
	}
	return flows
}
