package analyzer

import (
	"context"
	"fmt"
	"strconv"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/trace"
)

// Query is one self-describing request the analyzer can execute through Run.
// The concrete types below cover the paper's five diagnosis procedures; the
// interface is sealed (the unexported method) so dispatch stays exhaustive.
type Query interface {
	// Name is the query's stable kind identifier.
	Name() string
	// validate rejects malformed parameters before any cost is charged.
	validate() error
}

// ContentionQuery debugs a throughput-drop or timeout alert: the §5.1
// "too much traffic" procedure (priority contention and microbursts).
type ContentionQuery struct {
	Alert hostagent.Alert
}

// Name implements Query.
func (ContentionQuery) Name() string { return "contention" }

func (ContentionQuery) validate() error { return nil }

// RedLightsQuery debugs accumulated per-switch degradation (§5.2): the same
// pull–prune–query–correlate machinery as ContentionQuery, with the outcome
// classified by spatial correlation across switches.
type RedLightsQuery struct {
	Alert hostagent.Alert
}

// Name implements Query.
func (RedLightsQuery) Name() string { return "red-lights" }

func (RedLightsQuery) validate() error { return nil }

// CascadeQuery chases causality backwards from an alert (§5.3), chaining
// contention rounds through flows that never raised alerts themselves.
type CascadeQuery struct {
	Alert hostagent.Alert
}

// Name implements Query.
func (CascadeQuery) Name() string { return "cascade" }

func (CascadeQuery) validate() error { return nil }

// ImbalanceQuery investigates uneven egress utilization at a switch (§5.4)
// over the given epoch window. At anchors the diagnosis clock in virtual
// time (usually the testbed's current time).
type ImbalanceQuery struct {
	Switch netsim.NodeID
	Window simtime.EpochRange
	At     simtime.Time
}

// Name implements Query.
func (ImbalanceQuery) Name() string { return "load-imbalance" }

func (q ImbalanceQuery) validate() error {
	if q.Window.Lo > q.Window.Hi {
		return fmt.Errorf("analyzer: imbalance query: inverted epoch window %v", q.Window)
	}
	return nil
}

// TopKQuery runs the distributed "top-k flows at a switch" query (§6.2,
// Fig 12), either through the pointer directory (ModeSwitchPointer) or
// against every server (ModePathDump, the baseline).
type TopKQuery struct {
	Switch netsim.NodeID
	K      int
	Window simtime.EpochRange
	Mode   TopKMode
	At     simtime.Time
}

// Name implements Query.
func (TopKQuery) Name() string { return "top-k" }

func (q TopKQuery) validate() error {
	if q.K < 0 {
		return fmt.Errorf("analyzer: top-k query: negative k %d", q.K)
	}
	if q.Window.Lo > q.Window.Hi {
		return fmt.Errorf("analyzer: top-k query: inverted epoch window %v", q.Window)
	}
	return nil
}

// Report is the unified envelope every query kind returns: outcome
// classification, culprits, result payloads, search-radius and cost
// accounting, the consulted-host set, and the virtual-time breakdown.
// Fields irrelevant to a query kind stay at their zero values.
type Report struct {
	// Query is the request this report answers (set by Run).
	Query Query
	// Kind classifies the outcome.
	Kind Kind
	// Alert is the triggering alert for alert-driven queries.
	Alert hostagent.Alert
	// Switch is the interrogated switch for switch-driven queries
	// (load imbalance, top-k).
	Switch netsim.NodeID

	// Culprits across all switches, highest impact first.
	Culprits []Culprit
	// PerSwitch groups culprits by the switch where they contended with the
	// victim (the red-lights spatial correlation).
	PerSwitch map[netsim.NodeID][]Culprit
	// Cascade is the causality chain for traffic-cascade outcomes: element
	// i+1 delayed element i; element 0 is the original victim.
	Cascade []netsim.FlowKey

	// Links holds the per-egress-interface flow-size distributions of a
	// load-imbalance investigation.
	Links []LinkDistribution
	// Separated is true when the per-link distributions split cleanly by
	// flow size; Boundary is a size threshold witnessing the separation.
	Separated bool
	Boundary  uint64

	// Flows is the merged top-k answer.
	Flows []hostagent.FlowBytes

	// Search-radius accounting.
	PointerHosts   int // hosts named by the pulled pointers
	PrunedHosts    int // dropped by topology pruning
	HostsContacted int
	// Consulted is the set of end hosts actually queried, sorted.
	Consulted []netsim.IPv4
	// ColdSegments counts flushed segments hosts decoded to answer epoch
	// windows that had aged out of their hot sets (cold read-back). Zero for
	// a diagnosis answered entirely from resident telemetry; when non-zero,
	// the Clock carries the matching extra "cold-read-back" round.
	ColdSegments int
	// ColdSkippedByIndex counts epoch-overlapping cold segments the hosts'
	// manifest indexes excluded without decoding — the archive the diagnosis
	// did NOT have to pay for.
	ColdSkippedByIndex int
	// TieredSegments counts cold segments whose manifests matched but whose
	// payloads were tiered out of cold storage: history the report honestly
	// does not include.
	TieredSegments int

	// Clock carries the virtual-time cost breakdown (Fig 7). It is always
	// non-nil, and holds the partial cost when the query was cancelled.
	Clock *rpc.Clock

	// TraceID identifies the diagnosis trace; Trace is the analyzer-side
	// span tree (root + one span per charged phase). Both stay zero when
	// tracing is disabled.
	TraceID string
	Trace   *trace.Trace

	Conclusion string
}

// Total returns the end-to-end debugging time.
func (r *Report) Total() simtime.Time { return r.Clock.Total() }

// Compatibility aliases from the pre-Query API: all three result types are
// now the one Report envelope.
//
// Deprecated: use Report.
type (
	Diagnosis       = Report
	ImbalanceReport = Report
	TopKReport      = Report
)

// TraceID derives the deterministic trace ID of a query purely from its
// parameters, so the same query yields the same ID whether it runs
// in-memory, over loopback HTTP, or against a real spd trio — which is what
// lets cluster merge the per-role flight-recorder trees.
func TraceID(q Query) string {
	switch q := q.(type) {
	case ContentionQuery:
		return alertTraceID(q.Name(), q.Alert)
	case *ContentionQuery:
		return alertTraceID(q.Name(), q.Alert)
	case RedLightsQuery:
		return alertTraceID(q.Name(), q.Alert)
	case *RedLightsQuery:
		return alertTraceID(q.Name(), q.Alert)
	case CascadeQuery:
		return alertTraceID(q.Name(), q.Alert)
	case *CascadeQuery:
		return alertTraceID(q.Name(), q.Alert)
	case ImbalanceQuery:
		return imbalanceTraceID(q)
	case *ImbalanceQuery:
		return imbalanceTraceID(*q)
	case TopKQuery:
		return topkTraceID(q)
	case *TopKQuery:
		return topkTraceID(*q)
	default:
		return ""
	}
}

func alertTraceID(kind string, a hostagent.Alert) string {
	return trace.NewID(kind, a.Flow.String(),
		strconv.FormatInt(int64(a.DetectedAt), 10), a.Kind.String(), a.Host.String())
}

func imbalanceTraceID(q ImbalanceQuery) string {
	return trace.NewID(q.Name(), strconv.Itoa(int(q.Switch)),
		strconv.FormatInt(int64(q.Window.Lo), 10), strconv.FormatInt(int64(q.Window.Hi), 10),
		strconv.FormatInt(int64(q.At), 10))
}

func topkTraceID(q TopKQuery) string {
	return trace.NewID(q.Name(), strconv.Itoa(int(q.Switch)), strconv.Itoa(q.K),
		strconv.FormatInt(int64(q.Window.Lo), 10), strconv.FormatInt(int64(q.Window.Hi), 10),
		strconv.Itoa(int(q.Mode)), strconv.FormatInt(int64(q.At), 10))
}

// QueryStart returns the virtual time a query's diagnosis clock anchors at:
// the alert's detection time for alert-driven kinds, the query's At for
// switch-driven ones.
func QueryStart(q Query) simtime.Time {
	switch q := q.(type) {
	case ContentionQuery:
		return q.Alert.DetectedAt
	case *ContentionQuery:
		return q.Alert.DetectedAt
	case RedLightsQuery:
		return q.Alert.DetectedAt
	case *RedLightsQuery:
		return q.Alert.DetectedAt
	case CascadeQuery:
		return q.Alert.DetectedAt
	case *CascadeQuery:
		return q.Alert.DetectedAt
	case ImbalanceQuery:
		return q.At
	case *ImbalanceQuery:
		return q.At
	case TopKQuery:
		return q.At
	case *TopKQuery:
		return q.At
	default:
		return 0
	}
}

// Run executes a query, honouring ctx cancellation and deadlines at every
// phase boundary and host contact. On cancellation it returns the partial
// Report built so far — with the cost actually incurred on its Clock —
// together with ctx.Err(). A nil error means the query ran to completion.
//
// Tracing: unless DisableTracing is set, Run adopts the trace.Recorder on
// ctx (installed by the admission controller) or mints one with the query's
// deterministic TraceID, and every charged clock phase becomes a span; the
// finished trace rides on Report.Trace. Cancellation still closes the trace
// — its spans are exactly the charged (dispatched-prefix) phases.
func (a *Analyzer) Run(ctx context.Context, q Query) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return nil, fmt.Errorf("analyzer: nil query")
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	if !a.DisableTracing {
		rec = trace.FromContext(ctx)
		if rec == nil {
			rec = trace.NewRecorder(TraceID(q), "analyzer", q.Name())
			ctx = trace.NewContext(ctx, rec)
		}
	}
	var (
		rep *Report
		err error
	)
	switch q := q.(type) {
	case ContentionQuery:
		rep, err = a.diagnoseContention(ctx, q.Alert)
	case *ContentionQuery:
		rep, err = a.diagnoseContention(ctx, q.Alert)
	case RedLightsQuery:
		rep, err = a.diagnoseContention(ctx, q.Alert)
	case *RedLightsQuery:
		rep, err = a.diagnoseContention(ctx, q.Alert)
	case CascadeQuery:
		rep, err = a.diagnoseCascade(ctx, q.Alert)
	case *CascadeQuery:
		rep, err = a.diagnoseCascade(ctx, q.Alert)
	case ImbalanceQuery:
		rep, err = a.diagnoseImbalance(ctx, q)
	case *ImbalanceQuery:
		rep, err = a.diagnoseImbalance(ctx, *q)
	case TopKQuery:
		rep, err = a.topK(ctx, q)
	case *TopKQuery:
		rep, err = a.topK(ctx, *q)
	default:
		return nil, fmt.Errorf("analyzer: unknown query type %T", q)
	}
	rep.Query = q
	if rec != nil && rep != nil {
		rec.Finish(rep.Clock.Now())
		t := rec.Trace()
		rep.TraceID = rec.ID()
		rep.Trace = &t
	}
	return rep, err
}

// cancelled marks a report as cut short by ctx and returns it with the
// context's error. Call only from a checkpoint where ctx.Err() is non-nil.
func cancelled(rep *Report, ctx context.Context, during string) (*Report, error) {
	err := ctx.Err()
	rep.Conclusion = fmt.Sprintf("query cancelled during %s: %v", during, err)
	return rep, err
}

// chargePartial truncates the consulted set to the hosts actually queried
// before a mid-query cancellation and charges them to the clock, so the
// partial Report carries exactly the cost incurred.
func chargePartial(rep *Report, phase string, hosts []netsim.IPv4, recCounts []int) {
	rep.Consulted = hosts[:len(recCounts)]
	rep.HostsContacted = len(recCounts)
	rep.Clock.HostsQueried(phase, hostNames(rep.Consulted), recCounts)
}

// aborted marks a report as cut short by either ctx or a backend failure,
// whichever actually happened, and returns the corresponding error so a
// failed directory backend is never misreported as a clean completion.
func aborted(rep *Report, ctx context.Context, err error, during string) (*Report, error) {
	if ctx.Err() != nil {
		return cancelled(rep, ctx, during)
	}
	rep.Conclusion = fmt.Sprintf("%s failed: %v", during, err)
	return rep, err
}
