package analyzer

import (
	"context"
	"fmt"
	"sort"

	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
)

// RemoteDirectory is the Directory backend for a real deployment: it owns
// the cluster-wide minimal perfect hash locally (the analyzer builds it) and
// reaches switch agents over their JSON/HTTP binding (rpc.NewSwitchHandler)
// instead of in-process calls. Pointer pulls — batched or single — and MPH
// distribution all travel the wire.
//
// HostsBatch is the reason this backend exists: against remote switches, the
// per-tuple sequential pulls the analyzer used to issue each cost a full
// network round trip, while the batch fans all of an alert's pulls out
// concurrently (rpc.FanOut) so the alert pays one round-trip time
// regardless of path length.
//
// Concurrency: all query methods are safe for concurrent use — the
// underlying rpc.HTTPClient is goroutine-safe and rpc.NewSwitchHandler
// serializes access to its (not concurrency-safe) switch agent on the
// server side. Distribute follows the Directory contract (serialized
// against queries by the caller).
type RemoteDirectory struct {
	hostIndex
	urls   map[netsim.NodeID]string // switch → base URL
	client *rpc.HTTPClient

	// Workers bounds the per-batch pull fan-out; zero selects
	// rpc.DefaultFanOutWorkers.
	Workers int
}

var _ Directory = (*RemoteDirectory)(nil)

// NewRemoteDirectory constructs the MPH over the given end-host IPs and
// binds it to switch agents served at the given base URLs. client may be
// nil, in which case a pooled client (keep-alive transport) is used — the
// right default, since directory pulls repeat against the same switches.
func NewRemoteDirectory(ips []netsim.IPv4, switchURLs map[netsim.NodeID]string, client *rpc.HTTPClient) (*RemoteDirectory, error) {
	idx, err := newHostIndex(ips)
	if err != nil {
		return nil, err
	}
	if client == nil {
		client = rpc.NewPooledHTTPClient()
	}
	return &RemoteDirectory{hostIndex: idx, urls: switchURLs, client: client}, nil
}

// Hosts pulls one switch's pointers over HTTP and decodes them.
func (d *RemoteDirectory) Hosts(ctx context.Context, sw netsim.NodeID, epochs simtime.EpochRange) ([]netsim.IPv4, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	url, ok := d.urls[sw]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownSwitch, sw)
	}
	bits, _, err := d.client.PullPointers(ctx, url, epochs)
	if err != nil {
		return nil, fmt.Errorf("analyzer: remote pull from %d: %w", sw, err)
	}
	return d.Decode(bits), nil
}

// HostsBatch pulls every requested switch concurrently in one round trip's
// wall-clock time. Slots fail independently: an unknown switch or a dead
// agent never aborts the other pulls.
func (d *RemoteDirectory) HostsBatch(ctx context.Context, reqs []SwitchEpochs) ([][]netsim.IPv4, []error) {
	hosts := make([][]netsim.IPv4, len(reqs))
	errs := fanOutSlots(ctx, d.Workers, len(reqs), func(ctx context.Context, i int) error {
		url, ok := d.urls[reqs[i].Switch]
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownSwitch, reqs[i].Switch)
		}
		bits, _, err := d.client.PullPointers(ctx, url, reqs[i].Epochs)
		if err != nil {
			return fmt.Errorf("analyzer: remote pull from %d: %w", reqs[i].Switch, err)
		}
		hosts[i] = d.Decode(bits)
		return nil
	})
	return hosts, errs
}

// Distribute pushes the directory's hash table to every switch over HTTP,
// concurrently, honouring ctx. It returns the first failure in switch-ID
// order (all dispatched switches are attempted either way).
func (d *RemoteDirectory) Distribute(ctx context.Context) error {
	sws := make([]netsim.NodeID, 0, len(d.urls))
	for sw := range d.urls {
		sws = append(sws, sw)
	}
	sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	errs := fanOutSlots(ctx, d.Workers, len(sws), func(ctx context.Context, i int) error {
		if err := d.client.InstallMPH(ctx, d.urls[sws[i]], d.table); err != nil {
			return fmt.Errorf("analyzer: distribute to %d: %w", sws[i], err)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
