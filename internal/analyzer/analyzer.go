package analyzer

import (
	"fmt"
	"sort"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/switchagent"
	"switchpointer/internal/topo"
)

// Analyzer coordinates switch agents and host agents to debug network
// events. It can be colocated with an end host or run on a separate
// controller; here it holds direct references to the simulated agents and a
// virtual-time cost model standing in for the flask RPC fabric.
type Analyzer struct {
	Topo     *topo.Topology
	Dir      *Directory
	Switches map[netsim.NodeID]*switchagent.Agent
	Hosts    map[netsim.IPv4]*hostagent.Agent
	Cost     rpc.CostModel

	// DisablePruning turns off the §4.3 search-radius reduction (ablation).
	DisablePruning bool
	// DetectionLatency is the trigger granularity charged as the
	// "problem detection" phase (paper: <1 ms; 3–4 ms for microbursts).
	DetectionLatency simtime.Time
}

// New assembles an analyzer over the given agents.
func New(tp *topo.Topology, dir *Directory, sws map[netsim.NodeID]*switchagent.Agent,
	hosts map[netsim.IPv4]*hostagent.Agent, cost rpc.CostModel) *Analyzer {
	return &Analyzer{
		Topo:             tp,
		Dir:              dir,
		Switches:         sws,
		Hosts:            hosts,
		Cost:             cost,
		DetectionLatency: simtime.Millisecond,
	}
}

// DistributeMPH installs the directory's hash table on every switch (§4.3).
func (a *Analyzer) DistributeMPH() {
	for _, sw := range a.Switches {
		sw.InstallMPH(a.Dir.Table())
	}
}

// Culprit is one flow found to have contended with the victim.
type Culprit struct {
	Flow     netsim.FlowKey
	Priority uint8
	// Bytes the culprit carried during the victim's epoch window (exact at
	// the culprit's tagging switch).
	Bytes uint64
	// Switch where the contention was established.
	Switch netsim.NodeID
	// Host whose telemetry store produced the record.
	Host netsim.IPv4
	// Overlap is the epoch range shared with the victim at Switch.
	Overlap simtime.EpochRange
}

// Kind classifies a diagnosis outcome.
type Kind string

// Diagnosis kinds.
const (
	KindPriorityContention Kind = "priority-contention"
	KindMicroburst         Kind = "microburst-contention"
	KindRedLights          Kind = "too-many-red-lights"
	KindCascade            Kind = "traffic-cascade"
	KindLoadImbalance      Kind = "load-imbalance"
	KindInconclusive       Kind = "inconclusive"
)

// Diagnosis is the analyzer's answer for one alert.
type Diagnosis struct {
	Alert hostagent.Alert
	Kind  Kind
	// Culprits across all switches, highest impact first.
	Culprits []Culprit
	// PerSwitch groups culprits by the switch where they contended with the
	// victim (the red-lights spatial correlation).
	PerSwitch map[netsim.NodeID][]Culprit

	// Cascade is the causality chain for traffic-cascade diagnoses: element
	// i+1 delayed element i; element 0 is the original victim.
	Cascade []netsim.FlowKey

	// Search-radius accounting.
	PointerHosts   int // hosts named by the pulled pointers
	PrunedHosts    int // dropped by topology pruning
	HostsContacted int

	// Timing breakdown in virtual time (Fig 7): detection, alert,
	// pointer-retrieval, diagnosis.
	Clock *rpc.Clock

	Conclusion string
}

// Total returns the end-to-end debugging time.
func (d *Diagnosis) Total() simtime.Time { return d.Clock.Total() }

// hostNames returns stable server identifiers for cost accounting.
func hostNames(ips []netsim.IPv4) []string {
	out := make([]string, len(ips))
	for i, ip := range ips {
		out[i] = ip.String()
	}
	return out
}

// pullCandidates retrieves and decodes pointers for every (switch, epochs)
// tuple, returning per-switch candidate destination sets.
func (a *Analyzer) pullCandidates(clock *rpc.Clock, tuples []hostagent.AlertTuple) map[netsim.NodeID][]netsim.IPv4 {
	out := make(map[netsim.NodeID][]netsim.IPv4, len(tuples))
	pulled := 0
	for _, tup := range tuples {
		ag, ok := a.Switches[tup.Switch]
		if !ok {
			continue
		}
		res := ag.PullPointers(tup.Epochs)
		out[tup.Switch] = a.Dir.Decode(res.Hosts)
		pulled++
	}
	clock.PointersPulled(pulled)
	return out
}

// pruneForVictim applies the search-radius reduction: a candidate host is
// relevant at switch sw only if traffic to it can share an egress port (an
// output queue) with the victim flow there, and it is not the victim's own
// destination.
func (a *Analyzer) pruneForVictim(sw netsim.NodeID, victim netsim.FlowKey, cands []netsim.IPv4) (kept, pruned []netsim.IPv4) {
	node, _ := a.Topo.Net.NodeByID(sw)
	swNode, ok := node.(*netsim.Switch)
	if !ok {
		return cands, nil
	}
	victimPorts := portSet(a.Topo.EgressPortsToward(swNode, victim.Dst))
	for _, ip := range cands {
		if ip == victim.Dst {
			continue // the victim's own telemetry, already in hand
		}
		if a.DisablePruning {
			kept = append(kept, ip)
			continue
		}
		shared := false
		for _, p := range a.Topo.EgressPortsToward(swNode, ip) {
			if victimPorts[p] {
				shared = true
				break
			}
		}
		if shared {
			kept = append(kept, ip)
		} else {
			pruned = append(pruned, ip)
		}
	}
	return kept, pruned
}

// sharesEgress reports whether traffic to a and traffic to b can leave
// switch sw through a common output port — the precondition for the two
// flows to have contended in the same queue there.
func (a *Analyzer) sharesEgress(sw netsim.NodeID, dstA, dstB netsim.IPv4) bool {
	node, _ := a.Topo.Net.NodeByID(sw)
	swNode, ok := node.(*netsim.Switch)
	if !ok {
		return false
	}
	pa := portSet(a.Topo.EgressPortsToward(swNode, dstA))
	for _, p := range a.Topo.EgressPortsToward(swNode, dstB) {
		if pa[p] {
			return true
		}
	}
	return false
}

func portSet(ports []int) map[int]bool {
	m := make(map[int]bool, len(ports))
	for _, p := range ports {
		m[p] = true
	}
	return m
}

// dedupIPs merges per-switch candidate lists into one sorted unique list.
func dedupIPs(lists ...[]netsim.IPv4) []netsim.IPv4 {
	seen := make(map[netsim.IPv4]bool)
	var out []netsim.IPv4
	for _, l := range lists {
		for _, ip := range l {
			if !seen[ip] {
				seen[ip] = true
				out = append(out, ip)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (a *Analyzer) String() string {
	return fmt.Sprintf("analyzer(%d switches, %d hosts)", len(a.Switches), len(a.Hosts))
}
