package analyzer

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"switchpointer/internal/hostagent"
	"switchpointer/internal/netsim"
	"switchpointer/internal/rpc"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

// Analyzer coordinates the pointer directory and host agents to debug
// network events. It can be colocated with an end host or run on a separate
// controller. All switch pointer state is reached through the Directory
// backend, all host telemetry through the HostBackend seam (in-memory by
// default, HTTP via RemoteHosts); communication costs are charged to a
// virtual-time cost model standing in for the flask RPC fabric.
//
// # Concurrency and admission
//
// Run is safe for any number of concurrent calls over one Analyzer: both
// backends are required to support concurrent rounds, host stores are
// sharded, and the in-memory directory serializes per-switch pulls. The
// analyzer itself imposes no concurrency bound — in a deployment, wrap it
// in cluster.Admission (what `spd analyzer` serves), which bounds in-flight
// Runs, queues overflow FIFO with per-alert-kind priority, and fails
// queued/expired queries with typed errors. Fields must not be mutated
// while Runs are in flight.
type Analyzer struct {
	Topo  *topo.Topology
	Dir   Directory
	Hosts map[netsim.IPv4]*hostagent.Agent
	Cost  rpc.CostModel

	// HostBack, when set, routes every per-host interaction of the
	// diagnosis procedures through the given backend instead of the
	// in-process Hosts map — the host-side twin of the Directory seam. Nil
	// selects MemoryHosts over Hosts (the default, byte-identical to the
	// pre-seam direct agent calls); RemoteHosts runs the same rounds over
	// the JSON/HTTP binding so a whole diagnosis travels the wire.
	HostBack HostBackend

	// DisablePruning turns off the §4.3 search-radius reduction (ablation).
	DisablePruning bool
	// DetectionLatency is the trigger granularity charged as the
	// "problem detection" phase (paper: <1 ms; 3–4 ms for microbursts).
	DetectionLatency simtime.Time

	// Workers bounds the concurrent per-host query fan-out of every
	// diagnosis procedure. Zero selects rpc.DefaultFanOutWorkers; one
	// reproduces the fully sequential pre-fan-out behaviour. Results are
	// byte-identical for every worker count: per-host answers are merged in
	// sorted host order regardless of completion order (see rpc.FanOut).
	Workers int

	// DisableTracing turns off the per-query span recorder (the untraced
	// arm of BenchmarkTraceOverhead). Tracing never alters clock charges,
	// so every virtual-time metric is byte-identical either way.
	DisableTracing bool
}

// DefaultWorkers, when positive, sets the fan-out width for analyzers whose
// Workers field is zero. It exists as a package-level seam so harnesses that
// build testbeds indirectly (the experiment regenerators, determinism tests)
// can pin the worker count without threading it through every constructor;
// zero defers to rpc.DefaultFanOutWorkers.
var DefaultWorkers int

// workers resolves the effective fan-out width (0 = rpc default).
func (a *Analyzer) workers() int {
	if a.Workers > 0 {
		return a.Workers
	}
	return DefaultWorkers
}

// New assembles an analyzer over the given directory backend and host agents.
func New(tp *topo.Topology, dir Directory, hosts map[netsim.IPv4]*hostagent.Agent, cost rpc.CostModel) *Analyzer {
	return &Analyzer{
		Topo:             tp,
		Dir:              dir,
		Hosts:            hosts,
		Cost:             cost,
		DetectionLatency: simtime.Millisecond,
	}
}

// DistributeMPH installs the directory's hash table on every switch (§4.3).
//
// Deprecated: call Dir.Distribute directly.
//
//splint:noctx deprecated PR 1 shim; Dir.Distribute(ctx) is the ctx-aware path
func (a *Analyzer) DistributeMPH() { _ = a.Dir.Distribute(context.Background()) }

// Culprit is one flow found to have contended with the victim.
type Culprit struct {
	Flow     netsim.FlowKey
	Priority uint8
	// Bytes the culprit carried during the victim's epoch window (exact at
	// the culprit's tagging switch).
	Bytes uint64
	// Switch where the contention was established.
	Switch netsim.NodeID
	// Host whose telemetry store produced the record.
	Host netsim.IPv4
	// Overlap is the epoch range shared with the victim at Switch.
	Overlap simtime.EpochRange
}

// Kind classifies a query outcome.
type Kind string

// Outcome kinds.
const (
	KindPriorityContention Kind = "priority-contention"
	KindMicroburst         Kind = "microburst-contention"
	KindRedLights          Kind = "too-many-red-lights"
	KindCascade            Kind = "traffic-cascade"
	KindLoadImbalance      Kind = "load-imbalance"
	KindTopK               Kind = "top-k"
	KindInconclusive       Kind = "inconclusive"
)

// hostNames returns stable server identifiers for cost accounting.
func hostNames(ips []netsim.IPv4) []string {
	out := make([]string, len(ips))
	for i, ip := range ips {
		out[i] = ip.String()
	}
	return out
}

// pullCandidates retrieves and decodes pointers for every (switch, epochs)
// tuple in ONE batched round through the directory backend
// (Directory.HostsBatch, which fans the per-switch pulls out over
// rpc.FanOut), returning per-switch candidate destination sets. Unknown
// switches are skipped; the first ctx error or backend failure is returned
// together with the partial result. The pulls that actually completed are
// charged to the clock either way, as a single round — so an alert costs
// one pointer round trip regardless of path length (asserted via
// rpc.Clock.PointerRounds).
func (a *Analyzer) pullCandidates(ctx context.Context, clock *rpc.Clock, tuples []hostagent.AlertTuple) (map[netsim.NodeID][]netsim.IPv4, error) {
	// Pointer pulls issued now parent under the pointer-retrieval span
	// charged right after the batch returns.
	ctx = clock.RemoteCtx(ctx)
	reqs := make([]SwitchEpochs, len(tuples))
	for i, tup := range tuples {
		reqs[i] = SwitchEpochs{Switch: tup.Switch, Epochs: tup.Epochs}
	}
	hosts, errs := a.Dir.HostsBatch(ctx, reqs)
	out := make(map[netsim.NodeID][]netsim.IPv4, len(tuples))
	pulled := 0
	var firstErr error
	for i := range reqs {
		if err := errs[i]; err != nil {
			if errors.Is(err, ErrUnknownSwitch) {
				continue // skip the tuple, as before
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[reqs[i].Switch] = hosts[i]
		pulled++
	}
	clock.PointersPulled(pulled)
	return out, firstErr
}

// pruneForVictim applies the search-radius reduction: a candidate host is
// relevant at switch sw only if traffic to it can share an egress port (an
// output queue) with the victim flow there, and it is not the victim's own
// destination.
func (a *Analyzer) pruneForVictim(sw netsim.NodeID, victim netsim.FlowKey, cands []netsim.IPv4) (kept, pruned []netsim.IPv4) {
	node, _ := a.Topo.Net.NodeByID(sw)
	swNode, ok := node.(*netsim.Switch)
	if !ok {
		return cands, nil
	}
	victimPorts := portSet(a.Topo.EgressPortsToward(swNode, victim.Dst))
	for _, ip := range cands {
		if ip == victim.Dst {
			continue // the victim's own telemetry, already in hand
		}
		if a.DisablePruning {
			kept = append(kept, ip)
			continue
		}
		shared := false
		for _, p := range a.Topo.EgressPortsToward(swNode, ip) {
			if victimPorts[p] {
				shared = true
				break
			}
		}
		if shared {
			kept = append(kept, ip)
		} else {
			pruned = append(pruned, ip)
		}
	}
	return kept, pruned
}

// sharesEgress reports whether traffic to a and traffic to b can leave
// switch sw through a common output port — the precondition for the two
// flows to have contended in the same queue there.
func (a *Analyzer) sharesEgress(sw netsim.NodeID, dstA, dstB netsim.IPv4) bool {
	node, _ := a.Topo.Net.NodeByID(sw)
	swNode, ok := node.(*netsim.Switch)
	if !ok {
		return false
	}
	pa := portSet(a.Topo.EgressPortsToward(swNode, dstA))
	for _, p := range a.Topo.EgressPortsToward(swNode, dstB) {
		if pa[p] {
			return true
		}
	}
	return false
}

func portSet(ports []int) map[int]bool {
	m := make(map[int]bool, len(ports))
	for _, p := range ports {
		m[p] = true
	}
	return m
}

// dedupIPs merges per-switch candidate lists into one sorted unique list.
func dedupIPs(lists ...[]netsim.IPv4) []netsim.IPv4 {
	seen := make(map[netsim.IPv4]bool)
	var out []netsim.IPv4
	for _, l := range lists {
		for _, ip := range l {
			if !seen[ip] {
				seen[ip] = true
				out = append(out, ip)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (a *Analyzer) String() string {
	return fmt.Sprintf("analyzer(%d directory hosts, %d agents)", a.Dir.Len(), len(a.Hosts))
}
