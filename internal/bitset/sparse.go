package bitset

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Sparse is a sorted-index set over a fixed universe [0, n): the
// occupancy-proportional container behind the pointer plane's adaptive slot
// backend. Where Set spends n/8 bytes regardless of membership, Sparse
// spends 4 bytes per member — the right trade below ~n/32 members, which is
// exactly the regime a switch's per-epoch pointer slots live in when only a
// small fraction of the datacenter's hosts are active.
//
// Indices are kept sorted and unique, so iteration order, Equal, and the
// binary encoding are all deterministic functions of the membership.
type Sparse struct {
	n   int
	idx []uint32 // sorted, unique
}

// NewSparse returns an empty Sparse set over the universe [0, n).
func NewSparse(n int) *Sparse {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Sparse{n: n}
}

// Len returns the universe size n.
func (s *Sparse) Len() int { return s.n }

// Count returns the number of members.
func (s *Sparse) Count() int { return len(s.idx) }

// Add inserts i, keeping the index list sorted and unique. It panics if i is
// out of range. Cost is O(log c) to locate plus O(c) to shift on a true
// insert (c = occupancy), and O(log c) for the common already-present case.
func (s *Sparse) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Add(%d) out of range [0,%d)", i, s.n))
	}
	v := uint32(i)
	p := sort.Search(len(s.idx), func(j int) bool { return s.idx[j] >= v })
	if p < len(s.idx) && s.idx[p] == v {
		return
	}
	s.idx = append(s.idx, 0)
	copy(s.idx[p+1:], s.idx[p:])
	s.idx[p] = v
}

// Has reports whether i is a member. It panics if i is out of range.
func (s *Sparse) Has(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Has(%d) out of range [0,%d)", i, s.n))
	}
	v := uint32(i)
	p := sort.Search(len(s.idx), func(j int) bool { return s.idx[j] >= v })
	return p < len(s.idx) && s.idx[p] == v
}

// Reset empties the set, keeping the index capacity for reuse — the
// O(occupancy) slot-recycle operation (truncation; no per-universe work).
func (s *Sparse) Reset() { s.idx = s.idx[:0] }

// ForEach calls fn for every member in ascending order, stopping early if fn
// returns false.
func (s *Sparse) ForEach(fn func(i int) bool) {
	for _, v := range s.idx {
		if !fn(int(v)) {
			return
		}
	}
}

// AddTo sets every member's bit in dst, which must span the same universe.
func (s *Sparse) AddTo(dst *Set) {
	if dst.Len() != s.n {
		panic("bitset: AddTo size mismatch")
	}
	for _, v := range s.idx {
		dst.Set(int(v))
	}
}

// Clone returns a deep copy of s.
func (s *Sparse) Clone() *Sparse {
	c := &Sparse{n: s.n, idx: make([]uint32, len(s.idx))}
	copy(c.idx, s.idx)
	return c
}

// Equal reports whether s and o hold identical membership over the same
// universe.
func (s *Sparse) Equal(o *Sparse) bool {
	if s.n != o.n || len(s.idx) != len(o.idx) {
		return false
	}
	for i, v := range s.idx {
		if o.idx[i] != v {
			return false
		}
	}
	return true
}

// MemoryBytes returns the resident size of the index storage in bytes
// (capacity, not length: a recycled slot keeps its buffer).
func (s *Sparse) MemoryBytes() int { return cap(s.idx) * 4 }

// MarshalBinary encodes the set deterministically: 8 bytes of universe size,
// 8 bytes of member count, then each member as 4 little-endian bytes in
// ascending order. It never returns an error.
func (s *Sparse) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 16+len(s.idx)*4)
	binary.LittleEndian.PutUint64(buf, uint64(s.n))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(s.idx)))
	for i, v := range s.idx {
		binary.LittleEndian.PutUint32(buf[16+i*4:], v)
	}
	return buf, nil
}

// UnmarshalBinary decodes a set previously encoded with MarshalBinary,
// rejecting truncated payloads and out-of-order or out-of-range indices.
func (s *Sparse) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("bitset: sparse: truncated header (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint64(data))
	c := int(binary.LittleEndian.Uint64(data[8:]))
	if n < 0 || c < 0 || len(data) != 16+c*4 {
		return fmt.Errorf("bitset: sparse: size %d count %d needs %d payload bytes, have %d", n, c, c*4, len(data)-16)
	}
	idx := make([]uint32, c)
	for i := range idx {
		v := binary.LittleEndian.Uint32(data[16+i*4:])
		if int(v) >= n {
			return fmt.Errorf("bitset: sparse: index %d out of range [0,%d)", v, n)
		}
		if i > 0 && v <= idx[i-1] {
			return fmt.Errorf("bitset: sparse: indices not strictly ascending at %d", i)
		}
		idx[i] = v
	}
	s.n = n
	s.idx = idx
	return nil
}
