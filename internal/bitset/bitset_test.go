package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSetGetClear(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 7 {
		t.Fatalf("Clear failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set":   func() { s.Set(10) },
		"Get":   func() { s.Get(-1) },
		"Clear": func() { s.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestResetAndAny(t *testing.T) {
	s := New(100)
	if s.Any() {
		t.Fatalf("fresh set should have Any == false")
	}
	s.Set(99)
	if !s.Any() {
		t.Fatalf("Any should be true")
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatalf("Reset did not clear")
	}
	if s.Len() != 100 {
		t.Fatalf("Reset changed Len")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(200), New(200)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(150)
	u := a.Clone()
	u.UnionWith(b)
	if !u.Get(1) || !u.Get(100) || !u.Get(150) || u.Count() != 3 {
		t.Fatalf("union wrong: %v", u.Indices())
	}
	i := a.Clone()
	i.IntersectWith(b)
	if i.Count() != 1 || !i.Get(100) {
		t.Fatalf("intersect wrong: %v", i.Indices())
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on size mismatch")
		}
	}()
	New(64).UnionWith(New(65))
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Fatalf("Clone aliases original")
	}
	if !c.Get(5) {
		t.Fatalf("Clone lost bits")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(64), New(64)
	b.Set(10)
	a.Set(20)
	a.CopyFrom(b)
	if !a.Get(10) || a.Get(20) {
		t.Fatalf("CopyFrom wrong")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(300)
	want := []int{2, 64, 65, 191, 299}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	n := 0
	s.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach early stop visited %d", n)
	}
}

func TestEqual(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(7)
	b.Set(7)
	if !a.Equal(b) {
		t.Fatalf("equal sets reported unequal")
	}
	b.Set(8)
	if a.Equal(b) {
		t.Fatalf("unequal sets reported equal")
	}
	if a.Equal(New(64)) {
		t.Fatalf("different sizes reported equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := New(1000)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		s.Set(rng.Intn(1000))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Set
	if err := r.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(&r) {
		t.Fatalf("round trip mismatch")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s Set
	if err := s.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatalf("truncated header accepted")
	}
	good, _ := New(64).MarshalBinary()
	if err := s.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Fatalf("truncated payload accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(100000).SizeBytes(); got != 12504 {
		// ceil(100000/64) = 1563 words * 8 bytes. The paper quotes 12.5 KB
		// for a 100K-host pointer, which matches.
		t.Fatalf("SizeBytes = %d, want 12504", got)
	}
}

func TestQuickCountMatchesNaive(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		seen := map[int]bool{}
		for _, i := range idx {
			s.Set(int(i))
			seen[int(i)] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
