package bitset

import (
	"math/rand"
	"testing"
)

func TestSparseBasics(t *testing.T) {
	s := NewSparse(100)
	if s.Count() != 0 || s.Len() != 100 {
		t.Fatalf("fresh sparse: count=%d len=%d", s.Count(), s.Len())
	}
	for _, i := range []int{7, 3, 99, 3, 0, 7} {
		s.Add(i)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4 (duplicates collapse)", s.Count())
	}
	want := []int{0, 3, 7, 99}
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
	if !s.Has(3) || s.Has(4) {
		t.Fatalf("Has wrong")
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Reset left %d members", s.Count())
	}
	if s.MemoryBytes() == 0 {
		t.Fatalf("Reset should keep the buffer resident")
	}
}

func TestSparseOutOfRangePanics(t *testing.T) {
	s := NewSparse(8)
	for _, fn := range []func(){func() { s.Add(8) }, func() { s.Add(-1) }, func() { s.Has(8) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSparseAddToMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sp := NewSparse(512)
	dense := New(512)
	for i := 0; i < 200; i++ {
		v := rng.Intn(512)
		sp.Add(v)
		dense.Set(v)
	}
	out := New(512)
	sp.AddTo(out)
	if !out.Equal(dense) {
		t.Fatalf("AddTo diverged from dense oracle")
	}
	if sp.Count() != dense.Count() {
		t.Fatalf("Count %d != dense %d", sp.Count(), dense.Count())
	}
}

func TestSparseMarshalRoundTrip(t *testing.T) {
	sp := NewSparse(1000)
	for _, v := range []int{1, 5, 999, 0} {
		sp.Add(v)
	}
	b1, _ := sp.MarshalBinary()
	b2, _ := sp.Clone().MarshalBinary()
	if string(b1) != string(b2) {
		t.Fatalf("encoding not deterministic")
	}
	var back Sparse
	if err := back.UnmarshalBinary(b1); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(sp) {
		t.Fatalf("round trip diverged")
	}
	// Encoded size scales with occupancy, not universe.
	if len(b1) != 16+4*4 {
		t.Fatalf("encoded size = %d, want %d", len(b1), 16+4*4)
	}
}

func TestSparseUnmarshalRejectsMalformed(t *testing.T) {
	sp := NewSparse(10)
	sp.Add(3)
	sp.Add(5)
	good, _ := sp.MarshalBinary()

	var s Sparse
	if err := s.UnmarshalBinary(good[:10]); err == nil {
		t.Fatalf("truncated header accepted")
	}
	if err := s.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Fatalf("truncated payload accepted")
	}
	bad := append([]byte(nil), good...)
	bad[16], bad[20] = bad[20], bad[16] // swap → descending
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Fatalf("descending indices accepted")
	}
	oor := append([]byte(nil), good...)
	oor[16] = 200 // index 200 in a 10-universe
	if err := s.UnmarshalBinary(oor); err == nil {
		t.Fatalf("out-of-range index accepted")
	}
}
