// Package bitset provides the fixed-size bit array used for SwitchPointer's
// per-epoch pointer sets.
//
// A pointer set is one bit per potential destination end-host: bit i is set
// when the switch forwarded at least one packet to the host whose minimal
// perfect hash index is i during the set's time window. The paper sizes these
// at the maximum number of end-hosts in the datacenter (e.g. 100 Kbit for
// 100 K hosts, §4.1.2), which is exactly what this package stores.
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-size bit array. The zero value is an empty set of size 0;
// use New to create a sized set.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits the set holds.
func (s *Set) Len() int { return s.n }

// SizeBytes returns the in-memory size of the bit array itself in bytes.
// This is the S/8 term in the paper's switch-memory accounting.
func (s *Set) SizeBytes() int { return len(s.words) * 8 }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Set(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Clear(%d) out of range [0,%d)", i, s.n))
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set. It panics if i is out of range.
func (s *Set) Get(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: Get(%d) out of range [0,%d)", i, s.n))
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Reset zeroes every bit, keeping the capacity. This is the O(S) slot-recycle
// operation the switch control-plane agent performs on rotation.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// UnionWith ORs o into s. Both sets must have the same length.
func (s *Set) UnionWith(o *Set) {
	if s.n != o.n {
		panic("bitset: UnionWith size mismatch")
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith ANDs o into s. Both sets must have the same length.
func (s *Set) IntersectWith(o *Set) {
	if s.n != o.n {
		panic("bitset: IntersectWith size mismatch")
	}
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. Both sets must have the same
// length. This is the copy a switch agent takes when snapshotting a slot for
// the control plane without blocking the data plane.
func (s *Set) CopyFrom(o *Set) {
	if s.n != o.n {
		panic("bitset: CopyFrom size mismatch")
	}
	copy(s.words, o.words)
}

// ForEach calls fn for every set bit in ascending order. It stops early if fn
// returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the positions of all set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Equal reports whether s and o hold identical contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the set as 8 bytes of length followed by the words in
// little-endian order. It never returns an error.
func (s *Set) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+len(s.words)*8)
	binary.LittleEndian.PutUint64(buf, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(buf[8+i*8:], w)
	}
	return buf, nil
}

// UnmarshalBinary decodes a set previously encoded with MarshalBinary.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitset: truncated header (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint64(data))
	nw := (n + wordBits - 1) / wordBits
	if len(data) != 8+nw*8 {
		return fmt.Errorf("bitset: size %d needs %d payload bytes, have %d", n, nw*8, len(data)-8)
	}
	s.n = n
	s.words = make([]uint64, nw)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+i*8:])
	}
	return nil
}
