package transport

import (
	"testing"

	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
	"switchpointer/internal/topo"
)

func TestMeterBuckets(t *testing.T) {
	m := NewMeter(simtime.Millisecond)
	m.Record(1000, 100*simtime.Microsecond)
	m.Record(1000, 900*simtime.Microsecond)
	m.Record(500, 2500*simtime.Microsecond)
	if m.BytesAt(0) != 2000 || m.BytesAt(1) != 0 || m.BytesAt(2) != 500 {
		t.Fatalf("buckets: %d %d %d", m.BytesAt(0), m.BytesAt(1), m.BytesAt(2))
	}
	if m.TotalBytes() != 2500 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	// 2000 B in 1 ms = 16 Mbps = 0.016 Gbps.
	if g := m.GbpsAt(0); g < 0.0159 || g > 0.0161 {
		t.Fatalf("GbpsAt(0) = %v", g)
	}
	if len(m.GbpsSeries(5)) != 5 {
		t.Fatalf("series length wrong")
	}
	if m.BytesAt(-1) != 0 || m.BytesAt(99) != 0 {
		t.Fatalf("out-of-range buckets should be 0")
	}
}

func TestMeterGaps(t *testing.T) {
	m := NewMeter(simtime.Millisecond)
	m.Record(100, 0)
	m.Record(100, 200*simtime.Microsecond) // gap 200µs in bucket 0
	m.Record(100, 5*simtime.Millisecond)   // gap 4.8ms in bucket 5
	if m.MaxGapAt(0) != 200*simtime.Microsecond {
		t.Fatalf("MaxGapAt(0) = %v", m.MaxGapAt(0))
	}
	if m.MaxGapAt(5) != 4800*simtime.Microsecond {
		t.Fatalf("MaxGapAt(5) = %v", m.MaxGapAt(5))
	}
	if m.MaxGap() != 4800*simtime.Microsecond {
		t.Fatalf("MaxGap = %v", m.MaxGap())
	}
	gs := m.MaxGapSeries(6)
	if gs[5] != 4.8 {
		t.Fatalf("MaxGapSeries[5] = %v ms", gs[5])
	}
}

func TestMeterPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewMeter(0)
}

func buildDumbbell(t *testing.T, kind netsim.QueueKind) (*netsim.Network, *topo.Topology) {
	t.Helper()
	net := netsim.New()
	net.NewSwitchQueue = func() netsim.Queue { return netsim.NewQueue(kind, netsim.DefaultSwitchBufBytes) }
	tp := topo.Dumbbell(net, 4, 4, topo.Config{})
	return net, tp
}

func TestUDPRateAccuracy(t *testing.T) {
	net, tp := buildDumbbell(t, netsim.QueueFIFO)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	meter := NewMeter(simtime.Millisecond)
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) { meter.Record(p.Size, now) })
	s := StartUDP(net, src, UDPConfig{
		Flow:     netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 2},
		RateBps:  500_000_000, // 0.5 Gbps, under the 1G bottleneck
		Start:    0,
		Duration: 20 * simtime.Millisecond,
	})
	net.Run()
	if s.Sent == 0 {
		t.Fatalf("no packets sent")
	}
	// 0.5 Gbps for 20 ms ≈ 1.25 MB.
	got := float64(meter.TotalBytes())
	want := 0.5e9 / 8 * 0.020
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("received %v bytes, want ≈%v", got, want)
	}
	// Mid-flow throughput ≈ 0.5 Gbps.
	if g := meter.GbpsAt(10); g < 0.45 || g > 0.55 {
		t.Fatalf("GbpsAt(10) = %v", g)
	}
}

func TestUDPDefaultsAndPanics(t *testing.T) {
	net, tp := buildDumbbell(t, netsim.QueueFIFO)
	src, _ := tp.HostByName("L1")
	s := StartUDP(net, src, UDPConfig{
		Flow: netsim.FlowKey{Src: src.IP(), Dst: tp.Hosts()[4].IP()}, RateBps: 1e9, Duration: simtime.Millisecond})
	if s.Config().PktSize != 1500 || s.Config().Flow.Proto != netsim.ProtoUDP {
		t.Fatalf("defaults not applied: %+v", s.Config())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("zero rate should panic")
		}
	}()
	StartUDP(net, src, UDPConfig{Flow: netsim.FlowKey{}, RateBps: 0})
}

func TestTCPBoundedTransferCompletes(t *testing.T) {
	net, tp := buildDumbbell(t, netsim.QueueFIFO)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	s, r := StartTCP(net, src, dst, TCPConfig{
		TotalBytes: 1 << 20, // 1 MB
	})
	net.RunUntil(simtime.Second)
	if !s.Done() {
		t.Fatalf("transfer did not complete: acked %d", r.CumAck())
	}
	if int64(r.CumAck()) < 1<<20 {
		t.Fatalf("CumAck = %d", r.CumAck())
	}
	// 1 MB over an uncontended 1G path should take ~10 ms (slow start from
	// 10 segments), certainly under 100 ms.
	if s.CompletedAt > 100*simtime.Millisecond {
		t.Fatalf("completion too slow: %v", s.CompletedAt)
	}
	if s.Timeouts != 0 {
		t.Fatalf("unexpected timeouts: %d", s.Timeouts)
	}
}

func TestTCPSaturatesBottleneck(t *testing.T) {
	net, tp := buildDumbbell(t, netsim.QueueFIFO)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	meter := NewMeter(simtime.Millisecond)
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 100, DstPort: 200, Proto: netsim.ProtoTCP}
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == flow {
			meter.Record(p.Size, now)
		}
	})
	StartTCP(net, src, dst, TCPConfig{Flow: flow, Duration: 100 * simtime.Millisecond})
	net.RunUntil(110 * simtime.Millisecond)
	// Steady state (buckets 20–99) should be near line rate.
	var sum float64
	for i := 20; i < 100; i++ {
		sum += meter.GbpsAt(i)
	}
	avg := sum / 80
	if avg < 0.85 || avg > 1.01 {
		t.Fatalf("steady-state throughput = %.3f Gbps, want ≈0.95", avg)
	}
}

func TestTCPSharesFairlyEnough(t *testing.T) {
	// Two TCP flows over the same bottleneck should both make progress.
	net, tp := buildDumbbell(t, netsim.QueueFIFO)
	l1, _ := tp.HostByName("L1")
	l2, _ := tp.HostByName("L2")
	r1, _ := tp.HostByName("R1")
	r2, _ := tp.HostByName("R2")
	s1, _ := StartTCP(net, l1, r1, TCPConfig{Duration: 100 * simtime.Millisecond,
		Flow: netsim.FlowKey{Src: l1.IP(), Dst: r1.IP(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoTCP}})
	s2, _ := StartTCP(net, l2, r2, TCPConfig{Duration: 100 * simtime.Millisecond,
		Flow: netsim.FlowKey{Src: l2.IP(), Dst: r2.IP(), SrcPort: 2, DstPort: 2, Proto: netsim.ProtoTCP}})
	net.RunUntil(120 * simtime.Millisecond)
	b1, b2 := float64(s1.SentBytes), float64(s2.SentBytes)
	if b1 == 0 || b2 == 0 {
		t.Fatalf("a flow starved: %v %v", b1, b2)
	}
	ratio := b1 / b2
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("gross unfairness: %v vs %v", b1, b2)
	}
}

func TestTCPRecoversFromLoss(t *testing.T) {
	// Tiny switch buffers force drops; TCP must still complete via fast
	// retransmit / RTO.
	net := netsim.New()
	net.NewSwitchQueue = func() netsim.Queue { return netsim.NewFIFOQueue(30_000) }
	// Fabric at half the NIC rate so the bottleneck queue actually builds.
	tp := topo.Dumbbell(net, 2, 2, topo.Config{FabricRateBps: 500_000_000})
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	s, r := StartTCP(net, src, dst, TCPConfig{
		TotalBytes: 2 << 20,
		RTOMin:     10 * simtime.Millisecond,
	})
	net.RunUntil(5 * simtime.Second)
	if !s.Done() {
		t.Fatalf("transfer did not complete under loss: acked %d, timeouts %d", r.CumAck(), s.Timeouts)
	}
	if s.FastRetransmits+s.Timeouts == 0 {
		t.Fatalf("expected loss recovery events with a 30KB buffer")
	}
}

func TestTCPTimeoutUnderStarvation(t *testing.T) {
	// A high-priority blast long enough to stall the low-priority flow past
	// its RTO must produce a timeout — the extreme case of §2.1.
	net, tp := buildDumbbell(t, netsim.QueuePriority)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	udpSrc, _ := tp.HostByName("L2")
	udpDst, _ := tp.HostByName("R2")

	s, _ := StartTCP(net, src, dst, TCPConfig{
		Priority: 0,
		Duration: 200 * simtime.Millisecond,
		RTOMin:   10 * simtime.Millisecond,
		Flow:     netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 5, DstPort: 5, Proto: netsim.ProtoTCP},
	})
	// 40 ms of full-line-rate high-priority traffic starting at 30 ms.
	StartUDP(net, udpSrc, UDPConfig{
		Flow:     netsim.FlowKey{Src: udpSrc.IP(), Dst: udpDst.IP(), SrcPort: 7, DstPort: 7},
		Priority: 7,
		RateBps:  netsim.Rate1G,
		Start:    30 * simtime.Millisecond,
		Duration: 40 * simtime.Millisecond,
	})
	net.RunUntil(250 * simtime.Millisecond)
	if s.Timeouts == 0 {
		t.Fatalf("expected at least one TCP timeout under 40 ms starvation with 10 ms RTOmin")
	}
}

func TestTCPPriorityStarvationThroughputDip(t *testing.T) {
	// The Fig 2(a) shape in miniature: low-prio TCP throughput collapses
	// during a high-prio burst and recovers after.
	net, tp := buildDumbbell(t, netsim.QueuePriority)
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	udpSrc, _ := tp.HostByName("L2")
	udpDst, _ := tp.HostByName("R2")

	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 9, DstPort: 9, Proto: netsim.ProtoTCP}
	meter := NewMeter(simtime.Millisecond)
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == flow {
			meter.Record(p.Size, now)
		}
	})
	StartTCP(net, src, dst, TCPConfig{Flow: flow, Duration: 100 * simtime.Millisecond})
	// 8 high-priority flows × 1 ms at 1G each starting at 50 ms.
	for i := 0; i < 8; i++ {
		StartUDP(net, udpSrc, UDPConfig{
			Flow:     netsim.FlowKey{Src: udpSrc.IP(), Dst: udpDst.IP(), SrcPort: uint16(100 + i), DstPort: 80},
			Priority: 7,
			RateBps:  netsim.Rate1G,
			Start:    50 * simtime.Millisecond,
			Duration: simtime.Millisecond,
		})
	}
	net.RunUntil(120 * simtime.Millisecond)
	before := meter.GbpsAt(45)
	// The burst injects 8×1ms×1G = 8ms of high-priority backlog; the low
	// priority flow is starved for several ms after t=50.
	during := meter.GbpsAt(54)
	after := meter.GbpsAt(90)
	if before < 0.8 {
		t.Fatalf("pre-burst throughput = %v", before)
	}
	if during > before/2 {
		t.Fatalf("no starvation dip: before=%.3f during=%.3f", before, during)
	}
	if after < 0.6 {
		t.Fatalf("no recovery: after=%.3f", after)
	}
}

func TestFlowMetersPerFlowSeparation(t *testing.T) {
	fm := NewFlowMeters(simtime.Millisecond)
	fa := netsim.FlowKey{Src: 1, Dst: 2, Proto: netsim.ProtoTCP}
	fb := netsim.FlowKey{Src: 3, Dst: 4, Proto: netsim.ProtoUDP}
	fm.Record(&netsim.Packet{Flow: fa, Size: 100}, 0)
	fm.Record(&netsim.Packet{Flow: fb, Size: 200}, 0)
	fm.Record(&netsim.Packet{Flow: fa, Size: 300}, simtime.Millisecond)
	if fm.Meter(fa).TotalBytes() != 400 || fm.Meter(fb).TotalBytes() != 200 {
		t.Fatalf("per-flow accounting wrong")
	}
	if len(fm.Flows()) != 2 {
		t.Fatalf("Flows() = %v", fm.Flows())
	}
	if fm.Meter(netsim.FlowKey{Src: 9}) != nil {
		t.Fatalf("unknown flow should be nil")
	}
}

func TestFlowMetersOnPort(t *testing.T) {
	net, tp := buildDumbbell(t, netsim.QueueFIFO)
	sl, _ := tp.SwitchByName("SL")
	src, _ := tp.HostByName("L1")
	dst, _ := tp.HostByName("R1")
	fm := NewFlowMeters(simtime.Millisecond)
	// Port 0 is the SL→SR fabric link (first connection in the builder).
	fm.AttachToPort(sl.Port(0))
	flow := netsim.FlowKey{Src: src.IP(), Dst: dst.IP(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoUDP}
	StartUDP(net, src, UDPConfig{Flow: flow, RateBps: 1e8, Duration: 5 * simtime.Millisecond})
	net.Run()
	if fm.Meter(flow) == nil || fm.Meter(flow).TotalBytes() == 0 {
		t.Fatalf("port meter recorded nothing")
	}
}
