package transport

import (
	"testing"

	"switchpointer/internal/simtime"
)

// TestMeterRecordZeroAlloc gates the steady-state meter path: recording
// into existing buckets performs zero heap allocations, and extending the
// series stays amortized allocation-free (geometric growth).
func TestMeterRecordZeroAlloc(t *testing.T) {
	m := NewMeter(simtime.Millisecond)
	m.Record(100, 0) // materialize the series
	now := simtime.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Record(1500, now)
		now += 10 * simtime.Microsecond // stays in bucket 0..<capacity
	})
	if allocs != 0 {
		t.Fatalf("Meter.Record steady state: %v allocs/op, want 0", allocs)
	}
	if m.TotalBytes() == 0 || m.Buckets() == 0 {
		t.Fatal("records lost")
	}
}

// TestMeterGrowthPreservesSeries asserts the geometric regrowth keeps
// earlier buckets intact.
func TestMeterGrowthPreservesSeries(t *testing.T) {
	m := NewMeter(simtime.Millisecond)
	for i := 0; i < 300; i++ {
		m.Record(1000, simtime.Time(i)*simtime.Millisecond)
		m.Record(500, simtime.Time(i)*simtime.Millisecond+simtime.Microsecond)
	}
	for i := 0; i < 300; i++ {
		if m.BytesAt(i) != 1500 {
			t.Fatalf("bucket %d = %d, want 1500", i, m.BytesAt(i))
		}
	}
	if m.TotalBytes() != 300*1500 {
		t.Fatalf("total = %d", m.TotalBytes())
	}
}
