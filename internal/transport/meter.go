// Package transport provides the workload engines that run on the simulated
// testbed: constant-rate and bursty UDP sources, a Reno-style TCP with slow
// start / AIMD / fast retransmit / RTO, and the throughput & inter-packet-gap
// meters the paper's figures are drawn from.
package transport

import (
	"sort"

	"switchpointer/internal/flowrec"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// Meter accumulates bytes into fixed time buckets and records inter-arrival
// gaps. It backs both the per-flow receiver meters (Fig 2 throughput and
// inter-packet arrival plots) and the per-port switch meters (Fig 3).
type Meter struct {
	interval simtime.Time
	buckets  []uint64
	pkts     []uint32
	maxGap   []simtime.Time
	last     simtime.Time
	hasLast  bool
	total    uint64
}

// NewMeter creates a meter with the given bucket width (e.g. 1 ms, the
// paper's trigger granularity).
func NewMeter(interval simtime.Time) *Meter {
	if interval <= 0 {
		panic("transport: non-positive meter interval")
	}
	return &Meter{interval: interval}
}

// Interval returns the bucket width.
func (m *Meter) Interval() simtime.Time { return m.interval }

// Record accounts bytes arriving at time now. Extending into a new bucket
// is amortized allocation-free: the series grow geometrically and start with
// enough room that short-lived meters never regrow.
func (m *Meter) Record(bytes int, now simtime.Time) {
	idx := int(now / m.interval)
	if cap(m.buckets) <= idx {
		n := 2 * (idx + 1)
		if n < 64 {
			n = 64
		}
		m.buckets = append(make([]uint64, 0, n), m.buckets...)
		m.pkts = append(make([]uint32, 0, n), m.pkts...)
		m.maxGap = append(make([]simtime.Time, 0, n), m.maxGap...)
	}
	for len(m.buckets) <= idx {
		m.buckets = append(m.buckets, 0)
		m.pkts = append(m.pkts, 0)
		m.maxGap = append(m.maxGap, 0)
	}
	m.buckets[idx] += uint64(bytes)
	m.pkts[idx]++
	m.total += uint64(bytes)
	if m.hasLast {
		gap := now - m.last
		if gap > m.maxGap[idx] {
			m.maxGap[idx] = gap
		}
	}
	m.last = now
	m.hasLast = true
}

// TotalBytes returns all bytes recorded.
func (m *Meter) TotalBytes() uint64 { return m.total }

// Buckets returns the number of buckets touched so far.
func (m *Meter) Buckets() int { return len(m.buckets) }

// BytesAt returns the byte count of bucket i (0 beyond the series).
func (m *Meter) BytesAt(i int) uint64 {
	if i < 0 || i >= len(m.buckets) {
		return 0
	}
	return m.buckets[i]
}

// GbpsAt returns the average throughput of bucket i in Gbit/s.
func (m *Meter) GbpsAt(i int) float64 {
	return float64(m.BytesAt(i)) * 8 / float64(m.interval)
}

// GbpsSeries returns the throughput series up to bucket n (padding with
// zeros), in Gbit/s per bucket.
func (m *Meter) GbpsSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.GbpsAt(i)
	}
	return out
}

// MaxGapAt returns the largest inter-arrival gap observed within bucket i.
func (m *Meter) MaxGapAt(i int) simtime.Time {
	if i < 0 || i >= len(m.maxGap) {
		return 0
	}
	return m.maxGap[i]
}

// MaxGapSeries returns per-bucket maximum inter-arrival gaps in milliseconds
// up to bucket n.
func (m *Meter) MaxGapSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.MaxGapAt(i).Milliseconds()
	}
	return out
}

// MaxGap returns the largest gap across the whole series.
func (m *Meter) MaxGap() simtime.Time {
	var g simtime.Time
	for _, v := range m.maxGap {
		if v > g {
			g = v
		}
	}
	return g
}

// FlowMeters tracks one meter per flow. It can be attached to a host receive
// path or to a switch port transmit hook.
type FlowMeters struct {
	interval simtime.Time
	meters   map[netsim.FlowKey]*Meter
}

// NewFlowMeters creates an empty per-flow meter set.
func NewFlowMeters(interval simtime.Time) *FlowMeters {
	return &FlowMeters{interval: interval, meters: make(map[netsim.FlowKey]*Meter)}
}

// Record accounts a packet to its flow's meter.
func (f *FlowMeters) Record(p *netsim.Packet, now simtime.Time) {
	m := f.meters[p.Flow]
	if m == nil {
		m = NewMeter(f.interval)
		f.meters[p.Flow] = m
	}
	m.Record(p.Size, now)
}

// Meter returns the meter for a flow, or nil.
func (f *FlowMeters) Meter(flow netsim.FlowKey) *Meter { return f.meters[flow] }

// Flows returns the tracked flow keys in deterministic (flow-key-sorted)
// order, so callers can iterate meters without smuggling map order into
// their output (sortlint's invariant).
func (f *FlowMeters) Flows() []netsim.FlowKey {
	out := make([]netsim.FlowKey, 0, len(f.meters))
	for k := range f.meters {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return flowrec.Less(out[i], out[j]) })
	return out
}

// ForEach visits every tracked (flow, meter) pair without allocating.
// Iteration order is unspecified; callers needing determinism must not
// depend on it (the host agent's trigger scan treats flows independently).
func (f *FlowMeters) ForEach(fn func(flow netsim.FlowKey, m *Meter)) {
	if len(f.meters) == 0 {
		return // skip map-iterator setup on the per-tick trigger scan
	}
	for k, m := range f.meters {
		fn(k, m)
	}
}

// AttachToPort installs the meter set as the port's transmit observer. This
// is how "throughput of flow A-F at S1" (Fig 3) is measured.
func (f *FlowMeters) AttachToPort(pt *netsim.Port) {
	prev := pt.OnTransmit
	pt.OnTransmit = func(p *netsim.Packet, now simtime.Time) {
		if prev != nil {
			prev(p, now)
		}
		f.Record(p, now)
	}
}
