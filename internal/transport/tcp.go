package transport

import (
	"switchpointer/internal/eventq"
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// TCPConfig describes one simulated TCP flow. The model is Reno-style: slow
// start, additive-increase congestion avoidance, triple-duplicate-ACK fast
// retransmit with window halving, and exponential-backoff retransmission
// timeouts. It is byte-accurate enough that the paper's contention phenomena
// (throughput collapse under priority starvation, gradual degradation across
// red lights, cascade-induced slowdown, TCP timeouts) emerge from queueing
// rather than from scripted behaviour.
type TCPConfig struct {
	Flow     netsim.FlowKey
	Priority uint8
	Start    simtime.Time
	// Duration bounds the sending period for time-driven flows (0 = run to
	// completion of TotalBytes).
	Duration simtime.Time
	// TotalBytes bounds the transfer size (0 = unbounded while Duration
	// lasts). The cascades experiment sends 2 MB (§2.3).
	TotalBytes int64

	MSS          int          // payload bytes per segment (default 1460)
	HeaderBytes  int          // IP+TCP header overhead (default 40)
	InitCwndPkts int          // initial window in segments (default 10)
	MaxCwndBytes int64        // cap on cwnd ≈ receive window (default 300 KB)
	RTOMin       simtime.Time // minimum retransmission timeout (default 200 ms, Linux-like)
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.HeaderBytes == 0 {
		c.HeaderBytes = 40
	}
	if c.InitCwndPkts == 0 {
		c.InitCwndPkts = 10
	}
	if c.MaxCwndBytes == 0 {
		c.MaxCwndBytes = 300 << 10
	}
	if c.RTOMin == 0 {
		c.RTOMin = 200 * simtime.Millisecond
	}
	if c.Flow.Proto == 0 {
		c.Flow.Proto = netsim.ProtoTCP
	}
	return c
}

// TCPSender is the sending side of a simulated TCP connection.
type TCPSender struct {
	net  *netsim.Network
	host *netsim.Host
	cfg  TCPConfig

	nextSeq  uint32 // next new byte to send
	sndUna   uint32 // lowest unacknowledged byte
	cwnd     float64
	ssthresh float64
	dupAcks  int

	// Loss-recovery state (NewReno-flavoured).
	state      recoveryState
	recoverSeq uint32 // highest sequence outstanding when loss was detected
	resendNext uint32 // go-back-N cursor after a timeout

	srtt, rttvar simtime.Time
	hasRTT       bool
	rto          simtime.Time
	rtoTimer     eventq.Timer            // generation-counted: safe to Stop after fire
	sentAt       map[uint32]simtime.Time // segment start → send time (for RTT; cleared on retransmit)

	finished bool
	stopped  bool

	// Stats.
	Timeouts        int
	TimeoutTimes    []simtime.Time
	FastRetransmits int
	SentSegments    uint64
	SentBytes       uint64
	RetransSegments uint64
	CompletedAt     simtime.Time // when TotalBytes was fully acked (0 if not)
}

// recoveryState tracks which loss-recovery regime the sender is in.
type recoveryState uint8

const (
	stateOpen recoveryState = iota // normal transmission
	stateFast                      // fast recovery after triple dup-ACK
	stateRTO                       // go-back-N retransmission after a timeout
)

// TCPReceiver is the receiving side: it delivers cumulative ACKs and counts
// in-order goodput.
type TCPReceiver struct {
	net    *netsim.Network
	host   *netsim.Host
	flow   netsim.FlowKey // forward direction (sender→receiver)
	prio   uint8
	hdr    int
	cumAck uint32
	ooo    map[uint32]uint32 // out-of-order segments: start → end

	GoodputBytes uint64
	AcksSent     uint64
}

// StartTCP wires a TCP connection between two hosts and schedules its start.
// The returned sender/receiver expose statistics; the receiver has been
// registered on dst's receive path.
func StartTCP(net *netsim.Network, src, dst *netsim.Host, cfg TCPConfig) (*TCPSender, *TCPReceiver) {
	cfg = cfg.withDefaults()
	if cfg.Flow.Src == 0 {
		cfg.Flow.Src = src.IP()
	}
	if cfg.Flow.Dst == 0 {
		cfg.Flow.Dst = dst.IP()
	}
	s := &TCPSender{
		net:      net,
		host:     src,
		cfg:      cfg,
		cwnd:     float64(cfg.InitCwndPkts),
		ssthresh: 1 << 20, // effectively unbounded until first loss
		rto:      cfg.RTOMin,
		sentAt:   make(map[uint32]simtime.Time),
	}
	r := &TCPReceiver{
		net:  net,
		host: dst,
		flow: cfg.Flow,
		prio: cfg.Priority,
		hdr:  cfg.HeaderBytes,
		ooo:  make(map[uint32]uint32),
	}
	// Receiver consumes data segments of this flow.
	dst.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == cfg.Flow && p.Flags&netsim.FlagACK == 0 {
			r.onData(p, now)
		}
	})
	// Sender consumes ACKs of the reverse flow.
	rev := cfg.Flow.Reverse()
	src.OnReceive(func(p *netsim.Packet, now simtime.Time) {
		if p.Flow == rev && p.Flags&netsim.FlagACK != 0 {
			s.onAck(p, now)
		}
	})
	net.Engine.At(cfg.Start, func() { s.trySend() })
	if cfg.Duration > 0 {
		net.Engine.At(cfg.Start+cfg.Duration, func() { s.stopped = true })
	}
	return s, r
}

// Cwnd returns the current congestion window in segments.
func (s *TCPSender) Cwnd() float64 { return s.cwnd }

// Done reports whether a bounded transfer has been fully acknowledged.
func (s *TCPSender) Done() bool { return s.finished }

// inflightBytes returns unacknowledged bytes.
func (s *TCPSender) inflightBytes() int64 { return int64(s.nextSeq - s.sndUna) }

// cwndBytes returns the effective window in bytes.
func (s *TCPSender) cwndBytes() int64 {
	w := int64(s.cwnd * float64(s.cfg.MSS))
	if w > s.cfg.MaxCwndBytes {
		w = s.cfg.MaxCwndBytes
	}
	if w < int64(s.cfg.MSS) {
		w = int64(s.cfg.MSS)
	}
	return w
}

// pipeBytes estimates the bytes currently in flight. After a timeout the
// whole outstanding window is presumed lost, so only data re-sent since the
// timeout counts (go-back-N).
func (s *TCPSender) pipeBytes() int64 {
	if s.state == stateRTO {
		return int64(s.resendNext - s.sndUna)
	}
	return s.inflightBytes()
}

// trySend emits as many segments as the window allows: go-back-N
// retransmissions first when recovering from a timeout, then new data.
func (s *TCPSender) trySend() {
	if s.finished || s.stopped {
		return
	}
	now := s.net.Now()
	for s.pipeBytes()+int64(s.cfg.MSS) <= s.cwndBytes() {
		if s.state == stateRTO {
			if s.resendNext < s.nextSeq {
				s.emit(s.resendNext, now, true)
				s.resendNext += uint32(s.cfg.MSS)
				continue
			}
			// Everything outstanding has been re-sent; inflight accounting
			// is consistent again.
			s.state = stateOpen
		}
		if s.cfg.TotalBytes > 0 && int64(s.nextSeq) >= s.cfg.TotalBytes {
			return // all data sent; waiting for acks
		}
		seg := s.nextSeq
		s.emit(seg, now, false)
		s.nextSeq += uint32(s.cfg.MSS)
	}
}

func (s *TCPSender) emit(seq uint32, now simtime.Time, retrans bool) {
	p := netsim.AllocPacket()
	p.ID = s.net.AllocPacketID()
	p.Flow = s.cfg.Flow
	p.Priority = s.cfg.Priority
	p.Size = s.cfg.MSS + s.cfg.HeaderBytes
	p.Payload = s.cfg.MSS
	p.Seq = seq
	p.SentAt = now
	s.SentSegments++
	s.SentBytes += uint64(p.Size)
	if retrans {
		s.RetransSegments++
		delete(s.sentAt, seq) // Karn's algorithm: no RTT sample from retransmits
	} else {
		s.sentAt[seq] = now
	}
	s.host.Send(p)
	s.armRTO(now)
}

func (s *TCPSender) armRTO(now simtime.Time) {
	s.rtoTimer.Stop()
	s.rtoTimer = s.net.Engine.At(now+s.rto, s.onRTO)
}

func (s *TCPSender) disarmRTO() {
	s.rtoTimer.Stop()
	s.rtoTimer = eventq.Timer{}
}

// onRTO fires when the retransmission timer expires: classic Reno timeout.
func (s *TCPSender) onRTO() {
	if s.finished || s.inflightBytes() == 0 {
		return
	}
	if s.stopped {
		// The sending application has gone away (duration-bounded flow);
		// do not retransmit forever.
		s.disarmRTO()
		return
	}
	now := s.net.Now()
	s.Timeouts++
	s.TimeoutTimes = append(s.TimeoutTimes, now)
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.dupAcks = 0
	s.rto *= 2
	if max := 4 * simtime.Second; s.rto > max {
		s.rto = max
	}
	// Enter go-back-N: everything outstanding is presumed lost.
	s.state = stateRTO
	s.recoverSeq = s.nextSeq
	s.resendNext = s.sndUna
	s.emit(s.resendNext, now, true)
	s.resendNext += uint32(s.cfg.MSS)
}

// onAck processes a cumulative acknowledgment.
func (s *TCPSender) onAck(p *netsim.Packet, now simtime.Time) {
	if s.finished {
		return
	}
	ack := p.Ack
	if ack > s.sndUna {
		// New data acknowledged.
		if t0, ok := s.sentAt[s.sndUna]; ok {
			s.updateRTT(now - t0)
		}
		for seq := s.sndUna; seq < ack; seq += uint32(s.cfg.MSS) {
			delete(s.sentAt, seq)
		}
		ackedSegs := float64(ack-s.sndUna) / float64(s.cfg.MSS)
		s.sndUna = ack
		if s.state == stateRTO && s.resendNext < s.sndUna {
			s.resendNext = s.sndUna // holes filled by acks need no resend
		}
		s.dupAcks = 0
		switch {
		case s.state == stateFast && ack >= s.recoverSeq:
			// Full acknowledgment: leave fast recovery, deflate.
			s.state = stateOpen
			s.cwnd = s.ssthresh
		case s.state == stateFast:
			// NewReno partial ack: retransmit the next hole immediately.
			s.emit(s.sndUna, now, true)
		case s.state == stateRTO && ack >= s.recoverSeq:
			s.state = stateOpen
		}
		if s.state == stateOpen || s.state == stateRTO {
			if s.cwnd < s.ssthresh {
				s.cwnd += ackedSegs // slow start
			} else {
				s.cwnd += ackedSegs / s.cwnd // congestion avoidance
			}
		}
		if s.cfg.TotalBytes > 0 && int64(s.sndUna) >= s.cfg.TotalBytes {
			s.finished = true
			s.CompletedAt = now
			s.disarmRTO()
			return
		}
		if s.inflightBytes() == 0 {
			s.disarmRTO()
		} else {
			s.armRTO(now)
		}
		s.trySend()
		return
	}
	// Duplicate ACK.
	if s.inflightBytes() == 0 {
		return
	}
	s.dupAcks++
	switch {
	case s.dupAcks == 3 && s.state == stateOpen:
		// Fast retransmit + window halving.
		s.FastRetransmits++
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = s.ssthresh
		s.state = stateFast
		s.recoverSeq = s.nextSeq
		s.emit(s.sndUna, now, true)
	case s.state == stateFast:
		// Window inflation keeps the ACK clock running during recovery.
		s.cwnd++
		s.trySend()
	}
}

func (s *TCPSender) updateRTT(sample simtime.Time) {
	if !s.hasRTT {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasRTT = true
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.RTOMin {
		s.rto = s.cfg.RTOMin
	}
}

// onData handles a data segment at the receiver: cumulative ACK with
// out-of-order buffering.
func (r *TCPReceiver) onData(p *netsim.Packet, now simtime.Time) {
	start := p.Seq
	end := p.Seq + uint32(p.Payload)
	if end > r.cumAck { // ignore stale duplicates below cumAck
		if start <= r.cumAck {
			r.cumAck = end
			// Absorb any buffered segments that are now in order.
			for {
				e, ok := r.ooo[r.cumAck]
				if !ok {
					break
				}
				delete(r.ooo, r.cumAck)
				r.cumAck = e
			}
		} else {
			r.ooo[start] = end
		}
	}
	r.GoodputBytes = uint64(r.cumAck)
	ack := netsim.AllocPacket()
	ack.ID = r.net.AllocPacketID()
	ack.Flow = r.flow.Reverse()
	ack.Priority = r.prio
	ack.Size = r.hdr
	ack.Flags = netsim.FlagACK
	ack.Ack = r.cumAck
	ack.SentAt = now
	r.AcksSent++
	r.host.Send(ack)
}

// CumAck returns the receiver's cumulative acknowledgment point.
func (r *TCPReceiver) CumAck() uint32 { return r.cumAck }
