package transport

import (
	"switchpointer/internal/netsim"
	"switchpointer/internal/simtime"
)

// UDPConfig describes a constant-rate UDP flow (the paper's burst generators:
// each burst batch is m such flows lasting 1 ms).
type UDPConfig struct {
	Flow     netsim.FlowKey
	Priority uint8
	RateBps  int64        // sending rate
	PktSize  int          // on-wire packet size (default 1500)
	Start    simtime.Time // absolute start time
	Duration simtime.Time // how long to transmit
}

// UDPSource paces packets of a single UDP flow onto its host NIC.
type UDPSource struct {
	net  *netsim.Network
	host *netsim.Host
	cfg  UDPConfig

	Sent     uint64 // packets emitted
	SentByte uint64
}

// StartUDP schedules a UDP flow from the given host. The source emits
// back-to-back packets at the configured rate between Start and
// Start+Duration.
func StartUDP(net *netsim.Network, host *netsim.Host, cfg UDPConfig) *UDPSource {
	if cfg.PktSize == 0 {
		cfg.PktSize = 1500
	}
	if cfg.RateBps <= 0 {
		panic("transport: UDP rate must be positive")
	}
	if cfg.Flow.Proto == 0 {
		cfg.Flow.Proto = netsim.ProtoUDP
	}
	s := &UDPSource{net: net, host: host, cfg: cfg}
	gap := simtime.Time(int64(cfg.PktSize) * 8 * int64(simtime.Second) / cfg.RateBps)
	end := cfg.Start + cfg.Duration
	var emit func()
	emit = func() {
		now := net.Now()
		if now >= end {
			return
		}
		s.send(now)
		net.Engine.At(now+gap, emit)
	}
	net.Engine.At(cfg.Start, emit)
	return s
}

func (s *UDPSource) send(now simtime.Time) {
	p := netsim.AllocPacket()
	p.ID = s.net.AllocPacketID()
	p.Flow = s.cfg.Flow
	p.Priority = s.cfg.Priority
	p.Size = s.cfg.PktSize
	p.Payload = s.cfg.PktSize - 28 // IP+UDP headers
	p.SentAt = now
	s.Sent++
	s.SentByte += uint64(p.Size)
	s.host.Send(p)
}

// Config returns the source configuration.
func (s *UDPSource) Config() UDPConfig { return s.cfg }
